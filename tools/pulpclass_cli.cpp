// pulpclass command-line tool: the library's workflow without writing
// C++. Commands follow a verb-noun scheme; the machine-facing ones also
// speak JSON (--json prints one object per invocation on stdout).
//
//   pulpclass dataset build   [--out file.csv] [--json]
//   pulpclass dataset relabel [--out file.csv] [--json]
//   pulpclass cache   <info|verify|gc> [--json]
//   pulpclass lint    [--kernel NAME|--all] [--werror] [--json]
//   pulpclass train   [--features SET] [--out model.txt]
//   pulpclass predict --model model.txt <kernel> <i32|f32> <bytes> [--json]
//   pulpclass serve   [--port N] [--workers W] [--shards S] [--model m]
//   pulpclass query   --port N <kernel> <i32|f32> <bytes> [--json] [--v1]
//   pulpclass query   --port N <ping|metrics|reload [model.txt]>
//   pulpclass bench-serve --port N [--connections C] [--pipeline P]
//   pulpclass sweep   <kernel> <i32|f32> <bytes> [--optimize]
//   pulpclass analyze <kernel> <i32|f32> <bytes> | --kernel N | --all
//   pulpclass analyze --check [--json]        bounds-vs-simulator gate
//   pulpclass gen     [--count N] [--seed S] [--spec F] [--out DIR]
//   pulpclass eval    --loko --gen DIR [--json]
//   pulpclass stats                           dataset & label statistics
//   pulpclass disasm  <kernel> <i32|f32> <bytes> [--optimize]
//   pulpclass kernels                         list the dataset kernels
//
// The global --gen DIR flag installs a generated corpus (written by
// `pulpclass gen`) plus the mlkern suite into the kernel registry before
// the command runs, so lint/analyze/kernels/predict cover the enlarged
// corpus exactly like the built-in suites.
//
// The pre-verb-noun spellings (`pulpclass dataset`, `pulpclass relabel`)
// keep working as hidden aliases: they print a one-line deprecation note
// on stderr and run the new command, exit status unchanged.
//
// Implemented against the stable pulpclass:: facade (src/pulpclass.hpp);
// the pulpc::{kir,dsl,kernels,sim,...} layer namespaces are used only
// for the developer-facing inspection commands (disasm, sweep).
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/env.hpp"
#include "core/parallel.hpp"
#include "dsl/lower.hpp"
#include "energy/model.hpp"
#include "feat/features.hpp"
#include "gen/admit.hpp"
#include "kernels/registry.hpp"
#include "kir/costmodel.hpp"
#include "kir/opt.hpp"
#include "ml/cv.hpp"
#include "pulpclass.hpp"
#include "serve/protocol.hpp"
#include "sim/cluster.hpp"

namespace {

using namespace pulpc;

struct Args {
  std::vector<std::string> positional;
  std::string model = "pulpclass_model.txt";
  std::string out;
  std::string store;  ///< artifact store dir (--store / PULPC_ARTIFACT_DIR)
  std::string format;  ///< artifact store backend (--format v1|v2)
  std::string features = "ALL";
  std::string kernel;           ///< lint: restrict to one kernel
  std::string suite;  ///< lint/analyze/kernels: restrict to one suite
  std::string gen;    ///< generated-corpus dir to install (global)
  std::string spec;   ///< gen: GenSpec file overriding the defaults
  bool all = false;             ///< lint/analyze: whole registry
  bool werror = false;          ///< lint: warnings fail the run
  bool check = false;  ///< analyze: validate bounds against the simulator
  bool loko = false;   ///< eval: leave-one-kernel-out protocol
  long long count = 0;          ///< gen: candidates to draw (0 = spec)
  long long seed = 42;          ///< gen: campaign seed
  int sample = 0;  ///< analyze/eval: cap targets to a deterministic sample
  bool optimize = false;
  bool no_flat = false;  ///< predict/serve: disable the flat tree engine
  bool json = false;            ///< machine-readable one-object output
  bool verbose_stages = false;  ///< print the per-stage timing report
  int threads = 0;  ///< 0 = PULPC_THREADS / hardware default
  int port = 0;           ///< serve/query: TCP port on 127.0.0.1
  int max_inflight = 0;   ///< serve: backpressure shed threshold
  int batch = 0;          ///< serve: micro-batch size cap
  int timeout_ms = 0;     ///< serve: per-request wait budget
  int workers = 0;        ///< serve: epoll worker event loops
  int shards = 0;         ///< serve: PredictionService shards
  std::string reload_fifo;  ///< serve: hot-reload FIFO path
  bool v1 = false;          ///< query: speak legacy protocol v1
  int connections = 0;      ///< bench-serve: concurrent connections
  int pipeline = 0;         ///< bench-serve: pipelined requests per conn
  long long requests = 0;   ///< bench-serve: total request count
  std::string label;        ///< bench-serve: tag recorded in the JSON
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--model") {
      a.model = next();
    } else if (arg == "--out") {
      a.out = next();
    } else if (arg == "--features") {
      a.features = next();
    } else if (arg == "--store") {
      a.store = next();
    } else if (arg == "--format") {
      a.format = next();
      if (a.format != "v1" && a.format != "v2") {
        std::fprintf(stderr, "--format wants v1 or v2\n");
        std::exit(2);
      }
    } else if (arg == "--kernel") {
      a.kernel = next();
    } else if (arg == "--suite") {
      a.suite = next();
    } else if (arg == "--gen") {
      a.gen = next();
    } else if (arg == "--spec") {
      a.spec = next();
    } else if (arg == "--all") {
      a.all = true;
    } else if (arg == "--werror") {
      a.werror = true;
    } else if (arg == "--check") {
      a.check = true;
    } else if (arg == "--loko") {
      a.loko = true;
    } else if (arg == "--count") {
      a.count = std::atoll(next().c_str());
      if (a.count < 1) {
        std::fprintf(stderr, "--count wants a positive integer\n");
        std::exit(2);
      }
    } else if (arg == "--seed") {
      a.seed = std::atoll(next().c_str());
      if (a.seed < 0) {
        std::fprintf(stderr, "--seed wants a non-negative integer\n");
        std::exit(2);
      }
    } else if (arg == "--sample") {
      a.sample = std::atoi(next().c_str());
      if (a.sample < 1) {
        std::fprintf(stderr, "--sample wants a positive integer\n");
        std::exit(2);
      }
    } else if (arg == "--optimize") {
      a.optimize = true;
    } else if (arg == "--no-flat") {
      a.no_flat = true;
    } else if (arg == "--json") {
      a.json = true;
    } else if (arg == "--stages") {
      a.verbose_stages = true;
    } else if (arg == "--threads") {
      a.threads = std::atoi(next().c_str());
      if (a.threads < 1) {
        std::fprintf(stderr, "--threads wants a positive integer\n");
        std::exit(2);
      }
    } else if (arg == "--port") {
      a.port = std::atoi(next().c_str());
      if (a.port < 1 || a.port > 65535) {
        std::fprintf(stderr, "--port wants 1..65535\n");
        std::exit(2);
      }
    } else if (arg == "--max-inflight") {
      a.max_inflight = std::atoi(next().c_str());
      if (a.max_inflight < 1) {
        std::fprintf(stderr, "--max-inflight wants a positive integer\n");
        std::exit(2);
      }
    } else if (arg == "--batch") {
      a.batch = std::atoi(next().c_str());
      if (a.batch < 1) {
        std::fprintf(stderr, "--batch wants a positive integer\n");
        std::exit(2);
      }
    } else if (arg == "--timeout-ms") {
      a.timeout_ms = std::atoi(next().c_str());
      if (a.timeout_ms < 1) {
        std::fprintf(stderr, "--timeout-ms wants a positive integer\n");
        std::exit(2);
      }
    } else if (arg == "--workers") {
      a.workers = std::atoi(next().c_str());
      if (a.workers < 1) {
        std::fprintf(stderr, "--workers wants a positive integer\n");
        std::exit(2);
      }
    } else if (arg == "--shards") {
      a.shards = std::atoi(next().c_str());
      if (a.shards < 1) {
        std::fprintf(stderr, "--shards wants a positive integer\n");
        std::exit(2);
      }
    } else if (arg == "--reload-fifo") {
      a.reload_fifo = next();
    } else if (arg == "--v1") {
      a.v1 = true;
    } else if (arg == "--connections") {
      a.connections = std::atoi(next().c_str());
      if (a.connections < 1) {
        std::fprintf(stderr, "--connections wants a positive integer\n");
        std::exit(2);
      }
    } else if (arg == "--pipeline") {
      a.pipeline = std::atoi(next().c_str());
      if (a.pipeline < 1) {
        std::fprintf(stderr, "--pipeline wants a positive integer\n");
        std::exit(2);
      }
    } else if (arg == "--requests") {
      a.requests = std::atoll(next().c_str());
      if (a.requests < 1) {
        std::fprintf(stderr, "--requests wants a positive integer\n");
        std::exit(2);
      }
    } else if (arg == "--label") {
      a.label = next();
    } else {
      a.positional.push_back(arg);
    }
  }
  return a;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: pulpclass <command> [options]\n"
      "global options:\n"
      "  --threads N    worker threads for dataset builds and CV\n"
      "                 (default: PULPC_THREADS or all hardware threads;\n"
      "                 results are identical for every N)\n"
      "  --store DIR    raw-counter artifact store directory\n"
      "                 (default: PULPC_ARTIFACT_DIR, else\n"
      "                 pulpclass_artifacts for cache/relabel)\n"
      "  --format v1|v2 artifact store backend (default:\n"
      "                 PULPC_STORE_FORMAT, else auto-detected; v2 is\n"
      "                 the packed mmap segment store)\n"
      "  --stages       print the per-stage wall-clock report\n"
      "  --json         one JSON object on stdout (dataset/cache/lint)\n"
      "  --gen DIR      install the generated corpus (and the mlkern\n"
      "                 suite) from a `pulpclass gen` output directory\n"
      "                 into the kernel registry before the command runs\n"
      "commands:\n"
      "  dataset build [--out file.csv]    build & cache the dataset\n"
      "  dataset relabel [--out file.csv]  rebuild labels/features by\n"
      "                                    replaying stored raw counters\n"
      "                                    (no re-simulation on a warm store)\n"
      "  cache info                        artifact store census\n"
      "  cache verify                      exit 1 on foreign/corrupt data\n"
      "  cache gc                          drop foreign/corrupt artifacts\n"
      "                                    (and reports whose sample is\n"
      "                                    gone); in v2 same as compact\n"
      "  cache compact                     rewrite the store keeping only\n"
      "                                    live records (v2 segments)\n"
      "  cache import                      migrate v1 text artifacts into\n"
      "                                    the v2 segment store in place\n"
      "  train [--features AGG|RAW|MCA|STATIC-BOUNDS|ALL] [--out model.txt]\n"
      "  predict --model model.txt <kernel> <i32|f32> <bytes> [--json]\n"
      "          [--no-flat]                 classify with the original\n"
      "                                    node-chasing tree instead of\n"
      "                                    the flat engine (identical\n"
      "                                    predictions; A/B escape hatch,\n"
      "                                    also PULPC_FLAT_PREDICT=0)\n"
      "  serve [--port N] [--model model.txt] [--workers W] [--shards S]\n"
      "        [--max-inflight K] [--batch B] [--timeout-ms T]\n"
      "        [--reload-fifo PATH] [--no-flat]\n"
      "                                    sharded TCP prediction service\n"
      "                                    (line-delimited JSON v1+v2, N\n"
      "                                    epoll worker loops; Ctrl-C\n"
      "                                    stops and prints metrics; every\n"
      "                                    knob also has a PULPC_SERVE_*\n"
      "                                    env var, see README \"Serving\")\n"
      "  query --port N <kernel> <i32|f32> <bytes> [--json] [--v1]\n"
      "                                    one request against a running\n"
      "                                    `pulpclass serve` (protocol v2\n"
      "                                    unless --v1)\n"
      "  query --port N ping|metrics|reload [model.txt]\n"
      "                                    v2 admin verbs; prints the raw\n"
      "                                    reply line\n"
      "  bench-serve --port N [--connections C] [--pipeline P]\n"
      "              [--requests N] [--label TAG] [--out file.json]\n"
      "                                    closed-loop load generator:\n"
      "                                    p50/p99/p999 latency and\n"
      "                                    throughput, appended to\n"
      "                                    BENCH_serve.json (or --out)\n"
      "  sweep <kernel> <i32|f32> <bytes> [--optimize]\n"
      "  analyze <kernel> <i32|f32> <bytes> | --kernel NAME | --all\n"
      "          [--suite NAME] [--sample N] [--optimize] [--json]\n"
      "                                    static [lo,hi] cycle/energy\n"
      "                                    bounds per core count, no\n"
      "                                    simulation (kir cost analyzer);\n"
      "                                    --sample keeps every (total/N)th\n"
      "                                    target, --threads parallelizes\n"
      "  analyze --check [--json]          simulate every dataset config\n"
      "                                    and fail unless measured\n"
      "                                    cycles & energy lie inside the\n"
      "                                    static bounds; reports bound\n"
      "                                    tightness and speedup\n"
      "  gen [--count N] [--seed S] [--spec FILE] [--out DIR] [--json]\n"
      "                                    draw candidate kernels from the\n"
      "                                    property-driven generator, push\n"
      "                                    each through the admission\n"
      "                                    funnel (validate -> lower ->\n"
      "                                    verify -> analyze -> dedupe)\n"
      "                                    and write the admitted corpus\n"
      "                                    (default DIR pulpclass_gen)\n"
      "  eval --loko --gen DIR [--sample N] [--json]\n"
      "                                    leave-one-kernel-out accuracy\n"
      "                                    on the 59 seed kernels, trained\n"
      "                                    on the seed dataset alone vs\n"
      "                                    the corpus enlarged with the\n"
      "                                    generated + mlkern suites\n"
      "  stats                             dataset statistics\n"
      "  disasm <kernel> <i32|f32> <bytes> [--optimize]\n"
      "  kernels                           list available kernels\n"
      "                                    [--suite NAME]\n"
      "  lint [--kernel NAME|--all] [--suite NAME] [--werror] [--optimize]\n"
      "                                    run the KIR verifier over\n"
      "                                    lowered registry kernels in\n"
      "                                    parallel (--threads workers);\n"
      "                                    non-zero exit on errors (and\n"
      "                                    on warnings with --werror)\n");
  return 2;
}

/// One-line note for the hidden pre-verb-noun aliases. Deliberately on
/// stderr so scripted consumers of stdout are unaffected, and the exit
/// status stays that of the new command (CI asserts the aliases still
/// exit 0).
void deprecated(const char* old_spelling, const char* new_spelling) {
  std::fprintf(stderr,
               "note: `pulpclass %s` is deprecated, use `pulpclass %s`\n",
               old_spelling, new_spelling);
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) for
/// the paths that end up in --json output.
std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out + "\"";
}

kir::DType parse_dtype(const std::string& s) {
  if (s == "i32") return kir::DType::I32;
  if (s == "f32") return kir::DType::F32;
  std::fprintf(stderr, "bad element type '%s' (i32|f32)\n", s.c_str());
  std::exit(2);
}

void print_progress(std::size_t d, std::size_t t) {
  if (d % 56 == 0 || d == t) {
    std::fprintf(stderr, "building dataset: %zu/%zu\r", d, t);
    if (d == t) std::fprintf(stderr, "\n");
  }
}

/// Build options shared by the dataset-consuming commands: the CSV cache
/// path comes from --out (not from mutating the environment), the
/// artifact store from --store, and --stages wires the per-stage report.
pulpclass::BuildOptions build_options(const Args& a) {
  pulpclass::BuildOptions opt;
  if (!a.out.empty()) opt.cache_path = a.out;
  if (!a.store.empty()) opt.artifact_dir = a.store;
  if (!a.format.empty()) opt.store_format = a.format;
  if (a.verbose_stages) {
    opt.stage_report = [](const pulpclass::StageReport& r) {
      std::fprintf(stderr, "stages: %s\n", r.summary().c_str());
    };
  }
  return opt;
}

/// Artifact store directory for the commands that require one: --store,
/// then PULPC_ARTIFACT_DIR, then ./pulpclass_artifacts. (These commands
/// always need a directory, so an empty env value falls through to the
/// default instead of meaning "disabled" as it does for builds.)
std::string store_dir(const Args& a) {
  const std::string dir = core::env_or(
      a.store.empty() ? std::nullopt
                      : std::optional<std::string>(a.store),
      "PULPC_ARTIFACT_DIR", "");
  return dir.empty() ? "pulpclass_artifacts" : dir;
}

/// Explicit --format selection, or nullopt to let the store resolve via
/// PULPC_STORE_FORMAT / auto-detection.
std::optional<core::StoreFormat> store_format(const Args& a) {
  if (a.format.empty()) return std::nullopt;
  return core::parse_store_format(a.format);
}

pulpclass::Dataset load_dataset(const pulpclass::BuildOptions& opt = {}) {
  return pulpclass::load_or_build_dataset(opt, print_progress);
}

kir::Program lower_kernel(const Args& a) {
  if (a.positional.size() < 3) {
    std::exit(usage());
  }
  const kir::Program prog = dsl::lower(kernels::make_kernel(
      a.positional[0], parse_dtype(a.positional[1]),
      std::uint32_t(std::atoi(a.positional[2].c_str()))));
  return a.optimize ? kir::optimize(prog) : prog;
}

int cmd_dataset_build(const Args& a) {
  const pulpclass::Dataset ds = load_dataset(build_options(a));
  if (a.json) {
    std::printf("{\"command\":\"dataset build\",\"samples\":%zu,"
                "\"columns\":%zu}\n",
                ds.size(), ds.columns().size());
  } else {
    std::printf("dataset ready: %zu samples, %zu feature columns\n",
                ds.size(), ds.columns().size());
  }
  return 0;
}

int cmd_dataset_relabel(const Args& a) {
  pulpclass::BuildOptions opt = build_options(a);
  pulpclass::StageReport report;
  const auto chained = opt.stage_report;
  opt.stage_report = [&](const pulpclass::StageReport& r) {
    report = r;
    if (chained) chained(r);
  };
  const pulpclass::ArtifactStore store(store_dir(a), opt.cluster,
                                       store_format(a));
  const pulpclass::Dataset ds = pulpclass::relabel(
      store, pulpclass::dataset_configs(), opt, print_progress);
  const std::string out = a.out.empty() ? "pulpclass_dataset.csv" : a.out;
  ds.save_csv_file(out);
  if (a.json) {
    std::printf("{\"command\":\"dataset relabel\",\"samples\":%zu,"
                "\"replayed_runs\":%zu,\"simulated_runs\":%zu,"
                "\"store\":%s,\"out\":%s}\n",
                ds.size(), report.replayed_runs, report.simulated_runs,
                json_str(store.dir()).c_str(), json_str(out).c_str());
    return 0;
  }
  std::printf("relabelled %zu samples from %s -> %s\n", ds.size(),
              store.dir().c_str(), out.c_str());
  std::printf("replayed %zu runs, simulated %zu (%.3fs total, %.3fs in "
              "label+featurize)\n",
              report.replayed_runs, report.simulated_runs,
              report.total_seconds(),
              report.label_seconds + report.featurize_seconds);
  return 0;
}

int cmd_cache(const Args& a) {
  if (a.positional.empty()) return usage();
  const std::string verb = a.positional[0];
  const pulpclass::ArtifactStore store(
      store_dir(a), pulpclass::BuildOptions{}.cluster, store_format(a));
  if (verb == "info" || verb == "verify") {
    const pulpclass::ArtifactStore::Info info = store.scan();
    const bool ok = info.foreign == 0 && info.corrupt == 0;
    if (a.json) {
      // One object per invocation, like the other verb-nouns; v2 adds a
      // per-segment census array (empty for the per-file v1 backend).
      std::string segments = "[";
      for (std::size_t i = 0; i < info.segments.size(); ++i) {
        const pulpclass::ArtifactStore::SegmentInfo& s = info.segments[i];
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "%s{\"name\":%s,\"records\":%zu,\"valid\":%zu,"
                      "\"foreign\":%zu,\"corrupt\":%zu,\"bytes\":%zu}",
                      i == 0 ? "" : ",", json_str(s.name).c_str(),
                      s.records, s.valid, s.foreign, s.corrupt,
                      std::size_t(s.bytes));
        segments += buf;
      }
      segments += "]";
      // Per-kernel record counts; std::map iteration keeps the keys
      // sorted, so the object is byte-stable run to run.
      std::string by_kernel = "{";
      for (const auto& [kernel, records] : info.by_kernel) {
        if (by_kernel.size() > 1) by_kernel += ",";
        by_kernel += json_str(kernel) + ":" + std::to_string(records);
      }
      by_kernel += "}";
      std::printf("{\"command\":\"cache %s\",\"store\":%s,"
                  "\"format\":\"%s\",\"fingerprint\":\"%016llx\","
                  "\"schema\":%u,\"files\":%zu,\"bytes\":%zu,"
                  "\"valid\":%zu,\"foreign\":%zu,\"corrupt\":%zu,"
                  "\"diags\":%zu,\"segments\":%s,\"by_kernel\":%s,"
                  "\"ok\":%s}\n",
                  verb.c_str(), json_str(store.dir()).c_str(),
                  core::to_string(store.format()),
                  static_cast<unsigned long long>(store.fingerprint()),
                  core::kArtifactSchemaVersion, info.files,
                  std::size_t(info.bytes), info.valid, info.foreign,
                  info.corrupt, info.diags, segments.c_str(),
                  by_kernel.c_str(), ok ? "true" : "false");
      return verb == "verify" && !ok ? 1 : 0;
    }
    std::printf("store:       %s (format %s)\n", store.dir().c_str(),
                core::to_string(store.format()));
    std::printf("fingerprint: %016llx (schema v%u)\n",
                static_cast<unsigned long long>(store.fingerprint()),
                core::kArtifactSchemaVersion);
    std::printf("artifacts:   %zu (%.1f KiB)\n", info.files,
                double(info.bytes) / 1024.0);
    std::printf("  valid:     %zu\n", info.valid);
    std::printf("  foreign:   %zu\n", info.foreign);
    std::printf("  corrupt:   %zu\n", info.corrupt);
    std::printf("  reports:   %zu\n", info.diags);
    std::printf("  kernels:   %zu distinct\n", info.by_kernel.size());
    for (const pulpclass::ArtifactStore::SegmentInfo& s : info.segments) {
      std::printf("  segment %-28s %zu record%s (%zu valid)\n",
                  s.name.c_str(), s.records, s.records == 1 ? "" : "s",
                  s.valid);
    }
    if (verb == "verify") {
      std::printf("verify: %s\n", ok ? "OK" : "FAILED");
      return ok ? 0 : 1;
    }
    return 0;
  }
  if (verb == "gc" || verb == "compact") {
    const std::size_t removed =
        verb == "gc" ? store.gc() : store.compact();
    if (a.json) {
      std::printf("{\"command\":\"cache %s\",\"store\":%s,"
                  "\"format\":\"%s\",\"removed\":%zu}\n",
                  verb.c_str(), json_str(store.dir()).c_str(),
                  core::to_string(store.format()), removed);
      return 0;
    }
    std::printf("removed %zu dead entr%s from %s\n", removed,
                removed == 1 ? "y" : "ies", store.dir().c_str());
    return 0;
  }
  if (verb == "import") {
    // Import targets the v2 backend by definition: a directory full of
    // v1 text auto-detects as v1, so reopen it as v2 before migrating.
    const pulpclass::ArtifactStore target =
        store.format() == core::StoreFormat::v2
            ? store
            : pulpclass::ArtifactStore(store_dir(a),
                                       pulpclass::BuildOptions{}.cluster,
                                       core::StoreFormat::v2);
    const std::size_t imported = target.import_v1();
    if (a.json) {
      std::printf("{\"command\":\"cache import\",\"store\":%s,"
                  "\"format\":\"v2\",\"imported\":%zu}\n",
                  json_str(store.dir()).c_str(), imported);
      return 0;
    }
    std::printf("imported %zu v1 artifact%s into the segment store at %s\n",
                imported, imported == 1 ? "" : "s", store.dir().c_str());
    return 0;
  }
  return usage();
}

int cmd_train(const Args& a) {
  const pulpclass::Dataset ds = load_dataset();
  pulpclass::EnergyClassifier::Options opt;
  if (a.features == "AGG") {
    opt.features = feat::FeatureSet::Agg;
  } else if (a.features == "RAW") {
    opt.features = feat::FeatureSet::RawAgg;
  } else if (a.features == "MCA") {
    opt.features = feat::FeatureSet::Mca;
  } else if (a.features == "STATIC-BOUNDS") {
    opt.features = feat::FeatureSet::StaticBounds;
  } else {
    opt.features = feat::FeatureSet::AllStatic;
  }
  pulpclass::EnergyClassifier clf(opt);
  clf.train(ds);
  const std::string path = a.out.empty() ? a.model : a.out;
  clf.save_file(path);
  std::printf("trained on %zu samples (%zu features, %zu tree nodes)\n",
              ds.size(), clf.columns().size(), clf.tree().node_count());
  std::printf("model written to %s\n", path.c_str());

  // Quick self-report with the paper's protocol.
  pulpclass::EvalOptions eval;
  eval.repeats = 10;
  const pulpclass::EvalResult res = pulpclass::evaluate(ds, clf.columns(),
                                                        eval);
  std::printf("10-fold CV x10: %.1f%% @0%% tolerance, %.1f%% @5%%\n",
              100 * res.accuracy_at(0.0), 100 * res.accuracy_at(0.05));
  return 0;
}

/// Shared output of `predict` and `query`, so a served reply can be
/// byte-compared against the offline prediction (the CI serve-smoke job
/// diffs exactly these lines). Cache/latency details deliberately stay
/// out of the --json object: they vary run to run, the prediction must
/// not.
void print_prediction(const Args& a, int cores) {
  if (a.json) {
    std::printf("{\"command\":\"predict\",\"kernel\":%s,\"dtype\":%s,"
                "\"bytes\":%s,\"cores\":%d}\n",
                json_str(a.positional[0]).c_str(),
                json_str(a.positional[1]).c_str(),
                a.positional[2].c_str(), cores);
    return;
  }
  std::printf("%s %s %s -> run on %d core%s for minimum energy\n",
              a.positional[0].c_str(), a.positional[1].c_str(),
              a.positional[2].c_str(), cores, cores == 1 ? "" : "s");
}

/// SIGINT/SIGTERM -> Server::request_stop (async-signal-safe: one
/// atomic pointer read plus an eventfd write).
serve::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

void install_sigint(serve::Server& server) {
  g_server = &server;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
}

int cmd_predict(const Args& a) {
  if (a.positional.size() < 3) return usage();
  // Offline prediction routes through the same serve::PredictionService
  // code path as `pulpclass serve`, so the two can never drift.
  pulpclass::PredictionService::Options sopt;
  sopt.threads = 1;
  if (a.no_flat) sopt.use_flat = false;
  pulpclass::PredictionService svc(
      pulpclass::EnergyClassifier::load_file(a.model), sopt);
  pulpclass::PredictRequest req;
  req.kernel = a.positional[0];
  req.dtype = parse_dtype(a.positional[1]);
  req.size_bytes = std::uint32_t(std::atoi(a.positional[2].c_str()));
  req.optimize = a.optimize;
  const pulpclass::PredictResult r = svc.predict(req);
  if (!r.ok) {
    std::fprintf(stderr, "error: %s\n", r.error.c_str());
    return 1;
  }
  print_prediction(a, r.cores);
  return 0;
}

int cmd_serve(const Args& a) {
  // Every flag writes a ServeOptions field; resolve() folds in the
  // PULPC_SERVE_* environment and the defaults (flag > env > default).
  pulpclass::ServeOptions sopts;
  if (a.port > 0) sopts.port = std::uint16_t(a.port);
  if (a.workers > 0) sopts.workers = unsigned(a.workers);
  if (a.shards > 0) sopts.shards = unsigned(a.shards);
  if (a.threads > 0) sopts.threads = unsigned(a.threads);
  if (a.max_inflight > 0) sopts.max_in_flight = unsigned(a.max_inflight);
  if (a.batch > 0) sopts.max_batch = unsigned(a.batch);
  if (a.timeout_ms > 0) sopts.request_timeout_ms = unsigned(a.timeout_ms);
  if (!a.reload_fifo.empty()) sopts.reload_fifo = a.reload_fifo;
  if (a.no_flat) sopts.use_flat = false;
  sopts.model_path = a.model;  // `reload` without a path reloads this file
  const serve::ServeOptions::Resolved r = sopts.resolve();
  pulpclass::ShardedService svc(
      serve::ModelRegistry::from_file(a.model, r.use_flat),
      serve::sharded_options(r));
  // Cold-start priming: with an artifact store configured, one pass over
  // it (an mmap walk in the v2 backend) pre-fills each shard's feature
  // cache — routed through the live placement function — so known
  // samples are cache hits from the very first request. Like the build
  // pipeline — and unlike cache/relabel — serve treats an unset store as
  // "no store", not the default directory.
  const std::string prime_dir = core::env_or(
      a.store.empty() ? std::nullopt : std::optional<std::string>(a.store),
      "PULPC_ARTIFACT_DIR", "");
  if (!prime_dir.empty()) {
    const pulpclass::ArtifactStore store(
        prime_dir, pulpclass::BuildOptions{}.cluster, store_format(a));
    const std::size_t primed = svc.prime_from_store(store);
    std::fprintf(stderr,
                 "pulpclass serve: primed %zu sample%s from %s (format %s)\n",
                 primed, primed == 1 ? "" : "s", store.dir().c_str(),
                 core::to_string(store.format()));
  }
  pulpclass::PredictionServer server(svc, sopts);
  const std::uint16_t port = server.start();
  install_sigint(server);
  std::fprintf(stderr,
               "pulpclass serve: listening on 127.0.0.1:%u (model %s v%llu, "
               "%zu feature columns; %u worker%s, %u shard%s); Ctrl-C stops\n",
               unsigned(port), a.model.c_str(),
               static_cast<unsigned long long>(svc.model()->version),
               svc.model()->clf.columns().size(), r.workers,
               r.workers == 1 ? "" : "s", r.shards,
               r.shards == 1 ? "" : "s");
  server.run();
  // Final metrics snapshot: one JSON object (total + per-shard + model
  // history), the same shape the v2 `metrics` verb serves.
  std::printf("%s\n", svc.metrics_json().c_str());
  return 0;
}

/// Blocking loopback dial for the client commands; -1 + stderr on
/// failure.
int dial(int port, const char* who) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "%s: socket() failed\n", who);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(std::uint16_t(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    std::fprintf(stderr, "%s: cannot connect to 127.0.0.1:%d\n", who, port);
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& line) {
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::send(fd, line.data() + off, line.size() - off, 0);
    if (n <= 0) return false;
    off += std::size_t(n);
  }
  return true;
}

bool recv_line(int fd, std::string* out) {
  char chunk[1024];
  while (out->find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    out->append(chunk, std::size_t(n));
  }
  out->resize(out->find('\n'));
  return true;
}

/// The predict request line `query` (and bench-serve) sends: v2 by
/// default, the pre-redesign v1 shape with --v1 — both answered by any
/// current server, so old and new clients interoperate either way.
std::string predict_line(bool v1, long long id, const std::string& kernel,
                         const std::string& dtype, const std::string& bytes,
                         bool optimize) {
  std::string line = v1 ? "{\"id\":" + std::to_string(id)
                        : "{\"v\":2,\"id\":" + std::to_string(id) +
                              ",\"cmd\":\"predict\"";
  line += ",\"kernel\":" + json_str(kernel) + ",\"dtype\":" +
          json_str(dtype) + ",\"bytes\":" + bytes;
  line += optimize ? ",\"optimize\":true}\n" : "}\n";
  return line;
}

int cmd_query(const Args& a) {
  if (a.port == 0) {
    std::fprintf(stderr, "query: --port is required\n");
    return 2;
  }
  // v2 admin verbs ride the same command: `query --port N metrics`.
  const bool admin =
      !a.positional.empty() &&
      (a.positional[0] == "ping" || a.positional[0] == "metrics" ||
       a.positional[0] == "reload");
  if (admin && a.v1) {
    std::fprintf(stderr, "query: '%s' needs protocol v2 (drop --v1)\n",
                 a.positional[0].c_str());
    return 2;
  }
  if (!admin) {
    if (a.positional.size() < 3) return usage();
    (void)parse_dtype(a.positional[1]);  // validate before dialing out
  }
  std::string line;
  if (admin) {
    line = "{\"v\":2,\"id\":1,\"cmd\":" + json_str(a.positional[0]);
    if (a.positional[0] == "reload" && a.positional.size() > 1) {
      line += ",\"model\":" + json_str(a.positional[1]);
    }
    line += "}\n";
  } else {
    line = predict_line(a.v1, 1, a.positional[0], a.positional[1],
                        a.positional[2], a.optimize);
  }
  const int fd = dial(a.port, "query");
  if (fd < 0) return 1;
  std::string reply;
  const bool io_ok = send_all(fd, line) && recv_line(fd, &reply);
  ::close(fd);
  if (!io_ok) {
    std::fprintf(stderr, "query: connection closed without a reply\n");
    return 1;
  }
  serve::WireReply wire;
  const std::string err = serve::parse_reply(reply, &wire);
  if (!err.empty()) {
    std::fprintf(stderr, "query: bad reply '%s': %s\n", reply.c_str(),
                 err.c_str());
    return 1;
  }
  if (admin) {
    // Admin replies are for operators and scripts: print the raw wire
    // line, exit by its ok flag.
    std::printf("%s\n", reply.c_str());
    return wire.ok ? 0 : 1;
  }
  if (!wire.ok) {
    std::fprintf(stderr, "error: %s\n", wire.error.c_str());
    return 1;
  }
  print_prediction(a, wire.cores);
  return 0;
}

/// Closed-loop load generator for `pulpclass serve`: C concurrent
/// connections, each keeping up to P pipelined requests in flight,
/// until N total replies. One poll(2) loop, non-blocking sockets;
/// requests cycle over the kernel registry (or a single explicit
/// <kernel> <dtype> <bytes> spec) so shards and the router cache are
/// exercised the way live traffic would. Latency is enqueue -> reply,
/// matched by request id (sharded replies can arrive out of order on
/// one connection).
int cmd_bench_serve(const Args& a) {
  if (a.port == 0) {
    std::fprintf(stderr, "bench-serve: --port is required\n");
    return 2;
  }
  const int conns = a.connections > 0 ? a.connections : 64;
  const int pipeline = a.pipeline > 0 ? a.pipeline : 4;
  const long long total = a.requests > 0 ? a.requests : 20000;

  // The request mix: an explicit spec, or every registry (kernel,
  // dtype) pair at a fixed representative size.
  struct Spec {
    std::string kernel, dtype, bytes;
  };
  std::vector<Spec> specs;
  if (a.positional.size() >= 3) {
    (void)parse_dtype(a.positional[1]);
    specs.push_back({a.positional[0], a.positional[1], a.positional[2]});
  } else {
    for (const kernels::KernelInfo& k : kernels::all_kernels()) {
      if (k.types != kernels::TypeSupport::FloatOnly) {
        specs.push_back({k.name, "i32", "4096"});
      }
      if (k.types != kernels::TypeSupport::IntOnly) {
        specs.push_back({k.name, "f32", "4096"});
      }
    }
  }

  using clock = std::chrono::steady_clock;
  struct BenchConn {
    int fd = -1;
    std::string rbuf, wbuf;
    int outstanding = 0;
    std::map<long long, clock::time_point> t0;  ///< id -> enqueue time
  };
  std::vector<BenchConn> cs(static_cast<std::size_t>(conns));
  for (BenchConn& c : cs) {
    c.fd = dial(a.port, "bench-serve");
    if (c.fd < 0) return 1;
    const int fl = ::fcntl(c.fd, F_GETFL, 0);
    ::fcntl(c.fd, F_SETFL, fl | O_NONBLOCK);
  }

  long long next_id = 0, done = 0, ok = 0, errors = 0;
  std::vector<double> lat_us;
  lat_us.reserve(std::size_t(total));
  const auto enqueue = [&](BenchConn& c) {
    while (c.outstanding < pipeline && next_id < total) {
      const Spec& s = specs[std::size_t(next_id) % specs.size()];
      c.wbuf += predict_line(a.v1, next_id, s.kernel, s.dtype, s.bytes,
                             a.optimize);
      c.t0.emplace(next_id, clock::now());
      ++next_id;
      ++c.outstanding;
    }
  };
  for (BenchConn& c : cs) enqueue(c);

  const auto start = clock::now();
  std::vector<pollfd> pfds(cs.size());
  char chunk[16384];
  while (done < total) {
    for (std::size_t i = 0; i < cs.size(); ++i) {
      pfds[i].fd = cs[i].fd;
      pfds[i].events = short((cs[i].outstanding > 0 ? POLLIN : 0) |
                             (!cs[i].wbuf.empty() ? POLLOUT : 0));
      pfds[i].revents = 0;
    }
    if (::poll(pfds.data(), nfds_t(pfds.size()), 10000) < 0) {
      std::fprintf(stderr, "bench-serve: poll failed\n");
      return 1;
    }
    for (std::size_t i = 0; i < cs.size(); ++i) {
      BenchConn& c = cs[i];
      if ((pfds[i].revents & POLLOUT) != 0 && !c.wbuf.empty()) {
        const ssize_t n = ::send(c.fd, c.wbuf.data(), c.wbuf.size(), 0);
        if (n > 0) c.wbuf.erase(0, std::size_t(n));
      }
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const ssize_t n = ::recv(c.fd, chunk, sizeof chunk, 0);
      if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
        std::fprintf(stderr,
                     "bench-serve: server closed a connection after %lld "
                     "replies\n",
                     done);
        return 1;
      }
      if (n > 0) c.rbuf.append(chunk, std::size_t(n));
      std::size_t pos;
      while ((pos = c.rbuf.find('\n')) != std::string::npos) {
        const std::string reply = c.rbuf.substr(0, pos);
        c.rbuf.erase(0, pos + 1);
        serve::WireReply wire;
        if (!serve::parse_reply(reply, &wire).empty()) {
          std::fprintf(stderr, "bench-serve: bad reply '%s'\n",
                       reply.c_str());
          return 1;
        }
        const auto it = c.t0.find(wire.id);
        if (it == c.t0.end()) continue;  // duplicate/unknown id
        if (wire.ok) {
          lat_us.push_back(std::chrono::duration<double, std::micro>(
                               clock::now() - it->second)
                               .count());
          ++ok;
        } else {
          ++errors;
        }
        c.t0.erase(it);
        --c.outstanding;
        ++done;
      }
      enqueue(c);
    }
  }
  const double seconds =
      std::chrono::duration<double>(clock::now() - start).count();
  for (BenchConn& c : cs) ::close(c.fd);

  std::sort(lat_us.begin(), lat_us.end());
  const auto pct = [&](double p) {
    if (lat_us.empty()) return 0.0;
    const std::size_t i = std::size_t(p * double(lat_us.size()));
    return lat_us[std::min(i, lat_us.size() - 1)];
  };
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"command\":\"bench-serve\",\"label\":%s,\"connections\":%d,"
      "\"pipeline\":%d,\"requests\":%lld,\"ok\":%lld,\"errors\":%lld,"
      "\"seconds\":%.3f,\"rps\":%.1f,\"p50_us\":%.1f,\"p99_us\":%.1f,"
      "\"p999_us\":%.1f}",
      json_str(a.label).c_str(), conns, pipeline, total, ok, errors,
      seconds, seconds > 0 ? double(done) / seconds : 0.0, pct(0.50),
      pct(0.99), pct(0.999));
  // One JSON object per run, appended to the benchmark log (BENCH_*.json
  // is the repo convention) and echoed to stdout for pipelines.
  const std::string out_path = a.out.empty() ? "BENCH_serve.json" : a.out;
  if (std::FILE* f = std::fopen(out_path.c_str(), "a")) {
    std::fprintf(f, "%s\n", buf);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "bench-serve: cannot append to %s\n",
                 out_path.c_str());
  }
  std::printf("%s\n", buf);
  return 0;
}

int cmd_sweep(const Args& a) {
  const kir::Program prog = lower_kernel(a);
  sim::Cluster cluster;
  cluster.load(prog);
  std::printf("%-6s %12s %12s\n", "cores", "cycles", "energy[uJ]");
  double best = 0;
  unsigned best_cores = 0;
  for (unsigned c = 1; c <= cluster.config().num_cores; ++c) {
    const sim::RunResult r = cluster.run(c);
    if (!r.ok) {
      std::fprintf(stderr, "simulation failed: %s\n", r.error.c_str());
      return 1;
    }
    const double uj = energy::compute_energy(r.stats).total_uj();
    if (best_cores == 0 || uj < best) {
      best = uj;
      best_cores = c;
    }
    std::printf("%-6u %12llu %12.3f\n", c,
                static_cast<unsigned long long>(r.stats.region_cycles()),
                uj);
  }
  std::printf("minimum energy: %u cores (%.3f uJ)\n", best_cores, best);
  return 0;
}

int cmd_stats(const Args&) {
  const pulpclass::Dataset ds = load_dataset();
  const auto hist = ds.label_histogram(8);
  std::printf("%zu samples; label distribution:\n", ds.size());
  for (int k = 1; k <= 8; ++k) {
    std::printf("  %d cores: %4zu (%.1f%%)\n", k, hist[k],
                100.0 * double(hist[k]) / double(ds.size()));
  }
  return 0;
}

int cmd_disasm(const Args& a) {
  const kir::Program prog = lower_kernel(a);
  std::printf("%s", kir::to_string(prog).c_str());
  return 0;
}

int cmd_lint(const Args& a) {
  // Every (kernel, dtype, size) combination the dataset would lower.
  struct LintUnit {
    const kernels::KernelInfo* k;
    kir::DType t;
    std::uint32_t bytes;
  };
  std::vector<LintUnit> units;
  for (const kernels::KernelInfo& k : kernels::all_kernels()) {
    if (!a.kernel.empty() && k.name != a.kernel) continue;
    if (!a.suite.empty() && k.suite != a.suite) continue;
    for (const kir::DType t : {kir::DType::I32, kir::DType::F32}) {
      if (!k.supports(t)) continue;
      for (const std::uint32_t bytes : kernels::dataset_sizes()) {
        units.push_back({&k, t, bytes});
      }
    }
  }
  if ((!a.kernel.empty() || !a.suite.empty()) && units.empty()) {
    std::fprintf(stderr,
                 "no kernels match%s%s%s%s (see `pulpclass kernels`)\n",
                 a.kernel.empty() ? "" : " kernel ", a.kernel.c_str(),
                 a.suite.empty() ? "" : " suite ", a.suite.c_str());
    return 2;
  }
  // Lower+verify is pure per combination, so the work fans out across
  // the pool; partials are reduced in combination order below, making
  // the printed diagnostics and the totals byte-identical for every
  // --threads value.
  struct LintOut {
    std::size_t errors = 0, warnings = 0, notes = 0;
    std::map<std::string, std::size_t> by_pass;
    std::string text;
  };
  core::ThreadPool lint_pool(0);  // resolves via PULPC_THREADS
  const std::vector<LintOut> outs =
      lint_pool.parallel_map<LintOut>(units.size(), [&](std::size_t i) {
        const LintUnit& u = units[i];
        kir::Program prog =
            dsl::lower(kernels::make_kernel(u.k->name, u.t, u.bytes));
        if (a.optimize) prog = kir::optimize(prog);
        const pulpclass::VerifyReport report =
            pulpclass::verify_program(prog);
        LintOut out;
        out.errors = report.errors();
        out.warnings = report.warnings();
        out.notes = report.notes();
        for (const kir::Diagnostic& d : report.diags) ++out.by_pass[d.pass];
        if (!report.diags.empty()) out.text = report.to_string();
        return out;
      });
  const std::size_t programs = units.size();
  std::size_t errors = 0, warnings = 0, notes = 0;
  std::map<std::string, std::size_t> by_pass;  // sorted => stable output
  for (const LintOut& out : outs) {
    errors += out.errors;
    warnings += out.warnings;
    notes += out.notes;
    for (const auto& [pass, count] : out.by_pass) by_pass[pass] += count;
    if (!out.text.empty() && !a.json) std::printf("%s", out.text.c_str());
  }
  const bool failed = errors > 0 || (a.werror && warnings > 0);
  if (a.json) {
    // One-object summary footer: totals by severity and by pass. Keys
    // are emitted in sorted order so the output is byte-stable.
    std::string passes = "{";
    for (const auto& [pass, count] : by_pass) {
      if (passes.size() > 1) passes += ",";
      passes += json_str(pass) + ":" + std::to_string(count);
    }
    passes += "}";
    std::printf(
        "{\"command\":\"lint\",\"programs\":%zu,\"errors\":%zu,"
        "\"warnings\":%zu,\"notes\":%zu,"
        "\"by_severity\":{\"error\":%zu,\"warning\":%zu,\"note\":%zu},"
        "\"by_pass\":%s,\"werror\":%s,\"ok\":%s}\n",
        programs, errors, warnings, notes, errors, warnings, notes,
        passes.c_str(), a.werror ? "true" : "false",
        failed ? "false" : "true");
    return failed ? 1 : 0;
  }
  std::printf("linted %zu lowered program%s: %zu error(s), %zu warning(s), "
              "%zu note(s)\n",
              programs, programs == 1 ? "" : "s", errors, warnings, notes);
  if (errors > 0) return 1;
  if (a.werror && warnings > 0) {
    std::printf("treating warnings as errors (--werror)\n");
    return 1;
  }
  return 0;
}

/// One lowered program for `analyze`: the registry combination's label
/// ("kernel/dtype/bytes") plus its KIR.
struct AnalyzeTarget {
  std::string label;
  kir::Program prog;
};

/// Programs `analyze` covers: the positional (kernel, dtype, bytes)
/// triple if given, otherwise every dataset combination (optionally
/// restricted to --kernel), i.e. exactly the programs `lint` walks.
std::vector<AnalyzeTarget> analyze_targets(const Args& a) {
  std::vector<AnalyzeTarget> out;
  if (a.positional.size() >= 3) {
    std::string label =
        a.positional[0] + "/" + a.positional[1] + "/" + a.positional[2];
    out.push_back({std::move(label), lower_kernel(a)});
    return out;
  }
  std::vector<const kernels::KernelInfo*> todo;
  for (const kernels::KernelInfo& k : kernels::all_kernels()) {
    if (!a.kernel.empty() && k.name != a.kernel) continue;
    if (!a.suite.empty() && k.suite != a.suite) continue;
    todo.push_back(&k);
  }
  if ((!a.kernel.empty() || !a.suite.empty()) && todo.empty()) {
    std::fprintf(stderr, "no kernels match (see `pulpclass kernels`)\n");
    std::exit(2);
  }
  for (const kernels::KernelInfo* k : todo) {
    for (const kir::DType t : {kir::DType::I32, kir::DType::F32}) {
      if (!k->supports(t)) continue;
      for (const std::uint32_t bytes : kernels::dataset_sizes()) {
        kir::Program prog =
            dsl::lower(kernels::make_kernel(k->name, t, bytes));
        if (a.optimize) prog = kir::optimize(prog);
        char label[96];
        std::snprintf(label, sizeof label, "%s/%s/%u", k->name.c_str(),
                      t == kir::DType::I32 ? "i32" : "f32", bytes);
        out.push_back({label, std::move(prog)});
      }
    }
  }
  // --sample N: keep every (total/N)th target — a deterministic spread
  // over the registry for cheap CI containment checks.
  if (a.sample > 0 && std::size_t(a.sample) < out.size()) {
    const std::size_t stride = out.size() / std::size_t(a.sample);
    std::vector<AnalyzeTarget> sampled;
    sampled.reserve(std::size_t(a.sample));
    for (std::size_t i = 0;
         i < out.size() && sampled.size() < std::size_t(a.sample);
         i += stride) {
      sampled.push_back(std::move(out[i]));
    }
    out = std::move(sampled);
  }
  return out;
}

std::string report_json(const std::string& label,
                        const kir::CostReport& rep) {
  std::string out = "{\"program\":" + json_str(label) +
                    ",\"best_cores\":" +
                    std::to_string(rep.best_cores_by_energy_hi()) +
                    ",\"configs\":[";
  bool first = true;
  for (const kir::ConfigCost& c : rep.configs) {
    if (!first) out += ",";
    first = false;
    char buf[256];
    // Unbounded upper bounds encode as -1 (JSON has no infinity).
    std::snprintf(
        buf, sizeof buf,
        "{\"cores\":%u,\"cycles_lo\":%lld,\"cycles_hi\":%lld,"
        "\"bounded\":%s,\"energy_lo_fj\":%.1f,\"energy_hi_fj\":%.1f,"
        "\"tightness\":%.6f}",
        c.cores, static_cast<long long>(c.cycles.lo),
        c.bounded ? static_cast<long long>(c.cycles.hi) : -1LL,
        c.bounded ? "true" : "false", c.energy_lo_fj,
        c.bounded ? c.energy_hi_fj : -1.0, c.bounded ? c.tightness() : -1.0);
    out += buf;
  }
  return out + "]}";
}

int cmd_analyze(const Args& a) {
  if (a.positional.size() < 3 && a.kernel.empty() && !a.all && !a.check) {
    std::fprintf(stderr,
                 "analyze wants <kernel> <i32|f32> <bytes>, --kernel NAME, "
                 "--all, or --check\n");
    return 2;
  }
  const kir::CostParams params = energy::cost_params();
  const std::vector<AnalyzeTarget> targets = analyze_targets(a);

  if (!a.check) {
    // Reports are pure per program: compute across the pool, emit in
    // target order so output is byte-identical for every --threads value.
    core::ThreadPool report_pool(0);
    const std::vector<std::string> rendered =
        report_pool.parallel_map<std::string>(
            targets.size(), [&](std::size_t i) {
              const kir::CostReport rep =
                  kir::analyze_cost(targets[i].prog, params);
              if (a.json) return report_json(targets[i].label, rep);
              char tail[64];
              std::snprintf(tail, sizeof tail,
                            "  best by energy bound: %u cores\n\n",
                            rep.best_cores_by_energy_hi());
              return rep.to_string() + tail;
            });
    if (a.json) {
      std::string js;
      for (const std::string& r : rendered) {
        if (!js.empty()) js += ",";
        js += r;
      }
      std::printf("{\"command\":\"analyze\",\"check\":false,\"count\":%zu,"
                  "\"programs\":[%s]}\n",
                  targets.size(), js.c_str());
    } else {
      for (const std::string& r : rendered) std::printf("%s", r.c_str());
    }
    return 0;
  }

  // --check: the soundness gate. Simulate every (program, core count)
  // pair and require the measured region cycles and total energy to lie
  // inside the static interval; report how tight the bounds are and how
  // much cheaper the analysis is than simulation.
  // Targets are independent (one analyzer pass + one simulator per
  // program), so they fan out across the pool; partials are reduced in
  // target order, keeping the UNSOUND report and every statistic
  // byte-identical for any --threads value. The analyze/simulate timings
  // become summed per-worker CPU time — the speedup ratio they feed is
  // unchanged.
  using clock = std::chrono::steady_clock;
  struct CheckOut {
    double analyze_s = 0, simulate_s = 0;
    std::size_t configs = 0, violations = 0, unbounded = 0;
    double sum_tight = 0, max_tight = 0, sum_etight = 0;
    std::size_t tight_n = 0;
    std::string unsound;  ///< UNSOUND lines for stderr, in config order
    std::string error;    ///< fatal simulation failure
  };
  core::ThreadPool check_pool(0);
  const std::vector<CheckOut> checks =
      check_pool.parallel_map<CheckOut>(targets.size(), [&](std::size_t i) {
        const AnalyzeTarget& t = targets[i];
        CheckOut out;
        const auto a0 = clock::now();
        const kir::CostReport rep = kir::analyze_cost(t.prog, params);
        out.analyze_s =
            std::chrono::duration<double>(clock::now() - a0).count();
        sim::Cluster cluster;
        cluster.load(t.prog);
        for (const kir::ConfigCost& c : rep.configs) {
          const auto s0 = clock::now();
          const sim::RunResult r = cluster.run(c.cores);
          out.simulate_s +=
              std::chrono::duration<double>(clock::now() - s0).count();
          if (!r.ok) {
            out.error = t.label + " n=" + std::to_string(c.cores) +
                        ": simulation failed: " + r.error;
            return out;
          }
          ++out.configs;
          const auto cyc = static_cast<long long>(r.stats.region_cycles());
          const double fj = energy::compute_energy(r.stats).total_fj();
          const bool cyc_ok =
              cyc >= c.cycles.lo && (!c.bounded || cyc <= c.cycles.hi);
          const bool e_ok = fj >= c.energy_lo_fj &&
                            (!c.bounded || fj <= c.energy_hi_fj);
          if (!cyc_ok || !e_ok) {
            ++out.violations;
            char line[320];
            std::snprintf(line, sizeof line,
                          "UNSOUND %s n=%u: cycles %lld in [%lld, %lld] %s; "
                          "energy %.1f fJ in [%.1f, %.1f] %s\n",
                          t.label.c_str(), c.cores, cyc,
                          static_cast<long long>(c.cycles.lo),
                          static_cast<long long>(c.cycles.hi),
                          cyc_ok ? "ok" : "VIOLATED", fj, c.energy_lo_fj,
                          c.energy_hi_fj, e_ok ? "ok" : "VIOLATED");
            out.unsound += line;
          }
          if (c.bounded) {
            const double w = c.tightness();
            out.sum_tight += w;
            out.max_tight = std::max(out.max_tight, w);
            // PE leakage makes energy_lo strictly positive for any window.
            out.sum_etight += c.energy_hi_fj / c.energy_lo_fj;
            ++out.tight_n;
          } else {
            ++out.unbounded;
          }
        }
        return out;
      });
  double analyze_s = 0, simulate_s = 0;
  std::size_t configs = 0, violations = 0, unbounded = 0;
  double sum_tight = 0, max_tight = 0, sum_etight = 0;
  std::size_t tight_n = 0;
  for (const CheckOut& out : checks) {
    if (!out.error.empty()) {
      std::fprintf(stderr, "%s\n", out.error.c_str());
      return 1;
    }
    if (!out.unsound.empty()) std::fprintf(stderr, "%s", out.unsound.c_str());
    analyze_s += out.analyze_s;
    simulate_s += out.simulate_s;
    configs += out.configs;
    violations += out.violations;
    unbounded += out.unbounded;
    sum_tight += out.sum_tight;
    max_tight = std::max(max_tight, out.max_tight);
    sum_etight += out.sum_etight;
    tight_n += out.tight_n;
  }
  const double mean_tight = tight_n ? sum_tight / double(tight_n) : 0;
  const double mean_etight = tight_n ? sum_etight / double(tight_n) : 0;
  const double speedup = analyze_s > 0 ? simulate_s / analyze_s : 0;
  const bool ok = violations == 0;
  if (a.json) {
    std::printf(
        "{\"command\":\"analyze\",\"check\":true,\"programs\":%zu,"
        "\"configs\":%zu,\"violations\":%zu,\"unbounded\":%zu,"
        "\"mean_tightness\":%.6f,\"max_tightness\":%.6f,"
        "\"mean_energy_tightness\":%.6f,\"analyze_seconds\":%.6f,"
        "\"simulate_seconds\":%.6f,\"speedup\":%.1f,\"ok\":%s}\n",
        targets.size(), configs, violations, unbounded, mean_tight,
        max_tight, mean_etight, analyze_s, simulate_s, speedup,
        ok ? "true" : "false");
  } else {
    std::printf("checked %zu programs, %zu (program, cores) configs\n",
                targets.size(), configs);
    std::printf("soundness violations: %zu; unbounded configs: %zu\n",
                violations, unbounded);
    std::printf("cycle bound tightness (hi/lo): mean %.3f, max %.3f; "
                "energy mean %.3f\n",
                mean_tight, max_tight, mean_etight);
    std::printf("analyze %.4fs vs simulate %.4fs (%.0fx faster)\n",
                analyze_s, simulate_s, speedup);
  }
  return ok ? 0 : 1;
}

/// `pulpclass gen`: run one generation campaign — draw spec.count
/// candidates from (spec, seed), screen each through the admission
/// funnel, dedupe, and persist the admitted corpus (manifest + canonical
/// renderings + rejection audit) under --out.
int cmd_gen(const Args& a) {
  gen::GenSpec spec;
  if (!a.spec.empty()) spec = gen::GenSpec::parse_file(a.spec);
  if (a.count > 0) spec.count = static_cast<unsigned>(a.count);
  gen::AdmitOptions opt;
  opt.threads = a.threads > 0 ? unsigned(a.threads) : 0;
  const auto seed = static_cast<std::uint64_t>(a.seed);
  const gen::CampaignResult result = gen::run_campaign(spec, seed, opt);
  const std::string out = a.out.empty() ? "pulpclass_gen" : a.out;
  gen::write_campaign(result, out);

  const std::size_t admitted = result.admitted();
  const std::size_t total = result.candidates.size();
  constexpr gen::Stage kRejectStages[] = {
      gen::Stage::Validate,      gen::Stage::Lower,
      gen::Stage::Verify,        gen::Stage::Analyze,
      gen::Stage::DedupeHash,    gen::Stage::DedupeProfile,
  };
  const std::size_t dupes = result.rejected_at(gen::Stage::DedupeHash) +
                            result.rejected_at(gen::Stage::DedupeProfile);
  if (a.json) {
    std::string rejected = "{";
    for (const gen::Stage s : kRejectStages) {
      if (rejected.size() > 1) rejected += ",";
      rejected += std::string("\"") + gen::to_string(s) +
                  "\":" + std::to_string(result.rejected_at(s));
    }
    rejected += "}";
    std::printf(
        "{\"command\":\"gen\",\"seed\":%llu,\"spec\":%s,\"out\":%s,"
        "\"candidates\":%zu,\"admitted\":%zu,\"rejected\":%s,"
        "\"admission_rate\":%.4f,\"dedupe_rate\":%.4f}\n",
        static_cast<unsigned long long>(seed),
        json_str(spec.to_string()).c_str(), json_str(out).c_str(), total,
        admitted, rejected.c_str(),
        total ? double(admitted) / double(total) : 0.0,
        total ? double(dupes) / double(total) : 0.0);
    return admitted > 0 ? 0 : 1;
  }
  std::printf("campaign seed %llu: %zu candidates -> %zu admitted\n",
              static_cast<unsigned long long>(seed), total, admitted);
  for (const gen::Stage s : kRejectStages) {
    const std::size_t n = result.rejected_at(s);
    if (n > 0) std::printf("  rejected at %-14s %zu\n", gen::to_string(s), n);
  }
  std::printf("corpus written to %s (use --gen %s to install it)\n",
              out.c_str(), out.c_str());
  return admitted > 0 ? 0 : 1;
}

/// `pulpclass eval --loko`: the enlarged-corpus experiment. Train/test
/// protocol is leave-one-kernel-out over the 59 seed kernels only; the
/// generated + mlkern suites are training-only extra corpus, so the two
/// accuracy columns are directly comparable — same held-out samples,
/// different training sets.
int cmd_eval(const Args& a) {
  if (!a.loko) {
    std::fprintf(stderr, "eval wants --loko (the only protocol so far)\n");
    return 2;
  }
  if (a.gen.empty()) {
    std::fprintf(stderr,
                 "eval --loko needs --gen DIR (run `pulpclass gen` first)\n");
    return 2;
  }
  const gen::Manifest manifest = gen::read_manifest(a.gen);

  // Seed configurations: exactly the paper's 448 samples, independent of
  // whatever runtime suites --gen installed into the registry.
  std::vector<core::SampleConfig> seed_cfgs;
  for (const kernels::KernelInfo& k : kernels::builtin_kernels()) {
    for (const kir::DType t : {kir::DType::I32, kir::DType::F32}) {
      if (!k.supports(t)) continue;
      for (const std::uint32_t bytes : kernels::dataset_sizes()) {
        seed_cfgs.push_back({k.name, t, bytes});
      }
    }
  }
  // Extra training corpus: the generated kernels (optionally capped by
  // --sample, taken in manifest order) and the mlkern suite, both at the
  // campaign's problem sizes.
  std::vector<core::SampleConfig> extra = gen::generated_configs(manifest);
  if (a.sample > 0 && std::size_t(a.sample) < extra.size()) {
    extra.resize(std::size_t(a.sample));
  }
  for (const kernels::KernelInfo& k : kernels::ml_family()) {
    for (const kir::DType t : {kir::DType::I32, kir::DType::F32}) {
      if (!k.supports(t)) continue;
      for (const std::uint32_t bytes : manifest.spec.sizes) {
        extra.push_back({k.name, t, bytes});
      }
    }
  }

  // Both datasets build through the artifact store, so a second eval (or
  // a prior `dataset build`) replays counters instead of re-simulating.
  pulpclass::BuildOptions opt = build_options(a);
  opt.artifact_dir = store_dir(a);
  const ml::Dataset ds_seed = core::build_dataset(seed_cfgs, opt,
                                                  print_progress);
  std::vector<core::SampleConfig> all_cfgs = seed_cfgs;
  all_cfgs.insert(all_cfgs.end(), extra.begin(), extra.end());
  const ml::Dataset ds_all = core::build_dataset(all_cfgs, opt,
                                                 print_progress);

  const std::vector<std::string> cols =
      feat::feature_set_columns(feat::FeatureSet::AllStatic);
  const auto groups_of = [](const ml::Dataset& ds) {
    std::vector<std::string> g;
    g.reserve(ds.samples().size());
    for (const ml::Sample& s : ds.samples()) g.push_back(s.kernel);
    return g;
  };
  // build_dataset lands samples in config order, so the seed samples are
  // the first seed_cfgs.size() rows of both datasets: one shared holdout
  // pool.
  std::vector<std::size_t> pool(seed_cfgs.size());
  for (std::size_t i = 0; i < pool.size(); ++i) pool[i] = i;
  ml::EvalOptions eopt;
  const ml::GroupEvalResult base = ml::evaluate_leave_one_group_out(
      ds_seed, cols, groups_of(ds_seed), pool, eopt);
  const ml::GroupEvalResult enlarged = ml::evaluate_leave_one_group_out(
      ds_all, cols, groups_of(ds_all), pool, eopt);

  if (a.json) {
    const auto accs = [](const ml::GroupEvalResult& r) {
      std::string s = "[";
      for (std::size_t i = 0; i < r.accuracy.size(); ++i) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%s%.6f", i == 0 ? "" : ",",
                      r.accuracy[i]);
        s += buf;
      }
      return s + "]";
    };
    std::string tols = "[";
    for (std::size_t i = 0; i < base.tolerances.size(); ++i) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%s%g", i == 0 ? "" : ",",
                    base.tolerances[i]);
      tols += buf;
    }
    tols += "]";
    std::printf(
        "{\"command\":\"eval\",\"protocol\":\"loko\",\"gen\":%s,"
        "\"seed_samples\":%zu,\"extra_samples\":%zu,\"holdout_kernels\":%zu,"
        "\"tolerances\":%s,\"seed_accuracy\":%s,\"enlarged_accuracy\":%s,"
        "\"seed_at_0\":%.6f,\"enlarged_at_0\":%.6f,"
        "\"seed_at_5\":%.6f,\"enlarged_at_5\":%.6f}\n",
        json_str(a.gen).c_str(), seed_cfgs.size(), extra.size(),
        base.groups, tols.c_str(), accs(base).c_str(),
        accs(enlarged).c_str(), base.accuracy_at(0.0),
        enlarged.accuracy_at(0.0), base.accuracy_at(0.05),
        enlarged.accuracy_at(0.05));
    return 0;
  }
  std::printf("leave-one-kernel-out over %zu seed kernels "
              "(%zu held-out samples)\n",
              base.groups, base.test_samples);
  std::printf("training corpus: seed %zu samples vs enlarged %zu samples "
              "(+%zu generated/mlkern)\n",
              seed_cfgs.size(), all_cfgs.size(), extra.size());
  std::printf("%-12s %10s %10s\n", "tolerance", "seed", "enlarged");
  for (std::size_t i = 0; i < base.tolerances.size(); ++i) {
    std::printf("%-12.2f %9.1f%% %9.1f%%\n", base.tolerances[i],
                100 * base.accuracy[i], 100 * enlarged.accuracy[i]);
  }
  return 0;
}

int cmd_kernels(const Args& a) {
  std::printf("%-20s %-10s %s\n", "kernel", "suite", "types");
  for (const kernels::KernelInfo& k : kernels::all_kernels()) {
    if (!a.suite.empty() && k.suite != a.suite) continue;
    const char* types = k.types == kernels::TypeSupport::Both ? "i32 f32"
                        : k.types == kernels::TypeSupport::IntOnly
                            ? "i32"
                            : "f32";
    std::printf("%-20s %-10s %s\n", k.name.c_str(), k.suite.c_str(), types);
  }
  return 0;
}

int cmd_dataset(const Args& a) {
  if (!a.positional.empty()) {
    Args sub = a;
    sub.positional.erase(sub.positional.begin());
    if (a.positional[0] == "build") return cmd_dataset_build(sub);
    if (a.positional[0] == "relabel") return cmd_dataset_relabel(sub);
    return usage();
  }
  // Pre-verb-noun alias: bare `dataset` meant "build".
  deprecated("dataset", "dataset build");
  return cmd_dataset_build(a);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv);
  if (args.threads > 0) {
    // Every parallel region resolves its worker count through
    // PULPC_THREADS, so one env var wires the whole pipeline.
    setenv("PULPC_THREADS", std::to_string(args.threads).c_str(), 1);
  }
  try {
    if (!args.gen.empty() && cmd != "gen") {
      // Install the generated corpus + the mlkern suite before dispatch,
      // so every command sees the enlarged registry.
      const gen::Manifest m = gen::install_generated(args.gen);
      kernels::register_runtime_kernels(kernels::ml_family());
      std::fprintf(stderr,
                   "installed %zu generated kernels from %s (+mlkern)\n",
                   m.kernels.size(), args.gen.c_str());
    }
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "eval") return cmd_eval(args);
    if (cmd == "dataset") return cmd_dataset(args);
    if (cmd == "relabel") {
      // Pre-verb-noun alias for `dataset relabel`.
      deprecated("relabel", "dataset relabel");
      return cmd_dataset_relabel(args);
    }
    if (cmd == "cache") return cmd_cache(args);
    if (cmd == "train") return cmd_train(args);
    if (cmd == "predict") return cmd_predict(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "query") return cmd_query(args);
    if (cmd == "bench-serve") return cmd_bench_serve(args);
    if (cmd == "sweep") return cmd_sweep(args);
    if (cmd == "analyze") return cmd_analyze(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "disasm") return cmd_disasm(args);
    if (cmd == "kernels") return cmd_kernels(args);
    if (cmd == "lint") return cmd_lint(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
