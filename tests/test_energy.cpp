// Energy-model tests: Table I constants, hand-computed integrations,
// component breakdowns and qualitative invariants (leakage grows with
// time, work grows with activity, unused cores cost clock-gating).
#include <gtest/gtest.h>

#include "energy/model.hpp"

namespace pulpc::energy {
namespace {

/// Empty 8c4flp-shaped run of `cycles` region cycles with `ncores`
/// participating cores.
sim::RunStats blank_run(unsigned ncores, std::uint64_t cycles) {
  sim::RunStats st;
  st.ncores = ncores;
  st.total_cores = 8;
  st.total_cycles = cycles;
  st.region_begin = 1;
  st.region_end = cycles;
  st.core.resize(8);
  st.l1.resize(16);
  st.l2.resize(32);
  st.fpu.resize(4);
  return st;
}

TEST(EnergyModel, TableOneConstantsMatchThePaper) {
  const EnergyModel m;
  EXPECT_DOUBLE_EQ(m.pe_leakage, 182.0);
  EXPECT_DOUBLE_EQ(m.pe_nop, 1212.0);
  EXPECT_DOUBLE_EQ(m.pe_alu, 2558.0);
  EXPECT_DOUBLE_EQ(m.pe_fp, 2468.0);
  EXPECT_DOUBLE_EQ(m.pe_l1, 3242.0);
  EXPECT_DOUBLE_EQ(m.pe_l2, 1011.0);
  EXPECT_DOUBLE_EQ(m.pe_cg, 20.0);
  EXPECT_DOUBLE_EQ(m.fpu_leakage, 191.0);
  EXPECT_DOUBLE_EQ(m.fpu_operative, 299.0);
  EXPECT_DOUBLE_EQ(m.fpu_idle, 0.0);
  EXPECT_DOUBLE_EQ(m.l1_leakage, 49.0);
  EXPECT_DOUBLE_EQ(m.l1_read, 2543.0);
  EXPECT_DOUBLE_EQ(m.l1_write, 2568.0);
  EXPECT_DOUBLE_EQ(m.l1_idle, 64.0);
  EXPECT_DOUBLE_EQ(m.l2_leakage, 105.0);
  EXPECT_DOUBLE_EQ(m.l2_read, 2942.0);
  EXPECT_DOUBLE_EQ(m.l2_write, 3480.0);
  EXPECT_DOUBLE_EQ(m.l2_idle, 13.0);
  EXPECT_DOUBLE_EQ(m.icache_leakage, 774.0);
  EXPECT_DOUBLE_EQ(m.icache_use, 4492.0);
  EXPECT_DOUBLE_EQ(m.icache_refill, 5932.0);
  EXPECT_DOUBLE_EQ(m.dma_leakage, 165.0);
  EXPECT_DOUBLE_EQ(m.dma_transfer, 1750.0);
  EXPECT_DOUBLE_EQ(m.dma_idle, 46.0);
  EXPECT_DOUBLE_EQ(m.other_leakage, 655.0);
  EXPECT_DOUBLE_EQ(m.other_active, 2702.0);
}

TEST(EnergyModel, IdleClusterEnergyIsHandComputable) {
  const EnergyModel m;
  const std::uint64_t T = 1000;
  const sim::RunStats st = blank_run(1, T);
  const EnergyBreakdown e = compute_energy(st, m);
  const double t = static_cast<double>(T);
  // 8 PEs: leakage always; the one participating core has no accounted
  // cycles -> treated as clock-gated, like the 7 parked ones.
  EXPECT_DOUBLE_EQ(e.pe, 8 * (m.pe_leakage + m.pe_cg) * t);
  EXPECT_DOUBLE_EQ(e.fpu, 4 * (m.fpu_leakage + m.fpu_idle) * t);
  EXPECT_DOUBLE_EQ(e.l1, 16 * (m.l1_leakage + m.l1_idle) * t);
  EXPECT_DOUBLE_EQ(e.l2, 32 * (m.l2_leakage + m.l2_idle) * t);
  EXPECT_DOUBLE_EQ(e.icache, m.icache_leakage * t);
  EXPECT_DOUBLE_EQ(e.dma, (m.dma_leakage + m.dma_idle) * t);
  EXPECT_DOUBLE_EQ(e.other, m.other_leakage * t);
  EXPECT_DOUBLE_EQ(e.total_fj(),
                   e.pe + e.fpu + e.l1 + e.l2 + e.icache + e.dma + e.other);
}

TEST(EnergyModel, PerOpcodeClassCyclesAreChargedAtTableRates) {
  const EnergyModel m;
  sim::RunStats st = blank_run(1, 100);
  st.core[0].cyc_alu = 40;
  st.core[0].cyc_fp = 10;
  st.core[0].cyc_l1 = 20;
  st.core[0].cyc_l2 = 15;
  st.core[0].cyc_wait = 10;
  st.core[0].cyc_cg = 5;
  const EnergyBreakdown e = compute_energy(st, m);
  const double expected_core0 =
      m.pe_leakage * 100 + m.pe_alu * 40 + m.pe_fp * 10 + m.pe_l1 * 20 +
      m.pe_l2 * 15 + m.pe_nop * 10 + m.pe_cg * 5;
  const double parked = 7 * (m.pe_leakage + m.pe_cg) * 100;
  EXPECT_DOUBLE_EQ(e.pe, expected_core0 + parked);
}

TEST(EnergyModel, MemoryAccessesChargeReadAndWriteRates) {
  const EnergyModel m;
  sim::RunStats st = blank_run(1, 10);
  st.l1[3].reads = 4;
  st.l1[3].writes = 2;
  st.l2[7].reads = 1;
  const EnergyBreakdown e = compute_energy(st, m);
  const double l1_expected = 16 * m.l1_leakage * 10 +
                             m.l1_read * 4 + m.l1_write * 2 +
                             (16 * 10 - 6) * m.l1_idle;
  EXPECT_DOUBLE_EQ(e.l1, l1_expected);
  const double l2_expected = 32 * m.l2_leakage * 10 + m.l2_read * 1 +
                             (32 * 10 - 1) * m.l2_idle;
  EXPECT_DOUBLE_EQ(e.l2, l2_expected);
}

TEST(EnergyModel, IcacheAndDmaActivity) {
  const EnergyModel m;
  sim::RunStats st = blank_run(1, 10);
  st.icache.uses = 30;
  st.icache.refills = 2;
  st.dma.beats = 8;
  st.dma.busy_cycles = 8;
  const EnergyBreakdown e = compute_energy(st, m);
  EXPECT_DOUBLE_EQ(e.icache, m.icache_leakage * 10 + m.icache_use * 30 +
                                 m.icache_refill * 2);
  EXPECT_DOUBLE_EQ(e.dma, m.dma_leakage * 10 + m.dma_transfer * 8 +
                              m.dma_idle * 2);
}

TEST(EnergyModel, InterconnectActiveScalesWithRunningCores) {
  const EnergyModel m;
  sim::RunStats one = blank_run(1, 100);
  one.core[0].cyc_alu = 100;
  sim::RunStats two = blank_run(2, 100);
  two.core[0].cyc_alu = 100;
  two.core[1].cyc_alu = 100;
  const double e1 = compute_energy(one, m).other;
  const double e2 = compute_energy(two, m).other;
  EXPECT_DOUBLE_EQ(e2 - e1, m.other_active * 100);
}

TEST(EnergyModel, ClockGatedCyclesDoNotToggleInterconnect) {
  const EnergyModel m;
  sim::RunStats st = blank_run(1, 100);
  st.core[0].cyc_cg = 100;
  EXPECT_DOUBLE_EQ(compute_energy(st, m).other, m.other_leakage * 100);
}

TEST(EnergyModel, MoreCyclesAlwaysCostMoreEnergy) {
  for (const std::uint64_t t : {10ULL, 100ULL, 1000ULL}) {
    const double a = total_energy_fj(blank_run(4, t));
    const double b = total_energy_fj(blank_run(4, t * 2));
    EXPECT_LT(a, b) << t;
  }
}

TEST(EnergyModel, FpuBusyCyclesAreOperative) {
  const EnergyModel m;
  sim::RunStats st = blank_run(1, 50);
  st.fpu[2].busy_cycles = 20;
  const EnergyBreakdown e = compute_energy(st, m);
  EXPECT_DOUBLE_EQ(e.fpu, 4 * m.fpu_leakage * 50 + m.fpu_operative * 20 +
                              m.fpu_idle * (4 * 50 - 20));
}

TEST(EnergyModel, UnitsConvertToMicrojoules) {
  EnergyBreakdown e;
  e.pe = 1e9;  // 1e9 fJ == 1 uJ
  EXPECT_DOUBLE_EQ(e.total_uj(), 1.0);
}

TEST(EnergyModel, ReportMentionsEveryComponent) {
  const EnergyBreakdown e = compute_energy(blank_run(2, 100));
  const std::string r = report(e);
  for (const char* name : {"processing elems", "shared FPUs", "TCDM banks",
                           "L2 banks", "I-cache", "DMA", "other cluster",
                           "total"}) {
    EXPECT_NE(r.find(name), std::string::npos) << name;
  }
}

TEST(EnergyModel, ZeroRegionYieldsZeroEnergy) {
  sim::RunStats st = blank_run(1, 0);
  st.region_begin = 5;
  st.region_end = 0;
  EXPECT_DOUBLE_EQ(total_energy_fj(st), 0.0);
}

TEST(EnergyModel, CustomModelScalesResults) {
  EnergyModel cheap;
  cheap.pe_alu = 1.0;
  sim::RunStats st = blank_run(1, 10);
  st.core[0].cyc_alu = 10;
  const double base = compute_energy(st, EnergyModel{}).pe;
  const double scaled = compute_energy(st, cheap).pe;
  EXPECT_LT(scaled, base);
}

}  // namespace
}  // namespace pulpc::energy
