// Tests for the two static loop schedules: contiguous chunking
// (schedule(static)) and round-robin interleaving (schedule(static,1)).
// Both must compute identical results; their cost profiles differ
// (region-entry overhead, TCDM banking).
#include <gtest/gtest.h>

#include <vector>

#include "dsl/builder.hpp"
#include "dsl/lower.hpp"
#include "sim/cluster.hpp"

namespace pulpc {
namespace {

using dsl::Buf;
using dsl::InitKind;
using dsl::KernelBuilder;
using dsl::Schedule;
using dsl::Val;
using kir::DType;
using kir::Op;

Val ic(std::int32_t v) { return dsl::make_const_i(v); }

dsl::KernelSpec fill_kernel(bool cyclic, std::uint32_t n,
                            std::int32_t step = 1) {
  KernelBuilder k(cyclic ? "cyc" : "chk", "test", DType::I32, n * 4);
  const Buf out = k.buffer("out", n, InitKind::Zero);
  const auto body = [&](Val i) { k.store(out, i, i * ic(3) + ic(1)); };
  if (cyclic) {
    k.par_for_cyclic("i", ic(0), ic(int(n)), body, step);
  } else {
    k.par_for("i", ic(0), ic(int(n)), body, step);
  }
  return k.build();
}

std::vector<std::int32_t> run_dump(const dsl::KernelSpec& spec,
                                   unsigned cores) {
  const kir::Program p = dsl::lower(spec);
  EXPECT_EQ(kir::verify(p), "");
  sim::Cluster cl;
  cl.load(p);
  const sim::RunResult r = cl.run(cores);
  EXPECT_TRUE(r.ok) << r.error;
  std::vector<std::int32_t> out(p.buffers[0].elems);
  for (std::uint32_t i = 0; i < out.size(); ++i) {
    out[i] = cl.read_i32(p.buffers[0].base + 4 * i);
  }
  return out;
}

class ScheduleCores : public ::testing::TestWithParam<unsigned> {};

TEST_P(ScheduleCores, CyclicComputesSameResultAsChunked) {
  const unsigned cores = GetParam();
  EXPECT_EQ(run_dump(fill_kernel(true, 100), cores),
            run_dump(fill_kernel(false, 100), cores));
}

TEST_P(ScheduleCores, CyclicHandlesSteppedLoops) {
  const unsigned cores = GetParam();
  EXPECT_EQ(run_dump(fill_kernel(true, 96, 3), cores),
            run_dump(fill_kernel(false, 96, 3), cores));
}

TEST_P(ScheduleCores, CyclicHandlesFewerIterationsThanCores) {
  const unsigned cores = GetParam();
  const auto out = run_dump(fill_kernel(true, 64), cores);
  // Only correctness matters here; the sweep over `cores` includes more
  // cores than iterations for tiny loops elsewhere.
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(out[i], std::int32_t(3 * i + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(AllCoreCounts, ScheduleCores,
                         ::testing::Values(1U, 2U, 3U, 5U, 8U));

TEST(Schedule, CyclicRegionEntryAvoidsTheDivider) {
  const kir::Program chunked = dsl::lower(fill_kernel(false, 64));
  const kir::Program cyclic = dsl::lower(fill_kernel(true, 64));
  const auto count = [](const kir::Program& p, Op op) {
    std::size_t n = 0;
    for (const kir::Instr& i : p.code) n += i.op == op ? 1 : 0;
    return n;
  };
  EXPECT_GE(count(chunked, Op::Div), 1U);  // ceil(n / ncores)
  EXPECT_EQ(count(cyclic, Op::Div), 0U);   // plain stride walk
}

TEST(Schedule, BothRecordEquivalentStaticMetadata) {
  const kir::Program chunked = dsl::lower(fill_kernel(false, 128));
  const kir::Program cyclic = dsl::lower(fill_kernel(true, 128));
  ASSERT_EQ(chunked.regions.size(), 1U);
  ASSERT_EQ(cyclic.regions.size(), 1U);
  EXPECT_EQ(chunked.regions[0].total_iters, cyclic.regions[0].total_iters);
  ASSERT_EQ(cyclic.loops.size(), 1U);
  EXPECT_TRUE(cyclic.loops[0].parallel);
  EXPECT_EQ(cyclic.loops[0].trip, 128);
}

TEST(Schedule, CyclicSpreadsUnitStrideAccessOverBanks) {
  // Unit-stride writes: chunked puts all 8 cores on the same bank each
  // cycle whenever the chunk size is a multiple of the bank count;
  // cyclic gives consecutive cores consecutive banks.
  const std::uint32_t n = 1024;
  const auto conflicts = [&](bool cyclic) {
    const kir::Program p = dsl::lower(fill_kernel(cyclic, n));
    sim::Cluster cl;
    cl.load(p);
    const sim::RunResult r = cl.run(8);
    EXPECT_TRUE(r.ok);
    return r.stats.l1_conflicts();
  };
  const std::uint64_t chunked = conflicts(false);
  const std::uint64_t cyc = conflicts(true);
  EXPECT_LT(cyc, chunked / 4 + 1) << "chunked=" << chunked
                                  << " cyclic=" << cyc;
}

TEST(Schedule, CyclicIsFasterForTinyRegions) {
  // Region entry without the two serial divides matters when the loop
  // body is only a handful of iterations.
  const auto cycles = [&](bool cyclic) {
    const kir::Program p = dsl::lower(fill_kernel(cyclic, 16));
    sim::Cluster cl;
    cl.load(p);
    const sim::RunResult r = cl.run(8);
    EXPECT_TRUE(r.ok);
    return r.stats.region_cycles();
  };
  EXPECT_LT(cycles(true), cycles(false));
}

TEST(Schedule, ValidationStillRejectsDivergentScalars) {
  KernelBuilder k("bad", "test", DType::I32, 256);
  const Buf out = k.buffer("out", 16, InitKind::Zero);
  auto acc = k.decl("acc", ic(0));
  k.par_for_cyclic("i", ic(0), ic(16), [&](Val i) {
    k.assign(acc, acc + i);
  });
  k.par_for_cyclic("j", ic(0), ic(16), [&](Val j) {
    k.store(out, j, acc);  // acc diverged per core
  });
  EXPECT_THROW((void)dsl::lower(k.build()), std::invalid_argument);
}

}  // namespace
}  // namespace pulpc
