// Hand-checked corpus for the static cost/energy bound analyzer.
//
// Each corpus kernel has deterministic control flow (no data-dependent
// branches), so at one core the analyzer's interval semantics must
// collapse: the cycle bound is exact (lo == hi == the simulator's
// kernel-region window) and the energy interval brackets the simulated
// energy with only the float-rounding margins. The shapes cover the
// analyzer's distinct code paths:
//   * straight-line code (issue classes + icache refills only),
//   * a fixed-trip serial loop (widening-free trip resolution),
//   * an explicit barrier pair (wakeup-window accounting),
//   * a DMA transfer overlapped with compute (engine model + DmaWait
//     sleep/drained split).
// Registry spot checks and an all-core-counts containment sweep guard
// the same invariants on real dataset kernels.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "dsl/builder.hpp"
#include "dsl/lower.hpp"
#include "energy/model.hpp"
#include "kernels/registry.hpp"
#include "kir/costmodel.hpp"
#include "kir/costpass.hpp"
#include "kir/passes.hpp"
#include "sim/cluster.hpp"

namespace pulpc {
namespace {

using dsl::Buf;
using dsl::InitKind;
using dsl::KernelBuilder;
using dsl::Val;
using kir::DType;

struct SimPoint {
  long long cycles = 0;
  double energy_fj = 0.0;
};

SimPoint simulate(const kir::Program& prog, unsigned cores) {
  sim::Cluster cl;
  cl.load(prog);
  const sim::RunResult r = cl.run(cores);
  EXPECT_TRUE(r.ok) << r.error;
  return {static_cast<long long>(r.stats.region_cycles()),
          energy::total_energy_fj(r.stats)};
}

/// Core assertion of the corpus: at one core the bounds are exact on
/// cycles and contain the simulated energy.
void expect_exact_at_one_core(const kir::Program& prog) {
  const kir::CostReport rep = kir::analyze_cost(prog);
  const kir::ConfigCost* c = rep.config(1);
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(c->bounded) << rep.to_string();
  EXPECT_EQ(c->cycles.lo, c->cycles.hi) << rep.to_string();
  const SimPoint sim = simulate(prog, 1);
  EXPECT_EQ(c->cycles.lo, sim.cycles) << rep.to_string();
  EXPECT_LE(c->energy_lo_fj, sim.energy_fj);
  EXPECT_GE(c->energy_hi_fj, sim.energy_fj);
}

TEST(CostModelCorpus, StraightLineExactAtOneCore) {
  KernelBuilder k("straight", "corpus", DType::I32, 64);
  const Buf a = k.buffer("a", 16, InitKind::Ramp);
  const Buf b = k.buffer("b", 16, InitKind::Zero);
  // Four loads, four ALU adds, four stores -- no branches at all, so
  // the region cost is the sum of the issue-class costs plus the two
  // region-boundary cycles and the icache refill stalls, all of which
  // the analyzer must price exactly.
  for (int i = 0; i < 4; ++i) {
    k.store(b, KernelBuilder::ic(i),
            k.load(a, KernelBuilder::ic(i)) + k.ec(i + 1));
  }
  expect_exact_at_one_core(dsl::lower(k.build()));
}

TEST(CostModelCorpus, FixedTripLoopExactAtOneCore) {
  KernelBuilder k("fixloop", "corpus", DType::I32, 128);
  const Buf a = k.buffer("a", 32, InitKind::Random);
  const Buf b = k.buffer("b", 32, InitKind::Zero);
  // Constant bounds: the interval walk resolves the trip count to the
  // point [16, 16] without widening, so per-iteration costs multiply
  // out exactly (including the taken-branch penalty on the back edge).
  k.for_("i", KernelBuilder::ic(0), KernelBuilder::ic(16), [&](Val i) {
    k.store(b, i, k.load(a, i) * k.ec(3) + k.ec(1));
  });
  expect_exact_at_one_core(dsl::lower(k.build()));
}

TEST(CostModelCorpus, BarrierPairExactAtOneCore) {
  // Build the same kernel with and without an explicit barrier pair (the
  // lowering inserts its own barriers around serial regions, so the
  // absolute count is an implementation detail -- the *delta* is ours).
  const auto build = [](bool with_barriers) {
    KernelBuilder k("barriers", "corpus", DType::I32, 64);
    const Buf b = k.buffer("b", 16, InitKind::Zero);
    k.store(b, KernelBuilder::ic(0), k.ec(1));
    if (with_barriers) k.barrier();
    k.store(b, KernelBuilder::ic(1), k.ec(2));
    if (with_barriers) k.barrier();
    k.store(b, KernelBuilder::ic(2), k.ec(3));
    return dsl::lower(k.build());
  };
  const kir::Program with = build(true);
  expect_exact_at_one_core(with);
  const kir::CostParams defaults;
  const auto episodes = [&](const kir::Program& p) {
    long long n = 0;
    for (const kir::Instr& in : p.code) {
      if (in.op == kir::Op::Barrier) ++n;
    }
    return n;
  };
  // No barrier sits inside a loop here, so the attribution is exactly
  // one wakeup window per Barrier instruction in the lowered code.
  const kir::Program without = build(false);
  EXPECT_EQ(kir::analyze_cost(with).config(1)->barrier_cycles,
            episodes(with) * defaults.barrier_wakeup);
  EXPECT_EQ(kir::analyze_cost(without).config(1)->barrier_cycles,
            episodes(without) * defaults.barrier_wakeup);
  EXPECT_GE(episodes(with), episodes(without) + 2);
}

TEST(CostModelCorpus, DmaOverlapExactAtOneCore) {
  KernelBuilder k("dmaoverlap", "corpus", DType::I32, 512);
  const Buf l2 = k.buffer("src", 64, InitKind::Ramp, kir::MemSpace::L2);
  const Buf dst = k.buffer("dst", 64, InitKind::Zero);
  const Buf out = k.buffer("out", 64, InitKind::Zero);
  // Kick off a 64-word transfer, overlap it with a compute loop, then
  // sleep on the engine. The analyzer must track the engine's elapsed
  // beats through the loop so the DmaWait sleep interval collapses to
  // the exact residue (possibly zero if compute covers the transfer).
  k.dma_copy(dst, l2, 64);
  k.for_("i", KernelBuilder::ic(0), KernelBuilder::ic(8), [&](Val i) {
    k.store(out, i, k.load(out, i) + k.ec(1));
  });
  k.dma_wait();
  k.for_("i", KernelBuilder::ic(0), KernelBuilder::ic(8), [&](Val i) {
    k.store(out, i, k.load(dst, i) + k.load(out, i));
  });
  expect_exact_at_one_core(dsl::lower(k.build()));
}

TEST(CostModelCorpus, DmaWaitSleepResidueIsAttributed) {
  // No compute between start and wait: the core must sleep for almost
  // the whole transfer, and the analyzer's dma_wait attribution must be
  // a nonzero exact interval.
  KernelBuilder k("dmasleep", "corpus", DType::I32, 512);
  const Buf l2 = k.buffer("src", 64, InitKind::Ramp, kir::MemSpace::L2);
  const Buf dst = k.buffer("dst", 64, InitKind::Zero);
  k.dma_copy(dst, l2, 64);
  k.dma_wait();
  k.store(dst, KernelBuilder::ic(0), k.ec(7));
  const kir::Program prog = dsl::lower(k.build());
  expect_exact_at_one_core(prog);
  const kir::CostReport rep = kir::analyze_cost(prog);
  const kir::ConfigCost* c = rep.config(1);
  EXPECT_EQ(c->dma_wait.lo, c->dma_wait.hi);
  EXPECT_GT(c->dma_wait.lo, 0);
}

TEST(CostModelCorpus, RegistrySpotChecksExactAtOneCore) {
  // Registry kernels with deterministic control flow stay exact at one
  // core (fir and friends use data-dependent branches and only get
  // containment, covered by the sweep test below).
  for (const auto& [name, dtype] :
       {std::pair<const char*, DType>{"gemm", DType::I32},
        {"dma_pingpong", DType::I32}}) {
    SCOPED_TRACE(name);
    const kir::Program prog =
        dsl::lower(kernels::make_kernel(name, dtype, 512));
    expect_exact_at_one_core(prog);
  }
}

TEST(CostModelCorpus, BoundsContainSimulationAtAllCoreCounts) {
  for (const char* name : {"gemm", "jacobi1d"}) {
    SCOPED_TRACE(name);
    const kir::Program prog =
        dsl::lower(kernels::make_kernel(name, DType::I32, 2048));
    const kir::CostReport rep = kir::analyze_cost(prog);
    for (unsigned n = 1; n <= 8; ++n) {
      const kir::ConfigCost* c = rep.config(n);
      ASSERT_NE(c, nullptr);
      ASSERT_TRUE(c->bounded);
      const SimPoint sim = simulate(prog, n);
      EXPECT_GE(sim.cycles, c->cycles.lo) << "cores " << n;
      EXPECT_LE(sim.cycles, c->cycles.hi) << "cores " << n;
      EXPECT_GE(sim.energy_fj, c->energy_lo_fj) << "cores " << n;
      EXPECT_LE(sim.energy_fj, c->energy_hi_fj) << "cores " << n;
    }
  }
}

TEST(CostModelCorpus, PerLoopAttributionCoversFixedLoop) {
  KernelBuilder k("looprep", "corpus", DType::I32, 128);
  const Buf a = k.buffer("a", 32, InitKind::Random);
  const Buf b = k.buffer("b", 32, InitKind::Zero);
  k.for_("i", KernelBuilder::ic(0), KernelBuilder::ic(16), [&](Val i) {
    k.store(b, i, k.load(a, i) + k.ec(1));
  });
  const kir::CostReport rep = kir::analyze_cost(dsl::lower(k.build()));
  const kir::ConfigCost* c = rep.config(1);
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->loops.size(), 1U);
  EXPECT_FALSE(c->loops[0].parallel);
  EXPECT_EQ(c->loops[0].trip.lo, 16);
  EXPECT_EQ(c->loops[0].trip.hi, 16);
  // The loop's charged cycles are part of core 0's busy bound.
  EXPECT_GT(c->loops[0].cycles.lo, 0);
  EXPECT_LE(c->loops[0].cycles.hi, c->busy0.hi);
}

TEST(CostModelCorpus, EnergyUpperBoundPrefersFewerCoresForTinyKernels) {
  // A kernel that is all barrier and no work should not predict 8 cores
  // as the energy optimum from its upper bounds.
  KernelBuilder k("tiny", "corpus", DType::I32, 64);
  const Buf b = k.buffer("b", 16, InitKind::Zero);
  k.store(b, KernelBuilder::ic(0), k.ec(1));
  const kir::CostReport rep = kir::analyze_cost(dsl::lower(k.build()));
  EXPECT_EQ(rep.best_cores_by_energy_hi(), 1U);
}

TEST(CostBoundPassTest, RetainsReportsAndStaysClean) {
  const kir::Program prog =
      dsl::lower(kernels::make_kernel("gemm", DType::I32, 512));
  auto pass = std::make_unique<kir::CostBoundPass>();
  const kir::CostBoundPass* raw = pass.get();
  kir::PassManager pm;
  pm.add(std::move(pass));
  const kir::VerifyReport report = pm.run(prog);
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(raw->reports().size(), 1U);
  EXPECT_EQ(raw->reports()[0].configs.size(), 8U);
  // gemm is fully analyzable: any diagnostics would be precision-loss
  // notes, and those must carry Note severity only.
  for (const kir::Diagnostic& d : report.diags) {
    EXPECT_EQ(d.severity, kir::Severity::Note) << d.message;
  }
}

TEST(CostBoundPassTest, CostParamsDefaultsMatchLiveConfigs) {
  // The header promises CostParams{} mirrors sim::ClusterConfig and the
  // Table I energy model; energy::cost_params() builds from the live
  // structs, so any drift shows up as a field mismatch here.
  const kir::CostParams live = energy::cost_params();
  const kir::CostParams defaults;
  EXPECT_EQ(live.max_cores, defaults.max_cores);
  EXPECT_EQ(live.div_cycles, defaults.div_cycles);
  EXPECT_EQ(live.fpdiv_cycles, defaults.fpdiv_cycles);
  EXPECT_EQ(live.l2_latency, defaults.l2_latency);
  EXPECT_EQ(live.barrier_wakeup, defaults.barrier_wakeup);
  EXPECT_EQ(live.icache_line, defaults.icache_line);
  EXPECT_EQ(live.icache_refill_stall, defaults.icache_refill_stall);
  EXPECT_EQ(live.l1_banks, defaults.l1_banks);
  EXPECT_EQ(live.num_fpus, defaults.num_fpus);
  EXPECT_DOUBLE_EQ(live.pe_alu, defaults.pe_alu);
  EXPECT_DOUBLE_EQ(live.pe_cg, defaults.pe_cg);
  EXPECT_DOUBLE_EQ(live.icache_refill, defaults.icache_refill);
  EXPECT_DOUBLE_EQ(live.dma_transfer, defaults.dma_transfer);
  EXPECT_DOUBLE_EQ(live.other_active, defaults.other_active);
}

}  // namespace
}  // namespace pulpc
