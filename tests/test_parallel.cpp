// Thread-pool unit tests: exactly-once index dispatch, exception
// propagation to the caller (with a pool that survives the failure),
// PULPC_THREADS=1 degenerating to inline execution, and no deadlock for
// degenerate task counts (n == 0, n < workers).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.hpp"

namespace pulpc::core {
namespace {

/// Scoped PULPC_THREADS override so env-sensitive tests cannot leak
/// into each other.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    if (const char* old = std::getenv("PULPC_THREADS")) saved_ = old;
    EXPECT_EQ(setenv("PULPC_THREADS", value, 1), 0);
  }
  ~ScopedThreadsEnv() {
    if (saved_.empty()) {
      unsetenv("PULPC_THREADS");
    } else {
      setenv("PULPC_THREADS", saved_.c_str(), 1);
    }
  }

 private:
  std::string saved_;
};

TEST(ThreadPool, VisitsAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4U);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(4);
  const std::vector<std::size_t> out =
      pool.parallel_map<std::size_t>(257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257U);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, PropagatesTaskExceptionAndSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 37) {
                            throw std::runtime_error("task 37 failed");
                          }
                        }),
      std::runtime_error);
  // The pool is still usable after a failed job.
  std::atomic<int> ran{0};
  pool.parallel_for(50, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, ExceptionCarriesTheTaskMessage) {
  ThreadPool pool(3);
  try {
    pool.parallel_for(8, [](std::size_t) {
      throw std::runtime_error("boom");
    });
    FAIL() << "parallel_for did not rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(ThreadPool, SerialPoolPropagatesExceptionsToo) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [](std::size_t i) {
                          if (i == 2) throw std::invalid_argument("serial");
                        }),
      std::invalid_argument);
}

TEST(ThreadPool, EnvSingleThreadRunsInlineOnTheCaller) {
  ScopedThreadsEnv env("1");
  ThreadPool pool;  // resolves from PULPC_THREADS
  EXPECT_EQ(pool.workers(), 1U);
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> ids;
  pool.parallel_for(64, [&](std::size_t) {
    ids.insert(std::this_thread::get_id());
  });
  ASSERT_EQ(ids.size(), 1U);
  EXPECT_EQ(*ids.begin(), caller);
}

TEST(ThreadPool, EnvSetsTheDefaultWorkerCount) {
  ScopedThreadsEnv env("3");
  ThreadPool pool;
  EXPECT_EQ(pool.workers(), 3U);
  // An explicit request wins over the environment.
  ThreadPool explicit_pool(2);
  EXPECT_EQ(explicit_pool.workers(), 2U);
}

TEST(ThreadPool, GarbageEnvFallsBackToHardware) {
  ScopedThreadsEnv env("not-a-number");
  EXPECT_GE(resolve_thread_count(), 1U);
}

TEST(ThreadPool, NoDeadlockOnZeroTasks) {
  ThreadPool pool(4);
  int calls = 0;
  for (int round = 0; round < 100; ++round) {
    pool.parallel_for(0, [&](std::size_t) { ++calls; });
  }
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, NoDeadlockWithFewerTasksThanWorkers) {
  ThreadPool pool(8);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> ran{0};
    pool.parallel_for(3, [&](std::size_t) { ++ran; });
    ASSERT_EQ(ran.load(), 3);
  }
}

TEST(ThreadPool, BackToBackJobsKeepTheSameWorkers) {
  ThreadPool pool(4);
  std::size_t total = 0;
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i) { sum += i; });
    total += sum.load();
  }
  EXPECT_EQ(total, 50U * (99U * 100U / 2U));
}

}  // namespace
}  // namespace pulpc::core
