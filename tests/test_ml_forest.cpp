// Random-forest tests: ensemble behaviour, bootstrap/feature
// subsampling, importances and robustness to label noise.
#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <vector>

#include "ml/forest.hpp"

namespace pulpc::ml {
namespace {

struct Problem {
  Matrix x;
  std::vector<int> y;
};

/// Four-class problem driven by two of four features (two are noise).
Problem make_problem(int n, unsigned seed, double label_noise = 0.0) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0, 1);
  Problem p;
  p.x.cols = 4;
  for (int i = 0; i < n; ++i) {
    const double a = u(rng);
    const double b = u(rng);
    p.x.data.insert(p.x.data.end(), {a, b, u(rng), u(rng)});
    int label = 1 + (a > 0.5) * 2 + (b > 0.5);
    if (u(rng) < label_noise) label = 1 + int(u(rng) * 4);
    p.y.push_back(label);
  }
  p.x.rows = static_cast<std::size_t>(n);
  return p;
}

double accuracy(const std::vector<int>& a, const std::vector<int>& b) {
  std::size_t ok = 0;
  for (std::size_t i = 0; i < a.size(); ++i) ok += a[i] == b[i] ? 1 : 0;
  return static_cast<double>(ok) / static_cast<double>(a.size());
}

TEST(RandomForest, LearnsCleanProblem) {
  const Problem p = make_problem(300, 1);
  RandomForest forest;
  forest.fit(p.x, p.y);
  EXPECT_GT(accuracy(forest.predict(p.x), p.y), 0.97);
  EXPECT_EQ(forest.tree_count(), 50U);
}

TEST(RandomForest, RobustToLabelNoise) {
  const Problem train = make_problem(400, 2, /*label_noise=*/0.2);
  const Problem clean = make_problem(200, 3);
  ForestParams fp;
  fp.n_trees = 80;
  fp.seed = 9;
  RandomForest forest(fp);
  forest.fit(train.x, train.y);
  EXPECT_GT(accuracy(forest.predict(clean.x), clean.y), 0.85);
}

TEST(RandomForest, ImportancesFavourInformativeFeatures) {
  const Problem p = make_problem(400, 4);
  RandomForest forest;
  forest.fit(p.x, p.y);
  const std::vector<double>& imp = forest.feature_importances();
  ASSERT_EQ(imp.size(), 4U);
  EXPECT_GT(imp[0], imp[2]);
  EXPECT_GT(imp[0], imp[3]);
  EXPECT_GT(imp[1], imp[2]);
  const double total = std::accumulate(imp.begin(), imp.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(RandomForest, DeterministicForFixedSeed) {
  const Problem p = make_problem(200, 5);
  ForestParams fp;
  fp.seed = 42;
  RandomForest a(fp);
  RandomForest b(fp);
  a.fit(p.x, p.y);
  b.fit(p.x, p.y);
  EXPECT_EQ(a.predict(p.x), b.predict(p.x));
  EXPECT_EQ(a.feature_importances(), b.feature_importances());
}

TEST(RandomForest, DifferentSeedsGiveDifferentEnsembles) {
  const Problem p = make_problem(200, 6, 0.3);
  ForestParams fa;
  fa.seed = 1;
  ForestParams fb;
  fb.seed = 2;
  RandomForest a(fa);
  RandomForest b(fb);
  a.fit(p.x, p.y);
  b.fit(p.x, p.y);
  EXPECT_NE(a.feature_importances(), b.feature_importances());
}

TEST(RandomForest, WithoutBootstrapUsesFullSample) {
  const Problem p = make_problem(150, 7);
  ForestParams fp;
  fp.bootstrap = false;
  fp.n_trees = 10;
  RandomForest forest(fp);
  forest.fit(p.x, p.y);
  EXPECT_GT(accuracy(forest.predict(p.x), p.y), 0.97);
}

TEST(RandomForest, ExplicitMaxFeaturesHonoured) {
  const Problem p = make_problem(150, 8);
  ForestParams fp;
  fp.max_features = 1;
  RandomForest forest(fp);
  forest.fit(p.x, p.y);
  EXPECT_GT(accuracy(forest.predict(p.x), p.y), 0.8);
}

TEST(RandomForest, ErrorsOnBadConfiguration) {
  ForestParams fp;
  fp.n_trees = 0;
  RandomForest forest(fp);
  const Problem p = make_problem(10, 9);
  EXPECT_THROW(forest.fit(p.x, p.y), std::invalid_argument);
  RandomForest untrained;
  EXPECT_THROW((void)untrained.predict(std::vector<double>{1, 2, 3, 4}),
               std::logic_error);
}

}  // namespace
}  // namespace pulpc::ml
