// Dataset container tests: column selection, label histograms and CSV
// round-tripping (the dataset cache format).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "ml/dataset.hpp"

namespace pulpc::ml {
namespace {

Sample sample(const std::string& name, int label,
              std::vector<double> features) {
  Sample s;
  s.kernel = name;
  s.suite = "custom";
  s.dtype = kir::DType::F32;
  s.size_bytes = 2048;
  s.label = label;
  s.features = std::move(features);
  s.energy = {4.0, 3.0, 2.5, 2.75};
  s.cycles = {400, 210, 150, 120};
  return s;
}

Dataset small_dataset() {
  Dataset ds({"a", "b", "c"});
  ds.add(sample("k0", 3, {1, 2, 3}));
  ds.add(sample("k1", 1, {4, 5, 6}));
  ds.add(sample("k2", 3, {7, 8, 9}));
  return ds;
}

TEST(Dataset, AddValidatesShapes) {
  Dataset ds({"a", "b"});
  EXPECT_THROW(ds.add(sample("bad", 1, {1})), std::invalid_argument);
  Sample s = sample("bad2", 1, {1, 2});
  s.cycles.pop_back();
  EXPECT_THROW(ds.add(std::move(s)), std::invalid_argument);
}

TEST(Dataset, MatrixSelectsColumnsByName) {
  const Dataset ds = small_dataset();
  const Matrix m = ds.matrix({"c", "a"});
  ASSERT_EQ(m.rows, 3U);
  ASSERT_EQ(m.cols, 2U);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 9.0);
}

TEST(Dataset, UnknownColumnThrows) {
  const Dataset ds = small_dataset();
  EXPECT_THROW((void)ds.matrix({"zz"}), std::invalid_argument);
}

TEST(Dataset, LabelsAndHistogram) {
  const Dataset ds = small_dataset();
  EXPECT_EQ(ds.labels(), (std::vector<int>{3, 1, 3}));
  const auto h = ds.label_histogram(4);
  EXPECT_EQ(h[1], 1U);
  EXPECT_EQ(h[3], 2U);
  EXPECT_EQ(h[2], 0U);
}

TEST(Dataset, CsvRoundTripPreservesEverything) {
  const Dataset ds = small_dataset();
  std::stringstream ss;
  ds.save_csv(ss);
  const Dataset back = Dataset::load_csv(ss);
  ASSERT_EQ(back.size(), ds.size());
  EXPECT_EQ(back.columns(), ds.columns());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const Sample& a = ds.samples()[i];
    const Sample& b = back.samples()[i];
    EXPECT_EQ(a.kernel, b.kernel);
    EXPECT_EQ(a.suite, b.suite);
    EXPECT_EQ(a.dtype, b.dtype);
    EXPECT_EQ(a.size_bytes, b.size_bytes);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.features, b.features);
  }
}

TEST(Dataset, CsvPreservesFullDoublePrecision) {
  Dataset ds({"x"});
  Sample s = sample("precise", 2, {0.1234567890123456789});
  s.energy = {1.0000000001, 2, 3, 4};
  ds.add(std::move(s));
  std::stringstream ss;
  ds.save_csv(ss);
  const Dataset back = Dataset::load_csv(ss);
  EXPECT_DOUBLE_EQ(back.samples()[0].features[0], 0.1234567890123456789);
  EXPECT_DOUBLE_EQ(back.samples()[0].energy[0], 1.0000000001);
}

TEST(Dataset, CsvHeaderIsSelfDescribing) {
  const Dataset ds = small_dataset();
  std::stringstream ss;
  ds.save_csv(ss);
  std::string schema;
  std::getline(ss, schema);
  EXPECT_EQ(schema.rfind("# pulpclass-dataset v1 cols=", 0), 0U) << schema;
  std::string header;
  std::getline(ss, header);
  EXPECT_EQ(header,
            "kernel,suite,dtype,size_bytes,label,e1,e2,e3,e4,c1,c2,c3,c4,"
            "a,b,c");
}

TEST(Dataset, SchemaCommentRoundTripsVersion) {
  const Dataset ds = small_dataset();
  EXPECT_EQ(ds.schema_version(), kDatasetSchemaVersion);
  std::stringstream ss;
  ds.save_csv(ss);
  EXPECT_EQ(Dataset::load_csv(ss).schema_version(), kDatasetSchemaVersion);
}

TEST(Dataset, LegacyCsvWithoutCommentLoadsAsVersionZero) {
  std::stringstream ss(
      "kernel,suite,dtype,size_bytes,label,e1,c1,x\n"
      "k,s,i32,1,1,2.0,10,0.5\n");
  const Dataset back = Dataset::load_csv(ss);
  ASSERT_EQ(back.size(), 1U);
  EXPECT_EQ(back.schema_version(), 0);
}

TEST(Dataset, SchemaVersionMismatchThrows) {
  std::stringstream ss(
      "# pulpclass-dataset v999 cols=0\n"
      "kernel,suite,dtype,size_bytes,label,e1,c1,x\n"
      "k,s,i32,1,1,2.0,10,0.5\n");
  EXPECT_THROW((void)Dataset::load_csv(ss), std::runtime_error);
}

TEST(Dataset, SchemaFingerprintMismatchThrows) {
  // Write a valid file, then rename a feature column without updating
  // the cols= fingerprint — the stale-schema case the comment exists for.
  const Dataset ds = small_dataset();
  std::stringstream ss;
  ds.save_csv(ss);
  std::string text = ss.str();
  const std::size_t pos = text.find(",a,b,c\n");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 7, ",a,b,z\n");
  std::stringstream tampered(text);
  EXPECT_THROW((void)Dataset::load_csv(tampered), std::runtime_error);
}

TEST(Dataset, MalformedSchemaCommentThrows) {
  std::stringstream ss(
      "# pulpclass-dataset vX cols=zz\n"
      "kernel,suite,dtype,size_bytes,label,e1,c1,x\n");
  EXPECT_THROW((void)Dataset::load_csv(ss), std::runtime_error);
}

TEST(Dataset, LoadRejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW((void)Dataset::load_csv(empty), std::runtime_error);
  std::stringstream bad("not,a,header\n");
  EXPECT_THROW((void)Dataset::load_csv(bad), std::runtime_error);
  std::stringstream short_row(
      "kernel,suite,dtype,size_bytes,label,e1,c1,a\nk,s,i32,1,1,2\n");
  EXPECT_THROW((void)Dataset::load_csv(short_row), std::runtime_error);
}

TEST(Dataset, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "pulpc_ds_test.csv";
  const Dataset ds = small_dataset();
  ds.save_csv_file(path);
  const Dataset back = Dataset::load_csv_file(path);
  EXPECT_EQ(back.size(), 3U);
  std::remove(path.c_str());
  EXPECT_THROW((void)Dataset::load_csv_file(path), std::runtime_error);
}

TEST(Dataset, EmptyDatasetRoundTripsColumns) {
  const Dataset ds({"a", "b", "c"});
  std::stringstream ss;
  ds.save_csv(ss);
  const Dataset back = Dataset::load_csv(ss);
  EXPECT_TRUE(back.empty());
  EXPECT_EQ(back.columns(), ds.columns());
}

TEST(Dataset, KernelNameWithSeparatorRoundTrips) {
  Dataset ds({"a", "b", "c"});
  ds.add(sample("weird,name", 2, {1, 2, 3}));
  Sample quoted = sample("quo\"ted", 1, {4, 5, 6});
  quoted.suite = "suite,with,commas";
  ds.add(std::move(quoted));
  std::stringstream ss;
  ds.save_csv(ss);
  const Dataset back = Dataset::load_csv(ss);
  ASSERT_EQ(back.size(), 2U);
  EXPECT_EQ(back.samples()[0].kernel, "weird,name");
  EXPECT_EQ(back.samples()[0].suite, "custom");
  EXPECT_EQ(back.samples()[1].kernel, "quo\"ted");
  EXPECT_EQ(back.samples()[1].suite, "suite,with,commas");
  EXPECT_EQ(back.samples()[1].features, (std::vector<double>{4, 5, 6}));
}

TEST(Dataset, NewlineInFieldIsRejectedOnSave) {
  Dataset ds({"a", "b", "c"});
  ds.add(sample("multi\nline", 1, {1, 2, 3}));
  std::stringstream ss;
  EXPECT_THROW(ds.save_csv(ss), std::invalid_argument);
}

TEST(Dataset, LoadRejectsRowWithWrongVectorColumnCount) {
  // Header declares e1..e4/c1..c4 plus one feature; the row carries only
  // three energies (11 fields vs. 14 in the header).
  std::stringstream ss(
      "kernel,suite,dtype,size_bytes,label,e1,e2,e3,e4,c1,c2,c3,c4,x\n"
      "k,s,i32,1,1,1.0,2.0,3.0,10,20,30,40,0.5\n");
  EXPECT_THROW((void)Dataset::load_csv(ss), std::runtime_error);
  // Extra vector fields are rejected just the same.
  std::stringstream extra(
      "kernel,suite,dtype,size_bytes,label,e1,e2,c1,c2,x\n"
      "k,s,i32,1,1,1.0,2.0,3.0,10,20,0.5\n");
  EXPECT_THROW((void)Dataset::load_csv(extra), std::runtime_error);
}

TEST(Dataset, I32DtypeRoundTrips) {
  Dataset ds({"x"});
  Sample s = sample("intk", 1, {1.0});
  s.dtype = kir::DType::I32;
  ds.add(std::move(s));
  std::stringstream ss;
  ds.save_csv(ss);
  EXPECT_EQ(Dataset::load_csv(ss).samples()[0].dtype, kir::DType::I32);
}

}  // namespace
}  // namespace pulpc::ml
