// Cluster-level behaviour: timing of memory levels and multi-cycle units,
// bank-conflict arbitration, FPU sharing, barriers, the critical-section
// lock, DMA, I-cache refills, kernel-region filtering, determinism and
// error paths.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/cluster.hpp"

namespace pulpc::sim {
namespace {

using kir::DType;
using kir::Instr;
using kir::MemSpace;
using kir::Op;

constexpr std::uint32_t kTcdm = 0x1000'0000;
constexpr std::uint32_t kL2 = 0x1C00'0000;

Instr ins(Op op, std::uint8_t rd = 0, std::uint8_t rs1 = 0,
          std::uint8_t rs2 = 0, std::int32_t imm = 0,
          MemSpace mem = MemSpace::None) {
  return Instr{op, rd, rs1, rs2, imm, mem};
}

kir::Program raw_prog(std::vector<Instr> code, bool l2_buffer = false) {
  kir::Program p;
  p.name = "cluster-test";
  p.buffers.push_back(kir::BufferInfo{"m", DType::I32, MemSpace::Tcdm,
                                      kTcdm, 256, kir::BufInit::Zero});
  if (l2_buffer) {
    p.buffers.push_back(kir::BufferInfo{"l2buf", DType::I32, MemSpace::L2,
                                        kL2, 256, kir::BufInit::Ramp});
  }
  p.code = std::move(code);
  return p;
}

/// enter/exit/halt wrapper.
std::vector<Instr> wrap(std::vector<Instr> body) {
  std::vector<Instr> code;
  code.push_back(ins(Op::MarkEnter));
  for (Instr& b : body) {
    if (kir::is_branch(b.op)) b.imm += 1;
    code.push_back(b);
  }
  code.push_back(ins(Op::MarkExit));
  code.push_back(ins(Op::Halt));
  return code;
}

RunStats run_stats(const kir::Program& p, unsigned cores,
                   ClusterConfig cfg = {}) {
  Cluster cl(cfg);
  cl.load(p);
  const RunResult r = cl.run(cores);
  EXPECT_TRUE(r.ok) << r.error;
  return r.stats;
}

// ---- memory-level timing ---------------------------------------------------

TEST(SimCluster, L2LoadIsSlowerThanTcdmLoadByConfiguredLatency) {
  const ClusterConfig cfg;
  const auto tcdm = run_stats(
      raw_prog(wrap({ins(Op::Li, 10, 0, 0, std::int32_t(kTcdm)),
                     ins(Op::Lw, 1, 10, 0, 0, MemSpace::Tcdm)})),
      1);
  const auto l2 = run_stats(
      raw_prog(wrap({ins(Op::Li, 10, 0, 0, std::int32_t(kL2)),
                     ins(Op::Lw, 1, 10, 0, 0, MemSpace::L2)}),
               /*l2_buffer=*/true),
      1);
  EXPECT_EQ(l2.region_cycles() - tcdm.region_cycles(), cfg.l2_latency - 1);
  EXPECT_EQ(l2.core[0].n_l2, 1U);
  EXPECT_EQ(l2.core[0].cyc_l2, cfg.l2_latency);
  EXPECT_EQ(tcdm.core[0].n_l1, 1U);
  EXPECT_EQ(tcdm.core[0].cyc_l1, 1U);
}

TEST(SimCluster, DividerStallsForConfiguredCycles) {
  const ClusterConfig cfg;
  const auto with_add = run_stats(
      raw_prog(wrap({ins(Op::Add, 1, 1, 1)})), 1);
  const auto with_div = run_stats(
      raw_prog(wrap({ins(Op::Div, 1, 1, 1)})), 1);
  EXPECT_EQ(with_div.region_cycles() - with_add.region_cycles(),
            cfg.div_cycles - 1);
  EXPECT_EQ(with_div.core[0].idle_cycles, cfg.div_cycles - 1);
}

TEST(SimCluster, TakenBranchPaysPenalty) {
  const ClusterConfig cfg;
  // Not-taken branch (r1 == r0 == 0 -> bne not taken).
  const auto not_taken = run_stats(
      raw_prog(wrap({ins(Op::Bne, 0, 1, 0, 1)})), 1);
  const auto taken = run_stats(
      raw_prog(wrap({ins(Op::Beq, 0, 1, 0, 1)})), 1);
  EXPECT_EQ(taken.region_cycles() - not_taken.region_cycles(),
            cfg.taken_branch_penalty);
}

// ---- bank conflicts ---------------------------------------------------------

TEST(SimCluster, SameBankStoresFromTwoCoresConflict) {
  // Both cores hammer word 0 (bank 0) 32 times.
  const std::vector<Instr> body = {
      ins(Op::Li, 10, 0, 0, std::int32_t(kTcdm)),  // 0
      ins(Op::Li, 2, 0, 0, 0),                     // 1 i = 0
      ins(Op::Li, 3, 0, 0, 32),                    // 2
      ins(Op::Sw, 0, 10, 1, 0, MemSpace::Tcdm),    // 3 loop
      ins(Op::AddI, 2, 2, 0, 1),                   // 4
      ins(Op::Blt, 0, 2, 3, 3),                    // 5
  };
  const auto st = run_stats(raw_prog(wrap(body)), 2);
  EXPECT_GT(st.l1_conflicts(), 0U);
  EXPECT_EQ(st.l1[0].writes, 64U);  // all stores land on bank 0
}

TEST(SimCluster, DisjointBanksDoNotConflict) {
  // Core c stores to word c (different banks).
  const std::vector<Instr> body = {
      ins(Op::Li, 10, 0, 0, std::int32_t(kTcdm)),
      ins(Op::CoreId, 4),
      ins(Op::ShlI, 4, 4, 0, 2),
      ins(Op::Add, 10, 10, 4),
      ins(Op::Li, 2, 0, 0, 0),
      ins(Op::Li, 3, 0, 0, 32),
      ins(Op::Sw, 0, 10, 1, 0, MemSpace::Tcdm),  // loop @6
      ins(Op::AddI, 2, 2, 0, 1),
      ins(Op::Blt, 0, 2, 3, 6),
  };
  const auto st = run_stats(raw_prog(wrap(body)), 4);
  EXPECT_EQ(st.l1_conflicts(), 0U);
}

TEST(SimCluster, ConflictingRunIsSlowerThanDisjointRun) {
  const std::vector<Instr> same = {
      ins(Op::Li, 10, 0, 0, std::int32_t(kTcdm)),
      ins(Op::Li, 2, 0, 0, 0),
      ins(Op::Li, 3, 0, 0, 64),
      ins(Op::Sw, 0, 10, 1, 0, MemSpace::Tcdm),  // @3
      ins(Op::AddI, 2, 2, 0, 1),
      ins(Op::Blt, 0, 2, 3, 3),
  };
  std::vector<Instr> disjoint = same;
  disjoint.insert(disjoint.begin() + 1,
                  {ins(Op::CoreId, 4), ins(Op::ShlI, 4, 4, 0, 2),
                   ins(Op::Add, 10, 10, 4)});
  // Retarget loop branch after the 3 inserted instructions.
  disjoint[8].imm = 6;
  const auto conflicted = run_stats(raw_prog(wrap(same)), 8);
  const auto parallel = run_stats(raw_prog(wrap(disjoint)), 8);
  EXPECT_GT(conflicted.region_cycles(), parallel.region_cycles());
}

// ---- FPU sharing -------------------------------------------------------------

TEST(SimCluster, SharedFpuSerialisesDenseFpStreams) {
  ClusterConfig cfg;
  cfg.num_fpus = 1;  // all cores share one FPU
  const std::vector<Instr> body = {
      ins(Op::Li, 2, 0, 0, 0),
      ins(Op::Li, 3, 0, 0, 32),
      ins(Op::FAdd, 1, 1, 1),  // @2
      ins(Op::AddI, 2, 2, 0, 1),
      ins(Op::Blt, 0, 2, 3, 2),
  };
  const auto shared = run_stats(raw_prog(wrap(body)), 2, cfg);
  ClusterConfig cfg2;
  cfg2.num_fpus = 2;
  const auto priv = run_stats(raw_prog(wrap(body)), 2, cfg2);
  EXPECT_GT(shared.region_cycles(), priv.region_cycles());
  std::uint64_t idle = 0;
  for (const CoreStats& c : shared.core) idle += c.idle_cycles;
  EXPECT_GT(idle, 0U);
  EXPECT_EQ(shared.fpu[0].busy_cycles, 64U);
}

TEST(SimCluster, FpDivOccupiesFpuForMultipleCycles) {
  const ClusterConfig cfg;
  const auto st = run_stats(raw_prog(wrap({ins(Op::FDiv, 1, 1, 1)})), 1);
  EXPECT_EQ(st.fpu[0].busy_cycles, cfg.fpdiv_cycles);
  EXPECT_EQ(st.core[0].n_fpdiv, 1U);
  EXPECT_EQ(st.core[0].cyc_fp, cfg.fpdiv_cycles);
}

// ---- barrier & event unit -------------------------------------------------------

TEST(SimCluster, BarrierReleasesAllCores) {
  const std::vector<Instr> body = {
      ins(Op::Barrier),
      ins(Op::Li, 1, 0, 0, 1),
  };
  for (const unsigned cores : {1U, 2U, 5U, 8U}) {
    const auto st = run_stats(raw_prog(wrap(body)), cores);
    EXPECT_GT(st.region_cycles(), 0U) << cores;
  }
}

TEST(SimCluster, BarrierWaitersAreClockGated) {
  // Core 0 runs a delay loop before the barrier; the workers sleep at it.
  std::vector<Instr> code;
  code.push_back(ins(Op::MarkEnter));                    // 0
  code.push_back(ins(Op::CoreId, 2));                    // 1
  code.push_back(ins(Op::Bne, 0, 2, 0, 7));              // 2
  code.push_back(ins(Op::Li, 3, 0, 0, 0));               // 3
  code.push_back(ins(Op::AddI, 3, 3, 0, 1));             // 4
  code.push_back(ins(Op::SltI, 4, 3, 0, 64));            // 5
  code.push_back(ins(Op::Bne, 0, 4, 0, 4));              // 6
  code.push_back(ins(Op::Barrier));                      // 7
  code.push_back(ins(Op::MarkExit));                     // 8
  code.push_back(ins(Op::Halt));                         // 9
  const auto st = run_stats(raw_prog(code), 4);
  // Workers 1..3 spent most of the run clock-gated.
  for (unsigned c = 1; c < 4; ++c) {
    EXPECT_GT(st.core[c].cyc_cg, 50U) << c;
  }
}

// ---- critical section ------------------------------------------------------------

TEST(SimCluster, CriticalSectionProvidesMutualExclusion) {
  // Every core increments m[0] sixteen times under the lock; the final
  // count must be exact for every core count.
  std::vector<Instr> code;
  code.push_back(ins(Op::MarkEnter));                              // 0
  code.push_back(ins(Op::Li, 10, 0, 0, std::int32_t(kTcdm)));      // 1
  code.push_back(ins(Op::Li, 2, 0, 0, 0));                         // 2
  code.push_back(ins(Op::Li, 3, 0, 0, 16));                        // 3
  code.push_back(ins(Op::CritEnter));                              // 4 loop
  code.push_back(ins(Op::Lw, 1, 10, 0, 0, MemSpace::Tcdm));        // 5
  code.push_back(ins(Op::AddI, 1, 1, 0, 1));                       // 6
  code.push_back(ins(Op::Sw, 0, 10, 1, 0, MemSpace::Tcdm));        // 7
  code.push_back(ins(Op::CritExit));                               // 8
  code.push_back(ins(Op::AddI, 2, 2, 0, 1));                       // 9
  code.push_back(ins(Op::Blt, 0, 2, 3, 4));                        // 10
  code.push_back(ins(Op::MarkExit));                               // 11
  code.push_back(ins(Op::Halt));                                   // 12
  for (const unsigned cores : {1U, 2U, 4U, 8U}) {
    Cluster cl;
    cl.load(raw_prog(code));
    const RunResult r = cl.run(cores);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(cl.read_i32(kTcdm), std::int32_t(16 * cores)) << cores;
  }
}

TEST(SimCluster, ContendedLockProducesIdleCycles) {
  std::vector<Instr> code;
  code.push_back(ins(Op::MarkEnter));
  code.push_back(ins(Op::Li, 2, 0, 0, 0));
  code.push_back(ins(Op::Li, 3, 0, 0, 16));
  code.push_back(ins(Op::CritEnter));       // 3
  code.push_back(ins(Op::Add, 1, 1, 1));
  code.push_back(ins(Op::Add, 1, 1, 1));
  code.push_back(ins(Op::CritExit));
  code.push_back(ins(Op::AddI, 2, 2, 0, 1));
  code.push_back(ins(Op::Blt, 0, 2, 3, 3));
  code.push_back(ins(Op::MarkExit));
  code.push_back(ins(Op::Halt));
  const auto st = run_stats(raw_prog(code), 8);
  std::uint64_t idle = 0;
  for (const CoreStats& c : st.core) idle += c.idle_cycles;
  EXPECT_GT(idle, 100U);
}

TEST(SimCluster, CritExitWithoutOwnershipFails) {
  const auto code = wrap({ins(Op::CritExit)});
  Cluster cl;
  cl.load(raw_prog(code));
  const RunResult r = cl.run(1);
  EXPECT_FALSE(r.ok);
}

// ---- DMA ----------------------------------------------------------------------------

TEST(SimCluster, DmaCopiesWordsBetweenLevels) {
  std::vector<Instr> code;
  code.push_back(ins(Op::MarkEnter));
  code.push_back(ins(Op::Li, 2, 0, 0, std::int32_t(kL2)));    // src
  code.push_back(ins(Op::Li, 3, 0, 0, std::int32_t(kTcdm)));  // dst
  code.push_back(ins(Op::Li, 4, 0, 0, 32));                   // words
  code.push_back(ins(Op::DmaStart, 4, 2, 3));
  code.push_back(ins(Op::DmaWait));
  code.push_back(ins(Op::MarkExit));
  code.push_back(ins(Op::Halt));
  Cluster cl;
  cl.load(raw_prog(code, /*l2_buffer=*/true));
  const RunResult r = cl.run(1);
  ASSERT_TRUE(r.ok) << r.error;
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(cl.read_i32(kTcdm + i * 4), std::int32_t(i)) << i;  // Ramp
  }
  EXPECT_EQ(r.stats.dma.beats, 32U);
  EXPECT_EQ(r.stats.dma.busy_cycles, 32U);
}

TEST(SimCluster, BadDmaDescriptorFails) {
  std::vector<Instr> code;
  code.push_back(ins(Op::MarkEnter));
  code.push_back(ins(Op::Li, 2, 0, 0, std::int32_t(kL2)));
  code.push_back(ins(Op::Li, 3, 0, 0, std::int32_t(kTcdm)));
  code.push_back(ins(Op::Li, 4, 0, 0, 0));  // zero words
  code.push_back(ins(Op::DmaStart, 4, 2, 3));
  code.push_back(ins(Op::MarkExit));
  code.push_back(ins(Op::Halt));
  Cluster cl;
  cl.load(raw_prog(code, true));
  EXPECT_FALSE(cl.run(1).ok);
}

// ---- I-cache ------------------------------------------------------------------------

TEST(SimCluster, PrivateIcacheRefillsScaleWithCores) {
  const auto body = wrap({ins(Op::Add, 1, 1, 1)});
  const auto one = run_stats(raw_prog(body), 1);
  const auto four = run_stats(raw_prog(body), 4);
  EXPECT_GT(one.icache.refills, 0U);
  EXPECT_EQ(four.icache.refills, 4 * one.icache.refills);
}

TEST(SimCluster, SharedIcacheRefillsOnce) {
  ClusterConfig cfg;
  cfg.icache_private = false;
  const auto body = wrap({ins(Op::Add, 1, 1, 1)});
  const auto one = run_stats(raw_prog(body), 1, cfg);
  const auto four = run_stats(raw_prog(body), 4, cfg);
  EXPECT_EQ(four.icache.refills, one.icache.refills);
}

TEST(SimCluster, IcacheUsesMatchIssuedInstructions) {
  const auto st = run_stats(raw_prog(wrap({ins(Op::Add, 1, 1, 1)})), 2);
  EXPECT_EQ(st.icache.uses, st.total_instrs());
}

// ---- kernel-region filtering ---------------------------------------------------------

TEST(SimCluster, PrologueOutsideMarkersIsNotCounted) {
  // 100 adds before MarkEnter, 1 add inside.
  std::vector<Instr> code;
  for (int i = 0; i < 100; ++i) code.push_back(ins(Op::Add, 1, 1, 1));
  code.push_back(ins(Op::MarkEnter));
  code.push_back(ins(Op::Add, 1, 1, 1));
  code.push_back(ins(Op::MarkExit));
  code.push_back(ins(Op::Halt));
  const auto st = run_stats(raw_prog(code), 1);
  // Only the marker + one add are counted.
  EXPECT_LE(st.core[0].n_alu, 2U);
  EXPECT_LT(st.region_cycles(), 20U);
  EXPECT_GT(st.total_cycles, 100U);
}

// ---- determinism & error paths --------------------------------------------------------

TEST(SimCluster, RunsAreDeterministic) {
  const auto body = wrap({
      ins(Op::Li, 10, 0, 0, std::int32_t(kTcdm)),
      ins(Op::Li, 2, 0, 0, 0),
      ins(Op::Li, 3, 0, 0, 64),
      ins(Op::Sw, 0, 10, 1, 0, MemSpace::Tcdm),
      ins(Op::AddI, 2, 2, 0, 1),
      ins(Op::Blt, 0, 2, 3, 3),
  });
  const auto a = run_stats(raw_prog(body), 8);
  const auto b = run_stats(raw_prog(body), 8);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.l1_conflicts(), b.l1_conflicts());
  EXPECT_EQ(a.core[3].cyc_wait, b.core[3].cyc_wait);
}

TEST(SimCluster, UnmappedAccessReportsError) {
  const auto body = wrap({ins(Op::Li, 10, 0, 0, 0x2000),
                          ins(Op::Lw, 1, 10, 0, 0, MemSpace::Tcdm)});
  Cluster cl;
  cl.load(raw_prog(body));
  const RunResult r = cl.run(1);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unmapped"), std::string::npos);
}

TEST(SimCluster, MisalignedAccessReportsError) {
  const auto body = wrap({ins(Op::Li, 10, 0, 0, std::int32_t(kTcdm + 2)),
                          ins(Op::Lw, 1, 10, 0, 0, MemSpace::Tcdm)});
  Cluster cl;
  cl.load(raw_prog(body));
  const RunResult r = cl.run(1);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("misaligned"), std::string::npos);
}

TEST(SimCluster, RunawayProgramHitsCycleLimit) {
  ClusterConfig cfg;
  cfg.max_cycles = 10'000;
  std::vector<Instr> code;
  code.push_back(ins(Op::MarkEnter));
  code.push_back(ins(Op::Jmp, 0, 0, 0, 1));  // spin forever
  code.push_back(ins(Op::MarkExit));
  code.push_back(ins(Op::Halt));
  Cluster cl(cfg);
  cl.load(raw_prog(code));
  const RunResult r = cl.run(1);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("cycle limit"), std::string::npos);
}

TEST(SimCluster, InvalidCoreCountThrows) {
  Cluster cl;
  cl.load(raw_prog(wrap({ins(Op::Add, 1, 1, 1)})));
  EXPECT_THROW((void)cl.run(0), std::invalid_argument);
  EXPECT_THROW((void)cl.run(9), std::invalid_argument);
}

TEST(SimCluster, RunWithoutProgramThrows) {
  Cluster cl;
  EXPECT_THROW((void)cl.run(1), std::logic_error);
}

TEST(SimCluster, LoadRejectsInvalidProgram) {
  Cluster cl;
  kir::Program p;  // empty
  EXPECT_THROW(cl.load(p), std::invalid_argument);
}

TEST(SimCluster, LoadRejectsBufferOutsideMemory) {
  kir::Program p = raw_prog(wrap({ins(Op::Add, 1, 1, 1)}));
  p.buffers[0].elems = 64 * 1024;  // 256 KiB > TCDM
  Cluster cl;
  EXPECT_THROW(cl.load(p), std::invalid_argument);
}

TEST(SimCluster, MemoryAccessorsValidateAddresses) {
  Cluster cl;
  cl.load(raw_prog(wrap({ins(Op::Add, 1, 1, 1)})));
  EXPECT_THROW((void)cl.read_i32(0x123), std::out_of_range);
  EXPECT_THROW(cl.write_f32(kTcdm + 1, 1.0F), std::out_of_range);
  cl.write_i32(kTcdm, 5);
  EXPECT_EQ(cl.read_i32(kTcdm), 5);
  cl.write_f32(kTcdm + 4, 2.5F);
  EXPECT_FLOAT_EQ(cl.read_f32(kTcdm + 4), 2.5F);
}

TEST(SimCluster, UnusedCoresReportZeroActivity) {
  const auto st = run_stats(raw_prog(wrap({ins(Op::Add, 1, 1, 1)})), 2);
  for (unsigned c = 2; c < st.total_cores; ++c) {
    EXPECT_EQ(st.core[c].instrs, 0U);
    EXPECT_EQ(st.core[c].active_cycles(), 0U);
  }
}

}  // namespace
}  // namespace pulpc::sim
