// Parallel-execution semantics through the DSL: results must be
// independent of the core count, chunking must cover edge cases, and the
// SPMD serial-section policy must preserve program meaning.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dsl/builder.hpp"
#include "dsl/lower.hpp"
#include "sim/cluster.hpp"

namespace pulpc {
namespace {

using dsl::Buf;
using dsl::InitKind;
using dsl::KernelBuilder;
using dsl::Val;
using kir::DType;

Val ic(std::int32_t v) { return dsl::make_const_i(v); }

/// Run a spec at `cores` and return the contents of buffer `idx`.
std::vector<std::int32_t> run_and_dump(const dsl::KernelSpec& spec,
                                       unsigned cores, std::size_t idx) {
  const kir::Program prog = dsl::lower(spec);
  sim::Cluster cl;
  cl.load(prog);
  const sim::RunResult r = cl.run(cores);
  EXPECT_TRUE(r.ok) << spec.name << ": " << r.error;
  const kir::BufferInfo& b = prog.buffers.at(idx);
  std::vector<std::int32_t> out(b.elems);
  for (std::uint32_t i = 0; i < b.elems; ++i) {
    out[i] = cl.read_i32(b.base + i * 4);
  }
  return out;
}

class ParallelCores : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelCores, VectorAddMatchesScalarReference) {
  const unsigned cores = GetParam();
  const std::uint32_t n = 100;  // deliberately not a multiple of 8
  KernelBuilder k("vadd", "test", DType::I32, n * 4);
  const Buf a = k.buffer("a", n, InitKind::Ramp);
  const Buf b = k.buffer("b", n, InitKind::Ramp);
  const Buf c = k.buffer("c", n, InitKind::Zero);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    k.store(c, i, k.load(a, i) + k.load(b, i) * ic(3));
  });
  const auto out = run_and_dump(k.build(), cores, 2);
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], std::int32_t(i + 3 * i)) << i;
  }
}

TEST_P(ParallelCores, FewerIterationsThanCores) {
  const unsigned cores = GetParam();
  KernelBuilder k("tiny", "test", DType::I32, 64);
  const Buf c = k.buffer("c", 8, InitKind::Zero);
  k.par_for("i", ic(0), ic(3), [&](Val i) { k.store(c, i, i + ic(1)); });
  const auto out = run_and_dump(k.build(), cores, 0);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(out[2], 3);
  EXPECT_EQ(out[3], 0);
}

TEST_P(ParallelCores, EmptyIterationSpaceIsANoOp) {
  const unsigned cores = GetParam();
  KernelBuilder k("empty", "test", DType::I32, 64);
  const Buf c = k.buffer("c", 8, InitKind::Zero);
  k.par_for("i", ic(4), ic(4), [&](Val i) { k.store(c, i, ic(9)); });
  const auto out = run_and_dump(k.build(), cores, 0);
  for (const std::int32_t v : out) EXPECT_EQ(v, 0);
}

TEST_P(ParallelCores, SteppedLoopTouchesOnlyStridedElements) {
  const unsigned cores = GetParam();
  const std::uint32_t n = 64;
  KernelBuilder k("strided", "test", DType::I32, n * 4);
  const Buf c = k.buffer("c", n, InitKind::Zero);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) { k.store(c, i, ic(1)); }, 4);
  const auto out = run_and_dump(k.build(), cores, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], i % 4 == 0 ? 1 : 0) << i;
  }
}

TEST_P(ParallelCores, CriticalReductionIsExact) {
  const unsigned cores = GetParam();
  const std::uint32_t n = 50;
  KernelBuilder k("red", "test", DType::I32, n * 4);
  const Buf x = k.buffer("x", n, InitKind::Ramp);
  const Buf out = k.buffer("out", 8, InitKind::Zero);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    auto v = k.decl("v", k.load(x, i));
    k.critical([&] { k.store(out, ic(0), k.load(out, ic(0)) + v); });
  });
  const auto dump = run_and_dump(k.build(), cores, 1);
  EXPECT_EQ(dump[0], std::int32_t(n * (n - 1) / 2));
}

TEST_P(ParallelCores, SerialSectionBetweenParallelRegions) {
  const unsigned cores = GetParam();
  const std::uint32_t n = 32;
  KernelBuilder k("mix", "test", DType::I32, n * 4);
  const Buf a = k.buffer("a", n, InitKind::Zero);
  const Buf b = k.buffer("b", n, InitKind::Zero);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) { k.store(a, i, i); });
  // Serial (master-guarded) fix-up touching shared memory.
  k.for_("j", ic(0), ic(int(n)), [&](Val j) {
    k.store(a, j, k.load(a, j) * ic(2));
  });
  k.par_for("i2", ic(0), ic(int(n)), [&](Val i) {
    k.store(b, i, k.load(a, i) + ic(1));
  });
  const auto out = run_and_dump(k.build(), cores, 1);
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], std::int32_t(2 * i + 1)) << i;
  }
}

TEST_P(ParallelCores, ReplicatedScalarLoopFeedsParallelRegion) {
  const unsigned cores = GetParam();
  KernelBuilder k("repl", "test", DType::I32, 256);
  const Buf x = k.buffer("x", 16, InitKind::Ramp);
  const Buf out = k.buffer("out", 16, InitKind::Zero);
  // Pure scalar accumulation (no stores): replicated on every core.
  auto acc = k.decl("acc", ic(0));
  k.for_("j", ic(0), ic(16), [&](Val j) {
    k.assign(acc, acc + k.load(x, j));
  });
  k.par_for("i", ic(0), ic(16), [&](Val i) { k.store(out, i, acc); });
  const auto dump = run_and_dump(k.build(), cores, 1);
  for (const std::int32_t v : dump) EXPECT_EQ(v, 120);  // sum 0..15
}

TEST_P(ParallelCores, ExplicitBarrierOrdersPhases) {
  const unsigned cores = GetParam();
  const std::uint32_t n = 40;
  KernelBuilder k("phase", "test", DType::I32, n * 8);
  const Buf a = k.buffer("a", n, InitKind::Zero);
  const Buf b = k.buffer("b", n, InitKind::Zero);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) { k.store(a, i, i + ic(5)); });
  // The implicit barrier of the first region makes `a` visible.
  k.par_for("i2", ic(0), ic(int(n)), [&](Val i) {
    k.store(b, i, k.load(a, ic(int(n) - 1) - i));
  });
  const auto dump = run_and_dump(k.build(), cores, 1);
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(dump[i], std::int32_t(n - 1 - i + 5)) << i;
  }
}

TEST_P(ParallelCores, GuardedIfWithStores) {
  const unsigned cores = GetParam();
  KernelBuilder k("gif", "test", DType::I32, 64);
  const Buf c = k.buffer("c", 8, InitKind::Zero);
  auto flag = k.decl("flag", ic(1));
  k.if_else(
      flag == ic(1), [&] { k.store(c, ic(0), ic(11)); },
      [&] { k.store(c, ic(0), ic(22)); });
  const auto dump = run_and_dump(k.build(), cores, 0);
  EXPECT_EQ(dump[0], 11);
}

INSTANTIATE_TEST_SUITE_P(AllCoreCounts, ParallelCores,
                         ::testing::Values(1U, 2U, 3U, 4U, 5U, 6U, 7U, 8U));

TEST(ParallelSemantics, ResultsIdenticalAcrossCoreCountsForIntKernels) {
  const std::uint32_t n = 96;
  const auto make = [&] {
    KernelBuilder k("sweep", "test", DType::I32, n * 4);
    const Buf a = k.buffer("a", n, InitKind::Random);
    const Buf out = k.buffer("out", n, InitKind::Zero);
    k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
      auto acc = k.decl("acc", ic(0));
      k.for_("j", ic(0), ic(8), [&](Val j) {
        k.assign(acc, acc + k.load(a, (i + j) % ic(int(n))));
      });
      k.store(out, i, acc);
    });
    return k.build();
  };
  const auto ref = run_and_dump(make(), 1, 1);
  for (unsigned cores = 2; cores <= 8; ++cores) {
    EXPECT_EQ(run_and_dump(make(), cores, 1), ref) << cores;
  }
}

TEST(ParallelSemantics, WallCyclesDecreaseWithCoresForParallelWork) {
  const std::uint32_t n = 512;
  KernelBuilder k("scal", "test", DType::I32, n * 4);
  const Buf a = k.buffer("a", n, InitKind::Random);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    k.store(a, i, k.load(a, i) * ic(3) + ic(1));
  });
  const kir::Program prog = dsl::lower(k.build());
  sim::Cluster cl;
  cl.load(prog);
  std::uint64_t prev = 0;
  for (const unsigned cores : {1U, 2U, 4U, 8U}) {
    const sim::RunResult r = cl.run(cores);
    ASSERT_TRUE(r.ok);
    if (prev != 0) EXPECT_LT(r.stats.region_cycles(), prev);
    prev = r.stats.region_cycles();
  }
}

TEST(ParallelSemantics, F32ReductionMatchesWithinTolerance) {
  const std::uint32_t n = 64;
  const auto make = [&] {
    KernelBuilder k("fred", "test", DType::F32, n * 4);
    const Buf x = k.buffer("x", n, InitKind::Random);
    const Buf out = k.buffer("out", 8, InitKind::Zero);
    k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
      auto v = k.decl("v", k.load(x, i));
      k.critical([&] { k.store(out, ic(0), k.load(out, ic(0)) + v); });
    });
    return k.build();
  };
  const auto read_sum = [&](unsigned cores) {
    const kir::Program prog = dsl::lower(make());
    sim::Cluster cl;
    cl.load(prog);
    const sim::RunResult r = cl.run(cores);
    EXPECT_TRUE(r.ok);
    return cl.read_f32(prog.buffers[1].base);
  };
  const float ref = read_sum(1);
  for (const unsigned cores : {2U, 8U}) {
    EXPECT_NEAR(read_sum(cores), ref, 1e-3F) << cores;
  }
}

}  // namespace
}  // namespace pulpc
