// End-to-end pipeline tests: sample building (Figure 1 steps A-F), the
// dataset cache, and the public EnergyClassifier API.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "core/classifier.hpp"
#include "core/pipeline.hpp"
#include "dsl/lower.hpp"
#include "dsl/builder.hpp"
#include "kernels/registry.hpp"
#include "ml/metrics.hpp"

namespace pulpc::core {
namespace {

TEST(Pipeline, DatasetColumnsAreStaticPlusDynamic) {
  const std::vector<std::string> cols = dataset_columns(8);
  // 20 Table II + 33 static-bounds + 8 x 10 dynamic columns.
  const std::size_t nstatic = 20U + 33U;
  EXPECT_EQ(cols.size(), nstatic + 8U * 10U);
  EXPECT_EQ(cols[0], "op");
  EXPECT_EQ(cols[20], "SB_best");
  EXPECT_EQ(cols[nstatic], "PE_idle@1");
  EXPECT_EQ(cols.back(), "L1_conflicts@8");
}

TEST(Pipeline, DatasetConfigsEnumerateThePaperSamples) {
  const std::vector<SampleConfig> cfgs = dataset_configs();
  EXPECT_EQ(cfgs.size(), 448U);
  // 59 distinct kernels, 4 sizes each combo.
  std::set<std::string> names;
  for (const SampleConfig& c : cfgs) names.insert(c.kernel);
  EXPECT_EQ(names.size(), 59U);
}

TEST(Pipeline, BuildSampleProducesConsistentRecord) {
  const ml::Sample s =
      build_sample({"stream_triad", kir::DType::I32, 2048});
  EXPECT_EQ(s.kernel, "stream_triad");
  EXPECT_EQ(s.suite, "custom");
  ASSERT_EQ(s.energy.size(), 8U);
  ASSERT_EQ(s.cycles.size(), 8U);
  EXPECT_EQ(s.features.size(), dataset_columns(8).size());
  EXPECT_GE(s.label, 1);
  EXPECT_LE(s.label, 8);
  // The label is the argmin of the energy vector.
  const auto best = std::min_element(s.energy.begin(), s.energy.end());
  EXPECT_EQ(s.label, int(best - s.energy.begin()) + 1);
  for (const double e : s.energy) {
    EXPECT_GT(e, 0.0);
    EXPECT_TRUE(std::isfinite(e));
  }
  for (const double f : s.features) EXPECT_TRUE(std::isfinite(f));
  // Cycles shrink from 1 core to 8 for this embarrassingly parallel
  // kernel.
  EXPECT_LT(s.cycles[7], s.cycles[0]);
}

TEST(Pipeline, SerialKernelGetsLabelOne) {
  const ml::Sample s = build_sample({"trisolv", kir::DType::I32, 2048});
  EXPECT_EQ(s.label, 1);
}

TEST(Pipeline, BuildSampleRejectsUnknownKernel) {
  EXPECT_THROW((void)build_sample({"nope", kir::DType::I32, 512}),
               std::invalid_argument);
}

TEST(Pipeline, MaxCoresOptionShrinksTheSweep) {
  BuildOptions opt;
  opt.max_cores = 3;
  const ml::Sample s = build_sample({"memcpy", kir::DType::I32, 512}, opt);
  EXPECT_EQ(s.energy.size(), 3U);
  EXPECT_LE(s.label, 3);
  EXPECT_EQ(s.features.size(), dataset_columns(3).size());
}

TEST(Pipeline, CacheRoundTripsThroughEnvPath) {
  const std::string path = ::testing::TempDir() + "pulpc_cache_test.csv";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("PULPC_DATASET_CACHE", path.c_str(), 1), 0);

  // Build a tiny dataset by hand and save it under the cache path with
  // the pipeline's column layout; load_or_build must pick it up without
  // rebuilding (we detect that by the sample count).
  ml::Dataset tiny(dataset_columns(8));
  ml::Sample s = build_sample({"memset", kir::DType::I32, 512});
  tiny.add(s);
  tiny.save_csv_file(path);

  const ml::Dataset loaded = load_or_build_dataset();
  EXPECT_EQ(loaded.size(), 1U);
  EXPECT_EQ(loaded.samples()[0].kernel, "memset");
  std::remove(path.c_str());
  unsetenv("PULPC_DATASET_CACHE");
}

// ---- classifier API ----------------------------------------------------

/// Small dataset: a few kernels at two sizes (keeps the test fast).
ml::Dataset mini_dataset() {
  ml::Dataset ds(dataset_columns(8));
  for (const char* name : {"memcpy", "stream_triad", "trisolv", "autocor",
                           "spin_counter", "alu_chain"}) {
    for (const std::uint32_t size : {512U, 2048U}) {
      ds.add(build_sample({name, kir::DType::I32, size}));
    }
  }
  return ds;
}

TEST(EnergyClassifierApi, TrainPredictRoundTrip) {
  const ml::Dataset ds = mini_dataset();
  EnergyClassifier clf;
  EXPECT_FALSE(clf.trained());
  clf.train(ds);
  ASSERT_TRUE(clf.trained());

  // Predictions on the training kernels stay within the label range and
  // hit the exact label for most (tree memorises the tiny set).
  std::size_t exact = 0;
  std::size_t i = 0;
  for (const ml::Sample& s : ds.samples()) {
    const int pred = clf.predict(dsl::lower(
        kernels::make_kernel(s.kernel, s.dtype, s.size_bytes)));
    EXPECT_GE(pred, 1);
    EXPECT_LE(pred, 8);
    exact += pred == s.label ? 1 : 0;
    ++i;
  }
  EXPECT_GT(exact, ds.size() / 2);
}

TEST(EnergyClassifierApi, PredictsFromKernelSpecDirectly) {
  const ml::Dataset ds = mini_dataset();
  EnergyClassifier clf;
  clf.train(ds);
  const dsl::KernelSpec spec =
      kernels::make_kernel("memcpy", kir::DType::I32, 512);
  const int pred = clf.predict(spec);
  EXPECT_GE(pred, 1);
  EXPECT_LE(pred, 8);
}

TEST(EnergyClassifierApi, RejectsDynamicFeatureColumns) {
  EnergyClassifier::Options opt;
  opt.columns = {"PE_sleep@8"};
  EXPECT_THROW(EnergyClassifier clf(opt), std::invalid_argument);
}

TEST(EnergyClassifierApi, PredictBeforeTrainThrows) {
  EnergyClassifier clf;
  EXPECT_THROW(
      (void)clf.predict(dsl::lower(
          kernels::make_kernel("memcpy", kir::DType::I32, 512))),
      std::logic_error);
}

TEST(EnergyClassifierApi, CustomColumnSubsetWorks) {
  const ml::Dataset ds = mini_dataset();
  EnergyClassifier::Options opt;
  opt.columns = {"avgws", "F4", "F1"};
  EnergyClassifier clf(opt);
  clf.train(ds);
  EXPECT_EQ(clf.columns().size(), 3U);
  const int pred = clf.predict(
      dsl::lower(kernels::make_kernel("alu_chain", kir::DType::I32, 512)));
  EXPECT_GE(pred, 1);
  EXPECT_LE(pred, 8);
}

TEST(EnergyClassifierApi, ExplainPrintsNamedRules) {
  const ml::Dataset ds = mini_dataset();
  EnergyClassifier clf;
  clf.train(ds);
  const std::string rules = clf.explain();
  EXPECT_FALSE(rules.empty());
  // Rules reference real feature names, not x<N> placeholders.
  EXPECT_EQ(rules.find("x0 <="), std::string::npos);
}

TEST(EnergyClassifierApi, OptimizedColumnsAreASubsetOfStatics) {
  const ml::Dataset ds = mini_dataset();
  ml::EvalOptions eval;
  eval.repeats = 2;
  eval.folds = 3;
  const std::vector<std::string> cols =
      optimized_static_columns(ds, 5, eval);
  EXPECT_EQ(cols.size(), 5U);
  const std::vector<std::string>& statics = feat::static_feature_names();
  for (const std::string& c : cols) {
    EXPECT_NE(std::find(statics.begin(), statics.end(), c), statics.end())
        << c;
  }
}

}  // namespace
}  // namespace pulpc::core
