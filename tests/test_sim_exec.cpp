// Instruction-semantics tests: hand-written KIR programs executed on one
// core, with results stored to TCDM and read back.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "sim/cluster.hpp"

namespace pulpc::sim {
namespace {

using kir::DType;
using kir::Instr;
using kir::MemSpace;
using kir::Op;

constexpr std::uint32_t kBase = 0x1000'0000;

Instr ins(Op op, std::uint8_t rd = 0, std::uint8_t rs1 = 0,
          std::uint8_t rs2 = 0, std::int32_t imm = 0,
          MemSpace mem = MemSpace::None) {
  return Instr{op, rd, rs1, rs2, imm, mem};
}

/// Wrap a body into a runnable program with one zeroed TCDM buffer.
kir::Program make_prog(std::vector<Instr> body) {
  kir::Program p;
  p.name = "exec-test";
  p.buffers.push_back(kir::BufferInfo{"m", DType::I32, MemSpace::Tcdm,
                                      kBase, 64, kir::BufInit::Zero});
  p.code.push_back(ins(Op::MarkEnter));
  for (const Instr& b : body) {
    Instr fixed = b;
    if (kir::is_branch(b.op)) fixed.imm += 1;  // account for the marker
    p.code.push_back(fixed);
  }
  p.code.push_back(ins(Op::MarkExit));
  p.code.push_back(ins(Op::Halt));
  return p;
}

/// Run on one core and return the first word of the buffer as i32.
std::int32_t run_i32(const std::vector<Instr>& body) {
  Cluster cl;
  cl.load(make_prog(body));
  const RunResult r = cl.run(1);
  EXPECT_TRUE(r.ok) << r.error;
  return cl.read_i32(kBase);
}

float run_f32(const std::vector<Instr>& body) {
  Cluster cl;
  cl.load(make_prog(body));
  const RunResult r = cl.run(1);
  EXPECT_TRUE(r.ok) << r.error;
  return cl.read_f32(kBase);
}

/// r10 holds the buffer base in every test body.
Instr load_base() { return ins(Op::Li, 10, 0, 0, std::int32_t(kBase)); }
Instr store_r1() {
  return ins(Op::Sw, 0, 10, 1, 0, MemSpace::Tcdm);
}
Instr fstore_f1() {
  return ins(Op::Fsw, 0, 10, 1, 0, MemSpace::Tcdm);
}

// ---- integer ALU -----------------------------------------------------

struct IntBinCase {
  Op op;
  std::int32_t a;
  std::int32_t b;
  std::int32_t expect;
};

class IntBinOps : public ::testing::TestWithParam<IntBinCase> {};

TEST_P(IntBinOps, ComputesExpectedValue) {
  const IntBinCase c = GetParam();
  const std::int32_t got = run_i32({
      load_base(),
      ins(Op::Li, 2, 0, 0, c.a),
      ins(Op::Li, 3, 0, 0, c.b),
      ins(c.op, 1, 2, 3),
      store_r1(),
  });
  EXPECT_EQ(got, c.expect) << kir::mnemonic(c.op);
}

constexpr std::int32_t kIntMin = std::numeric_limits<std::int32_t>::min();
constexpr std::int32_t kIntMax = std::numeric_limits<std::int32_t>::max();

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, IntBinOps,
    ::testing::Values(
        IntBinCase{Op::Add, 7, 5, 12}, IntBinCase{Op::Add, kIntMax, 1, kIntMin},
        IntBinCase{Op::Sub, 7, 5, 2}, IntBinCase{Op::Sub, kIntMin, 1, kIntMax},
        IntBinCase{Op::Mul, -3, 5, -15},
        IntBinCase{Op::Mul, 1 << 20, 1 << 20, 0},  // wraps to zero
        IntBinCase{Op::Slt, 3, 4, 1}, IntBinCase{Op::Slt, 4, 3, 0},
        IntBinCase{Op::Slt, -1, 0, 1},
        IntBinCase{Op::And, 0b1100, 0b1010, 0b1000},
        IntBinCase{Op::Or, 0b1100, 0b1010, 0b1110},
        IntBinCase{Op::Xor, 0b1100, 0b1010, 0b0110},
        IntBinCase{Op::Shl, 3, 4, 48}, IntBinCase{Op::Shr, -16, 2, -4},
        IntBinCase{Op::Shl, 1, 33, 2},  // shift amount masked to 5 bits
        IntBinCase{Op::Min, -3, 7, -3}, IntBinCase{Op::Max, -3, 7, 7}));

INSTANTIATE_TEST_SUITE_P(
    RiscvDivision, IntBinOps,
    ::testing::Values(IntBinCase{Op::Div, 17, 5, 3},
                      IntBinCase{Op::Div, -17, 5, -3},
                      IntBinCase{Op::Div, 17, 0, -1},     // RISC-V x/0
                      IntBinCase{Op::Div, kIntMin, -1, kIntMin},
                      IntBinCase{Op::Rem, 17, 5, 2},
                      IntBinCase{Op::Rem, -17, 5, -2},
                      IntBinCase{Op::Rem, 17, 0, 17},     // RISC-V x%0
                      IntBinCase{Op::Rem, kIntMin, -1, 0}));

TEST(SimExec, ImmediateForms) {
  EXPECT_EQ(run_i32({load_base(), ins(Op::Li, 2, 0, 0, 10),
                     ins(Op::AddI, 1, 2, 0, -3), store_r1()}),
            7);
  EXPECT_EQ(run_i32({load_base(), ins(Op::Li, 2, 0, 0, 10),
                     ins(Op::MulI, 1, 2, 0, 4), store_r1()}),
            40);
  EXPECT_EQ(run_i32({load_base(), ins(Op::Li, 2, 0, 0, 5),
                     ins(Op::ShlI, 1, 2, 0, 3), store_r1()}),
            40);
  EXPECT_EQ(run_i32({load_base(), ins(Op::Li, 2, 0, 0, 5),
                     ins(Op::SltI, 1, 2, 0, 6), store_r1()}),
            1);
  EXPECT_EQ(run_i32({load_base(), ins(Op::Li, 2, 0, 0, 0b1100),
                     ins(Op::XorI, 1, 2, 0, 0b1010), store_r1()}),
            0b0110);
}

TEST(SimExec, MacAccumulates) {
  EXPECT_EQ(run_i32({load_base(), ins(Op::Li, 1, 0, 0, 100),
                     ins(Op::Li, 2, 0, 0, 6), ins(Op::Li, 3, 0, 0, 7),
                     ins(Op::Mac, 1, 2, 3), store_r1()}),
            142);
}

TEST(SimExec, AbsAndMv) {
  EXPECT_EQ(run_i32({load_base(), ins(Op::Li, 2, 0, 0, -9),
                     ins(Op::Abs, 1, 2), store_r1()}),
            9);
  EXPECT_EQ(run_i32({load_base(), ins(Op::Li, 2, 0, 0, 77),
                     ins(Op::Mv, 1, 2), store_r1()}),
            77);
}

// ---- floating point -----------------------------------------------------

std::int32_t fbits(float f) { return std::bit_cast<std::int32_t>(f); }

TEST(SimExec, FpArithmetic) {
  EXPECT_FLOAT_EQ(run_f32({load_base(), ins(Op::FLi, 2, 0, 0, fbits(1.5F)),
                           ins(Op::FLi, 3, 0, 0, fbits(2.25F)),
                           ins(Op::FAdd, 1, 2, 3), fstore_f1()}),
                  3.75F);
  EXPECT_FLOAT_EQ(run_f32({load_base(), ins(Op::FLi, 2, 0, 0, fbits(1.5F)),
                           ins(Op::FLi, 3, 0, 0, fbits(2.0F)),
                           ins(Op::FMul, 1, 2, 3), fstore_f1()}),
                  3.0F);
  EXPECT_FLOAT_EQ(run_f32({load_base(), ins(Op::FLi, 2, 0, 0, fbits(1.0F)),
                           ins(Op::FLi, 3, 0, 0, fbits(8.0F)),
                           ins(Op::FDiv, 1, 2, 3), fstore_f1()}),
                  0.125F);
  EXPECT_FLOAT_EQ(run_f32({load_base(), ins(Op::FLi, 2, 0, 0, fbits(9.0F)),
                           ins(Op::FSqrt, 1, 2), fstore_f1()}),
                  3.0F);
}

TEST(SimExec, FpSqrtClampsNegativeToZero) {
  EXPECT_FLOAT_EQ(run_f32({load_base(), ins(Op::FLi, 2, 0, 0, fbits(-4.0F)),
                           ins(Op::FSqrt, 1, 2), fstore_f1()}),
                  0.0F);
}

TEST(SimExec, FpMacAndMinMax) {
  EXPECT_FLOAT_EQ(run_f32({load_base(), ins(Op::FLi, 1, 0, 0, fbits(1.0F)),
                           ins(Op::FLi, 2, 0, 0, fbits(2.0F)),
                           ins(Op::FLi, 3, 0, 0, fbits(3.0F)),
                           ins(Op::FMac, 1, 2, 3), fstore_f1()}),
                  7.0F);
  EXPECT_FLOAT_EQ(run_f32({load_base(), ins(Op::FLi, 2, 0, 0, fbits(-1.0F)),
                           ins(Op::FLi, 3, 0, 0, fbits(2.0F)),
                           ins(Op::FMin, 1, 2, 3), fstore_f1()}),
                  -1.0F);
}

TEST(SimExec, FpComparesWriteIntRegisters) {
  EXPECT_EQ(run_i32({load_base(), ins(Op::FLi, 2, 0, 0, fbits(1.0F)),
                     ins(Op::FLi, 3, 0, 0, fbits(2.0F)),
                     ins(Op::FLt, 1, 2, 3), store_r1()}),
            1);
  EXPECT_EQ(run_i32({load_base(), ins(Op::FLi, 2, 0, 0, fbits(2.0F)),
                     ins(Op::FLi, 3, 0, 0, fbits(2.0F)),
                     ins(Op::FEq, 1, 2, 3), store_r1()}),
            1);
}

TEST(SimExec, Conversions) {
  EXPECT_FLOAT_EQ(run_f32({load_base(), ins(Op::Li, 2, 0, 0, -7),
                           ins(Op::CvtSW, 1, 2), fstore_f1()}),
                  -7.0F);
  EXPECT_EQ(run_i32({load_base(), ins(Op::FLi, 2, 0, 0, fbits(3.9F)),
                     ins(Op::CvtWS, 1, 2), store_r1()}),
            3);  // truncation
  // Out-of-range conversion clamps instead of invoking UB.
  EXPECT_GT(run_i32({load_base(), ins(Op::FLi, 2, 0, 0, fbits(1e20F)),
                     ins(Op::CvtWS, 1, 2), store_r1()}),
            0);
}

// ---- memory ----------------------------------------------------------------

TEST(SimExec, StoreThenLoadRoundTrips) {
  EXPECT_EQ(run_i32({
                load_base(),
                ins(Op::Li, 1, 0, 0, 1234),
                ins(Op::Sw, 0, 10, 1, 8, MemSpace::Tcdm),   // m[2] = 1234
                ins(Op::Lw, 1, 10, 0, 8, MemSpace::Tcdm),   // r1 = m[2]
                store_r1(),
            }),
            1234);
}

TEST(SimExec, FloatMemoryRoundTrips) {
  EXPECT_FLOAT_EQ(run_f32({
                      load_base(),
                      ins(Op::FLi, 1, 0, 0, fbits(2.5F)),
                      ins(Op::Fsw, 0, 10, 1, 4, MemSpace::Tcdm),
                      ins(Op::Flw, 1, 10, 0, 4, MemSpace::Tcdm),
                      fstore_f1(),
                  }),
                  2.5F);
}

// ---- control flow -----------------------------------------------------------

TEST(SimExec, TakenBranchSkipsInstructions) {
  // if (r2 == r3) skip the overwrite.
  EXPECT_EQ(run_i32({
                load_base(),                       // 0
                ins(Op::Li, 1, 0, 0, 1),           // 1
                ins(Op::Li, 2, 0, 0, 5),           // 2
                ins(Op::Li, 3, 0, 0, 5),           // 3
                ins(Op::Beq, 0, 2, 3, 6),          // 4 -> target body idx 6
                ins(Op::Li, 1, 0, 0, 99),          // 5 skipped
                store_r1(),                        // 6
            }),
            1);
}

TEST(SimExec, LoopViaBackwardBranch) {
  // r1 = sum of 1..5 computed with a blt loop.
  EXPECT_EQ(run_i32({
                load_base(),                      // 0
                ins(Op::Li, 1, 0, 0, 0),          // 1 sum
                ins(Op::Li, 2, 0, 0, 1),          // 2 i
                ins(Op::Li, 3, 0, 0, 6),          // 3 limit
                ins(Op::Add, 1, 1, 2),            // 4 loop: sum += i
                ins(Op::AddI, 2, 2, 0, 1),        // 5 ++i
                ins(Op::Blt, 0, 2, 3, 4),         // 6
                store_r1(),                       // 7
            }),
            15);
}

TEST(SimExec, CoreIdAndNumCores) {
  Cluster cl;
  cl.load(make_prog({
      load_base(),
      ins(Op::CoreId, 1),
      ins(Op::NumCores, 2),
      ins(Op::Shl, 2, 2, 0),  // no-op shift, keep r2
      store_r1(),
      ins(Op::Sw, 0, 10, 2, 4, MemSpace::Tcdm),
  }));
  const RunResult r = cl.run(3);
  ASSERT_TRUE(r.ok) << r.error;
  const std::int32_t winner = cl.read_i32(kBase);
  EXPECT_GE(winner, 0);  // some core's id, deterministically arbitrated
  EXPECT_LT(winner, 3);
  EXPECT_EQ(cl.read_i32(kBase + 4), 3);  // numcores
}

TEST(SimExec, NopExecutesAndAdvances) {
  EXPECT_EQ(run_i32({load_base(), ins(Op::Li, 1, 0, 0, 5), ins(Op::Nop),
                     ins(Op::Nop), store_r1()}),
            5);
}

}  // namespace
}  // namespace pulpc::sim
