// Feature-extraction tests: the RAW/AGG formulas of Table IIa, the MCA
// vector of Table IIb, the Table III dynamic features, and the named
// feature sets used in Figure 2.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dsl/builder.hpp"
#include "dsl/lower.hpp"
#include "feat/features.hpp"
#include "sim/cluster.hpp"

namespace pulpc::feat {
namespace {

using dsl::Buf;
using dsl::InitKind;
using dsl::KernelBuilder;
using dsl::Val;
using kir::DType;

Val ic(std::int32_t v) { return dsl::make_const_i(v); }

kir::Program saxpy_prog(std::uint32_t n) {
  KernelBuilder k("saxpy", "test", DType::F32, n * 4);
  const Buf x = k.buffer("x", n, InitKind::Ramp);
  const Buf y = k.buffer("y", n, InitKind::Zero);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    k.store(y, i, k.ec(2) * k.load(x, i) + k.load(y, i));
  });
  return dsl::lower(k.build());
}

TEST(StaticFeatures, AggFormulasFollowThePaper) {
  const StaticFeatures f = extract_static(saxpy_prog(128));
  ASSERT_GT(f.op, 0.0);
  ASSERT_GT(f.tcdm, 0.0);
  EXPECT_DOUBLE_EQ(f.f1, f.transfer / (f.op + f.tcdm));
  EXPECT_DOUBLE_EQ(f.f3, f.avgws);
  EXPECT_DOUBLE_EQ(f.f4, f.op / f.tcdm);
}

TEST(StaticFeatures, TransferIsTotalBufferBytes) {
  const StaticFeatures f = extract_static(saxpy_prog(128));
  EXPECT_DOUBLE_EQ(f.transfer, 2 * 128 * 4.0);
}

TEST(StaticFeatures, AvgwsMatchesParallelIterations) {
  const StaticFeatures f = extract_static(saxpy_prog(128));
  EXPECT_DOUBLE_EQ(f.avgws, 128.0);
}

TEST(StaticFeatures, CountsScaleWithProblemSize) {
  const StaticFeatures small = extract_static(saxpy_prog(64));
  const StaticFeatures big = extract_static(saxpy_prog(256));
  EXPECT_GT(big.op, small.op);
  EXPECT_GT(big.tcdm, small.tcdm);
  EXPECT_DOUBLE_EQ(big.transfer, 4 * small.transfer);
  // Per-iteration structure is size-invariant.
  EXPECT_NEAR(big.f4, small.f4, 0.2);
}

TEST(StaticFeatures, McaFieldsArePopulated) {
  const StaticFeatures f = extract_static(saxpy_prog(128));
  EXPECT_GT(f.ipc, 0.0);
  EXPECT_GT(f.uopspc, 0.0);
  EXPECT_GT(f.rbp, 0.0);
  double pressure = 0;
  for (const double p : f.rp) pressure += p;
  EXPECT_GT(pressure, 0.0);
}

TEST(StaticFeatures, VectorMatchesNameOrder) {
  const StaticFeatures f = extract_static(saxpy_prog(128));
  const std::vector<double> v = f.to_vector();
  const std::vector<std::string>& names = static_feature_names();
  ASSERT_EQ(v.size(), names.size());
  // 20 Table II columns + 1 SB_best + 4 bound columns per core count.
  ASSERT_EQ(names.size(), 21U + 4U * kBoundsConfigs);
  EXPECT_EQ(names[0], "op");
  EXPECT_DOUBLE_EQ(v[0], f.op);
  EXPECT_EQ(names[4], "F1");
  EXPECT_DOUBLE_EQ(v[4], f.f1);
  EXPECT_EQ(names[8], "IPC");
  EXPECT_DOUBLE_EQ(v[8], f.ipc);
  EXPECT_EQ(names[19], "RP7");
  EXPECT_DOUBLE_EQ(v[19], f.rp[7]);
  EXPECT_EQ(names[20], "SB_best");
  EXPECT_DOUBLE_EQ(v[20], f.sb_best);
  EXPECT_EQ(names[21], "SB_width@1");
  EXPECT_DOUBLE_EQ(v[21], f.sb_width[0]);
  EXPECT_EQ(names.back(), "SB_cont@8");
  EXPECT_DOUBLE_EQ(v.back(), f.sb_cont[7]);
}

TEST(StaticFeatures, StaticBoundsColumnsAreOptIn) {
  // The paper-replication sets must not see the SB_* columns; the
  // StaticBounds set must see only them.
  const auto all = feature_set_columns(FeatureSet::AllStatic);
  EXPECT_EQ(all.size(), 20U);
  for (const std::string& c : all) EXPECT_NE(c.substr(0, 3), "SB_") << c;
  const auto mca = feature_set_columns(FeatureSet::Mca);
  EXPECT_EQ(mca.size(), 13U);
  EXPECT_EQ(mca.back(), "RP7");
  const auto sb = feature_set_columns(FeatureSet::StaticBounds);
  EXPECT_EQ(sb.size(), 1U + 4U * kBoundsConfigs);
  for (const std::string& c : sb) EXPECT_EQ(c.substr(0, 3), "SB_") << c;
}

TEST(StaticFeatures, StaticBoundsValuesAreNormalized) {
  const StaticFeatures f = extract_static(saxpy_prog(128));
  EXPECT_GE(f.sb_best, 1.0);
  EXPECT_LE(f.sb_best, 8.0);
  for (unsigned k = 0; k < kBoundsConfigs; ++k) {
    EXPECT_GE(f.sb_width[k], 0.0);
    EXPECT_LE(f.sb_width[k], 1.0);
    EXPECT_GE(f.sb_ewidth[k], 0.0);
    EXPECT_LE(f.sb_ewidth[k], 1.0);
    EXPECT_GE(f.sb_bar[k], 0.0);
    EXPECT_GE(f.sb_cont[k], 0.0);
  }
  // More cores never tightens the width of a parallel kernel's bounds
  // at the top end: the n=8 interval is at least as wide as n=1.
  EXPECT_GE(f.sb_width[7], f.sb_width[0]);
}

TEST(DynamicFeatures, ComputedFromSyntheticRunStats) {
  sim::RunStats st;
  st.ncores = 2;
  st.total_cores = 8;
  st.region_begin = 1;
  st.region_end = 100;
  st.core.resize(8);
  st.l1.resize(16);
  st.l2.resize(32);
  st.fpu.resize(4);
  st.core[0].idle_cycles = 10;
  st.core[0].cyc_cg = 20;
  st.core[0].n_alu = 50;
  st.core[0].n_div = 5;
  st.core[1].n_fp = 30;
  st.core[1].n_fpdiv = 2;
  st.core[0].n_l1 = 40;
  st.core[1].n_l2 = 4;
  st.l1[0].reads = 30;
  st.l1[0].writes = 10;
  st.l1[1].conflicts = 7;
  const DynamicFeatures d = extract_dynamic(st);
  EXPECT_DOUBLE_EQ(d.pe_idle, 10.0 / 200.0);
  EXPECT_DOUBLE_EQ(d.pe_sleep, 20.0 / 200.0);
  EXPECT_DOUBLE_EQ(d.pe_alu, 55.0);
  EXPECT_DOUBLE_EQ(d.pe_fp, 32.0);
  EXPECT_DOUBLE_EQ(d.pe_l1, 40.0);
  EXPECT_DOUBLE_EQ(d.pe_l2, 4.0);
  EXPECT_DOUBLE_EQ(d.l1_read, 30.0);
  EXPECT_DOUBLE_EQ(d.l1_write, 10.0);
  EXPECT_DOUBLE_EQ(d.l1_conflicts, 7.0);
  // idle = 16 banks x 100 cycles - 40 accesses.
  EXPECT_DOUBLE_EQ(d.l1_idle, 16 * 100.0 - 40.0);
  const std::vector<double> v = d.to_vector();
  ASSERT_EQ(v.size(), std::size_t(kDynamicPerConfig));
  EXPECT_DOUBLE_EQ(v[1], d.pe_sleep);
  EXPECT_DOUBLE_EQ(v[9], d.l1_conflicts);
}

TEST(DynamicFeatures, FromRealRunSleepGrowsWithCores) {
  const kir::Program prog = saxpy_prog(64);  // small: imbalance at 8 cores
  sim::Cluster cl;
  cl.load(prog);
  const sim::RunResult r1 = cl.run(1);
  const sim::RunResult r8 = cl.run(8);
  ASSERT_TRUE(r1.ok && r8.ok);
  const DynamicFeatures d1 = extract_dynamic(r1.stats);
  const DynamicFeatures d8 = extract_dynamic(r8.stats);
  EXPECT_GT(d8.pe_sleep, d1.pe_sleep);
  EXPECT_DOUBLE_EQ(d1.pe_l1 + d8.pe_l1, 2 * d1.pe_l1);  // same total work
}

TEST(FeatureSets, ColumnListsMatchThePaper) {
  EXPECT_EQ(feature_set_columns(FeatureSet::Agg),
            (std::vector<std::string>{"F1", "F3", "F4"}));
  EXPECT_EQ(feature_set_columns(FeatureSet::RawAgg).size(), 7U);
  EXPECT_EQ(feature_set_columns(FeatureSet::Mca).size(), 13U);
  EXPECT_EQ(feature_set_columns(FeatureSet::AllStatic).size(), 20U);
  EXPECT_EQ(feature_set_columns(FeatureSet::Dynamic, 8).size(), 80U);
}

TEST(FeatureSets, DynamicNamesEncodeCoreCount) {
  const std::vector<std::string> names = dynamic_feature_names(2);
  ASSERT_EQ(names.size(), 2U * kDynamicPerConfig);
  EXPECT_EQ(names.front(), "PE_idle@1");
  EXPECT_EQ(names.back(), "L1_conflicts@2");
  EXPECT_NE(std::find(names.begin(), names.end(), "PE_sleep@2"),
            names.end());
}

TEST(FeatureSets, NamesAreDescriptive) {
  EXPECT_STREQ(to_string(FeatureSet::Agg), "AGG");
  EXPECT_STREQ(to_string(FeatureSet::RawAgg), "RAW+AGG");
  EXPECT_STREQ(to_string(FeatureSet::Mca), "MCA");
  EXPECT_STREQ(to_string(FeatureSet::AllStatic), "ALL-STATIC");
  EXPECT_STREQ(to_string(FeatureSet::Dynamic), "DYNAMIC");
}

TEST(StaticFeatures, SerialKernelHasUnitAvgws) {
  KernelBuilder k("serial", "test", DType::I32, 64);
  const Buf b = k.buffer("b", 16);
  k.for_("i", ic(0), ic(16), [&](Val i) { k.store(b, i, i); });
  const StaticFeatures f = extract_static(dsl::lower(k.build()));
  EXPECT_DOUBLE_EQ(f.avgws, 1.0);
}

TEST(StaticFeatures, DivKernelShowsDividerPressure) {
  KernelBuilder k("divs", "test", DType::I32, 64);
  const Buf b = k.buffer("b", 16, InitKind::RandomPos);
  k.par_for("i", ic(0), ic(16), [&](Val i) {
    k.store(b, i, ic(1000) / (k.load(b, i) + ic(1)));
  });
  const StaticFeatures f = extract_static(dsl::lower(k.build()));
  EXPECT_GT(f.rp_div, 0.5);
}

}  // namespace
}  // namespace pulpc::feat
