// Prediction-service tests: service-level (batching equivalence against
// sequential EnergyClassifier::predict, LRU eviction and hit accounting,
// backpressure shed at max in-flight, metrics snapshot sanity) and
// loopback-socket server tests (concurrent clients, malformed-JSON error
// replies, per-request timeout, clean shutdown). The load-bearing
// invariant throughout: a served prediction is bit-identical to the
// offline one.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/classifier.hpp"
#include "core/pipeline.hpp"
#include "dsl/lower.hpp"
#include "kernels/registry.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/sharded.hpp"

namespace pulpc {
namespace {

using serve::PredictionService;
using serve::Request;
using serve::Result;
using serve::ShardedService;

/// One tiny trained classifier shared by every test (training simulates
/// 4 kernels x 8 core counts; do it once).
const core::EnergyClassifier& test_classifier() {
  static const core::EnergyClassifier* clf = [] {
    ml::Dataset ds(core::dataset_columns(8));
    for (const char* name : {"memcpy", "alu_chain", "trisolv", "autocor"}) {
      ds.add(core::build_sample({name, kir::DType::I32, 512}));
    }
    auto* c = new core::EnergyClassifier();
    c->train(ds);
    return c;
  }();
  return *clf;
}

Request spec_request(const std::string& kernel, kir::DType dtype,
                     std::uint32_t bytes) {
  Request r;
  r.kernel = kernel;
  r.dtype = dtype;
  r.size_bytes = bytes;
  return r;
}

int offline_predict(const std::string& kernel, kir::DType dtype,
                    std::uint32_t bytes) {
  return test_classifier().predict(
      dsl::lower(kernels::make_kernel(kernel, dtype, bytes)));
}

/// Holds the batcher thread inside the on_batch hook so tests can pile
/// up queued work deterministically.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  int entered = 0;

  void enter() {
    std::unique_lock<std::mutex> lk(mu);
    ++entered;
    cv.notify_all();
    cv.wait(lk, [&] { return open; });
  }
  void wait_entered(int n) {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return entered >= n; });
  }
  void release() {
    std::lock_guard<std::mutex> lk(mu);
    open = true;
    cv.notify_all();
  }
};

// ---- service ------------------------------------------------------------

TEST(PredictionService, MatchesOfflinePredict) {
  PredictionService svc(test_classifier());
  for (const char* kernel :
       {"memcpy", "stencil5", "div_chain", "alu_chain"}) {
    const Result r =
        svc.predict(spec_request(kernel, kir::DType::I32, 2048));
    ASSERT_TRUE(r.ok) << kernel << ": " << r.error;
    EXPECT_EQ(r.cores, offline_predict(kernel, kir::DType::I32, 2048))
        << kernel;
  }
  const Result f = svc.predict(spec_request("gemm", kir::DType::F32, 1024));
  ASSERT_TRUE(f.ok) << f.error;
  EXPECT_EQ(f.cores, offline_predict("gemm", kir::DType::F32, 1024));
}

TEST(PredictionService, MatchesOfflineWithFlatPathEnabledAndDisabled) {
  // The issue's contract: served replies equal the offline prediction
  // with the flat engine ON (batched branchless walk) and OFF (per-row
  // node-chasing tree) — the knob changes speed, never answers.
  for (const bool use_flat : {true, false}) {
    PredictionService::Options opt;
    opt.use_flat = use_flat;
    PredictionService svc(test_classifier(), opt);
    EXPECT_EQ(svc.model()->clf.use_flat(), use_flat);
    for (const char* kernel :
         {"memcpy", "stencil5", "div_chain", "alu_chain", "trisolv",
          "autocor", "gemm", "fir"}) {
      const Result r =
          svc.predict(spec_request(kernel, kir::DType::I32, 2048));
      ASSERT_TRUE(r.ok) << kernel << ": " << r.error;
      EXPECT_EQ(r.cores, offline_predict(kernel, kir::DType::I32, 2048))
          << kernel << " use_flat=" << use_flat;
    }
  }
}

TEST(PredictionService, WholeBatchGetsOneFlatWalkAndCorrectAnswers) {
  // Submit a burst that coalesces into one micro-batch: every reply
  // must match offline even though the batch was classified by a
  // single predict_rows call (including a poisoned batch-mate).
  Gate gate;
  PredictionService::Options opt;
  opt.max_batch = 16;
  opt.batch_linger = std::chrono::microseconds(20000);
  opt.on_batch = [&](std::size_t) { gate.enter(); };
  PredictionService svc(test_classifier(), opt);

  const char* kernels[] = {"memcpy",  "stencil5", "div_chain", "gemm",
                           "trisolv", "autocor",  "fir",       "memset"};
  std::vector<std::future<Result>> futures;
  futures.push_back(
      svc.submit(spec_request("no_such_kernel", kir::DType::I32, 1024)));
  for (const char* k : kernels) {
    futures.push_back(svc.submit(spec_request(k, kir::DType::I32, 1024)));
  }
  gate.wait_entered(1);
  gate.release();

  const Result bad = futures[0].get();
  EXPECT_FALSE(bad.ok);
  for (std::size_t i = 0; i < std::size(kernels); ++i) {
    const Result r = futures[i + 1].get();
    ASSERT_TRUE(r.ok) << kernels[i] << ": " << r.error;
    EXPECT_EQ(r.cores,
              offline_predict(kernels[i], kir::DType::I32, 1024))
        << kernels[i];
  }
}

TEST(PredictionService, ProgramFormRequestsShareTheRowCache) {
  PredictionService svc(test_classifier());
  const auto prog = std::make_shared<const kir::Program>(
      dsl::lower(kernels::make_kernel("gemm", kir::DType::I32, 2048)));
  Request req;
  req.program = prog;
  const Result cold = svc.predict(req);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.cached);
  EXPECT_EQ(cold.cores, test_classifier().predict(*prog));
  const Result warm = svc.predict(req);
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cached);
  EXPECT_EQ(warm.cores, cold.cores);
  // A spec-form request lowering to the same program also hits the row
  // cache (keyed by the lowered-program hash, not the request form).
  const Result spec = svc.predict(spec_request("gemm", kir::DType::I32, 2048));
  ASSERT_TRUE(spec.ok);
  EXPECT_TRUE(spec.cached);
  EXPECT_EQ(spec.cores, cold.cores);
}

TEST(PredictionService, BatchedResultsEqualSequentialPredicts) {
  PredictionService::Options opt;
  opt.max_batch = 8;
  auto gate = std::make_shared<Gate>();
  std::mutex sizes_mu;
  std::vector<std::size_t> batch_sizes;
  opt.on_batch = [&, gate](std::size_t n) {
    {
      std::lock_guard<std::mutex> lk(sizes_mu);
      batch_sizes.push_back(n);
    }
    gate->enter();
  };
  PredictionService svc(test_classifier(), opt);

  // Warmup request parks the batcher in the gate; everything submitted
  // meanwhile must coalesce into one full batch.
  auto warmup = svc.submit(spec_request("memcpy", kir::DType::I32, 512));
  gate->wait_entered(1);
  const char* kernels[8] = {"memcpy",   "alu_chain", "trisolv", "autocor",
                            "stencil5", "div_chain", "gemm",    "fir"};
  std::vector<std::future<Result>> futures;
  for (const char* k : kernels) {
    futures.push_back(svc.submit(spec_request(k, kir::DType::I32, 1024)));
  }
  gate->release();
  ASSERT_TRUE(warmup.get().ok);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Result r = futures[i].get();
    ASSERT_TRUE(r.ok) << kernels[i] << ": " << r.error;
    EXPECT_EQ(r.cores, offline_predict(kernels[i], kir::DType::I32, 1024))
        << kernels[i];
  }
  std::lock_guard<std::mutex> lk(sizes_mu);
  ASSERT_GE(batch_sizes.size(), 2u);
  EXPECT_EQ(batch_sizes[1], 8u);  // the burst ran as one micro-batch
  EXPECT_EQ(svc.metrics().max_batch, 8u);
}

TEST(PredictionService, CacheHitAccounting) {
  PredictionService svc(test_classifier());
  const Request req = spec_request("memcpy", kir::DType::I32, 512);
  EXPECT_FALSE(svc.predict(req).cached);
  EXPECT_TRUE(svc.predict(req).cached);
  EXPECT_TRUE(svc.predict(req).cached);
  const serve::Metrics::Snapshot m = svc.metrics();
  EXPECT_EQ(m.cache_misses, 1u);
  EXPECT_EQ(m.cache_hits, 2u);
  EXPECT_EQ(m.cache_evictions, 0u);
}

TEST(PredictionService, LruEvictsColdestEntry) {
  PredictionService::Options opt;
  opt.cache_capacity = 2;
  PredictionService svc(test_classifier(), opt);
  const Request a = spec_request("memcpy", kir::DType::I32, 512);
  const Request b = spec_request("alu_chain", kir::DType::I32, 512);
  const Request c = spec_request("trisolv", kir::DType::I32, 512);
  EXPECT_FALSE(svc.predict(a).cached);
  EXPECT_FALSE(svc.predict(b).cached);
  EXPECT_FALSE(svc.predict(c).cached);  // evicts a (capacity 2)
  EXPECT_GE(svc.metrics().cache_evictions, 1u);
  EXPECT_FALSE(svc.predict(a).cached);  // a is cold again
  EXPECT_TRUE(svc.predict(c).cached);   // c stayed warm
}

TEST(PredictionService, CapacityZeroDisablesCaching) {
  PredictionService::Options opt;
  opt.cache_capacity = 0;
  PredictionService svc(test_classifier(), opt);
  const Request req = spec_request("memcpy", kir::DType::I32, 512);
  EXPECT_FALSE(svc.predict(req).cached);
  EXPECT_FALSE(svc.predict(req).cached);
  EXPECT_EQ(svc.metrics().cache_hits, 0u);
}

TEST(PredictionService, ShedsBeyondMaxInFlight) {
  PredictionService::Options opt;
  opt.max_batch = 1;
  opt.batch_linger = std::chrono::microseconds(0);
  opt.max_in_flight = 2;
  auto gate = std::make_shared<Gate>();
  std::atomic<bool> hold{true};
  opt.on_batch = [&, gate](std::size_t) {
    if (hold.load()) gate->enter();
  };
  PredictionService svc(test_classifier(), opt);

  auto r1 = svc.submit(spec_request("memcpy", kir::DType::I32, 512));
  gate->wait_entered(1);  // r1 is executing (still in flight)
  auto r2 = svc.submit(spec_request("alu_chain", kir::DType::I32, 512));
  auto r3 = svc.submit(spec_request("trisolv", kir::DType::I32, 512));

  // r3 exceeded max_in_flight: shed immediately with an explicit
  // "overloaded" result, not queued.
  ASSERT_EQ(r3.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const Result shed = r3.get();
  EXPECT_FALSE(shed.ok);
  EXPECT_TRUE(shed.shed);
  EXPECT_EQ(shed.error, "overloaded");

  hold.store(false);
  gate->release();
  EXPECT_TRUE(r1.get().ok);
  EXPECT_TRUE(r2.get().ok);
  const serve::Metrics::Snapshot m = svc.metrics();
  EXPECT_EQ(m.shed, 1u);
  EXPECT_EQ(m.requests, 3u);
}

TEST(PredictionService, BadKernelDoesNotPoisonItsBatch) {
  PredictionService::Options opt;
  opt.max_batch = 4;
  auto gate = std::make_shared<Gate>();
  std::atomic<bool> hold{true};
  opt.on_batch = [&, gate](std::size_t) {
    if (hold.exchange(false)) gate->enter();
  };
  PredictionService svc(test_classifier(), opt);
  auto warmup = svc.submit(spec_request("memcpy", kir::DType::I32, 512));
  gate->wait_entered(1);
  auto bad = svc.submit(spec_request("no_such_kernel", kir::DType::I32, 64));
  auto good = svc.submit(spec_request("trisolv", kir::DType::I32, 512));
  gate->release();
  ASSERT_TRUE(warmup.get().ok);
  const Result rb = bad.get();
  EXPECT_FALSE(rb.ok);
  EXPECT_NE(rb.error.find("no_such_kernel"), std::string::npos) << rb.error;
  const Result rg = good.get();
  ASSERT_TRUE(rg.ok) << rg.error;
  EXPECT_EQ(rg.cores, offline_predict("trisolv", kir::DType::I32, 512));
}

TEST(PredictionService, DestructorDrainsAcceptedRequests) {
  std::vector<std::future<Result>> futures;
  {
    PredictionService::Options opt;
    opt.max_batch = 2;
    PredictionService svc(test_classifier(), opt);
    for (const char* k : {"memcpy", "alu_chain", "trisolv", "autocor"}) {
      futures.push_back(svc.submit(spec_request(k, kir::DType::I32, 512)));
    }
  }  // destructor: accepted work finishes, nothing is dropped
  for (auto& f : futures) {
    const Result r = f.get();
    EXPECT_TRUE(r.ok) << r.error;
  }
}

TEST(PredictionService, UntrainedClassifierIsRejected) {
  EXPECT_THROW(PredictionService svc{core::EnergyClassifier()},
               std::invalid_argument);
}

TEST(PredictionService, MetricsSnapshotIsConsistent) {
  PredictionService svc(test_classifier());
  (void)svc.predict(spec_request("memcpy", kir::DType::I32, 512));
  (void)svc.predict(spec_request("memcpy", kir::DType::I32, 512));
  (void)svc.predict(spec_request("nope", kir::DType::I32, 64));
  const serve::Metrics::Snapshot m = svc.metrics();
  EXPECT_EQ(m.requests, 3u);
  EXPECT_EQ(m.ok, 2u);
  EXPECT_EQ(m.errors, 1u);
  EXPECT_EQ(m.shed, 0u);
  EXPECT_EQ(m.latency_count, m.ok + m.errors);
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t b : m.latency_buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, m.latency_count);
  EXPECT_GT(m.latency_sum_us, 0.0);
  EXPECT_EQ(m.in_flight, 0u);
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"requests\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"latency_us\":{"), std::string::npos) << json;
  // The snapshot JSON is itself a valid flat-ish object our own parser
  // does not need to read back; sanity-check the brackets balance.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// ---- protocol -----------------------------------------------------------

TEST(ServeProtocol, ParsesWellFormedRequests) {
  serve::WireRequest req;
  EXPECT_EQ(serve::parse_request(
                R"({"id":7,"kernel":"gemm","dtype":"i32","bytes":8192})",
                &req),
            "");
  EXPECT_EQ(req.id, 7);
  EXPECT_EQ(req.kernel, "gemm");
  EXPECT_EQ(req.dtype, "i32");
  EXPECT_EQ(req.bytes, 8192u);
  EXPECT_FALSE(req.optimize);

  EXPECT_EQ(serve::parse_request(
                R"( { "kernel" : "fir" , "dtype" : "f32", "bytes" : 64 , )"
                R"("optimize" : true , "future_key" : null } )",
                &req),
            "");
  EXPECT_EQ(req.id, -1);
  EXPECT_TRUE(req.optimize);
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  serve::WireRequest req;
  EXPECT_NE(serve::parse_request("not json", &req), "");
  EXPECT_NE(serve::parse_request("{\"kernel\":\"x\"", &req), "");
  EXPECT_NE(serve::parse_request("{}", &req), "");
  EXPECT_NE(serve::parse_request(
                R"({"kernel":"x","dtype":"i64","bytes":64})", &req),
            "");
  EXPECT_NE(serve::parse_request(
                R"({"kernel":"x","dtype":"i32","bytes":0})", &req),
            "");
  EXPECT_NE(serve::parse_request(
                R"({"kernel":"x","dtype":"i32","bytes":2.5})", &req),
            "");
  EXPECT_NE(serve::parse_request(
                R"({"kernel":{},"dtype":"i32","bytes":64})", &req),
            "");
  EXPECT_NE(serve::parse_request(
                R"({"kernel":"x","dtype":"i32","bytes":64} trailing)", &req),
            "");
}

TEST(ServeProtocol, ReplyRoundTrips) {
  Result r;
  r.ok = true;
  r.cores = 4;
  r.cached = true;
  r.micros = 12.5;
  serve::WireReply wire;
  ASSERT_EQ(serve::parse_reply(serve::format_reply(9, r), &wire), "");
  EXPECT_EQ(wire.id, 9);
  EXPECT_TRUE(wire.ok);
  EXPECT_EQ(wire.cores, 4);
  EXPECT_TRUE(wire.cached);
  EXPECT_DOUBLE_EQ(wire.micros, 12.5);

  ASSERT_EQ(serve::parse_reply(
                serve::format_error_reply(-1, "bad \"quoted\" thing"), &wire),
            "");
  EXPECT_FALSE(wire.ok);
  EXPECT_EQ(wire.error, "bad \"quoted\" thing");
}

// ---- server (loopback sockets) ------------------------------------------

int dial(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) return false;
    off += std::size_t(n);
  }
  return true;
}

std::string read_line(int fd) {
  std::string buf;
  char c;
  while (buf.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n <= 0) return "";
    buf += c;
  }
  buf.pop_back();
  return buf;
}

/// Send one request line, read one reply line.
std::string rpc(int fd, const std::string& line) {
  if (!send_all(fd, line + "\n")) return "";
  return read_line(fd);
}

/// Server under test: single-shard service + server + run() thread,
/// torn down in reverse order even when an assertion fails mid-test.
/// One shard keeps the per-service hooks (on_batch, max_in_flight)
/// deterministic; the multi-shard paths are pinned in
/// test_serve_scale.cpp.
ShardedService::Options one_shard(PredictionService::Options sopt) {
  ShardedService::Options o;
  o.shards = 1;
  o.service = std::move(sopt);
  return o;
}

struct TestServer {
  explicit TestServer(PredictionService::Options sopt = {},
                      serve::ServeOptions wopt = {})
      : service(test_classifier(), one_shard(std::move(sopt))) {
    wopt.port = std::uint16_t{0};  // explicit zero: ephemeral port
    server = std::make_unique<serve::Server>(service, wopt);
    port = server->start();
    runner = std::thread([this] { server->run(); });
  }
  ~TestServer() { stop(); }
  void stop() {
    if (runner.joinable()) {
      server->request_stop();
      runner.join();
    }
  }

  ShardedService service;
  std::unique_ptr<serve::Server> server;
  std::uint16_t port = 0;
  std::thread runner;
};

TEST(PredictionServer, ServedReplyMatchesOfflinePredict) {
  TestServer ts;
  const int fd = dial(ts.port);
  ASSERT_GE(fd, 0);
  serve::WireReply wire;
  ASSERT_EQ(serve::parse_reply(
                rpc(fd, R"({"id":42,"kernel":"gemm","dtype":"i32",)"
                        R"("bytes":8192})"),
                &wire),
            "");
  EXPECT_EQ(wire.id, 42);
  ASSERT_TRUE(wire.ok) << wire.error;
  EXPECT_EQ(wire.cores, offline_predict("gemm", kir::DType::I32, 8192));
  // Same request again: answered from the feature cache, same cores.
  ASSERT_EQ(serve::parse_reply(
                rpc(fd, R"({"id":43,"kernel":"gemm","dtype":"i32",)"
                        R"("bytes":8192})"),
                &wire),
            "");
  EXPECT_TRUE(wire.cached);
  EXPECT_EQ(wire.cores, offline_predict("gemm", kir::DType::I32, 8192));
  ::close(fd);
}

TEST(PredictionServer, MalformedJsonGetsErrorReplyAndConnectionSurvives) {
  TestServer ts;
  const int fd = dial(ts.port);
  ASSERT_GE(fd, 0);
  serve::WireReply wire;
  ASSERT_EQ(serve::parse_reply(rpc(fd, "this is not json"), &wire), "");
  EXPECT_FALSE(wire.ok);
  EXPECT_NE(wire.error.find("parse"), std::string::npos) << wire.error;

  ASSERT_EQ(serve::parse_reply(rpc(fd, R"({"bytes":64})"), &wire), "");
  EXPECT_FALSE(wire.ok);
  EXPECT_NE(wire.error.find("kernel"), std::string::npos) << wire.error;

  // The same connection still serves well-formed requests...
  ASSERT_EQ(serve::parse_reply(
                rpc(fd, R"({"kernel":"memcpy","dtype":"i32","bytes":512})"),
                &wire),
            "");
  EXPECT_TRUE(wire.ok) << wire.error;
  ::close(fd);

  // ...and so does a fresh one (the server never died).
  const int fd2 = dial(ts.port);
  ASSERT_GE(fd2, 0);
  ASSERT_EQ(serve::parse_reply(
                rpc(fd2, R"({"kernel":"memcpy","dtype":"i32","bytes":512})"),
                &wire),
            "");
  EXPECT_TRUE(wire.ok);
  ::close(fd2);
}

TEST(PredictionServer, UnknownKernelIsAnErrorReplyNotACrash) {
  TestServer ts;
  const int fd = dial(ts.port);
  ASSERT_GE(fd, 0);
  serve::WireReply wire;
  ASSERT_EQ(serve::parse_reply(
                rpc(fd, R"({"kernel":"nope","dtype":"i32","bytes":64})"),
                &wire),
            "");
  EXPECT_FALSE(wire.ok);
  EXPECT_NE(wire.error.find("nope"), std::string::npos) << wire.error;
  ::close(fd);
}

TEST(PredictionServer, ConcurrentClientsAllGetCorrectAnswers) {
  TestServer ts;
  const char* kernels[4] = {"memcpy", "alu_chain", "trisolv", "autocor"};
  std::vector<int> expected;
  for (const char* k : kernels) {
    expected.push_back(offline_predict(k, kir::DType::I32, 1024));
  }
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      const int fd = dial(ts.port);
      if (fd < 0) {
        ++failures;
        return;
      }
      for (int i = 0; i < 5; ++i) {
        const char* k = kernels[(t + i) % 4];
        serve::WireReply wire;
        const std::string reply = rpc(
            fd, std::string("{\"id\":") + std::to_string(t * 100 + i) +
                    ",\"kernel\":\"" + k +
                    "\",\"dtype\":\"i32\",\"bytes\":1024}");
        if (!serve::parse_reply(reply, &wire).empty() || !wire.ok ||
            wire.cores != expected[(t + i) % 4] ||
            wire.id != t * 100 + i) {
          ++failures;
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  const serve::Metrics::Snapshot m = ts.service.metrics();
  EXPECT_EQ(m.ok, 20u);
  EXPECT_EQ(m.errors + m.shed, 0u);
}

TEST(PredictionServer, SlowRequestGetsTimeoutReply) {
  PredictionService::Options sopt;
  std::atomic<bool> slow{true};
  sopt.on_batch = [&](std::size_t) {
    if (slow.exchange(false)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }
  };
  serve::ServeOptions wopt;
  wopt.request_timeout_ms = 30;
  TestServer ts(std::move(sopt), wopt);
  const int fd = dial(ts.port);
  ASSERT_GE(fd, 0);
  serve::WireReply wire;
  ASSERT_EQ(serve::parse_reply(
                rpc(fd, R"({"kernel":"memcpy","dtype":"i32","bytes":512})"),
                &wire),
            "");
  EXPECT_FALSE(wire.ok);
  EXPECT_EQ(wire.error, "timeout");
  // After the slow batch drains the connection serves normally again;
  // until then follow-up requests keep timing out too, so retry.
  bool recovered = false;
  for (int attempt = 0; attempt < 50 && !recovered; ++attempt) {
    ASSERT_EQ(serve::parse_reply(
                  rpc(fd, R"({"kernel":"memcpy","dtype":"i32","bytes":512})"),
                  &wire),
              "");
    recovered = wire.ok;
    if (!recovered) {
      ASSERT_EQ(wire.error, "timeout");
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(recovered);
  ::close(fd);
}

TEST(PredictionServer, OverloadedServiceShedsOverTheWire) {
  PredictionService::Options sopt;
  sopt.max_batch = 1;
  sopt.batch_linger = std::chrono::microseconds(0);
  sopt.max_in_flight = 1;
  auto gate = std::make_shared<Gate>();
  std::atomic<bool> hold{true};
  sopt.on_batch = [&, gate](std::size_t) {
    if (hold.exchange(false)) gate->enter();
  };
  TestServer ts(std::move(sopt));
  const int fd1 = dial(ts.port);
  ASSERT_GE(fd1, 0);
  ASSERT_TRUE(send_all(
      fd1, R"({"id":1,"kernel":"memcpy","dtype":"i32","bytes":512})"
           "\n"));
  gate->wait_entered(1);  // the first request is executing

  const int fd2 = dial(ts.port);
  ASSERT_GE(fd2, 0);
  serve::WireReply wire;
  ASSERT_EQ(serve::parse_reply(
                rpc(fd2, R"({"id":2,"kernel":"trisolv","dtype":"i32",)"
                         R"("bytes":512})"),
                &wire),
            "");
  EXPECT_FALSE(wire.ok);
  EXPECT_EQ(wire.error, "overloaded");
  ::close(fd2);

  gate->release();
  ASSERT_EQ(serve::parse_reply(read_line(fd1), &wire), "");
  EXPECT_TRUE(wire.ok) << wire.error;
  ::close(fd1);
  EXPECT_EQ(ts.service.metrics().shed, 1u);
}

TEST(PredictionServer, CleanShutdownClosesTheListener) {
  auto ts = std::make_unique<TestServer>();
  const std::uint16_t port = ts->port;
  const int fd = dial(port);
  ASSERT_GE(fd, 0);
  serve::WireReply wire;
  ASSERT_EQ(serve::parse_reply(
                rpc(fd, R"({"kernel":"memcpy","dtype":"i32","bytes":512})"),
                &wire),
            "");
  EXPECT_TRUE(wire.ok);

  ts->stop();  // request_stop + join: run() returned, threads joined
  ::close(fd);
  EXPECT_LT(dial(port), 0);  // nobody is listening any more
  ts.reset();
}

}  // namespace
}  // namespace pulpc
