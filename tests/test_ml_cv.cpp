// Cross-validation protocol tests: stratified folds, the tolerance-aware
// accuracy of the paper's Figure 2, repeated evaluation, the always-8
// baseline and feature ranking.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "ml/cv.hpp"
#include "ml/metrics.hpp"

namespace pulpc::ml {
namespace {

/// Synthetic labelled dataset: the label (1..4) is a simple function of
/// the features, and energies are shaped so the labelled class is the
/// minimum with controlled margins.
Dataset make_dataset(int n, unsigned seed, double energy_margin = 0.5) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0, 1);
  Dataset ds({"f0", "f1", "noise"});
  for (int i = 0; i < n; ++i) {
    Sample s;
    s.kernel = "synth" + std::to_string(i);
    s.suite = "synthetic";
    s.dtype = kir::DType::I32;
    s.size_bytes = 512;
    const double a = u(rng);
    const double b = u(rng);
    s.features = {a, b, u(rng)};
    s.label = 1 + (a > 0.5) * 2 + (b > 0.5);
    for (int k = 1; k <= 4; ++k) {
      const double dist = std::abs(k - s.label);
      s.energy.push_back(100.0 * (1.0 + energy_margin * dist));
      s.cycles.push_back(1000.0 / k);
    }
    ds.add(std::move(s));
  }
  return ds;
}

TEST(StratifiedKFold, PartitionsAllIndicesExactlyOnce) {
  std::vector<int> y;
  for (int i = 0; i < 97; ++i) y.push_back(1 + i % 5);
  std::mt19937_64 rng(1);
  const auto folds = stratified_kfold(y, 10, rng);
  ASSERT_EQ(folds.size(), 10U);
  std::set<std::size_t> seen;
  for (const auto& f : folds) {
    for (const std::size_t i : f) {
      EXPECT_TRUE(seen.insert(i).second) << "duplicate index " << i;
    }
  }
  EXPECT_EQ(seen.size(), y.size());
}

TEST(StratifiedKFold, EachFoldGetsProportionalClassShares) {
  std::vector<int> y(100, 1);
  std::fill(y.begin() + 60, y.end(), 2);  // 60/40 split
  std::mt19937_64 rng(2);
  const auto folds = stratified_kfold(y, 10, rng);
  for (const auto& f : folds) {
    const auto ones = static_cast<std::size_t>(
        std::count_if(f.begin(), f.end(), [&](std::size_t i) {
          return y[i] == 1;
        }));
    EXPECT_EQ(f.size(), 10U);
    EXPECT_EQ(ones, 6U);
  }
}

TEST(StratifiedKFold, SeedsChangeAssignmentNotShape) {
  std::vector<int> y;
  for (int i = 0; i < 50; ++i) y.push_back(1 + i % 2);
  std::mt19937_64 r1(1);
  std::mt19937_64 r2(2);
  const auto a = stratified_kfold(y, 5, r1);
  const auto b = stratified_kfold(y, 5, r2);
  EXPECT_NE(a, b);
  for (std::size_t f = 0; f < 5; ++f) EXPECT_EQ(a[f].size(), b[f].size());
}

TEST(StratifiedKFold, RejectsSillyFoldCounts) {
  std::vector<int> y = {1, 2};
  std::mt19937_64 rng(1);
  EXPECT_THROW((void)stratified_kfold(y, 1, rng), std::invalid_argument);
}

TEST(Metrics, EnergyWasteIsRelativeToTheMinimum) {
  Sample s;
  s.energy = {100, 120, 90, 180};
  EXPECT_DOUBLE_EQ(energy_waste(s, 3), 0.0);
  EXPECT_NEAR(energy_waste(s, 1), (100.0 - 90) / 90, 1e-12);
  EXPECT_NEAR(energy_waste(s, 4), 1.0, 1e-12);
  EXPECT_TRUE(std::isinf(energy_waste(s, 0)));
  EXPECT_TRUE(std::isinf(energy_waste(s, 5)));
}

TEST(Metrics, WithinToleranceImplementsThePaperRule) {
  // "if the energy wasted running that kernel with six cores instead of 4
  // is lower than t%, the prediction is considered correct".
  Sample s;
  s.energy = {100, 95, 90, 92, 93, 94.5, 96, 99};
  EXPECT_TRUE(within_tolerance(s, 3, 0.0));    // exact optimum
  EXPECT_FALSE(within_tolerance(s, 6, 0.0));
  EXPECT_TRUE(within_tolerance(s, 6, 0.05));   // 94.5/90 - 1 = 5%
  EXPECT_FALSE(within_tolerance(s, 8, 0.05));  // 10% waste
  EXPECT_TRUE(within_tolerance(s, 8, 0.10));
}

TEST(Metrics, ToleranceAccuracyCountsFraction) {
  std::vector<Sample> samples(4);
  for (auto& s : samples) s.energy = {100, 90, 95, 99};
  const std::vector<int> preds = {2, 1, 3, 4};  // opt, 11%, 5.6%, 10%
  EXPECT_DOUBLE_EQ(tolerance_accuracy(samples, preds, 0.0), 0.25);
  EXPECT_DOUBLE_EQ(tolerance_accuracy(samples, preds, 0.06), 0.5);
  EXPECT_DOUBLE_EQ(tolerance_accuracy(samples, preds, 0.12), 1.0);
}

TEST(Metrics, ConfusionMatrixShape) {
  const auto m = confusion_matrix({1, 2, 2, 3}, {1, 2, 3, 3}, 3);
  EXPECT_EQ(m[1][1], 1U);
  EXPECT_EQ(m[2][2], 1U);
  EXPECT_EQ(m[2][3], 1U);
  EXPECT_EQ(m[3][3], 1U);
  EXPECT_EQ(m[1][2], 0U);
}

TEST(Metrics, DefaultTolerancesSpanFigureTwoAxis) {
  const std::vector<double> t = default_tolerances();
  ASSERT_EQ(t.size(), 21U);
  EXPECT_DOUBLE_EQ(t.front(), 0.0);
  EXPECT_DOUBLE_EQ(t.back(), 0.20);
}

TEST(Evaluate, LearnableDatasetScoresHighAtZeroTolerance) {
  const Dataset ds = make_dataset(240, 1);
  EvalOptions opt;
  opt.repeats = 3;
  const EvalResult res =
      evaluate(ds, {"f0", "f1", "noise"}, opt);
  EXPECT_GT(res.accuracy_at(0.0), 0.9);
  // Accuracy is monotone in the tolerance.
  for (std::size_t i = 1; i < res.accuracy.size(); ++i) {
    EXPECT_GE(res.accuracy[i] + 1e-12, res.accuracy[i - 1]);
  }
}

TEST(Evaluate, NoiseFeatureGetsLowImportance) {
  const Dataset ds = make_dataset(300, 2);
  EvalOptions opt;
  opt.repeats = 3;
  const EvalResult res = evaluate(ds, {"f0", "f1", "noise"}, opt);
  ASSERT_EQ(res.importances.size(), 3U);
  EXPECT_GT(res.importances[0], res.importances[2]);
  EXPECT_GT(res.importances[1], res.importances[2]);
}

TEST(Evaluate, UninformativeFeaturesScoreNearBaseRate) {
  const Dataset ds = make_dataset(240, 3);
  EvalOptions opt;
  opt.repeats = 3;
  const EvalResult res = evaluate(ds, {"noise"}, opt);
  EXPECT_LT(res.accuracy_at(0.0), 0.6);
}

TEST(Evaluate, RepeatsReduceNothingButFillStd) {
  const Dataset ds = make_dataset(120, 4);
  EvalOptions opt;
  opt.repeats = 5;
  const EvalResult res = evaluate(ds, {"f0", "f1"}, opt);
  ASSERT_EQ(res.accuracy_std.size(), res.accuracy.size());
  for (const double s : res.accuracy_std) {
    EXPECT_GE(s, 0.0);
    EXPECT_LT(s, 0.5);
  }
}

TEST(Evaluate, ConstantBaselineMatchesClassShareAtZeroTolerance) {
  const Dataset ds = make_dataset(200, 5);
  const EvalResult base = evaluate_constant(ds, 4);
  const auto hist = ds.label_histogram(4);
  const double share =
      static_cast<double>(hist[4]) / static_cast<double>(ds.size());
  EXPECT_NEAR(base.accuracy_at(0.0), share, 1e-12);
  // With tight energy margins a wide tolerance makes the constant choice
  // acceptable for the neighbouring classes too.
  const Dataset tight = make_dataset(200, 5, /*energy_margin=*/0.1);
  const EvalResult base2 = evaluate_constant(tight, 4);
  EXPECT_GT(base2.accuracy.back(), base2.accuracy.front());
}

TEST(Evaluate, ClassifierBeatsConstantBaseline) {
  const Dataset ds = make_dataset(240, 6);
  EvalOptions opt;
  opt.repeats = 3;
  const EvalResult clf = evaluate(ds, {"f0", "f1"}, opt);
  const EvalResult base = evaluate_constant(ds, 4);
  for (std::size_t i = 0; i < clf.accuracy.size(); ++i) {
    EXPECT_GE(clf.accuracy[i] + 1e-9, base.accuracy[i]) << i;
  }
}

TEST(RankFeatures, OrdersByImportance) {
  const Dataset ds = make_dataset(300, 7);
  EvalOptions opt;
  opt.repeats = 2;
  const auto ranked = rank_features(ds, {"f0", "f1", "noise"}, opt);
  ASSERT_EQ(ranked.size(), 3U);
  EXPECT_NE(ranked[0].first, "noise");
  EXPECT_NE(ranked[1].first, "noise");
  EXPECT_EQ(ranked[2].first, "noise");
  EXPECT_GE(ranked[0].second, ranked[1].second);
}

TEST(Evaluate, ThrowsOnEmptyDataset) {
  const Dataset ds({"f0"});
  EXPECT_THROW((void)evaluate(ds, {"f0"}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace pulpc::ml
