// Property-based tests: a seeded random kernel generator exercises the
// whole DSL grammar (nested loops, both schedules, ifs, criticals,
// scalars, multiple buffers, both element types) and checks system-wide
// invariants on every generated program:
//   * lowering produces KIR that passes the verifier,
//   * execution completes at every core count,
//   * integer results are bit-identical across core counts,
//   * cycle/energy accounting is internally consistent,
//   * the emitted trace reconstructs the direct counters exactly.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/artifacts.hpp"
#include "core/pipeline.hpp"
#include "dsl/builder.hpp"
#include "dsl/lower.hpp"
#include "energy/model.hpp"
#include "feat/features.hpp"
#include "kir/costmodel.hpp"
#include "sim/cluster.hpp"
#include "sim/stats.hpp"
#include "trace/listeners.hpp"
#include "trace/sinks.hpp"

namespace pulpc {
namespace {

using dsl::Buf;
using dsl::InitKind;
using dsl::KernelBuilder;
using dsl::Val;
using kir::DType;

Val ic(std::int32_t v) { return dsl::make_const_i(v); }

/// Random kernel generator. Every kernel it emits is deterministic by
/// construction under any core count:
///  * inside a parallel region, iteration i writes only to its own slot
///    (i + c) mod n of the region's destination buffer (injective since
///    the iteration count never exceeds n), and reads only from buffers
///    that the region does not write;
///  * the critical-section counter lives in a dedicated buffer that is
///    only ever updated commutatively;
///  * serial regions with stores are master-guarded by the lowering, so
///    they may touch anything.
class Generator {
 public:
  explicit Generator(std::uint64_t seed) : rng_(seed) {}

  dsl::KernelSpec generate() {
    const DType elem = flip() ? DType::I32 : DType::F32;
    KernelBuilder k("fuzz", "fuzz", elem, 4096);
    const std::uint32_t n = 16U << pick(0, 3);  // 16..128 elements
    bufs_ = {k.buffer("b0", n, InitKind::Random),
             k.buffer("b1", n, InitKind::Ramp),
             k.buffer("b2", n, InitKind::Zero)};
    cnt_ = k.buffer("cnt", 8, InitKind::Zero);
    n_ = n;
    const int regions = pick(1, 3);
    for (int r = 0; r < regions; ++r) emit_region(k, r);
    return k.build();
  }

 private:
  bool flip() { return pick(0, 1) == 1; }
  int pick(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }

  /// Arbitrary in-bounds index for LOADS from read-only buffers.
  Val load_index(Val i, int depth) {
    Val idx = i;
    if (flip()) idx = idx * ic(pick(1, 5)) + ic(pick(0, 7));
    if (depth > 0 && flip()) idx = idx + ic(pick(0, 3));
    return dsl::vabs(idx) % ic(int(n_));
  }

  /// A value computed from the region's read-only source buffers.
  Val value(KernelBuilder& k, Val i, int depth) {
    const Buf& src = srcs_[std::size_t(pick(0, 1))];
    Val v = k.load(src, load_index(i, depth));
    switch (pick(0, 5)) {
      case 0: v = v + k.ec(pick(1, 9)); break;
      case 1: v = v * k.ec(pick(1, 3)); break;
      case 2: v = dsl::vmax(v, k.ec(0)) + k.ec(1); break;
      case 3: v = dsl::vabs(v); break;
      case 4:
        v = v + k.load(srcs_[std::size_t(pick(0, 1))], load_index(i, depth));
        break;
      default: break;
    }
    return v;
  }

  /// Parallel-region body: every store goes to this iteration's private
  /// slot of the destination buffer.
  void emit_body(KernelBuilder& k, Val i, const Buf& dst, Val slot,
                 int depth) {
    const int stmts = pick(1, 3);
    for (int s = 0; s < stmts; ++s) {
      switch (pick(0, 4)) {
        case 0:
        case 1:
          k.store(dst, slot, value(k, i, depth));
          break;
        case 2: {  // scalar chain inside the body
          const std::string name = "t" + std::to_string(depth);
          auto t = k.decl(name, value(k, i, depth));
          k.assign(t, t + k.ec(1));
          k.store(dst, slot, t);
          break;
        }
        case 3:
          if (depth < 2) {  // nested serial accumulation, one store
            const std::string var = "s" + std::to_string(depth) +
                                    std::to_string(pick(0, 9));
            const std::string acc_name =
                "a" + std::to_string(depth) + std::to_string(pick(0, 9));
            auto acc = k.decl(acc_name, k.ec(0));
            k.for_(var, ic(0), ic(pick(2, 5)), [&](Val j) {
              k.assign(acc, acc + value(k, i + j, depth + 1));
            });
            k.store(dst, slot, acc);
            break;
          }
          [[fallthrough]];
        default:
          k.if_else(
              value(k, i, depth) > k.ec(0),
              [&] { k.store(dst, slot, k.ec(pick(0, 9))); },
              [&] { k.store(dst, slot, k.ec(-1)); });
          break;
      }
    }
    if (pick(0, 4) == 0) {  // commutative counter under the lock
      k.critical([&] {
        k.store(cnt_, ic(0), k.load(cnt_, ic(0)) + k.ec(1));
      });
    }
  }

  void emit_region(KernelBuilder& k, int region) {
    const std::string var = "i" + std::to_string(region);
    const int iters = pick(4, int(n_));
    const int kind = pick(0, 2);
    // Destination rotates; the other two buffers are read-only sources.
    const Buf dst = bufs_[std::size_t(region) % 3];
    srcs_ = {bufs_[std::size_t(region + 1) % 3],
             bufs_[std::size_t(region + 2) % 3]};
    const int slot_off = pick(0, int(n_) - 1);
    const auto body = [&](Val i) {
      const Val slot = (i + ic(slot_off)) % ic(int(n_));
      emit_body(k, i, dst, slot, 0);
    };
    switch (kind) {
      case 0:
        k.par_for(var, ic(0), ic(iters), body, pick(1, 2));
        break;
      case 1:
        k.par_for_cyclic(var, ic(0), ic(iters), body, pick(1, 2));
        break;
      default:
        // Serial section: master-guarded by the lowering, so races are
        // impossible and any slot is fine.
        k.for_(var, ic(0), ic(pick(2, 8)), body);
        break;
    }
  }

  std::mt19937_64 rng_;
  std::vector<Buf> bufs_;
  std::vector<Buf> srcs_;
  Buf cnt_;
  std::uint32_t n_ = 0;
};

class FuzzKernels : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzKernels, LowersVerifiesAndRunsEverywhere) {
  Generator gen(GetParam());
  const dsl::KernelSpec spec = gen.generate();
  const kir::Program prog = dsl::lower(spec);
  ASSERT_EQ(kir::verify(prog), "");

  sim::Cluster cl;
  cl.load(prog);
  for (const unsigned cores : {1U, 2U, 5U, 8U}) {
    const sim::RunResult r = cl.run(cores);
    ASSERT_TRUE(r.ok) << "seed " << GetParam() << " cores " << cores << ": "
                      << r.error;
    // Cycle accounting: each active core's charged cycles fit the region.
    for (unsigned c = 0; c < cores; ++c) {
      EXPECT_LE(r.stats.core[c].active_cycles(),
                r.stats.region_cycles() + 1)
          << "seed " << GetParam();
    }
    // Energy is positive and finite.
    const double e = energy::total_energy_fj(r.stats);
    EXPECT_GT(e, 0.0);
    EXPECT_TRUE(std::isfinite(e));
  }
}

TEST_P(FuzzKernels, IntegerResultsAreCoreCountInvariant) {
  Generator gen(GetParam());
  const dsl::KernelSpec spec = gen.generate();
  if (spec.elem != DType::I32) {
    GTEST_SKIP() << "f32 kernels may reassociate";
  }
  const auto dump = [&](unsigned cores) {
    const kir::Program prog = dsl::lower(spec);
    sim::Cluster cl;
    cl.load(prog);
    const sim::RunResult r = cl.run(cores);
    EXPECT_TRUE(r.ok) << r.error;
    std::vector<std::int32_t> words;
    for (const kir::BufferInfo& b : prog.buffers) {
      // Ordered critical-section updates commute only for b2[0] sums; we
      // generated only commutative updates, so full state must match.
      for (std::uint32_t i = 0; i < b.elems; ++i) {
        words.push_back(cl.read_i32(b.base + 4 * i));
      }
    }
    return words;
  };
  EXPECT_EQ(dump(1), dump(7)) << "seed " << GetParam();
}

TEST_P(FuzzKernels, TraceReconstructionMatchesDirectCounters) {
  Generator gen(GetParam());
  const kir::Program prog = dsl::lower(gen.generate());
  sim::Cluster cl;
  cl.load(prog);
  std::ostringstream text;
  trace::TextTraceWriter writer(text);
  const sim::RunResult run = cl.run(4, &writer);
  ASSERT_TRUE(run.ok) << run.error;

  trace::TraceAnalyser analyser;
  trace::PulpListeners listeners;
  listeners.register_on(analyser);
  std::istringstream in(text.str());
  analyser.analyse(in);
  ASSERT_EQ(analyser.malformed_lines(), 0U);
  const sim::RunStats parsed = listeners.to_run_stats();
  for (unsigned c = 0; c < run.stats.total_cores; ++c) {
    EXPECT_EQ(parsed.core[c].instrs, run.stats.core[c].instrs)
        << "seed " << GetParam() << " core " << c;
    EXPECT_EQ(parsed.core[c].cyc_cg, run.stats.core[c].cyc_cg)
        << "seed " << GetParam() << " core " << c;
    EXPECT_EQ(parsed.core[c].idle_cycles, run.stats.core[c].idle_cycles)
        << "seed " << GetParam() << " core " << c;
  }
  EXPECT_EQ(feat::extract_dynamic(parsed).to_vector(),
            feat::extract_dynamic(run.stats).to_vector());
}

TEST_P(FuzzKernels, CostBoundsAreSoundAndMonotone) {
  Generator gen(GetParam());
  const kir::Program prog = dsl::lower(gen.generate());
  const kir::CostReport rep = kir::analyze_cost(prog);
  ASSERT_FALSE(rep.configs.empty());
  long long prev_par = -1;
  for (const kir::ConfigCost& c : rep.configs) {
    // Intervals are never inverted, even when hi degrades to infinity.
    EXPECT_GE(c.cycles.lo, 0) << "seed " << GetParam();
    if (c.bounded) {
      EXPECT_LE(c.cycles.lo, c.cycles.hi) << "seed " << GetParam();
      EXPECT_LE(c.energy_lo_fj, c.energy_hi_fj) << "seed " << GetParam();
    }
    // Core 0's share of parallel iterations never grows with the core
    // count (chunked and cyclic schedules both shrink the first chunk).
    if (prev_par >= 0) {
      EXPECT_LE(c.par_iters0_hi, prev_par)
          << "seed " << GetParam() << " cores " << c.cores;
    }
    prev_par = c.par_iters0_hi;
  }
  // Soundness against the simulator: fuzz kernels use data-dependent
  // branches, so the bounds are wide, but they must always contain the
  // simulated cycles and energy.
  sim::Cluster cl;
  cl.load(prog);
  for (const unsigned cores : {1U, 2U, 5U, 8U}) {
    const kir::ConfigCost* c = rep.config(cores);
    ASSERT_NE(c, nullptr);
    const sim::RunResult r = cl.run(cores);
    ASSERT_TRUE(r.ok) << r.error;
    const auto cyc = static_cast<long long>(r.stats.region_cycles());
    EXPECT_GE(cyc, c->cycles.lo) << "seed " << GetParam() << " @" << cores;
    if (c->bounded) {
      EXPECT_LE(cyc, c->cycles.hi) << "seed " << GetParam() << " @" << cores;
      const double e = energy::total_energy_fj(r.stats);
      EXPECT_GE(e, c->energy_lo_fj) << "seed " << GetParam() << " @" << cores;
      EXPECT_LE(e, c->energy_hi_fj) << "seed " << GetParam() << " @" << cores;
    }
  }
}

TEST_P(FuzzKernels, StaticFeaturesAreFiniteAndStable) {
  Generator gen(GetParam());
  const kir::Program prog = dsl::lower(gen.generate());
  const feat::StaticFeatures a = feat::extract_static(prog);
  const feat::StaticFeatures b = feat::extract_static(prog);
  const std::vector<double> va = a.to_vector();
  const std::vector<double> vb = b.to_vector();
  EXPECT_EQ(va, vb);
  for (const double v : va) {
    EXPECT_TRUE(std::isfinite(v)) << "seed " << GetParam();
  }
  EXPECT_GT(a.op, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzKernels,
                         ::testing::Range<std::uint64_t>(1, 33));

// Segment-store fuzz: random byte flips anywhere in a sealed v2 store
// (segment files and the index alike) must never crash the reader, and
// a load must either fail cleanly or return the exact original counters
// — a flipped bit can cost a replay, never corrupt a label.
TEST(FuzzSegmentStore, ByteFlipsFailCleanlyOrRoundTrip) {
  namespace fs = std::filesystem;
  using core::ArtifactStore;
  using core::SampleConfig;

  const std::string pristine =
      ::testing::TempDir() + "pulpc_segfuzz_pristine";
  fs::remove_all(pristine);
  const std::vector<SampleConfig> cfgs = {{"gemm", kir::DType::I32, 512},
                                          {"fir", kir::DType::F32, 512},
                                          {"fir", kir::DType::I32, 2048}};
  constexpr unsigned kCores = 2;
  core::BuildOptions opt;
  opt.max_cores = kCores;
  opt.threads = 1;
  opt.cache_path = "";
  std::vector<std::pair<std::uint64_t, sim::RunStats>> truth;  // cfg x core
  {
    const ArtifactStore store(pristine, opt.cluster, core::StoreFormat::v2);
    for (const SampleConfig& cfg : cfgs) {
      const kir::Program prog = core::lower_sample(cfg);
      const std::uint64_t h = core::program_hash(prog);
      const std::vector<sim::RunStats> runs =
          core::simulate_sample(prog, cfg, opt);
      for (unsigned c = 1; c <= kCores; ++c) {
        store.save(cfg, c, h, runs[c - 1]);
        truth.emplace_back(h, runs[c - 1]);
      }
    }
    store.flush();
  }

  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    std::mt19937_64 rng(seed);
    const std::string scratch =
        ::testing::TempDir() + "pulpc_segfuzz_scratch";
    fs::remove_all(scratch);
    fs::copy(pristine, scratch, fs::copy_options::recursive);

    std::vector<fs::path> files;
    for (const fs::directory_entry& e : fs::directory_iterator(scratch)) {
      if (e.is_regular_file()) files.push_back(e.path());
    }
    ASSERT_FALSE(files.empty());
    const int flips = 1 + int(rng() % 6);
    for (int f = 0; f < flips; ++f) {
      const fs::path& victim = files[rng() % files.size()];
      const std::uintmax_t size = fs::file_size(victim);
      if (size == 0) continue;
      const std::uintmax_t off = rng() % size;
      std::fstream io(victim, std::ios::in | std::ios::out |
                                  std::ios::binary);
      ASSERT_TRUE(io) << victim;
      io.seekg(static_cast<std::streamoff>(off));
      char c = 0;
      io.read(&c, 1);
      c = static_cast<char>(c ^ char(1 + rng() % 255));
      io.seekp(static_cast<std::streamoff>(off));
      io.write(&c, 1);
    }

    const ArtifactStore store(scratch, opt.cluster, core::StoreFormat::v2);
    std::size_t t = 0;
    for (const SampleConfig& cfg : cfgs) {
      for (unsigned c = 1; c <= kCores; ++c, ++t) {
        sim::RunStats back;
        if (store.load(cfg, c, truth[t].first, &back)) {
          EXPECT_EQ(back, truth[t].second)
              << "seed " << seed << " " << cfg.kernel << " @" << c;
        }
      }
    }
    (void)store.scan();  // census over damaged segments must not crash
    store.for_each([](const ArtifactStore::StoredSample&) {});
  }
}

}  // namespace
}  // namespace pulpc
