// Persistence tests: trained trees and classifiers round-trip through
// their text formats with identical predictions, and malformed inputs
// are rejected.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>

#include "core/classifier.hpp"
#include "core/pipeline.hpp"
#include "dsl/lower.hpp"
#include "kernels/registry.hpp"
#include "ml/tree.hpp"

namespace pulpc {
namespace {

ml::Matrix random_matrix(std::size_t rows, std::size_t cols,
                         unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0, 1);
  ml::Matrix x;
  x.rows = rows;
  x.cols = cols;
  for (std::size_t i = 0; i < rows * cols; ++i) x.data.push_back(u(rng));
  return x;
}

TEST(TreePersistence, RoundTripPredictsIdentically) {
  const ml::Matrix x = random_matrix(200, 5, 3);
  std::vector<int> y;
  for (std::size_t r = 0; r < x.rows; ++r) {
    y.push_back(1 + int(x.at(r, 0) > 0.5) + 2 * int(x.at(r, 3) > 0.3));
  }
  ml::DecisionTree tree;
  tree.fit(x, y);

  std::stringstream ss;
  tree.save(ss);
  const ml::DecisionTree back = ml::DecisionTree::load(ss);
  EXPECT_EQ(back.node_count(), tree.node_count());
  EXPECT_EQ(back.depth(), tree.depth());
  EXPECT_EQ(back.predict(x), tree.predict(x));
  EXPECT_EQ(back.feature_importances(), tree.feature_importances());
}

TEST(TreePersistence, UntrainedTreeCannotBeSaved) {
  const ml::DecisionTree tree;
  std::stringstream ss;
  EXPECT_THROW(tree.save(ss), std::logic_error);
}

TEST(TreePersistence, RejectsCorruptedInput) {
  std::stringstream empty;
  EXPECT_THROW((void)ml::DecisionTree::load(empty), std::runtime_error);
  std::stringstream wrong("other-format v9\n1 1 0\n");
  EXPECT_THROW((void)ml::DecisionTree::load(wrong), std::runtime_error);
  std::stringstream truncated("pulpc-tree v1\n3 2 1\n0 0.5 1 2 0\n");
  EXPECT_THROW((void)ml::DecisionTree::load(truncated),
               std::runtime_error);
  std::stringstream out_of_range(
      "pulpc-tree v1\n1 2 0\n9 0.5 -1 -1 3\n0 0\n");
  EXPECT_THROW((void)ml::DecisionTree::load(out_of_range),
               std::runtime_error);
}

TEST(ClassifierPersistence, RoundTripKeepsPredictions) {
  // Tiny real dataset so train/predict are cheap.
  ml::Dataset ds(core::dataset_columns(8));
  for (const char* name : {"memcpy", "alu_chain", "trisolv", "autocor"}) {
    ds.add(core::build_sample({name, kir::DType::I32, 512}));
  }
  core::EnergyClassifier clf;
  clf.train(ds);

  std::stringstream ss;
  clf.save(ss);
  const core::EnergyClassifier back = core::EnergyClassifier::load(ss);
  EXPECT_EQ(back.columns(), clf.columns());
  for (const char* name : {"memcpy", "stencil5", "div_chain"}) {
    const kir::Program prog =
        dsl::lower(kernels::make_kernel(name, kir::DType::I32, 2048));
    EXPECT_EQ(back.predict(prog), clf.predict(prog)) << name;
  }
}

TEST(ClassifierPersistence, FileRoundTrip) {
  ml::Dataset ds(core::dataset_columns(8));
  for (const char* name : {"memset", "spin_counter"}) {
    ds.add(core::build_sample({name, kir::DType::I32, 512}));
  }
  core::EnergyClassifier::Options opt;
  opt.features = feat::FeatureSet::Agg;
  core::EnergyClassifier clf(opt);
  clf.train(ds);

  const std::string path = ::testing::TempDir() + "pulpc_clf_test.txt";
  clf.save_file(path);
  const core::EnergyClassifier back =
      core::EnergyClassifier::load_file(path);
  EXPECT_EQ(back.columns(), clf.columns());
  std::remove(path.c_str());
  EXPECT_THROW((void)core::EnergyClassifier::load_file(path),
               std::runtime_error);
}

TEST(ClassifierPersistence, UntrainedClassifierCannotBeSaved) {
  const core::EnergyClassifier clf;
  std::stringstream ss;
  EXPECT_THROW(clf.save(ss), std::logic_error);
}

/// Writes `content` to a temp model file, asserts load_file throws a
/// std::runtime_error whose message names the file, the byte offset, and
/// every expected substring.
void expect_load_error(const std::string& content,
                       const std::vector<std::string>& expected) {
  const std::string path = ::testing::TempDir() + "pulpc_clf_corrupt.txt";
  {
    std::ofstream out(path);
    out << content;
  }
  try {
    (void)core::EnergyClassifier::load_file(path);
    FAIL() << "load_file accepted a corrupt model";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
    EXPECT_NE(msg.find("at offset"), std::string::npos) << msg;
    for (const std::string& s : expected) {
      EXPECT_NE(msg.find(s), std::string::npos)
          << "missing '" << s << "' in: " << msg;
    }
  }
  std::remove(path.c_str());
}

TEST(ClassifierPersistence, TruncatedFileNamesPathAndOffset) {
  expect_load_error("", {"empty or unreadable"});
  expect_load_error("pulpc-classifier v1\n", {"bad column count"});
  expect_load_error("pulpc-classifier v1\n3\nF1\nF2\n",
                    {"truncated column list", "2 of 3"});
}

TEST(ClassifierPersistence, WrongVersionIsDiagnosedAsSuch) {
  expect_load_error("pulpc-classifier v9\n1\nF1\n",
                    {"unsupported model version", "v9"});
}

TEST(ClassifierPersistence, GarbageFileIsNotAModel) {
  expect_load_error("PK\x03\x04 definitely a zip\n",
                    {"bad header", "not a pulpclass model"});
}

TEST(ClassifierPersistence, CorruptTreeSectionIsWrapped) {
  expect_load_error("pulpc-classifier v1\n1\nF1\nnot-a-tree v1\n",
                    {"bad tree section"});
  // Header promises 2 features but the (valid) tree only knows 1.
  expect_load_error(
      "pulpc-classifier v1\n2\nF1\nF3\npulpc-tree v1\n1 1 0\n"
      "-1 0 -1 -1 4\n0\n",
      {"tree/column shape mismatch"});
}

TEST(ClassifierPersistence, StreamLoadReportsDefaultSource) {
  std::stringstream ss("junk\n");
  try {
    (void)core::EnergyClassifier::load(ss);
    FAIL() << "load accepted junk";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("<stream>"), std::string::npos)
        << e.what();
  }
}

TEST(ClassifierPersistence, RejectsUnknownColumns) {
  std::stringstream ss(
      "pulpc-classifier v1\n2\nF1\nnot_a_feature\npulpc-tree v1\n1 2 0\n"
      "-1 0 -1 -1 4\n0 0\n");
  EXPECT_THROW((void)core::EnergyClassifier::load(ss),
               std::invalid_argument);
}

}  // namespace
}  // namespace pulpc
