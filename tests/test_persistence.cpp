// Persistence tests: trained trees and classifiers round-trip through
// their text formats with identical predictions, and malformed inputs
// are rejected.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>

#include "core/classifier.hpp"
#include "core/pipeline.hpp"
#include "dsl/lower.hpp"
#include "kernels/registry.hpp"
#include "ml/flat.hpp"
#include "ml/tree.hpp"

namespace pulpc {
namespace {

ml::Matrix random_matrix(std::size_t rows, std::size_t cols,
                         unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0, 1);
  ml::Matrix x;
  x.rows = rows;
  x.cols = cols;
  for (std::size_t i = 0; i < rows * cols; ++i) x.data.push_back(u(rng));
  return x;
}

TEST(TreePersistence, RoundTripPredictsIdentically) {
  const ml::Matrix x = random_matrix(200, 5, 3);
  std::vector<int> y;
  for (std::size_t r = 0; r < x.rows; ++r) {
    y.push_back(1 + int(x.at(r, 0) > 0.5) + 2 * int(x.at(r, 3) > 0.3));
  }
  ml::DecisionTree tree;
  tree.fit(x, y);

  std::stringstream ss;
  tree.save(ss);
  const ml::DecisionTree back = ml::DecisionTree::load(ss);
  EXPECT_EQ(back.node_count(), tree.node_count());
  EXPECT_EQ(back.depth(), tree.depth());
  EXPECT_EQ(back.predict(x), tree.predict(x));
  EXPECT_EQ(back.feature_importances(), tree.feature_importances());
}

TEST(TreePersistence, UntrainedTreeCannotBeSaved) {
  const ml::DecisionTree tree;
  std::stringstream ss;
  EXPECT_THROW(tree.save(ss), std::logic_error);
}

TEST(TreePersistence, RejectsCorruptedInput) {
  std::stringstream empty;
  EXPECT_THROW((void)ml::DecisionTree::load(empty), std::runtime_error);
  std::stringstream wrong("other-format v9\n1 1 0\n");
  EXPECT_THROW((void)ml::DecisionTree::load(wrong), std::runtime_error);
  std::stringstream truncated("pulpc-tree v1\n3 2 1\n0 0.5 1 2 0\n");
  EXPECT_THROW((void)ml::DecisionTree::load(truncated),
               std::runtime_error);
  std::stringstream out_of_range(
      "pulpc-tree v1\n1 2 0\n9 0.5 -1 -1 3\n0 0\n");
  EXPECT_THROW((void)ml::DecisionTree::load(out_of_range),
               std::runtime_error);
}

TEST(ClassifierPersistence, RoundTripKeepsPredictions) {
  // Tiny real dataset so train/predict are cheap.
  ml::Dataset ds(core::dataset_columns(8));
  for (const char* name : {"memcpy", "alu_chain", "trisolv", "autocor"}) {
    ds.add(core::build_sample({name, kir::DType::I32, 512}));
  }
  core::EnergyClassifier clf;
  clf.train(ds);

  std::stringstream ss;
  clf.save(ss);
  const core::EnergyClassifier back = core::EnergyClassifier::load(ss);
  EXPECT_EQ(back.columns(), clf.columns());
  for (const char* name : {"memcpy", "stencil5", "div_chain"}) {
    const kir::Program prog =
        dsl::lower(kernels::make_kernel(name, kir::DType::I32, 2048));
    EXPECT_EQ(back.predict(prog), clf.predict(prog)) << name;
  }
}

TEST(ClassifierPersistence, FileRoundTrip) {
  ml::Dataset ds(core::dataset_columns(8));
  for (const char* name : {"memset", "spin_counter"}) {
    ds.add(core::build_sample({name, kir::DType::I32, 512}));
  }
  core::EnergyClassifier::Options opt;
  opt.features = feat::FeatureSet::Agg;
  core::EnergyClassifier clf(opt);
  clf.train(ds);

  const std::string path = ::testing::TempDir() + "pulpc_clf_test.txt";
  clf.save_file(path);
  const core::EnergyClassifier back =
      core::EnergyClassifier::load_file(path);
  EXPECT_EQ(back.columns(), clf.columns());
  std::remove(path.c_str());
  EXPECT_THROW((void)core::EnergyClassifier::load_file(path),
               std::runtime_error);
}

TEST(ClassifierPersistence, UntrainedClassifierCannotBeSaved) {
  const core::EnergyClassifier clf;
  std::stringstream ss;
  EXPECT_THROW(clf.save(ss), std::logic_error);
}

/// Writes `content` to a temp model file, asserts load_file throws a
/// std::runtime_error whose message names the file, the byte offset, and
/// every expected substring.
void expect_load_error(const std::string& content,
                       const std::vector<std::string>& expected) {
  const std::string path = ::testing::TempDir() + "pulpc_clf_corrupt.txt";
  {
    std::ofstream out(path);
    out << content;
  }
  try {
    (void)core::EnergyClassifier::load_file(path);
    FAIL() << "load_file accepted a corrupt model";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
    EXPECT_NE(msg.find("at offset"), std::string::npos) << msg;
    for (const std::string& s : expected) {
      EXPECT_NE(msg.find(s), std::string::npos)
          << "missing '" << s << "' in: " << msg;
    }
  }
  std::remove(path.c_str());
}

TEST(ClassifierPersistence, TruncatedFileNamesPathAndOffset) {
  expect_load_error("", {"empty or unreadable"});
  expect_load_error("pulpc-classifier v1\n", {"bad column count"});
  expect_load_error("pulpc-classifier v1\n3\nF1\nF2\n",
                    {"truncated column list", "2 of 3"});
}

TEST(ClassifierPersistence, WrongVersionIsDiagnosedAsSuch) {
  expect_load_error("pulpc-classifier v9\n1\nF1\n",
                    {"unsupported model version", "v9"});
}

TEST(ClassifierPersistence, GarbageFileIsNotAModel) {
  expect_load_error("PK\x03\x04 definitely a zip\n",
                    {"bad header", "not a pulpclass model"});
}

TEST(ClassifierPersistence, CorruptTreeSectionIsWrapped) {
  expect_load_error("pulpc-classifier v1\n1\nF1\nnot-a-tree v1\n",
                    {"bad tree section"});
  // Header promises 2 features but the (valid) tree only knows 1.
  expect_load_error(
      "pulpc-classifier v1\n2\nF1\nF3\npulpc-tree v1\n1 1 0\n"
      "-1 0 -1 -1 4\n0\n",
      {"tree/column shape mismatch"});
}

TEST(ClassifierPersistence, StreamLoadReportsDefaultSource) {
  std::stringstream ss("junk\n");
  try {
    (void)core::EnergyClassifier::load(ss);
    FAIL() << "load accepted junk";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("<stream>"), std::string::npos)
        << e.what();
  }
}

/// Text of a real trained v2 model (header + columns + tree + flat
/// sections), the base the corruption tests mutate.
const std::string& trained_model_text() {
  static const std::string* text = [] {
    ml::Dataset ds(core::dataset_columns(8));
    for (const char* name : {"memcpy", "alu_chain"}) {
      ds.add(core::build_sample({name, kir::DType::I32, 512}));
    }
    core::EnergyClassifier clf;
    clf.train(ds);
    std::stringstream ss;
    clf.save(ss);
    return new std::string(ss.str());
  }();
  return *text;
}

TEST(ClassifierPersistence, SavedModelIsV2WithFlatSection) {
  const std::string& text = trained_model_text();
  EXPECT_EQ(text.rfind("pulpc-classifier v2\n", 0), 0u);
  EXPECT_NE(text.find("pulpc-flat v1\n"), std::string::npos);

  std::stringstream ss(text);
  const core::EnergyClassifier back = core::EnergyClassifier::load(ss);
  // The stored flat section was parsed and cross-checked; the loaded
  // classifier's engine equals a fresh flatten of its tree.
  EXPECT_EQ(back.flat(), ml::FlatTree(back.tree()));
}

TEST(ClassifierPersistence, V1ModelWithoutFlatSectionStillLoads) {
  // Back-compat: a v1 file (no flat section) loads and the flat engine
  // is rebuilt from the tree section.
  const std::string& text = trained_model_text();
  const std::size_t flat_at = text.find("pulpc-flat v1\n");
  ASSERT_NE(flat_at, std::string::npos);
  std::string v1 = text.substr(0, flat_at);
  v1.replace(0, std::string("pulpc-classifier v2").size(),
             "pulpc-classifier v1");
  std::stringstream ss(v1);
  const core::EnergyClassifier back = core::EnergyClassifier::load(ss);
  EXPECT_TRUE(back.flat().trained());
  EXPECT_EQ(back.flat(), ml::FlatTree(back.tree()));
}

TEST(ClassifierPersistence, MissingFlatSectionInV2IsDiagnosed) {
  const std::string& text = trained_model_text();
  const std::size_t flat_at = text.find("pulpc-flat v1\n");
  ASSERT_NE(flat_at, std::string::npos);
  // v2 header promises a flat section; chopping it off must fail with
  // the file and offset named, not silently degrade.
  expect_load_error(text.substr(0, flat_at), {"bad flat section"});
}

TEST(ClassifierPersistence, TruncatedFlatSectionIsDiagnosed) {
  // Drop the final node line: the shape line then promises more nodes
  // than the file holds, whatever the tree's size.
  const std::string& text = trained_model_text();
  ASSERT_EQ(text.back(), '\n');
  const std::size_t cut = text.rfind('\n', text.size() - 2);
  ASSERT_NE(cut, std::string::npos);
  expect_load_error(text.substr(0, cut + 1),
                    {"bad flat section", "truncated node list"});
}

TEST(ClassifierPersistence, WrongFlatVersionIsDiagnosed) {
  std::string text = trained_model_text();
  const std::size_t flat_at = text.find("pulpc-flat v1\n");
  ASSERT_NE(flat_at, std::string::npos);
  text.replace(flat_at, std::string("pulpc-flat v1").size(),
               "pulpc-flat v9");
  expect_load_error(text, {"bad flat section", "bad header"});
}

TEST(ClassifierPersistence, FlatShapeMismatchIsDiagnosed) {
  // A structurally valid flat section that does not match the tree
  // section (here: one leaf label edited) must be rejected — the two
  // engines may never disagree inside one model file.
  std::string text = trained_model_text();
  ASSERT_EQ(text.back(), '\n');
  const std::size_t last_space = text.find_last_of(' ');
  ASSERT_NE(last_space, std::string::npos);
  text.replace(last_space + 1, text.size() - last_space - 2, "97");
  expect_load_error(text, {"flat/tree section mismatch"});
}

TEST(ClassifierPersistence, OutOfRangeFlatChildIsDiagnosed) {
  // Corrupt a child index in the first flat node line to point past the
  // node array; FlatTree::load must refuse (range-checked up front, so
  // the branchless walk can skip per-step bounds checks).
  std::string text = trained_model_text();
  const std::size_t flat_at = text.find("pulpc-flat v1\n");
  ASSERT_NE(flat_at, std::string::npos);
  const std::size_t shape_end = text.find('\n', flat_at + 14);
  const std::size_t node_end = text.find('\n', shape_end + 1);
  ASSERT_NE(node_end, std::string::npos);
  std::string node = text.substr(shape_end + 1, node_end - shape_end - 1);
  // Node line: <leaf> <feature> <thr> <left> <right> <label>.
  std::istringstream fields(node);
  int leaf = 0, feature = 0, left = 0, right = 0, label = 0;
  double thr = 0;
  ASSERT_TRUE(fields >> leaf >> feature >> thr >> left >> right >> label);
  std::ostringstream corrupted;
  corrupted << leaf << ' ' << feature << ' ' << thr << ' ' << 999999
            << ' ' << right << ' ' << label;
  text.replace(shape_end + 1, node_end - shape_end - 1, corrupted.str());
  expect_load_error(text, {"bad flat section", "node out of range"});
}

TEST(ClassifierPersistence, RejectsUnknownColumns) {
  std::stringstream ss(
      "pulpc-classifier v1\n2\nF1\nnot_a_feature\npulpc-tree v1\n1 2 0\n"
      "-1 0 -1 -1 4\n0 0\n");
  EXPECT_THROW((void)core::EnergyClassifier::load(ss),
               std::invalid_argument);
}

}  // namespace
}  // namespace pulpc
