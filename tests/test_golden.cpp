// Golden-reference tests: run dataset kernels on the simulated cluster
// and check their numeric output against host-side reference
// implementations operating on the same (simulator-initialised) inputs.
// Input buffers are read back after the run — the kernels only write
// their outputs — so no re-implementation of the initialisation is
// needed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "dsl/lower.hpp"
#include "kernels/registry.hpp"
#include "sim/cluster.hpp"

namespace pulpc {
namespace {

struct KernelRun {
  kir::Program prog;
  sim::Cluster cluster;

  explicit KernelRun(const std::string& name, kir::DType dt = kir::DType::I32,
               std::uint32_t size = 2048, unsigned cores = 4) {
    prog = dsl::lower(kernels::make_kernel(name, dt, size));
    cluster.load(prog);
    const sim::RunResult r = cluster.run(cores);
    EXPECT_TRUE(r.ok) << name << ": " << r.error;
  }

  const kir::BufferInfo& buf(const std::string& name) const {
    for (const kir::BufferInfo& b : prog.buffers) {
      if (b.name == name) return b;
    }
    throw std::runtime_error("no buffer " + name);
  }

  std::vector<std::int32_t> ints(const std::string& name) {
    const kir::BufferInfo& b = buf(name);
    std::vector<std::int32_t> out(b.elems);
    for (std::uint32_t i = 0; i < b.elems; ++i) {
      out[i] = cluster.read_i32(b.base + 4 * i);
    }
    return out;
  }

  std::vector<float> floats(const std::string& name) {
    const kir::BufferInfo& b = buf(name);
    std::vector<float> out(b.elems);
    for (std::uint32_t i = 0; i < b.elems; ++i) {
      out[i] = cluster.read_f32(b.base + 4 * i);
    }
    return out;
  }
};

std::int32_t wrap_mul(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(std::int64_t(a) * std::int64_t(b));
}
std::int32_t wrap_add(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(std::uint32_t(a) + std::uint32_t(b));
}

TEST(Golden, MemcpyCopiesVerbatim) {
  KernelRun r("memcpy");
  EXPECT_EQ(r.ints("dst"), r.ints("src"));
}

TEST(Golden, StreamTriadMatchesReference) {
  KernelRun r("stream_triad");
  const auto a = r.ints("a");
  const auto b = r.ints("b");
  const auto c = r.ints("c");
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], wrap_add(b[i], wrap_mul(3, c[i]))) << i;
  }
}

TEST(Golden, MultMatchesHostMatmul) {
  KernelRun r("mult", kir::DType::I32, 2048);
  const auto a = r.ints("A");
  const auto b = r.ints("B");
  const auto c = r.ints("C");
  const auto n = static_cast<std::size_t>(std::sqrt(double(a.size())));
  ASSERT_EQ(n * n, a.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::size_t k = 0; k < n; ++k) {
        acc = wrap_add(acc, wrap_mul(a[i * n + k], b[k * n + j]));
      }
      ASSERT_EQ(c[i * n + j], acc) << i << "," << j;
    }
  }
}

TEST(Golden, MultF32MatchesHostMatmul) {
  KernelRun r("mult", kir::DType::F32, 2048);
  const auto a = r.floats("A");
  const auto b = r.floats("B");
  const auto c = r.floats("C");
  const auto n = static_cast<std::size_t>(std::sqrt(double(a.size())));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0;
      for (std::size_t k = 0; k < n; ++k) acc += a[i * n + k] * b[k * n + j];
      ASSERT_NEAR(c[i * n + j], acc, 1e-4F) << i << "," << j;
    }
  }
}

TEST(Golden, FirMatchesHostConvolution) {
  KernelRun r("fir", kir::DType::I32, 2048);
  const auto x = r.ints("x");
  const auto c = r.ints("c");
  const auto y = r.ints("y");
  for (std::size_t i = 0; i < y.size(); ++i) {
    std::int32_t acc = 0;
    for (std::size_t t = 0; t < c.size(); ++t) {
      acc = wrap_add(acc, wrap_mul(c[t], x[i + t]));
    }
    ASSERT_EQ(y[i], acc) << i;
  }
}

TEST(Golden, Conv2dMatchesHostConvolution) {
  KernelRun r("conv2d", kir::DType::I32, 2048);
  const auto img = r.ints("img");
  const auto coef = r.ints("coef");
  const auto out = r.ints("out");
  const auto n = static_cast<std::size_t>(std::sqrt(double(img.size())));
  const std::size_t kn = 5;
  for (std::size_t i = 0; i + kn <= n; ++i) {
    for (std::size_t j = 0; j + kn <= n; ++j) {
      std::int32_t acc = 0;
      for (std::size_t u = 0; u < kn; ++u) {
        for (std::size_t v = 0; v < kn; ++v) {
          acc = wrap_add(
              acc, wrap_mul(img[(i + u) * n + (j + v)], coef[u * kn + v]));
        }
      }
      ASSERT_EQ(out[i * n + j], acc) << i << "," << j;
    }
  }
}

TEST(Golden, HistogramMatchesHostCounts) {
  KernelRun r("histogram", kir::DType::I32, 2048, 8);
  const auto img = r.ints("img");
  const auto hist = r.ints("hist");
  std::vector<std::int32_t> ref(hist.size(), 0);
  for (const std::int32_t px : img) {
    ++ref[std::size_t(px & std::int32_t(hist.size() - 1))];
  }
  EXPECT_EQ(hist, ref);
}

TEST(Golden, AutocorMatchesHostLags) {
  KernelRun r("autocor", kir::DType::I32, 2048);
  const auto x = r.ints("x");
  const auto lag = r.ints("r");
  const std::size_t lags = lag.size();
  for (std::size_t k = 0; k < lags; ++k) {
    std::int32_t acc = 0;
    for (std::size_t i = 0; i < x.size() - lags; ++i) {
      acc = wrap_add(acc, wrap_mul(x[i], x[i + k]));
    }
    ASSERT_EQ(lag[k], acc) << k;
  }
}

TEST(Golden, Stencil5MatchesHostStencil) {
  KernelRun r("stencil5", kir::DType::I32, 2048);
  const auto a = r.ints("a");
  const auto b = r.ints("b");
  for (std::size_t i = 2; i + 2 < a.size(); ++i) {
    const std::int32_t expect = wrap_add(
        wrap_add(wrap_add(a[i - 2], a[i - 1]), wrap_mul(2, a[i])),
        wrap_add(a[i + 1], a[i + 2]));
    ASSERT_EQ(b[i], expect) << i;
  }
}

TEST(Golden, ScatterModPermutesInput) {
  KernelRun r("scatter_mod", kir::DType::I32, 2048);
  const auto x = r.ints("x");
  const auto y = r.ints("y");
  const auto n = std::int64_t(x.size());
  for (std::int64_t i = 0; i < n; ++i) {
    const auto j = std::size_t(((i * 7 + 3) % n + n) % n);
    ASSERT_EQ(y[j], x[std::size_t(i)]) << i;
  }
}

TEST(Golden, GatherMatchesIndirection) {
  KernelRun r("gather", kir::DType::I32, 2048);
  const auto x = r.ints("x");
  const auto idx = r.ints("idx");
  const auto y = r.ints("y");
  const auto n = std::int64_t(x.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    const auto j = std::size_t(((idx[i] % n) + n) % n);
    ASSERT_EQ(y[i], wrap_add(x[j], x[i])) << i;
  }
}

TEST(Golden, SpinCounterCountsExactly) {
  const kir::Program prog =
      dsl::lower(kernels::make_kernel("spin_counter", kir::DType::I32, 512));
  sim::Cluster cl;
  cl.load(prog);
  for (const unsigned cores : {1U, 3U, 8U}) {
    const sim::RunResult r = cl.run(cores);
    ASSERT_TRUE(r.ok);
    // The kernel bumps the counter once per parallel iteration.
    const std::int32_t count = cl.read_i32(prog.buffers[0].base);
    const std::int32_t iters =
        std::int32_t(prog.regions.at(0).total_iters);
    EXPECT_EQ(count, iters) << cores;
  }
}

TEST(Golden, EdgeDetectProducesBinaryImage) {
  KernelRun r("edge_detect", kir::DType::I32, 2048);
  const auto out = r.ints("out");
  for (const std::int32_t v : out) {
    EXPECT_TRUE(v == 0 || v == 1);
  }
  // Random input: both classes should occur.
  EXPECT_NE(std::count(out.begin(), out.end(), 1), 0);
  EXPECT_NE(std::count(out.begin(), out.end(), 0), 0);
}

TEST(Golden, SqrtWaveF32ComputesRootSums) {
  KernelRun r("sqrt_wave", kir::DType::F32, 2048);
  const auto x = r.floats("x");
  const auto y = r.floats("y");
  for (std::size_t i = 0; i < y.size(); ++i) {
    const float expect = std::sqrt(x[i] + 1.0F) +
                         std::sqrt(x[i] * 2.0F + 1.0F);
    ASSERT_NEAR(y[i], expect, 1e-4F) << i;
  }
}

}  // namespace
}  // namespace pulpc
