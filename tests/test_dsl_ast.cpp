// Unit tests for the kernel source language: expression construction,
// type rules, and the statement builder.
#include <gtest/gtest.h>

#include <stdexcept>

#include "dsl/ast.hpp"
#include "dsl/builder.hpp"
#include "dsl/validate.hpp"

namespace pulpc::dsl {
namespace {

Val i(std::int32_t v) { return make_const_i(v); }
Val f(float v) { return make_const_f(v); }

// ---- expression typing ------------------------------------------------

TEST(DslExpr, ConstantsCarryTheirTypes) {
  EXPECT_EQ(i(3).e->type, DType::I32);
  EXPECT_EQ(f(1.5F).e->type, DType::F32);
  EXPECT_EQ(i(3).e->ival, 3);
  EXPECT_FLOAT_EQ(f(1.5F).e->fval, 1.5F);
}

TEST(DslExpr, ArithmeticPreservesType) {
  EXPECT_EQ((i(1) + i(2)).e->type, DType::I32);
  EXPECT_EQ((f(1) * f(2)).e->type, DType::F32);
}

TEST(DslExpr, MixedArithmeticPromotesToF32) {
  const Val v = i(1) + f(2.0F);
  EXPECT_EQ(v.e->type, DType::F32);
  // The integer side gets an implicit ToF32 cast.
  EXPECT_EQ(v.e->a->kind, Expr::Kind::Un);
  EXPECT_EQ(v.e->a->uop, UnOp::ToF32);
}

TEST(DslExpr, ComparisonsProduceI32) {
  EXPECT_EQ((i(1) < i(2)).e->type, DType::I32);
  EXPECT_EQ((f(1) < f(2)).e->type, DType::I32);
  EXPECT_EQ((f(1) == f(2)).e->type, DType::I32);
}

TEST(DslExpr, IntegerOnlyOperatorsRejectF32) {
  EXPECT_THROW((void)(f(1) % f(2)), std::invalid_argument);
  EXPECT_THROW((void)(f(1) << i(2)), std::invalid_argument);
  EXPECT_THROW((void)(f(1) & f(2)), std::invalid_argument);
  EXPECT_THROW((void)(f(1) | f(2)), std::invalid_argument);
  EXPECT_THROW((void)(f(1) ^ f(2)), std::invalid_argument);
}

TEST(DslExpr, SqrtRequiresF32) {
  EXPECT_THROW((void)vsqrt(i(4)), std::invalid_argument);
  EXPECT_EQ(vsqrt(f(4)).e->type, DType::F32);
}

TEST(DslExpr, NoOpCastsCollapse) {
  const Val v = to_f32(f(1));
  EXPECT_EQ(v.e->kind, Expr::Kind::ConstF);
  const Val w = to_i32(i(1));
  EXPECT_EQ(w.e->kind, Expr::Kind::ConstI);
}

TEST(DslExpr, CastsChangeType) {
  EXPECT_EQ(to_f32(i(1)).e->type, DType::F32);
  EXPECT_EQ(to_i32(f(1)).e->type, DType::I32);
}

TEST(DslExpr, LoadRequiresI32Index) {
  EXPECT_THROW((void)make_load("b", DType::I32, f(0)), std::invalid_argument);
  const Val v = make_load("b", DType::F32, i(0));
  EXPECT_EQ(v.e->type, DType::F32);
  EXPECT_EQ(v.e->name, "b");
}

TEST(DslExpr, NullOperandsRejected) {
  EXPECT_THROW((void)make_bin(BinOp::Add, Val{}, i(1)),
               std::invalid_argument);
  EXPECT_THROW((void)make_un(UnOp::Neg, Val{}), std::invalid_argument);
  EXPECT_THROW((void)make_load("b", DType::I32, Val{}),
               std::invalid_argument);
}

TEST(DslExpr, CoreIdAndNumCoresAreI32) {
  EXPECT_EQ(make_core_id().e->type, DType::I32);
  EXPECT_EQ(make_num_cores().e->type, DType::I32);
}

TEST(DslExpr, MinMaxAbsNeg) {
  EXPECT_EQ(vmin(i(1), i(2)).e->bop, BinOp::Min);
  EXPECT_EQ(vmax(f(1), f(2)).e->type, DType::F32);
  EXPECT_EQ(vabs(i(-1)).e->uop, UnOp::Abs);
  EXPECT_EQ((-f(1)).e->uop, UnOp::Neg);
}

// ---- builder -----------------------------------------------------------

TEST(DslBuilder, ElemConstFollowsKernelType) {
  KernelBuilder ki("k", "custom", DType::I32, 64);
  EXPECT_EQ(ki.ec(3.7).e->kind, Expr::Kind::ConstI);
  EXPECT_EQ(ki.ec(3.7).e->ival, 3);
  KernelBuilder kf("k", "custom", DType::F32, 64);
  EXPECT_EQ(kf.ec(3.7).e->kind, Expr::Kind::ConstF);
}

TEST(DslBuilder, BufferDefaultsToKernelElemType) {
  KernelBuilder k("k", "custom", DType::F32, 64);
  const Buf b = k.buffer("b", 16);
  EXPECT_EQ(b.elem, DType::F32);
  EXPECT_EQ(b.elems, 16U);
  const Buf idx = k.buffer_of("idx", DType::I32, 8);
  EXPECT_EQ(idx.elem, DType::I32);
}

TEST(DslBuilder, RejectsEmptyAndDuplicateBuffers) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  EXPECT_THROW((void)k.buffer("b", 0), std::invalid_argument);
  (void)k.buffer("b", 8);
  EXPECT_THROW((void)k.buffer("b", 8), std::invalid_argument);
}

TEST(DslBuilder, StoreConvertsValueToBufferType) {
  KernelBuilder k("k", "custom", DType::F32, 64);
  const Buf b = k.buffer("b", 8);
  k.store(b, i(0), i(3));  // i32 value into f32 buffer
  const KernelSpec spec = k.build();
  ASSERT_EQ(spec.body.size(), 1U);
  EXPECT_EQ(spec.body[0]->value->type, DType::F32);
}

TEST(DslBuilder, DeclReturnsTypedVar) {
  KernelBuilder k("k", "custom", DType::F32, 64);
  const Val v = k.decl("x", f(1));
  EXPECT_EQ(v.e->kind, Expr::Kind::Var);
  EXPECT_EQ(v.e->type, DType::F32);
  EXPECT_EQ(v.e->name, "x");
}

TEST(DslBuilder, AssignRequiresVarTarget) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  EXPECT_THROW(k.assign(i(1), i(2)), std::invalid_argument);
}

TEST(DslBuilder, ForBuildsNestedBody) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 8);
  k.for_("i", i(0), i(8), [&](Val iv) { k.store(b, iv, iv); });
  const KernelSpec spec = k.build();
  ASSERT_EQ(spec.body.size(), 1U);
  const Stmt& s = *spec.body[0];
  EXPECT_EQ(s.kind, Stmt::Kind::For);
  EXPECT_FALSE(s.parallel);
  EXPECT_EQ(s.loop_var, "i");
  ASSERT_EQ(s.body.size(), 1U);
  EXPECT_EQ(s.body[0]->kind, Stmt::Kind::Store);
}

TEST(DslBuilder, ParForSetsParallelFlag) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 8);
  k.par_for("i", i(0), i(8), [&](Val iv) { k.store(b, iv, iv); });
  const KernelSpec spec = k.build();
  EXPECT_TRUE(spec.body[0]->parallel);
}

TEST(DslBuilder, ForRejectsNonPositiveStep) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  EXPECT_THROW(k.for_("i", i(0), i(8), [](Val) {}, 0),
               std::invalid_argument);
  EXPECT_THROW(k.for_("i", i(0), i(8), [](Val) {}, -1),
               std::invalid_argument);
}

TEST(DslBuilder, IfElseBuildsBothBranches) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 8);
  k.if_else(
      i(1) < i(2), [&] { k.store(b, i(0), i(1)); },
      [&] { k.store(b, i(0), i(2)); });
  const KernelSpec spec = k.build();
  const Stmt& s = *spec.body[0];
  EXPECT_EQ(s.kind, Stmt::Kind::If);
  EXPECT_EQ(s.body.size(), 1U);
  EXPECT_EQ(s.else_body.size(), 1U);
}

TEST(DslBuilder, CriticalAndBarrier) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 8);
  k.critical([&] { k.store(b, i(0), i(1)); });
  k.barrier();
  const KernelSpec spec = k.build();
  ASSERT_EQ(spec.body.size(), 2U);
  EXPECT_EQ(spec.body[0]->kind, Stmt::Kind::Critical);
  EXPECT_EQ(spec.body[1]->kind, Stmt::Kind::Barrier);
}

TEST(DslBuilder, DmaCopyValidatesWordCount) {
  KernelBuilder k("k", "custom", DType::I32, 256);
  const Buf a = k.buffer("a", 8);
  const Buf b = k.buffer("b", 16);
  EXPECT_THROW(k.dma_copy(a, b, 0), std::invalid_argument);
  EXPECT_THROW(k.dma_copy(a, b, 9), std::invalid_argument);  // > dst
  k.dma_copy(a, b, 8);
  k.dma_wait();
  const KernelSpec spec = k.build();
  ASSERT_EQ(spec.body.size(), 2U);
  EXPECT_EQ(spec.body[0]->kind, Stmt::Kind::DmaCopy);
  EXPECT_EQ(spec.body[0]->dma_words, 8U);
  EXPECT_EQ(spec.body[1]->kind, Stmt::Kind::DmaWait);
}

TEST(DslBuilder, BuildCannotBeReused) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  (void)k.build();
  EXPECT_THROW(k.barrier(), std::logic_error);
}

// ---- semantic validation -------------------------------------------------

TEST(DslValidate, AcceptsStraightforwardParallelKernel) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 16);
  k.par_for("i", i(0), i(16), [&](Val iv) { k.store(b, iv, iv); });
  EXPECT_EQ(validate_spec(k.build()), "");
}

TEST(DslValidate, AcceptsReplicatedScalarFeedingParallelLoop) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 16);
  const Val n = k.decl("n", i(16));
  k.par_for("i", i(0), n, [&](Val iv) { k.store(b, iv, iv); });
  EXPECT_EQ(validate_spec(k.build()), "");
}

TEST(DslValidate, RejectsMasterOnlyScalarReadInParallelRegion) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 16);
  // The serial loop contains a store, so it is master-guarded; `acc` is
  // then only valid on core 0 but read inside the parallel loop.
  auto acc = k.decl("acc", i(0));
  k.for_("j", i(0), i(4), [&](Val jv) {
    k.assign(acc, acc + jv);
    k.store(b, jv, acc);
  });
  k.par_for("i", i(0), i(16), [&](Val iv) { k.store(b, iv, acc); });
  EXPECT_NE(validate_spec(k.build()), "");
}

TEST(DslValidate, RejectsDivergentScalarReadAfterParallelRegion) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 16);
  auto acc = k.decl("acc", i(0));
  k.par_for("i", i(0), i(16), [&](Val iv) { k.assign(acc, acc + iv); });
  // Each core now holds a different `acc`.
  k.par_for("i2", i(0), i(16), [&](Val iv) { k.store(b, iv, acc); });
  EXPECT_NE(validate_spec(k.build()), "");
}

TEST(DslValidate, ReDeclarationClearsDivergence) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 16);
  auto acc = k.decl("acc", i(0));
  k.par_for("i", i(0), i(16), [&](Val iv) { k.assign(acc, acc + iv); });
  k.assign(acc, i(7));  // replicated re-initialisation
  k.par_for("i2", i(0), i(16), [&](Val iv) { k.store(b, iv, acc); });
  EXPECT_EQ(validate_spec(k.build()), "");
}

TEST(DslValidate, RejectsNestedParallelism) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 16);
  k.par_for("i", i(0), i(4), [&](Val) {
    k.par_for("j", i(0), i(4), [&](Val jv) { k.store(b, jv, jv); });
  });
  EXPECT_NE(validate_spec(k.build()), "");
}

TEST(DslValidate, ScalarInsideParallelBodyIsFine) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 16);
  k.par_for("i", i(0), i(16), [&](Val iv) {
    auto t = k.decl("t", iv * i(2));
    k.store(b, iv, t);
  });
  EXPECT_EQ(validate_spec(k.build()), "");
}

}  // namespace
}  // namespace pulpc::dsl
