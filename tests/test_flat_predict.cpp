// Differential harness for the flat inference engine: ml::FlatTree /
// ml::FlatForest must be bit-identical to the node-chasing training
// structures for every input — the whole kernel registry, randomized
// trees/matrices, threshold-exact values, NaN/inf — at every batch
// size. The quantized variants are NOT exact; for them the harness
// measures divergence and asserts the structural bound instead (a
// diverging row always contains a flipped comparison, and a
// non-saturated flip always lands within one grid step of the
// threshold).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <sstream>
#include <vector>

#include "core/classifier.hpp"
#include "core/pipeline.hpp"
#include "ml/flat.hpp"
#include "ml/forest.hpp"
#include "ml/mlp.hpp"
#include "ml/tree.hpp"

namespace pulpc {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Batch sizes the issue pins: single row, odd remainder, the engine's
/// internal block multiple, and the whole matrix at once.
const std::size_t kBatchSizes[] = {1, 7, 64, std::size_t(-1)};

std::span<const double> row_of(const ml::Matrix& x, std::size_t r) {
  return {x.row(r), x.cols};
}

/// Sub-matrix rows [start, start+n).
ml::Matrix slice(const ml::Matrix& x, std::size_t start, std::size_t n) {
  ml::Matrix out;
  out.rows = n;
  out.cols = x.cols;
  out.data.assign(x.data.begin() + long(start * x.cols),
                  x.data.begin() + long((start + n) * x.cols));
  return out;
}

/// Assert predictor(batch) == per_row(row) for every row of x, with the
/// matrix chopped into each of kBatchSizes.
template <typename BatchFn, typename RowFn>
void expect_batches_match(const ml::Matrix& x, BatchFn&& batch_predict,
                          RowFn&& row_predict, const char* what) {
  for (const std::size_t bs : kBatchSizes) {
    const std::size_t step = bs == std::size_t(-1) ? x.rows : bs;
    for (std::size_t start = 0; start < x.rows; start += step) {
      const std::size_t n = std::min(step, x.rows - start);
      const ml::Matrix part = slice(x, start, n);
      const std::vector<int> got = batch_predict(part);
      ASSERT_EQ(got.size(), n) << what;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], row_predict(row_of(x, start + i)))
            << what << ": row " << (start + i) << " at batch size "
            << step;
      }
    }
  }
}

ml::Matrix random_matrix(std::size_t rows, std::size_t cols,
                         unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-2, 2);
  ml::Matrix x;
  x.rows = rows;
  x.cols = cols;
  x.data.reserve(rows * cols);
  for (std::size_t i = 0; i < rows * cols; ++i) x.data.push_back(u(rng));
  return x;
}

std::vector<int> synthetic_labels(const ml::Matrix& x) {
  std::vector<int> y;
  y.reserve(x.rows);
  for (std::size_t r = 0; r < x.rows; ++r) {
    y.push_back(1 + int(x.at(r, 0) > 0.25) + 2 * int(x.at(r, 1) < -0.5) +
                4 * int(x.at(r, 2) > x.at(r, 3)));
  }
  return y;
}

/// One tiny trained classifier shared by every registry test (training
/// simulates 4 kernels x 8 core counts; do it once).
const core::EnergyClassifier& test_classifier() {
  static const core::EnergyClassifier* clf = [] {
    ml::Dataset ds(core::dataset_columns(8));
    for (const char* name : {"memcpy", "alu_chain", "trisolv", "autocor"}) {
      ds.add(core::build_sample({name, kir::DType::I32, 512}));
    }
    auto* c = new core::EnergyClassifier();
    c->train(ds);
    return c;
  }();
  return *clf;
}

/// Feature rows of EVERY configuration in the paper's dataset (59
/// kernels x types x sizes = 448 rows). Static features only, so this
/// needs lowering + extraction, not simulation — cheap enough to sweep
/// the full registry in a unit test.
const ml::Matrix& registry_matrix() {
  static const ml::Matrix* m = [] {
    const core::EnergyClassifier& clf = test_classifier();
    auto* x = new ml::Matrix;
    x->cols = clf.columns().size();
    for (const core::SampleConfig& cfg : core::dataset_configs()) {
      const std::vector<double> row =
          clf.feature_row(core::lower_sample(cfg));
      x->data.insert(x->data.end(), row.begin(), row.end());
      ++x->rows;
    }
    return x;
  }();
  return *m;
}

TEST(FlatPredict, RegistryDifferentialEveryConfigEveryBatchSize) {
  const core::EnergyClassifier& clf = test_classifier();
  const ml::Matrix& x = registry_matrix();
  ASSERT_EQ(x.rows, core::dataset_configs().size());

  const ml::FlatTree flat(clf.tree());
  EXPECT_TRUE(flat.trained());
  EXPECT_EQ(flat.feature_count(), clf.columns().size());

  // Per-row: flat walk == node-chasing walk for all 448 configurations.
  for (std::size_t r = 0; r < x.rows; ++r) {
    ASSERT_EQ(flat.predict(row_of(x, r)), clf.tree().predict(row_of(x, r)))
        << "config " << r;
  }
  // Batched, at every pinned batch size.
  expect_batches_match(
      x, [&](const ml::Matrix& m) { return flat.predict_batch(m); },
      [&](std::span<const double> row) { return clf.tree().predict(row); },
      "registry flat tree");
}

TEST(FlatPredict, ClassifierRowsMatchOnBothEngines) {
  const ml::Matrix& x = registry_matrix();
  core::EnergyClassifier clf = test_classifier();  // copy: knob flipping

  clf.set_use_flat(true);
  const std::vector<int> flat_rows = clf.predict_rows(x);
  clf.set_use_flat(false);
  const std::vector<int> tree_rows = clf.predict_rows(x);
  EXPECT_EQ(flat_rows, tree_rows);

  clf.set_use_flat(true);
  for (std::size_t r = 0; r < x.rows; ++r) {
    ASSERT_EQ(flat_rows[r], clf.predict_row(row_of(x, r))) << r;
  }
}

TEST(FlatPredict, RandomizedTreesIncludingThresholdExactValues) {
  for (unsigned seed = 1; seed <= 8; ++seed) {
    const ml::Matrix train = random_matrix(160, 6, seed);
    const std::vector<int> y = synthetic_labels(train);
    ml::TreeParams tp;
    tp.max_depth = 3 + int(seed % 5);
    ml::DecisionTree tree(tp);
    tree.fit(train, y);
    const ml::FlatTree flat(tree);
    EXPECT_EQ(flat.depth(), tree.depth());

    // Queries: fresh random rows PLUS rows built from the tree's own
    // split thresholds, so the v <= threshold boundary itself is hit
    // (the case where `v > thr` vs `!(v <= thr)` disagreement or an
    // off-by-one child index would show up).
    ml::Matrix query = random_matrix(96, 6, seed + 100);
    std::mt19937 rng(seed + 200);
    std::uniform_int_distribution<std::size_t> pick_col(0, 5);
    for (const double thr : flat.thresholds()) {
      if (!std::isfinite(thr)) continue;
      std::vector<double> row(6, 0.0);
      for (double& v : row) {
        v = std::uniform_real_distribution<double>(-2, 2)(rng);
      }
      row[pick_col(rng)] = thr;  // exactly on a decision boundary
      query.data.insert(query.data.end(), row.begin(), row.end());
      ++query.rows;
    }
    expect_batches_match(
        query, [&](const ml::Matrix& m) { return flat.predict_batch(m); },
        [&](std::span<const double> row) { return tree.predict(row); },
        "randomized tree");
    // The batch path of the training-side tree is the same walk.
    EXPECT_EQ(tree.predict_batch(query), flat.predict_batch(query));
    EXPECT_EQ(tree.predict(query), tree.predict_batch(query));
  }
}

TEST(FlatPredict, NonFiniteFeatureValuesAgree) {
  const ml::Matrix train = random_matrix(120, 4, 7);
  ml::DecisionTree tree;
  tree.fit(train, synthetic_labels(train));
  const ml::FlatTree flat(tree);

  ml::Matrix query;
  query.cols = 4;
  const double specials[] = {kNan, kInf, -kInf, 0.0, -0.0, 1e308, -1e308};
  for (const double a : specials) {
    for (const double b : specials) {
      query.data.insert(query.data.end(), {a, b, a, b});
      ++query.rows;
    }
  }
  expect_batches_match(
      query, [&](const ml::Matrix& m) { return flat.predict_batch(m); },
      [&](std::span<const double> row) { return tree.predict(row); },
      "non-finite inputs");
}

TEST(FlatPredict, ForestMatchesPerRowVoting) {
  const ml::Matrix train = random_matrix(200, 6, 11);
  ml::ForestParams fp;
  fp.n_trees = 17;  // odd but ties still possible with >2 classes
  ml::RandomForest forest(fp);
  forest.fit(train, synthetic_labels(train));
  const ml::FlatForest flat(forest);
  EXPECT_EQ(flat.tree_count(), forest.trees().size());

  const ml::Matrix query = random_matrix(300, 6, 12);
  expect_batches_match(
      query, [&](const ml::Matrix& m) { return flat.predict_batch(m); },
      [&](std::span<const double> row) { return forest.predict(row); },
      "flat forest");
  // Training-side batch voting must agree with its own per-row voting
  // (identical tie-breaking), and with the flat ensemble.
  const std::vector<int> batch = forest.predict_batch(query);
  for (std::size_t r = 0; r < query.rows; ++r) {
    ASSERT_EQ(batch[r], forest.predict(row_of(query, r))) << r;
    ASSERT_EQ(batch[r], flat.predict(row_of(query, r))) << r;
  }
}

TEST(FlatPredict, MlpBatchMatchesPerRow) {
  const ml::Matrix train = random_matrix(150, 5, 21);
  ml::MlpParams mp;
  mp.epochs = 40;
  ml::MlpClassifier mlp(mp);
  mlp.fit(train, synthetic_labels(train));

  const ml::Matrix query = random_matrix(128, 5, 22);
  const std::vector<int> batch = mlp.predict_batch(query);
  ASSERT_EQ(batch.size(), query.rows);
  for (std::size_t r = 0; r < query.rows; ++r) {
    ASSERT_EQ(batch[r], mlp.predict(row_of(query, r))) << r;
  }
  EXPECT_EQ(mlp.predict(query), batch);
}

TEST(FlatPredict, UntrainedAndShapeErrors) {
  EXPECT_THROW(ml::FlatTree{ml::DecisionTree{}}, std::invalid_argument);
  const ml::FlatTree flat;
  EXPECT_FALSE(flat.trained());
  std::stringstream ss;
  EXPECT_THROW(flat.save(ss), std::logic_error);

  const core::EnergyClassifier& clf = test_classifier();
  ml::Matrix wrong = random_matrix(3, 2, 1);
  EXPECT_THROW((void)clf.predict_rows(wrong), std::invalid_argument);
}

TEST(FlatPredict, FlatTreeSaveLoadRoundTripsExactly) {
  const core::EnergyClassifier& clf = test_classifier();
  const ml::FlatTree flat(clf.tree());
  std::stringstream ss;
  flat.save(ss);
  const ml::FlatTree back = ml::FlatTree::load(ss);
  // Defaulted operator== : every array, threshold bit pattern included
  // (thresholds round-trip via max_digits10 precision).
  EXPECT_EQ(back, flat);
}

// ---- quantized engine ---------------------------------------------------

TEST(FlatQuant, TreeDivergenceIsMeasuredAndBounded) {
  const core::EnergyClassifier& clf = test_classifier();
  const ml::Matrix& x = registry_matrix();
  const ml::FlatTree flat(clf.tree());
  const ml::FlatTreeQuant quant(flat, &x);  // calibrated on the registry

  const ml::QuantDivergence d = quant.measure(flat, x);
  EXPECT_EQ(d.rows, x.rows);
  // The bound: a diverging row MUST contain a flipped comparison on its
  // exact decision path — divergence is witnessed, never mysterious.
  EXPECT_LE(d.diverged, d.flipped);
  // And a non-saturated flip only happens within one grid step of the
  // threshold (monotone quantization), so the worst observed gap is
  // bounded by the coarsest step actually hit.
  EXPECT_LE(d.max_flip_gap, d.max_step * (1 + 1e-12));
  // Calibrated on in-distribution data, most rows must survive intact.
  EXPECT_LE(d.diverged * 10, d.rows)
      << "quantization diverged on >10% of the registry";
}

TEST(FlatQuant, QuantBatchMatchesQuantPerRow) {
  const ml::Matrix train = random_matrix(200, 6, 31);
  ml::DecisionTree tree;
  tree.fit(train, synthetic_labels(train));
  const ml::FlatTree flat(tree);
  const ml::FlatTreeQuant quant(flat, &train);

  const ml::Matrix query = random_matrix(257, 6, 32);
  expect_batches_match(
      query, [&](const ml::Matrix& m) { return quant.predict_batch(m); },
      [&](std::span<const double> row) { return quant.predict(row); },
      "quantized tree batch-vs-row");
}

TEST(FlatQuant, ForestDivergenceIsMeasuredAndBounded) {
  const ml::Matrix train = random_matrix(220, 6, 41);
  ml::ForestParams fp;
  fp.n_trees = 9;
  ml::RandomForest forest(fp);
  forest.fit(train, synthetic_labels(train));
  const ml::FlatForest flat(forest);
  const ml::FlatForestQuant quant(flat, &train);

  const ml::Matrix query = random_matrix(400, 6, 42);
  const ml::QuantDivergence d = quant.measure(flat, query);
  EXPECT_EQ(d.rows, query.rows);
  EXPECT_LE(d.diverged, d.flipped);
  EXPECT_LE(d.max_flip_gap, d.max_step * (1 + 1e-12));

  // Batch == per-row for the quantized ensemble too.
  const std::vector<int> batch = quant.predict_batch(query);
  for (std::size_t r = 0; r < query.rows; ++r) {
    ASSERT_EQ(batch[r], quant.predict(row_of(query, r))) << r;
  }
}

}  // namespace
}  // namespace pulpc
