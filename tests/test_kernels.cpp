// Dataset-kernel tests: the full registry matches the paper's §IV-B
// inventory (59 kernels, three suites, 448 samples), every kernel lowers
// to verified KIR and runs to completion, and kernel results are
// core-count invariant.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "dsl/lower.hpp"
#include "kernels/registry.hpp"
#include "sim/cluster.hpp"

namespace pulpc::kernels {
namespace {

TEST(KernelRegistry, HasFiftyNineKernelsInThreeSuites) {
  const auto& all = all_kernels();
  EXPECT_EQ(all.size(), 59U);
  std::size_t poly = 0;
  std::size_t utdsp = 0;
  std::size_t custom = 0;
  for (const KernelInfo& k : all) {
    if (k.suite == "polybench") ++poly;
    if (k.suite == "utdsp") ++utdsp;
    if (k.suite == "custom") ++custom;
  }
  EXPECT_EQ(poly, 26U);
  EXPECT_EQ(utdsp, 14U);
  EXPECT_EQ(custom, 19U);
}

TEST(KernelRegistry, NamesAreUnique) {
  std::set<std::string> names;
  for (const KernelInfo& k : all_kernels()) {
    EXPECT_TRUE(names.insert(k.name).second) << k.name;
  }
}

TEST(KernelRegistry, TypeCombinationsGiveFourHundredFortyEightSamples) {
  std::size_t combos = 0;
  for (const KernelInfo& k : all_kernels()) {
    combos += k.supports(kir::DType::I32) ? 1 : 0;
    combos += k.supports(kir::DType::F32) ? 1 : 0;
  }
  EXPECT_EQ(combos, 112U);  // x 4 sizes = 448 samples, as in the paper
  EXPECT_EQ(combos * dataset_sizes().size(), 448U);
}

TEST(KernelRegistry, DatasetSizesMatchThePaper) {
  EXPECT_EQ(dataset_sizes(),
            (std::vector<std::uint32_t>{512, 2048, 8192, 32768}));
}

TEST(KernelRegistry, LookupByName) {
  EXPECT_EQ(kernel_info("gemm").suite, "polybench");
  EXPECT_EQ(kernel_info("fir").suite, "utdsp");
  EXPECT_EQ(kernel_info("stride_conflict").suite, "custom");
  EXPECT_THROW((void)kernel_info("nope"), std::invalid_argument);
}

TEST(KernelRegistry, SingleTypeKernelsRejectTheOtherType) {
  EXPECT_THROW((void)make_kernel("histogram", kir::DType::F32, 512),
               std::invalid_argument);
  EXPECT_THROW((void)make_kernel("cholesky", kir::DType::I32, 512),
               std::invalid_argument);
  EXPECT_NO_THROW((void)make_kernel("histogram", kir::DType::I32, 512));
  EXPECT_NO_THROW((void)make_kernel("cholesky", kir::DType::F32, 512));
}

// ---- every kernel lowers, verifies and runs --------------------------------

using KernelParam = std::tuple<std::string, const char*>;  // name, dtype

std::vector<KernelParam> all_params() {
  std::vector<KernelParam> out;
  for (const KernelInfo& k : all_kernels()) {
    if (k.supports(kir::DType::I32)) out.emplace_back(k.name, "i32");
    if (k.supports(kir::DType::F32)) out.emplace_back(k.name, "f32");
  }
  return out;
}

kir::DType dtype_of(const char* s) {
  return std::string(s) == "f32" ? kir::DType::F32 : kir::DType::I32;
}

class EveryKernel : public ::testing::TestWithParam<KernelParam> {};

TEST_P(EveryKernel, LowersToVerifiedKirAtAllSizes) {
  const auto& [name, dt] = GetParam();
  for (const std::uint32_t size : dataset_sizes()) {
    const kir::Program p = dsl::lower(make_kernel(name, dtype_of(dt), size));
    EXPECT_EQ(kir::verify(p), "") << name << " @" << size;
    EXPECT_FALSE(p.buffers.empty()) << name;
  }
}

TEST_P(EveryKernel, RunsToCompletionOnOneAndThreeCores) {
  const auto& [name, dt] = GetParam();
  const kir::Program p = dsl::lower(make_kernel(name, dtype_of(dt), 512));
  sim::Cluster cl;
  cl.load(p);
  for (const unsigned cores : {1U, 3U}) {
    const sim::RunResult r = cl.run(cores);
    EXPECT_TRUE(r.ok) << name << " c" << cores << ": " << r.error;
    EXPECT_GT(r.stats.region_cycles(), 0U) << name;
    EXPECT_GT(r.stats.total_instrs(), 0U) << name;
  }
}

TEST_P(EveryKernel, ResultsAreCoreCountInvariant) {
  const auto& [name, dt] = GetParam();
  const kir::DType dtype = dtype_of(dt);
  const auto dump = [&](unsigned cores) {
    const kir::Program p = dsl::lower(make_kernel(name, dtype, 512));
    sim::Cluster cl;
    cl.load(p);
    const sim::RunResult r = cl.run(cores);
    EXPECT_TRUE(r.ok) << r.error;
    std::vector<double> words;
    for (const kir::BufferInfo& b : p.buffers) {
      for (std::uint32_t i = 0; i < b.elems; ++i) {
        if (b.elem == kir::DType::F32) {
          words.push_back(cl.read_f32(b.base + 4 * i));
        } else {
          words.push_back(cl.read_i32(b.base + 4 * i));
        }
      }
    }
    return words;
  };
  const std::vector<double> ref = dump(1);
  const std::vector<double> par = dump(5);
  ASSERT_EQ(ref.size(), par.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (dtype == kir::DType::F32) {
      // Garbage-in numerics (random inputs through div/sqrt recurrences)
      // may overflow identically at every core count: only require that
      // non-finiteness agrees.
      if (!std::isfinite(ref[i]) || !std::isfinite(par[i])) {
        EXPECT_EQ(std::isfinite(ref[i]), std::isfinite(par[i]))
            << name << " word " << i;
        continue;
      }
      // Reductions may reassociate across chunks.
      const double tol = 1e-3 * std::max(1.0, std::abs(ref[i]));
      EXPECT_NEAR(par[i], ref[i], tol) << name << " word " << i;
    } else {
      EXPECT_EQ(par[i], ref[i]) << name << " word " << i;
    }
  }
}

TEST_P(EveryKernel, StaticMetadataIsMeaningful) {
  const auto& [name, dt] = GetParam();
  const kir::Program p = dsl::lower(make_kernel(name, dtype_of(dt), 2048));
  // Every kernel moves a meaningful amount of data...
  std::uint32_t bytes = 0;
  for (const kir::BufferInfo& b : p.buffers) bytes += b.bytes();
  EXPECT_GT(bytes, 0U);
  // ...and parallel kernels carry region metadata.
  for (const kir::ParallelRegionMeta& r : p.regions) {
    EXPECT_GT(r.end, r.begin) << name;
  }
}

std::string param_name(
    const ::testing::TestParamInfo<KernelParam>& info) {
  std::string n = std::get<0>(info.param);
  std::replace(n.begin(), n.end(), '-', '_');
  return n + "_" + std::get<1>(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, EveryKernel,
                         ::testing::ValuesIn(all_params()), param_name);

// ---- targeted behavioural checks -------------------------------------------

TEST(KernelBehaviour, StrideConflictKernelGeneratesConflicts) {
  const kir::Program p =
      dsl::lower(make_kernel("stride_conflict", kir::DType::I32, 8192));
  sim::Cluster cl;
  cl.load(p);
  const sim::RunResult r8 = cl.run(8);
  ASSERT_TRUE(r8.ok);
  EXPECT_GT(r8.stats.l1_conflicts(), 100U);
  const sim::RunResult r1 = cl.run(1);
  ASSERT_TRUE(r1.ok);
  EXPECT_EQ(r1.stats.l1_conflicts(), 0U);
}

TEST(KernelBehaviour, L2StreamActuallyTouchesL2) {
  const kir::Program p =
      dsl::lower(make_kernel("l2_stream", kir::DType::I32, 2048));
  sim::Cluster cl;
  cl.load(p);
  const sim::RunResult r = cl.run(4);
  ASSERT_TRUE(r.ok);
  std::uint64_t l2_ops = 0;
  for (const sim::CoreStats& c : r.stats.core) l2_ops += c.n_l2;
  EXPECT_GT(l2_ops, 100U);
}

TEST(KernelBehaviour, DmaPingpongUsesTheDmaEngine) {
  const kir::Program p =
      dsl::lower(make_kernel("dma_pingpong", kir::DType::F32, 2048));
  sim::Cluster cl;
  cl.load(p);
  const sim::RunResult r = cl.run(2);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.stats.dma.beats, 0U);
}

TEST(KernelBehaviour, SerialKernelsDoNotSpeedUpWithCores) {
  for (const char* name : {"trisolv", "seidel2d", "iir"}) {
    const kir::Program p =
        dsl::lower(make_kernel(name, kir::DType::I32, 2048));
    sim::Cluster cl;
    cl.load(p);
    const auto c1 = cl.run(1);
    const auto c8 = cl.run(8);
    ASSERT_TRUE(c1.ok && c8.ok) << name;
    EXPECT_NEAR(double(c8.stats.region_cycles()),
                double(c1.stats.region_cycles()),
                0.02 * double(c1.stats.region_cycles()))
        << name;
  }
}

TEST(KernelBehaviour, ParallelKernelsSpeedUpWithCores) {
  for (const char* name : {"gemm", "fir", "conv2d", "memcpy"}) {
    const kir::Program p =
        dsl::lower(make_kernel(name, kir::DType::I32, 8192));
    sim::Cluster cl;
    cl.load(p);
    const auto c1 = cl.run(1);
    const auto c4 = cl.run(4);
    ASSERT_TRUE(c1.ok && c4.ok) << name;
    const double speedup = double(c1.stats.region_cycles()) /
                           double(c4.stats.region_cycles());
    EXPECT_GT(speedup, 2.5) << name;
  }
}

TEST(KernelBehaviour, FpuStormF32SaturatesSharedFpus) {
  const kir::Program p =
      dsl::lower(make_kernel("fpu_storm", kir::DType::F32, 8192));
  sim::Cluster cl;
  cl.load(p);
  const auto c4 = cl.run(4);
  const auto c8 = cl.run(8);
  ASSERT_TRUE(c4.ok && c8.ok);
  const double speedup = double(c4.stats.region_cycles()) /
                         double(c8.stats.region_cycles());
  EXPECT_LT(speedup, 1.4);  // capped by the 4 shared FPUs
}

TEST(KernelBehaviour, HistogramCountsEveryPixelOnce) {
  const kir::Program p =
      dsl::lower(make_kernel("histogram", kir::DType::I32, 512));
  sim::Cluster cl;
  cl.load(p);
  ASSERT_TRUE(cl.run(8).ok);
  const kir::BufferInfo& img = p.buffers[0];
  const kir::BufferInfo& hist = p.buffers[1];
  std::int64_t total = 0;
  for (std::uint32_t b = 0; b < hist.elems; ++b) {
    total += cl.read_i32(hist.base + 4 * b);
  }
  EXPECT_EQ(total, std::int64_t(img.elems));
}

}  // namespace
}  // namespace pulpc::kernels
