// The one precedence order every configurable setting follows
// (core/env.hpp): explicit options field > CLI flag (which writes the
// field) > PULPC_* environment variable > built-in default.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>

#include "core/env.hpp"
#include "core/parallel.hpp"

namespace {

using pulpc::core::env_or;

constexpr const char* kVar = "PULPC_TEST_ENV_OR";

class EnvOr : public ::testing::Test {
 protected:
  void SetUp() override { unsetenv(kVar); }
  void TearDown() override { unsetenv(kVar); }
};

TEST_F(EnvOr, StringFallsBackToDefault) {
  EXPECT_EQ(env_or(std::nullopt, kVar, "fallback"), "fallback");
}

TEST_F(EnvOr, StringEnvBeatsDefault) {
  setenv(kVar, "from-env", 1);
  EXPECT_EQ(env_or(std::nullopt, kVar, "fallback"), "from-env");
}

TEST_F(EnvOr, StringExplicitBeatsEnv) {
  setenv(kVar, "from-env", 1);
  EXPECT_EQ(env_or(std::optional<std::string>("explicit"), kVar, "fallback"),
            "explicit");
}

TEST_F(EnvOr, StringEmptyIsMeaningful) {
  // "" means "disable" at several call sites (artifact store, CSV
  // cache); both the explicit and env tiers must be able to say it.
  setenv(kVar, "from-env", 1);
  EXPECT_EQ(env_or(std::optional<std::string>(""), kVar, "fallback"), "");
  unsetenv(kVar);
  setenv(kVar, "", 1);
  EXPECT_EQ(env_or(std::nullopt, kVar, "fallback"), "");
}

TEST_F(EnvOr, UnsignedFallsBackToDefault) {
  EXPECT_EQ(env_or(0U, kVar, 7U), 7U);
}

TEST_F(EnvOr, UnsignedEnvBeatsDefault) {
  setenv(kVar, "3", 1);
  EXPECT_EQ(env_or(0U, kVar, 7U), 3U);
}

TEST_F(EnvOr, UnsignedExplicitBeatsEnv) {
  setenv(kVar, "3", 1);
  EXPECT_EQ(env_or(5U, kVar, 7U), 5U);
}

TEST_F(EnvOr, UnsignedRejectsMalformedEnv) {
  for (const char* bad : {"", "0", "-2", "abc", "4x"}) {
    setenv(kVar, bad, 1);
    EXPECT_EQ(env_or(0U, kVar, 7U), 7U) << "env='" << bad << "'";
  }
  // Leading whitespace is strtol territory and accepted.
  setenv(kVar, " 8", 1);
  EXPECT_EQ(env_or(0U, kVar, 7U), 8U);
}

TEST_F(EnvOr, ThreadCountResolvesThroughHelper) {
  // resolve_thread_count is the oldest call site of the chain; pin that
  // it still honours it end to end.
  setenv("PULPC_THREADS", "2", 1);
  EXPECT_EQ(pulpc::core::resolve_thread_count(0), 2U);
  EXPECT_EQ(pulpc::core::resolve_thread_count(5), 5U);
  unsetenv("PULPC_THREADS");
  EXPECT_GE(pulpc::core::resolve_thread_count(0), 1U);
}

}  // namespace
