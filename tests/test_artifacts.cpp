// Staged-pipeline artifact tests: RunStats serialization, the versioned
// raw-counter store (fingerprints, corruption, gc), and the replay
// contract — relabel from a warm store must reproduce a fresh build
// byte-for-byte at every thread count, with zero re-simulation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/artifacts.hpp"
#include "core/pipeline.hpp"
#include "sim/stats.hpp"

namespace pulpc::core {
namespace {

namespace fs = std::filesystem;

// Fresh per-test store directory under the gtest temp dir.
std::string temp_store(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "pulpc_store_" + name;
  fs::remove_all(dir);
  return dir;
}

// A small, fast slice: two kernels, two sizes, integer + float.
std::vector<SampleConfig> tiny_configs() {
  return {{"gemm", kir::DType::I32, 512},
          {"fir", kir::DType::F32, 512},
          {"fir", kir::DType::I32, 2048}};
}

BuildOptions tiny_options() {
  BuildOptions opt;
  opt.max_cores = 4;  // trims the sweep; all stages still exercised
  opt.threads = 1;
  opt.cache_path = "";    // no CSV cache side effects
  opt.artifact_dir = "";  // no store unless a test opts in
  return opt;
}

std::string csv_string(const ml::Dataset& ds) {
  std::ostringstream out;
  ds.save_csv(out);
  return out.str();
}

sim::RunStats real_stats(unsigned ncores = 2) {
  const SampleConfig cfg{"gemm", kir::DType::I32, 512};
  BuildOptions opt = tiny_options();
  opt.max_cores = ncores;
  return simulate_sample(lower_sample(cfg), cfg, opt).back();
}

TEST(RunStatsIo, RoundTripsExactly) {
  const sim::RunStats stats = real_stats(3);
  std::stringstream ss;
  sim::save_stats(ss, stats);
  const sim::RunStats back = sim::load_stats(ss);
  EXPECT_EQ(back, stats);
}

TEST(RunStatsIo, RejectsGarbageAndTruncation) {
  std::stringstream empty;
  EXPECT_THROW((void)sim::load_stats(empty), std::runtime_error);

  std::stringstream garbage("not a runstats file\n");
  EXPECT_THROW((void)sim::load_stats(garbage), std::runtime_error);

  std::stringstream ss;
  sim::save_stats(ss, real_stats(2));
  std::string text = ss.str();
  // Drop the trailing "end" sentinel and a bit more.
  std::stringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_THROW((void)sim::load_stats(truncated), std::runtime_error);
}

TEST(ArtifactStore, DisabledStoreIsInert) {
  const ArtifactStore store;
  EXPECT_FALSE(store.enabled());
  sim::RunStats out;
  EXPECT_FALSE(store.load({"gemm", kir::DType::I32, 512}, 1, 0, &out));
  EXPECT_FALSE(store.contains({"gemm", kir::DType::I32, 512}, 1));
  store.save({"gemm", kir::DType::I32, 512}, 1, 0, sim::RunStats{});
  EXPECT_THROW((void)relabel(store, tiny_configs(), tiny_options()),
               std::invalid_argument);
  EXPECT_THROW((void)populate_store(store, tiny_configs(), tiny_options()),
               std::invalid_argument);
}

TEST(ArtifactStore, SaveLoadRoundTrip) {
  const ArtifactStore store(temp_store("roundtrip"), sim::ClusterConfig{});
  const SampleConfig cfg{"gemm", kir::DType::I32, 512};
  const sim::RunStats stats = real_stats(2);
  store.save(cfg, 2, 0x1234, stats);
  EXPECT_TRUE(store.contains(cfg, 2));
  sim::RunStats back;
  ASSERT_TRUE(store.load(cfg, 2, 0x1234, &back));
  EXPECT_EQ(back, stats);
  // Missing core count, other kernel: not found.
  EXPECT_FALSE(store.contains(cfg, 3));
  EXPECT_FALSE(store.load({"fir", kir::DType::I32, 512}, 2, 0x1234, &back));
}

TEST(ArtifactStore, RejectsWrongProgramHash) {
  const ArtifactStore store(temp_store("proghash"), sim::ClusterConfig{});
  const SampleConfig cfg{"gemm", kir::DType::I32, 512};
  store.save(cfg, 2, 0x1234, real_stats(2));
  sim::RunStats back;
  // Same sample name, different lowering (the compiler-opt ablation
  // case) must not replay these counters.
  EXPECT_FALSE(store.load(cfg, 2, 0x9999, &back));
  EXPECT_TRUE(store.load(cfg, 2, 0x1234, &back));
}

TEST(ArtifactStore, ForeignClusterFingerprintIsRejected) {
  const std::string dir = temp_store("foreign");
  const SampleConfig cfg{"gemm", kir::DType::I32, 512};
  {
    sim::ClusterConfig other;
    other.l2_latency = 99;  // a different simulated platform
    const ArtifactStore writer(dir, other);
    writer.save(cfg, 1, 0x1, real_stats(1));
  }
  const ArtifactStore store(dir, sim::ClusterConfig{});
  sim::RunStats back;
  EXPECT_FALSE(store.load(cfg, 1, 0x1, &back));
  EXPECT_FALSE(store.contains(cfg, 1));
  const ArtifactStore::Info info = store.scan();
  EXPECT_EQ(info.files, 1U);
  EXPECT_EQ(info.foreign, 1U);
  EXPECT_EQ(info.valid, 0U);
}

TEST(ArtifactStore, CorruptFileIsDetectedAndCollected) {
  // Pinned to the v1 per-file backend: this test does surgery on the
  // path_for() file, which only exists in the one-file-per-run layout.
  // test_store_v2.cpp carries the equivalent v2 corruption coverage.
  const std::string dir = temp_store("corrupt");
  const ArtifactStore store(dir, sim::ClusterConfig{}, StoreFormat::v1);
  const SampleConfig cfg{"gemm", kir::DType::I32, 512};
  store.save(cfg, 1, 0x1, real_stats(1));
  store.save(cfg, 2, 0x1, real_stats(2));

  // Truncate one artifact mid-file.
  const std::string victim = store.path_for(cfg, 2);
  const auto size = fs::file_size(victim);
  fs::resize_file(victim, size / 2);

  sim::RunStats back;
  EXPECT_FALSE(store.load(cfg, 2, 0x1, &back));
  EXPECT_TRUE(store.load(cfg, 1, 0x1, &back));

  ArtifactStore::Info info = store.scan();
  EXPECT_EQ(info.files, 2U);
  EXPECT_EQ(info.valid, 1U);
  EXPECT_EQ(info.corrupt, 1U);

  EXPECT_EQ(store.gc(), 1U);
  info = store.scan();
  EXPECT_EQ(info.files, 1U);
  EXPECT_EQ(info.corrupt, 0U);
}

TEST(ArtifactStore, GcDropsOrphanedDiagSidecars) {
  // v1: deleting a sample's artifacts must let gc() reap the .diag
  // sidecar too, while a live sample keeps its report.
  const std::string dir = temp_store("orphandiag");
  const ArtifactStore store(dir, sim::ClusterConfig{}, StoreFormat::v1);
  const SampleConfig live{"gemm", kir::DType::I32, 512};
  const SampleConfig dead{"fir", kir::DType::F32, 512};
  store.save(live, 1, 0x1, real_stats(1));
  store.save(dead, 1, 0x1, real_stats(1));
  store.save_diag(live, "live report\n");
  store.save_diag(dead, "dead report\n");
  ASSERT_TRUE(fs::exists(store.diag_path_for(live)));
  ASSERT_TRUE(fs::exists(store.diag_path_for(dead)));

  // Remove the dead sample's only artifact; its sidecar is now orphaned.
  fs::remove(store.path_for(dead, 1));
  EXPECT_EQ(store.gc(), 1U);  // the orphan sidecar is the one dead entry
  EXPECT_FALSE(fs::exists(store.diag_path_for(dead)));
  EXPECT_TRUE(fs::exists(store.diag_path_for(live)));
  EXPECT_TRUE(store.contains(live, 1));
}

TEST(ArtifactStore, PopulateFillsEveryConfiguredRun) {
  const BuildOptions opt = tiny_options();
  const ArtifactStore store(temp_store("populate"), opt.cluster);
  const std::vector<SampleConfig> configs = tiny_configs();
  const StageReport first = populate_store(store, configs, opt);
  EXPECT_EQ(first.samples, configs.size());
  EXPECT_EQ(first.simulated_runs, configs.size() * opt.max_cores);
  EXPECT_EQ(first.replayed_runs, 0U);
  for (const SampleConfig& cfg : configs) {
    for (unsigned c = 1; c <= opt.max_cores; ++c) {
      EXPECT_TRUE(store.contains(cfg, c)) << cfg.kernel << " @" << c;
    }
  }
  // Second pass is a pure replay.
  const StageReport second = populate_store(store, configs, opt);
  EXPECT_EQ(second.simulated_runs, 0U);
  EXPECT_EQ(second.replayed_runs, configs.size() * opt.max_cores);
}

TEST(ArtifactStore, BuildDatasetPopulatesTheStore) {
  BuildOptions opt = tiny_options();
  opt.artifact_dir = temp_store("viabuild");
  const std::vector<SampleConfig> configs = tiny_configs();
  StageReport report;
  opt.stage_report = [&](const StageReport& r) { report = r; };
  (void)build_dataset(configs, opt);
  EXPECT_EQ(report.simulated_runs, configs.size() * opt.max_cores);
  const ArtifactStore store(*opt.artifact_dir, opt.cluster);
  const ArtifactStore::Info info = store.scan();
  EXPECT_EQ(info.valid, configs.size() * opt.max_cores);
  EXPECT_EQ(info.foreign + info.corrupt, 0U);
}

TEST(Replay, RelabelMatchesFreshBuildByteForByte) {
  const std::vector<SampleConfig> configs = tiny_configs();
  BuildOptions opt = tiny_options();
  const std::string fresh_csv = csv_string(build_dataset(configs, opt));

  const ArtifactStore store(temp_store("replay"), opt.cluster);
  (void)populate_store(store, configs, opt);

  for (const unsigned threads : {1U, 4U}) {
    BuildOptions ropt = tiny_options();
    ropt.threads = threads;
    StageReport report;
    ropt.stage_report = [&](const StageReport& r) { report = r; };
    const ml::Dataset replayed = relabel(store, configs, ropt);
    EXPECT_EQ(csv_string(replayed), fresh_csv) << threads << " threads";
    EXPECT_EQ(report.simulated_runs, 0U) << threads << " threads";
    EXPECT_EQ(report.replayed_runs, configs.size() * ropt.max_cores);
  }
}

TEST(Replay, CorruptArtifactIsResimulatedAndRepaired) {
  const std::vector<SampleConfig> configs = tiny_configs();
  const BuildOptions opt = tiny_options();
  const std::string fresh_csv = csv_string(build_dataset(configs, opt));

  // v1-pinned for the same reason as CorruptFileIsDetectedAndCollected:
  // the corruption is injected through path_for(), a v1-only handle.
  const ArtifactStore store(temp_store("repair"), opt.cluster,
                            StoreFormat::v1);
  (void)populate_store(store, configs, opt);

  // Corrupt one artifact; replay must fall back to simulation for that
  // run only, still produce identical bytes, and repair the file.
  const std::string victim = store.path_for(configs[1], 3);
  std::ofstream(victim, std::ios::trunc) << "ruined\n";

  BuildOptions ropt = tiny_options();
  StageReport report;
  ropt.stage_report = [&](const StageReport& r) { report = r; };
  EXPECT_EQ(csv_string(relabel(store, configs, ropt)), fresh_csv);
  EXPECT_EQ(report.simulated_runs, 1U);
  EXPECT_EQ(report.replayed_runs, configs.size() * ropt.max_cores - 1);

  sim::RunStats back;
  EXPECT_TRUE(store.load(configs[1], 3,
                         program_hash(lower_sample(configs[1])), &back));
}

TEST(Replay, PerturbedEnergyModelNeedsNoSimulation) {
  const std::vector<SampleConfig> configs = tiny_configs();
  const BuildOptions opt = tiny_options();
  const ArtifactStore store(temp_store("perturb"), opt.cluster);
  (void)populate_store(store, configs, opt);

  BuildOptions perturbed = tiny_options();
  perturbed.energy.pe_leakage *= 10.0;
  StageReport report;
  perturbed.stage_report = [&](const StageReport& r) { report = r; };
  const ml::Dataset ds = relabel(store, configs, perturbed);
  EXPECT_EQ(report.simulated_runs, 0U);
  ASSERT_EQ(ds.size(), configs.size());

  // The perturbed labels must equal a (slow) fresh build under the same
  // model — replay changes where the numbers come from, not the numbers.
  BuildOptions fresh = tiny_options();
  fresh.energy.pe_leakage *= 10.0;
  EXPECT_EQ(csv_string(ds), csv_string(build_dataset(configs, fresh)));
}

TEST(Stages, ComposeToBuildSample) {
  const SampleConfig cfg{"gemm", kir::DType::I32, 512};
  const BuildOptions opt = tiny_options();

  const kir::Program prog = lower_sample(cfg);
  const std::vector<sim::RunStats> runs = simulate_sample(prog, cfg, opt);
  ASSERT_EQ(runs.size(), opt.max_cores);
  const SampleLabel label = label_sample(runs, opt.energy);
  const ml::Sample staged = assemble_sample(
      cfg, "polybench", label, featurize_sample(prog, runs, opt.mca));

  const ml::Sample fused = build_sample(cfg, opt);
  EXPECT_EQ(staged.label, fused.label);
  EXPECT_EQ(staged.energy, fused.energy);
  EXPECT_EQ(staged.cycles, fused.cycles);
  EXPECT_EQ(staged.features, fused.features);
  EXPECT_EQ(staged.kernel, fused.kernel);
}

TEST(Stages, LabelIsArgminWithFirstWinTies) {
  std::vector<sim::RunStats> runs(2);
  // Identical counters at both core counts -> identical energy -> the
  // lower core count must win the tie.
  runs[0] = real_stats(1);
  runs[1] = runs[0];
  const SampleLabel label = label_sample(runs);
  EXPECT_EQ(label.label, 1);
  EXPECT_EQ(label.energy[0], label.energy[1]);
}

TEST(CsvCache, LegacySchemaCacheIsRebuilt) {
  const std::string path =
      ::testing::TempDir() + "pulpc_legacy_cache_test.csv";
  fs::remove(path);
  // A structurally valid pre-schema-comment cache: right header shape,
  // but legacy (version 0) and a stale column set.
  std::ofstream(path) << "kernel,suite,dtype,size_bytes,label,e1,c1,x\n"
                         "k,s,i32,1,1,2.0,10,0.5\n";
  BuildOptions opt = tiny_options();
  opt.cache_path = path;
  const std::vector<SampleConfig> configs = tiny_configs();
  const ml::Dataset ds = load_or_build_dataset(configs, opt);
  EXPECT_EQ(ds.size(), configs.size());
  EXPECT_EQ(ds.columns(), dataset_columns(opt.max_cores));
  // The cache file was upgraded in place to the stamped schema.
  std::ifstream upgraded(path);
  std::string first;
  std::getline(upgraded, first);
  EXPECT_EQ(first.rfind("# pulpclass-dataset v", 0), 0U) << first;
  fs::remove(path);
}

TEST(CsvCache, ExplicitCachePathBeatsEnvironment) {
  const std::string good =
      ::testing::TempDir() + "pulpc_explicit_cache_test.csv";
  const std::string decoy =
      ::testing::TempDir() + "pulpc_env_decoy_cache_test.csv";
  fs::remove(good);
  fs::remove(decoy);
  ASSERT_EQ(setenv("PULPC_DATASET_CACHE", decoy.c_str(), 1), 0);
  BuildOptions opt = tiny_options();
  opt.cache_path = good;
  (void)load_or_build_dataset(tiny_configs(), opt);
  unsetenv("PULPC_DATASET_CACHE");
  EXPECT_TRUE(fs::exists(good));
  EXPECT_FALSE(fs::exists(decoy));
  fs::remove(good);
}

}  // namespace
}  // namespace pulpc::core
