// Scale-out serving tests: shard routing determinism (the contract the
// warm-cache story rests on), jump-hash monotonicity under shard-count
// growth, zero-downtime hot reload (registry semantics, cache survival
// across same-column reloads, a concurrent reload/predict torture run),
// the v2 wire protocol (ping/metrics/reload verbs, structured errors,
// version negotiation, pipelining, too-large resync), the v1 adapter,
// rebind-after-stop, and ServeOptions env-precedence resolution. The
// invariant inherited from test_serve.cpp still rules: every served
// prediction is bit-identical to the offline one, on every shard, on
// every model version.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/classifier.hpp"
#include "core/pipeline.hpp"
#include "dsl/lower.hpp"
#include "feat/features.hpp"
#include "kernels/registry.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/sharded.hpp"

namespace pulpc {
namespace {

using serve::ModelRegistry;
using serve::PredictionService;
using serve::Request;
using serve::Result;
using serve::ShardedService;

const ml::Dataset& test_dataset() {
  static const ml::Dataset* ds = [] {
    auto* d = new ml::Dataset(core::dataset_columns(8));
    for (const char* name : {"memcpy", "alu_chain", "trisolv", "autocor"}) {
      d->add(core::build_sample({name, kir::DType::I32, 512}));
    }
    return d;
  }();
  return *ds;
}

/// Default (all static features) classifier shared by every test.
const core::EnergyClassifier& test_classifier() {
  static const core::EnergyClassifier* clf = [] {
    auto* c = new core::EnergyClassifier();
    c->train(test_dataset());
    return c;
  }();
  return *clf;
}

/// Same dataset, different feature set: a reload that changes the
/// column list (and must therefore flush the row caches).
const core::EnergyClassifier& agg_classifier() {
  static const core::EnergyClassifier* clf = [] {
    core::EnergyClassifier::Options opt;
    opt.features = feat::FeatureSet::Agg;
    auto* c = new core::EnergyClassifier(opt);
    c->train(test_dataset());
    return c;
  }();
  return *clf;
}

Request spec_request(const std::string& kernel, kir::DType dtype,
                     std::uint32_t bytes) {
  Request r;
  r.kernel = kernel;
  r.dtype = dtype;
  r.size_bytes = bytes;
  return r;
}

int offline_predict(const core::EnergyClassifier& clf,
                    const std::string& kernel, kir::DType dtype,
                    std::uint32_t bytes) {
  return clf.predict(dsl::lower(kernels::make_kernel(kernel, dtype, bytes)));
}

// ---- socket helpers (as in test_serve.cpp) ------------------------------

int dial(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) return false;
    off += std::size_t(n);
  }
  return true;
}

std::string read_line(int fd) {
  std::string buf;
  char c;
  while (buf.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n <= 0) return "";
    buf += c;
  }
  buf.pop_back();
  return buf;
}

std::string rpc(int fd, const std::string& line) {
  if (!send_all(fd, line + "\n")) return "";
  return read_line(fd);
}

/// Multi-shard server under test: shared registry, S shards, W workers,
/// ephemeral port.
struct ScaleServer {
  explicit ScaleServer(serve::ServeOptions wopt = {},
                       std::size_t shards = 2, unsigned workers = 2)
      : registry(std::make_shared<ModelRegistry>(test_classifier())),
        service(registry,
                [&] {
                  ShardedService::Options o;
                  o.shards = shards;
                  return o;
                }()) {
    wopt.port = std::uint16_t{0};
    wopt.workers = workers;
    server = std::make_unique<serve::Server>(service, wopt);
    port = server->start();
    runner = std::thread([this] { server->run(); });
  }
  ~ScaleServer() { stop(); }
  void stop() {
    if (runner.joinable()) {
      server->request_stop();
      runner.join();
    }
  }

  std::shared_ptr<ModelRegistry> registry;
  ShardedService service;
  std::unique_ptr<serve::Server> server;
  std::uint16_t port = 0;
  std::thread runner;
};

// ---- shard routing ------------------------------------------------------

TEST(ShardRouting, JumpHashIsDeterministicAndInRange) {
  std::uint64_t key = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < 200; ++i) {
    key = key * 6364136223846793005ULL + 1442695040888963407ULL;
    for (std::size_t m : {std::size_t(1), std::size_t(2), std::size_t(5),
                          std::size_t(16)}) {
      const std::size_t s = ShardedService::shard_index(key, m);
      EXPECT_LT(s, m);
      EXPECT_EQ(s, ShardedService::shard_index(key, m));  // pure function
    }
    EXPECT_EQ(ShardedService::shard_index(key, 1), 0u);
  }
}

TEST(ShardRouting, JumpHashMovesOnlyIntoTheNewShardOnGrowth) {
  // The consistent-hash contract: growing M -> M+1 shards either keeps
  // a key where it was or moves it into the NEW shard — never shuffles
  // it between surviving shards (that is what keeps warm caches warm
  // across a scale-out).
  std::uint64_t key = 0x2545f4914f6cdd1dULL;
  for (int i = 0; i < 500; ++i) {
    key = key * 6364136223846793005ULL + 1442695040888963407ULL;
    for (std::size_t m = 1; m <= 8; ++m) {
      const std::size_t before = ShardedService::shard_index(key, m);
      const std::size_t after = ShardedService::shard_index(key, m + 1);
      EXPECT_TRUE(after == before || after == m)
          << "key moved " << before << " -> " << after << " at m=" << m;
    }
  }
}

TEST(ShardRouting, EveryShardGetsTraffic) {
  std::set<std::size_t> hit;
  std::uint64_t key = 0xda942042e4dd58b5ULL;
  for (int i = 0; i < 1000; ++i) {
    key = key * 6364136223846793005ULL + 1442695040888963407ULL;
    hit.insert(ShardedService::shard_index(key, 4));
  }
  EXPECT_EQ(hit.size(), 4u);  // 1000 keys cannot miss a shard of 4
}

TEST(ShardRouting, SpecRoutingIsDeterministicAcrossInstances) {
  // Same request -> same shard, in two independently constructed
  // services (i.e. across process restarts too: nothing about the
  // placement depends on instance state).
  ShardedService::Options opt;
  opt.shards = 4;
  ShardedService a(test_classifier(), opt);
  ShardedService b(test_classifier(), opt);
  std::set<std::size_t> hit;
  for (const kernels::KernelInfo& k : kernels::all_kernels()) {
    const Request req = spec_request(k.name, kir::DType::I32, 2048);
    const std::size_t sa = a.shard_for(req);
    EXPECT_EQ(sa, b.shard_for(req)) << k.name;
    EXPECT_EQ(sa, a.shard_for(req)) << k.name;  // stable on repeat
    hit.insert(sa);
  }
  EXPECT_GT(hit.size(), 1u);  // the registry spreads over shards
}

TEST(ShardRouting, ShardedAnswersMatchSingleServiceByteForByte) {
  ShardedService::Options opt4;
  opt4.shards = 4;
  ShardedService sharded(test_classifier(), opt4);
  PredictionService single(test_classifier());
  for (const char* kernel :
       {"memcpy", "stencil5", "div_chain", "alu_chain", "trisolv",
        "autocor", "gemm", "fir"}) {
    const Request req = spec_request(kernel, kir::DType::I32, 2048);
    const Result rs = sharded.predict(req);
    const Result r1 = single.predict(req);
    ASSERT_EQ(rs.ok, r1.ok) << kernel;
    EXPECT_EQ(rs.cores, r1.cores) << kernel;
    EXPECT_EQ(rs.error, r1.error) << kernel;
  }
  // Unlowerable specs reproduce the identical error text too (the shard
  // re-runs the failing lowering; the router never caches the failure).
  const Request bad = spec_request("no_such_kernel", kir::DType::I32, 64);
  const Result rs = sharded.predict(bad);
  const Result r1 = single.predict(bad);
  EXPECT_FALSE(rs.ok);
  EXPECT_EQ(rs.error, r1.error);
}

// ---- hot reload ---------------------------------------------------------

TEST(HotReload, RegistryPublishesMonotonicVersions) {
  ModelRegistry reg(test_classifier());
  EXPECT_EQ(reg.version(), 1u);
  EXPECT_EQ(reg.reload(test_classifier()), 2u);
  EXPECT_EQ(reg.reload(agg_classifier()), 3u);
  EXPECT_EQ(reg.version(), 3u);
  EXPECT_EQ(reg.loaded_count(), 3u);
  const std::string js = reg.models_json();
  EXPECT_NE(js.find("\"version\":1"), std::string::npos) << js;
  EXPECT_NE(js.find("\"version\":3"), std::string::npos) << js;
  EXPECT_NE(js.find("\"live\":true"), std::string::npos) << js;
  // An untrained model can never unseat the serving one.
  EXPECT_THROW(reg.reload(core::EnergyClassifier()), std::invalid_argument);
  EXPECT_EQ(reg.version(), 3u);
  // Neither can an unreadable file.
  EXPECT_THROW(reg.reload_file("/nonexistent/model.txt"),
               std::runtime_error);
  EXPECT_EQ(reg.version(), 3u);
}

TEST(HotReload, SameColumnReloadKeepsCachesWarm) {
  PredictionService svc(test_classifier());
  const Request req = spec_request("gemm", kir::DType::I32, 2048);
  EXPECT_FALSE(svc.predict(req).cached);
  EXPECT_TRUE(svc.predict(req).cached);
  // Retrained weights, same feature columns: the common production
  // reload. Every cached row is still valid.
  svc.registry()->reload(test_classifier());
  const Result r = svc.predict(req);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.cached);
  EXPECT_EQ(r.model_version, 2u);
}

TEST(HotReload, ColumnChangingReloadFlushesCaches) {
  ASSERT_NE(test_classifier().columns(), agg_classifier().columns());
  PredictionService svc(test_classifier());
  const Request req = spec_request("gemm", kir::DType::I32, 2048);
  EXPECT_FALSE(svc.predict(req).cached);
  EXPECT_TRUE(svc.predict(req).cached);
  svc.registry()->reload(agg_classifier());
  const Result r = svc.predict(req);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.cached);  // different columns: the row was stale
  EXPECT_EQ(r.model_version, 2u);
  EXPECT_EQ(r.cores, offline_predict(agg_classifier(), "gemm",
                                     kir::DType::I32, 2048));
}

TEST(HotReload, TortureConcurrentPredictsAndReloads) {
  auto registry = std::make_shared<ModelRegistry>(test_classifier());
  ShardedService::Options opt;
  opt.shards = 2;
  opt.service.threads = 1;
  ShardedService svc(registry, opt);

  const char* kernels[4] = {"memcpy", "alu_chain", "trisolv", "autocor"};
  int expected[4];
  for (int i = 0; i < 4; ++i) {
    expected[i] =
        offline_predict(test_classifier(), kernels[i], kir::DType::I32, 1024);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&] {
      while (!stop.load()) {
        for (int i = 0; i < 4; ++i) {
          const Result r =
              svc.predict(spec_request(kernels[i], kir::DType::I32, 1024));
          const std::uint64_t after = registry->version();
          // Every reply, on every model version published by this
          // torture run, is correct (all versions are retrains of the
          // same data) and attributed to a version that existed when
          // the reply was produced.
          if (!r.ok || r.cores != expected[i] || r.model_version < 1 ||
              r.model_version > after) {
            ++failures;
          }
        }
      }
    });
  }
  for (int i = 0; i < 25; ++i) {
    registry->reload(test_classifier());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(registry->version(), 26u);
}

// ---- the wire protocol --------------------------------------------------

TEST(WireV2, PredictCarriesVersionAndMatchesV1Answer) {
  ScaleServer ts;
  const int fd = dial(ts.port);
  ASSERT_GE(fd, 0);
  serve::WireReply v2;
  ASSERT_EQ(serve::parse_reply(
                rpc(fd, R"({"v":2,"id":5,"cmd":"predict","kernel":"gemm",)"
                        R"("dtype":"i32","bytes":8192})"),
                &v2),
            "");
  ASSERT_TRUE(v2.ok) << v2.error;
  EXPECT_EQ(v2.v, 2);
  EXPECT_EQ(v2.id, 5);
  EXPECT_EQ(v2.model_version, 1u);
  EXPECT_EQ(v2.cores,
            offline_predict(test_classifier(), "gemm", kir::DType::I32,
                            8192));
  // The v1 adapter: same connection, legacy line, legacy reply shape
  // (no "v", no model_version) — and the identical prediction.
  const std::string raw =
      rpc(fd, R"({"id":6,"kernel":"gemm","dtype":"i32","bytes":8192})");
  EXPECT_EQ(raw.find("\"v\":"), std::string::npos) << raw;
  EXPECT_EQ(raw.find("model_version"), std::string::npos) << raw;
  serve::WireReply v1;
  ASSERT_EQ(serve::parse_reply(raw, &v1), "");
  ASSERT_TRUE(v1.ok) << v1.error;
  EXPECT_EQ(v1.cores, v2.cores);
  ::close(fd);
}

TEST(WireV2, PingMetricsAndStructuredErrors) {
  ScaleServer ts;
  const int fd = dial(ts.port);
  ASSERT_GE(fd, 0);
  serve::WireReply wire;
  ASSERT_EQ(serve::parse_reply(rpc(fd, R"({"v":2,"id":1,"cmd":"ping"})"),
                               &wire),
            "");
  EXPECT_TRUE(wire.ok);
  EXPECT_TRUE(wire.pong);

  const std::string metrics =
      rpc(fd, R"({"v":2,"id":2,"cmd":"metrics"})");
  EXPECT_NE(metrics.find("\"total\":"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("\"shards\":["), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("\"models\":["), std::string::npos) << metrics;

  // Structured errors: {"error":{"code":...,"msg":...}}.
  ASSERT_EQ(serve::parse_reply(rpc(fd, R"({"v":2,"id":3,"cmd":"warp"})"),
                               &wire),
            "");
  EXPECT_FALSE(wire.ok);
  EXPECT_EQ(wire.error_code, serve::kErrorCodeInvalid);
  EXPECT_NE(wire.error.find("warp"), std::string::npos) << wire.error;

  ASSERT_EQ(serve::parse_reply(
                rpc(fd, R"({"v":3,"id":4,"cmd":"predict","kernel":"gemm",)"
                        R"("dtype":"i32","bytes":64})"),
                &wire),
            "");
  EXPECT_FALSE(wire.ok);
  EXPECT_NE(wire.error.find("unsupported protocol version"),
            std::string::npos)
      << wire.error;

  ASSERT_EQ(serve::parse_reply(
                rpc(fd, R"({"v":2,"id":5,"cmd":"predict","kernel":"gemm",)"
                        R"("dtype":"i64","bytes":64})"),
                &wire),
            "");
  EXPECT_FALSE(wire.ok);
  EXPECT_EQ(wire.error_code, serve::kErrorCodeInvalid);

  ASSERT_EQ(serve::parse_reply(
                rpc(fd, R"({"v":2,"id":6,"cmd":"predict",)"
                        R"("kernel":"no_such_kernel","dtype":"i32",)"
                        R"("bytes":64})"),
                &wire),
            "");
  EXPECT_FALSE(wire.ok);
  EXPECT_EQ(wire.error_code, serve::kErrorCodePredict);
  ::close(fd);
}

TEST(WireV2, ReloadVerbPublishesANewServingVersion) {
  const std::string model_path =
      "/tmp/pulpclass_scale_test_model_" + std::to_string(::getpid()) +
      ".txt";
  test_classifier().save_file(model_path);

  ScaleServer ts;
  const int fd = dial(ts.port);
  ASSERT_GE(fd, 0);
  serve::WireReply wire;
  ASSERT_EQ(serve::parse_reply(
                rpc(fd, R"({"v":2,"id":1,"cmd":"predict","kernel":"gemm",)"
                        R"("dtype":"i32","bytes":4096})"),
                &wire),
            "");
  ASSERT_TRUE(wire.ok) << wire.error;
  EXPECT_EQ(wire.model_version, 1u);
  const int cores_v1 = wire.cores;

  ASSERT_EQ(serve::parse_reply(
                rpc(fd, R"({"v":2,"id":2,"cmd":"reload","model":")" +
                            model_path + "\"}"),
                &wire),
            "");
  ASSERT_TRUE(wire.ok) << wire.error;
  EXPECT_EQ(wire.model_version, 2u);
  EXPECT_EQ(ts.registry->version(), 2u);

  // Post-reload traffic serves the new version — and since it is a
  // retrain of the same data, the identical prediction.
  ASSERT_EQ(serve::parse_reply(
                rpc(fd, R"({"v":2,"id":3,"cmd":"predict","kernel":"gemm",)"
                        R"("dtype":"i32","bytes":4096})"),
                &wire),
            "");
  ASSERT_TRUE(wire.ok) << wire.error;
  EXPECT_EQ(wire.model_version, 2u);
  EXPECT_EQ(wire.cores, cores_v1);

  // A reload of a nonexistent file fails loudly and keeps serving v2.
  ASSERT_EQ(serve::parse_reply(
                rpc(fd, R"({"v":2,"id":4,"cmd":"reload",)"
                        R"("model":"/nonexistent/m.txt"})"),
                &wire),
            "");
  EXPECT_FALSE(wire.ok);
  EXPECT_EQ(wire.error_code, serve::kErrorCodeReload);
  EXPECT_EQ(ts.registry->version(), 2u);
  ::close(fd);
  std::remove(model_path.c_str());
}

TEST(WireV2, PipelinedRequestsAllGetTheirAnswers) {
  ScaleServer ts;
  const int fd = dial(ts.port);
  ASSERT_GE(fd, 0);
  const char* kernels[4] = {"memcpy", "alu_chain", "trisolv", "gemm"};
  std::map<long long, int> expected;
  std::string burst;
  for (long long id = 0; id < 12; ++id) {
    const char* k = kernels[id % 4];
    expected[id] =
        offline_predict(test_classifier(), k, kir::DType::I32, 1024);
    burst += "{\"v\":2,\"id\":" + std::to_string(id) +
             ",\"cmd\":\"predict\",\"kernel\":\"" + k +
             "\",\"dtype\":\"i32\",\"bytes\":1024}\n";
  }
  // One write, twelve requests: replies may arrive in any order across
  // shards but every id must be answered exactly once, correctly.
  ASSERT_TRUE(send_all(fd, burst));
  std::map<long long, int> got;
  for (int i = 0; i < 12; ++i) {
    serve::WireReply wire;
    ASSERT_EQ(serve::parse_reply(read_line(fd), &wire), "");
    ASSERT_TRUE(wire.ok) << wire.error;
    EXPECT_EQ(got.count(wire.id), 0u) << "duplicate reply id " << wire.id;
    got[wire.id] = wire.cores;
  }
  EXPECT_EQ(got.size(), 12u);
  for (const auto& [id, cores] : expected) {
    EXPECT_EQ(got[id], cores) << "id " << id;
  }
  ::close(fd);
}

TEST(WireV2, OversizedLineGetsTooLargeErrorAndConnectionResyncs) {
  serve::ServeOptions wopt;
  wopt.max_line_bytes = 256;
  ScaleServer ts(wopt);
  const int fd = dial(ts.port);
  ASSERT_GE(fd, 0);
  serve::WireReply wire;
  // Establish v2 on the connection, then blow the line budget.
  ASSERT_EQ(serve::parse_reply(rpc(fd, R"({"v":2,"id":1,"cmd":"ping"})"),
                               &wire),
            "");
  ASSERT_TRUE(wire.ok);
  ASSERT_TRUE(send_all(fd, std::string(400, 'x')));
  ASSERT_EQ(serve::parse_reply(read_line(fd), &wire), "");
  EXPECT_FALSE(wire.ok);
  EXPECT_EQ(wire.error_code, serve::kErrorCodeTooLarge);
  // Finish the oversized junk line; everything up to the newline is
  // discarded, and the connection then serves normally again.
  ASSERT_TRUE(send_all(fd, std::string(100, 'x') + "\n"));
  ASSERT_EQ(serve::parse_reply(
                rpc(fd, R"({"v":2,"id":2,"cmd":"predict","kernel":"memcpy",)"
                        R"("dtype":"i32","bytes":512})"),
                &wire),
            "");
  EXPECT_TRUE(wire.ok) << wire.error;
  ::close(fd);
}

// ---- lifecycle ----------------------------------------------------------

TEST(ScaleServerLifecycle, PortIsRebindableImmediatelyAfterStop) {
  auto registry = std::make_shared<ModelRegistry>(test_classifier());
  ShardedService::Options opt;
  opt.shards = 2;
  ShardedService svc(registry, opt);

  std::uint16_t port = 0;
  {
    serve::ServeOptions o;
    o.port = std::uint16_t{0};
    serve::Server first(svc, o);
    port = first.start();
    std::thread t([&] { first.run(); });
    const int fd = dial(port);
    ASSERT_GE(fd, 0);
    serve::WireReply wire;
    ASSERT_EQ(serve::parse_reply(rpc(fd, R"({"v":2,"id":1,"cmd":"ping"})"),
                                 &wire),
              "");
    EXPECT_TRUE(wire.ok);
    ::close(fd);
    first.request_stop();
    t.join();
  }
  // The exact port rebinds instantly: SO_REUSEADDR is verified at
  // start(), so lingering TIME_WAIT sockets cannot brick a restart.
  serve::ServeOptions o2;
  o2.port = port;
  serve::Server second(svc, o2);
  ASSERT_EQ(second.start(), port);
  std::thread t2([&] { second.run(); });
  const int fd = dial(port);
  ASSERT_GE(fd, 0);
  serve::WireReply wire;
  ASSERT_EQ(serve::parse_reply(
                rpc(fd, R"({"v":2,"id":1,"cmd":"predict","kernel":"memcpy",)"
                        R"("dtype":"i32","bytes":512})"),
                &wire),
            "");
  EXPECT_TRUE(wire.ok) << wire.error;
  ::close(fd);
  second.request_stop();
  t2.join();
}

TEST(ScaleServerLifecycle, ManyWorkersManyShardsServeConcurrentClients) {
  ScaleServer ts({}, /*shards=*/4, /*workers=*/4);
  const char* kernels[4] = {"memcpy", "alu_chain", "trisolv", "autocor"};
  int expected[4];
  for (int i = 0; i < 4; ++i) {
    expected[i] =
        offline_predict(test_classifier(), kernels[i], kir::DType::I32, 1024);
  }
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&, t] {
      const int fd = dial(ts.port);
      if (fd < 0) {
        ++failures;
        return;
      }
      for (int i = 0; i < 8; ++i) {
        const int k = (t + i) % 4;
        serve::WireReply wire;
        const std::string reply =
            rpc(fd, "{\"v\":2,\"id\":" + std::to_string(t * 100 + i) +
                        ",\"cmd\":\"predict\",\"kernel\":\"" +
                        kernels[k] + "\",\"dtype\":\"i32\",\"bytes\":1024}");
        if (!serve::parse_reply(reply, &wire).empty() || !wire.ok ||
            wire.cores != expected[k] || wire.id != t * 100 + i) {
          ++failures;
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  const serve::Metrics::Snapshot m = ts.service.metrics();
  EXPECT_EQ(m.ok, 48u);
  EXPECT_EQ(m.errors + m.shed, 0u);
}

// ---- options resolution -------------------------------------------------

TEST(ServeOptionsResolve, ExplicitBeatsEnvBeatsDefault) {
  for (const char* var :
       {"PULPC_SERVE_PORT", "PULPC_SERVE_WORKERS", "PULPC_SERVE_SHARDS",
        "PULPC_SERVE_LINGER_US", "PULPC_SERVE_TIMEOUT_MS"}) {
    ::unsetenv(var);
  }
  serve::ServeOptions o;
  EXPECT_EQ(o.resolve().port, 7070);
  EXPECT_EQ(o.resolve().workers, 2u);
  EXPECT_EQ(o.resolve().shards, 2u);
  EXPECT_EQ(o.resolve().batch_linger_us, 200u);
  EXPECT_EQ(o.resolve().request_timeout_ms, 5000u);

  ::setenv("PULPC_SERVE_PORT", "9191", 1);
  ::setenv("PULPC_SERVE_WORKERS", "5", 1);
  ::setenv("PULPC_SERVE_LINGER_US", "7", 1);
  EXPECT_EQ(o.resolve().port, 9191);
  EXPECT_EQ(o.resolve().workers, 5u);
  EXPECT_EQ(o.resolve().batch_linger_us, 7u);

  o.port = std::uint16_t{0};  // explicit 0 means ephemeral, beats env
  o.workers = 3;
  o.batch_linger_us = 0;  // explicit 0 means "no linger", beats env
  EXPECT_EQ(o.resolve().port, 0);
  EXPECT_EQ(o.resolve().workers, 3u);
  EXPECT_EQ(o.resolve().batch_linger_us, 0u);

  for (const char* var :
       {"PULPC_SERVE_PORT", "PULPC_SERVE_WORKERS", "PULPC_SERVE_LINGER_US"}) {
    ::unsetenv(var);
  }
}

}  // namespace
}  // namespace pulpc
