// End-to-end trace consistency: run real kernels with the GVSOC-style
// text trace attached, parse the trace back through the paper's listener
// hierarchy, and require the reconstructed statistics to match the
// simulator's direct counters exactly. This validates both the trace
// emission and the trace-analysis software.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>

#include "dsl/lower.hpp"
#include "kernels/registry.hpp"
#include "sim/cluster.hpp"
#include "trace/listeners.hpp"
#include "trace/sinks.hpp"

namespace pulpc {
namespace {

using Param = std::tuple<std::string, unsigned>;  // kernel, cores

class TraceConsistency : public ::testing::TestWithParam<Param> {};

TEST_P(TraceConsistency, ParsedTraceMatchesDirectCounters) {
  const auto& [name, cores] = GetParam();
  const kernels::KernelInfo& info = kernels::kernel_info(name);
  const kir::DType dtype = info.supports(kir::DType::F32)
                               ? kir::DType::F32
                               : kir::DType::I32;
  const kir::Program prog = dsl::lower(info.factory(dtype, 512));

  sim::Cluster cluster;
  cluster.load(prog);

  std::ostringstream trace_text;
  trace::TextTraceWriter writer(trace_text);
  const sim::RunResult run = cluster.run(cores, &writer);
  ASSERT_TRUE(run.ok) << run.error;

  trace::TraceAnalyser analyser;
  trace::PulpListeners listeners;
  listeners.register_on(analyser);
  std::istringstream in(trace_text.str());
  const std::size_t events = analyser.analyse(in);
  EXPECT_GT(events, 0U);
  EXPECT_EQ(analyser.malformed_lines(), 0U);
  EXPECT_EQ(analyser.unclaimed_events(), 0U);

  const sim::RunStats direct = run.stats;
  const sim::RunStats parsed = listeners.to_run_stats();

  EXPECT_EQ(parsed.ncores, direct.ncores);
  EXPECT_EQ(parsed.region_begin, direct.region_begin);
  EXPECT_EQ(parsed.region_end, direct.region_end);

  for (unsigned c = 0; c < direct.total_cores; ++c) {
    const sim::CoreStats& d = direct.core[c];
    const sim::CoreStats& p = parsed.core[c];
    const std::string where = name + " core " + std::to_string(c);
    EXPECT_EQ(p.instrs, d.instrs) << where;
    EXPECT_EQ(p.n_alu, d.n_alu) << where;
    EXPECT_EQ(p.n_div, d.n_div) << where;
    EXPECT_EQ(p.n_fp, d.n_fp) << where;
    EXPECT_EQ(p.n_fpdiv, d.n_fpdiv) << where;
    EXPECT_EQ(p.n_l1, d.n_l1) << where;
    EXPECT_EQ(p.n_l2, d.n_l2) << where;
    EXPECT_EQ(p.n_branch, d.n_branch) << where;
    EXPECT_EQ(p.n_nop, d.n_nop) << where;
    EXPECT_EQ(p.n_sync, d.n_sync) << where;
    EXPECT_EQ(p.cyc_alu, d.cyc_alu) << where;
    EXPECT_EQ(p.cyc_fp, d.cyc_fp) << where;
    EXPECT_EQ(p.cyc_l1, d.cyc_l1) << where;
    EXPECT_EQ(p.cyc_l2, d.cyc_l2) << where;
    EXPECT_EQ(p.cyc_wait, d.cyc_wait) << where;
    EXPECT_EQ(p.cyc_cg, d.cyc_cg) << where;
    EXPECT_EQ(p.idle_cycles, d.idle_cycles) << where;
  }
  for (std::size_t b = 0; b < direct.l1.size(); ++b) {
    EXPECT_EQ(parsed.l1[b].reads, direct.l1[b].reads) << b;
    EXPECT_EQ(parsed.l1[b].writes, direct.l1[b].writes) << b;
    EXPECT_EQ(parsed.l1[b].conflicts, direct.l1[b].conflicts) << b;
  }
  for (std::size_t b = 0; b < direct.l2.size(); ++b) {
    EXPECT_EQ(parsed.l2[b].reads, direct.l2[b].reads) << b;
    EXPECT_EQ(parsed.l2[b].writes, direct.l2[b].writes) << b;
  }
  for (std::size_t f = 0; f < direct.fpu.size(); ++f) {
    EXPECT_EQ(parsed.fpu[f].busy_cycles, direct.fpu[f].busy_cycles) << f;
  }
  EXPECT_EQ(parsed.icache.uses, direct.icache.uses);
  EXPECT_EQ(parsed.icache.refills, direct.icache.refills);
  EXPECT_EQ(parsed.dma.beats, direct.dma.beats);
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndCores, TraceConsistency,
    ::testing::Combine(
        ::testing::Values("stream_triad", "gemm", "fir", "histogram",
                          "trisolv", "stride_conflict", "l2_stream",
                          "dma_pingpong", "reduction_sum", "fft"),
        ::testing::Values(1U, 2U, 8U)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::get<0>(info.param) + "_c" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace pulpc
