// Machine-code-analyser tests: uop decomposition, the restricted-
// assignment resource bound, port pressures, dependency chains and the
// Table IIb feature semantics.
#include <gtest/gtest.h>

#include <vector>

#include "dsl/builder.hpp"
#include "dsl/lower.hpp"
#include "mca/analyzer.hpp"

namespace pulpc::mca {
namespace {

using kir::Instr;
using kir::MemSpace;
using kir::Op;

Instr ins(Op op, std::uint8_t rd = 0, std::uint8_t rs1 = 0,
          std::uint8_t rs2 = 0, std::int32_t imm = 0,
          MemSpace mem = MemSpace::None) {
  return Instr{op, rd, rs1, rs2, imm, mem};
}

// ---- decomposition -------------------------------------------------------

TEST(McaDecompose, SimpleAluIsOneUopOnAluPorts) {
  const MachineModel m;
  std::array<Uop, 2> uops{};
  ASSERT_EQ(decompose(ins(Op::Add, 1, 2, 3), m, uops), 1U);
  EXPECT_EQ(uops[0].port_mask, m.int_alu_ports);
  EXPECT_EQ(uops[0].div_cycles, 0U);
}

TEST(McaDecompose, StoresSplitIntoDataAndAguUops) {
  const MachineModel m;
  std::array<Uop, 2> uops{};
  ASSERT_EQ(decompose(ins(Op::Sw, 0, 1, 2, 0, MemSpace::Tcdm), m, uops), 2U);
  EXPECT_EQ(uops[0].port_mask, m.store_data_ports);
  EXPECT_EQ(uops[1].port_mask, m.store_agu_ports);
}

TEST(McaDecompose, MacSplitsIntoMulAndAdd) {
  const MachineModel m;
  std::array<Uop, 2> uops{};
  ASSERT_EQ(decompose(ins(Op::Mac, 1, 2, 3), m, uops), 2U);
  EXPECT_EQ(uops[0].port_mask, m.int_mul_ports);
  EXPECT_EQ(uops[1].port_mask, m.int_alu_ports);
}

TEST(McaDecompose, DividesOccupySerialResources) {
  const MachineModel m;
  std::array<Uop, 2> uops{};
  ASSERT_EQ(decompose(ins(Op::Div, 1, 2, 3), m, uops), 1U);
  EXPECT_EQ(uops[0].div_cycles, m.div_occupancy);
  ASSERT_EQ(decompose(ins(Op::FDiv, 1, 2, 3), m, uops), 1U);
  EXPECT_EQ(uops[0].fpdiv_cycles, m.fpdiv_occupancy);
  ASSERT_EQ(decompose(ins(Op::FSqrt, 1, 2), m, uops), 1U);
  EXPECT_EQ(uops[0].fpdiv_cycles, m.fpsqrt_occupancy);
}

TEST(McaDecompose, SyncPseudoOpsAreInvisible) {
  const MachineModel m;
  std::array<Uop, 2> uops{};
  EXPECT_EQ(decompose(ins(Op::Barrier), m, uops), 0U);
  EXPECT_EQ(decompose(ins(Op::MarkEnter), m, uops), 0U);
  EXPECT_EQ(decompose(ins(Op::Halt), m, uops), 0U);
}

// ---- analysis -------------------------------------------------------------

TEST(McaAnalyze, EmptyBlockYieldsZeros) {
  const McaResult r = analyze({});
  EXPECT_DOUBLE_EQ(r.ipc, 0.0);
  EXPECT_DOUBLE_EQ(r.uops, 0.0);
}

TEST(McaAnalyze, IndependentAluOpsAreDispatchBound) {
  // 8 independent single-uop ALU ops over 4 candidate ports with
  // dispatch width 4: rthroughput = max(8/4 ports, 8/4 dispatch) = 2.
  std::vector<Instr> block(8, ins(Op::Add, 1, 2, 3));
  for (std::uint8_t i = 0; i < 8; ++i) {
    block[i].rd = static_cast<std::uint8_t>(i + 4);
  }
  const McaResult r = analyze(block);
  EXPECT_DOUBLE_EQ(r.rthroughput, 2.0);
  EXPECT_DOUBLE_EQ(r.ipc, 4.0);
  EXPECT_DOUBLE_EQ(r.uops_per_cycle, 4.0);
}

TEST(McaAnalyze, SinglePortOpsSerialise) {
  // Integer multiplies all go to port 1: rthroughput == count.
  std::vector<Instr> block;
  for (std::uint8_t i = 0; i < 6; ++i) {
    block.push_back(ins(Op::Mul, static_cast<std::uint8_t>(10 + i), 1, 2));
  }
  const McaResult r = analyze(block);
  EXPECT_DOUBLE_EQ(r.rthroughput, 6.0);
  EXPECT_NEAR(r.rp[1], 1.0, 1e-9);  // port 1 saturated
}

TEST(McaAnalyze, DividerPressureSaturatesForDivChains) {
  const std::vector<Instr> block = {ins(Op::Div, 10, 1, 2),
                                    ins(Op::Div, 11, 3, 4)};
  const MachineModel m;
  const McaResult r = analyze(block, m);
  EXPECT_DOUBLE_EQ(r.rthroughput, 2.0 * m.div_occupancy);
  EXPECT_NEAR(r.rp_div, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.rp_fpdiv, 0.0);
}

TEST(McaAnalyze, FpDividerTrackedSeparately) {
  const std::vector<Instr> block = {ins(Op::FDiv, 10, 1, 2)};
  const McaResult r = analyze(block);
  EXPECT_GT(r.rp_fpdiv, 0.9);
  EXPECT_DOUBLE_EQ(r.rp_div, 0.0);
}

TEST(McaAnalyze, LoopCarriedChainLimitsIpc) {
  // acc = acc + x is a carried chain: cycles/iter >= fp latency even
  // though resources are almost idle.
  const MachineModel m;
  const std::vector<Instr> chain = {ins(Op::FAdd, 5, 5, 6)};
  const McaResult r = analyze(chain, m);
  EXPECT_DOUBLE_EQ(r.cycles_per_iter, static_cast<double>(m.lat_fp));
  EXPECT_LT(r.ipc, 1.0);
  // The same op without the carried dependency is throughput-bound.
  const std::vector<Instr> indep = {ins(Op::FAdd, 5, 6, 7)};
  const McaResult r2 = analyze(indep, m);
  EXPECT_GT(r2.ipc, r.ipc);
}

TEST(McaAnalyze, PortPressuresAreNormalised) {
  const std::vector<Instr> block = {
      ins(Op::Add, 10, 1, 2), ins(Op::Mul, 11, 3, 4),
      ins(Op::Lw, 12, 1, 0, 0, MemSpace::Tcdm),
      ins(Op::Sw, 0, 1, 2, 0, MemSpace::Tcdm),
      ins(Op::FAdd, 13, 1, 2), ins(Op::Bne, 0, 1, 2, 0)};
  const McaResult r = analyze(block);
  for (int p = 0; p < kNumPorts; ++p) {
    EXPECT_GE(r.rp[p], 0.0) << p;
    EXPECT_LE(r.rp[p], 1.0) << p;
  }
  EXPECT_GT(r.rp[2] + r.rp[3], 0.0);  // load ports
  EXPECT_GT(r.rp[4], 0.0);            // store data
  EXPECT_GT(r.rp[7], 0.0);            // store AGU
}

TEST(McaAnalyze, LoadsSpreadAcrossBothAguPorts) {
  std::vector<Instr> block;
  for (std::uint8_t i = 0; i < 8; ++i) {
    block.push_back(
        ins(Op::Lw, static_cast<std::uint8_t>(10 + i), 1, 0, 0,
            MemSpace::Tcdm));
  }
  const McaResult r = analyze(block);
  EXPECT_NEAR(r.rp[2], r.rp[3], 1e-9);  // balanced water-fill
  EXPECT_NEAR(r.rp[2], 1.0, 1e-9);
}

TEST(McaAnalyze, UopsCountedPerInstruction) {
  const std::vector<Instr> block = {ins(Op::Add, 10, 1, 2),
                                    ins(Op::Sw, 0, 1, 2, 0, MemSpace::Tcdm),
                                    ins(Op::Mac, 11, 1, 2)};
  const McaResult r = analyze(block);
  EXPECT_DOUBLE_EQ(r.instrs, 3.0);
  EXPECT_DOUBLE_EQ(r.uops, 5.0);
}

TEST(McaAnalyze, ReportContainsHeadlineNumbers) {
  const std::vector<Instr> block = {ins(Op::Add, 10, 1, 2)};
  const McaResult r = analyze(block);
  const std::string s = report(r);
  EXPECT_NE(s.find("IPC"), std::string::npos);
  EXPECT_NE(s.find("rthroughput"), std::string::npos);
  EXPECT_NE(s.find("ports"), std::string::npos);
}

// ---- program-level analysis -----------------------------------------------

TEST(McaAnalyze, AnalyzesHottestLoopOfRealKernel) {
  dsl::KernelBuilder k("dotp", "test", kir::DType::F32, 512);
  const dsl::Buf a = k.buffer("a", 64);
  const dsl::Buf b = k.buffer("b", 64);
  const dsl::Buf out = k.buffer("out", 8, dsl::InitKind::Zero);
  k.par_for("i", dsl::make_const_i(0), dsl::make_const_i(64), [&](dsl::Val i) {
    auto acc = k.decl("acc", k.ec(0));
    k.assign(acc, acc + k.load(a, i) * k.load(b, i));
    k.store(out, dsl::make_const_i(0), acc);
  });
  const kir::Program prog = dsl::lower(k.build());
  const McaResult r = analyze_program(prog);
  EXPECT_GT(r.instrs, 0.0);
  EXPECT_GT(r.ipc, 0.0);
  EXPECT_GT(r.rp[2] + r.rp[3], 0.0);  // the loop loads from memory
}

TEST(McaAnalyze, DeterministicForSameInput) {
  const std::vector<Instr> block = {ins(Op::Add, 10, 1, 2),
                                    ins(Op::FMul, 11, 1, 2),
                                    ins(Op::Lw, 12, 1, 0, 0, MemSpace::Tcdm)};
  const McaResult a = analyze(block);
  const McaResult b = analyze(block);
  EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.rp, b.rp);
}

}  // namespace
}  // namespace pulpc::mca
