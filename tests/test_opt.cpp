// Optimiser tests: CFG construction, liveness, local value numbering,
// dead-code elimination, metadata remapping across compaction, and
// end-to-end semantic preservation on real and random kernels.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "dsl/builder.hpp"
#include "dsl/lower.hpp"
#include "kir/cfg.hpp"
#include "kir/operands.hpp"
#include "kir/opt.hpp"
#include "kernels/registry.hpp"
#include "sim/cluster.hpp"

namespace pulpc {
namespace {

using kir::Instr;
using kir::MemSpace;
using kir::Op;

Instr ins(Op op, std::uint8_t rd = 0, std::uint8_t rs1 = 0,
          std::uint8_t rs2 = 0, std::int32_t imm = 0,
          MemSpace mem = MemSpace::None) {
  return Instr{op, rd, rs1, rs2, imm, mem};
}

kir::Program wrap(std::vector<Instr> body) {
  kir::Program p;
  p.name = "opt-test";
  p.buffers.push_back(kir::BufferInfo{"m", kir::DType::I32, MemSpace::Tcdm,
                                      0x1000'0000, 64, kir::BufInit::Zero});
  p.code.push_back(ins(Op::MarkEnter));
  for (Instr& b : body) {
    if (kir::is_branch(b.op)) b.imm += 1;
    p.code.push_back(b);
  }
  p.code.push_back(ins(Op::MarkExit));
  p.code.push_back(ins(Op::Halt));
  return p;
}

// ---- CFG -------------------------------------------------------------

TEST(Cfg, StraightLineIsOneBlock) {
  const kir::Program p = wrap({ins(Op::Add, 1, 1, 1)});
  const kir::Cfg cfg = kir::build_cfg(p);
  ASSERT_EQ(cfg.blocks.size(), 1U);
  EXPECT_TRUE(cfg.blocks[0].succs.empty());  // ends in halt
}

TEST(Cfg, BranchSplitsBlocksWithBothSuccessors) {
  // 0 enter | 1 beq->3 | 2 add | 3 exit | 4 halt
  const kir::Program p =
      wrap({ins(Op::Beq, 0, 1, 2, 2), ins(Op::Add, 1, 1, 1)});
  const kir::Cfg cfg = kir::build_cfg(p);
  ASSERT_EQ(cfg.blocks.size(), 3U);
  EXPECT_EQ(cfg.blocks[0].succs.size(), 2U);  // taken + fallthrough
  EXPECT_EQ(cfg.blocks[1].succs.size(), 1U);
}

TEST(Cfg, LoopHasBackEdge) {
  const kir::Program p = wrap({
      ins(Op::Li, 2, 0, 0, 0),
      ins(Op::AddI, 2, 2, 0, 1),  // body idx 1
      ins(Op::Blt, 0, 2, 3, 1),
  });
  const kir::Cfg cfg = kir::build_cfg(p);
  bool back_edge = false;
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    for (const std::uint32_t s : cfg.blocks[b].succs) {
      back_edge |= s <= b;
    }
  }
  EXPECT_TRUE(back_edge);
}

TEST(Cfg, LivenessSeesAcrossBlocks) {
  // r5 written before a branch and read after the join: must stay live
  // through the middle blocks.
  const kir::Program p = wrap({
      ins(Op::Li, 5, 0, 0, 7),        // 0 (body)
      ins(Op::Beq, 0, 1, 1, 3),       // 1 always taken
      ins(Op::Li, 6, 0, 0, 1),        // 2 skipped
      ins(Op::Li, 10, 0, 0, 0x1000'0000),  // 3
      ins(Op::Sw, 0, 10, 5, 0, MemSpace::Tcdm),  // 4 reads r5
  });
  const kir::Cfg cfg = kir::build_cfg(p);
  const auto live = kir::live_out(p, cfg);
  // After instruction 1 (the Li r5 at code index 1), r5 is live.
  EXPECT_TRUE((live[1] >> 5) & 1ULL);
}

// ---- optimiser unit behaviour ----------------------------------------

TEST(Opt, RemovesRecomputedAddressShift) {
  // The same shift computed twice; the second collapses and dies.
  const kir::Program p = wrap({
      ins(Op::Li, 2, 0, 0, 3),
      ins(Op::ShlI, 20, 2, 0, 2),
      ins(Op::ShlI, 21, 2, 0, 2),  // same value
      ins(Op::Li, 10, 0, 0, 0x1000'0000),
      ins(Op::Add, 11, 10, 20),
      ins(Op::Add, 12, 10, 21),    // same value again
      ins(Op::Sw, 0, 11, 2, 0, MemSpace::Tcdm),
      ins(Op::Sw, 0, 12, 2, 4, MemSpace::Tcdm),
  });
  kir::OptStats st;
  const kir::Program o = kir::optimize(p, {}, &st);
  EXPECT_EQ(kir::verify(o), "");
  EXPECT_LT(o.code.size(), p.code.size());
  EXPECT_GE(st.values_reused, 2U);
  EXPECT_GE(st.dead_removed, 1U);
}

TEST(Opt, RemovesDeadWrites) {
  const kir::Program p = wrap({
      ins(Op::Li, 2, 0, 0, 1),   // dead: overwritten below
      ins(Op::Li, 2, 0, 0, 5),
      ins(Op::Li, 3, 0, 0, 9),   // dead: never read
      ins(Op::Li, 10, 0, 0, 0x1000'0000),
      ins(Op::Sw, 0, 10, 2, 0, MemSpace::Tcdm),
  });
  kir::OptStats st;
  const kir::Program o = kir::optimize(p, {}, &st);
  EXPECT_GE(st.dead_removed, 2U);
  sim::Cluster cl;
  cl.load(o);
  ASSERT_TRUE(cl.run(1).ok);
  EXPECT_EQ(cl.read_i32(0x1000'0000), 5);
}

TEST(Opt, KeepsLoopCarriedRegistersAlive) {
  // Loop counter and accumulator must survive (live across back edge).
  const kir::Program p = wrap({
      ins(Op::Li, 1, 0, 0, 0),            // 0 sum
      ins(Op::Li, 2, 0, 0, 0),            // 1 i
      ins(Op::Li, 3, 0, 0, 10),           // 2
      ins(Op::Add, 1, 1, 2),              // 3 loop
      ins(Op::AddI, 2, 2, 0, 1),          // 4
      ins(Op::Blt, 0, 2, 3, 3),           // 5
      ins(Op::Li, 10, 0, 0, 0x1000'0000), // 6
      ins(Op::Sw, 0, 10, 1, 0, MemSpace::Tcdm),
  });
  const kir::Program o = kir::optimize(p);
  EXPECT_EQ(kir::verify(o), "");
  sim::Cluster cl;
  cl.load(o);
  ASSERT_TRUE(cl.run(1).ok);
  EXPECT_EQ(cl.read_i32(0x1000'0000), 45);  // 0+1+...+9
}

TEST(Opt, DoesNotTouchMemoryOrSyncOps) {
  const kir::Program p = wrap({
      ins(Op::Li, 10, 0, 0, 0x1000'0000),
      ins(Op::Lw, 2, 10, 0, 0, MemSpace::Tcdm),
      ins(Op::Lw, 3, 10, 0, 0, MemSpace::Tcdm),  // NOT redundant: memory
      ins(Op::Barrier),
      ins(Op::Sw, 0, 10, 2, 4, MemSpace::Tcdm),
      ins(Op::Sw, 0, 10, 3, 8, MemSpace::Tcdm),
  });
  const kir::Program o = kir::optimize(p);
  std::size_t loads = 0;
  std::size_t barriers = 0;
  for (const Instr& i : o.code) {
    loads += i.op == Op::Lw ? 1 : 0;
    barriers += i.op == Op::Barrier ? 1 : 0;
  }
  EXPECT_EQ(loads, 2U);
  EXPECT_EQ(barriers, 1U);
}

TEST(Opt, MacInPlaceAccumulatorIsNotCopyPropagated) {
  const kir::Program p = wrap({
      ins(Op::Li, 1, 0, 0, 10),
      ins(Op::Mv, 4, 1),            // r4 = r1 (same value)
      ins(Op::Li, 2, 0, 0, 3),
      ins(Op::Li, 3, 0, 0, 4),
      ins(Op::Mac, 4, 2, 3),        // r4 += 12 -> 22; must stay r4
      ins(Op::Li, 10, 0, 0, 0x1000'0000),
      ins(Op::Sw, 0, 10, 4, 0, MemSpace::Tcdm),
      ins(Op::Sw, 0, 10, 1, 4, MemSpace::Tcdm),  // r1 still 10
  });
  const kir::Program o = kir::optimize(p);
  sim::Cluster cl;
  cl.load(o);
  ASSERT_TRUE(cl.run(1).ok);
  EXPECT_EQ(cl.read_i32(0x1000'0000), 22);
  EXPECT_EQ(cl.read_i32(0x1000'0004), 10);
}

TEST(Opt, MetadataSurvivesCompaction) {
  dsl::KernelBuilder k("meta", "test", kir::DType::I32, 256);
  const dsl::Buf b = k.buffer("b", 32);
  k.par_for("i", dsl::make_const_i(0), dsl::make_const_i(32),
            [&](dsl::Val i) { k.store(b, i, i + dsl::make_const_i(1)); });
  const kir::Program p = dsl::lower(k.build());
  const kir::Program o = kir::optimize(p);
  EXPECT_EQ(kir::verify(o), "");
  ASSERT_EQ(o.regions.size(), 1U);
  ASSERT_EQ(o.loops.size(), 1U);
  EXPECT_EQ(o.loops[0].trip, 32);
  EXPECT_LE(o.loops[0].body_end, o.code.size());
  EXPECT_LT(o.regions[0].begin, o.regions[0].end);
}

// ---- end-to-end preservation on dataset kernels -----------------------

class OptKernels : public ::testing::TestWithParam<const char*> {};

TEST_P(OptKernels, OptimisedKernelComputesSameMemoryState) {
  const std::string name = GetParam();
  const kernels::KernelInfo& info = kernels::kernel_info(name);
  const kir::DType dt = info.supports(kir::DType::I32) ? kir::DType::I32
                                                       : kir::DType::F32;
  const kir::Program base = dsl::lower(info.factory(dt, 2048));
  kir::OptStats st;
  const kir::Program opt = kir::optimize(base, {}, &st);
  ASSERT_EQ(kir::verify(opt), "");
  EXPECT_LE(opt.code.size(), base.code.size());

  for (const unsigned cores : {1U, 4U}) {
    sim::Cluster a;
    a.load(base);
    sim::Cluster b;
    b.load(opt);
    const sim::RunResult ra = a.run(cores);
    const sim::RunResult rb = b.run(cores);
    ASSERT_TRUE(ra.ok && rb.ok) << name;
    // The optimised program should not be meaningfully slower. (It can
    // be marginally slower: fewer instructions per iteration shift the
    // lock/bank contention interleaving on contended kernels.)
    EXPECT_LE(double(rb.stats.region_cycles()),
              1.05 * double(ra.stats.region_cycles()))
        << name;
    for (const kir::BufferInfo& buf : base.buffers) {
      for (std::uint32_t i = 0; i < buf.elems; ++i) {
        ASSERT_EQ(b.read_i32(buf.base + 4 * i), a.read_i32(buf.base + 4 * i))
            << name << " " << buf.name << "[" << i << "] cores " << cores;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, OptKernels,
                         ::testing::Values("gemm", "fir", "jacobi2d",
                                           "histogram", "fft", "trisolv",
                                           "conv2d", "compress", "lu",
                                           "edge_detect", "stream_triad",
                                           "gemver"));

TEST(Opt, ShrinksRealKernelsMeaningfully) {
  const kir::Program base = dsl::lower(
      kernels::make_kernel("gemm", kir::DType::I32, 8192));
  kir::OptStats st;
  const kir::Program opt = kir::optimize(base, {}, &st);
  // gemm's inner loop re-computes the invariant row offset on every
  // iteration; LICM + LVN reclaim a visible fraction of the *executed*
  // instructions.
  sim::Cluster a;
  a.load(base);
  sim::Cluster b;
  b.load(opt);
  const sim::RunResult ra = a.run(1);
  const sim::RunResult rb = b.run(1);
  ASSERT_TRUE(ra.ok && rb.ok);
  EXPECT_LT(double(rb.stats.total_instrs()),
            0.95 * double(ra.stats.total_instrs()))
      << "hoisted=" << st.hoisted << " reused=" << st.values_reused
      << " dead=" << st.dead_removed;
  EXPECT_LT(rb.stats.region_cycles(), ra.stats.region_cycles());
}

TEST(Opt, RandomProgramsSurviveOptimisation) {
  std::mt19937_64 seed_gen(99);
  for (int trial = 0; trial < 8; ++trial) {
    // Random straight-line pure code with a few stores.
    std::mt19937_64 rng(seed_gen());
    std::vector<Instr> body;
    body.push_back(ins(Op::Li, 10, 0, 0, 0x1000'0000));
    for (int i = 0; i < 40; ++i) {
      const auto rd = std::uint8_t(1 + rng() % 8);
      const auto rs1 = std::uint8_t(1 + rng() % 8);
      const auto rs2 = std::uint8_t(1 + rng() % 8);
      switch (rng() % 6) {
        case 0: body.push_back(ins(Op::Add, rd, rs1, rs2)); break;
        case 1: body.push_back(ins(Op::Mul, rd, rs1, rs2)); break;
        case 2: body.push_back(ins(Op::AddI, rd, rs1, 0,
                                   std::int32_t(rng() % 11))); break;
        case 3: body.push_back(ins(Op::Li, rd, 0, 0,
                                   std::int32_t(rng() % 7))); break;
        case 4: body.push_back(ins(Op::Min, rd, rs1, rs2)); break;
        default:
          body.push_back(ins(Op::Sw, 0, 10, rd,
                             std::int32_t(4 * (rng() % 16)),
                             MemSpace::Tcdm));
          break;
      }
    }
    const kir::Program base = wrap(body);
    const kir::Program opt = kir::optimize(base);
    ASSERT_EQ(kir::verify(opt), "");
    sim::Cluster a;
    a.load(base);
    sim::Cluster b;
    b.load(opt);
    ASSERT_TRUE(a.run(1).ok);
    ASSERT_TRUE(b.run(1).ok);
    for (std::uint32_t w = 0; w < 16; ++w) {
      ASSERT_EQ(b.read_i32(0x1000'0000 + 4 * w),
                a.read_i32(0x1000'0000 + 4 * w))
          << "trial " << trial << " word " << w;
    }
  }
}

}  // namespace
}  // namespace pulpc
