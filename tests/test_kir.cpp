// Unit tests for the KIR instruction set, printer, verifier and the
// compile-time analyses.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "kir/analysis.hpp"
#include "kir/ir.hpp"

namespace pulpc::kir {
namespace {

Instr ins(Op op, std::uint8_t rd = 0, std::uint8_t rs1 = 0,
          std::uint8_t rs2 = 0, std::int32_t imm = 0,
          MemSpace mem = MemSpace::None) {
  return Instr{op, rd, rs1, rs2, imm, mem};
}

/// Minimal valid program around a payload.
Program wrap(std::vector<Instr> body) {
  Program p;
  p.name = "t";
  p.code.push_back(ins(Op::MarkEnter));
  for (const Instr& i : body) p.code.push_back(i);
  p.code.push_back(ins(Op::MarkExit));
  p.code.push_back(ins(Op::Halt));
  return p;
}

// ---- opcode classification ------------------------------------------------

TEST(KirOpClass, AluOpsClassifyAsAlu) {
  for (const Op op : {Op::Add, Op::Sub, Op::Mul, Op::Mac, Op::Slt, Op::And,
                      Op::Or, Op::Xor, Op::Shl, Op::Shr, Op::Min, Op::Max,
                      Op::Abs, Op::AddI, Op::MulI, Op::AndI, Op::OrI,
                      Op::XorI, Op::ShlI, Op::ShrI, Op::SltI, Op::Li,
                      Op::Mv}) {
    EXPECT_EQ(op_class(op), OpClass::Alu) << mnemonic(op);
  }
}

TEST(KirOpClass, DividerOpsClassifyAsDiv) {
  EXPECT_EQ(op_class(Op::Div), OpClass::Div);
  EXPECT_EQ(op_class(Op::Rem), OpClass::Div);
}

TEST(KirOpClass, FpOpsClassifyAsFp) {
  for (const Op op : {Op::FAdd, Op::FSub, Op::FMul, Op::FMac, Op::FMin,
                      Op::FMax, Op::FAbs, Op::FNeg, Op::FMv, Op::FLi,
                      Op::FLt, Op::FLe, Op::FEq, Op::CvtSW, Op::CvtWS}) {
    EXPECT_EQ(op_class(op), OpClass::Fp) << mnemonic(op);
  }
}

TEST(KirOpClass, FpDividerOps) {
  EXPECT_EQ(op_class(Op::FDiv), OpClass::FpDiv);
  EXPECT_EQ(op_class(Op::FSqrt), OpClass::FpDiv);
}

TEST(KirOpClass, MemoryDefaultsToL1) {
  for (const Op op : {Op::Lw, Op::Sw, Op::Flw, Op::Fsw}) {
    EXPECT_EQ(op_class(op), OpClass::MemL1) << mnemonic(op);
  }
}

TEST(KirOpClass, InstrMemAnnotationSelectsL2) {
  Instr load = ins(Op::Lw, 1, 2, 0, 0, MemSpace::L2);
  EXPECT_EQ(load.op_class(), OpClass::MemL2);
  load.mem = MemSpace::Tcdm;
  EXPECT_EQ(load.op_class(), OpClass::MemL1);
}

TEST(KirOpClass, BranchesAndSync) {
  for (const Op op : {Op::Beq, Op::Bne, Op::Blt, Op::Bge, Op::Jmp}) {
    EXPECT_EQ(op_class(op), OpClass::Branch);
    EXPECT_TRUE(is_branch(op));
  }
  for (const Op op : {Op::Barrier, Op::CoreId, Op::NumCores, Op::CritEnter,
                      Op::CritExit, Op::DmaStart, Op::DmaWait,
                      Op::MarkEnter, Op::MarkExit, Op::Halt}) {
    EXPECT_EQ(op_class(op), OpClass::Sync) << mnemonic(op);
  }
  EXPECT_EQ(op_class(Op::Nop), OpClass::Nop);
}

TEST(KirOpClass, IsMemoryOnlyForLoadsAndStores) {
  EXPECT_TRUE(is_memory(Op::Lw));
  EXPECT_TRUE(is_memory(Op::Fsw));
  EXPECT_FALSE(is_memory(Op::Add));
  EXPECT_FALSE(is_memory(Op::Barrier));
}

// ---- mnemonics ------------------------------------------------------------

TEST(KirMnemonic, RoundTripsForEveryOpcode) {
  for (int i = 0; i <= static_cast<int>(Op::Halt); ++i) {
    const Op op = static_cast<Op>(i);
    Op back{};
    ASSERT_TRUE(op_from_mnemonic(mnemonic(op), back)) << mnemonic(op);
    EXPECT_EQ(back, op);
  }
}

TEST(KirMnemonic, UnknownMnemonicRejected) {
  Op out{};
  EXPECT_FALSE(op_from_mnemonic("frobnicate", out));
  EXPECT_FALSE(op_from_mnemonic("", out));
}

TEST(KirMnemonic, MnemonicsAreUnique) {
  std::set<std::string> seen;
  for (int i = 0; i <= static_cast<int>(Op::Halt); ++i) {
    EXPECT_TRUE(seen.insert(mnemonic(static_cast<Op>(i))).second)
        << mnemonic(static_cast<Op>(i));
  }
}

// ---- printer --------------------------------------------------------------

TEST(KirPrinter, DisassemblesCommonForms) {
  EXPECT_EQ(to_string(ins(Op::Add, 3, 1, 2)), "add r3, r1, r2");
  EXPECT_EQ(to_string(ins(Op::AddI, 3, 1, 0, -4)), "addi r3, r1, -4");
  EXPECT_EQ(to_string(ins(Op::Li, 5, 0, 0, 42)), "li r5, 42");
  EXPECT_EQ(to_string(ins(Op::FAdd, 3, 1, 2)), "fadd.s f3, f1, f2");
  EXPECT_EQ(to_string(ins(Op::Beq, 0, 1, 2, 7)), "beq r1, r2, @7");
  EXPECT_EQ(to_string(ins(Op::Jmp, 0, 0, 0, 3)), "j @3");
  EXPECT_EQ(to_string(ins(Op::Barrier)), "barrier");
}

TEST(KirPrinter, MemoryOpsShowSpaceAnnotation) {
  const std::string lw =
      to_string(ins(Op::Lw, 2, 1, 0, 256, MemSpace::Tcdm));
  EXPECT_NE(lw.find("256(r1)"), std::string::npos);
  EXPECT_NE(lw.find("!tcdm"), std::string::npos);
  const std::string fsw =
      to_string(ins(Op::Fsw, 0, 1, 9, 0, MemSpace::L2));
  EXPECT_NE(fsw.find("f9"), std::string::npos);
  EXPECT_NE(fsw.find("!l2"), std::string::npos);
}

TEST(KirPrinter, FpCompareUsesMixedRegisterFiles) {
  const std::string s = to_string(ins(Op::FLt, 4, 1, 2));
  EXPECT_NE(s.find("r4"), std::string::npos);
  EXPECT_NE(s.find("f1"), std::string::npos);
}

TEST(KirPrinter, ProgramDumpContainsMetadata) {
  Program p = wrap({ins(Op::Li, 1, 0, 0, 5)});
  p.buffers.push_back(BufferInfo{"buf", DType::F32, MemSpace::Tcdm,
                                 0x1000'0000, 16, BufInit::Zero});
  p.loops.push_back(LoopMeta{1, 2, 16, true});
  p.regions.push_back(ParallelRegionMeta{0, 2, 16});
  const std::string dump = to_string(p);
  EXPECT_NE(dump.find("buffer buf"), std::string::npos);
  EXPECT_NE(dump.find("parallel region"), std::string::npos);
  EXPECT_NE(dump.find("trip=16"), std::string::npos);
}

// ---- verifier -------------------------------------------------------------

TEST(KirVerify, AcceptsMinimalProgram) {
  EXPECT_EQ(verify(wrap({ins(Op::Li, 1, 0, 0, 1)})), "");
}

TEST(KirVerify, RejectsEmptyProgram) {
  EXPECT_NE(verify(Program{}), "");
}

TEST(KirVerify, RejectsMissingHalt) {
  Program p = wrap({});
  p.code.pop_back();
  EXPECT_NE(verify(p), "");
}

TEST(KirVerify, RejectsBranchTargetOutOfRange) {
  Program p = wrap({ins(Op::Jmp, 0, 0, 0, 99)});
  EXPECT_NE(verify(p), "");
  p = wrap({ins(Op::Beq, 0, 1, 2, -1)});
  EXPECT_NE(verify(p), "");
}

TEST(KirVerify, RejectsUnannotatedMemoryOp) {
  Program p = wrap({ins(Op::Lw, 1, 2)});
  EXPECT_NE(verify(p), "");
}

TEST(KirVerify, RejectsUnbalancedMarkers) {
  Program p;
  p.code = {ins(Op::MarkEnter), ins(Op::Halt)};
  EXPECT_NE(verify(p), "");
  Program q;
  q.code = {ins(Op::MarkExit), ins(Op::Halt)};
  EXPECT_NE(verify(q), "");
}

TEST(KirVerify, RejectsMalformedLoopRanges) {
  Program p = wrap({ins(Op::Li, 1, 0, 0, 1)});
  p.loops.push_back(LoopMeta{5, 3, 1, false});
  EXPECT_NE(verify(p), "");
}

TEST(KirVerify, RejectsOverlappingLoops) {
  Program p = wrap({ins(Op::Li, 1), ins(Op::Li, 2), ins(Op::Li, 3)});
  p.loops.push_back(LoopMeta{0, 3, 1, false});
  p.loops.push_back(LoopMeta{2, 5, 1, false});
  EXPECT_NE(verify(p), "");
}

TEST(KirVerify, AcceptsNestedLoops) {
  Program p = wrap({ins(Op::Li, 1), ins(Op::Li, 2), ins(Op::Li, 3)});
  p.loops.push_back(LoopMeta{1, 4, 4, false});
  p.loops.push_back(LoopMeta{2, 3, 2, false});
  EXPECT_EQ(verify(p), "");
}

TEST(KirVerify, RejectsMisalignedBuffer) {
  Program p = wrap({ins(Op::Li, 1)});
  p.buffers.push_back(
      BufferInfo{"b", DType::I32, MemSpace::Tcdm, 0x1000'0002, 4});
  EXPECT_NE(verify(p), "");
}

// ---- static analysis ------------------------------------------------------

TEST(KirAnalysis, WeightsMultiplyThroughNestedLoops) {
  // enter, a, b, c, exit, halt; outer loop over {a,b,c} trip 10,
  // inner loop over {b} trip 5.
  Program p = wrap({ins(Op::Add, 1, 1, 1), ins(Op::Mul, 2, 2, 2),
                    ins(Op::Sub, 3, 3, 3)});
  p.loops.push_back(LoopMeta{1, 4, 10, false});
  p.loops.push_back(LoopMeta{2, 3, 5, false});
  const std::vector<double> w = instruction_weights(p);
  EXPECT_DOUBLE_EQ(w[0], 1.0);   // marker
  EXPECT_DOUBLE_EQ(w[1], 10.0);  // a
  EXPECT_DOUBLE_EQ(w[2], 50.0);  // b
  EXPECT_DOUBLE_EQ(w[3], 10.0);  // c
}

TEST(KirAnalysis, UnknownTripUsesFallback) {
  Program p = wrap({ins(Op::Add, 1, 1, 1)});
  p.loops.push_back(LoopMeta{1, 2, -1, false});
  StaticCountOptions opt;
  opt.unknown_trip = 3.0;
  const std::vector<double> w = instruction_weights(p, opt);
  EXPECT_DOUBLE_EQ(w[1], 3.0);
}

TEST(KirAnalysis, StaticCountsBucketByClass) {
  Program p = wrap({
      ins(Op::Add, 1, 1, 1),
      ins(Op::Div, 2, 2, 2),
      ins(Op::FAdd, 1, 1, 1),
      ins(Op::FSqrt, 2, 2),
      ins(Op::Lw, 1, 2, 0, 0, MemSpace::Tcdm),
      ins(Op::Sw, 0, 2, 1, 0, MemSpace::Tcdm),
      ins(Op::Flw, 1, 2, 0, 0, MemSpace::L2),
      ins(Op::Bne, 0, 1, 2, 0),
      ins(Op::Nop),
      ins(Op::Barrier),
  });
  const StaticCounts c = static_counts(p);
  EXPECT_DOUBLE_EQ(c.alu, 1);
  EXPECT_DOUBLE_EQ(c.div, 1);
  EXPECT_DOUBLE_EQ(c.fp, 1);
  EXPECT_DOUBLE_EQ(c.fpdiv, 1);
  EXPECT_DOUBLE_EQ(c.load_tcdm, 1);
  EXPECT_DOUBLE_EQ(c.store_tcdm, 1);
  EXPECT_DOUBLE_EQ(c.load_l2, 1);
  EXPECT_DOUBLE_EQ(c.branch, 1);
  EXPECT_DOUBLE_EQ(c.nop, 1);
  EXPECT_DOUBLE_EQ(c.tcdm(), 2);
  EXPECT_DOUBLE_EQ(c.l2(), 1);
  // op = ALU + FP families + branches (the paper's definition).
  EXPECT_DOUBLE_EQ(c.op(), 5);
  EXPECT_GT(c.sync, 0);
}

TEST(KirAnalysis, AvgParallelItersDefaultsToOne) {
  const Program p = wrap({ins(Op::Add, 1, 1, 1)});
  EXPECT_DOUBLE_EQ(avg_parallel_iters(p), 1.0);
}

TEST(KirAnalysis, AvgParallelItersAveragesRegions) {
  Program p = wrap({ins(Op::Add, 1, 1, 1)});
  p.regions.push_back(ParallelRegionMeta{0, 1, 100});
  p.regions.push_back(ParallelRegionMeta{1, 2, 300});
  EXPECT_DOUBLE_EQ(avg_parallel_iters(p), 200.0);
}

TEST(KirAnalysis, TransferSumsBufferBytes) {
  Program p = wrap({ins(Op::Add, 1, 1, 1)});
  p.buffers.push_back(BufferInfo{"a", DType::I32, MemSpace::Tcdm, 0, 100});
  p.buffers.push_back(BufferInfo{"b", DType::F32, MemSpace::L2, 0, 28});
  EXPECT_DOUBLE_EQ(transfer_bytes(p), 512.0);
}

TEST(KirAnalysis, HottestBlockPicksHeaviestInnermostLoop) {
  Program p = wrap({
      ins(Op::Add, 1, 1, 1),   // loop A body (trip 5)
      ins(Op::FMul, 2, 2, 2),  // loop B body (trip 100)
      ins(Op::FMac, 3, 1, 2),  // loop B body
  });
  p.loops.push_back(LoopMeta{1, 2, 5, false});
  p.loops.push_back(LoopMeta{2, 4, 100, false});
  const std::vector<Instr> block = hottest_block(p);
  ASSERT_EQ(block.size(), 2U);
  EXPECT_EQ(block[0].op, Op::FMul);
  EXPECT_EQ(block[1].op, Op::FMac);
}

TEST(KirAnalysis, HottestBlockStripsBranchesAndSync) {
  Program p = wrap({
      ins(Op::Add, 1, 1, 1),
      ins(Op::Bne, 0, 1, 2, 1),
      ins(Op::Barrier),
  });
  p.loops.push_back(LoopMeta{1, 4, 10, false});
  const std::vector<Instr> block = hottest_block(p);
  ASSERT_EQ(block.size(), 1U);
  EXPECT_EQ(block[0].op, Op::Add);
}

TEST(KirAnalysis, HottestBlockFallsBackToWholeProgram) {
  const Program p = wrap({ins(Op::Add, 1, 1, 1), ins(Op::Lw, 1, 2, 0, 0,
                                                     MemSpace::Tcdm)});
  const std::vector<Instr> block = hottest_block(p);
  EXPECT_EQ(block.size(), 2U);
}

}  // namespace
}  // namespace pulpc::kir
