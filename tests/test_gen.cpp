// Generator + admission-pipeline tests: determinism of (spec, seed) →
// kernel, every admission gate rejecting at the right stage with the
// right diagnostic, campaign-order dedupe, manifest round-trips through
// the runtime registry, and the mlkern suite clearing the full funnel.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "dsl/ast.hpp"
#include "dsl/builder.hpp"
#include "gen/admit.hpp"
#include "gen/generator.hpp"
#include "gen/spec.hpp"
#include "kernels/registry.hpp"

namespace pulpc::gen {
namespace {

namespace fs = std::filesystem;
using dsl::KernelBuilder;
using dsl::Val;
using kir::DType;

Val ic(std::int32_t v) { return dsl::make_const_i(v); }

GenSpec small_spec() {
  GenSpec spec;
  spec.count = 24;
  return spec;
}

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "pulpc_gen_" + name;
  fs::remove_all(dir);
  return dir;
}

// ---- generator determinism ----------------------------------------------

TEST(Generator, SameSpecSeedIndexIsByteIdentical) {
  GenSpec spec;
  spec.dtypes = "i32";  // "mixed" would make some candidates f32-only
  for (const std::size_t index : {0UL, 7UL, 91UL}) {
    const dsl::KernelSpec a =
        generate_kernel(spec, 42, index, DType::I32, 2048);
    const dsl::KernelSpec b =
        generate_kernel(spec, 42, index, DType::I32, 2048);
    EXPECT_EQ(render(a), render(b)) << "index " << index;
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GenSpec spec;
  spec.dtypes = "i32";
  const dsl::KernelSpec a = generate_kernel(spec, 1, 0, DType::I32, 2048);
  const dsl::KernelSpec b = generate_kernel(spec, 2, 0, DType::I32, 2048);
  EXPECT_NE(render(a), render(b));
}

TEST(Generator, StructureIsSharedAcrossInstantiations) {
  // The same candidate at another (dtype, size) must keep its name and
  // statement skeleton: neither axis consumes a random draw.
  const GenSpec spec;
  const kernels::TypeSupport types = kernel_types(spec, 42, 3);
  const DType t = types == kernels::TypeSupport::FloatOnly ? DType::F32
                                                           : DType::I32;
  const dsl::KernelSpec small = generate_kernel(spec, 42, 3, t, 512);
  const dsl::KernelSpec big = generate_kernel(spec, 42, 3, t, 2048);
  EXPECT_EQ(small.name, big.name);
  EXPECT_EQ(small.body.size(), big.body.size());
}

TEST(Campaign, ThreadCountDoesNotChangeTheAdmittedSet) {
  const GenSpec spec = small_spec();
  AdmitOptions serial;
  serial.threads = 1;
  AdmitOptions parallel;
  parallel.threads = 3;
  const CampaignResult a = run_campaign(spec, 42, serial);
  const CampaignResult b = run_campaign(spec, 42, parallel);
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].name, b.candidates[i].name);
    EXPECT_EQ(a.candidates[i].stage, b.candidates[i].stage);
    EXPECT_EQ(a.candidates[i].prog_hash, b.candidates[i].prog_hash);
    EXPECT_EQ(a.candidates[i].bucket, b.candidates[i].bucket);
  }
}

TEST(Campaign, DefaultSpecAdmitsCleanly) {
  // The small campaign is a miniature of the acceptance gate: every
  // rejection must be a dedupe, never a compile/verify/analyze failure —
  // the generator emits valid-by-construction kernels.
  const CampaignResult r = run_campaign(small_spec(), 42);
  EXPECT_GT(r.admitted(), 0U);
  EXPECT_EQ(r.rejected_at(Stage::Validate), 0U);
  EXPECT_EQ(r.rejected_at(Stage::Lower), 0U);
  EXPECT_EQ(r.rejected_at(Stage::Verify), 0U);
  EXPECT_EQ(r.rejected_at(Stage::Analyze), 0U);
}

// ---- admission funnel (hand-built defective kernels) --------------------

TEST(Admit, RacyStoreRejectsAtVerify) {
  KernelBuilder k("racy", "t", DType::I32, 512);
  auto b = k.buffer("b", 64);
  // Every core stores to b[0] without a critical section.
  k.par_for("i", ic(0), ic(64), [&](Val i) { k.store(b, ic(0), i); });
  const KernelVerdict v = admit_kernel(k.build(), GenSpec{});
  EXPECT_EQ(v.stage, Stage::Verify);
  EXPECT_NE(v.detail.find("race"), std::string::npos) << v.detail;
}

TEST(Admit, DataDependentTripCountRejectsAtAnalyze) {
  KernelBuilder k("unbounded", "t", DType::I32, 512);
  auto b = k.buffer("b", 64, dsl::InitKind::RandomPos);
  auto out = k.buffer("out", 64, dsl::InitKind::Zero);
  k.par_for("i", ic(0), ic(64), [&](Val i) {
    auto acc = k.decl("acc", ic(0));
    // Trip count read from memory: no static bound exists.
    k.for_("j", ic(0), k.load(b, i),
           [&](Val j) { k.assign(acc, acc + j); });
    k.store(out, i, acc);
  });
  AdmitOptions opt;
  opt.werror = false;  // reach the analyzer even if the verifier warns
  const KernelVerdict v = admit_kernel(k.build(), GenSpec{}, opt);
  EXPECT_EQ(v.stage, Stage::Analyze);
  EXPECT_NE(v.detail.find("unbounded"), std::string::npos) << v.detail;
}

TEST(Admit, DegenerateWorkRejectsAtAnalyze) {
  KernelBuilder k("tiny", "t", DType::I32, 512);
  auto b = k.buffer("b", 8);
  k.par_for("i", ic(0), ic(2), [&](Val i) { k.store(b, i, i); });
  GenSpec gates;
  gates.min_cycles = 100000;  // far above anything a 2-trip loop costs
  const KernelVerdict v = admit_kernel(k.build(), gates);
  EXPECT_EQ(v.stage, Stage::Analyze);
  EXPECT_NE(v.detail.find("cycle"), std::string::npos) << v.detail;
}

TEST(Admit, SerialOnlyKernelRejectsAtAnalyze) {
  KernelBuilder k("serial", "t", DType::I32, 512);
  auto b = k.buffer("b", 64);
  k.for_("i", ic(0), ic(64), [&](Val i) { k.store(b, i, i); });
  const KernelVerdict v = admit_kernel(k.build(), GenSpec{});
  EXPECT_EQ(v.stage, Stage::Analyze);
  EXPECT_NE(v.detail.find("parallel"), std::string::npos) << v.detail;
}

TEST(Admit, SpmdViolationRejectsAtValidate) {
  KernelBuilder k("diverged", "t", DType::I32, 512);
  auto b = k.buffer("b", 64);
  k.par_for("i", ic(0), ic(64), [&](Val i) { k.decl("s", i); });
  // Replicated read of a scalar that diverged across cores.
  k.store(b, ic(0), dsl::Val{dsl::make_var("s", DType::I32)});
  const KernelVerdict v = admit_kernel(k.build(), GenSpec{});
  EXPECT_EQ(v.stage, Stage::Validate);
  EXPECT_FALSE(v.detail.empty());
}

TEST(Admit, AdmittedKernelCarriesDedupeKeys) {
  KernelBuilder k("good", "t", DType::I32, 2048);
  auto b = k.buffer("b", 256);
  auto out = k.buffer("out", 256, dsl::InitKind::Zero);
  k.par_for("i", ic(0), ic(256), [&](Val i) {
    auto v = k.decl("v", k.load(b, i));
    k.for_("r", ic(0), ic(16),
           [&](Val) { k.assign(v, v * ic(3) + ic(1)); });
    k.store(out, i, v);
  });
  const KernelVerdict v = admit_kernel(k.build(), GenSpec{});
  ASSERT_EQ(v.stage, Stage::Admitted) << v.detail;
  EXPECT_NE(v.prog_hash, 0U);
  EXPECT_FALSE(v.bucket.empty());
  EXPECT_GE(v.best_cores, 1U);
  EXPECT_GE(v.cycles_hi1, GenSpec{}.min_cycles);
}

// ---- dedupe --------------------------------------------------------------

TEST(Dedupe, DuplicateHashThenProfileRejectInOrder) {
  const auto candidate = [](std::size_t index, std::uint64_t hash,
                            const std::string& bucket) {
    Candidate c;
    c.index = index;
    c.name = "g42_" + std::to_string(index);
    c.stage = Stage::Admitted;
    c.prog_hash = hash;
    c.bucket = bucket;
    return c;
  };
  std::vector<Candidate> cs = {
      candidate(0, 0xaaa, "p1.c2"),
      candidate(1, 0xaaa, "p9.c4"),  // same program as #0
      candidate(2, 0xbbb, "p1.c2"),  // same cost profile as #0
      candidate(3, 0xccc, "p9.c4"),  // fresh on both axes
  };
  dedupe_candidates(cs);
  EXPECT_EQ(cs[0].stage, Stage::Admitted);
  EXPECT_EQ(cs[1].stage, Stage::DedupeHash);
  EXPECT_NE(cs[1].detail.find("aaa"), std::string::npos) << cs[1].detail;
  EXPECT_EQ(cs[2].stage, Stage::DedupeProfile);
  EXPECT_NE(cs[2].detail.find("p1.c2"), std::string::npos) << cs[2].detail;
  EXPECT_EQ(cs[3].stage, Stage::Admitted);
}

TEST(Dedupe, RejectedCandidatesDoNotClaimKeys) {
  Candidate bad;
  bad.index = 0;
  bad.stage = Stage::Verify;
  bad.prog_hash = 0x123;
  bad.bucket = "p1.c1";
  Candidate good;
  good.index = 1;
  good.stage = Stage::Admitted;
  good.prog_hash = 0x123;
  good.bucket = "p1.c1";
  std::vector<Candidate> cs = {bad, good};
  dedupe_candidates(cs);
  EXPECT_EQ(cs[0].stage, Stage::Verify);
  EXPECT_EQ(cs[1].stage, Stage::Admitted);
}

// ---- manifest + registry round-trip -------------------------------------

TEST(Manifest, CampaignRoundTripsThroughTheRegistry) {
  const GenSpec spec = small_spec();
  const CampaignResult result = run_campaign(spec, 42);
  ASSERT_GT(result.admitted(), 0U);
  const std::string dir = temp_dir("roundtrip");
  write_campaign(result, dir);
  EXPECT_TRUE(fs::exists(dir + "/manifest.txt"));
  EXPECT_TRUE(fs::exists(dir + "/rejects.txt"));

  const Manifest m = read_manifest(dir);
  EXPECT_EQ(m.seed, 42U);
  EXPECT_EQ(m.spec.to_string(), spec.to_string());
  EXPECT_EQ(m.kernels.size(), result.admitted());

  kernels::clear_runtime_kernels();
  const Manifest installed = install_generated(dir);
  EXPECT_EQ(installed.kernels.size(), m.kernels.size());
  // Installed kernels resolve through the ordinary registry lookup and
  // regenerate byte-identically from (spec, seed, index).
  const ManifestEntry& e = m.kernels.front();
  const kernels::KernelInfo& info = kernels::kernel_info(e.name);
  EXPECT_EQ(info.suite, "generated");
  const DType t = info.supports(DType::I32) ? DType::I32 : DType::F32;
  const dsl::KernelSpec via_registry =
      kernels::make_kernel(e.name, t, m.spec.sizes.front());
  const dsl::KernelSpec direct =
      generate_kernel(m.spec, m.seed, e.index, t, m.spec.sizes.front());
  EXPECT_EQ(render(via_registry), render(direct));

  const std::vector<core::SampleConfig> cfgs = generated_configs(m);
  EXPECT_GE(cfgs.size(), m.kernels.size() * m.spec.sizes.size());
  kernels::clear_runtime_kernels();
}

TEST(Manifest, ReadRejectsMissingAndForeignFiles) {
  EXPECT_THROW(read_manifest(temp_dir("missing")), std::runtime_error);
  const std::string dir = temp_dir("foreign");
  fs::create_directories(dir);
  std::ofstream(dir + "/manifest.txt") << "not a manifest\n";
  EXPECT_THROW(read_manifest(dir), std::runtime_error);
}

TEST(Registry, RuntimeNameCollisionThrows) {
  kernels::clear_runtime_kernels();
  std::vector<kernels::KernelInfo> dup;
  dup.push_back(kernels::KernelInfo{
      "gemm", "generated", kernels::TypeSupport::Both,
      [](DType t, std::uint32_t size) {
        return generate_kernel(GenSpec{}, 1, 0, t, size);
      }});
  EXPECT_THROW(kernels::register_runtime_kernels(std::move(dup)),
               std::invalid_argument);
  kernels::clear_runtime_kernels();
}

// ---- the mlkern suite ----------------------------------------------------

TEST(MlFamily, EveryKernelClearsTheFullFunnel) {
  for (const kernels::KernelInfo& k : kernels::ml_family()) {
    EXPECT_EQ(k.suite, "mlkern");
    for (const DType t : {DType::I32, DType::F32}) {
      if (!k.supports(t)) continue;
      for (const std::uint32_t bytes : {512U, 2048U}) {
        const KernelVerdict v =
            admit_kernel(k.factory(t, bytes), GenSpec{});
        EXPECT_EQ(v.stage, Stage::Admitted)
            << k.name << " " << (t == DType::I32 ? "i32" : "f32") << " "
            << bytes << ": " << to_string(v.stage) << " " << v.detail;
      }
    }
  }
}

// ---- spec parsing --------------------------------------------------------

TEST(Spec, ToStringParseRoundTrip) {
  GenSpec spec;
  spec.count = 99;
  spec.sizes = {1024};
  spec.dtypes = "both";
  spec.p_cyclic = 0.75;
  spec.min_cycles = 456;
  const GenSpec back = GenSpec::parse(spec.to_string());
  EXPECT_EQ(back.to_string(), spec.to_string());
}

TEST(Spec, ParseRejectsUnknownKeysAndBadRanges) {
  EXPECT_THROW((void)GenSpec::parse("bogus_knob=1"),
               std::invalid_argument);
  EXPECT_THROW((void)GenSpec::parse("p_cyclic=1.5"),
               std::invalid_argument);
  EXPECT_THROW((void)GenSpec::parse("count=0"), std::invalid_argument);
}

TEST(Spec, ParseAcceptsCommentsAndNewlines) {
  const GenSpec spec = GenSpec::parse(
      "# campaign overrides\ncount=12\nmax_chain=4 ; p_l2=0.5\n");
  EXPECT_EQ(spec.count, 12U);
  EXPECT_EQ(spec.max_chain, 4U);
  EXPECT_DOUBLE_EQ(spec.p_l2, 0.5);
}

}  // namespace
}  // namespace pulpc::gen
