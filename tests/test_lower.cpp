// Tests for the DSL -> KIR lowering: code shape, static metadata (trip
// counts, parallel regions), the SPMD serial-section policy, peepholes
// and error paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "dsl/builder.hpp"
#include "dsl/lower.hpp"
#include "dsl/validate.hpp"
#include "kir/analysis.hpp"

namespace pulpc::dsl {
namespace {

using kir::Op;

Val i(std::int32_t v) { return make_const_i(v); }

std::size_t count_op(const kir::Program& p, Op op) {
  return static_cast<std::size_t>(
      std::count_if(p.code.begin(), p.code.end(),
                    [op](const kir::Instr& ins) { return ins.op == op; }));
}

TEST(Lower, EmptyKernelStillVerifies) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const kir::Program p = lower(k.build());
  EXPECT_EQ(kir::verify(p), "");
  EXPECT_EQ(count_op(p, Op::MarkEnter), 1U);
  EXPECT_EQ(count_op(p, Op::MarkExit), 1U);
  EXPECT_EQ(count_op(p, Op::Halt), 1U);
}

TEST(Lower, BuffersAreAllocatedSequentiallyInTcdm) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  (void)k.buffer("a", 16);
  (void)k.buffer("b", 8);
  const kir::Program p = lower(k.build());
  ASSERT_EQ(p.buffers.size(), 2U);
  const LowerOptions opt;
  EXPECT_EQ(p.buffers[0].base, opt.tcdm_base);
  EXPECT_EQ(p.buffers[1].base, opt.tcdm_base + 64);
}

TEST(Lower, L2BuffersGoToL2Range) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  (void)k.buffer("a", 16, InitKind::Random, MemSpace::L2);
  const kir::Program p = lower(k.build());
  const LowerOptions opt;
  EXPECT_EQ(p.buffers[0].base, opt.l2_base);
  EXPECT_EQ(p.buffers[0].space, kir::MemSpace::L2);
}

TEST(Lower, TcdmOverflowRejected) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  (void)k.buffer("a", 17 * 1024);  // 68 KiB > 64 KiB
  EXPECT_THROW((void)lower(k.build()), std::runtime_error);
}

TEST(Lower, InitKindPropagatesToBufferInfo) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  (void)k.buffer("a", 8, InitKind::Ramp);
  (void)k.buffer("b", 8, InitKind::Zero);
  const kir::Program p = lower(k.build());
  EXPECT_EQ(p.buffers[0].init, kir::BufInit::Ramp);
  EXPECT_EQ(p.buffers[1].init, kir::BufInit::Zero);
}

TEST(Lower, SerialLoopRecordsStaticTrip) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 32);
  k.for_("i", i(2), i(30), [&](Val iv) { k.store(b, iv, iv); }, 4);
  const kir::Program p = lower(k.build());
  ASSERT_EQ(p.loops.size(), 1U);
  EXPECT_EQ(p.loops[0].trip, 7);  // ceil((30-2)/4)
  EXPECT_FALSE(p.loops[0].parallel);
  EXPECT_TRUE(p.regions.empty());
}

TEST(Lower, ParallelLoopRecordsRegionAndBarrier) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 32);
  k.par_for("i", i(0), i(32), [&](Val iv) { k.store(b, iv, iv); });
  const kir::Program p = lower(k.build());
  ASSERT_EQ(p.loops.size(), 1U);
  EXPECT_TRUE(p.loops[0].parallel);
  EXPECT_EQ(p.loops[0].trip, 32);
  ASSERT_EQ(p.regions.size(), 1U);
  EXPECT_EQ(p.regions[0].total_iters, 32);
  EXPECT_GE(count_op(p, Op::Barrier), 1U);  // implicit closing barrier
  // Static chunking computes ceil(n / ncores) with the divider.
  EXPECT_GE(count_op(p, Op::Div), 1U);
}

TEST(Lower, TriangularLoopTripUsesMidpointEstimate) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 128);
  k.par_for("i", i(0), i(16), [&](Val iv) {
    k.for_("j", i(0), iv, [&](Val jv) { k.store(b, jv, jv); });
  });
  const kir::Program p = lower(k.build());
  ASSERT_EQ(p.loops.size(), 2U);
  // Inner loop runs i times on average -> midpoint 8.
  const auto inner = std::find_if(
      p.loops.begin(), p.loops.end(),
      [](const kir::LoopMeta& l) { return !l.parallel; });
  ASSERT_NE(inner, p.loops.end());
  EXPECT_EQ(inner->trip, 8);
}

TEST(Lower, AvgwsReflectsParallelIterations) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 64);
  k.par_for("i", i(0), i(64), [&](Val iv) { k.store(b, iv, iv); });
  k.par_for("i2", i(0), i(16), [&](Val iv) { k.store(b, iv, iv); });
  const kir::Program p = lower(k.build());
  EXPECT_DOUBLE_EQ(kir::avg_parallel_iters(p), 40.0);
}

TEST(Lower, MacPeepholeFiresOnAccumulation) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 8);
  auto acc = k.decl("acc", i(0));
  k.for_("i", i(0), i(8), [&](Val iv) {
    k.assign(acc, acc + k.load(b, iv) * k.load(b, iv));
  });
  const kir::Program p = lower(k.build());
  EXPECT_GE(count_op(p, Op::Mac), 1U);
}

TEST(Lower, FmacPeepholeFiresForF32) {
  KernelBuilder k("k", "custom", DType::F32, 64);
  const Buf b = k.buffer("b", 8);
  auto acc = k.decl("acc", k.ec(0));
  k.for_("i", i(0), i(8), [&](Val iv) {
    k.assign(acc, k.load(b, iv) * k.load(b, iv) + acc);  // either order
  });
  const kir::Program p = lower(k.build());
  EXPECT_GE(count_op(p, Op::FMac), 1U);
}

TEST(Lower, ImmediateFormsUsedForConstantOperands) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 8);
  k.par_for("i", i(0), i(8), [&](Val iv) {
    k.store(b, iv, (iv + i(3)) * i(5));
  });
  const kir::Program p = lower(k.build());
  EXPECT_GE(count_op(p, Op::AddI), 1U);
  EXPECT_GE(count_op(p, Op::MulI), 1U);
}

TEST(Lower, IntDivisionUsesDividerOp) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 8);
  k.par_for("i", i(0), i(8), [&](Val iv) {
    k.store(b, iv, k.load(b, iv) / i(3) + k.load(b, iv) % i(3));
  });
  const kir::Program p = lower(k.build());
  EXPECT_GE(count_op(p, Op::Div), 2U);  // chunking + payload
  EXPECT_GE(count_op(p, Op::Rem), 1U);
}

TEST(Lower, F32DivisionUsesFpDivider) {
  KernelBuilder k("k", "custom", DType::F32, 64);
  const Buf b = k.buffer("b", 8);
  k.par_for("i", i(0), i(8), [&](Val iv) {
    k.store(b, iv, k.load(b, iv) / k.ec(3));
  });
  const kir::Program p = lower(k.build());
  EXPECT_GE(count_op(p, Op::FDiv), 1U);
}

TEST(Lower, CriticalSectionBracketsBody) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 8);
  k.par_for("i", i(0), i(8), [&](Val iv) {
    k.critical([&] { k.store(b, i(0), k.load(b, i(0)) + iv); });
  });
  const kir::Program p = lower(k.build());
  EXPECT_EQ(count_op(p, Op::CritEnter), 1U);
  EXPECT_EQ(count_op(p, Op::CritExit), 1U);
}

TEST(Lower, SerialStoreSectionIsMasterGuarded) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 8);
  k.store(b, i(0), i(42));
  const kir::Program p = lower(k.build());
  // Guard: bne cid, zero, skip ... barrier.
  EXPECT_GE(count_op(p, Op::Bne), 1U);
  EXPECT_GE(count_op(p, Op::Barrier), 1U);
}

TEST(Lower, PureScalarLoopIsNotGuarded) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  auto acc = k.decl("acc", i(0));
  k.for_("i", i(0), i(8), [&](Val iv) { k.assign(acc, acc + iv); });
  const kir::Program p = lower(k.build());
  // No stores -> replicated on all cores: no guard branch, no barrier.
  EXPECT_EQ(count_op(p, Op::Barrier), 0U);
  EXPECT_EQ(count_op(p, Op::Bne), 0U);
}

TEST(Lower, ExplicitBarrierInsideSerialStatementRejected) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 8);
  k.for_("i", i(0), i(4), [&](Val iv) {
    k.store(b, iv, iv);
    k.barrier();
  });
  EXPECT_THROW((void)lower(k.build()), std::invalid_argument);
}

TEST(Lower, NestedParallelismRejected) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 8);
  k.par_for("i", i(0), i(4), [&](Val) {
    k.par_for("j", i(0), i(4), [&](Val jv) { k.store(b, jv, jv); });
  });
  EXPECT_THROW((void)lower(k.build()), std::invalid_argument);
}

TEST(Lower, UnknownScalarRejected) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 8);
  k.store(b, i(0), make_var("ghost", DType::I32));
  EXPECT_THROW((void)lower(k.build()), std::invalid_argument);
}

TEST(Lower, UnknownBufferRejected) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  k.store(Buf{"ghost", DType::I32, 8}, i(0), i(1));
  EXPECT_THROW((void)lower(k.build()), std::invalid_argument);
}

TEST(Lower, DeepExpressionsDoNotExhaustTemporaries) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 32);
  k.par_for("i", i(0), i(8), [&](Val iv) {
    // 16 loads in one expression: requires temp recycling.
    Val sum = k.load(b, iv);
    for (int t = 1; t < 16; ++t) {
      sum = sum + k.load(b, iv + i(t));
    }
    k.store(b, iv, sum);
  });
  const kir::Program p = lower(k.build());
  EXPECT_EQ(kir::verify(p), "");
}

TEST(Lower, MemoryOpsCarrySpaceAnnotations) {
  KernelBuilder k("k", "custom", DType::I32, 4096);
  const Buf a = k.buffer("a", 8);
  const Buf b = k.buffer("b", 8, InitKind::Random, MemSpace::L2);
  k.par_for("i", i(0), i(8), [&](Val iv) {
    k.store(a, iv, k.load(b, iv));
  });
  const kir::Program p = lower(k.build());
  bool saw_l2_load = false;
  bool saw_tcdm_store = false;
  for (const kir::Instr& ins : p.code) {
    if (ins.op == Op::Lw && ins.mem == kir::MemSpace::L2) saw_l2_load = true;
    if (ins.op == Op::Sw && ins.mem == kir::MemSpace::Tcdm) {
      saw_tcdm_store = true;
    }
  }
  EXPECT_TRUE(saw_l2_load);
  EXPECT_TRUE(saw_tcdm_store);
}

TEST(Lower, SteppedParallelLoopScalesBounds) {
  KernelBuilder k("k", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 32);
  k.par_for("i", i(0), i(32), [&](Val iv) { k.store(b, iv, iv); }, 2);
  const kir::Program p = lower(k.build());
  ASSERT_EQ(p.loops.size(), 1U);
  EXPECT_EQ(p.loops[0].trip, 16);
  EXPECT_EQ(p.regions[0].total_iters, 16);
}

TEST(Lower, FloatComparisonLowersToFpCompare) {
  KernelBuilder k("k", "custom", DType::F32, 64);
  const Buf b = k.buffer("b", 8);
  k.par_for("i", i(0), i(8), [&](Val iv) {
    k.if_(k.load(b, iv) > k.ec(0), [&] { k.store(b, iv, k.ec(1)); });
  });
  const kir::Program p = lower(k.build());
  EXPECT_GE(count_op(p, Op::FLt), 1U);
}

TEST(Lower, DmaStatementsLowerToDmaOps) {
  KernelBuilder k("k", "custom", DType::I32, 4096);
  const Buf big = k.buffer("big", 64, InitKind::Random, MemSpace::L2);
  const Buf buf = k.buffer("buf", 64, InitKind::Zero);
  k.dma_copy(buf, big, 64);
  k.dma_wait();
  const kir::Program p = lower(k.build());
  EXPECT_EQ(count_op(p, Op::DmaStart), 1U);
  EXPECT_EQ(count_op(p, Op::DmaWait), 1U);
}

// Builder misuse must name the kernel it came from: a generator campaign
// constructs hundreds of kernels, and a bare "step must be positive"
// gives no way to find the offender (regression for the gen fuzz pass).
TEST(Lower, BuilderErrorsNameTheKernel) {
  try {
    KernelBuilder k("step0", "custom", DType::I32, 64);
    const Buf b = k.buffer("b", 32);
    k.par_for("i", i(0), i(32), [&](Val iv) { k.store(b, iv, iv); }, 0);
    FAIL() << "step=0 did not throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("kernel 'step0'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("for(i)"), std::string::npos) << msg;
  }
}

TEST(Lower, ZeroElementBufferNamesKernelAndBuffer) {
  try {
    KernelBuilder k("zb", "custom", DType::I32, 64);
    (void)k.buffer("b", 0);
    FAIL() << "zero-element buffer did not throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("kernel 'zb'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("buffer b"), std::string::npos) << msg;
  }
}

TEST(Lower, RedeclaredBufferNamesKernel) {
  KernelBuilder k("dup", "custom", DType::I32, 64);
  (void)k.buffer("b", 16);
  try {
    (void)k.buffer("b", 16);
    FAIL() << "redeclared buffer did not throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("kernel 'dup'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("redeclared"), std::string::npos) << msg;
  }
}

TEST(Lower, UnnamedKernelFailsValidation) {
  // An unnamed kernel used to lower silently; it cannot be keyed by the
  // registry, the artifact store, or a campaign manifest.
  KernelBuilder k("", "custom", DType::I32, 64);
  const Buf b = k.buffer("b", 16);
  k.par_for("i", i(0), i(16), [&](Val iv) { k.store(b, iv, iv); });
  const KernelSpec spec = k.build();
  const std::string err = validate_spec(spec);
  EXPECT_NE(err.find("<unnamed>"), std::string::npos) << err;
  EXPECT_NE(err.find("no name"), std::string::npos) << err;
}

}  // namespace
}  // namespace pulpc::dsl
