// Seeded-defect corpus for the KIR verifier: each kernel carries exactly
// one injected SPMD defect (missing/divergent barrier, chunk-overlap
// race, uniform-index race, off-by-one and negative-index bounds,
// use-before-def, dead store) and the test asserts the defect is flagged
// by the *right* pass. The closing test sweeps the whole kernel registry
// and requires it to verify clean — the invariant `pulpclass lint --all
// --werror` enforces in CI.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/pipeline.hpp"
#include "dsl/builder.hpp"
#include "dsl/lower.hpp"
#include "dsl/validate.hpp"
#include "kernels/registry.hpp"
#include "kir/verify.hpp"

namespace pulpc::kir {
namespace {

using dsl::KernelBuilder;
using dsl::Val;

/// True when the report holds a diagnostic of `sev` attributed to `pass`.
bool flagged(const VerifyReport& r, const std::string& pass, Severity sev) {
  for (const Diagnostic& d : r.diags) {
    if (d.pass == pass && d.severity == sev) return true;
  }
  return false;
}

/// True when every error-severity diagnostic is attributed to `pass`.
bool errors_only_from(const VerifyReport& r, const std::string& pass) {
  for (const Diagnostic& d : r.diags) {
    if (d.severity == Severity::Error && d.pass != pass) return false;
  }
  return true;
}

// ---- seeded defect 1: parallel region without its closing barrier -----

TEST(VerifySeeded, MissingRegionBarrier) {
  KernelBuilder k("seed_missing_barrier", "custom", DType::I32, 256);
  const dsl::Buf a = k.buffer("a", 64);
  k.par_for("i", KernelBuilder::ic(0), KernelBuilder::ic(64),
            [&](Val i) { k.store(a, i, k.load(a, i) + KernelBuilder::ic(1)); });
  Program prog = dsl::lower(k.build());
  ASSERT_FALSE(prog.regions.empty());
  // Lowering closes every parallel region with a barrier; knock it out.
  const std::uint32_t closing = prog.regions[0].end - 1;
  ASSERT_EQ(prog.code[closing].op, Op::Barrier);
  prog.code[closing] = Instr{.op = Op::Li, .rd = 30, .imm = 0};

  const VerifyReport r = verify_program(prog);
  EXPECT_TRUE(flagged(r, "barrier", Severity::Error)) << r.to_string();
  EXPECT_TRUE(errors_only_from(r, "barrier")) << r.to_string();
}

// ---- seeded defect 2: barrier under divergent control ------------------

TEST(VerifySeeded, DivergentBarrier) {
  KernelBuilder k("seed_divergent_barrier", "custom", DType::I32, 256);
  (void)k.buffer("a", 64);
  // if (core_id() == 0) barrier(): core 0 waits forever on the others.
  k.if_(KernelBuilder::core_id() == KernelBuilder::ic(0),
        [&] { k.barrier(); });
  const Program prog = dsl::lower(k.build());

  const VerifyReport r = verify_program(prog);
  EXPECT_TRUE(flagged(r, "barrier", Severity::Error)) << r.to_string();
  EXPECT_TRUE(errors_only_from(r, "barrier")) << r.to_string();
}

// ---- seeded defect 3: read-write race across adjacent chunks -----------

TEST(VerifySeeded, ChunkOverlapRace) {
  KernelBuilder k("seed_chunk_race", "custom", DType::I32, 256);
  const dsl::Buf a = k.buffer("a", 64);
  // a[i] = a[i + 1]: the first iteration of chunk c+1 writes the element
  // the last iteration of chunk c reads, with no barrier between them.
  k.par_for("i", KernelBuilder::ic(0), KernelBuilder::ic(63),
            [&](Val i) { k.store(a, i, k.load(a, i + KernelBuilder::ic(1))); });
  const Program prog = dsl::lower(k.build());

  const VerifyReport r = verify_program(prog);
  EXPECT_TRUE(flagged(r, "race", Severity::Error)) << r.to_string();
  EXPECT_TRUE(errors_only_from(r, "race")) << r.to_string();
}

// ---- seeded defect 4: unguarded write-write race on one element --------

TEST(VerifySeeded, UniformIndexRace) {
  KernelBuilder k("seed_uniform_race", "custom", DType::I32, 256);
  const dsl::Buf a = k.buffer("a", 64);
  // Every core hammers a[0] without a critical section.
  k.par_for("i", KernelBuilder::ic(0), KernelBuilder::ic(64),
            [&](Val i) { k.store(a, KernelBuilder::ic(0), i); });
  const Program prog = dsl::lower(k.build());

  const VerifyReport r = verify_program(prog);
  EXPECT_TRUE(flagged(r, "race", Severity::Error)) << r.to_string();
  EXPECT_TRUE(errors_only_from(r, "race")) << r.to_string();
}

// ---- seeded defect 5: off-by-one upper bound ---------------------------

TEST(VerifySeeded, OffByOneBounds) {
  KernelBuilder k("seed_off_by_one", "custom", DType::I32, 256);
  const dsl::Buf a = k.buffer("a", 64);
  // Classic <= bound bug: iteration 64 stores one element past the end.
  k.par_for("i", KernelBuilder::ic(0), KernelBuilder::ic(65),
            [&](Val i) { k.store(a, i, i); });
  const Program prog = dsl::lower(k.build());

  const VerifyReport r = verify_program(prog);
  EXPECT_TRUE(flagged(r, "bounds", Severity::Error)) << r.to_string();
  EXPECT_TRUE(errors_only_from(r, "bounds")) << r.to_string();
}

// ---- seeded defect 6: negative index on the first iteration ------------

TEST(VerifySeeded, NegativeIndexBounds) {
  KernelBuilder k("seed_negative_index", "custom", DType::I32, 256);
  const dsl::Buf a = k.buffer("a", 64);
  const dsl::Buf b = k.buffer("b", 64);
  // b[i] = a[i - 1]: iteration 0 reads one element before the buffer.
  k.par_for("i", KernelBuilder::ic(0), KernelBuilder::ic(64),
            [&](Val i) { k.store(b, i, k.load(a, i - KernelBuilder::ic(1))); });
  const Program prog = dsl::lower(k.build());

  const VerifyReport r = verify_program(prog);
  EXPECT_TRUE(flagged(r, "bounds", Severity::Error)) << r.to_string();
  EXPECT_TRUE(errors_only_from(r, "bounds")) << r.to_string();
}

// ---- seeded defect 7: register no path ever defines --------------------

TEST(VerifySeeded, UseBeforeDef) {
  Program prog;
  prog.name = "seed_use_before_def";
  prog.code = {
      Instr{.op = Op::Li, .rd = 0, .imm = 0},
      Instr{.op = Op::MarkEnter},
      // r4 has no definition anywhere in the program.
      Instr{.op = Op::Add, .rd = 3, .rs1 = 4, .rs2 = 4},
      Instr{.op = Op::MarkExit},
      Instr{.op = Op::Halt},
  };
  ASSERT_EQ(verify(prog), "");

  const VerifyReport r = verify_program(prog);
  EXPECT_TRUE(flagged(r, "reguse", Severity::Error)) << r.to_string();
  EXPECT_TRUE(errors_only_from(r, "reguse")) << r.to_string();
}

// ---- seeded defect 8: result computed and thrown away ------------------

TEST(VerifySeeded, DeadStore) {
  Program prog;
  prog.name = "seed_dead_store";
  prog.code = {
      Instr{.op = Op::Li, .rd = 0, .imm = 0},
      Instr{.op = Op::MarkEnter},
      Instr{.op = Op::Li, .rd = 3, .imm = 42},  // never read again
      Instr{.op = Op::MarkExit},
      Instr{.op = Op::Halt},
  };
  ASSERT_EQ(verify(prog), "");

  const VerifyReport r = verify_program(prog);
  EXPECT_TRUE(flagged(r, "reguse", Severity::Warning)) << r.to_string();
  EXPECT_EQ(r.errors(), 0U) << r.to_string();
}

// ---- guarded/critical variants stay clean ------------------------------

TEST(VerifySeeded, CriticalSectionSuppressesUniformRace) {
  KernelBuilder k("seed_critical_ok", "custom", DType::I32, 256);
  const dsl::Buf a = k.buffer("a", 64);
  k.par_for("i", KernelBuilder::ic(0), KernelBuilder::ic(64), [&](Val i) {
    k.critical([&] { k.store(a, KernelBuilder::ic(0), i); });
  });
  const Program prog = dsl::lower(k.build());

  const VerifyReport r = verify_program(prog);
  EXPECT_EQ(r.errors(), 0U) << r.to_string();
}

// ---- structured spec validation ----------------------------------------

TEST(VerifySpmd, ValidateSpecDiagsCarryStatementPaths) {
  KernelBuilder k("seed_spmd", "custom", DType::I32, 256);
  (void)k.buffer("a", 16);
  const Val s = k.decl("s", KernelBuilder::ic(0));
  k.par_for("i", KernelBuilder::ic(0), KernelBuilder::ic(16),
            [&](Val i) { k.assign(s, i); });
  // `s` diverged across cores inside the region; reading it in
  // replicated context is the classic missing-reduction bug.
  (void)k.decl("t", s + KernelBuilder::ic(1));
  const dsl::KernelSpec spec = k.build();

  const std::vector<Diagnostic> diags = dsl::validate_spec_diags(spec);
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].pass, "spmd");
  EXPECT_EQ(diags[0].severity, Severity::Error);
  EXPECT_NE(diags[0].location.find("decl(t)"), std::string::npos)
      << diags[0].location;
  // The string shim keeps its non-empty contract.
  EXPECT_NE(dsl::validate_spec(spec), "");
}

// ---- wiring: lower() and the pipeline refuse defective kernels ---------

TEST(VerifyWiring, LowerOptionVerifyThrowsOnDefect) {
  KernelBuilder k("seed_lower_verify", "custom", DType::I32, 256);
  (void)k.buffer("a", 64);
  k.if_(KernelBuilder::core_id() == KernelBuilder::ic(0),
        [&] { k.barrier(); });
  const dsl::KernelSpec spec = k.build();

  dsl::LowerOptions opt;
  opt.verify = true;
  EXPECT_THROW((void)dsl::lower(spec, opt), std::runtime_error);
  // Without the flag the defect lowers fine (the pipeline verifies).
  EXPECT_NO_THROW((void)dsl::lower(spec));
}

TEST(VerifyWiring, PipelineRefusesToLabelDefectiveProgram) {
  Program prog;
  prog.name = "seed_pipeline_refuse";
  prog.code = {
      Instr{.op = Op::Li, .rd = 0, .imm = 0},
      Instr{.op = Op::MarkEnter},
      Instr{.op = Op::Add, .rd = 3, .rs1 = 4, .rs2 = 4},
      Instr{.op = Op::MarkExit},
      Instr{.op = Op::Halt},
  };
  ASSERT_EQ(verify(prog), "");

  const core::SampleConfig cfg{"seed_pipeline_refuse", DType::I32, 256};
  core::BuildOptions opt;
  opt.max_cores = 2;
  EXPECT_THROW(
      (void)core::build_sample_from_program(prog, cfg, "custom", opt),
      std::runtime_error);
  // Opting out of verification labels the (well-defined: registers are
  // zero-initialised) program normally.
  opt.verify = false;
  EXPECT_NO_THROW(
      (void)core::build_sample_from_program(prog, cfg, "custom", opt));
}

// ---- the whole registry verifies clean ---------------------------------

TEST(VerifyRegistry, AllLoweredKernelsVerifyClean) {
  for (const kernels::KernelInfo& info : kernels::all_kernels()) {
    for (const DType t : {DType::I32, DType::F32}) {
      if (!info.supports(t)) continue;
      for (const std::uint32_t bytes : kernels::dataset_sizes()) {
        const Program prog =
            dsl::lower(kernels::make_kernel(info.name, t, bytes));
        const VerifyReport r = verify_program(prog);
        EXPECT_EQ(r.errors(), 0U)
            << info.name << "/" << to_string(t) << "/" << bytes << "\n"
            << r.to_string();
        EXPECT_EQ(r.warnings(), 0U)
            << info.name << "/" << to_string(t) << "/" << bytes << "\n"
            << r.to_string();
      }
    }
  }
}

}  // namespace
}  // namespace pulpc::kir
