// MLP-classifier tests: learning capacity on linear and non-linear
// problems (XOR needs the hidden layer), probability sanity,
// standardisation invariance, determinism and error paths.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "ml/mlp.hpp"

namespace pulpc::ml {
namespace {

Matrix make_matrix(const std::vector<std::vector<double>>& rows) {
  Matrix m;
  m.rows = rows.size();
  m.cols = rows.empty() ? 0 : rows[0].size();
  for (const auto& r : rows) {
    m.data.insert(m.data.end(), r.begin(), r.end());
  }
  return m;
}

double accuracy(const std::vector<int>& a, const std::vector<int>& b) {
  std::size_t ok = 0;
  for (std::size_t i = 0; i < a.size(); ++i) ok += a[i] == b[i] ? 1 : 0;
  return double(ok) / double(a.size());
}

struct Problem {
  Matrix x;
  std::vector<int> y;
};

Problem blobs(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> g(0, 0.5);
  Problem p;
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < n; ++i) {
    const int c = i % 3;
    rows.push_back({c * 3.0 + g(rng), (c == 1 ? 3.0 : 0.0) + g(rng)});
    p.y.push_back(c + 1);
  }
  p.x = make_matrix(rows);
  return p;
}

Problem xor_problem(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0, 1);
  Problem p;
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < n; ++i) {
    const double a = u(rng);
    const double b = u(rng);
    rows.push_back({a, b});
    p.y.push_back(((a > 0.5) != (b > 0.5)) ? 2 : 1);
  }
  p.x = make_matrix(rows);
  return p;
}

TEST(Mlp, LearnsLinearlySeparableBlobs) {
  const Problem p = blobs(300, 1);
  MlpClassifier mlp;
  mlp.fit(p.x, p.y);
  EXPECT_GT(accuracy(mlp.predict(p.x), p.y), 0.97);
  EXPECT_LT(mlp.final_loss(), 0.2);
}

TEST(Mlp, LearnsXorWhichNeedsTheHiddenLayer) {
  const Problem p = xor_problem(400, 2);
  MlpParams params;
  params.hidden = 16;
  params.epochs = 600;
  MlpClassifier mlp(params);
  mlp.fit(p.x, p.y);
  EXPECT_GT(accuracy(mlp.predict(p.x), p.y), 0.95);
}

TEST(Mlp, ProbabilitiesAreADistribution) {
  const Problem p = blobs(150, 3);
  MlpClassifier mlp;
  mlp.fit(p.x, p.y);
  const std::vector<double> probs =
      mlp.predict_proba(std::vector<double>{0.0, 0.0});
  ASSERT_EQ(probs.size(), 3U);
  double sum = 0;
  for (const double v : probs) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Mlp, ClassesAreSortedUniqueLabels) {
  const Matrix x = make_matrix({{0}, {1}, {2}, {3}});
  const std::vector<int> y = {7, 2, 7, 5};
  MlpParams params;
  params.epochs = 10;
  MlpClassifier mlp(params);
  mlp.fit(x, y);
  EXPECT_EQ(mlp.classes(), (std::vector<int>{2, 5, 7}));
}

TEST(Mlp, StandardisationHandlesWildFeatureScales) {
  // Same blobs, but feature 0 scaled by 1e6: without standardisation SGD
  // would diverge.
  Problem p = blobs(300, 4);
  for (std::size_t r = 0; r < p.x.rows; ++r) {
    p.x.data[r * p.x.cols] *= 1e6;
  }
  MlpClassifier mlp;
  mlp.fit(p.x, p.y);
  EXPECT_GT(accuracy(mlp.predict(p.x), p.y), 0.95);
}

TEST(Mlp, ConstantFeatureDoesNotProduceNans) {
  Problem p = blobs(100, 5);
  for (std::size_t r = 0; r < p.x.rows; ++r) {
    p.x.data[r * p.x.cols + 1] = 42.0;  // constant column
  }
  MlpClassifier mlp;
  mlp.fit(p.x, p.y);
  for (const double v :
       mlp.predict_proba(std::vector<double>{0.0, 42.0})) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Mlp, DeterministicForFixedSeed) {
  const Problem p = blobs(200, 6);
  MlpParams params;
  params.seed = 11;
  MlpClassifier a(params);
  MlpClassifier b(params);
  a.fit(p.x, p.y);
  b.fit(p.x, p.y);
  EXPECT_EQ(a.predict(p.x), b.predict(p.x));
  EXPECT_DOUBLE_EQ(a.final_loss(), b.final_loss());
}

TEST(Mlp, RowSubsetTrainingIgnoresOtherRows) {
  Problem p = blobs(120, 7);
  std::vector<int> noisy = p.y;
  for (std::size_t i = 90; i < noisy.size(); ++i) noisy[i] = 1;
  std::vector<std::size_t> subset(90);
  std::iota(subset.begin(), subset.end(), 0);
  MlpClassifier mlp;
  mlp.fit(p.x, noisy, subset);
  // Evaluate on the clean prefix.
  std::size_t ok = 0;
  for (std::size_t i = 0; i < 90; ++i) {
    ok += mlp.predict(std::span(p.x.row(i), p.x.cols)) == p.y[i] ? 1 : 0;
  }
  EXPECT_GT(double(ok) / 90.0, 0.95);
}

TEST(Mlp, ErrorsOnBadInput) {
  MlpClassifier mlp;
  Matrix x = make_matrix({{1.0}});
  EXPECT_THROW(mlp.fit(x, {}), std::invalid_argument);
  EXPECT_THROW((void)mlp.predict(std::vector<double>{1.0}),
               std::logic_error);
}

}  // namespace
}  // namespace pulpc::ml
