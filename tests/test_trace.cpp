// Trace-format tests: writer output, regex line parsing, field
// extraction, listener routing and the analyser's bookkeeping.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "trace/listeners.hpp"
#include "trace/parser.hpp"
#include "trace/sinks.hpp"

namespace pulpc::trace {
namespace {

TEST(TraceWriter, FormatsCyclePathMessageLines) {
  std::ostringstream os;
  TextTraceWriter w(os);
  w.event(12, "/chip/cluster/pe0/insn", "add r1, r2, r3");
  w.event(13, "/chip/cluster/l1/bank4/trace", "read addr=0x10000010");
  EXPECT_EQ(os.str(),
            "12: /chip/cluster/pe0/insn: add r1, r2, r3\n"
            "13: /chip/cluster/l1/bank4/trace: read addr=0x10000010\n");
}

TEST(TraceWriter, MemorySinkRecordsEvents) {
  MemoryTraceSink sink;
  sink.event(1, "/a", "x");
  sink.event(2, "/b", "y");
  ASSERT_EQ(sink.events().size(), 2U);
  EXPECT_EQ(sink.events()[1].cycle, 2U);
  EXPECT_EQ(sink.events()[1].path, "/b");
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
}

TEST(TraceParser, ParsesWellFormedLines) {
  const auto ev = parse_line("42: /chip/cluster/pe3/insn: lw r1, 0(r10)");
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->cycle, 42U);
  EXPECT_EQ(ev->path, "/chip/cluster/pe3/insn");
  EXPECT_EQ(ev->message, "lw r1, 0(r10)");
}

TEST(TraceParser, ToleratesLeadingAndTrailingWhitespace) {
  const auto ev = parse_line("  7:   /p:   msg with spaces   ");
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->cycle, 7U);
  EXPECT_EQ(ev->message, "msg with spaces");
}

TEST(TraceParser, RejectsMalformedLines) {
  EXPECT_FALSE(parse_line("").has_value());
  EXPECT_FALSE(parse_line("# comment").has_value());
  EXPECT_FALSE(parse_line("notanumber: /p: m").has_value());
  EXPECT_FALSE(parse_line("42 /p m").has_value());
  EXPECT_FALSE(parse_line("42:").has_value());
}

TEST(TraceParser, RoundTripsWriterOutput) {
  std::ostringstream os;
  TextTraceWriter w(os);
  w.event(99, "/chip/cluster/pe7/trace", "state=cg");
  const auto ev = parse_line(os.str().substr(0, os.str().size() - 1));
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->cycle, 99U);
  EXPECT_EQ(ev->path, "/chip/cluster/pe7/trace");
  EXPECT_EQ(ev->message, "state=cg");
}

TEST(TraceParser, MessageFieldExtractsIntegers) {
  EXPECT_EQ(message_field("busy n=10", "n"), 10);
  EXPECT_EQ(message_field("start src=0x10 dst=0x20 words=128", "words"), 128);
  EXPECT_FALSE(message_field("busy n=10", "m").has_value());
  EXPECT_FALSE(message_field("busy", "n").has_value());
}

TEST(TraceAnalyser, RoutesEventsByExactPath) {
  BankListener bank("l1", 3);
  TraceAnalyser analyser;
  analyser.add(bank);
  analyser.feed(TraceEvent{1, "/chip/cluster/l1/bank3/trace", "read a"});
  analyser.feed(TraceEvent{2, "/chip/cluster/l1/bank4/trace", "read a"});
  analyser.feed(TraceEvent{3, "/chip/cluster/l1/bank3/trace", "write a"});
  analyser.feed(TraceEvent{4, "/chip/cluster/l1/bank3/trace", "conflict"});
  EXPECT_EQ(bank.stats().reads, 1U);
  EXPECT_EQ(bank.stats().writes, 1U);
  EXPECT_EQ(bank.stats().conflicts, 1U);
  EXPECT_EQ(analyser.unclaimed_events(), 1U);
}

TEST(TraceAnalyser, CountsMalformedLines) {
  TraceAnalyser analyser;
  analyser.feed_line("garbage");
  analyser.feed_line("1: /p: ok");  // unclaimed but well-formed
  EXPECT_EQ(analyser.malformed_lines(), 1U);
  EXPECT_EQ(analyser.unclaimed_events(), 1U);
}

TEST(TraceAnalyser, AnalyseStreamsWholeFiles) {
  BankListener bank("l2", 0);
  TraceAnalyser analyser;
  analyser.add(bank);
  std::istringstream in(
      "1: /chip/cluster/l2/bank0/trace: read addr=0x1c000000\n"
      "\n"
      "2: /chip/cluster/l2/bank0/trace: write addr=0x1c000004\n");
  EXPECT_EQ(analyser.analyse(in), 2U);
  EXPECT_EQ(bank.stats().reads, 1U);
  EXPECT_EQ(bank.stats().writes, 1U);
}

TEST(TraceListeners, FpuListenerSumsBusyCycles) {
  FpuListener fpu(2);
  TraceAnalyser analyser;
  analyser.add(fpu);
  analyser.feed(TraceEvent{1, "/chip/cluster/fpu2/trace", "busy n=1"});
  analyser.feed(TraceEvent{2, "/chip/cluster/fpu2/trace", "busy n=10"});
  EXPECT_EQ(fpu.stats().busy_cycles, 11U);
}

TEST(TraceListeners, DmaListenerAccumulatesBeats) {
  DmaListener dma;
  TraceAnalyser analyser;
  analyser.add(dma);
  analyser.feed(TraceEvent{
      1, "/chip/cluster/dma/trace",
      "start src=0x1c000000 dst=0x10000000 words=64"});
  analyser.feed(TraceEvent{70, "/chip/cluster/dma/trace", "done"});
  EXPECT_EQ(dma.stats().beats, 64U);
  EXPECT_EQ(dma.stats().busy_cycles, 64U);
}

TEST(TraceListeners, IcacheListenerCountsRefills) {
  IcacheListener ic;
  TraceAnalyser analyser;
  analyser.add(ic);
  analyser.feed(TraceEvent{1, "/chip/cluster/icache/trace", "refill line=0"});
  analyser.feed(TraceEvent{5, "/chip/cluster/icache/trace", "refill line=2"});
  EXPECT_EQ(ic.refills(), 2U);
}

TEST(TraceListeners, CoreListenerWindowsOnKernelMarkers) {
  CoreListener core(0);
  TraceAnalyser analyser;
  analyser.add(core);
  const std::string insn = "/chip/cluster/pe0/insn";
  const std::string tr = "/chip/cluster/pe0/trace";
  // Prologue before the kernel: must not be counted.
  analyser.feed(TraceEvent{1, insn, "li r0, 0"});
  analyser.feed(TraceEvent{1, tr, "state=alu"});
  analyser.feed(TraceEvent{2, insn, "kernel.enter"});
  analyser.feed(TraceEvent{3, insn, "add r1, r2, r3"});
  analyser.feed(TraceEvent{4, insn, "lw r1, 0(r10) !tcdm"});
  analyser.feed(TraceEvent{4, tr, "state=l1"});
  analyser.feed(TraceEvent{5, insn, "lw r1, 0(r10) !l2"});
  analyser.feed(TraceEvent{5, tr, "state=l2"});
  analyser.feed(TraceEvent{20, insn, "kernel.exit"});
  analyser.feed(TraceEvent{21, insn, "add r1, r1, r1"});  // after exit
  EXPECT_TRUE(core.saw_kernel());
  EXPECT_EQ(core.enter_cycle(), 2U);
  EXPECT_EQ(core.exit_cycle(), 20U);
  const sim::CoreStats st = core.stats();
  EXPECT_EQ(st.n_alu, 1U);
  EXPECT_EQ(st.n_l1, 1U);
  EXPECT_EQ(st.n_l2, 1U);
  EXPECT_EQ(st.n_sync, 2U);  // both markers
  EXPECT_EQ(st.instrs, 5U);
  // State durations clipped to [enter, exit): alu 2..3, l1 4, l2 5..19.
  EXPECT_EQ(st.cyc_alu, 2U);
  EXPECT_EQ(st.cyc_l1, 1U);
  EXPECT_EQ(st.cyc_l2, 15U);
}

TEST(TraceListeners, CoreListenerTracksStallStatesAsIdle) {
  CoreListener core(1);
  TraceAnalyser analyser;
  analyser.add(core);
  const std::string insn = "/chip/cluster/pe1/insn";
  const std::string tr = "/chip/cluster/pe1/trace";
  analyser.feed(TraceEvent{1, insn, "kernel.enter"});
  analyser.feed(TraceEvent{1, tr, "state=alu"});
  analyser.feed(TraceEvent{3, tr, "state=wait_stall"});
  analyser.feed(TraceEvent{6, tr, "state=cg"});
  analyser.feed(TraceEvent{9, insn, "kernel.exit"});
  const sim::CoreStats st = core.stats();
  EXPECT_EQ(st.cyc_alu, 2U);    // cycles 1-2
  EXPECT_EQ(st.cyc_wait, 3U);   // cycles 3-5
  EXPECT_EQ(st.cyc_cg, 3U);     // cycles 6-8
  EXPECT_EQ(st.idle_cycles, 3U);
}

TEST(TracePulpListeners, BuildsPaperHierarchy) {
  const sim::ClusterConfig cfg;
  PulpListeners pulp(cfg);
  TraceAnalyser analyser;
  pulp.register_on(analyser);
  // 8 cores x 2 paths + 16 + 32 banks + 4 FPUs + icache + dma routes all
  // exist; feed one event to a few corners and expect no unclaimed ones.
  analyser.feed(TraceEvent{1, "/chip/cluster/pe7/insn", "nop"});
  analyser.feed(TraceEvent{1, "/chip/cluster/l1/bank15/trace", "read a"});
  analyser.feed(TraceEvent{1, "/chip/cluster/l2/bank31/trace", "write a"});
  analyser.feed(TraceEvent{1, "/chip/cluster/fpu3/trace", "busy n=1"});
  analyser.feed(TraceEvent{1, "/chip/cluster/icache/trace", "refill line=1"});
  analyser.feed(TraceEvent{1, "/chip/cluster/dma/trace", "done"});
  EXPECT_EQ(analyser.unclaimed_events(), 0U);
  EXPECT_EQ(pulp.l1_bank(15).stats().reads, 1U);
  EXPECT_EQ(pulp.l2_bank(31).stats().writes, 1U);
}

}  // namespace
}  // namespace pulpc::trace
