// Segment store (v2) tests: hostile on-disk inputs (torn tails, flipped
// bytes, foreign fingerprints), duplicate-key last-write-wins across
// sealed segments, v1 -> v2 import with byte-identical relabel replay,
// diag lifecycle under compact, and serve-side cold-start priming.
//
// The tests do surgery on real .pseg files through the filesystem — the
// same way a crash, a bit flip, or a stray writer would — and assert the
// store degrades exactly like a corrupt v1 text file did: the damaged
// record fails to load (and is re-simulated upstream), everything else
// keeps working.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/artifacts.hpp"
#include "core/pipeline.hpp"
#include "serve/service.hpp"
#include "sim/stats.hpp"

namespace pulpc {
namespace {

namespace fs = std::filesystem;
using core::ArtifactStore;
using core::BuildOptions;
using core::SampleConfig;
using core::StoreFormat;

constexpr std::size_t kPage = 4096;  ///< segment header page (format v2)

// This suite pins formats explicitly or tests auto-detection on its own
// terms; an ambient PULPC_STORE_FORMAT (the CI replay matrix exports
// one) must not leak into the defaults under test.
const int kEnvGuard = [] {
  unsetenv("PULPC_STORE_FORMAT");
  return 0;
}();

std::string temp_store(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "pulpc_segstore_" + name;
  fs::remove_all(dir);
  return dir;
}

std::vector<SampleConfig> tiny_configs() {
  return {{"gemm", kir::DType::I32, 512},
          {"fir", kir::DType::F32, 512},
          {"fir", kir::DType::I32, 2048}};
}

BuildOptions tiny_options() {
  BuildOptions opt;
  opt.max_cores = 4;
  opt.threads = 1;
  opt.cache_path = "";
  opt.artifact_dir = "";
  return opt;
}

std::string csv_string(const ml::Dataset& ds) {
  std::ostringstream out;
  ds.save_csv(out);
  return out.str();
}

sim::RunStats real_stats(unsigned ncores = 2) {
  const SampleConfig cfg{"gemm", kir::DType::I32, 512};
  BuildOptions opt = tiny_options();
  opt.max_cores = ncores;
  return core::simulate_sample(core::lower_sample(cfg), cfg, opt).back();
}

/// The sealed segment files of a v2 store directory, sorted by name
/// (i.e. by sequence number — the store's own precedence order).
std::vector<fs::path> sealed_segments(const std::string& dir) {
  std::vector<fs::path> segs;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("seg-", 0) == 0 && e.path().extension() == ".pseg") {
      segs.push_back(e.path());
    }
  }
  std::sort(segs.begin(), segs.end());
  return segs;
}

/// Record slot stride of a sealed segment, recovered from the file
/// itself (header page + records * slot).
std::size_t slot_of(const fs::path& seg, std::size_t records) {
  return (static_cast<std::size_t>(fs::file_size(seg)) - kPage) / records;
}

void flip_byte(const fs::path& p, std::uintmax_t off) {
  std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f) << p;
  f.seekg(static_cast<std::streamoff>(off));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5A);
  f.seekp(static_cast<std::streamoff>(off));
  f.write(&c, 1);
}

TEST(SegmentStore, DefaultsToV2AndSurvivesReopenViaIndex) {
  const std::string dir = temp_store("reopen");
  const SampleConfig cfg{"gemm", kir::DType::I32, 512};
  const sim::RunStats stats = real_stats(2);
  {
    const ArtifactStore store(dir, sim::ClusterConfig{});
    EXPECT_EQ(store.format(), StoreFormat::v2);
    store.save(cfg, 2, 0x1234, stats);
    store.flush();
  }
  ASSERT_TRUE(fs::exists(dir + "/store.idx"));
  ASSERT_EQ(sealed_segments(dir).size(), 1U);

  // A fresh handle auto-detects v2 and answers from the mmap'd index.
  const ArtifactStore store(dir, sim::ClusterConfig{});
  EXPECT_EQ(store.format(), StoreFormat::v2);
  EXPECT_TRUE(store.contains(cfg, 2));
  sim::RunStats back;
  ASSERT_TRUE(store.load(cfg, 2, 0x1234, &back));
  EXPECT_EQ(back, stats);
  EXPECT_FALSE(store.load(cfg, 2, 0x9999, &back));  // wrong lowering
  EXPECT_FALSE(store.contains(cfg, 3));
}

TEST(SegmentStore, TruncatedTailDropsOnlyTheTornRecord) {
  const std::string dir = temp_store("torntail");
  const SampleConfig first{"gemm", kir::DType::I32, 512};
  const SampleConfig second{"fir", kir::DType::F32, 512};
  const sim::RunStats stats = real_stats(1);
  {
    const ArtifactStore store(dir, sim::ClusterConfig{});
    store.save(first, 1, 0x1, stats);
    store.save(second, 1, 0x1, stats);
    store.flush();
  }
  const std::vector<fs::path> segs = sealed_segments(dir);
  ASSERT_EQ(segs.size(), 1U);
  const std::size_t slot = slot_of(segs[0], 2);

  // Cut the second record in half — the shape of a crash mid-append.
  fs::resize_file(segs[0], kPage + slot + slot / 2);

  const ArtifactStore store(dir, sim::ClusterConfig{});
  sim::RunStats back;
  EXPECT_TRUE(store.load(first, 1, 0x1, &back));
  EXPECT_EQ(back, stats);
  EXPECT_FALSE(store.load(second, 1, 0x1, &back));
  const ArtifactStore::Info info = store.scan();
  EXPECT_EQ(info.valid, 1U);
  EXPECT_EQ(info.corrupt, 0U);  // the torn slot is gone, not corrupt
}

TEST(SegmentStore, FlippedChecksumByteFailsOnlyThatRecord) {
  const std::string dir = temp_store("bitflip");
  const SampleConfig first{"gemm", kir::DType::I32, 512};
  const SampleConfig second{"fir", kir::DType::F32, 512};
  const sim::RunStats stats = real_stats(1);
  {
    const ArtifactStore store(dir, sim::ClusterConfig{});
    store.save(first, 1, 0x1, stats);
    store.save(second, 1, 0x1, stats);
    store.flush();
  }
  const std::vector<fs::path> segs = sealed_segments(dir);
  ASSERT_EQ(segs.size(), 1U);

  // Record 0 (the first save) sits right after the header page; byte 48
  // is its stored checksum. The file size is unchanged, so the index
  // still trusts the segment — the damage must surface at load time.
  flip_byte(segs[0], kPage + 48);

  const ArtifactStore store(dir, sim::ClusterConfig{});
  sim::RunStats back;
  EXPECT_FALSE(store.load(first, 1, 0x1, &back));
  EXPECT_FALSE(store.contains(first, 1));
  EXPECT_TRUE(store.load(second, 1, 0x1, &back));
  EXPECT_EQ(back, stats);
  const ArtifactStore::Info info = store.scan();
  EXPECT_EQ(info.files, 2U);
  EXPECT_EQ(info.valid, 1U);
  EXPECT_EQ(info.corrupt, 1U);
  ASSERT_EQ(info.segments.size(), 1U);
  EXPECT_EQ(info.segments[0].corrupt, 1U);
}

TEST(SegmentStore, ForeignFingerprintIsRejectedWholesale) {
  const std::string dir = temp_store("foreign");
  const SampleConfig cfg{"gemm", kir::DType::I32, 512};
  {
    sim::ClusterConfig other;
    other.l2_latency = 99;  // different simulated platform, same geometry
    const ArtifactStore writer(dir, other, StoreFormat::v2);
    writer.save(cfg, 1, 0x1, real_stats(1));
    writer.flush();
  }
  const ArtifactStore store(dir, sim::ClusterConfig{}, StoreFormat::v2);
  sim::RunStats back;
  EXPECT_FALSE(store.load(cfg, 1, 0x1, &back));
  EXPECT_FALSE(store.contains(cfg, 1));
  const ArtifactStore::Info info = store.scan();
  EXPECT_EQ(info.files, 1U);
  EXPECT_EQ(info.foreign, 1U);
  EXPECT_EQ(info.valid, 0U);
}

TEST(SegmentStore, DuplicateKeyLastWriteWinsAcrossSegments) {
  const std::string dir = temp_store("lastwrite");
  const SampleConfig cfg{"gemm", kir::DType::I32, 512};
  const sim::RunStats old_stats = real_stats(2);
  sim::RunStats new_stats = old_stats;
  new_stats.total_cycles += 7;  // distinguishable, same shape

  {
    const ArtifactStore store(dir, sim::ClusterConfig{});
    store.save(cfg, 2, 0x1, old_stats);
    store.flush();  // seals segment #1
    store.save(cfg, 2, 0x1, new_stats);
    // Same handle: the overlay must already prefer the rewrite.
    sim::RunStats back;
    ASSERT_TRUE(store.load(cfg, 2, 0x1, &back));
    EXPECT_EQ(back, new_stats);
    store.flush();  // seals segment #2
  }
  ASSERT_EQ(sealed_segments(dir).size(), 2U);

  // Across a reopen the later segment (higher sequence number) wins.
  const ArtifactStore store(dir, sim::ClusterConfig{});
  sim::RunStats back;
  ASSERT_TRUE(store.load(cfg, 2, 0x1, &back));
  EXPECT_EQ(back, new_stats);

  // Compact folds both segments into one and keeps only the winner.
  EXPECT_EQ(store.compact(), 1U);
  ASSERT_TRUE(store.load(cfg, 2, 0x1, &back));
  EXPECT_EQ(back, new_stats);
  const ArtifactStore::Info info = store.scan();
  EXPECT_EQ(info.files, 1U);
  EXPECT_EQ(info.valid, 1U);
}

TEST(SegmentStore, CompactDropsDiagsOfDeadSamples) {
  const ArtifactStore store(temp_store("diagcompact"), sim::ClusterConfig{});
  const SampleConfig live{"gemm", kir::DType::I32, 512};
  const SampleConfig dead{"fir", kir::DType::F32, 512};
  store.save(live, 1, 0x1, real_stats(1));
  store.save_diag(live, "live report\n");
  store.save_diag(dead, "orphan report\n");  // no stats: sample is dead
  store.save_diag(live, "live report\n");    // identical text: no new entry
  ArtifactStore::Info info = store.scan();
  EXPECT_EQ(info.diags, 2U);

  // Compact keeps the live sample's report, drops the orphan.
  EXPECT_EQ(store.compact(), 1U);
  info = store.scan();
  EXPECT_EQ(info.diags, 1U);
  EXPECT_EQ(info.valid, 1U);
  sim::RunStats back;
  EXPECT_TRUE(store.load(live, 1, 0x1, &back));
}

TEST(SegmentStore, RelabelFromV2MatchesFreshBuildByteForByte) {
  const std::vector<SampleConfig> configs = tiny_configs();
  BuildOptions opt = tiny_options();
  const std::string fresh_csv =
      csv_string(core::build_dataset(configs, opt));

  const std::string dir = temp_store("relabel");
  {
    const ArtifactStore store(dir, opt.cluster, StoreFormat::v2);
    const core::StageReport r = core::populate_store(store, configs, opt);
    EXPECT_EQ(r.simulated_runs, configs.size() * opt.max_cores);
  }
  for (const unsigned threads : {1U, 4U}) {
    // A fresh handle per thread count: every replay is a cold open that
    // must resolve purely from the packed segments.
    const ArtifactStore store(dir, opt.cluster, StoreFormat::v2);
    BuildOptions ropt = tiny_options();
    ropt.threads = threads;
    core::StageReport report;
    ropt.stage_report = [&](const core::StageReport& r) { report = r; };
    const ml::Dataset replayed = core::relabel(store, configs, ropt);
    EXPECT_EQ(csv_string(replayed), fresh_csv) << threads << " threads";
    EXPECT_EQ(report.simulated_runs, 0U) << threads << " threads";
    EXPECT_EQ(report.replayed_runs, configs.size() * ropt.max_cores);
  }
}

TEST(SegmentStore, ImportedV1StoreReplaysByteForByte) {
  const std::vector<SampleConfig> configs = tiny_configs();
  BuildOptions opt = tiny_options();
  const std::string fresh_csv =
      csv_string(core::build_dataset(configs, opt));

  // Populate a v1 text store, with one verifier report riding along.
  const std::string dir = temp_store("import");
  {
    const ArtifactStore v1(dir, opt.cluster, StoreFormat::v1);
    (void)core::populate_store(v1, configs, opt);
    v1.save_diag(configs[0], "migrated report\n");
  }

  // Import in place: every artifact moves into packed segments, the text
  // files (and the sidecar) disappear.
  const ArtifactStore store(dir, opt.cluster, StoreFormat::v2);
  EXPECT_EQ(store.import_v1(), configs.size() * opt.max_cores);
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    EXPECT_NE(e.path().extension(), ".runstats") << e.path();
    EXPECT_NE(e.path().extension(), ".diag") << e.path();
  }
  ArtifactStore::Info info = store.scan();
  EXPECT_EQ(info.valid, configs.size() * opt.max_cores);
  EXPECT_EQ(info.diags, 1U);

  // Replay from the imported store: identical bytes, zero simulation,
  // at both thread counts.
  for (const unsigned threads : {1U, 4U}) {
    BuildOptions ropt = tiny_options();
    ropt.threads = threads;
    core::StageReport report;
    ropt.stage_report = [&](const core::StageReport& r) { report = r; };
    EXPECT_EQ(csv_string(core::relabel(store, configs, ropt)), fresh_csv)
        << threads << " threads";
    EXPECT_EQ(report.simulated_runs, 0U) << threads << " threads";
  }
  // A second import is a no-op, not a duplication.
  EXPECT_EQ(store.import_v1(), 0U);
}

TEST(SegmentStore, EnvironmentSelectsTheBackend) {
  const std::string dir = temp_store("envpick");
  ASSERT_EQ(setenv("PULPC_STORE_FORMAT", "v1", 1), 0);
  {
    const ArtifactStore store(dir, sim::ClusterConfig{});
    EXPECT_EQ(store.format(), StoreFormat::v1);
    store.save({"gemm", kir::DType::I32, 512}, 1, 0x1, real_stats(1));
  }
  unsetenv("PULPC_STORE_FORMAT");
  // Explicit format beats the environment; detection sees the v1 files.
  ASSERT_EQ(setenv("PULPC_STORE_FORMAT", "v2", 1), 0);
  const ArtifactStore pinned(dir, sim::ClusterConfig{}, StoreFormat::v1);
  EXPECT_EQ(pinned.format(), StoreFormat::v1);
  unsetenv("PULPC_STORE_FORMAT");
  const ArtifactStore detected(dir, sim::ClusterConfig{});
  EXPECT_EQ(detected.format(), StoreFormat::v1);
  EXPECT_TRUE(detected.contains({"gemm", kir::DType::I32, 512}, 1));
  EXPECT_THROW((void)core::parse_store_format("v3"), std::invalid_argument);
}

TEST(SegmentStore, PrimeFromStoreWarmsTheServiceCaches) {
  const std::vector<SampleConfig> configs = tiny_configs();
  BuildOptions opt = tiny_options();
  const ArtifactStore store(temp_store("prime"), opt.cluster,
                            StoreFormat::v2);
  (void)core::populate_store(store, configs, opt);

  ml::Dataset ds(core::dataset_columns(opt.max_cores));
  for (const SampleConfig& cfg : configs) {
    ds.add(core::build_sample(cfg, opt));
  }
  core::EnergyClassifier clf;
  clf.train(ds);

  serve::PredictionService::Options sopt;
  sopt.threads = 2;
  serve::PredictionService svc(std::move(clf), sopt);
  EXPECT_EQ(svc.prime_from_store(store), configs.size());

  // The very first live request for a stored sample is already a cache
  // hit — the point of priming before the listener opens.
  for (const SampleConfig& cfg : configs) {
    serve::Request req;
    req.kernel = cfg.kernel;
    req.dtype = cfg.dtype;
    req.size_bytes = cfg.size_bytes;
    const serve::Result r = svc.predict(req);
    EXPECT_TRUE(r.ok) << cfg.kernel;
    EXPECT_TRUE(r.cached) << cfg.kernel;
  }
  // A disabled store primes nothing.
  EXPECT_EQ(svc.prime_from_store(ArtifactStore{}), 0U);
}

}  // namespace
}  // namespace pulpc
