// Exhaustive tests for the shared operand model (kir::operands_of),
// which the machine-code analyser, the optimiser and register liveness
// all depend on. A wrong read/write set here silently corrupts
// dependency chains, DCE and LICM.
#include <gtest/gtest.h>

#include <set>

#include "kir/operands.hpp"

namespace pulpc::kir {
namespace {

Instr ins(Op op) {
  // Distinct register indices so reads/writes are distinguishable.
  return Instr{op, 3, 1, 2, 0, is_memory(op) ? MemSpace::Tcdm
                                             : MemSpace::None};
}

std::multiset<int> read_slots(const Instr& i) {
  const Operands o = operands_of(i);
  std::multiset<int> out;
  for (int r = 0; r < o.n_reads; ++r) out.insert(o.reads[r].slot());
  return out;
}

std::multiset<int> write_slots(const Instr& i) {
  const Operands o = operands_of(i);
  std::multiset<int> out;
  for (int w = 0; w < o.n_writes; ++w) out.insert(o.writes[w].slot());
  return out;
}

TEST(Operands, IntegerThreeOperandOps) {
  for (const Op op : {Op::Add, Op::Sub, Op::Mul, Op::Slt, Op::And, Op::Or,
                      Op::Xor, Op::Shl, Op::Shr, Op::Min, Op::Max, Op::Div,
                      Op::Rem}) {
    EXPECT_EQ(read_slots(ins(op)), (std::multiset<int>{1, 2}))
        << mnemonic(op);
    EXPECT_EQ(write_slots(ins(op)), (std::multiset<int>{3}))
        << mnemonic(op);
  }
}

TEST(Operands, MacReadsItsDestination) {
  EXPECT_EQ(read_slots(ins(Op::Mac)), (std::multiset<int>{1, 2, 3}));
  EXPECT_EQ(write_slots(ins(Op::Mac)), (std::multiset<int>{3}));
  // FMac: same shape, float file (slots offset by 32).
  EXPECT_EQ(read_slots(ins(Op::FMac)), (std::multiset<int>{33, 34, 35}));
  EXPECT_EQ(write_slots(ins(Op::FMac)), (std::multiset<int>{35}));
}

TEST(Operands, ImmediateFormsReadOneSource) {
  for (const Op op : {Op::AddI, Op::MulI, Op::AndI, Op::OrI, Op::XorI,
                      Op::ShlI, Op::ShrI, Op::SltI}) {
    EXPECT_EQ(read_slots(ins(op)), (std::multiset<int>{1})) << mnemonic(op);
    EXPECT_EQ(write_slots(ins(op)), (std::multiset<int>{3}))
        << mnemonic(op);
  }
}

TEST(Operands, ConstantsAndRuntimeQueriesOnlyWrite) {
  for (const Op op : {Op::Li, Op::CoreId, Op::NumCores}) {
    EXPECT_TRUE(read_slots(ins(op)).empty()) << mnemonic(op);
    EXPECT_EQ(write_slots(ins(op)), (std::multiset<int>{3}))
        << mnemonic(op);
  }
  EXPECT_EQ(write_slots(ins(Op::FLi)), (std::multiset<int>{35}));
}

TEST(Operands, FloatOpsLiveInTheUpperSlots) {
  for (const Op op : {Op::FAdd, Op::FSub, Op::FMul, Op::FMin, Op::FMax,
                      Op::FDiv}) {
    EXPECT_EQ(read_slots(ins(op)), (std::multiset<int>{33, 34}))
        << mnemonic(op);
    EXPECT_EQ(write_slots(ins(op)), (std::multiset<int>{35}))
        << mnemonic(op);
  }
  for (const Op op : {Op::FAbs, Op::FNeg, Op::FMv, Op::FSqrt}) {
    EXPECT_EQ(read_slots(ins(op)), (std::multiset<int>{33}))
        << mnemonic(op);
    EXPECT_EQ(write_slots(ins(op)), (std::multiset<int>{35}))
        << mnemonic(op);
  }
}

TEST(Operands, CrossFileOps) {
  // FP compares read floats, write an integer.
  for (const Op op : {Op::FLt, Op::FLe, Op::FEq}) {
    EXPECT_EQ(read_slots(ins(op)), (std::multiset<int>{33, 34}))
        << mnemonic(op);
    EXPECT_EQ(write_slots(ins(op)), (std::multiset<int>{3}))
        << mnemonic(op);
  }
  EXPECT_EQ(read_slots(ins(Op::CvtSW)), (std::multiset<int>{1}));
  EXPECT_EQ(write_slots(ins(Op::CvtSW)), (std::multiset<int>{35}));
  EXPECT_EQ(read_slots(ins(Op::CvtWS)), (std::multiset<int>{33}));
  EXPECT_EQ(write_slots(ins(Op::CvtWS)), (std::multiset<int>{3}));
}

TEST(Operands, MemoryOps) {
  EXPECT_EQ(read_slots(ins(Op::Lw)), (std::multiset<int>{1}));
  EXPECT_EQ(write_slots(ins(Op::Lw)), (std::multiset<int>{3}));
  EXPECT_EQ(read_slots(ins(Op::Flw)), (std::multiset<int>{1}));
  EXPECT_EQ(write_slots(ins(Op::Flw)), (std::multiset<int>{35}));
  // Stores read the address register and the value, write nothing.
  EXPECT_EQ(read_slots(ins(Op::Sw)), (std::multiset<int>{1, 2}));
  EXPECT_TRUE(write_slots(ins(Op::Sw)).empty());
  EXPECT_EQ(read_slots(ins(Op::Fsw)), (std::multiset<int>{1, 34}));
  EXPECT_TRUE(write_slots(ins(Op::Fsw)).empty());
}

TEST(Operands, BranchesReadWithoutWriting) {
  for (const Op op : {Op::Beq, Op::Bne, Op::Blt, Op::Bge}) {
    EXPECT_EQ(read_slots(ins(op)), (std::multiset<int>{1, 2}))
        << mnemonic(op);
    EXPECT_TRUE(write_slots(ins(op)).empty()) << mnemonic(op);
  }
  EXPECT_TRUE(read_slots(ins(Op::Jmp)).empty());
}

TEST(Operands, DmaStartTreatsRdAsASource) {
  EXPECT_EQ(read_slots(ins(Op::DmaStart)), (std::multiset<int>{1, 2, 3}));
  EXPECT_TRUE(write_slots(ins(Op::DmaStart)).empty());
}

TEST(Operands, RegisterFreeOpsHaveNoTraffic) {
  for (const Op op : {Op::Nop, Op::Barrier, Op::CritEnter, Op::CritExit,
                      Op::DmaWait, Op::MarkEnter, Op::MarkExit, Op::Halt}) {
    EXPECT_TRUE(read_slots(ins(op)).empty()) << mnemonic(op);
    EXPECT_TRUE(write_slots(ins(op)).empty()) << mnemonic(op);
  }
}

TEST(Operands, FieldsIdentifyTheInstrMembers) {
  const Operands o = operands_of(ins(Op::Add));
  ASSERT_EQ(o.n_reads, 2);
  EXPECT_EQ(o.reads[0].field, Field::Rs1);
  EXPECT_EQ(o.reads[1].field, Field::Rs2);
  ASSERT_EQ(o.n_writes, 1);
  EXPECT_EQ(o.writes[0].field, Field::Rd);
}

TEST(Operands, SetFieldRewritesTheRightMember) {
  Instr i = ins(Op::Add);
  set_field(i, Field::Rs1, 9);
  EXPECT_EQ(i.rs1, 9);
  EXPECT_EQ(i.rs2, 2);
  set_field(i, Field::Rd, 11);
  EXPECT_EQ(i.rd, 11);
  set_field(i, Field::Rs2, 13);
  EXPECT_EQ(i.rs2, 13);
}

TEST(Operands, EveryOpcodeHasConsistentCounts) {
  for (int v = 0; v <= int(Op::Halt); ++v) {
    const Op op = Op(v);
    Instr i = ins(op);
    if (is_memory(op)) i.mem = MemSpace::Tcdm;
    const Operands o = operands_of(i);
    EXPECT_GE(o.n_reads, 0);
    EXPECT_LE(o.n_reads, 3);
    EXPECT_GE(o.n_writes, 0);
    EXPECT_LE(o.n_writes, 1);
    for (int r = 0; r < o.n_reads; ++r) {
      EXPECT_LT(o.reads[r].slot(), 64) << mnemonic(op);
    }
  }
}

}  // namespace
}  // namespace pulpc::kir
