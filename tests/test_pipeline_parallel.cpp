// Equivalence tests for the deterministic parallel engine: a
// multi-threaded build_dataset must produce byte-identical CSV output
// (and identical samples/labels) to the serial path, ml::evaluate must
// produce bit-identical accuracies/std-devs/importances for every
// thread count, the progress callback must be strictly monotonic and
// complete, and a corrupt dataset cache must be rebuilt rather than
// fatal.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "ml/cv.hpp"

namespace pulpc::core {
namespace {

/// A cheap slice of the paper's configuration space: small sizes, mixed
/// suites/behaviours, enough rows to exercise the pool.
std::vector<SampleConfig> trimmed_configs() {
  return {
      {"memcpy", kir::DType::I32, 512},
      {"memset", kir::DType::I32, 512},
      {"stream_triad", kir::DType::I32, 512},
      {"trisolv", kir::DType::I32, 512},
      {"autocor", kir::DType::I32, 2048},
      {"alu_chain", kir::DType::I32, 512},
      {"spin_counter", kir::DType::I32, 512},
      {"stream_triad", kir::DType::I32, 2048},
  };
}

std::string csv_bytes(const ml::Dataset& ds) {
  std::ostringstream out;
  ds.save_csv(out);
  return out.str();
}

TEST(ParallelBuild, DatasetIsByteIdenticalAcrossThreadCounts) {
  const std::vector<SampleConfig> configs = trimmed_configs();
  BuildOptions serial;
  serial.threads = 1;
  BuildOptions parallel;
  parallel.threads = 4;
  const ml::Dataset ds1 = build_dataset(configs, serial);
  const ml::Dataset ds4 = build_dataset(configs, parallel);

  ASSERT_EQ(ds1.size(), configs.size());
  ASSERT_EQ(ds4.size(), configs.size());
  EXPECT_EQ(ds1.columns(), ds4.columns());
  for (std::size_t i = 0; i < ds1.size(); ++i) {
    const ml::Sample& a = ds1.samples()[i];
    const ml::Sample& b = ds4.samples()[i];
    EXPECT_EQ(a.kernel, b.kernel) << i;
    EXPECT_EQ(a.label, b.label) << i;
    EXPECT_EQ(a.energy, b.energy) << i;
    EXPECT_EQ(a.cycles, b.cycles) << i;
    EXPECT_EQ(a.features, b.features) << i;
  }
  // The saved cache file is the contract: compare raw bytes.
  EXPECT_EQ(csv_bytes(ds1), csv_bytes(ds4));
}

TEST(ParallelBuild, ProgressIsMonotonicAndCalledExactlyTotalTimes) {
  const std::vector<SampleConfig> configs = trimmed_configs();
  BuildOptions opt;
  opt.threads = 4;
  std::vector<std::pair<std::size_t, std::size_t>> calls;
  const ml::Dataset ds = build_dataset(
      configs, opt,
      [&](std::size_t done, std::size_t total) {
        calls.emplace_back(done, total);
      });
  ASSERT_EQ(calls.size(), configs.size());
  for (std::size_t k = 0; k < calls.size(); ++k) {
    EXPECT_EQ(calls[k].first, k + 1);  // strictly monotonic, no gaps
    EXPECT_EQ(calls[k].second, configs.size());
  }
}

TEST(ParallelBuild, WorkerExceptionReachesTheCaller) {
  std::vector<SampleConfig> configs = trimmed_configs();
  configs.push_back({"no_such_kernel", kir::DType::I32, 512});
  BuildOptions opt;
  opt.threads = 4;
  EXPECT_THROW((void)build_dataset(configs, opt), std::invalid_argument);
}

/// Synthetic labelled dataset (mirrors test_ml_cv) so the CV
/// equivalence test does not pay for simulator runs.
ml::Dataset synthetic_dataset(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0, 1);
  ml::Dataset ds({"f0", "f1", "noise"});
  for (int i = 0; i < n; ++i) {
    ml::Sample s;
    s.kernel = "synth" + std::to_string(i);
    s.suite = "synthetic";
    s.dtype = kir::DType::I32;
    s.size_bytes = 512;
    const double a = u(rng);
    const double b = u(rng);
    s.features = {a, b, u(rng)};
    s.label = 1 + (a > 0.5) * 2 + (b > 0.5);
    for (int k = 1; k <= 4; ++k) {
      const double dist = k > s.label ? k - s.label : s.label - k;
      s.energy.push_back(100.0 * (1.0 + 0.5 * dist));
      s.cycles.push_back(1000.0 / k);
    }
    ds.add(std::move(s));
  }
  return ds;
}

TEST(ParallelEvaluate, ResultsAreBitIdenticalAcrossThreadCounts) {
  const ml::Dataset ds = synthetic_dataset(120, 11);
  ml::EvalOptions serial;
  serial.folds = 3;
  serial.repeats = 5;
  serial.threads = 1;
  ml::EvalOptions parallel = serial;
  parallel.threads = 4;

  const ml::EvalResult r1 = ml::evaluate(ds, ds.columns(), serial);
  const ml::EvalResult r4 = ml::evaluate(ds, ds.columns(), parallel);

  // EXPECT_EQ on double vectors is deliberate: the reduction order is
  // fixed to repetition order, so the sums must match bit for bit.
  EXPECT_EQ(r1.tolerances, r4.tolerances);
  EXPECT_EQ(r1.accuracy, r4.accuracy);
  EXPECT_EQ(r1.accuracy_std, r4.accuracy_std);
  EXPECT_EQ(r1.importances, r4.importances);
}

TEST(ParallelEvaluate, OversubscribedPoolStillMatches) {
  const ml::Dataset ds = synthetic_dataset(60, 12);
  ml::EvalOptions opt;
  opt.folds = 3;
  opt.repeats = 4;
  opt.threads = 1;
  const ml::EvalResult r1 = ml::evaluate(ds, ds.columns(), opt);
  opt.threads = 16;  // more workers than repetitions
  const ml::EvalResult r16 = ml::evaluate(ds, ds.columns(), opt);
  EXPECT_EQ(r1.accuracy, r16.accuracy);
  EXPECT_EQ(r1.accuracy_std, r16.accuracy_std);
  EXPECT_EQ(r1.importances, r16.importances);
}

TEST(DatasetCache, CorruptCacheIsRebuiltNotFatal) {
  const std::string path =
      ::testing::TempDir() + "pulpc_corrupt_cache_test.csv";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("PULPC_DATASET_CACHE", path.c_str(), 1), 0);

  const std::vector<SampleConfig> configs = {
      {"memcpy", kir::DType::I32, 512},
      {"memset", kir::DType::I32, 512},
  };
  BuildOptions opt;
  opt.threads = 2;

  // Seed a valid cache, then truncate it mid-row (an interrupted save).
  build_dataset(configs, opt).save_csv_file(path);
  std::string text;
  {
    std::ifstream in(path);
    std::string header;
    std::string row;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, row));
    text = header + "\n" + row.substr(0, row.size() / 2) + "\n";
  }
  {
    std::ofstream out(path, std::ios::trunc);
    out << text;
  }
  EXPECT_THROW((void)ml::Dataset::load_csv_file(path), std::runtime_error);

  // load_or_build must recover by rebuilding and rewriting the cache.
  const ml::Dataset rebuilt = load_or_build_dataset(configs, opt);
  EXPECT_EQ(rebuilt.size(), configs.size());
  const ml::Dataset reloaded = ml::Dataset::load_csv_file(path);
  EXPECT_EQ(reloaded.size(), configs.size());

  std::remove(path.c_str());
  unsetenv("PULPC_DATASET_CACHE");
}

}  // namespace
}  // namespace pulpc::core
