// The event-driven fast-forward contract (SimOptions::fast_forward):
// skipping idle stretches is a pure wall-clock optimisation. Every
// counter the pipeline consumes — and therefore every label, feature and
// persisted artifact — must be byte-identical with the optimisation on
// and off, including on the error paths (max_cycles) and under tracing
// (where fast-forward auto-disables to keep the event stream complete).
//
// The golden fingerprints below were captured from the pre-fast-forward,
// purely cycle-stepped simulator, so they also pin today's engine to the
// original one: a change that shifts any counter of these kernels fails
// here before it silently re-labels the dataset.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "dsl/lower.hpp"
#include "kernels/registry.hpp"
#include "sim/cluster.hpp"
#include "sim/stats.hpp"

namespace {

using namespace pulpc;

std::uint64_t fnv64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string stats_text(const sim::RunStats& stats) {
  std::ostringstream os;
  sim::save_stats(os, stats);
  return os.str();
}

kir::Program lower(const std::string& kernel, kir::DType t,
                   std::uint32_t bytes) {
  return dsl::lower(kernels::make_kernel(kernel, t, bytes));
}

sim::RunResult run_one(const kir::Program& prog, unsigned cores,
                       bool fast_forward,
                       sim::ClusterConfig cfg = {},
                       sim::TraceSink* sink = nullptr) {
  sim::SimOptions opt;
  opt.fast_forward = fast_forward;
  sim::Cluster cluster(cfg, opt);
  cluster.load(prog);
  return cluster.run(cores, sink);
}

/// save_stats fingerprints of the cycle-stepped engine that predates
/// fast-forwarding, for three idle-heavy kernels at 4096 bytes: one
/// barrier-dominated, one DMA-double-buffering, one TCDM-conflict-heavy.
struct Golden {
  const char* kernel;
  kir::DType dtype;
  unsigned cores;
  std::uint64_t fingerprint;
};

constexpr Golden kGolden[] = {
    {"barrier_sweep", kir::DType::I32, 1, 0x61901b355a552bffULL},
    {"barrier_sweep", kir::DType::I32, 4, 0x24f675e9f0cb9a40ULL},
    {"barrier_sweep", kir::DType::I32, 8, 0xe6622096f2db4070ULL},
    {"barrier_sweep", kir::DType::F32, 1, 0xf65286ec4f47044cULL},
    {"barrier_sweep", kir::DType::F32, 4, 0x89624f1a07169f89ULL},
    {"barrier_sweep", kir::DType::F32, 8, 0xd1f584b935ec6480ULL},
    {"dma_pingpong", kir::DType::I32, 1, 0x1ccb97c2130bfc8eULL},
    {"dma_pingpong", kir::DType::I32, 4, 0xdea1b64fb036f1b9ULL},
    {"dma_pingpong", kir::DType::I32, 8, 0xfacf904d34abae2eULL},
    {"dma_pingpong", kir::DType::F32, 1, 0x2648da0c5a0877ddULL},
    {"dma_pingpong", kir::DType::F32, 4, 0x42faf433172f9aacULL},
    {"dma_pingpong", kir::DType::F32, 8, 0xefc92ab8d39759aeULL},
    {"stride_conflict", kir::DType::I32, 1, 0xfdcf6b30dcec51b7ULL},
    {"stride_conflict", kir::DType::I32, 4, 0x627c58324d9c68c2ULL},
    {"stride_conflict", kir::DType::I32, 8, 0x0a1adf9ceb78f686ULL},
    {"stride_conflict", kir::DType::F32, 1, 0x57d63c655bde1202ULL},
    {"stride_conflict", kir::DType::F32, 4, 0x93837247b3f3d5e5ULL},
    {"stride_conflict", kir::DType::F32, 8, 0xf345421d69e5908bULL},
};

TEST(SimFastpath, GoldenFingerprintsBothPaths) {
  for (const Golden& g : kGolden) {
    SCOPED_TRACE(std::string(g.kernel) + "/" + kir::to_string(g.dtype) +
                 " c=" + std::to_string(g.cores));
    const kir::Program prog = lower(g.kernel, g.dtype, 4096);
    for (const bool ff : {false, true}) {
      const sim::RunResult r = run_one(prog, g.cores, ff);
      ASSERT_TRUE(r.ok) << r.error;
      EXPECT_EQ(fnv64(stats_text(r.stats)), g.fingerprint)
          << "fast_forward=" << ff;
    }
  }
}

TEST(SimFastpath, FastForwardActuallyEngages) {
  // The contract would hold vacuously if no jump ever fired; pin the
  // optimisation itself on the kernels it was built for.
  const kir::Program dma = lower("dma_pingpong", kir::DType::I32, 4096);
  const sim::RunResult r = run_one(dma, 8, true);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.ff_jumps, 0u);
  EXPECT_GT(r.ff_cycles, 0u);
  EXPECT_LT(r.ff_cycles, r.stats.total_cycles);
}

TEST(SimFastpath, EscapeHatchDisablesJumps) {
  const kir::Program dma = lower("dma_pingpong", kir::DType::I32, 4096);
  const sim::RunResult r = run_one(dma, 8, false);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.ff_cycles, 0u);
  EXPECT_EQ(r.ff_jumps, 0u);
}

// Every (kernel, dtype, size) the dataset lowers, both engines, all core
// counts. The full 448-configuration sweep takes minutes, so the default
// run checks a deterministic sample and PULPC_FULL_FF_CHECK=1 (used by
// the nightly/CI bench lane) widens it to the whole registry.
TEST(SimFastpath, RegistrySweepBitIdentical) {
  const bool full = std::getenv("PULPC_FULL_FF_CHECK") != nullptr;
  const std::vector<core::SampleConfig> configs = core::dataset_configs();
  const std::size_t stride = full ? 1 : 37;
  std::size_t checked = 0;
  for (std::size_t i = 0; i < configs.size(); i += stride) {
    const core::SampleConfig& cfg = configs[i];
    SCOPED_TRACE(cfg.kernel + "/" + kir::to_string(cfg.dtype) + "/" +
                 std::to_string(cfg.size_bytes));
    const kir::Program prog = lower(cfg.kernel, cfg.dtype, cfg.size_bytes);
    for (const unsigned c : {1u, 4u, 8u}) {
      const sim::RunResult slow = run_one(prog, c, false);
      const sim::RunResult fast = run_one(prog, c, true);
      ASSERT_EQ(slow.ok, fast.ok) << "c=" << c;
      ASSERT_EQ(slow.error, fast.error) << "c=" << c;
      EXPECT_EQ(stats_text(slow.stats), stats_text(fast.stats))
          << "c=" << c;
    }
    ++checked;
  }
  EXPECT_GE(checked, full ? configs.size() : 12u);
}

TEST(SimFastpath, MaxCyclesClampBitIdentical) {
  // Cut the run off at several points (mid-compute, mid-DMA, mid-wait):
  // the jump clamps to max_cycles, so the fast path must produce the
  // same SimError and the same partially-charged counters the stepped
  // loop does.
  const kir::Program dma = lower("dma_pingpong", kir::DType::I32, 32768);
  // dma_pingpong/i32/32768 on 8 cores runs ~4.7k cycles; all three
  // limits land inside the run (early compute, mid-DMA, late wait).
  for (const std::uint64_t limit : {500u, 2000u, 4111u}) {
    SCOPED_TRACE("max_cycles=" + std::to_string(limit));
    sim::ClusterConfig cfg;
    cfg.max_cycles = limit;
    const sim::RunResult slow = run_one(dma, 8, false, cfg);
    const sim::RunResult fast = run_one(dma, 8, true, cfg);
    ASSERT_FALSE(slow.ok);
    ASSERT_FALSE(fast.ok);
    EXPECT_EQ(slow.error, fast.error);
    EXPECT_EQ(fast.stats.total_cycles, limit);
    EXPECT_EQ(stats_text(slow.stats), stats_text(fast.stats));
  }
}

/// Sink that just accumulates the full event stream as text.
struct CollectSink final : sim::TraceSink {
  std::string events;
  void event(std::uint64_t cycle, const std::string& path,
             const std::string& message) override {
    events += std::to_string(cycle) + " " + path + " " + message + "\n";
  }
};

TEST(SimFastpath, TraceSinkAutoDisables) {
  // A trace consumer needs the complete per-cycle event stream, so an
  // attached sink overrides fast_forward=true: no jumps fire and the
  // trace matches the fast_forward=false run byte for byte.
  const kir::Program prog = lower("barrier_sweep", kir::DType::I32, 4096);
  CollectSink with_ff;
  CollectSink without_ff;
  const sim::RunResult on = run_one(prog, 4, true, {}, &with_ff);
  const sim::RunResult off = run_one(prog, 4, false, {}, &without_ff);
  ASSERT_TRUE(on.ok) << on.error;
  ASSERT_TRUE(off.ok) << off.error;
  EXPECT_EQ(on.ff_cycles, 0u);
  EXPECT_EQ(on.ff_jumps, 0u);
  EXPECT_FALSE(with_ff.events.empty());
  EXPECT_EQ(with_ff.events, without_ff.events);
  EXPECT_EQ(stats_text(on.stats), stats_text(off.stats));
}

TEST(SimFastpath, PipelineReportsFastForwardCoverage) {
  // The StageReport surfaces simulated cycles and the fast-forwarded
  // share so dataset builds can report simulated-cycles-per-second.
  core::BuildOptions opt;
  core::StageReport report;
  opt.stage_report = [&](const core::StageReport& r) { report = r; };
  const std::vector<core::SampleConfig> configs = {
      {"dma_pingpong", kir::DType::I32, 4096}};
  const ml::Dataset ds = core::build_dataset(configs, opt);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_GT(report.simulated_cycles, 0u);
  EXPECT_GT(report.ff_cycles, 0u);
  EXPECT_LE(report.ff_cycles, report.simulated_cycles);
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("Mcyc/s"), std::string::npos) << summary;

  // And the escape hatch flows through BuildOptions::sim.
  opt.sim.fast_forward = false;
  const ml::Dataset ds_slow = core::build_dataset(configs, opt);
  EXPECT_EQ(report.ff_cycles, 0u);
  ASSERT_EQ(ds_slow.size(), 1u);
  EXPECT_EQ(ds.samples()[0].features, ds_slow.samples()[0].features);
  EXPECT_EQ(ds.samples()[0].label, ds_slow.samples()[0].label);
}

}  // namespace
