// Decision-tree tests: exact fits on separable data, depth/leaf
// constraints, Gini importances, determinism and error handling.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>
#include <vector>

#include "ml/tree.hpp"

namespace pulpc::ml {
namespace {

Matrix make_matrix(const std::vector<std::vector<double>>& rows) {
  Matrix m;
  m.rows = rows.size();
  m.cols = rows.empty() ? 0 : rows[0].size();
  for (const auto& r : rows) {
    m.data.insert(m.data.end(), r.begin(), r.end());
  }
  return m;
}

/// Two clearly separated blobs along feature 0.
void blobs(Matrix& x, std::vector<int>& y, int per_class = 20) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> jitter(-0.4, 0.4);
  std::vector<std::vector<double>> rows;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < per_class; ++i) {
      rows.push_back({c * 10.0 + jitter(rng), jitter(rng)});
      y.push_back(c + 1);
    }
  }
  x = make_matrix(rows);
}

TEST(DecisionTree, SeparableDataFitsPerfectly) {
  Matrix x;
  std::vector<int> y;
  blobs(x, y);
  DecisionTree tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.predict(x), y);
  EXPECT_TRUE(tree.trained());
}

TEST(DecisionTree, SingleClassYieldsOneLeaf) {
  const Matrix x = make_matrix({{1, 2}, {3, 4}, {5, 6}});
  const std::vector<int> y = {4, 4, 4};
  DecisionTree tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.node_count(), 1U);
  EXPECT_EQ(tree.depth(), 0);
  EXPECT_EQ(tree.predict(std::vector<double>{9.0, 9.0}), 4);
}

TEST(DecisionTree, DepthLimitCapsTreeGrowth) {
  Matrix x;
  std::vector<int> y;
  blobs(x, y, 50);
  TreeParams p;
  p.max_depth = 1;
  DecisionTree tree(p);
  tree.fit(x, y);
  EXPECT_LE(tree.depth(), 1);
  EXPECT_LE(tree.node_count(), 3U);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  const Matrix x = make_matrix({{1}, {2}, {3}, {4}});
  const std::vector<int> y = {1, 1, 1, 2};
  TreeParams p;
  p.min_samples_leaf = 2;
  DecisionTree tree(p);
  tree.fit(x, y);
  // The only useful split (3|1) violates the leaf minimum; 2|2 splits at
  // 2.5 leaving an impure right leaf.
  for (const auto& n : {1.0, 2.0}) {
    EXPECT_EQ(tree.predict(std::vector<double>{n}), 1);
  }
}

TEST(DecisionTree, MinSamplesSplitStopsEarly) {
  Matrix x;
  std::vector<int> y;
  blobs(x, y, 5);
  TreeParams p;
  p.min_samples_split = 100;
  DecisionTree tree(p);
  tree.fit(x, y);
  EXPECT_EQ(tree.node_count(), 1U);  // straight to a leaf
}

TEST(DecisionTree, ImportancesConcentrateOnInformativeFeature) {
  Matrix x;
  std::vector<int> y;
  blobs(x, y);
  DecisionTree tree;
  tree.fit(x, y);
  const std::vector<double>& imp = tree.feature_importances();
  ASSERT_EQ(imp.size(), 2U);
  EXPECT_GT(imp[0], 0.99);  // feature 0 separates the blobs
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
}

TEST(DecisionTree, ImportancesSumToOneOnMultiwayProblems) {
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> u(0, 1);
  std::vector<std::vector<double>> rows;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    const double a = u(rng);
    const double b = u(rng);
    const double c = u(rng);
    rows.push_back({a, b, c});
    y.push_back((a > 0.5 ? 1 : 0) + (b > 0.5 ? 2 : 0) + 1);
  }
  DecisionTree tree;
  tree.fit(make_matrix(rows), y);
  const std::vector<double>& imp = tree.feature_importances();
  const double total = std::accumulate(imp.begin(), imp.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(imp[0], imp[2]);
  EXPECT_GT(imp[1], imp[2]);
}

TEST(DecisionTree, DeterministicAcrossFits) {
  Matrix x;
  std::vector<int> y;
  blobs(x, y);
  DecisionTree a;
  DecisionTree b;
  a.fit(x, y);
  b.fit(x, y);
  EXPECT_EQ(a.predict(x), b.predict(x));
  EXPECT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.feature_importances(), b.feature_importances());
}

TEST(DecisionTree, RowSubsetFitIgnoresOtherRows) {
  Matrix x;
  std::vector<int> y;
  blobs(x, y, 10);
  // Poison the last rows with flipped labels, but exclude them.
  std::vector<int> noisy = y;
  for (std::size_t i = 15; i < noisy.size(); ++i) noisy[i] = 1;
  std::vector<std::size_t> subset(15);
  std::iota(subset.begin(), subset.end(), 0);
  DecisionTree tree;
  tree.fit(x, noisy, subset);
  EXPECT_EQ(tree.predict(std::vector<double>{0.0, 0.0}), 1);
  EXPECT_EQ(tree.predict(std::vector<double>{10.0, 0.0}), 2);
}

TEST(DecisionTree, MaxFeaturesSubsamplingStillLearns) {
  Matrix x;
  std::vector<int> y;
  blobs(x, y, 40);
  TreeParams p;
  p.max_features = 1;
  p.seed = 5;
  DecisionTree tree(p);
  tree.fit(x, y);
  // With only one feature considered per split it may need more depth,
  // but the blobs stay separable.
  const std::vector<int> pred = tree.predict(x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    correct += pred[i] == y[i] ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(correct) / y.size(), 0.9);
}

TEST(DecisionTree, ThrowsOnBadInputs) {
  DecisionTree tree;
  Matrix x = make_matrix({{1.0}});
  EXPECT_THROW(tree.fit(x, {}), std::invalid_argument);
  EXPECT_THROW(tree.fit(Matrix{}, {1}), std::invalid_argument);
  EXPECT_THROW((void)tree.predict(std::vector<double>{1.0}),
               std::logic_error);
}

TEST(DecisionTree, ToStringShowsRulesWithFeatureNames) {
  Matrix x;
  std::vector<int> y;
  blobs(x, y);
  DecisionTree tree;
  tree.fit(x, y);
  const std::string rules = tree.to_string({"alpha", "beta"});
  EXPECT_NE(rules.find("if alpha <="), std::string::npos);
  EXPECT_NE(rules.find("-> 1"), std::string::npos);
  EXPECT_NE(rules.find("-> 2"), std::string::npos);
}

TEST(DecisionTree, HandlesConstantFeatures) {
  const Matrix x = make_matrix({{1, 5}, {1, 6}, {1, 7}, {1, 8}});
  const std::vector<int> y = {1, 1, 2, 2};
  DecisionTree tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.predict(std::vector<double>{1.0, 5.5}), 1);
  EXPECT_EQ(tree.predict(std::vector<double>{1.0, 7.5}), 2);
  EXPECT_DOUBLE_EQ(tree.feature_importances()[0], 0.0);
}

TEST(DecisionTree, EightClassProblemLikeThePaper) {
  // Labels 1..8 determined by three thresholded features.
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> u(0, 1);
  std::vector<std::vector<double>> rows;
  std::vector<int> y;
  for (int i = 0; i < 400; ++i) {
    const double a = u(rng);
    const double b = u(rng);
    const double c = u(rng);
    rows.push_back({a, b, c});
    y.push_back(1 + (a > 0.5) * 4 + (b > 0.5) * 2 + (c > 0.5));
  }
  DecisionTree tree;
  tree.fit(make_matrix(rows), y);
  const std::vector<int> pred = tree.predict(make_matrix(rows));
  EXPECT_EQ(pred, y);
}

}  // namespace
}  // namespace pulpc::ml
