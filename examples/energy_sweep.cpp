// Energy sweep: run any dataset kernel at every core count and print the
// per-component energy breakdown, showing how the leakage/parallelism
// trade-off moves the optimum.
//
//   $ ./build/examples/energy_sweep [kernel] [i32|f32] [size_bytes]
//   $ ./build/examples/energy_sweep gemm f32 8192
#include <cstdio>
#include <cstdlib>
#include <string>

#include "dsl/lower.hpp"
#include "energy/model.hpp"
#include "kernels/registry.hpp"
#include "sim/cluster.hpp"

int main(int argc, char** argv) {
  using namespace pulpc;
  const std::string name = argc > 1 ? argv[1] : "gemm";
  const std::string type = argc > 2 ? argv[2] : "f32";
  const std::uint32_t size =
      argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 8192;
  const kir::DType dtype =
      type == "i32" ? kir::DType::I32 : kir::DType::F32;

  kir::Program prog;
  try {
    prog = dsl::lower(kernels::make_kernel(name, dtype, size));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::fprintf(stderr, "available kernels:");
    for (const kernels::KernelInfo& k : kernels::all_kernels()) {
      std::fprintf(stderr, " %s", k.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  std::printf("kernel %s (%s, %u bytes): %zu KIR instructions\n\n",
              name.c_str(), type.c_str(), size, prog.code.size());

  sim::Cluster cluster;
  cluster.load(prog);
  std::printf("%-6s %10s %9s | %8s %8s %8s %8s %8s %8s  %10s\n", "cores",
              "cycles", "confl", "PE", "FPU", "TCDM", "L2", "icache",
              "other", "total[uJ]");
  double best = 0;
  unsigned best_cores = 0;
  for (unsigned c = 1; c <= cluster.config().num_cores; ++c) {
    const sim::RunResult r = cluster.run(c);
    if (!r.ok) {
      std::fprintf(stderr, "run failed at %u cores: %s\n", c,
                   r.error.c_str());
      return 1;
    }
    const energy::EnergyBreakdown e = energy::compute_energy(r.stats);
    const double total = e.total_uj();
    if (best_cores == 0 || total < best) {
      best = total;
      best_cores = c;
    }
    std::printf(
        "%-6u %10llu %9llu | %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f  %10.3f\n",
        c, static_cast<unsigned long long>(r.stats.region_cycles()),
        static_cast<unsigned long long>(r.stats.l1_conflicts()), e.pe * 1e-9,
        e.fpu * 1e-9, e.l1 * 1e-9, e.l2 * 1e-9, e.icache * 1e-9,
        (e.other + e.dma) * 1e-9, total);
  }
  std::printf("\nminimum energy at %u cores (%.3f uJ)\n", best_cores, best);
  return 0;
}
