// Autotune: the paper's use case end-to-end. Train the EnergyClassifier
// on a training split of kernels, then configure *unseen* kernels from
// their source code alone and compare against exhaustive search.
//
//   $ ./build/examples/autotune
#include <cstdio>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "core/pipeline.hpp"
#include "dsl/lower.hpp"
#include "kernels/registry.hpp"
#include "ml/metrics.hpp"

int main() {
  using namespace pulpc;

  // Hold out a handful of kernels entirely; train on every sample of the
  // remaining 52 kernels (the cached dataset makes this instant).
  const std::vector<std::string> held_out = {
      "2mm", "bicg", "conv2d", "stream_triad", "reduction_critical",
      "seidel2d", "stencil5"};
  const auto is_held_out = [&](const std::string& name) {
    for (const std::string& h : held_out) {
      if (h == name) return true;
    }
    return false;
  };

  std::printf("loading the dataset (cached after the first bench run)...\n");
  const ml::Dataset full = core::load_or_build_dataset();
  ml::Dataset train(full.columns());
  for (const ml::Sample& s : full.samples()) {
    if (!is_held_out(s.kernel)) train.add(s);
  }

  core::EnergyClassifier clf;  // all static features, paper defaults
  clf.train(train);
  std::printf("trained a %zu-node decision tree on %zu samples\n\n",
              clf.tree().node_count(), train.size());

  std::printf("configuring unseen kernels from source code only:\n");
  std::printf("  %-20s %9s %9s %12s\n", "kernel", "predicted", "optimal",
              "waste");
  double total_waste = 0;
  std::size_t hits5 = 0;
  for (const std::string& name : held_out) {
    const core::SampleConfig cfg{name, kir::DType::I32, 8192};
    // Prediction uses compile-time information only...
    const int predicted = clf.predict(
        dsl::lower(kernels::make_kernel(cfg.kernel, cfg.dtype,
                                        cfg.size_bytes)));
    // ...exhaustive search is the expensive ground truth.
    const ml::Sample truth = core::build_sample(cfg);
    const double waste = ml::energy_waste(truth, predicted);
    total_waste += waste;
    hits5 += waste <= 0.05 ? 1 : 0;
    std::printf("  %-20s %9d %9d %11.1f%%\n", name.c_str(), predicted,
                truth.label, 100.0 * waste);
  }
  std::printf(
      "\naverage energy waste vs exhaustive search: %.1f%%  "
      "(%zu/%zu kernels within the paper's 5%% tolerance)\n",
      100.0 * total_waste / double(held_out.size()), hits5,
      held_out.size());
  return 0;
}
