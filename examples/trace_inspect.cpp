// Trace inspection: run a kernel with the GVSOC-style text trace
// attached, show a slice of the raw trace, then parse it back through the
// paper's listener hierarchy and print the reconstructed Table III
// dynamic features and the energy they imply.
//
//   $ ./build/examples/trace_inspect [kernel] [cores]
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "dsl/lower.hpp"
#include "energy/model.hpp"
#include "feat/features.hpp"
#include "kernels/registry.hpp"
#include "sim/cluster.hpp"
#include "trace/listeners.hpp"
#include "trace/sinks.hpp"

int main(int argc, char** argv) {
  using namespace pulpc;
  const std::string name = argc > 1 ? argv[1] : "histogram";
  const unsigned cores =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;

  const kernels::KernelInfo& info = kernels::kernel_info(name);
  const kir::DType dtype = info.supports(kir::DType::I32)
                               ? kir::DType::I32
                               : kir::DType::F32;
  const kir::Program prog = dsl::lower(info.factory(dtype, 512));

  sim::Cluster cluster;
  cluster.load(prog);
  std::ostringstream text;
  trace::TextTraceWriter writer(text);
  const sim::RunResult run = cluster.run(cores, &writer);
  if (!run.ok) {
    std::fprintf(stderr, "run failed: %s\n", run.error.c_str());
    return 1;
  }

  // A window of the raw trace, as GVSOC users would see it.
  std::printf("== raw trace (first 25 lines) ==\n");
  std::istringstream lines(text.str());
  std::string line;
  for (int i = 0; i < 25 && std::getline(lines, line); ++i) {
    std::printf("%s\n", line.c_str());
  }
  std::size_t total_lines = 25;
  while (std::getline(lines, line)) ++total_lines;
  std::printf("... (%zu lines total)\n\n", total_lines);

  // The paper's trace-analysis software: listeners + analyser.
  trace::TraceAnalyser analyser;
  trace::PulpListeners listeners;
  listeners.register_on(analyser);
  std::istringstream in(text.str());
  const std::size_t events = analyser.analyse(in);
  std::printf("== trace analysis ==\n");
  std::printf("dispatched %zu events (%zu malformed, %zu unclaimed)\n",
              events, analyser.malformed_lines(),
              analyser.unclaimed_events());

  const sim::RunStats stats = listeners.to_run_stats();
  std::printf("kernel region: cycles %llu..%llu (%llu cycles), %u cores\n",
              static_cast<unsigned long long>(stats.region_begin),
              static_cast<unsigned long long>(stats.region_end),
              static_cast<unsigned long long>(stats.region_cycles()),
              stats.ncores);

  const feat::DynamicFeatures d = feat::extract_dynamic(stats);
  std::printf("\nTable III dynamic features (from the parsed trace):\n");
  std::printf("  PE_idle       %10.4f\n", d.pe_idle);
  std::printf("  PE_sleep      %10.4f\n", d.pe_sleep);
  std::printf("  PE_alu        %10.0f\n", d.pe_alu);
  std::printf("  PE_fp         %10.0f\n", d.pe_fp);
  std::printf("  PE_l1         %10.0f\n", d.pe_l1);
  std::printf("  PE_l2         %10.0f\n", d.pe_l2);
  std::printf("  L1_idle       %10.0f\n", d.l1_idle);
  std::printf("  L1_read       %10.0f\n", d.l1_read);
  std::printf("  L1_write      %10.0f\n", d.l1_write);
  std::printf("  L1_conflicts  %10.0f\n", d.l1_conflicts);

  std::printf("\n%s", energy::report(energy::compute_energy(stats)).c_str());
  return 0;
}
