// Quickstart: write a kernel in the DSL, compile it to KIR, sweep it over
// 1..8 cores on the simulated PULP cluster, integrate the Table I energy
// model, and print where the energy optimum lands.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "dsl/builder.hpp"
#include "dsl/lower.hpp"
#include "energy/model.hpp"
#include "feat/features.hpp"
#include "sim/cluster.hpp"

int main() {
  using namespace pulpc;
  using dsl::Val;

  // 1. Kernel "source code": saxpy over 2048 floats, OpenMP-style.
  const std::uint32_t n = 2048;
  dsl::KernelBuilder k("saxpy", "example", kir::DType::F32, n * 4);
  const dsl::Buf x = k.buffer("x", n, dsl::InitKind::Random);
  const dsl::Buf y = k.buffer("y", n, dsl::InitKind::Random);
  k.par_for("i", k.ic(0), k.ic(int(n)), [&](Val i) {
    k.store(y, i, k.ec(2.5) * k.load(x, i) + k.load(y, i));
  });

  // 2. Compile to the RISC-V-flavoured IR.
  const kir::Program prog = dsl::lower(k.build());
  std::printf("compiled %s: %zu instructions, %zu buffers\n\n",
              prog.name.c_str(), prog.code.size(), prog.buffers.size());

  // 3. Compile-time features (what the paper's classifier sees).
  const feat::StaticFeatures sf = feat::extract_static(prog);
  std::printf("static features: op=%.0f tcdm=%.0f transfer=%.0f avgws=%.0f "
              "F1=%.2f F4=%.2f IPC=%.2f\n\n",
              sf.op, sf.tcdm, sf.transfer, sf.avgws, sf.f1, sf.f4, sf.ipc);

  // 4. Ground truth: simulate at every core count and integrate energy.
  sim::Cluster cluster;
  cluster.load(prog);
  std::printf("%-6s %12s %12s %10s\n", "cores", "cycles", "energy[uJ]",
              "speedup");
  double best_energy = 0;
  unsigned best_cores = 0;
  std::uint64_t base_cycles = 0;
  for (unsigned c = 1; c <= 8; ++c) {
    const sim::RunResult r = cluster.run(c);
    if (!r.ok) {
      std::fprintf(stderr, "simulation failed: %s\n", r.error.c_str());
      return 1;
    }
    const double uj = energy::compute_energy(r.stats).total_uj();
    if (c == 1) base_cycles = r.stats.region_cycles();
    if (best_cores == 0 || uj < best_energy) {
      best_energy = uj;
      best_cores = c;
    }
    std::printf("%-6u %12llu %12.3f %9.2fx\n", c,
                static_cast<unsigned long long>(r.stats.region_cycles()), uj,
                double(base_cycles) / double(r.stats.region_cycles()));
  }
  std::printf("\nminimum-energy configuration: %u cores (%.3f uJ)\n",
              best_cores, best_energy);
  return 0;
}
