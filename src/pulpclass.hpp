// Stable public facade of the pulpclass toolkit. Everything an external
// consumer — the CLI, the benchmark harnesses, a downstream toolchain —
// needs lives in namespace pulpclass::; the pulpc::{sim,core,ml,kir,...}
// layer namespaces remain internal and free to move.
//
//   #include "pulpclass.hpp"
//
//   pulpclass::BuildOptions opt;
//   opt.sim.fast_forward = true;                  // the default
//   pulpclass::Dataset ds = pulpclass::load_or_build_dataset({}, opt);
//   pulpclass::EnergyClassifier clf;
//   clf.train(ds);
//
// The facade is alias-only: no new types, no ABI of its own. A name is
// re-exported here once its spelling is considered stable; anything not
// in this header may change between versions without notice.
#pragma once

#include "core/artifacts.hpp"
#include "core/classifier.hpp"
#include "core/pipeline.hpp"
#include "energy/model.hpp"
#include "kir/verify.hpp"
#include "ml/cv.hpp"
#include "ml/dataset.hpp"
#include "ml/flat.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "sim/config.hpp"

namespace pulpclass {

// ---- configuration ------------------------------------------------------

/// Cluster hardware parameters (cores, TCDM banks, latencies).
using ClusterConfig = pulpc::sim::ClusterConfig;
/// Simulator execution options (event-driven fast-forwarding). Speed
/// only: stats are bit-identical for every setting.
using SimOptions = pulpc::sim::SimOptions;
/// Dataset build / replay options (threads, caches, artifact store).
using BuildOptions = pulpc::core::BuildOptions;
/// Cross-validation protocol options (folds, repeats, seed).
using EvalOptions = pulpc::ml::EvalOptions;
/// Table I energy model coefficients.
using EnergyModel = pulpc::energy::EnergyModel;

// ---- data types ---------------------------------------------------------

using SampleConfig = pulpc::core::SampleConfig;
using StageReport = pulpc::core::StageReport;
using Dataset = pulpc::ml::Dataset;
using EvalResult = pulpc::ml::EvalResult;
using ArtifactStore = pulpc::core::ArtifactStore;
using EnergyClassifier = pulpc::core::EnergyClassifier;
using VerifyOptions = pulpc::kir::VerifyOptions;
using VerifyReport = pulpc::kir::VerifyReport;

// ---- flat inference engine ----------------------------------------------

/// Flattened branchless tree/forest evaluation (SoA node arrays, batch
/// prediction). Bit-identical to the training-side structures; the
/// quantized variants trade exactness for int16 thresholds with
/// measured, bounded divergence.
using FlatTree = pulpc::ml::FlatTree;
using FlatForest = pulpc::ml::FlatForest;
using FlatTreeQuant = pulpc::ml::FlatTreeQuant;
using FlatForestQuant = pulpc::ml::FlatForestQuant;
using QuantDivergence = pulpc::ml::QuantDivergence;

// ---- prediction service -------------------------------------------------

/// Batched in-process prediction service over a trained classifier:
/// bounded queue, micro-batching, LRU feature cache, metrics. Served
/// predictions are bit-identical to EnergyClassifier::predict.
using PredictionService = pulpc::serve::PredictionService;
/// One prediction request (kernel spec or lowered program).
using PredictRequest = pulpc::serve::Request;
/// One prediction outcome (cores, cache/shed status, model version,
/// latency).
using PredictResult = pulpc::serve::Result;
/// Versioned hot-reload model registry: immutable snapshots, atomic
/// swap, per-version serving counters.
using ModelRegistry = pulpc::serve::ModelRegistry;
using ModelSnapshot = pulpc::serve::ModelSnapshot;
/// M PredictionService shards behind a consistent-hash router keyed on
/// the lowered-program hash; all shards share one ModelRegistry.
using ShardedService = pulpc::serve::ShardedService;
/// Line-delimited-JSON TCP front end (`pulpclass serve`): one acceptor
/// plus N edge-triggered epoll worker loops over a ShardedService.
using PredictionServer = pulpc::serve::Server;
/// Every serve-layer knob, resolved once via the documented
/// explicit > PULPC_* env > default precedence (core::env_or).
using ServeOptions = pulpc::serve::ServeOptions;
/// Service counters + latency histogram, snapshot-able as one JSON object.
using ServeMetrics = pulpc::serve::Metrics;

// ---- operations ---------------------------------------------------------

/// KIR verifier: prove/refute SPMD well-formedness of a lowered program.
using pulpc::kir::verify_program;

/// Build the labelled dataset (full paper sweep or an explicit
/// configuration list); load_or_build_dataset adds the CSV cache.
using pulpc::core::build_dataset;
using pulpc::core::load_or_build_dataset;
using pulpc::core::dataset_configs;

/// Replay the labelled dataset from stored raw counters (no simulation).
using pulpc::core::relabel;
using pulpc::core::open_store;
using pulpc::core::populate_store;

/// Repeated stratified-CV evaluation (the paper's Figure 2 protocol).
using pulpc::ml::evaluate;
using pulpc::ml::evaluate_constant;
using pulpc::core::optimized_static_columns;

}  // namespace pulpclass
