// The benchmark-kernel dataset: 59 distinct kernels in three suites
// (Polybench, UTDSP, Custom), each parametric in element type (i32 / f32)
// and problem size in bytes, matching the paper's §IV-B dataset: 53
// kernels support both element types and 6 are single-type, giving
// 112 kernel-type combinations x 4 sizes = 448 samples.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dsl/ast.hpp"

namespace pulpc::kernels {

/// Element types a kernel can be instantiated with.
enum class TypeSupport : std::uint8_t { Both, IntOnly, FloatOnly };

struct KernelInfo {
  std::string name;
  std::string suite;  ///< "polybench", "utdsp", "custom"
  TypeSupport types = TypeSupport::Both;
  std::function<dsl::KernelSpec(kir::DType, std::uint32_t)> factory;

  [[nodiscard]] bool supports(kir::DType t) const noexcept {
    if (types == TypeSupport::IntOnly) return t == kir::DType::I32;
    if (types == TypeSupport::FloatOnly) return t == kir::DType::F32;
    return true;
  }
};

/// All registered kernels (stable order: polybench, utdsp, custom, then
/// any runtime-registered suites in registration order).
[[nodiscard]] const std::vector<KernelInfo>& all_kernels();

/// The built-in 59 kernels only (polybench, utdsp, custom) — what
/// all_kernels() returns when no runtime suite is installed.
[[nodiscard]] const std::vector<KernelInfo>& builtin_kernels();

/// Register extra kernels at runtime (the generated suite, src/gen).
/// They become visible through all_kernels()/kernel_info()/make_kernel()
/// exactly like the built-in suites, so the dataset/artifact/serve
/// machinery needs no special-casing. Throws std::invalid_argument if a
/// name collides with an already-registered kernel. Not safe against
/// concurrent lookups: install before fanning out worker threads.
void register_runtime_kernels(std::vector<KernelInfo> kernels);

/// Remove every runtime-registered kernel (tests and repeated loads).
void clear_runtime_kernels();

/// Lookup by name; throws std::invalid_argument if unknown.
[[nodiscard]] const KernelInfo& kernel_info(const std::string& name);

/// Instantiate a kernel. Throws if the kernel does not support `dtype`.
[[nodiscard]] dsl::KernelSpec make_kernel(const std::string& name,
                                          kir::DType dtype,
                                          std::uint32_t size_bytes);

/// The paper's problem sizes in bytes (8192 substitutes the text's
/// "8196", a power-of-two typo; see DESIGN.md).
[[nodiscard]] const std::vector<std::uint32_t>& dataset_sizes();

/// The hand-written non-neural ML kernel family (suite "mlkern"):
/// k-means assignment/update, decision-tree and linear-SVM inference,
/// naive Bayes scoring, k-NN distances. Not part of the paper's
/// 448-sample dataset — install with register_runtime_kernels() for the
/// enlarged-corpus campaign (see src/gen).
[[nodiscard]] std::vector<KernelInfo> ml_family();

// Suite registration (internal wiring, one per translation unit).
void register_polybench(std::vector<KernelInfo>& out);
void register_utdsp(std::vector<KernelInfo>& out);
void register_custom(std::vector<KernelInfo>& out);
void register_mlkernels(std::vector<KernelInfo>& out);

}  // namespace pulpc::kernels
