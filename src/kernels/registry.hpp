// The benchmark-kernel dataset: 59 distinct kernels in three suites
// (Polybench, UTDSP, Custom), each parametric in element type (i32 / f32)
// and problem size in bytes, matching the paper's §IV-B dataset: 53
// kernels support both element types and 6 are single-type, giving
// 112 kernel-type combinations x 4 sizes = 448 samples.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dsl/ast.hpp"

namespace pulpc::kernels {

/// Element types a kernel can be instantiated with.
enum class TypeSupport : std::uint8_t { Both, IntOnly, FloatOnly };

struct KernelInfo {
  std::string name;
  std::string suite;  ///< "polybench", "utdsp", "custom"
  TypeSupport types = TypeSupport::Both;
  std::function<dsl::KernelSpec(kir::DType, std::uint32_t)> factory;

  [[nodiscard]] bool supports(kir::DType t) const noexcept {
    if (types == TypeSupport::IntOnly) return t == kir::DType::I32;
    if (types == TypeSupport::FloatOnly) return t == kir::DType::F32;
    return true;
  }
};

/// All 59 kernels (stable order: polybench, utdsp, custom).
[[nodiscard]] const std::vector<KernelInfo>& all_kernels();

/// Lookup by name; throws std::invalid_argument if unknown.
[[nodiscard]] const KernelInfo& kernel_info(const std::string& name);

/// Instantiate a kernel. Throws if the kernel does not support `dtype`.
[[nodiscard]] dsl::KernelSpec make_kernel(const std::string& name,
                                          kir::DType dtype,
                                          std::uint32_t size_bytes);

/// The paper's problem sizes in bytes (8192 substitutes the text's
/// "8196", a power-of-two typo; see DESIGN.md).
[[nodiscard]] const std::vector<std::uint32_t>& dataset_sizes();

// Suite registration (internal wiring, one per translation unit).
void register_polybench(std::vector<KernelInfo>& out);
void register_utdsp(std::vector<KernelInfo>& out);
void register_custom(std::vector<KernelInfo>& out);

}  // namespace pulpc::kernels
