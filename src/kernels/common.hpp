// Shared sizing helpers for the dataset kernels. The problem-size
// parameter is the *total* data footprint in bytes ("the amount of data
// the kernel works on"), chosen so every instance fits the 64 KiB TCDM as
// in the paper; kernels derive their dimensions from it.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "dsl/builder.hpp"

namespace pulpc::kernels {

/// Total 32-bit elements available for `size_bytes` of data.
[[nodiscard]] inline std::uint32_t total_elems(std::uint32_t size_bytes) {
  return std::max(32U, size_bytes / 4);
}

/// Side of a square matrix when the footprint is split over `arrays`
/// equally-sized 2-D arrays.
[[nodiscard]] inline std::uint32_t dim2(std::uint32_t size_bytes,
                                        std::uint32_t arrays) {
  const double per = total_elems(size_bytes) / static_cast<double>(arrays);
  return std::max(4U, static_cast<std::uint32_t>(std::floor(std::sqrt(per))));
}

/// Side of a cubic array when split over `arrays` 3-D arrays.
[[nodiscard]] inline std::uint32_t dim3(std::uint32_t size_bytes,
                                        std::uint32_t arrays) {
  const double per = total_elems(size_bytes) / static_cast<double>(arrays);
  return std::max(4U, static_cast<std::uint32_t>(std::floor(std::cbrt(per))));
}

/// Length of a 1-D array when split over `arrays` equally-sized arrays.
[[nodiscard]] inline std::uint32_t len1(std::uint32_t size_bytes,
                                        std::uint32_t arrays) {
  return std::max(8U, total_elems(size_bytes) / arrays);
}

/// Largest power of two not exceeding `len1(size_bytes, arrays)`.
[[nodiscard]] inline std::uint32_t pow2_len(std::uint32_t size_bytes,
                                            std::uint32_t arrays) {
  std::uint32_t n = len1(size_bytes, arrays);
  std::uint32_t p = 1;
  while (p * 2 <= n) p *= 2;
  return std::max(8U, p);
}

/// log2 of a power of two.
[[nodiscard]] inline int ilog2(std::uint32_t n) {
  int l = 0;
  while ((1U << (l + 1)) <= n) ++l;
  return l;
}

/// Divide by a compile-time constant in the kernel's element type: f32
/// kernels multiply by the reciprocal (as optimised C would), i32 kernels
/// use the divider, as fixed-point code does.
[[nodiscard]] inline dsl::Val div_const(const dsl::KernelBuilder& k,
                                        dsl::Val x, std::int32_t d) {
  if (k.elem() == kir::DType::F32) {
    return x * dsl::make_const_f(1.0F / static_cast<float>(d));
  }
  return x / dsl::make_const_i(d);
}

}  // namespace pulpc::kernels
