// "mlkern" suite: hand-written non-neural ML inference/training kernels —
// the workload class the paper's classifier would actually schedule on a
// PULP-class device (k-means assignment and update, decision-tree and
// linear-SVM inference, naive Bayes scoring, k-NN distance matrices).
// They mix the primitive patterns (branchy tree walks, critical-section
// merges, dot-product streams) in ways none of the paper's three suites
// do.
//
// The suite is NOT part of the paper's 448-sample dataset: it installs
// through the runtime registry (ml_family() + register_runtime_kernels)
// as part of the enlarged-corpus campaign, so the seed dataset, its
// cached CSV and the committed artifact stores stay byte-identical.
#include "kernels/common.hpp"
#include "kernels/registry.hpp"

namespace pulpc::kernels {

namespace {

using dsl::InitKind;
using dsl::KernelBuilder;
using dsl::KernelSpec;
using dsl::Val;
using kir::DType;

Val ic(std::int32_t v) { return dsl::make_const_i(v); }

/// Points per sample for a feature dimensionality `d`, splitting the
/// byte footprint over `arrays` point-sized arrays.
std::uint32_t points(std::uint32_t size, std::uint32_t d,
                     std::uint32_t arrays) {
  return std::max(8U, total_elems(size) / (arrays * d));
}

/// k-means assignment step: for every point, squared distance to each of
/// K centroids, argmin into an i32 assignment array. Branchy argmin over
/// a dense compute core.
KernelSpec kmeans_assign(DType t, std::uint32_t size) {
  KernelBuilder k("kmeans_assign", "mlkern", t, size);
  const std::int32_t d = 8;
  const std::int32_t kc = 4;
  const std::uint32_t p =
      points(size, static_cast<std::uint32_t>(d), 1);
  auto pts = k.buffer("pts", p * static_cast<std::uint32_t>(d));
  auto cent = k.buffer("cent", static_cast<std::uint32_t>(kc * d));
  auto asg = k.buffer_of("asg", DType::I32, p, InitKind::Zero);
  k.par_for("i", ic(0), ic(static_cast<std::int32_t>(p)), [&](Val i) {
    auto best = k.decl("best", k.ec(1e9));
    auto bi = k.decl("bi", ic(0));
    k.for_("c", ic(0), ic(kc), [&](Val c) {
      auto dist = k.decl("dist", k.ec(0));
      k.for_("j", ic(0), ic(d), [&](Val j) {
        auto diff = k.decl("diff", k.load(pts, i * ic(d) + j) -
                                       k.load(cent, c * ic(d) + j));
        k.assign(dist, dist + diff * diff);
      });
      k.if_(dist < best, [&] {
        k.assign(best, dist);
        k.assign(bi, c);
      });
    });
    k.store(asg, i, bi);
  });
  return k.build();
}

/// k-means update step: scatter every point into its cluster's running sum
/// under the cluster lock — the critical-section-heavy half of Lloyd's
/// iteration.
KernelSpec kmeans_update(DType t, std::uint32_t size) {
  KernelBuilder k("kmeans_update", "mlkern", t, size);
  const std::int32_t d = 8;
  const std::int32_t kc = 4;
  const std::uint32_t p =
      points(size, static_cast<std::uint32_t>(d), 1);
  auto pts = k.buffer("pts", p * static_cast<std::uint32_t>(d));
  auto asg = k.buffer_of("asg", DType::I32, p, InitKind::RandomPos);
  auto sums = k.buffer("sums", static_cast<std::uint32_t>(kc * d),
                       InitKind::Zero);
  auto cnt = k.buffer_of("cnt", DType::I32, static_cast<std::uint32_t>(kc),
                         InitKind::Zero);
  k.par_for("i", ic(0), ic(static_cast<std::int32_t>(p)), [&](Val i) {
    auto c = k.decl("c", k.load(asg, i) % ic(kc));
    k.critical([&] {
      k.for_("j", ic(0), ic(d), [&](Val j) {
        k.store(sums, c * ic(d) + j,
                k.load(sums, c * ic(d) + j) + k.load(pts, i * ic(d) + j));
      });
      k.store(cnt, c, k.load(cnt, c) + ic(1));
    });
  });
  return k.build();
}

/// Decision-tree inference: every point walks a depth-6 complete binary
/// tree stored as heap arrays (feature index + threshold per node).
/// Data-dependent branches all the way down.
KernelSpec dtree_infer(DType t, std::uint32_t size) {
  KernelBuilder k("dtree_infer", "mlkern", t, size);
  const std::int32_t d = 8;
  const std::int32_t depth = 6;
  const std::uint32_t nodes = 1U << (depth + 1);
  const std::uint32_t p = points(size, static_cast<std::uint32_t>(d), 1);
  auto pts = k.buffer("pts", p * static_cast<std::uint32_t>(d));
  auto fidx = k.buffer_of("fidx", DType::I32, nodes, InitKind::RandomPos);
  auto thr = k.buffer("thr", nodes);
  auto out = k.buffer("out", p, InitKind::Zero);
  k.par_for("i", ic(0), ic(static_cast<std::int32_t>(p)), [&](Val i) {
    auto node = k.decl("node", ic(1));
    k.for_("l", ic(0), ic(depth), [&](Val) {
      auto f = k.decl("f", k.load(fidx, node) % ic(d));
      auto v = k.decl("v", k.load(pts, i * ic(d) + f));
      k.if_else(
          v < k.load(thr, node), [&] { k.assign(node, node * ic(2)); },
          [&] { k.assign(node, node * ic(2) + ic(1)); });
    });
    k.store(out, i, k.to_elem(node));
  });
  return k.build();
}

/// Linear-SVM inference: dense dot product against a weight vector plus
/// a hinge clamp — the streaming-dot-product end of the family.
KernelSpec svm_infer(DType t, std::uint32_t size) {
  KernelBuilder k("svm_infer", "mlkern", t, size);
  const std::int32_t d = 32;
  const std::uint32_t p = points(size, static_cast<std::uint32_t>(d), 1);
  auto x = k.buffer("x", p * static_cast<std::uint32_t>(d));
  auto w = k.buffer("w", static_cast<std::uint32_t>(d));
  auto out = k.buffer("out", p, InitKind::Zero);
  k.par_for("i", ic(0), ic(static_cast<std::int32_t>(p)), [&](Val i) {
    auto acc = k.decl("acc", k.ec(0));
    k.for_("j", ic(0), ic(d), [&](Val j) {
      k.assign(acc, acc + k.load(w, j) * k.load(x, i * ic(d) + j));
    });
    k.store(out, i, dsl::vmax(k.ec(0), k.ec(1) - acc));
  });
  return k.build();
}

/// Naive Bayes scoring over binary features: per class, sum signed
/// log-likelihood contributions, keep the argmax class.
KernelSpec nbayes_score(DType t, std::uint32_t size) {
  KernelBuilder k("nbayes_score", "mlkern", t, size);
  const std::int32_t d = 16;
  const std::int32_t classes = 4;
  const std::uint32_t p = points(size, static_cast<std::uint32_t>(d), 1);
  auto x = k.buffer_of("x", DType::I32, p * static_cast<std::uint32_t>(d),
                       InitKind::RandomPos);
  auto logp = k.buffer("logp", static_cast<std::uint32_t>(classes * d));
  auto out = k.buffer("out", p, InitKind::Zero);
  k.par_for("i", ic(0), ic(static_cast<std::int32_t>(p)), [&](Val i) {
    auto best = k.decl("best", k.ec(-1e9));
    auto bi = k.decl("bi", ic(0));
    k.for_("c", ic(0), ic(classes), [&](Val c) {
      auto s = k.decl("s", k.ec(0));
      k.for_("j", ic(0), ic(d), [&](Val j) {
        auto bit = k.decl("bit", k.load(x, i * ic(d) + j) % ic(2));
        k.if_else(
            bit == ic(1),
            [&] { k.assign(s, s + k.load(logp, c * ic(d) + j)); },
            [&] { k.assign(s, s - k.load(logp, c * ic(d) + j)); });
      });
      k.if_(s > best, [&] {
        k.assign(best, s);
        k.assign(bi, c);
      });
    });
    k.store(out, i, k.to_elem(bi));
  });
  return k.build();
}

/// k-NN distance matrix: squared distance of every reference point to a
/// small query set (the compute phase of k-nearest-neighbour).
KernelSpec knn_dist(DType t, std::uint32_t size) {
  KernelBuilder k("knn_dist", "mlkern", t, size);
  const std::int32_t d = 8;
  const std::int32_t q = 4;
  const std::uint32_t r =
      points(size, static_cast<std::uint32_t>(d), 2);
  auto refs = k.buffer("refs", r * static_cast<std::uint32_t>(d));
  auto qry = k.buffer("qry", static_cast<std::uint32_t>(q * d));
  auto dist = k.buffer("dist", r * static_cast<std::uint32_t>(q),
                       InitKind::Zero);
  k.par_for("i", ic(0), ic(static_cast<std::int32_t>(r)), [&](Val i) {
    k.for_("c", ic(0), ic(q), [&](Val c) {
      auto acc = k.decl("acc", k.ec(0));
      k.for_("j", ic(0), ic(d), [&](Val j) {
        auto diff = k.decl("diff", k.load(refs, i * ic(d) + j) -
                                       k.load(qry, c * ic(d) + j));
        k.assign(acc, acc + diff * diff);
      });
      k.store(dist, i * ic(q) + c, acc);
    });
  });
  return k.build();
}

}  // namespace

void register_mlkernels(std::vector<KernelInfo>& out) {
  const auto add = [&](const char* name, TypeSupport types,
                       KernelSpec (*fn)(DType, std::uint32_t)) {
    out.push_back(KernelInfo{name, "mlkern", types, fn});
  };
  add("kmeans_assign", TypeSupport::Both, kmeans_assign);
  add("kmeans_update", TypeSupport::Both, kmeans_update);
  add("dtree_infer", TypeSupport::Both, dtree_infer);
  add("svm_infer", TypeSupport::Both, svm_infer);
  add("nbayes_score", TypeSupport::Both, nbayes_score);
  add("knn_dist", TypeSupport::Both, knn_dist);
}

std::vector<KernelInfo> ml_family() {
  std::vector<KernelInfo> v;
  register_mlkernels(v);
  return v;
}

}  // namespace pulpc::kernels
