#include "kernels/registry.hpp"

#include <stdexcept>
#include <unordered_set>

namespace pulpc::kernels {

namespace {

/// Runtime-registered suites (the generated corpus). Kept separate from
/// the built-in table so clear_runtime_kernels() can drop them without
/// touching the statics.
std::vector<KernelInfo>& runtime_kernels() {
  static std::vector<KernelInfo> v;
  return v;
}

/// Combined view served by all_kernels(). Rebuilt lazily after every
/// register/clear (generation counter, not a dirty flag, so nested
/// rebuilds cannot lose an update).
std::uint64_t g_registry_generation = 0;

}  // namespace

const std::vector<KernelInfo>& builtin_kernels() {
  static const std::vector<KernelInfo> kKernels = [] {
    std::vector<KernelInfo> v;
    register_polybench(v);
    register_utdsp(v);
    register_custom(v);
    return v;
  }();
  return kKernels;
}

const std::vector<KernelInfo>& all_kernels() {
  static std::vector<KernelInfo> combined;
  static std::uint64_t built_generation = ~std::uint64_t{0};
  if (built_generation != g_registry_generation) {
    combined = builtin_kernels();
    const std::vector<KernelInfo>& extra = runtime_kernels();
    combined.insert(combined.end(), extra.begin(), extra.end());
    built_generation = g_registry_generation;
  }
  return combined;
}

void register_runtime_kernels(std::vector<KernelInfo> kernels) {
  std::unordered_set<std::string> taken;
  for (const KernelInfo& k : all_kernels()) taken.insert(k.name);
  for (KernelInfo& k : kernels) {
    if (!taken.insert(k.name).second) {
      throw std::invalid_argument("kernel name already registered: " +
                                  k.name);
    }
    runtime_kernels().push_back(std::move(k));
  }
  ++g_registry_generation;
}

void clear_runtime_kernels() {
  runtime_kernels().clear();
  ++g_registry_generation;
}

const KernelInfo& kernel_info(const std::string& name) {
  for (const KernelInfo& k : all_kernels()) {
    if (k.name == name) return k;
  }
  throw std::invalid_argument("unknown kernel: " + name);
}

dsl::KernelSpec make_kernel(const std::string& name, kir::DType dtype,
                            std::uint32_t size_bytes) {
  const KernelInfo& info = kernel_info(name);
  if (!info.supports(dtype)) {
    throw std::invalid_argument("kernel " + name + " does not support " +
                                std::string(kir::to_string(dtype)));
  }
  return info.factory(dtype, size_bytes);
}

const std::vector<std::uint32_t>& dataset_sizes() {
  static const std::vector<std::uint32_t> kSizes = {512, 2048, 8192, 32768};
  return kSizes;
}

}  // namespace pulpc::kernels
