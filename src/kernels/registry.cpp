#include "kernels/registry.hpp"

#include <stdexcept>

namespace pulpc::kernels {

const std::vector<KernelInfo>& all_kernels() {
  static const std::vector<KernelInfo> kKernels = [] {
    std::vector<KernelInfo> v;
    register_polybench(v);
    register_utdsp(v);
    register_custom(v);
    return v;
  }();
  return kKernels;
}

const KernelInfo& kernel_info(const std::string& name) {
  for (const KernelInfo& k : all_kernels()) {
    if (k.name == name) return k;
  }
  throw std::invalid_argument("unknown kernel: " + name);
}

dsl::KernelSpec make_kernel(const std::string& name, kir::DType dtype,
                            std::uint32_t size_bytes) {
  const KernelInfo& info = kernel_info(name);
  if (!info.supports(dtype)) {
    throw std::invalid_argument("kernel " + name + " does not support " +
                                std::string(kir::to_string(dtype)));
  }
  return info.factory(dtype, size_bytes);
}

const std::vector<std::uint32_t>& dataset_sizes() {
  static const std::vector<std::uint32_t> kSizes = {512, 2048, 8192, 32768};
  return kSizes;
}

}  // namespace pulpc::kernels
