// UTDSP suite: 14 digital-signal-processing kernels (filters, transforms,
// coders) in the DSL. Trigonometric twiddle/coefficient tables that the C
// originals precompute at startup are modelled as preloaded coefficient
// buffers, since table generation happens outside the measured kernel.
#include "kernels/common.hpp"
#include "kernels/registry.hpp"

namespace pulpc::kernels {

namespace {

using dsl::InitKind;
using dsl::KernelBuilder;
using dsl::KernelSpec;
using dsl::Val;
using kir::DType;

Val ic(std::int32_t v) { return dsl::make_const_i(v); }

Val at(Val i, std::uint32_t n, Val j) { return i * ic(int(n)) + j; }

KernelSpec fir(DType t, std::uint32_t size) {
  KernelBuilder k("fir", "utdsp", t, size);
  const std::uint32_t taps = 32;
  const std::uint32_t n = std::max(taps + 8, len1(size, 2));
  auto x = k.buffer("x", n + taps);
  auto c = k.buffer("c", taps);
  auto y = k.buffer("y", n, InitKind::Zero);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    auto acc = k.decl("acc", k.ec(0));
    k.for_("tap", ic(0), ic(int(taps)), [&](Val tap) {
      k.assign(acc, acc + k.load(c, tap) * k.load(x, i + tap));
    });
    k.store(y, i, acc);
  });
  return k.build();
}

KernelSpec iir(DType t, std::uint32_t size) {
  KernelBuilder k("iir", "utdsp", t, size);
  const std::uint32_t n = len1(size, 2);
  const std::uint32_t sections = 4;
  auto x = k.buffer("x", n);
  auto y = k.buffer("y", n, InitKind::Zero);
  auto coef = k.buffer("coef", sections * 4);
  auto state = k.buffer("state", sections * 2, InitKind::Zero);
  // Cascaded biquads: the recurrence through the filter state serialises
  // the sample loop entirely.
  k.for_("i", ic(0), ic(int(n)), [&](Val i) {
    auto sample = k.decl("sample", k.load(x, i));
    k.for_("s", ic(0), ic(int(sections)), [&](Val s) {
      auto w = k.decl(
          "w", sample - k.load(coef, s * ic(4)) * k.load(state, s * ic(2)) -
                   k.load(coef, s * ic(4) + ic(1)) *
                       k.load(state, s * ic(2) + ic(1)));
      k.assign(sample,
               w + k.load(coef, s * ic(4) + ic(2)) * k.load(state, s * ic(2)) +
                   k.load(coef, s * ic(4) + ic(3)) *
                       k.load(state, s * ic(2) + ic(1)));
      k.store(state, s * ic(2) + ic(1), k.load(state, s * ic(2)));
      k.store(state, s * ic(2), w);
    });
    k.store(y, i, sample);
  });
  return k.build();
}

KernelSpec latnrm(DType t, std::uint32_t size) {
  KernelBuilder k("latnrm", "utdsp", t, size);
  const std::uint32_t n = len1(size, 2);
  const std::uint32_t order = 8;
  auto x = k.buffer("x", n);
  auto y = k.buffer("y", n, InitKind::Zero);
  auto kcoef = k.buffer("kcoef", order);
  auto state = k.buffer("state", order + 1, InitKind::Zero);
  // Normalised lattice filter: serial over samples, short serial stage
  // sweep inside.
  k.for_("i", ic(0), ic(int(n)), [&](Val i) {
    auto f = k.decl("f", k.load(x, i));
    k.for_("s", ic(0), ic(int(order)), [&](Val s) {
      auto g = k.decl("g", k.load(state, s));
      k.assign(f, f - k.load(kcoef, s) * g);
      k.store(state, s + ic(1), g + k.load(kcoef, s) * f);
    });
    k.store(state, ic(0), f);
    k.store(y, i, f);
  });
  return k.build();
}

KernelSpec lmsfir(DType t, std::uint32_t size) {
  KernelBuilder k("lmsfir", "utdsp", t, size);
  const std::uint32_t taps = 32;
  const std::uint32_t n = std::max(taps + 8, len1(size, 2));
  auto x = k.buffer("x", n + taps);
  auto d = k.buffer("d", n);
  auto w = k.buffer("w", taps, InitKind::Zero);
  // Adaptive LMS FIR: samples are serial (each updates the weights), the
  // tap loops are the small parallel regions -> poor parallel payoff.
  k.for_("i", ic(0), ic(int(n)), [&](Val i) {
    auto acc = k.decl("acc", k.ec(0));
    k.for_("tap", ic(0), ic(int(taps)), [&](Val tap) {
      k.assign(acc, acc + k.load(w, tap) * k.load(x, i + tap));
    });
    auto err = k.decl("err", div_const(k, k.load(d, i) - acc, 16));
    k.par_for("tap2", ic(0), ic(int(taps)), [&](Val tap) {
      k.store(w, tap, k.load(w, tap) + err * k.load(x, i + tap));
    });
  });
  return k.build();
}

KernelSpec mult(DType t, std::uint32_t size) {
  KernelBuilder k("mult", "utdsp", t, size);
  const std::uint32_t n = dim2(size, 3);
  auto a = k.buffer("A", n * n);
  auto b = k.buffer("B", n * n);
  auto c = k.buffer("C", n * n, InitKind::Zero);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    k.for_("j", ic(0), ic(int(n)), [&](Val j) {
      auto acc = k.decl("acc", k.ec(0));
      k.for_("kk", ic(0), ic(int(n)), [&](Val kk) {
        k.assign(acc, acc + k.load(a, at(i, n, kk)) * k.load(b, at(kk, n, j)));
      });
      k.store(c, at(i, n, j), acc);
    });
  });
  return k.build();
}

KernelSpec fft(DType t, std::uint32_t size) {
  KernelBuilder k("fft", "utdsp", t, size);
  const std::uint32_t n = pow2_len(size, 4);
  const int stages = ilog2(n);
  auto re = k.buffer("re", n);
  auto im = k.buffer("im", n);
  // Twiddle factors indexed by butterfly position (precomputed table, as
  // in the C original; filled with deterministic data here).
  auto wr = k.buffer("wr", n);
  auto wi = k.buffer("wi", n);
  // Radix-2 stages: serial over stages, parallel over the n/2 butterflies.
  k.for_("s", ic(0), ic(stages), [&](Val s) {
    auto half = k.decl("half", ic(1) << s);
    k.par_for("b", ic(0), ic(int(n / 2)), [&](Val b) {
      auto grp = k.decl("grp", b >> s);
      auto pos = k.decl("pos", b & (half - ic(1)));
      auto top = k.decl("top", ((grp << s) << ic(1)) + pos);
      auto bot = k.decl("bot", top + half);
      auto twr = k.decl("twr", k.load(wr, pos));
      auto twi = k.decl("twi", k.load(wi, pos));
      auto br = k.decl("br", k.load(re, bot) * twr - k.load(im, bot) * twi);
      auto bi = k.decl("bi", k.load(re, bot) * twi + k.load(im, bot) * twr);
      k.store(re, bot, k.load(re, top) - br);
      k.store(im, bot, k.load(im, top) - bi);
      k.store(re, top, k.load(re, top) + br);
      k.store(im, top, k.load(im, top) + bi);
    });
  });
  return k.build();
}

KernelSpec histogram(DType t, std::uint32_t size) {
  KernelBuilder k("histogram", "utdsp", t, size);
  const std::uint32_t bins = 64;
  const std::uint32_t n = len1(size, 1);
  auto img = k.buffer("img", n, InitKind::RandomPos);
  auto hist = k.buffer("hist", bins, InitKind::Zero);
  // Shared histogram guarded by the cluster critical section: the
  // per-element lock makes this a synchronisation-bound sample.
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    auto bin = k.decl("bin", k.load(img, i) & ic(int(bins) - 1));
    k.critical([&] {
      k.store(hist, bin, k.load(hist, bin) + ic(1));
    });
  });
  return k.build();
}

KernelSpec adpcm(DType t, std::uint32_t size) {
  KernelBuilder k("adpcm", "utdsp", t, size);
  const std::uint32_t n = len1(size, 2);
  auto x = k.buffer("x", n);
  auto out = k.buffer("out", n, InitKind::Zero);
  auto steps = k.buffer("steps", 89, InitKind::RandomPos);
  // ADPCM encoder: predictor state carries across samples -> serial,
  // branch-heavy integer code.
  auto valpred = k.decl("valpred", ic(0));
  auto index = k.decl("index", ic(0));
  k.for_("i", ic(0), ic(int(n)), [&](Val i) {
    auto diff = k.decl("diff", k.load(x, i) - valpred);
    auto sign = k.decl("sign", ic(0));
    k.if_(diff < ic(0), [&] {
      k.assign(sign, ic(8));
      k.assign(diff, ic(0) - diff);
    });
    auto step = k.decl("step", k.load(steps, index));
    auto delta = k.decl("delta", dsl::vmin(diff * ic(4) / dsl::vmax(step, ic(1)),
                                           ic(7)));
    k.assign(valpred,
             valpred + (delta * dsl::vmax(step, ic(1))) / ic(4) - sign / ic(4));
    k.assign(index, dsl::vmax(ic(0), dsl::vmin(index + delta - ic(3), ic(88))));
    k.store(out, i, sign | delta);
  });
  return k.build();
}

KernelSpec compress(DType t, std::uint32_t size) {
  KernelBuilder k("compress", "utdsp", t, size);
  const std::uint32_t blk = 8;
  std::uint32_t blocks = std::max(1U, total_elems(size) / 3 / (blk * blk));
  auto img = k.buffer("img", blocks * blk * blk);
  auto out = k.buffer("out", blocks * blk * blk, InitKind::Zero);
  auto cosTab = k.buffer("cosTab", blk * blk);
  // Block DCT compression: parallel over 8x8 blocks, dense inner MACs.
  k.par_for("b", ic(0), ic(int(blocks)), [&](Val b) {
    k.for_("u", ic(0), ic(int(blk)), [&](Val u) {
      k.for_("v", ic(0), ic(int(blk)), [&](Val v) {
        auto acc = k.decl("acc", k.ec(0));
        k.for_("xx", ic(0), ic(int(blk)), [&](Val xx) {
          k.for_("yy", ic(0), ic(int(blk)), [&](Val yy) {
            k.assign(acc, acc + k.load(img, b * ic(int(blk * blk)) +
                                                xx * ic(int(blk)) + yy) *
                                    k.load(cosTab, u * ic(int(blk)) + xx) *
                                    k.load(cosTab, v * ic(int(blk)) + yy));
          });
        });
        k.store(out, b * ic(int(blk * blk)) + u * ic(int(blk)) + v,
                div_const(k, acc, 4));
      });
    });
  });
  return k.build();
}

KernelSpec edge_detect(DType t, std::uint32_t size) {
  KernelBuilder k("edge_detect", "utdsp", t, size);
  const std::uint32_t n = dim2(size, 2);
  auto img = k.buffer("img", n * n);
  auto out = k.buffer("out", n * n, InitKind::Zero);
  // Sobel gradient magnitude (|gx| + |gy|) with thresholding.
  k.par_for("i", ic(1), ic(int(n) - 1), [&](Val i) {
    k.for_("j", ic(1), ic(int(n) - 1), [&](Val j) {
      auto gx = k.decl(
          "gx", k.load(img, at(i - ic(1), n, j + ic(1))) +
                    k.ec(2) * k.load(img, at(i, n, j + ic(1))) +
                    k.load(img, at(i + ic(1), n, j + ic(1))) -
                    k.load(img, at(i - ic(1), n, j - ic(1))) -
                    k.ec(2) * k.load(img, at(i, n, j - ic(1))) -
                    k.load(img, at(i + ic(1), n, j - ic(1))));
      auto gy = k.decl(
          "gy", k.load(img, at(i + ic(1), n, j - ic(1))) +
                    k.ec(2) * k.load(img, at(i + ic(1), n, j)) +
                    k.load(img, at(i + ic(1), n, j + ic(1))) -
                    k.load(img, at(i - ic(1), n, j - ic(1))) -
                    k.ec(2) * k.load(img, at(i - ic(1), n, j)) -
                    k.load(img, at(i - ic(1), n, j + ic(1))));
      auto mag = k.decl("mag", dsl::vabs(gx) + dsl::vabs(gy));
      k.if_else(
          mag > k.ec(2), [&] { k.store(out, at(i, n, j), k.ec(1)); },
          [&] { k.store(out, at(i, n, j), k.ec(0)); });
    });
  });
  return k.build();
}

KernelSpec spectral(DType t, std::uint32_t size) {
  KernelBuilder k("spectral", "utdsp", t, size);
  const std::uint32_t n = len1(size, 2);
  const std::uint32_t lags = std::min(64U, n / 2);
  auto x = k.buffer("x", n);
  auto psd = k.buffer("psd", lags, InitKind::Zero);
  // Power-spectrum estimation via windowed autocorrelation: few large
  // independent reductions.
  k.par_for("lag", ic(0), ic(int(lags)), [&](Val lag) {
    auto acc = k.decl("acc", k.ec(0));
    k.for_("i", ic(0), ic(int(n - lags)), [&](Val i) {
      k.assign(acc, acc + k.load(x, i) * k.load(x, i + lag));
    });
    k.store(psd, lag, div_const(k, acc, int(n - lags)));
  });
  return k.build();
}

KernelSpec dct(DType t, std::uint32_t size) {
  KernelBuilder k("dct", "utdsp", t, size);
  const std::uint32_t n = std::min(512U, len1(size, 3));
  auto x = k.buffer("x", n);
  auto y = k.buffer("y", n, InitKind::Zero);
  auto cosTab = k.buffer("cosTab", n);
  // Naive O(n^2) DCT-II with a precomputed cosine table indexed modulo n.
  k.par_for("u", ic(0), ic(int(n)), [&](Val u) {
    auto acc = k.decl("acc", k.ec(0));
    k.for_("i", ic(0), ic(int(n)), [&](Val i) {
      k.assign(acc,
               acc + k.load(x, i) * k.load(cosTab, (u * i + u) % ic(int(n))));
    });
    k.store(y, u, acc);
  });
  return k.build();
}

KernelSpec autocor(DType t, std::uint32_t size) {
  KernelBuilder k("autocor", "utdsp", t, size);
  const std::uint32_t n = len1(size, 1);
  const std::uint32_t lags = 16;
  auto x = k.buffer("x", n);
  auto r = k.buffer("r", lags, InitKind::Zero);
  // Only 16 independent reductions: parallelism capped well below the
  // cluster size at every problem size.
  k.par_for("lag", ic(0), ic(int(lags)), [&](Val lag) {
    auto acc = k.decl("acc", k.ec(0));
    k.for_("i", ic(0), ic(int(n - lags)), [&](Val i) {
      k.assign(acc, acc + k.load(x, i) * k.load(x, i + lag));
    });
    k.store(r, lag, acc);
  });
  return k.build();
}

KernelSpec conv2d(DType t, std::uint32_t size) {
  KernelBuilder k("conv2d", "utdsp", t, size);
  const std::uint32_t n = dim2(size, 2);
  const std::uint32_t kn = 5;
  auto img = k.buffer("img", n * n);
  auto out = k.buffer("out", n * n, InitKind::Zero);
  auto coef = k.buffer("coef", kn * kn);
  k.par_for("i", ic(0), ic(int(n - kn + 1)), [&](Val i) {
    k.for_("j", ic(0), ic(int(n - kn + 1)), [&](Val j) {
      auto acc = k.decl("acc", k.ec(0));
      k.for_("u", ic(0), ic(int(kn)), [&](Val u) {
        k.for_("v", ic(0), ic(int(kn)), [&](Val v) {
          k.assign(acc, acc + k.load(img, at(i + u, n, j + v)) *
                                  k.load(coef, u * ic(int(kn)) + v));
        });
      });
      k.store(out, at(i, n, j), acc);
    });
  });
  return k.build();
}

}  // namespace

void register_utdsp(std::vector<KernelInfo>& out) {
  const auto add = [&](const char* name, TypeSupport types,
                       KernelSpec (*fn)(DType, std::uint32_t)) {
    out.push_back(KernelInfo{name, "utdsp", types, fn});
  };
  add("fir", TypeSupport::Both, fir);
  add("iir", TypeSupport::Both, iir);
  add("latnrm", TypeSupport::Both, latnrm);
  add("lmsfir", TypeSupport::Both, lmsfir);
  add("mult", TypeSupport::Both, mult);
  add("fft", TypeSupport::Both, fft);
  add("histogram", TypeSupport::IntOnly, histogram);
  add("adpcm", TypeSupport::IntOnly, adpcm);
  add("compress", TypeSupport::Both, compress);
  add("edge_detect", TypeSupport::Both, edge_detect);
  add("spectral", TypeSupport::Both, spectral);
  add("dct", TypeSupport::Both, dct);
  add("autocor", TypeSupport::Both, autocor);
  add("conv2d", TypeSupport::Both, conv2d);
}

}  // namespace pulpc::kernels
