// Custom suite: 19 hand-written kernels that, as in the paper, "stimulate
// different patterns of memory accesses, compute operations, and
// synchronisation primitives" — the corners of the energy trade-off space
// the standard suites do not reach: pathological bank conflicts, FPU
// saturation, divider chains, barrier storms, critical-section
// serialisation, off-cluster L2 traffic and DMA double-buffering.
#include "kernels/common.hpp"
#include "kernels/registry.hpp"

namespace pulpc::kernels {

namespace {

using dsl::InitKind;
using dsl::KernelBuilder;
using dsl::KernelSpec;
using dsl::MemSpace;
using dsl::Val;
using kir::DType;

Val ic(std::int32_t v) { return dsl::make_const_i(v); }

KernelSpec memcpy_k(DType t, std::uint32_t size) {
  KernelBuilder k("memcpy", "custom", t, size);
  const std::uint32_t n = len1(size, 2);
  auto src = k.buffer("src", n);
  auto dst = k.buffer("dst", n, InitKind::Zero);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    k.store(dst, i, k.load(src, i));
  });
  return k.build();
}

KernelSpec memset_k(DType t, std::uint32_t size) {
  KernelBuilder k("memset", "custom", t, size);
  const std::uint32_t n = len1(size, 1);
  auto dst = k.buffer("dst", n, InitKind::Zero);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    k.store(dst, i, k.ec(7));
  });
  return k.build();
}

KernelSpec stream_triad(DType t, std::uint32_t size) {
  KernelBuilder k("stream_triad", "custom", t, size);
  const std::uint32_t n = len1(size, 3);
  auto a = k.buffer("a", n, InitKind::Zero);
  auto b = k.buffer("b", n);
  auto c = k.buffer("c", n);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    k.store(a, i, k.load(b, i) + k.ec(3) * k.load(c, i));
  });
  return k.build();
}

KernelSpec reduction_sum(DType t, std::uint32_t size) {
  KernelBuilder k("reduction_sum", "custom", t, size);
  const std::uint32_t n = len1(size, 1);
  auto x = k.buffer("x", n);
  auto out = k.buffer("out", 8, InitKind::Zero);
  // OpenMP-style reduction: per-core partial sums merged once under the
  // critical lock (one lock acquisition per core).
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    auto part = k.decl("part", k.load(x, i));
    k.critical([&] {
      k.store(out, ic(0), k.load(out, ic(0)) + part);
    });
  });
  return k.build();
}

KernelSpec reduction_critical(DType t, std::uint32_t size) {
  KernelBuilder k("reduction_critical", "custom", t, size);
  const std::uint32_t n = len1(size, 1) / 4;
  auto x = k.buffer("x", std::max(8U, n));
  auto out = k.buffer("out", 8, InitKind::Zero);
  // Deliberately pathological: every element goes through the lock AND
  // does some work inside it, so added cores only add spinning.
  k.par_for("i", ic(0), ic(int(std::max(8U, n))), [&](Val i) {
    k.critical([&] {
      k.store(out, ic(0),
              k.load(out, ic(0)) + k.load(x, i) * k.load(x, i) + k.ec(1));
    });
  });
  return k.build();
}

KernelSpec barrier_sweep(DType t, std::uint32_t size) {
  KernelBuilder k("barrier_sweep", "custom", t, size);
  const std::uint32_t n = len1(size, 1);
  const std::uint32_t chunks = 32;
  auto x = k.buffer("x", n);
  // Many tiny parallel regions: region setup + barrier costs dominate,
  // punishing high core counts on small problems.
  k.for_("c", ic(0), ic(int(chunks)), [&](Val c) {
    k.par_for("i", ic(0), ic(int(n / chunks)), [&](Val i) {
      auto idx = k.decl("idx", c * ic(int(n / chunks)) + i);
      k.store(x, idx, k.load(x, idx) + k.ec(1));
    });
  });
  return k.build();
}

KernelSpec fpu_storm(DType t, std::uint32_t size) {
  KernelBuilder k("fpu_storm", "custom", t, size);
  const std::uint32_t n = len1(size, 2);
  auto x = k.buffer("x", n);
  auto y = k.buffer("y", n, InitKind::Zero);
  // Dense arithmetic on every element: for f32 this saturates the four
  // shared FPUs (speed-up capped at ~4); the i32 twin runs on private
  // ALUs and scales to 8.
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    auto v = k.decl("v", k.load(x, i));
    auto acc = k.decl("acc", k.ec(0));
    // Unrolled arithmetic chain: >80% of issue slots are FP for the f32
    // instantiation, so the four shared FPUs saturate well below 8 cores.
    for (int r = 0; r < 4; ++r) {
      k.assign(acc, acc + v * v);
      k.assign(v, v + acc * acc);
      k.assign(acc, dsl::vmin(acc + v * v, k.ec(4096)));
      k.assign(v, dsl::vmin(v + k.ec(1), k.ec(64)));
    }
    k.store(y, i, acc);
  });
  return k.build();
}

KernelSpec div_chain(DType t, std::uint32_t size) {
  KernelBuilder k("div_chain", "custom", t, size);
  const std::uint32_t n = len1(size, 2);
  auto x = k.buffer("x", n, InitKind::RandomPos);
  auto y = k.buffer("y", n, InitKind::Zero);
  // Divider-bound: i32 exercises the serial integer divider, f32 the
  // FP divider occupying the shared FPU for many cycles.
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    auto v = k.decl("v", k.load(x, i) + k.ec(3));
    k.store(y, i, (k.ec(1000) / v) + (k.ec(500) / (v + k.ec(1))));
  });
  return k.build();
}

KernelSpec sqrt_wave(DType t, std::uint32_t size) {
  KernelBuilder k("sqrt_wave", "custom", t, size);
  const std::uint32_t n = len1(size, 2);
  auto x = k.buffer("x", n, InitKind::RandomPos);
  auto y = k.buffer("y", n, InitKind::Zero);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    if (k.elem() == DType::F32) {
      k.store(y, i, dsl::vsqrt(k.load(x, i) + k.ec(1)) +
                        dsl::vsqrt(k.load(x, i) * k.ec(2) + k.ec(1)));
    } else {
      // Integer twin: iterative Newton step (shift/add) structure.
      auto v = k.decl("v", k.load(x, i) + ic(1));
      auto g = k.decl("g", v >> ic(1));
      k.for_("r", ic(0), ic(4), [&](Val) {
        k.assign(g, (g + v / dsl::vmax(g, ic(1))) >> ic(1));
      });
      k.store(y, i, g);
    }
  });
  return k.build();
}

KernelSpec gather(DType t, std::uint32_t size) {
  KernelBuilder k("gather", "custom", t, size);
  const std::uint32_t n = len1(size, 3);
  auto x = k.buffer("x", n);
  auto idx = k.buffer_of("idx", DType::I32, n, InitKind::RandomPos);
  auto y = k.buffer("y", n, InitKind::Zero);
  // Indirect loads with data-dependent bank targets.
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    auto j = k.decl("j", k.load(idx, i) % ic(int(n)));
    k.store(y, i, k.load(x, j) + k.load(x, i));
  });
  return k.build();
}

KernelSpec scatter_mod(DType t, std::uint32_t size) {
  KernelBuilder k("scatter_mod", "custom", t, size);
  const std::uint32_t n = len1(size, 2);
  auto x = k.buffer("x", n);
  auto y = k.buffer("y", n, InitKind::Zero);
  // Prime-strided writes: each store lands on a rotating bank, giving a
  // moderate, core-count-dependent conflict rate.
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    auto j = k.decl("j", (i * ic(7) + ic(3)) % ic(int(n)));
    k.store(y, j, k.load(x, i));
  });
  return k.build();
}

KernelSpec stride_conflict(DType t, std::uint32_t size) {
  KernelBuilder k("stride_conflict", "custom", t, size);
  const std::uint32_t n = len1(size, 2);
  const std::uint32_t stride = 16;  // == number of TCDM banks
  auto x = k.buffer("x", n);
  auto y = k.buffer("y", n, InitKind::Zero);
  // Bank-width stride: every access from every core lands on bank 0, so
  // the interconnect serialises the cluster's memory traffic.
  k.par_for("i", ic(0), ic(int(n / stride)), [&](Val i) {
    auto j = k.decl("j", i * ic(int(stride)));
    k.for_("s", ic(0), ic(4), [&](Val) {
      k.store(y, j, k.load(x, j) + k.ec(1));
    });
  });
  return k.build();
}

KernelSpec l2_stream(DType t, std::uint32_t size) {
  KernelBuilder k("l2_stream", "custom", t, size);
  const std::uint32_t n = len1(size, 2);
  auto src = k.buffer("src", n, InitKind::Random, MemSpace::L2);
  auto dst = k.buffer("dst", n, InitKind::Zero);
  // Off-cluster reads: every load pays the 15-cycle L2 latency, so the
  // kernel is latency- rather than throughput-bound.
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    k.store(dst, i, k.load(src, i) + k.ec(1));
  });
  return k.build();
}

KernelSpec dma_pingpong(DType t, std::uint32_t size) {
  KernelBuilder k("dma_pingpong", "custom", t, size);
  const std::uint32_t n = len1(size, 3);
  const std::uint32_t half = std::max(8U, n / 2);
  auto big = k.buffer("big", n, InitKind::Random, MemSpace::L2);
  auto buf0 = k.buffer("buf0", half, InitKind::Zero);
  auto buf1 = k.buffer("buf1", half, InitKind::Zero);
  auto out = k.buffer("out", n, InitKind::Zero);
  // Double-buffered processing of L2-resident data through the DMA.
  k.dma_copy(buf0, big, half);
  k.dma_wait();
  k.dma_copy(buf1, big, half);
  k.par_for("i", ic(0), ic(int(half)), [&](Val i) {
    k.store(out, i, k.load(buf0, i) * k.ec(2));
  });
  k.dma_wait();
  k.par_for("i2", ic(0), ic(int(half)), [&](Val i) {
    k.store(out, i + ic(int(half)), k.load(buf1, i) * k.ec(2));
  });
  return k.build();
}

KernelSpec spin_counter(DType t, std::uint32_t size) {
  KernelBuilder k("spin_counter", "custom", t, size);
  const std::uint32_t rounds = std::min(512U, len1(size, 1) / 4);
  auto out = k.buffer("out", 8, InitKind::Zero);
  // A shared counter bumped under the lock with no other work at all:
  // the purest synchronisation-bound sample.
  k.par_for("i", ic(0), ic(int(rounds * 8)), [&](Val) {
    k.critical([&] {
      k.store(out, ic(0), k.load(out, ic(0)) + ic(1));
    });
  });
  return k.build();
}

KernelSpec alu_chain(DType t, std::uint32_t size) {
  KernelBuilder k("alu_chain", "custom", t, size);
  const std::uint32_t n = len1(size, 1);
  auto y = k.buffer("y", n, InitKind::Zero);
  // Compute-bound with almost no memory traffic: embarrassingly parallel,
  // the textbook 8-core sample.
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    auto v = k.decl("v", i + ic(1));
    k.for_("r", ic(0), ic(12), [&](Val) {
      k.assign(v, (v * ic(5) + ic(3)) ^ (v >> ic(2)));
    });
    k.store(y, i, k.to_elem(v));
  });
  return k.build();
}

KernelSpec mixed_balance(DType t, std::uint32_t size) {
  KernelBuilder k("mixed_balance", "custom", t, size);
  const std::uint32_t n = len1(size, 2);
  auto x = k.buffer("x", n);
  auto y = k.buffer("y", n, InitKind::Zero);
  // Alternating memory and compute phases in one loop body.
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    auto a = k.decl("a", k.load(x, i));
    auto b = k.decl("b", a * a + k.ec(1));
    k.for_("r", ic(0), ic(3), [&](Val) {
      k.assign(b, b * a + k.ec(2));
    });
    k.store(y, i, b + k.load(x, (i + ic(1)) % ic(int(n))));
  });
  return k.build();
}

KernelSpec stencil5(DType t, std::uint32_t size) {
  KernelBuilder k("stencil5", "custom", t, size);
  const std::uint32_t n = len1(size, 2);
  auto a = k.buffer("a", n);
  auto b = k.buffer("b", n, InitKind::Zero);
  // 1-D 5-point stencil: unit-stride loads spread across banks.
  k.par_for("i", ic(2), ic(int(n) - 2), [&](Val i) {
    k.store(b, i,
            k.load(a, i - ic(2)) + k.load(a, i - ic(1)) +
                k.ec(2) * k.load(a, i) + k.load(a, i + ic(1)) +
                k.load(a, i + ic(2)));
  });
  return k.build();
}

KernelSpec prefix_sweep(DType t, std::uint32_t size) {
  KernelBuilder k("prefix_sweep", "custom", t, size);
  const std::uint32_t n = pow2_len(size, 1);
  auto x = k.buffer("x", n);
  // Blelloch-style up-sweep: log n parallel phases whose width halves
  // every phase, so late phases cannot feed 8 cores.
  const int levels = ilog2(n);
  k.for_("lvl", ic(0), ic(levels), [&](Val lvl) {
    auto span = k.decl("span", ic(1) << lvl);
    auto pairs = k.decl("pairs", ic(int(n)) >> (lvl + ic(1)));
    k.par_for("i", ic(0), pairs, [&](Val i) {
      auto right = k.decl("right", (i * span * ic(2)) + span * ic(2) - ic(1));
      k.store(x, right, k.load(x, right) + k.load(x, right - span));
    });
  });
  return k.build();
}

}  // namespace

void register_custom(std::vector<KernelInfo>& out) {
  const auto add = [&](const char* name, TypeSupport types,
                       KernelSpec (*fn)(DType, std::uint32_t)) {
    out.push_back(KernelInfo{name, "custom", types, fn});
  };
  add("memcpy", TypeSupport::Both, memcpy_k);
  add("memset", TypeSupport::Both, memset_k);
  add("stream_triad", TypeSupport::Both, stream_triad);
  add("reduction_sum", TypeSupport::Both, reduction_sum);
  add("reduction_critical", TypeSupport::Both, reduction_critical);
  add("barrier_sweep", TypeSupport::Both, barrier_sweep);
  add("fpu_storm", TypeSupport::Both, fpu_storm);
  add("div_chain", TypeSupport::Both, div_chain);
  add("sqrt_wave", TypeSupport::Both, sqrt_wave);
  add("gather", TypeSupport::Both, gather);
  add("scatter_mod", TypeSupport::Both, scatter_mod);
  add("stride_conflict", TypeSupport::Both, stride_conflict);
  add("l2_stream", TypeSupport::Both, l2_stream);
  add("dma_pingpong", TypeSupport::Both, dma_pingpong);
  add("spin_counter", TypeSupport::Both, spin_counter);
  add("alu_chain", TypeSupport::Both, alu_chain);
  add("mixed_balance", TypeSupport::Both, mixed_balance);
  add("stencil5", TypeSupport::Both, stencil5);
  add("prefix_sweep", TypeSupport::Both, prefix_sweep);
}

}  // namespace pulpc::kernels
