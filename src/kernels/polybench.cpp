// Polybench suite: 26 kernels ported to the DSL the way the paper ports
// them to PULP's OpenMP subset — static loop schedules only, data in
// TCDM, parametric element type and problem size. Dimensions are derived
// from the total footprint so every instance fits the scratchpad.
#include "kernels/common.hpp"
#include "kernels/registry.hpp"

namespace pulpc::kernels {

namespace {

using dsl::InitKind;
using dsl::KernelBuilder;
using dsl::KernelSpec;
using dsl::Val;
using kir::DType;

Val ic(std::int32_t v) { return dsl::make_const_i(v); }

/// Row-major 2-D index helper.
Val at(Val i, std::uint32_t n, Val j) { return i * ic(int(n)) + j; }

/// n such that an n x n matrix plus `extra_vecs` length-n vectors fit.
std::uint32_t dim2_vec(std::uint32_t size, std::uint32_t mats,
                       std::uint32_t extra_vecs) {
  std::uint32_t n = dim2(size, mats);
  while (n > 4 && mats * n * n + extra_vecs * n > total_elems(size)) --n;
  return n;
}

KernelSpec gemm(DType t, std::uint32_t size) {
  KernelBuilder k("gemm", "polybench", t, size);
  const std::uint32_t n = dim2(size, 3);
  auto a = k.buffer("A", n * n);
  auto b = k.buffer("B", n * n);
  auto c = k.buffer("C", n * n);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    k.for_("j", ic(0), ic(int(n)), [&](Val j) {
      auto acc = k.decl("acc", k.ec(0));
      k.for_("kk", ic(0), ic(int(n)), [&](Val kk) {
        k.assign(acc, acc + k.load(a, at(i, n, kk)) * k.load(b, at(kk, n, j)));
      });
      k.store(c, at(i, n, j), k.ec(2) * acc + k.ec(1) * k.load(c, at(i, n, j)));
    });
  });
  return k.build();
}

KernelSpec two_mm(DType t, std::uint32_t size) {
  KernelBuilder k("2mm", "polybench", t, size);
  const std::uint32_t n = dim2(size, 5);
  auto a = k.buffer("A", n * n);
  auto b = k.buffer("B", n * n);
  auto c = k.buffer("C", n * n);
  auto d = k.buffer("D", n * n);
  auto tmp = k.buffer("tmp", n * n, InitKind::Zero);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    k.for_("j", ic(0), ic(int(n)), [&](Val j) {
      auto acc = k.decl("acc", k.ec(0));
      k.for_("kk", ic(0), ic(int(n)), [&](Val kk) {
        k.assign(acc, acc + k.load(a, at(i, n, kk)) * k.load(b, at(kk, n, j)));
      });
      k.store(tmp, at(i, n, j), k.ec(2) * acc);
    });
  });
  k.par_for("i2", ic(0), ic(int(n)), [&](Val i) {
    k.for_("j2", ic(0), ic(int(n)), [&](Val j) {
      auto acc = k.decl("acc2", k.load(d, at(i, n, j)));
      k.for_("k2", ic(0), ic(int(n)), [&](Val kk) {
        k.assign(acc,
                 acc + k.load(tmp, at(i, n, kk)) * k.load(c, at(kk, n, j)));
      });
      k.store(d, at(i, n, j), acc);
    });
  });
  return k.build();
}

KernelSpec three_mm(DType t, std::uint32_t size) {
  KernelBuilder k("3mm", "polybench", t, size);
  const std::uint32_t n = dim2(size, 7);
  auto a = k.buffer("A", n * n);
  auto b = k.buffer("B", n * n);
  auto c = k.buffer("C", n * n);
  auto d = k.buffer("D", n * n);
  auto e = k.buffer("E", n * n, InitKind::Zero);
  auto f = k.buffer("F", n * n, InitKind::Zero);
  auto g = k.buffer("G", n * n, InitKind::Zero);
  const auto matmul = [&](const dsl::Buf& dst, const dsl::Buf& x,
                          const dsl::Buf& y, const std::string& sfx) {
    k.par_for("i" + sfx, ic(0), ic(int(n)), [&](Val i) {
      k.for_("j" + sfx, ic(0), ic(int(n)), [&](Val j) {
        auto acc = k.decl("acc" + sfx, k.ec(0));
        k.for_("k" + sfx, ic(0), ic(int(n)), [&](Val kk) {
          k.assign(acc,
                   acc + k.load(x, at(i, n, kk)) * k.load(y, at(kk, n, j)));
        });
        k.store(dst, at(i, n, j), acc);
      });
    });
  };
  matmul(e, a, b, "0");
  matmul(f, c, d, "1");
  matmul(g, e, f, "2");
  return k.build();
}

KernelSpec atax(DType t, std::uint32_t size) {
  KernelBuilder k("atax", "polybench", t, size);
  const std::uint32_t n = dim2_vec(size, 1, 3);
  auto a = k.buffer("A", n * n);
  auto x = k.buffer("x", n);
  auto tmp = k.buffer("tmp", n, InitKind::Zero);
  auto y = k.buffer("y", n, InitKind::Zero);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    auto acc = k.decl("acc", k.ec(0));
    k.for_("j", ic(0), ic(int(n)), [&](Val j) {
      k.assign(acc, acc + k.load(a, at(i, n, j)) * k.load(x, j));
    });
    k.store(tmp, i, acc);
  });
  k.par_for("j2", ic(0), ic(int(n)), [&](Val j) {
    auto acc = k.decl("acc2", k.ec(0));
    k.for_("i2", ic(0), ic(int(n)), [&](Val i) {
      k.assign(acc, acc + k.load(a, at(i, n, j)) * k.load(tmp, i));
    });
    k.store(y, j, acc);
  });
  return k.build();
}

KernelSpec bicg(DType t, std::uint32_t size) {
  KernelBuilder k("bicg", "polybench", t, size);
  const std::uint32_t n = dim2_vec(size, 1, 4);
  auto a = k.buffer("A", n * n);
  auto r = k.buffer("r", n);
  auto p = k.buffer("p", n);
  auto s = k.buffer("s", n, InitKind::Zero);
  auto q = k.buffer("q", n, InitKind::Zero);
  k.par_for("j", ic(0), ic(int(n)), [&](Val j) {
    auto acc = k.decl("acc", k.ec(0));
    k.for_("i", ic(0), ic(int(n)), [&](Val i) {
      k.assign(acc, acc + k.load(r, i) * k.load(a, at(i, n, j)));
    });
    k.store(s, j, acc);
  });
  k.par_for("i2", ic(0), ic(int(n)), [&](Val i) {
    auto acc = k.decl("acc2", k.ec(0));
    k.for_("j2", ic(0), ic(int(n)), [&](Val j) {
      k.assign(acc, acc + k.load(a, at(i, n, j)) * k.load(p, j));
    });
    k.store(q, i, acc);
  });
  return k.build();
}

KernelSpec mvt(DType t, std::uint32_t size) {
  KernelBuilder k("mvt", "polybench", t, size);
  const std::uint32_t n = dim2_vec(size, 1, 4);
  auto a = k.buffer("A", n * n);
  auto x1 = k.buffer("x1", n);
  auto x2 = k.buffer("x2", n);
  auto y1 = k.buffer("y1", n);
  auto y2 = k.buffer("y2", n);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    auto acc = k.decl("acc", k.load(x1, i));
    k.for_("j", ic(0), ic(int(n)), [&](Val j) {
      k.assign(acc, acc + k.load(a, at(i, n, j)) * k.load(y1, j));
    });
    k.store(x1, i, acc);
  });
  k.par_for("i2", ic(0), ic(int(n)), [&](Val i) {
    auto acc = k.decl("acc2", k.load(x2, i));
    k.for_("j2", ic(0), ic(int(n)), [&](Val j) {
      k.assign(acc, acc + k.load(a, at(j, n, i)) * k.load(y2, j));
    });
    k.store(x2, i, acc);
  });
  return k.build();
}

KernelSpec gemver(DType t, std::uint32_t size) {
  KernelBuilder k("gemver", "polybench", t, size);
  const std::uint32_t n = dim2_vec(size, 1, 8);
  auto a = k.buffer("A", n * n);
  auto u1 = k.buffer("u1", n);
  auto v1 = k.buffer("v1", n);
  auto u2 = k.buffer("u2", n);
  auto v2 = k.buffer("v2", n);
  auto x = k.buffer("x", n, InitKind::Zero);
  auto y = k.buffer("y", n);
  auto z = k.buffer("z", n);
  auto w = k.buffer("w", n, InitKind::Zero);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    k.for_("j", ic(0), ic(int(n)), [&](Val j) {
      k.store(a, at(i, n, j),
              k.load(a, at(i, n, j)) + k.load(u1, i) * k.load(v1, j) +
                  k.load(u2, i) * k.load(v2, j));
    });
  });
  k.par_for("i2", ic(0), ic(int(n)), [&](Val i) {
    auto acc = k.decl("acc", k.load(x, i));
    k.for_("j2", ic(0), ic(int(n)), [&](Val j) {
      k.assign(acc, acc + k.ec(3) * k.load(a, at(j, n, i)) * k.load(y, j));
    });
    k.store(x, i, acc + k.load(z, i));
  });
  k.par_for("i3", ic(0), ic(int(n)), [&](Val i) {
    auto acc = k.decl("acc2", k.ec(0));
    k.for_("j3", ic(0), ic(int(n)), [&](Val j) {
      k.assign(acc, acc + k.ec(2) * k.load(a, at(i, n, j)) * k.load(x, j));
    });
    k.store(w, i, acc);
  });
  return k.build();
}

KernelSpec gesummv(DType t, std::uint32_t size) {
  KernelBuilder k("gesummv", "polybench", t, size);
  const std::uint32_t n = dim2_vec(size, 2, 2);
  auto a = k.buffer("A", n * n);
  auto b = k.buffer("B", n * n);
  auto x = k.buffer("x", n);
  auto y = k.buffer("y", n, InitKind::Zero);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    auto s1 = k.decl("s1", k.ec(0));
    auto s2 = k.decl("s2", k.ec(0));
    k.for_("j", ic(0), ic(int(n)), [&](Val j) {
      k.assign(s1, s1 + k.load(a, at(i, n, j)) * k.load(x, j));
      k.assign(s2, s2 + k.load(b, at(i, n, j)) * k.load(x, j));
    });
    k.store(y, i, k.ec(3) * s1 + k.ec(2) * s2);
  });
  return k.build();
}

KernelSpec syrk(DType t, std::uint32_t size) {
  KernelBuilder k("syrk", "polybench", t, size);
  const std::uint32_t n = dim2(size, 2);
  auto a = k.buffer("A", n * n);
  auto c = k.buffer("C", n * n);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    k.for_("j", ic(0), i + ic(1), [&](Val j) {
      auto acc = k.decl("acc", k.ec(1) * k.load(c, at(i, n, j)));
      k.for_("kk", ic(0), ic(int(n)), [&](Val kk) {
        k.assign(acc,
                 acc + k.load(a, at(i, n, kk)) * k.load(a, at(j, n, kk)));
      });
      k.store(c, at(i, n, j), acc);
    });
  });
  return k.build();
}

KernelSpec syr2k(DType t, std::uint32_t size) {
  KernelBuilder k("syr2k", "polybench", t, size);
  const std::uint32_t n = dim2(size, 3);
  auto a = k.buffer("A", n * n);
  auto b = k.buffer("B", n * n);
  auto c = k.buffer("C", n * n);
  k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
    k.for_("j", ic(0), i + ic(1), [&](Val j) {
      auto acc = k.decl("acc", k.load(c, at(i, n, j)));
      k.for_("kk", ic(0), ic(int(n)), [&](Val kk) {
        k.assign(acc, acc + k.load(a, at(j, n, kk)) * k.load(b, at(i, n, kk)) +
                          k.load(b, at(j, n, kk)) * k.load(a, at(i, n, kk)));
      });
      k.store(c, at(i, n, j), acc);
    });
  });
  return k.build();
}

KernelSpec trmm(DType t, std::uint32_t size) {
  KernelBuilder k("trmm", "polybench", t, size);
  const std::uint32_t n = dim2(size, 2);
  auto a = k.buffer("A", n * n);
  auto b = k.buffer("B", n * n);
  k.par_for("j", ic(0), ic(int(n)), [&](Val j) {
    k.for_("i", ic(0), ic(int(n)), [&](Val i) {
      auto acc = k.decl("acc", k.load(b, at(i, n, j)));
      k.for_("kk", i + ic(1), ic(int(n)), [&](Val kk) {
        k.assign(acc,
                 acc + k.load(a, at(kk, n, i)) * k.load(b, at(kk, n, j)));
      });
      k.store(b, at(i, n, j), k.ec(2) * acc);
    });
  });
  return k.build();
}

KernelSpec symm(DType t, std::uint32_t size) {
  KernelBuilder k("symm", "polybench", t, size);
  const std::uint32_t n = dim2(size, 3);
  auto a = k.buffer("A", n * n);
  auto b = k.buffer("B", n * n);
  auto c = k.buffer("C", n * n);
  // Parallel over columns: every (i, j) update only touches column j.
  k.par_for("j", ic(0), ic(int(n)), [&](Val j) {
    k.for_("i", ic(0), ic(int(n)), [&](Val i) {
      auto acc = k.decl("acc", k.ec(0));
      k.for_("kk", ic(0), i, [&](Val kk) {
        k.assign(acc, acc + k.load(a, at(i, n, kk)) * k.load(b, at(kk, n, j)));
      });
      k.store(c, at(i, n, j),
              k.ec(1) * k.load(c, at(i, n, j)) + k.ec(2) * acc +
                  k.ec(2) * k.load(a, at(i, n, i)) * k.load(b, at(i, n, j)));
    });
  });
  return k.build();
}

KernelSpec trisolv(DType t, std::uint32_t size) {
  KernelBuilder k("trisolv", "polybench", t, size);
  const std::uint32_t n = dim2_vec(size, 1, 2);
  auto l = k.buffer("L", n * n, InitKind::RandomPos);
  auto b = k.buffer("b", n);
  auto x = k.buffer("x", n, InitKind::Zero);
  // Forward substitution: inherently sequential (each x[i] needs all
  // previous ones) -> a serial sample in the dataset.
  k.for_("i", ic(0), ic(int(n)), [&](Val i) {
    auto acc = k.decl("acc", k.load(b, i));
    k.for_("j", ic(0), i, [&](Val j) {
      k.assign(acc, acc - k.load(l, at(i, n, j)) * k.load(x, j));
    });
    k.store(x, i, acc / k.load(l, at(i, n, i)));
  });
  return k.build();
}

KernelSpec durbin(DType t, std::uint32_t size) {
  KernelBuilder k("durbin", "polybench", t, size);
  const std::uint32_t n = len1(size, 3);
  auto r = k.buffer("r", n);
  auto y = k.buffer("y", n, InitKind::Zero);
  auto z = k.buffer("z", n, InitKind::Zero);
  // Levinson-Durbin recursion: serial outer loop with data-dependent
  // inner sweeps (simplified update rule, same loop/opcode structure).
  k.store(y, ic(0), k.ec(0) - k.load(r, ic(0)));
  k.for_("kk", ic(1), ic(int(n)), [&](Val kk) {
    auto acc = k.decl("acc", k.load(r, kk));
    k.for_("i", ic(0), kk, [&](Val i) {
      k.assign(acc, acc + k.load(r, kk - i - ic(1)) * k.load(y, i));
    });
    auto alpha = k.decl("alpha", k.ec(0) - acc);
    k.for_("i2", ic(0), kk, [&](Val i) {
      k.store(z, i, k.load(y, i) + alpha * k.load(y, kk - i - ic(1)));
    });
    k.for_("i3", ic(0), kk, [&](Val i) { k.store(y, i, k.load(z, i)); });
    k.store(y, kk, alpha);
  });
  return k.build();
}

KernelSpec lu(DType t, std::uint32_t size) {
  KernelBuilder k("lu", "polybench", t, size);
  const std::uint32_t n = dim2(size, 1);
  auto a = k.buffer("A", n * n, InitKind::RandomPos);
  k.for_("kk", ic(0), ic(int(n) - 1), [&](Val kk) {
    k.par_for("i", kk + ic(1), ic(int(n)), [&](Val i) {
      k.store(a, at(i, n, kk),
              k.load(a, at(i, n, kk)) / k.load(a, at(kk, n, kk)));
    });
    k.par_for("i2", kk + ic(1), ic(int(n)), [&](Val i) {
      k.for_("j", kk + ic(1), ic(int(n)), [&](Val j) {
        k.store(a, at(i, n, j),
                k.load(a, at(i, n, j)) -
                    k.load(a, at(i, n, kk)) * k.load(a, at(kk, n, j)));
      });
    });
  });
  return k.build();
}

KernelSpec doitgen(DType t, std::uint32_t size) {
  KernelBuilder k("doitgen", "polybench", t, size);
  const std::uint32_t n = dim3(size, 2);
  auto a = k.buffer("A", n * n * n);
  auto out = k.buffer("B", n * n * n, InitKind::Zero);
  auto c4 = k.buffer("C4", n * n);
  k.par_for("rr", ic(0), ic(int(n)), [&](Val r) {
    k.for_("q", ic(0), ic(int(n)), [&](Val q) {
      k.for_("p", ic(0), ic(int(n)), [&](Val p) {
        auto acc = k.decl("acc", k.ec(0));
        k.for_("s", ic(0), ic(int(n)), [&](Val s) {
          k.assign(acc, acc + k.load(a, (r * ic(int(n)) + q) * ic(int(n)) + s) *
                                  k.load(c4, at(s, n, p)));
        });
        k.store(out, (r * ic(int(n)) + q) * ic(int(n)) + p, acc);
      });
    });
  });
  return k.build();
}

KernelSpec jacobi1d(DType t, std::uint32_t size) {
  KernelBuilder k("jacobi1d", "polybench", t, size);
  const std::uint32_t n = len1(size, 2);
  auto a = k.buffer("A", n);
  auto b = k.buffer("B", n, InitKind::Zero);
  k.for_("t", ic(0), ic(2), [&](Val) {
    k.par_for("i", ic(1), ic(int(n) - 1), [&](Val i) {
      k.store(b, i,
              div_const(k, k.load(a, i - ic(1)) + k.load(a, i) +
                               k.load(a, i + ic(1)),
                        3));
    });
    k.par_for("i2", ic(1), ic(int(n) - 1), [&](Val i) {
      k.store(a, i,
              div_const(k, k.load(b, i - ic(1)) + k.load(b, i) +
                               k.load(b, i + ic(1)),
                        3));
    });
  });
  return k.build();
}

KernelSpec jacobi2d(DType t, std::uint32_t size) {
  KernelBuilder k("jacobi2d", "polybench", t, size);
  const std::uint32_t n = dim2(size, 2);
  auto a = k.buffer("A", n * n);
  auto b = k.buffer("B", n * n, InitKind::Zero);
  k.for_("t", ic(0), ic(2), [&](Val) {
    k.par_for("i", ic(1), ic(int(n) - 1), [&](Val i) {
      k.for_("j", ic(1), ic(int(n) - 1), [&](Val j) {
        k.store(b, at(i, n, j),
                div_const(k,
                          k.load(a, at(i, n, j)) + k.load(a, at(i, n, j - ic(1))) +
                              k.load(a, at(i, n, j + ic(1))) +
                              k.load(a, at(i + ic(1), n, j)) +
                              k.load(a, at(i - ic(1), n, j)),
                          5));
      });
    });
    k.par_for("i2", ic(1), ic(int(n) - 1), [&](Val i) {
      k.for_("j2", ic(1), ic(int(n) - 1), [&](Val j) {
        k.store(a, at(i, n, j), k.load(b, at(i, n, j)));
      });
    });
  });
  return k.build();
}

KernelSpec seidel2d(DType t, std::uint32_t size) {
  KernelBuilder k("seidel2d", "polybench", t, size);
  const std::uint32_t n = dim2(size, 1);
  auto a = k.buffer("A", n * n);
  // Gauss-Seidel sweeps are loop-carried in both i and j: fully serial.
  k.for_("t", ic(0), ic(2), [&](Val) {
    k.for_("i", ic(1), ic(int(n) - 1), [&](Val i) {
      k.for_("j", ic(1), ic(int(n) - 1), [&](Val j) {
        k.store(a, at(i, n, j),
                div_const(k,
                          k.load(a, at(i - ic(1), n, j - ic(1))) +
                              k.load(a, at(i - ic(1), n, j)) +
                              k.load(a, at(i - ic(1), n, j + ic(1))) +
                              k.load(a, at(i, n, j - ic(1))) +
                              k.load(a, at(i, n, j)) +
                              k.load(a, at(i, n, j + ic(1))) +
                              k.load(a, at(i + ic(1), n, j - ic(1))) +
                              k.load(a, at(i + ic(1), n, j)) +
                              k.load(a, at(i + ic(1), n, j + ic(1))),
                          9));
      });
    });
  });
  return k.build();
}

KernelSpec fdtd2d(DType t, std::uint32_t size) {
  KernelBuilder k("fdtd2d", "polybench", t, size);
  const std::uint32_t n = dim2(size, 3);
  auto ex = k.buffer("ex", n * n);
  auto ey = k.buffer("ey", n * n);
  auto hz = k.buffer("hz", n * n);
  k.for_("t", ic(0), ic(2), [&](Val tt) {
    k.par_for("j0", ic(0), ic(int(n)), [&](Val j) {
      k.store(ey, at(ic(0), n, j), k.to_elem(tt));
    });
    k.par_for("i1", ic(1), ic(int(n)), [&](Val i) {
      k.for_("j1", ic(0), ic(int(n)), [&](Val j) {
        k.store(ey, at(i, n, j),
                k.load(ey, at(i, n, j)) -
                    div_const(k,
                              k.load(hz, at(i, n, j)) -
                                  k.load(hz, at(i - ic(1), n, j)),
                              2));
      });
    });
    k.par_for("i2", ic(0), ic(int(n)), [&](Val i) {
      k.for_("j2", ic(1), ic(int(n)), [&](Val j) {
        k.store(ex, at(i, n, j),
                k.load(ex, at(i, n, j)) -
                    div_const(k,
                              k.load(hz, at(i, n, j)) -
                                  k.load(hz, at(i, n, j - ic(1))),
                              2));
      });
    });
    k.par_for("i3", ic(0), ic(int(n) - 1), [&](Val i) {
      k.for_("j3", ic(0), ic(int(n) - 1), [&](Val j) {
        k.store(hz, at(i, n, j),
                k.load(hz, at(i, n, j)) -
                    div_const(k,
                              k.load(ex, at(i, n, j + ic(1))) -
                                  k.load(ex, at(i, n, j)) +
                                  k.load(ey, at(i + ic(1), n, j)) -
                                  k.load(ey, at(i, n, j)),
                              2));
      });
    });
  });
  return k.build();
}

KernelSpec heat3d(DType t, std::uint32_t size) {
  KernelBuilder k("heat3d", "polybench", t, size);
  const std::uint32_t n = dim3(size, 2);
  auto a = k.buffer("A", n * n * n);
  auto b = k.buffer("B", n * n * n, InitKind::Zero);
  const auto at3 = [&](Val i, Val j, Val m) {
    return (i * ic(int(n)) + j) * ic(int(n)) + m;
  };
  const auto sweep = [&](const dsl::Buf& src, const dsl::Buf& dst,
                         const std::string& sfx) {
    k.par_for("i" + sfx, ic(1), ic(int(n) - 1), [&](Val i) {
      k.for_("j" + sfx, ic(1), ic(int(n) - 1), [&](Val j) {
        k.for_("m" + sfx, ic(1), ic(int(n) - 1), [&](Val m) {
          k.store(dst, at3(i, j, m),
                  div_const(k,
                            k.load(src, at3(i + ic(1), j, m)) +
                                k.load(src, at3(i - ic(1), j, m)) +
                                k.load(src, at3(i, j + ic(1), m)) +
                                k.load(src, at3(i, j - ic(1), m)) +
                                k.load(src, at3(i, j, m + ic(1))) +
                                k.load(src, at3(i, j, m - ic(1))) +
                                k.ec(2) * k.load(src, at3(i, j, m)),
                            8));
        });
      });
    });
  };
  sweep(a, b, "0");
  sweep(b, a, "1");
  return k.build();
}

KernelSpec covariance(DType t, std::uint32_t size) {
  KernelBuilder k("covariance", "polybench", t, size);
  const std::uint32_t n = dim2_vec(size, 2, 1);
  auto data = k.buffer("data", n * n);
  auto cov = k.buffer("cov", n * n, InitKind::Zero);
  auto mean = k.buffer("mean", n, InitKind::Zero);
  k.par_for("j", ic(0), ic(int(n)), [&](Val j) {
    auto acc = k.decl("acc", k.ec(0));
    k.for_("i", ic(0), ic(int(n)), [&](Val i) {
      k.assign(acc, acc + k.load(data, at(i, n, j)));
    });
    k.store(mean, j, div_const(k, acc, int(n)));
  });
  k.par_for("i2", ic(0), ic(int(n)), [&](Val i) {
    k.for_("j2", ic(0), ic(int(n)), [&](Val j) {
      k.store(data, at(i, n, j), k.load(data, at(i, n, j)) - k.load(mean, j));
    });
  });
  k.par_for("i3", ic(0), ic(int(n)), [&](Val i) {
    k.for_("j3", i, ic(int(n)), [&](Val j) {
      auto acc = k.decl("acc2", k.ec(0));
      k.for_("kk", ic(0), ic(int(n)), [&](Val kk) {
        k.assign(acc,
                 acc + k.load(data, at(kk, n, i)) * k.load(data, at(kk, n, j)));
      });
      k.store(cov, at(i, n, j), div_const(k, acc, int(n) - 1));
      k.store(cov, at(j, n, i), div_const(k, acc, int(n) - 1));
    });
  });
  return k.build();
}

KernelSpec correlation(DType t, std::uint32_t size) {
  KernelBuilder k("correlation", "polybench", t, size);
  const std::uint32_t n = dim2_vec(size, 2, 2);
  auto data = k.buffer("data", n * n);
  auto corr = k.buffer("corr", n * n, InitKind::Zero);
  auto mean = k.buffer("mean", n, InitKind::Zero);
  auto stddev = k.buffer("stddev", n, InitKind::Zero);
  k.par_for("j", ic(0), ic(int(n)), [&](Val j) {
    auto acc = k.decl("acc", k.ec(0));
    k.for_("i", ic(0), ic(int(n)), [&](Val i) {
      k.assign(acc, acc + k.load(data, at(i, n, j)));
    });
    k.store(mean, j, div_const(k, acc, int(n)));
  });
  k.par_for("j1", ic(0), ic(int(n)), [&](Val j) {
    auto acc = k.decl("acc1", k.ec(0));
    k.for_("i1", ic(0), ic(int(n)), [&](Val i) {
      auto d = k.decl("d", k.load(data, at(i, n, j)) - k.load(mean, j));
      k.assign(acc, acc + d * d);
    });
    k.store(stddev, j, dsl::vsqrt(div_const(k, acc, int(n))) +
                           dsl::make_const_f(1e-6F));
  });
  k.par_for("i2", ic(0), ic(int(n)), [&](Val i) {
    k.for_("j2", ic(0), ic(int(n)), [&](Val j) {
      k.store(data, at(i, n, j),
              (k.load(data, at(i, n, j)) - k.load(mean, j)) /
                  k.load(stddev, j));
    });
  });
  k.par_for("i3", ic(0), ic(int(n)), [&](Val i) {
    k.for_("j3", i, ic(int(n)), [&](Val j) {
      auto acc = k.decl("acc3", k.ec(0));
      k.for_("kk", ic(0), ic(int(n)), [&](Val kk) {
        k.assign(acc,
                 acc + k.load(data, at(kk, n, i)) * k.load(data, at(kk, n, j)));
      });
      k.store(corr, at(i, n, j), div_const(k, acc, int(n)));
      k.store(corr, at(j, n, i), div_const(k, acc, int(n)));
    });
  });
  return k.build();
}

KernelSpec cholesky(DType t, std::uint32_t size) {
  KernelBuilder k("cholesky", "polybench", t, size);
  const std::uint32_t n = dim2(size, 1);
  auto a = k.buffer("A", n * n, InitKind::RandomPos);
  k.for_("kk", ic(0), ic(int(n)), [&](Val kk) {
    k.store(a, at(kk, n, kk), dsl::vsqrt(k.load(a, at(kk, n, kk))));
    k.par_for("i", kk + ic(1), ic(int(n)), [&](Val i) {
      k.store(a, at(i, n, kk),
              k.load(a, at(i, n, kk)) / k.load(a, at(kk, n, kk)));
    });
    k.par_for("i2", kk + ic(1), ic(int(n)), [&](Val i) {
      k.for_("j", kk + ic(1), i + ic(1), [&](Val j) {
        k.store(a, at(i, n, j),
                k.load(a, at(i, n, j)) -
                    k.load(a, at(i, n, kk)) * k.load(a, at(j, n, kk)));
      });
    });
  });
  return k.build();
}

KernelSpec floyd_warshall(DType t, std::uint32_t size) {
  KernelBuilder k("floyd_warshall", "polybench", t, size);
  const std::uint32_t n = dim2(size, 1);
  auto path = k.buffer("path", n * n, InitKind::RandomPos);
  k.for_("kk", ic(0), ic(int(n)), [&](Val kk) {
    k.par_for("i", ic(0), ic(int(n)), [&](Val i) {
      k.for_("j", ic(0), ic(int(n)), [&](Val j) {
        k.store(path, at(i, n, j),
                dsl::vmin(k.load(path, at(i, n, j)),
                          k.load(path, at(i, n, kk)) +
                              k.load(path, at(kk, n, j))));
      });
    });
  });
  return k.build();
}

KernelSpec nussinov(DType t, std::uint32_t size) {
  KernelBuilder k("nussinov", "polybench", t, size);
  const std::uint32_t n = dim2_vec(size, 1, 1);
  auto table = k.buffer("table", n * n, InitKind::Zero);
  auto seq = k.buffer("seq", n);
  // RNA folding dynamic program: anti-diagonal dependencies keep the
  // sweeps serial; the scoring recurrence is the heavy inner loop.
  k.for_("ii", ic(0), ic(int(n)), [&](Val iirev) {
    const Val i = ic(int(n) - 1) - iirev;  // reversed row index
    k.for_("j", i + ic(1), ic(int(n)), [&](Val j) {
      auto best = k.decl("best", k.load(table, at(i + ic(1), n, j)));
      k.assign(best, dsl::vmax(best, k.load(table, i * ic(int(n)) + j - ic(1))));
      auto match =
          k.decl("match",
                 k.load(table, at(i + ic(1), n, j - ic(1))) +
                     ((k.load(seq, i) & k.ec(3)) == (k.load(seq, j) & k.ec(3))));
      k.assign(best, dsl::vmax(best, match));
      k.for_("kk", i + ic(1), j, [&](Val kk) {
        k.assign(best, dsl::vmax(best, k.load(table, at(i, n, kk)) +
                                           k.load(table, at(kk + ic(1), n, j))));
      });
      k.store(table, at(i, n, j), best);
    });
  });
  return k.build();
}

}  // namespace

void register_polybench(std::vector<KernelInfo>& out) {
  const auto add = [&](const char* name, TypeSupport types,
                       KernelSpec (*fn)(DType, std::uint32_t)) {
    out.push_back(KernelInfo{name, "polybench", types, fn});
  };
  add("gemm", TypeSupport::Both, gemm);
  add("2mm", TypeSupport::Both, two_mm);
  add("3mm", TypeSupport::Both, three_mm);
  add("atax", TypeSupport::Both, atax);
  add("bicg", TypeSupport::Both, bicg);
  add("mvt", TypeSupport::Both, mvt);
  add("gemver", TypeSupport::Both, gemver);
  add("gesummv", TypeSupport::Both, gesummv);
  add("syrk", TypeSupport::Both, syrk);
  add("syr2k", TypeSupport::Both, syr2k);
  add("trmm", TypeSupport::Both, trmm);
  add("symm", TypeSupport::Both, symm);
  add("trisolv", TypeSupport::Both, trisolv);
  add("durbin", TypeSupport::Both, durbin);
  add("lu", TypeSupport::Both, lu);
  add("doitgen", TypeSupport::Both, doitgen);
  add("jacobi1d", TypeSupport::Both, jacobi1d);
  add("jacobi2d", TypeSupport::Both, jacobi2d);
  add("seidel2d", TypeSupport::Both, seidel2d);
  add("fdtd2d", TypeSupport::Both, fdtd2d);
  add("heat3d", TypeSupport::Both, heat3d);
  add("covariance", TypeSupport::Both, covariance);
  add("correlation", TypeSupport::FloatOnly, correlation);
  add("cholesky", TypeSupport::FloatOnly, cholesky);
  add("floyd_warshall", TypeSupport::IntOnly, floyd_warshall);
  add("nussinov", TypeSupport::IntOnly, nussinov);
}

}  // namespace pulpc::kernels
