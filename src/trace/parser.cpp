#include "trace/parser.hpp"

#include <regex>

namespace pulpc::trace {

std::optional<TraceEvent> parse_line(const std::string& line) {
  static const std::regex kLine(R"(^\s*(\d+):\s*(\S+):\s*(.*?)\s*$)");
  std::smatch m;
  if (!std::regex_match(line, m, kLine)) return std::nullopt;
  TraceEvent ev;
  try {
    ev.cycle = std::stoull(m[1].str());
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
  ev.path = m[2].str();
  ev.message = m[3].str();
  return ev;
}

std::optional<std::int64_t> message_field(const std::string& message,
                                          const std::string& key) {
  const std::regex kField(key + R"(=(-?\d+))");
  std::smatch m;
  if (!std::regex_search(message, m, kField)) return std::nullopt;
  try {
    return std::stoll(m[1].str());
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

}  // namespace pulpc::trace
