// Trace line parsing. As in the paper, the trace-analyser "reads the
// GVSOC trace line by line and parses it using regular expressions to
// obtain: the event cycle number, the path of the component that issued
// the event, and other information that will be analysed later by a
// listener".
#pragma once

#include <optional>
#include <string>

#include "trace/sinks.hpp"

namespace pulpc::trace {

/// Parse one "<cycle>: <path>: <message>" line. Returns nullopt for
/// malformed lines (blank lines and comments starting with '#' are also
/// rejected so callers can count them as skipped).
[[nodiscard]] std::optional<TraceEvent> parse_line(const std::string& line);

/// Extract a "key=value" integer field from an event message, e.g.
/// n from "busy n=10" or words from "start ... words=128".
[[nodiscard]] std::optional<std::int64_t> message_field(
    const std::string& message, const std::string& key);

}  // namespace pulpc::trace
