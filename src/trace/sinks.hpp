// Concrete trace sinks: a text writer producing the GVSOC-style
// `cycle: path: message` line format the paper's trace-analyser parses,
// and an in-memory sink for tests.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/trace_sink.hpp"

namespace pulpc::trace {

/// One parsed/recorded trace event.
struct TraceEvent {
  std::uint64_t cycle = 0;
  std::string path;
  std::string message;
};

/// Writes events as text lines: "<cycle>: <path>: <message>".
class TextTraceWriter final : public sim::TraceSink {
 public:
  /// The stream must outlive the writer.
  explicit TextTraceWriter(std::ostream& out) : out_(&out) {}

  void event(std::uint64_t cycle, const std::string& path,
             const std::string& message) override {
    *out_ << cycle << ": " << path << ": " << message << '\n';
  }

 private:
  std::ostream* out_;
};

/// Buffers events in memory (test helper).
class MemoryTraceSink final : public sim::TraceSink {
 public:
  void event(std::uint64_t cycle, const std::string& path,
             const std::string& message) override {
    events_.push_back(TraceEvent{cycle, path, message});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  void clear() noexcept { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace pulpc::trace
