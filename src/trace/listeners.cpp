#include "trace/listeners.hpp"

#include <algorithm>
#include <array>

#include "kir/ir.hpp"

namespace pulpc::trace {

namespace {

/// State-code encoding shared with the simulator's trace emission:
/// class index * 2 + (1 if a contention/multi-cycle stall cycle).
constexpr int kNumStateCodes = 12;

int state_code_from_message(const std::string& msg) {
  static const std::array<std::pair<const char*, int>, kNumStateCodes>
      kStates = {{{"state=alu", 0},
                  {"state=alu_stall", 1},
                  {"state=fp", 2},
                  {"state=fp_stall", 3},
                  {"state=l1", 4},
                  {"state=l1_stall", 5},
                  {"state=l2", 6},
                  {"state=l2_stall", 7},
                  {"state=wait", 8},
                  {"state=wait_stall", 9},
                  {"state=cg", 10},
                  {"state=cg_stall", 11}}};
  for (const auto& [name, code] : kStates) {
    if (msg == name) return code;
  }
  return -1;
}

std::string pe_base(unsigned core) {
  return "/chip/cluster/pe" + std::to_string(core);
}

}  // namespace

// ---- TraceAnalyser ----------------------------------------------------

void TraceAnalyser::add(Listener& listener) {
  for (const std::string& p : listener.paths()) {
    routes_[p].push_back(&listener);
  }
}

void TraceAnalyser::feed(const TraceEvent& ev) {
  const auto it = routes_.find(ev.path);
  if (it == routes_.end()) {
    ++unclaimed_;
    return;
  }
  for (Listener* l : it->second) l->on_event(ev);
}

void TraceAnalyser::feed_line(const std::string& line) {
  const std::optional<TraceEvent> ev = parse_line(line);
  if (!ev) {
    ++malformed_;
    return;
  }
  feed(*ev);
}

std::size_t TraceAnalyser::analyse(std::istream& in) {
  std::size_t dispatched = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t before = malformed_;
    feed_line(line);
    if (malformed_ == before) ++dispatched;
  }
  return dispatched;
}

// ---- CoreListener -----------------------------------------------------

CoreListener::CoreListener(unsigned core_id) : id_(core_id) {}

std::vector<std::string> CoreListener::paths() const {
  return {pe_base(id_) + "/insn", pe_base(id_) + "/trace"};
}

void CoreListener::on_event(const TraceEvent& ev) {
  if (ev.path.ends_with("/trace")) {
    const int code = state_code_from_message(ev.message);
    if (code >= 0) state_changes_.emplace_back(ev.cycle, code);
    // kernel_enter/kernel_exit markers also appear here; the insn-level
    // markers below drive the window so both streams stay in sync.
    return;
  }

  // insn stream: the mnemonic is the first whitespace-delimited token.
  const std::size_t sp = ev.message.find(' ');
  const std::string mnem =
      sp == std::string::npos ? ev.message : ev.message.substr(0, sp);
  kir::Op op{};
  if (!kir::op_from_mnemonic(mnem, op)) return;

  if (op == kir::Op::MarkEnter) {
    in_window_ = true;
    enter_cycle_ = ev.cycle;
  }
  if (!in_window_) return;
  if (op == kir::Op::MarkExit) {
    exit_cycle_ = ev.cycle;
    in_window_ = false;
  }

  ++ops_.instrs;
  kir::OpClass cls = kir::op_class(op);
  if (kir::is_memory(op) && ev.message.find("!l2") != std::string::npos) {
    cls = kir::OpClass::MemL2;
  }
  switch (cls) {
    case kir::OpClass::Alu: ++ops_.n_alu; break;
    case kir::OpClass::Div: ++ops_.n_div; break;
    case kir::OpClass::Fp: ++ops_.n_fp; break;
    case kir::OpClass::FpDiv: ++ops_.n_fpdiv; break;
    case kir::OpClass::MemL1: ++ops_.n_l1; break;
    case kir::OpClass::MemL2: ++ops_.n_l2; break;
    case kir::OpClass::Branch: ++ops_.n_branch; break;
    case kir::OpClass::Nop: ++ops_.n_nop; break;
    case kir::OpClass::Sync: ++ops_.n_sync; break;
  }
}

sim::CoreStats CoreListener::stats() const {
  sim::CoreStats s = ops_;
  if (!saw_kernel()) return s;
  // The simulator charges core cycles in [enter, exit - 1]: the marker
  // instructions open the window inclusively and close it exclusively.
  const std::uint64_t lo = enter_cycle_;
  const std::uint64_t hi = exit_cycle_;  // exclusive
  for (std::size_t i = 0; i < state_changes_.size(); ++i) {
    const auto [start, code] = state_changes_[i];
    const std::uint64_t end = i + 1 < state_changes_.size()
                                  ? state_changes_[i + 1].first
                                  : hi;  // last state runs to the exit
    const std::uint64_t a = std::max(start, lo);
    const std::uint64_t b = std::min(end, hi);
    if (a >= b) continue;
    const std::uint64_t n = b - a;
    switch (code / 2) {
      case 0: s.cyc_alu += n; break;
      case 1: s.cyc_fp += n; break;
      case 2: s.cyc_l1 += n; break;
      case 3: s.cyc_l2 += n; break;
      case 4: s.cyc_wait += n; break;
      case 5: s.cyc_cg += n; break;
      default: break;
    }
    if (code % 2 == 1) s.idle_cycles += n;
  }
  return s;
}

// ---- BankListener -----------------------------------------------------

BankListener::BankListener(std::string level, unsigned bank)
    : level_(std::move(level)), bank_(bank) {}

std::vector<std::string> BankListener::paths() const {
  return {"/chip/cluster/" + level_ + "/bank" + std::to_string(bank_) +
          "/trace"};
}

void BankListener::on_event(const TraceEvent& ev) {
  if (ev.message.starts_with("read")) {
    ++stats_.reads;
  } else if (ev.message.starts_with("write")) {
    ++stats_.writes;
  } else if (ev.message.starts_with("conflict")) {
    ++stats_.conflicts;
  }
}

// ---- FpuListener ------------------------------------------------------

FpuListener::FpuListener(unsigned unit) : unit_(unit) {}

std::vector<std::string> FpuListener::paths() const {
  return {"/chip/cluster/fpu" + std::to_string(unit_) + "/trace"};
}

void FpuListener::on_event(const TraceEvent& ev) {
  if (!ev.message.starts_with("busy")) return;
  if (const auto n = message_field(ev.message, "n")) {
    stats_.busy_cycles += static_cast<std::uint64_t>(*n);
  }
}

// ---- IcacheListener ---------------------------------------------------

std::vector<std::string> IcacheListener::paths() const {
  return {"/chip/cluster/icache/trace"};
}

void IcacheListener::on_event(const TraceEvent& ev) {
  if (ev.message.starts_with("refill")) ++refills_;
}

// ---- DmaListener ------------------------------------------------------

std::vector<std::string> DmaListener::paths() const {
  return {"/chip/cluster/dma/trace"};
}

void DmaListener::on_event(const TraceEvent& ev) {
  if (!ev.message.starts_with("start")) return;
  if (const auto words = message_field(ev.message, "words")) {
    stats_.beats += static_cast<std::uint64_t>(*words);
    stats_.busy_cycles += static_cast<std::uint64_t>(*words);
  }
}

// ---- PulpListeners ----------------------------------------------------

PulpListeners::PulpListeners(const sim::ClusterConfig& cfg) : cfg_(cfg) {
  cores_.reserve(cfg.num_cores);
  for (unsigned i = 0; i < cfg.num_cores; ++i) cores_.emplace_back(i);
  l1_.reserve(cfg.l1_banks);
  for (unsigned i = 0; i < cfg.l1_banks; ++i) l1_.emplace_back("l1", i);
  l2_.reserve(cfg.l2_banks);
  for (unsigned i = 0; i < cfg.l2_banks; ++i) l2_.emplace_back("l2", i);
  fpus_.reserve(cfg.num_fpus);
  for (unsigned i = 0; i < cfg.num_fpus; ++i) fpus_.emplace_back(i);
}

void PulpListeners::register_on(TraceAnalyser& analyser) {
  for (CoreListener& c : cores_) analyser.add(c);
  for (BankListener& b : l1_) analyser.add(b);
  for (BankListener& b : l2_) analyser.add(b);
  for (FpuListener& f : fpus_) analyser.add(f);
  analyser.add(icache_);
  analyser.add(dma_);
}

sim::RunStats PulpListeners::to_run_stats() const {
  sim::RunStats st;
  st.total_cores = cfg_.num_cores;
  st.core.resize(cfg_.num_cores);
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  unsigned seen = 0;
  for (unsigned i = 0; i < cfg_.num_cores; ++i) {
    st.core[i] = cores_[i].stats();
    if (cores_[i].saw_kernel()) {
      ++seen;
      const std::uint64_t e = cores_[i].enter_cycle();
      begin = begin == 0 ? e : std::min(begin, e);
      end = std::max(end, cores_[i].exit_cycle());
    }
    st.icache.uses += st.core[i].instrs;
  }
  st.ncores = seen;
  st.region_begin = begin;
  st.region_end = end;
  st.total_cycles = end;
  st.l1.resize(cfg_.l1_banks);
  for (unsigned i = 0; i < cfg_.l1_banks; ++i) st.l1[i] = l1_[i].stats();
  st.l2.resize(cfg_.l2_banks);
  for (unsigned i = 0; i < cfg_.l2_banks; ++i) st.l2[i] = l2_[i].stats();
  st.fpu.resize(cfg_.num_fpus);
  for (unsigned i = 0; i < cfg_.num_fpus; ++i) st.fpu[i] = fpus_[i].stats();
  st.icache.refills = icache_.refills();
  st.dma = dma_.stats();
  return st;
}

}  // namespace pulpc::trace
