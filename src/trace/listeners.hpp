// The paper's trace-analysis software: "a hierarchical set of listeners
// and a trace-analyser. The listeners are aggregated within the
// PULPListeners class ... PULPListeners contains 8 CoreListeners, 16
// L1BankListeners and 32 L2BankListeners. Each listener registers itself
// on the trace-analyser providing the path needed to capture the events
// intended for it."
//
// CoreListeners parse "cluster/pe*/insn" (opcode stream) and
// "cluster/pe*/trace" (operating-state changes, clock-gating, kernel
// region markers); bank listeners parse read/write/conflict events. From
// a full trace, PulpListeners reconstructs the same sim::RunStats the
// simulator counts directly — tests assert the two are identical.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/config.hpp"
#include "sim/stats.hpp"
#include "trace/parser.hpp"
#include "trace/sinks.hpp"

namespace pulpc::trace {

/// A component-level trace consumer. Registers one or more component
/// paths; the analyser routes matching events to it.
class Listener {
 public:
  virtual ~Listener() = default;
  [[nodiscard]] virtual std::vector<std::string> paths() const = 0;
  virtual void on_event(const TraceEvent& ev) = 0;
};

/// Reads a trace line by line and dispatches each event to the listeners
/// registered for its component path.
class TraceAnalyser {
 public:
  /// Register a listener (non-owning; must outlive the analyser).
  void add(Listener& listener);

  void feed(const TraceEvent& ev);
  void feed_line(const std::string& line);
  /// Parse a whole stream; returns the number of dispatched events.
  std::size_t analyse(std::istream& in);

  [[nodiscard]] std::size_t malformed_lines() const noexcept {
    return malformed_;
  }
  [[nodiscard]] std::size_t unclaimed_events() const noexcept {
    return unclaimed_;
  }

 private:
  std::unordered_map<std::string, std::vector<Listener*>> routes_;
  std::size_t malformed_ = 0;
  std::size_t unclaimed_ = 0;
};

/// Reconstructs one processing element's opcode counts and per-state
/// cycle counts from its insn/trace event streams, filtered to the kernel
/// region exactly as the simulator's own counters are.
class CoreListener final : public Listener {
 public:
  explicit CoreListener(unsigned core_id);

  [[nodiscard]] std::vector<std::string> paths() const override;
  void on_event(const TraceEvent& ev) override;

  /// True once both kernel.enter and kernel.exit have been seen.
  [[nodiscard]] bool saw_kernel() const noexcept {
    return enter_cycle_ > 0 && exit_cycle_ > 0;
  }
  [[nodiscard]] std::uint64_t enter_cycle() const noexcept {
    return enter_cycle_;
  }
  [[nodiscard]] std::uint64_t exit_cycle() const noexcept {
    return exit_cycle_;
  }

  /// Region-filtered statistics (valid after the trace has been fed).
  [[nodiscard]] sim::CoreStats stats() const;

 private:
  unsigned id_;
  bool in_window_ = false;
  std::uint64_t enter_cycle_ = 0;
  std::uint64_t exit_cycle_ = 0;
  sim::CoreStats ops_;  ///< opcode counters (cycle counters filled later)
  /// (cycle, state-code) change points; state-code = class*2 + stall.
  std::vector<std::pair<std::uint64_t, int>> state_changes_;
};

/// Counts read/write/conflict events of one TCDM or L2 bank.
class BankListener final : public Listener {
 public:
  BankListener(std::string level, unsigned bank);  ///< level: "l1" or "l2"

  [[nodiscard]] std::vector<std::string> paths() const override;
  void on_event(const TraceEvent& ev) override;

  [[nodiscard]] const sim::BankStats& stats() const noexcept { return stats_; }

 private:
  std::string level_;
  unsigned bank_;
  sim::BankStats stats_;
};

/// Accumulates busy cycles of one shared FPU.
class FpuListener final : public Listener {
 public:
  explicit FpuListener(unsigned unit);

  [[nodiscard]] std::vector<std::string> paths() const override;
  void on_event(const TraceEvent& ev) override;

  [[nodiscard]] const sim::FpuStats& stats() const noexcept { return stats_; }

 private:
  unsigned unit_;
  sim::FpuStats stats_;
};

/// Counts I-cache refills (uses are reconstructed from the cores'
/// instruction streams).
class IcacheListener final : public Listener {
 public:
  [[nodiscard]] std::vector<std::string> paths() const override;
  void on_event(const TraceEvent& ev) override;

  [[nodiscard]] std::uint64_t refills() const noexcept { return refills_; }

 private:
  std::uint64_t refills_ = 0;
};

/// Accumulates DMA transfer beats from transfer-start descriptors.
class DmaListener final : public Listener {
 public:
  [[nodiscard]] std::vector<std::string> paths() const override;
  void on_event(const TraceEvent& ev) override;

  [[nodiscard]] const sim::DmaStats& stats() const noexcept { return stats_; }

 private:
  sim::DmaStats stats_;
};

/// The paper's PULPListeners aggregate: 8 CoreListeners, 16
/// L1BankListeners, 32 L2BankListeners (plus FPU / I-cache / DMA
/// listeners), with methods to query the status of the platform.
class PulpListeners {
 public:
  explicit PulpListeners(const sim::ClusterConfig& cfg = {});

  /// Register every contained listener on the analyser.
  void register_on(TraceAnalyser& analyser);

  /// Rebuild run statistics from the parsed trace. The number of cores
  /// that executed the kernel is inferred from which cores saw region
  /// markers.
  [[nodiscard]] sim::RunStats to_run_stats() const;

  [[nodiscard]] const CoreListener& core(unsigned i) const {
    return cores_.at(i);
  }
  [[nodiscard]] const BankListener& l1_bank(unsigned i) const {
    return l1_.at(i);
  }
  [[nodiscard]] const BankListener& l2_bank(unsigned i) const {
    return l2_.at(i);
  }

 private:
  sim::ClusterConfig cfg_;
  std::vector<CoreListener> cores_;
  std::vector<BankListener> l1_;
  std::vector<BankListener> l2_;
  std::vector<FpuListener> fpus_;
  IcacheListener icache_;
  DmaListener dma_;
};

}  // namespace pulpc::trace
