#include "dsl/ast.hpp"

#include <stdexcept>
#include <utility>

namespace pulpc::dsl {

namespace {

ExprP node(Expr e) { return std::make_shared<const Expr>(std::move(e)); }

}  // namespace

Val make_const_i(std::int32_t v) {
  Expr e;
  e.kind = Expr::Kind::ConstI;
  e.type = DType::I32;
  e.ival = v;
  return {node(std::move(e))};
}

Val make_const_f(float v) {
  Expr e;
  e.kind = Expr::Kind::ConstF;
  e.type = DType::F32;
  e.fval = v;
  return {node(std::move(e))};
}

Val make_var(std::string name, DType type) {
  Expr e;
  e.kind = Expr::Kind::Var;
  e.type = type;
  e.name = std::move(name);
  return {node(std::move(e))};
}

Val make_load(std::string buffer, DType elem, Val index) {
  if (!index.e) throw std::invalid_argument("load: null index");
  if (index.e->type != DType::I32) {
    throw std::invalid_argument("load: index must be i32");
  }
  Expr e;
  e.kind = Expr::Kind::Load;
  e.type = elem;
  e.name = std::move(buffer);
  e.a = index.e;
  return {node(std::move(e))};
}

Val make_bin(BinOp op, Val a, Val b) {
  if (!a.e || !b.e) throw std::invalid_argument("bin: null operand");
  ExprP lhs = a.e;
  ExprP rhs = b.e;
  // Promote the integer side of mixed-type arithmetic to f32, mirroring
  // C's usual arithmetic conversions in the paper's kernels.
  if (lhs->type != rhs->type) {
    if (lhs->type == DType::I32) {
      lhs = make_un(UnOp::ToF32, {lhs}).e;
    } else {
      rhs = make_un(UnOp::ToF32, {rhs}).e;
    }
  }
  Expr e;
  e.kind = Expr::Kind::Bin;
  e.bop = op;
  e.type = is_comparison(op) ? DType::I32 : lhs->type;
  if (lhs->type == DType::F32 &&
      (op == BinOp::Rem || op == BinOp::Shl || op == BinOp::Shr ||
       op == BinOp::And || op == BinOp::Or || op == BinOp::Xor)) {
    throw std::invalid_argument("bin: integer-only operator applied to f32");
  }
  e.a = std::move(lhs);
  e.b = std::move(rhs);
  return {node(std::move(e))};
}

Val make_un(UnOp op, Val a) {
  if (!a.e) throw std::invalid_argument("un: null operand");
  Expr e;
  e.kind = Expr::Kind::Un;
  e.uop = op;
  switch (op) {
    case UnOp::Neg:
    case UnOp::Abs:
      e.type = a.e->type;
      break;
    case UnOp::Sqrt:
      e.type = DType::F32;
      if (a.e->type != DType::F32) {
        throw std::invalid_argument("sqrt: operand must be f32");
      }
      break;
    case UnOp::ToF32:
      if (a.e->type == DType::F32) return a;  // no-op cast
      e.type = DType::F32;
      break;
    case UnOp::ToI32:
      if (a.e->type == DType::I32) return a;  // no-op cast
      e.type = DType::I32;
      break;
  }
  e.a = a.e;
  return {node(std::move(e))};
}

Val make_core_id() {
  Expr e;
  e.kind = Expr::Kind::CoreId;
  e.type = DType::I32;
  return {node(std::move(e))};
}

Val make_num_cores() {
  Expr e;
  e.kind = Expr::Kind::NumCores;
  e.type = DType::I32;
  return {node(std::move(e))};
}

}  // namespace pulpc::dsl
