#include "dsl/validate.hpp"

#include <set>
#include <string>

namespace pulpc::dsl {

namespace {

/// Who executes the statement under the SPMD lowering.
enum class Ctx {
  Replicated,  ///< every core, same values
  MasterOnly,  ///< core 0 under a guard
  Parallel,    ///< every core, on its own chunk (values may diverge)
};

}  // namespace

std::string stmt_label(const Stmt& s) {
  switch (s.kind) {
    case Stmt::Kind::Decl: return "decl(" + s.name + ")";
    case Stmt::Kind::Assign: return "assign(" + s.name + ")";
    case Stmt::Kind::Store: return "store(" + s.name + ")";
    case Stmt::Kind::For:
      return (s.parallel ? "par_for(" : "for(") + s.loop_var + ")";
    case Stmt::Kind::If: return "if";
    case Stmt::Kind::Barrier: return "barrier";
    case Stmt::Kind::Critical: return "critical";
    case Stmt::Kind::DmaCopy:
      return "dma_copy(" + s.dma_src + "->" + s.dma_dst + ")";
    case Stmt::Kind::DmaWait: return "dma_wait";
  }
  return "?";
}

namespace {

struct Checker {
  /// Scalars whose value is NOT consistent across all cores.
  std::set<std::string> tainted;
  std::vector<kir::Diagnostic> diags;
  /// Statement path from the kernel body to the current statement.
  std::vector<std::string> frames;
  /// (location, scalar) pairs already reported, to keep one diagnostic
  /// per offending read site.
  std::set<std::string> reported;

  [[nodiscard]] std::string location() const {
    std::string out;
    for (const std::string& f : frames) {
      if (!out.empty()) out += " > ";
      out += f;
    }
    return out;
  }

  void collect_expr_reads(const ExprP& e, std::set<std::string>& out) {
    if (!e) return;
    if (e->kind == Expr::Kind::Var) out.insert(e->name);
    collect_expr_reads(e->a, out);
    collect_expr_reads(e->b, out);
  }

  void fail(const std::string& what, const std::string& name) {
    const std::string loc = location();
    if (!reported.insert(loc + "\x1f" + name).second) return;
    diags.push_back({kir::Severity::Error, "spmd", loc, -1,
                     what + ": scalar '" + name +
                         "' was computed on a single core (or diverged "
                         "across cores) and is read where all cores need a "
                         "consistent value; hoist the computation or pass "
                         "it through a buffer"});
  }

  /// Check the reads of one expression in a context that requires
  /// core-consistent values.
  void check_reads(const ExprP& e, const std::set<std::string>& local_ok,
                   const char* what) {
    std::set<std::string> reads;
    collect_expr_reads(e, reads);
    for (const std::string& r : reads) {
      if (tainted.count(r) != 0U && local_ok.count(r) == 0U) fail(what, r);
    }
  }

  /// Walk a statement list in `ctx`. `local_writes` accumulates scalars
  /// written within the enclosing parallel/guarded body (reads of those
  /// are fine inside the same body, in program order). `list` names the
  /// child list ("body"/"else") in diagnostic paths.
  void walk(const std::vector<StmtP>& stmts, Ctx ctx,
            std::set<std::string>& local_writes, const char* list = "body") {
    for (std::size_t i = 0; i < stmts.size(); ++i) {
      frames.push_back(std::string(list) + "[" + std::to_string(i) +
                       "]:" + stmt_label(*stmts[i]));
      walk_stmt(*stmts[i], ctx, local_writes);
      frames.pop_back();
    }
  }

  void walk_stmt(const Stmt& s, Ctx ctx, std::set<std::string>& local) {
    const auto check = [&](const ExprP& e, const char* what) {
      if (ctx == Ctx::MasterOnly) return;  // core 0 sees its own values
      if (e) check_reads(e, local, what);
    };
    switch (s.kind) {
      case Stmt::Kind::Decl:
      case Stmt::Kind::Assign:
        check(s.value, "scalar assignment");
        if (ctx == Ctx::Replicated) {
          tainted.erase(s.name);  // re-established consistently
        } else {
          local.insert(s.name);
          if (ctx == Ctx::MasterOnly) tainted.insert(s.name);
        }
        break;
      case Stmt::Kind::Store:
        check(s.index, "store index");
        check(s.value, "store value");
        break;
      case Stmt::Kind::For: {
        check(s.lo, "loop bound");
        check(s.hi, "loop bound");
        if (s.parallel) {
          if (ctx == Ctx::Parallel) {
            diags.push_back({kir::Severity::Error, "spmd", location(), -1,
                             "nested parallel loops are not supported"});
            return;
          }
          std::set<std::string> body_writes;
          body_writes.insert(s.loop_var);
          walk(s.body, Ctx::Parallel, body_writes);
          // After the region, per-core scalar values diverge.
          tainted.insert(body_writes.begin(), body_writes.end());
          return;
        }
        Ctx body_ctx = ctx;
        if (ctx == Ctx::Replicated) {
          if (stmt_contains_parallel(s)) {
            body_ctx = Ctx::Replicated;  // loop control on every core
          } else if (stmt_has_side_effects(s)) {
            body_ctx = Ctx::MasterOnly;  // guarded onto core 0
          }
        }
        if (body_ctx == Ctx::Replicated) {
          tainted.erase(s.loop_var);
        } else {
          local.insert(s.loop_var);
          if (body_ctx == Ctx::MasterOnly) tainted.insert(s.loop_var);
        }
        if (body_ctx == Ctx::MasterOnly) {
          std::set<std::string> body_writes = local;
          walk(s.body, body_ctx, body_writes);
          // Scalars assigned under the guard stay master-only.
        } else {
          walk(s.body, body_ctx, local);
        }
        return;
      }
      case Stmt::Kind::If: {
        Ctx body_ctx = ctx;
        if (ctx == Ctx::Replicated && stmt_has_side_effects(s)) {
          body_ctx = Ctx::MasterOnly;
        }
        if (ctx != Ctx::MasterOnly && body_ctx != Ctx::MasterOnly && s.cond) {
          check_reads(s.cond, local, "if condition");
        }
        walk(s.body, body_ctx, local);
        walk(s.else_body, body_ctx, local, "else");
        if (body_ctx == Ctx::MasterOnly && ctx == Ctx::Replicated) {
          // Conservatively taint scalars written under the guard.
          std::set<std::string> writes;
          collect_stmt_writes(s, writes);
          tainted.insert(writes.begin(), writes.end());
        }
        return;
      }
      case Stmt::Kind::Critical:
        walk(s.body, ctx == Ctx::Replicated ? Ctx::MasterOnly : ctx, local);
        return;
      case Stmt::Kind::Barrier:
      case Stmt::Kind::DmaWait:
        return;
      case Stmt::Kind::DmaCopy:
        return;
    }
  }

  void collect_stmt_writes(const Stmt& s, std::set<std::string>& out) {
    if (s.kind == Stmt::Kind::Decl || s.kind == Stmt::Kind::Assign) {
      out.insert(s.name);
    }
    if (s.kind == Stmt::Kind::For) out.insert(s.loop_var);
    for (const StmtP& c : s.body) collect_stmt_writes(*c, out);
    for (const StmtP& c : s.else_body) collect_stmt_writes(*c, out);
  }
};

}  // namespace

bool stmt_contains_parallel(const Stmt& s) {
  if (s.kind == Stmt::Kind::For && s.parallel) return true;
  for (const StmtP& c : s.body) {
    if (stmt_contains_parallel(*c)) return true;
  }
  for (const StmtP& c : s.else_body) {
    if (stmt_contains_parallel(*c)) return true;
  }
  return false;
}

bool stmt_has_side_effects(const Stmt& s) {
  switch (s.kind) {
    case Stmt::Kind::Store:
    case Stmt::Kind::Critical:
    case Stmt::Kind::DmaCopy:
    case Stmt::Kind::DmaWait:
      return true;
    default:
      break;
  }
  for (const StmtP& c : s.body) {
    if (stmt_has_side_effects(*c)) return true;
  }
  for (const StmtP& c : s.else_body) {
    if (stmt_has_side_effects(*c)) return true;
  }
  return false;
}

std::vector<kir::Diagnostic> validate_spec_diags(const KernelSpec& spec) {
  Checker checker;
  if (spec.name.empty()) {
    // An unnamed kernel would lower fine but cannot be keyed by the
    // registry, the artifact store, or a generated-corpus manifest.
    checker.diags.push_back({kir::Severity::Error, "spmd", "", -1,
                             "kernel has no name"});
  }
  std::set<std::string> top;
  checker.walk(spec.body, Ctx::Replicated, top);
  return std::move(checker.diags);
}

std::string validate_spec(const KernelSpec& spec) {
  const std::vector<kir::Diagnostic> diags = validate_spec_diags(spec);
  if (diags.empty()) return {};
  const kir::Diagnostic& d = diags.front();
  std::string out =
      "kernel " + (spec.name.empty() ? "<unnamed>" : spec.name) + ": " +
      d.message;
  if (!d.location.empty()) out += " [at " + d.location + "]";
  return out;
}

}  // namespace pulpc::dsl
