// Semantic validation of kernel specs against the SPMD execution model.
//
// The lowering replicates register-only scalar work on every core,
// guards statements with shared-state side effects (stores, critical
// sections, DMA) onto core 0, and runs parallel loops chunked. That mix
// is only sound if no scalar value computed on a single core (or
// divergently per core) is later read in a replicated or parallel
// context. This pass tracks such "tainted" scalars through the statement
// tree and rejects kernels that would silently compute garbage on the
// worker cores — the kind of bug OpenMP programmers hit with missing
// `shared`/`firstprivate` clauses.
#pragma once

#include <string>
#include <vector>

#include "dsl/ast.hpp"
#include "kir/passes.hpp"

namespace pulpc::dsl {

/// Structured validation: one Error-severity Diagnostic (pass "spmd")
/// per violation, with a statement-path location such as
/// `body[1]:for(i) > body[0]:store(out)` pointing into the spec's
/// statement tree. Empty when the kernel is sound.
[[nodiscard]] std::vector<kir::Diagnostic> validate_spec_diags(
    const KernelSpec& spec);

/// String shim over validate_spec_diags: empty when the kernel is sound
/// under the SPMD lowering rules, otherwise a description of the first
/// violation. lower() calls this automatically.
[[nodiscard]] std::string validate_spec(const KernelSpec& spec);

/// Short label for a statement ("par_for(i)", "store(out)", ...), used in
/// diagnostic statement paths by both validation and lowering.
[[nodiscard]] std::string stmt_label(const Stmt& s);

/// True if the statement (recursively) contains a parallel loop.
[[nodiscard]] bool stmt_contains_parallel(const Stmt& s);
/// True if the statement (recursively) touches shared state (buffer
/// stores, critical sections, DMA) and must therefore be master-guarded
/// when it appears in serial context.
[[nodiscard]] bool stmt_has_side_effects(const Stmt& s);

}  // namespace pulpc::dsl
