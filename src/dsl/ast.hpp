// Kernel source language. The paper's dataset is C/OpenMP source; here the
// "source code" is a small typed AST (expressions + structured statements
// with serial/parallel loops, critical sections and barriers) that the
// lowering pass (dsl/lower.*) compiles to KIR. Static features are then
// extracted from the KIR exactly as the paper extracts them from LLVM-IR.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kir/ir.hpp"

namespace pulpc::dsl {

using kir::DType;
using kir::MemSpace;

enum class BinOp : std::uint8_t {
  Add, Sub, Mul, Div, Rem, Min, Max, Shl, Shr, And, Or, Xor,
  Lt, Le, Gt, Ge, Eq, Ne,
};

enum class UnOp : std::uint8_t { Neg, Abs, Sqrt, ToF32, ToI32 };

/// Loop schedule of a parallel region. The PULP OpenMP runtime the paper
/// targets only implements static scheduling; we provide both static
/// flavours: contiguous chunks (schedule(static)) and round-robin
/// interleaving (schedule(static,1)), which have very different TCDM
/// banking behaviour.
enum class Schedule : std::uint8_t {
  Chunked,  ///< each core takes one contiguous block of iterations
  Cyclic,   ///< iterations are dealt round-robin across the cores
};

/// True for the comparison operators (whose result type is I32).
[[nodiscard]] constexpr bool is_comparison(BinOp op) noexcept {
  return op == BinOp::Lt || op == BinOp::Le || op == BinOp::Gt ||
         op == BinOp::Ge || op == BinOp::Eq || op == BinOp::Ne;
}

struct Expr;
using ExprP = std::shared_ptr<const Expr>;

/// Expression node. Immutable; shared subtrees are allowed.
struct Expr {
  enum class Kind : std::uint8_t {
    ConstI, ConstF, Var, Load, Bin, Un, CoreId, NumCores,
  };

  Kind kind = Kind::ConstI;
  DType type = DType::I32;
  std::int32_t ival = 0;  ///< ConstI value
  float fval = 0.0F;      ///< ConstF value
  std::string name;       ///< Var: scalar name; Load: buffer name
  BinOp bop = BinOp::Add;
  UnOp uop = UnOp::Neg;
  ExprP a;  ///< Bin lhs / Un operand / Load index
  ExprP b;  ///< Bin rhs
};

/// Convenience value wrapper so kernel code reads like arithmetic.
struct Val {
  ExprP e;
};

[[nodiscard]] Val make_const_i(std::int32_t v);
[[nodiscard]] Val make_const_f(float v);
[[nodiscard]] Val make_var(std::string name, DType type);
[[nodiscard]] Val make_load(std::string buffer, DType elem, Val index);
[[nodiscard]] Val make_bin(BinOp op, Val a, Val b);
[[nodiscard]] Val make_un(UnOp op, Val a);
[[nodiscard]] Val make_core_id();
[[nodiscard]] Val make_num_cores();

// Arithmetic sugar. Mixed i32/f32 operands promote the integer side.
[[nodiscard]] inline Val operator+(Val a, Val b) { return make_bin(BinOp::Add, a, b); }
[[nodiscard]] inline Val operator-(Val a, Val b) { return make_bin(BinOp::Sub, a, b); }
[[nodiscard]] inline Val operator*(Val a, Val b) { return make_bin(BinOp::Mul, a, b); }
[[nodiscard]] inline Val operator/(Val a, Val b) { return make_bin(BinOp::Div, a, b); }
[[nodiscard]] inline Val operator%(Val a, Val b) { return make_bin(BinOp::Rem, a, b); }
[[nodiscard]] inline Val operator&(Val a, Val b) { return make_bin(BinOp::And, a, b); }
[[nodiscard]] inline Val operator|(Val a, Val b) { return make_bin(BinOp::Or, a, b); }
[[nodiscard]] inline Val operator^(Val a, Val b) { return make_bin(BinOp::Xor, a, b); }
[[nodiscard]] inline Val operator<<(Val a, Val b) { return make_bin(BinOp::Shl, a, b); }
[[nodiscard]] inline Val operator>>(Val a, Val b) { return make_bin(BinOp::Shr, a, b); }
[[nodiscard]] inline Val operator<(Val a, Val b) { return make_bin(BinOp::Lt, a, b); }
[[nodiscard]] inline Val operator<=(Val a, Val b) { return make_bin(BinOp::Le, a, b); }
[[nodiscard]] inline Val operator>(Val a, Val b) { return make_bin(BinOp::Gt, a, b); }
[[nodiscard]] inline Val operator>=(Val a, Val b) { return make_bin(BinOp::Ge, a, b); }
[[nodiscard]] inline Val operator==(Val a, Val b) { return make_bin(BinOp::Eq, a, b); }
[[nodiscard]] inline Val operator!=(Val a, Val b) { return make_bin(BinOp::Ne, a, b); }
[[nodiscard]] inline Val operator-(Val a) { return make_un(UnOp::Neg, a); }

[[nodiscard]] inline Val vmin(Val a, Val b) { return make_bin(BinOp::Min, a, b); }
[[nodiscard]] inline Val vmax(Val a, Val b) { return make_bin(BinOp::Max, a, b); }
[[nodiscard]] inline Val vabs(Val a) { return make_un(UnOp::Abs, a); }
[[nodiscard]] inline Val vsqrt(Val a) { return make_un(UnOp::Sqrt, a); }
[[nodiscard]] inline Val to_f32(Val a) { return make_un(UnOp::ToF32, a); }
[[nodiscard]] inline Val to_i32(Val a) { return make_un(UnOp::ToI32, a); }

struct Stmt;
using StmtP = std::shared_ptr<const Stmt>;

/// Statement node.
struct Stmt {
  enum class Kind : std::uint8_t {
    Decl,      ///< declare scalar `name` initialised to `value`
    Assign,    ///< assign scalar `name` = `value`
    Store,     ///< buffer `name`[`index`] = `value`
    For,       ///< (possibly parallel) counted loop over `loop_var`
    If,        ///< if (`cond`) body else else_body
    Barrier,   ///< cluster barrier
    Critical,  ///< critical section around body
    DmaCopy,   ///< start a DMA copy of `dma_words` words src -> dst
    DmaWait,   ///< clock-gate until the DMA engine is idle
  };

  Kind kind = Kind::Barrier;
  std::string name;      ///< Decl/Assign scalar; Store buffer
  ExprP value;           ///< Decl/Assign/Store value
  ExprP index;           ///< Store index
  ExprP cond;            ///< If condition
  std::string loop_var;  ///< For induction variable
  ExprP lo, hi;          ///< For bounds: [lo, hi) stepping by `step`
  std::int32_t step = 1;
  bool parallel = false;  ///< For: OpenMP `parallel for` semantics
  Schedule schedule = Schedule::Chunked;  ///< parallel loops only
  std::vector<StmtP> body;
  std::vector<StmtP> else_body;
  std::string dma_src;   ///< DmaCopy source buffer
  std::string dma_dst;   ///< DmaCopy destination buffer
  std::uint32_t dma_words = 0;
};

/// How a buffer is filled before the kernel runs (deterministic; the data
/// initialisation happens outside the measured kernel region, as in the
/// paper where inputs are preloaded into the TCDM).
enum class InitKind : std::uint8_t {
  Zero,
  Ramp,       ///< 0, 1, 2, ... (scaled for f32)
  Random,     ///< deterministic pseudo-random in [-1, 1] / full int range
  RandomPos,  ///< deterministic pseudo-random in (0, 1] / positive ints
};

struct BufferDecl {
  std::string name;
  DType elem = DType::I32;
  std::uint32_t elems = 0;
  MemSpace space = MemSpace::Tcdm;
  InitKind init = InitKind::Random;
};

/// A complete kernel "translation unit": buffers + body, parametrised by
/// element type and problem size as in the paper's dataset.
struct KernelSpec {
  std::string name;
  std::string suite;  ///< "polybench", "utdsp" or "custom"
  DType elem = DType::I32;
  std::uint32_t size_bytes = 0;  ///< dataset problem-size parameter
  std::vector<BufferDecl> buffers;
  std::vector<StmtP> body;
};

}  // namespace pulpc::dsl
