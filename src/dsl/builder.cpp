#include "dsl/builder.hpp"

#include <stdexcept>
#include <utility>

namespace pulpc::dsl {

KernelBuilder::KernelBuilder(std::string name, std::string suite, DType elem,
                             std::uint32_t size_bytes)
    : elem_(elem) {
  spec_.name = std::move(name);
  spec_.suite = std::move(suite);
  spec_.elem = elem;
  spec_.size_bytes = size_bytes;
  stack_.emplace_back();
}

Buf KernelBuilder::buffer(const std::string& name, std::uint32_t elems,
                          InitKind init, MemSpace space) {
  return buffer_of(name, elem_, elems, init, space);
}

Buf KernelBuilder::buffer_of(const std::string& name, DType elem,
                             std::uint32_t elems, InitKind init,
                             MemSpace space) {
  if (elems == 0) fail("buffer " + name + ": zero elements");
  for (const BufferDecl& b : spec_.buffers) {
    if (b.name == name) {
      fail("buffer " + name + ": redeclared");
    }
  }
  spec_.buffers.push_back(BufferDecl{name, elem, elems, space, init});
  return Buf{name, elem, elems};
}

Val KernelBuilder::ec(double v) const {
  return elem_ == DType::F32 ? make_const_f(static_cast<float>(v))
                             : make_const_i(static_cast<std::int32_t>(v));
}

Val KernelBuilder::to_elem(Val v) const {
  return elem_ == DType::F32 ? to_f32(v) : to_i32(v);
}

Val KernelBuilder::load(const Buf& buf, Val index) const {
  return make_load(buf.name, buf.elem, index);
}

void KernelBuilder::store(const Buf& buf, Val index, Val value) {
  if (!index.e || !value.e) fail("store(" + buf.name + "): null expr");
  ExprP v = value.e;
  if (v->type != buf.elem) {
    v = (buf.elem == DType::F32 ? to_f32({v}) : to_i32({v})).e;
  }
  Stmt s;
  s.kind = Stmt::Kind::Store;
  s.name = buf.name;
  s.index = index.e;
  s.value = v;
  append(std::make_shared<const Stmt>(std::move(s)));
}

Val KernelBuilder::decl(const std::string& name, Val init) {
  if (!init.e) fail("decl(" + name + "): null init");
  Stmt s;
  s.kind = Stmt::Kind::Decl;
  s.name = name;
  s.value = init.e;
  append(std::make_shared<const Stmt>(std::move(s)));
  return make_var(name, init.e->type);
}

void KernelBuilder::assign(Val var, Val value) {
  if (!var.e || var.e->kind != Expr::Kind::Var) {
    fail("assign: target is not a scalar variable");
  }
  if (!value.e) fail("assign(" + var.e->name + "): null value");
  ExprP v = value.e;
  if (v->type != var.e->type) {
    v = (var.e->type == DType::F32 ? to_f32({v}) : to_i32({v})).e;
  }
  Stmt s;
  s.kind = Stmt::Kind::Assign;
  s.name = var.e->name;
  s.value = v;
  append(std::make_shared<const Stmt>(std::move(s)));
}

void KernelBuilder::emit_for(const std::string& var, Val lo, Val hi,
                             const LoopBody& fn, std::int32_t step,
                             bool parallel, Schedule schedule) {
  if (!lo.e || !hi.e) fail("for(" + var + "): null bound");
  if (step <= 0) {
    fail("for(" + var + "): step must be positive, got " +
         std::to_string(step));
  }
  Stmt s;
  s.kind = Stmt::Kind::For;
  s.loop_var = var;
  s.lo = lo.e;
  s.hi = hi.e;
  s.step = step;
  s.parallel = parallel;
  s.schedule = schedule;
  stack_.emplace_back();
  fn(make_var(var, DType::I32));
  s.body = std::move(stack_.back());
  stack_.pop_back();
  append(std::make_shared<const Stmt>(std::move(s)));
}

void KernelBuilder::for_(const std::string& var, Val lo, Val hi,
                         const LoopBody& fn, std::int32_t step) {
  emit_for(var, lo, hi, fn, step, /*parallel=*/false);
}

void KernelBuilder::par_for(const std::string& var, Val lo, Val hi,
                            const LoopBody& fn, std::int32_t step) {
  emit_for(var, lo, hi, fn, step, /*parallel=*/true, Schedule::Chunked);
}

void KernelBuilder::par_for_cyclic(const std::string& var, Val lo, Val hi,
                                   const LoopBody& fn, std::int32_t step) {
  emit_for(var, lo, hi, fn, step, /*parallel=*/true, Schedule::Cyclic);
}

void KernelBuilder::if_(Val cond, const Body& then_fn) {
  if_else(cond, then_fn, {});
}

void KernelBuilder::if_else(Val cond, const Body& then_fn,
                            const Body& else_fn) {
  if (!cond.e) fail("if: null condition");
  Stmt s;
  s.kind = Stmt::Kind::If;
  s.cond = cond.e;
  stack_.emplace_back();
  then_fn();
  s.body = std::move(stack_.back());
  stack_.pop_back();
  if (else_fn) {
    stack_.emplace_back();
    else_fn();
    s.else_body = std::move(stack_.back());
    stack_.pop_back();
  }
  append(std::make_shared<const Stmt>(std::move(s)));
}

void KernelBuilder::critical(const Body& fn) {
  Stmt s;
  s.kind = Stmt::Kind::Critical;
  stack_.emplace_back();
  fn();
  s.body = std::move(stack_.back());
  stack_.pop_back();
  append(std::make_shared<const Stmt>(std::move(s)));
}

void KernelBuilder::dma_copy(const Buf& dst, const Buf& src,
                             std::uint32_t words) {
  if (words == 0 || words > dst.elems || words > src.elems) {
    fail("dma_copy(" + src.name + "->" + dst.name + "): word count " +
         std::to_string(words) + " exceeds a buffer (dst " +
         std::to_string(dst.elems) + ", src " + std::to_string(src.elems) +
         " elems)");
  }
  Stmt s;
  s.kind = Stmt::Kind::DmaCopy;
  s.dma_dst = dst.name;
  s.dma_src = src.name;
  s.dma_words = words;
  append(std::make_shared<const Stmt>(std::move(s)));
}

void KernelBuilder::dma_wait() {
  Stmt s;
  s.kind = Stmt::Kind::DmaWait;
  append(std::make_shared<const Stmt>(std::move(s)));
}

void KernelBuilder::barrier() {
  Stmt s;
  s.kind = Stmt::Kind::Barrier;
  append(std::make_shared<const Stmt>(std::move(s)));
}

KernelSpec KernelBuilder::build() {
  if (stack_.size() != 1) {
    throw std::logic_error("build: unbalanced statement nesting");
  }
  spec_.body = std::move(stack_.back());
  stack_.clear();
  return std::move(spec_);
}

void KernelBuilder::fail(const std::string& what) const {
  throw std::invalid_argument(
      "kernel '" + (spec_.name.empty() ? "<unnamed>" : spec_.name) + "': " +
      what);
}

void KernelBuilder::append(StmtP stmt) {
  if (stack_.empty()) throw std::logic_error("builder already finalised");
  stack_.back().push_back(std::move(stmt));
}

}  // namespace pulpc::dsl
