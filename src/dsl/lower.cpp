#include "dsl/lower.hpp"

#include "dsl/validate.hpp"
#include "kir/verify.hpp"

#include <bit>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace pulpc::dsl {

namespace {

using kir::Instr;
using kir::Op;

/// Integer register conventions. r0 is kept at zero; r1 caches the core
/// id and r2 the core count for the whole run; named scalars grow upward
/// from r3 and expression temporaries grow downward from r31.
constexpr std::uint8_t kZeroReg = 0;
constexpr std::uint8_t kCidReg = 1;
constexpr std::uint8_t kNcReg = 2;
constexpr std::uint8_t kFirstIVar = 3;
constexpr std::uint8_t kFirstFVar = 0;

/// Does this statement (recursively) contain an explicit barrier? Such
/// statements cannot be master-guarded: cores would execute different
/// numbers of barriers and the event unit would deadlock.
bool contains_barrier(const Stmt& s) {
  if (s.kind == Stmt::Kind::Barrier) return true;
  for (const StmtP& c : s.body) {
    if (contains_barrier(*c)) return true;
  }
  for (const StmtP& c : s.else_body) {
    if (contains_barrier(*c)) return true;
  }
  return false;
}

class Lowering {
 public:
  Lowering(const KernelSpec& spec, const LowerOptions& opt)
      : spec_(spec), opt_(opt) {}

  kir::Program run() {
    const std::string semantic_err = validate_spec(spec_);
    if (!semantic_err.empty()) {
      throw std::invalid_argument("lower: " + semantic_err);
    }
    prog_.name = spec_.name;
    allocate_buffers();
    // Prologue (runtime init, outside the measured kernel region).
    emit({.op = Op::Li, .rd = kZeroReg, .imm = 0});
    emit({.op = Op::CoreId, .rd = kCidReg});
    emit({.op = Op::NumCores, .rd = kNcReg});
    emit({.op = Op::MarkEnter});
    lower_serial_context(spec_.body);
    emit({.op = Op::MarkExit});
    emit({.op = Op::Halt});
    const std::string err = kir::verify(prog_);
    if (!err.empty()) {
      throw std::runtime_error(where() + ": " + err);
    }
    if (opt_.verify) {
      const kir::VerifyReport report = kir::verify_program(prog_);
      if (!report.ok()) {
        throw std::runtime_error(where() + ": verifier rejected the lowered kernel\n" +
                                 report.to_string());
      }
    }
    return std::move(prog_);
  }

  /// "lower(<kernel>) [stmt path]" prefix for error messages, so a deep
  /// expression-lowering failure names the statement it came from.
  [[nodiscard]] std::string where() const {
    std::string out = "lower(" + spec_.name + ")";
    if (!frames_.empty()) {
      out += " [";
      for (std::size_t i = 0; i < frames_.size(); ++i) {
        if (i != 0) out += " > ";
        out += frames_[i];
      }
      out += "]";
    }
    return out;
  }

 private:
  // ---- program assembly -------------------------------------------------

  std::uint32_t emit(Instr ins) {
    prog_.code.push_back(ins);
    return static_cast<std::uint32_t>(prog_.code.size() - 1);
  }

  [[nodiscard]] std::uint32_t here() const {
    return static_cast<std::uint32_t>(prog_.code.size());
  }

  void patch_target(std::uint32_t at, std::uint32_t target) {
    prog_.code[at].imm = static_cast<std::int32_t>(target);
  }

  // ---- buffers ----------------------------------------------------------

  void allocate_buffers() {
    std::uint32_t tcdm_off = 0;
    std::uint32_t l2_off = 0;
    for (const BufferDecl& b : spec_.buffers) {
      kir::BufferInfo info;
      info.name = b.name;
      info.elem = b.elem;
      info.space = b.space;
      info.elems = b.elems;
      static_assert(static_cast<int>(InitKind::Zero) ==
                        static_cast<int>(kir::BufInit::Zero) &&
                    static_cast<int>(InitKind::RandomPos) ==
                        static_cast<int>(kir::BufInit::RandomPos));
      info.init = static_cast<kir::BufInit>(b.init);
      const std::uint32_t bytes = b.elems * 4U;
      if (b.space == MemSpace::Tcdm) {
        if (tcdm_off + bytes > opt_.tcdm_bytes) {
          throw std::runtime_error(where() + ": TCDM overflow at buffer " + b.name);
        }
        info.base = opt_.tcdm_base + tcdm_off;
        tcdm_off += bytes;
      } else {
        if (l2_off + bytes > opt_.l2_bytes) {
          throw std::runtime_error(where() + ": L2 overflow at buffer " + b.name);
        }
        info.base = opt_.l2_base + l2_off;
        l2_off += bytes;
      }
      buffers_[b.name] = info;
      prog_.buffers.push_back(info);
    }
  }

  [[nodiscard]] const kir::BufferInfo& buffer(const std::string& name) const {
    const auto it = buffers_.find(name);
    if (it == buffers_.end()) {
      throw std::invalid_argument(where() + ": unknown buffer " + name);
    }
    return it->second;
  }

  // ---- registers ----------------------------------------------------------

  std::uint8_t alloc_ivar(const std::string& name) {
    const auto it = ivars_.find(name);
    if (it != ivars_.end()) return it->second;
    if (next_ivar_ > itemp_cur_) {
      throw std::runtime_error(where() + ": integer register pressure at " + name);
    }
    const auto reg = static_cast<std::uint8_t>(next_ivar_++);
    ivars_[name] = reg;
    return reg;
  }

  std::uint8_t alloc_fvar(const std::string& name) {
    const auto it = fvars_.find(name);
    if (it != fvars_.end()) return it->second;
    if (next_fvar_ > ftemp_cur_) {
      throw std::runtime_error(where() + ": float register pressure at " + name);
    }
    const auto reg = static_cast<std::uint8_t>(next_fvar_++);
    fvars_[name] = reg;
    return reg;
  }

  std::uint8_t alloc_itemp() {
    if (itemp_cur_ < next_ivar_) {
      throw std::runtime_error(where() + ": integer temp pressure");
    }
    return static_cast<std::uint8_t>(itemp_cur_--);
  }

  std::uint8_t alloc_ftemp() {
    if (ftemp_cur_ < next_fvar_) {
      throw std::runtime_error(where() + ": float temp pressure");
    }
    return static_cast<std::uint8_t>(ftemp_cur_--);
  }

  void reset_temps() {
    itemp_cur_ = kir::kNumRegs - 1;
    ftemp_cur_ = kir::kNumRegs - 1;
  }

  /// Expression-temp stack discipline: each expression node releases its
  /// children's temporaries before allocating its own result slot, so
  /// live temps never exceed the expression depth. The result register
  /// may alias a child's (the cores read all operands before writing rd,
  /// so `add t, t, b` style aliasing is safe).
  struct TempMark {
    int i;
    int f;
  };
  [[nodiscard]] TempMark mark_temps() const { return {itemp_cur_, ftemp_cur_}; }
  void release_temps(TempMark m) {
    itemp_cur_ = m.i;
    ftemp_cur_ = m.f;
  }

  [[nodiscard]] std::uint8_t ivar(const std::string& name) const {
    const auto it = ivars_.find(name);
    if (it == ivars_.end()) {
      throw std::invalid_argument(where() + ": unknown integer scalar " + name);
    }
    return it->second;
  }

  [[nodiscard]] std::uint8_t fvar(const std::string& name) const {
    const auto it = fvars_.find(name);
    if (it == fvars_.end()) {
      throw std::invalid_argument(where() + ": unknown float scalar " + name);
    }
    return it->second;
  }

  // ---- static estimation (trip counts) ------------------------------------

  /// Best-effort compile-time estimate of an i32 expression. Enclosing
  /// loop variables with known bounds resolve to their midpoint, which
  /// yields average trip counts for triangular loops.
  std::optional<double> static_eval(const ExprP& e) const {
    switch (e->kind) {
      case Expr::Kind::ConstI:
        return static_cast<double>(e->ival);
      case Expr::Kind::ConstF:
        return static_cast<double>(e->fval);
      case Expr::Kind::Var:
        for (auto it = loop_env_.rbegin(); it != loop_env_.rend(); ++it) {
          if (it->var == e->name && it->known) {
            return (it->lo + it->hi) / 2.0;
          }
        }
        return std::nullopt;
      case Expr::Kind::Bin: {
        const auto a = static_eval(e->a);
        const auto b = static_eval(e->b);
        if (!a || !b) return std::nullopt;
        switch (e->bop) {
          case BinOp::Add: return *a + *b;
          case BinOp::Sub: return *a - *b;
          case BinOp::Mul: return *a * *b;
          case BinOp::Div: return *b != 0 ? std::optional(*a / *b) : std::nullopt;
          case BinOp::Min: return std::min(*a, *b);
          case BinOp::Max: return std::max(*a, *b);
          case BinOp::Shl: return *a * std::pow(2.0, *b);
          case BinOp::Shr: return *a / std::pow(2.0, *b);
          default: return std::nullopt;
        }
      }
      case Expr::Kind::Un:
        if (const auto a = static_eval(e->a)) {
          switch (e->uop) {
            case UnOp::Neg: return -*a;
            case UnOp::Abs: return std::abs(*a);
            case UnOp::ToF32:
            case UnOp::ToI32: return *a;
            case UnOp::Sqrt: return std::sqrt(std::max(0.0, *a));
          }
        }
        return std::nullopt;
      default:
        return std::nullopt;
    }
  }

  /// Estimated iteration count of a [lo, hi) step loop; < 0 if unknown.
  std::int64_t estimate_trip(const ExprP& lo, const ExprP& hi,
                             std::int32_t step) const {
    const auto l = static_eval(lo);
    const auto h = static_eval(hi);
    if (!l || !h) return -1;
    const double iters = std::ceil(std::max(0.0, *h - *l) / step);
    return static_cast<std::int64_t>(iters);
  }

  // ---- constant folding ----------------------------------------------------

  std::optional<std::int32_t> const_i(const ExprP& e) const {
    if (e->kind == Expr::Kind::ConstI) return e->ival;
    return std::nullopt;
  }

  // ---- expression codegen ---------------------------------------------------

  std::uint8_t eval(const ExprP& e) {
    return e->type == DType::F32 ? eval_f(e) : eval_i(e);
  }

  std::uint8_t eval_i(const ExprP& e) {
    switch (e->kind) {
      case Expr::Kind::ConstI: {
        const std::uint8_t t = alloc_itemp();
        emit({.op = Op::Li, .rd = t, .imm = e->ival});
        return t;
      }
      case Expr::Kind::Var:
        return ivar(e->name);
      case Expr::Kind::CoreId:
        return kCidReg;
      case Expr::Kind::NumCores:
        return kNcReg;
      case Expr::Kind::Load:
        return eval_load(e);
      case Expr::Kind::Un:
        return eval_un_i(e);
      case Expr::Kind::Bin:
        return eval_bin_i(e);
      default:
        throw std::invalid_argument(where() + ": non-i32 expression in i32 context");
    }
  }

  std::uint8_t eval_f(const ExprP& e) {
    switch (e->kind) {
      case Expr::Kind::ConstF: {
        const std::uint8_t t = alloc_ftemp();
        emit({.op = Op::FLi, .rd = t, .imm = std::bit_cast<std::int32_t>(e->fval)});
        return t;
      }
      case Expr::Kind::Var:
        return fvar(e->name);
      case Expr::Kind::Load:
        return eval_load(e);
      case Expr::Kind::Un:
        return eval_un_f(e);
      case Expr::Kind::Bin:
        return eval_bin_f(e);
      default:
        throw std::invalid_argument(where() + ": non-f32 expression in f32 context");
    }
  }

  /// Compute the byte address of `buf[index]` into an integer temp and
  /// return (reg, base-immediate, space) for the memory instruction.
  struct Address {
    std::uint8_t reg;
    std::int32_t base;
    MemSpace space;
  };

  Address eval_address(const std::string& buf_name, const ExprP& index) {
    const kir::BufferInfo& buf = buffer(buf_name);
    const TempMark m = mark_temps();
    const std::uint8_t idx = eval_i(index);
    release_temps(m);
    const std::uint8_t addr = alloc_itemp();
    emit({.op = Op::ShlI, .rd = addr, .rs1 = idx, .imm = 2});
    return {addr, static_cast<std::int32_t>(buf.base), buf.space};
  }

  std::uint8_t eval_load(const ExprP& e) {
    const TempMark m = mark_temps();
    const Address a = eval_address(e->name, e->a);
    if (e->type == DType::F32) {
      release_temps(m);
      const std::uint8_t t = alloc_ftemp();
      emit({.op = Op::Flw, .rd = t, .rs1 = a.reg, .imm = a.base,
            .mem = a.space});
      return t;
    }
    release_temps(m);
    const std::uint8_t t = alloc_itemp();
    emit({.op = Op::Lw, .rd = t, .rs1 = a.reg, .imm = a.base, .mem = a.space});
    return t;
  }

  std::uint8_t eval_un_i(const ExprP& e) {
    const TempMark m = mark_temps();
    const auto result_itemp = [&] {
      release_temps(m);
      return alloc_itemp();
    };
    switch (e->uop) {
      case UnOp::Neg: {
        const std::uint8_t a = eval_i(e->a);
        const std::uint8_t t = result_itemp();
        emit({.op = Op::Sub, .rd = t, .rs1 = kZeroReg, .rs2 = a});
        return t;
      }
      case UnOp::Abs: {
        const std::uint8_t a = eval_i(e->a);
        const std::uint8_t t = result_itemp();
        emit({.op = Op::Abs, .rd = t, .rs1 = a});
        return t;
      }
      case UnOp::ToI32: {
        const std::uint8_t a = eval_f(e->a);
        const std::uint8_t t = result_itemp();
        emit({.op = Op::CvtWS, .rd = t, .rs1 = a});
        return t;
      }
      default:
        throw std::invalid_argument(where() + ": bad i32 unary op");
    }
  }

  std::uint8_t eval_un_f(const ExprP& e) {
    const TempMark m = mark_temps();
    const auto result_ftemp = [&] {
      release_temps(m);
      return alloc_ftemp();
    };
    switch (e->uop) {
      case UnOp::Neg: {
        const std::uint8_t a = eval_f(e->a);
        const std::uint8_t t = result_ftemp();
        emit({.op = Op::FNeg, .rd = t, .rs1 = a});
        return t;
      }
      case UnOp::Abs: {
        const std::uint8_t a = eval_f(e->a);
        const std::uint8_t t = result_ftemp();
        emit({.op = Op::FAbs, .rd = t, .rs1 = a});
        return t;
      }
      case UnOp::Sqrt: {
        const std::uint8_t a = eval_f(e->a);
        const std::uint8_t t = result_ftemp();
        emit({.op = Op::FSqrt, .rd = t, .rs1 = a});
        return t;
      }
      case UnOp::ToF32: {
        const std::uint8_t a = eval_i(e->a);
        const std::uint8_t t = result_ftemp();
        emit({.op = Op::CvtSW, .rd = t, .rs1 = a});
        return t;
      }
      default:
        throw std::invalid_argument(where() + ": bad f32 unary op");
    }
  }

  std::uint8_t eval_bin_i(const ExprP& e) {
    // f32 comparisons produce i32 results; route them here.
    if (e->a->type == DType::F32) return eval_fcmp(e);

    const TempMark m = mark_temps();
    // Immediate forms for constant right-hand sides.
    if (const auto imm = const_i(e->b)) {
      const auto immediate_op = [&]() -> std::optional<Op> {
        switch (e->bop) {
          case BinOp::Add: return Op::AddI;
          case BinOp::Sub: return Op::AddI;  // negated immediate
          case BinOp::Mul: return Op::MulI;
          case BinOp::And: return Op::AndI;
          case BinOp::Or: return Op::OrI;
          case BinOp::Xor: return Op::XorI;
          case BinOp::Shl: return Op::ShlI;
          case BinOp::Shr: return Op::ShrI;
          case BinOp::Lt: return Op::SltI;
          default: return std::nullopt;
        }
      }();
      if (immediate_op) {
        const std::uint8_t a = eval_i(e->a);
        release_temps(m);
        const std::uint8_t t = alloc_itemp();
        const std::int32_t v = e->bop == BinOp::Sub ? -*imm : *imm;
        emit({.op = *immediate_op, .rd = t, .rs1 = a, .imm = v});
        return t;
      }
    }

    const std::uint8_t a = eval_i(e->a);
    const std::uint8_t b = eval_i(e->b);
    release_temps(m);
    const std::uint8_t t = alloc_itemp();
    switch (e->bop) {
      case BinOp::Add: emit({.op = Op::Add, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Sub: emit({.op = Op::Sub, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Mul: emit({.op = Op::Mul, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Div: emit({.op = Op::Div, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Rem: emit({.op = Op::Rem, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Min: emit({.op = Op::Min, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Max: emit({.op = Op::Max, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Shl: emit({.op = Op::Shl, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Shr: emit({.op = Op::Shr, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::And: emit({.op = Op::And, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Or: emit({.op = Op::Or, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Xor: emit({.op = Op::Xor, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Lt: emit({.op = Op::Slt, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Gt: emit({.op = Op::Slt, .rd = t, .rs1 = b, .rs2 = a}); break;
      case BinOp::Le:
        emit({.op = Op::Slt, .rd = t, .rs1 = b, .rs2 = a});
        emit({.op = Op::XorI, .rd = t, .rs1 = t, .imm = 1});
        break;
      case BinOp::Ge:
        emit({.op = Op::Slt, .rd = t, .rs1 = a, .rs2 = b});
        emit({.op = Op::XorI, .rd = t, .rs1 = t, .imm = 1});
        break;
      case BinOp::Eq:
        emit({.op = Op::Sub, .rd = t, .rs1 = a, .rs2 = b});
        emit({.op = Op::Abs, .rd = t, .rs1 = t});
        emit({.op = Op::SltI, .rd = t, .rs1 = t, .imm = 1});
        break;
      case BinOp::Ne:
        emit({.op = Op::Sub, .rd = t, .rs1 = a, .rs2 = b});
        emit({.op = Op::Abs, .rd = t, .rs1 = t});
        emit({.op = Op::SltI, .rd = t, .rs1 = t, .imm = 1});
        emit({.op = Op::XorI, .rd = t, .rs1 = t, .imm = 1});
        break;
    }
    return t;
  }

  std::uint8_t eval_fcmp(const ExprP& e) {
    const TempMark m = mark_temps();
    const std::uint8_t a = eval_f(e->a);
    const std::uint8_t b = eval_f(e->b);
    release_temps(m);
    const std::uint8_t t = alloc_itemp();
    switch (e->bop) {
      case BinOp::Lt: emit({.op = Op::FLt, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Gt: emit({.op = Op::FLt, .rd = t, .rs1 = b, .rs2 = a}); break;
      case BinOp::Le: emit({.op = Op::FLe, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Ge: emit({.op = Op::FLe, .rd = t, .rs1 = b, .rs2 = a}); break;
      case BinOp::Eq: emit({.op = Op::FEq, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Ne:
        emit({.op = Op::FEq, .rd = t, .rs1 = a, .rs2 = b});
        emit({.op = Op::XorI, .rd = t, .rs1 = t, .imm = 1});
        break;
      default:
        throw std::invalid_argument(where() + ": bad f32 comparison");
    }
    return t;
  }

  std::uint8_t eval_bin_f(const ExprP& e) {
    const TempMark m = mark_temps();
    const std::uint8_t a = eval_f(e->a);
    const std::uint8_t b = eval_f(e->b);
    release_temps(m);
    const std::uint8_t t = alloc_ftemp();
    switch (e->bop) {
      case BinOp::Add: emit({.op = Op::FAdd, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Sub: emit({.op = Op::FSub, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Mul: emit({.op = Op::FMul, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Div: emit({.op = Op::FDiv, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Min: emit({.op = Op::FMin, .rd = t, .rs1 = a, .rs2 = b}); break;
      case BinOp::Max: emit({.op = Op::FMax, .rd = t, .rs1 = a, .rs2 = b}); break;
      default:
        throw std::invalid_argument(where() + ": bad f32 binary op");
    }
    return t;
  }

  // ---- branch helpers --------------------------------------------------------

  /// Emit a branch to a (patched-later) target taken when `cond` is FALSE.
  /// Returns the instruction index to patch.
  std::uint32_t emit_branch_if_false(const ExprP& cond) {
    if (cond->kind == Expr::Kind::Bin && is_comparison(cond->bop) &&
        cond->a->type == DType::I32) {
      const std::uint8_t a = eval_i(cond->a);
      const std::uint8_t b = eval_i(cond->b);
      switch (cond->bop) {
        case BinOp::Lt: return emit({.op = Op::Bge, .rs1 = a, .rs2 = b});
        case BinOp::Ge: return emit({.op = Op::Blt, .rs1 = a, .rs2 = b});
        case BinOp::Gt: return emit({.op = Op::Bge, .rs1 = b, .rs2 = a});
        case BinOp::Le: return emit({.op = Op::Blt, .rs1 = b, .rs2 = a});
        case BinOp::Eq: return emit({.op = Op::Bne, .rs1 = a, .rs2 = b});
        case BinOp::Ne: return emit({.op = Op::Beq, .rs1 = a, .rs2 = b});
        default: break;
      }
    }
    const std::uint8_t c = eval_i(cond);
    return emit({.op = Op::Beq, .rs1 = c, .rs2 = kZeroReg});
  }

  // ---- statement codegen -------------------------------------------------------

  /// Lower a statement list in *serial* (outside any parallel loop)
  /// context: stores and loops without inner parallelism execute on core 0
  /// under a guard with a closing barrier; register-only scalar work is
  /// redundantly executed by every core; loops that contain parallel
  /// regions keep their control flow on all cores.
  void lower_serial_context(const std::vector<StmtP>& stmts) {
    std::vector<StmtP> guarded;
    const auto push_guarded = [&](const StmtP& s) {
      if (contains_barrier(*s)) {
        throw std::invalid_argument(
            where() + ": explicit barrier inside a serial statement");
      }
      guarded.push_back(s);
    };
    const auto flush = [&] {
      if (guarded.empty()) return;
      reset_temps();
      const std::uint32_t guard = emit({.op = Op::Bne, .rs1 = kCidReg,
                                        .rs2 = kZeroReg});
      for (const StmtP& s : guarded) lower_stmt(*s);
      patch_target(guard, here());
      emit({.op = Op::Barrier});
      guarded.clear();
    };

    for (const StmtP& s : stmts) {
      switch (s->kind) {
        case Stmt::Kind::Decl:
        case Stmt::Kind::Assign:
          // Register-only: replicated on all cores.
          flush();
          lower_stmt(*s);
          break;
        case Stmt::Kind::Barrier:
          flush();
          reset_temps();
          emit({.op = Op::Barrier});
          break;
        case Stmt::Kind::For:
          if (s->parallel) {
            flush();
            frames_.push_back(stmt_label(*s));
            lower_parallel_for(*s);
            frames_.pop_back();
          } else if (stmt_contains_parallel(*s)) {
            flush();
            frames_.push_back(stmt_label(*s));
            lower_serial_for(*s, /*serial_context=*/true);
            frames_.pop_back();
          } else if (stmt_has_side_effects(*s)) {
            push_guarded(s);
          } else {
            // Pure scalar loop: replicate it so every core holds the
            // results (what SPMD compilers do for cheap shared scalars).
            flush();
            lower_stmt(*s);
          }
          break;
        case Stmt::Kind::If:
          if (stmt_contains_parallel(*s)) {
            throw std::invalid_argument(
                where() + ": parallel loop inside `if` is not supported");
          }
          if (stmt_has_side_effects(*s)) {
            push_guarded(s);
          } else {
            flush();
            lower_stmt(*s);
          }
          break;
        default:
          push_guarded(s);
          break;
      }
    }
    flush();
  }

  /// Lower a statement in plain SPMD context (inside a parallel body, or
  /// inside a core-0 guard).
  void lower_stmt(const Stmt& s) {
    frames_.push_back(stmt_label(s));
    reset_temps();
    switch (s.kind) {
      case Stmt::Kind::Decl:
        lower_decl_or_assign(s, /*declare=*/true);
        break;
      case Stmt::Kind::Assign:
        lower_decl_or_assign(s, /*declare=*/false);
        break;
      case Stmt::Kind::Store:
        lower_store(s);
        break;
      case Stmt::Kind::For:
        if (s.parallel) {
          throw std::invalid_argument(
              where() + ": nested parallelism is not supported by the PULP runtime");
        }
        lower_serial_for(s, /*serial_context=*/false);
        break;
      case Stmt::Kind::If:
        lower_if(s);
        break;
      case Stmt::Kind::Barrier:
        emit({.op = Op::Barrier});
        break;
      case Stmt::Kind::Critical:
        emit({.op = Op::CritEnter, .imm = 0});
        for (const StmtP& c : s.body) lower_stmt(*c);
        reset_temps();
        emit({.op = Op::CritExit, .imm = 0});
        break;
      case Stmt::Kind::DmaCopy: {
        const kir::BufferInfo& src = buffer(s.dma_src);
        const kir::BufferInfo& dst = buffer(s.dma_dst);
        const std::uint8_t tsrc = alloc_itemp();
        const std::uint8_t tdst = alloc_itemp();
        const std::uint8_t tlen = alloc_itemp();
        emit({.op = Op::Li, .rd = tsrc,
              .imm = static_cast<std::int32_t>(src.base)});
        emit({.op = Op::Li, .rd = tdst,
              .imm = static_cast<std::int32_t>(dst.base)});
        emit({.op = Op::Li, .rd = tlen,
              .imm = static_cast<std::int32_t>(s.dma_words)});
        emit({.op = Op::DmaStart, .rd = tlen, .rs1 = tsrc, .rs2 = tdst});
        break;
      }
      case Stmt::Kind::DmaWait:
        emit({.op = Op::DmaWait});
        break;
    }
    frames_.pop_back();
  }

  void lower_decl_or_assign(const Stmt& s, bool declare) {
    const DType t = s.value->type;
    // mac/fmac peephole: x = x + a*b accumulates in place.
    if (!declare || ivars_.count(s.name) != 0U || fvars_.count(s.name) != 0U) {
      if (try_lower_mac(s)) return;
    }
    if (t == DType::F32) {
      const std::uint8_t dst =
          declare ? alloc_fvar(s.name) : fvar(s.name);
      const std::uint8_t v = eval_f(s.value);
      emit({.op = Op::FMv, .rd = dst, .rs1 = v});
    } else {
      const std::uint8_t dst =
          declare ? alloc_ivar(s.name) : ivar(s.name);
      const std::uint8_t v = eval_i(s.value);
      emit({.op = Op::Mv, .rd = dst, .rs1 = v});
    }
  }

  /// Recognise `x = x + a*b` (either addend order) and emit mac/fmac.
  bool try_lower_mac(const Stmt& s) {
    const ExprP& v = s.value;
    if (v->kind != Expr::Kind::Bin || v->bop != BinOp::Add) return false;
    const auto is_self = [&](const ExprP& e) {
      return e->kind == Expr::Kind::Var && e->name == s.name;
    };
    ExprP mul;
    if (is_self(v->a) && v->b->kind == Expr::Kind::Bin &&
        v->b->bop == BinOp::Mul) {
      mul = v->b;
    } else if (is_self(v->b) && v->a->kind == Expr::Kind::Bin &&
               v->a->bop == BinOp::Mul) {
      mul = v->a;
    } else {
      return false;
    }
    if (v->type == DType::F32) {
      const std::uint8_t dst = fvar(s.name);
      const std::uint8_t a = eval_f(mul->a);
      const std::uint8_t b = eval_f(mul->b);
      emit({.op = Op::FMac, .rd = dst, .rs1 = a, .rs2 = b});
    } else {
      const std::uint8_t dst = ivar(s.name);
      const std::uint8_t a = eval_i(mul->a);
      const std::uint8_t b = eval_i(mul->b);
      emit({.op = Op::Mac, .rd = dst, .rs1 = a, .rs2 = b});
    }
    return true;
  }

  void lower_store(const Stmt& s) {
    const std::uint8_t v = eval(s.value);
    const Address a = eval_address(s.name, s.index);
    const Op op = s.value->type == DType::F32 ? Op::Fsw : Op::Sw;
    emit({.op = op, .rs1 = a.reg, .rs2 = v, .imm = a.base, .mem = a.space});
  }

  void lower_if(const Stmt& s) {
    const std::uint32_t to_else = emit_branch_if_false(s.cond);
    for (const StmtP& c : s.body) lower_stmt(*c);
    reset_temps();
    if (s.else_body.empty()) {
      patch_target(to_else, here());
      return;
    }
    const std::uint32_t to_end = emit({.op = Op::Jmp});
    patch_target(to_else, here());
    for (const StmtP& c : s.else_body) lower_stmt(*c);
    patch_target(to_end, here());
  }

  struct LoopEnv {
    std::string var;
    double lo = 0;
    double hi = 0;
    bool known = false;
  };

  void push_loop_env(const Stmt& s) {
    LoopEnv env{.var = s.loop_var};
    const auto l = static_eval(s.lo);
    const auto h = static_eval(s.hi);
    if (l && h) {
      env.lo = *l;
      env.hi = *h;
      env.known = true;
    }
    loop_env_.push_back(env);
  }

  /// Move the evaluated bound into a persistent register tied to the loop
  /// variable name ("i$end"), since expression temps do not survive the
  /// loop body.
  std::uint8_t materialise_bound(const ExprP& e, const std::string& name) {
    const std::uint8_t dst = alloc_ivar(name);
    const std::uint8_t v = eval_i(e);
    emit({.op = Op::Mv, .rd = dst, .rs1 = v});
    return dst;
  }

  void lower_serial_for(const Stmt& s, bool serial_context) {
    reset_temps();
    const std::int64_t trip = estimate_trip(s.lo, s.hi, s.step);
    push_loop_env(s);

    const std::uint8_t var = alloc_ivar(s.loop_var);
    const std::uint8_t end = materialise_bound(s.hi, s.loop_var + "$end");
    {
      const std::uint8_t v = eval_i(s.lo);
      emit({.op = Op::Mv, .rd = var, .rs1 = v});
    }
    const std::uint32_t header = here();
    const std::uint32_t exit_branch =
        emit({.op = Op::Bge, .rs1 = var, .rs2 = end});
    if (serial_context) {
      lower_serial_context(s.body);
    } else {
      for (const StmtP& c : s.body) lower_stmt(*c);
    }
    reset_temps();
    emit({.op = Op::AddI, .rd = var, .rs1 = var, .imm = s.step});
    const std::uint32_t latch = emit({.op = Op::Jmp, .imm = static_cast<std::int32_t>(header)});
    patch_target(exit_branch, here());

    prog_.loops.push_back(kir::LoopMeta{.body_begin = header,
                                        .body_end = latch + 1,
                                        .trip = trip,
                                        .parallel = false});
    loop_env_.pop_back();
  }

  void lower_parallel_for(const Stmt& s) {
    if (s.schedule == Schedule::Cyclic) {
      lower_parallel_for_cyclic(s);
      return;
    }
    reset_temps();
    const std::uint32_t region_begin = here();
    const std::int64_t trip = estimate_trip(s.lo, s.hi, s.step);
    push_loop_env(s);

    const std::uint8_t var = alloc_ivar(s.loop_var);
    const std::uint8_t end = alloc_ivar(s.loop_var + "$end");

    // Static chunking (the PULP OpenMP runtime's only schedule): each core
    // takes one contiguous chunk of ceil(niter / ncores) iterations. The
    // divide below is genuine runtime overhead charged to every region
    // entry, which is what makes parallelising tiny loops unattractive.
    const std::uint8_t lo = eval_i(s.lo);
    const std::uint8_t hi = eval_i(s.hi);
    const std::uint8_t niter = alloc_itemp();
    emit({.op = Op::Sub, .rd = niter, .rs1 = hi, .rs2 = lo});
    std::uint8_t step_reg = 0;
    if (s.step > 1) {
      emit({.op = Op::AddI, .rd = niter, .rs1 = niter, .imm = s.step - 1});
      step_reg = alloc_itemp();
      emit({.op = Op::Li, .rd = step_reg, .imm = s.step});
      emit({.op = Op::Div, .rd = niter, .rs1 = niter, .rs2 = step_reg});
    }
    const std::uint8_t chunk = alloc_itemp();
    emit({.op = Op::Add, .rd = chunk, .rs1 = niter, .rs2 = kNcReg});
    emit({.op = Op::AddI, .rd = chunk, .rs1 = chunk, .imm = -1});
    emit({.op = Op::Div, .rd = chunk, .rs1 = chunk, .rs2 = kNcReg});
    const std::uint8_t start = alloc_itemp();
    emit({.op = Op::Mul, .rd = start, .rs1 = kCidReg, .rs2 = chunk});
    const std::uint8_t stop = alloc_itemp();
    emit({.op = Op::Add, .rd = stop, .rs1 = start, .rs2 = chunk});
    emit({.op = Op::Min, .rd = stop, .rs1 = stop, .rs2 = niter});
    if (s.step > 1) {
      emit({.op = Op::Mul, .rd = start, .rs1 = start, .rs2 = step_reg});
      emit({.op = Op::Mul, .rd = stop, .rs1 = stop, .rs2 = step_reg});
    }
    emit({.op = Op::Add, .rd = var, .rs1 = lo, .rs2 = start});
    emit({.op = Op::Add, .rd = end, .rs1 = lo, .rs2 = stop});

    const std::uint32_t header = here();
    const std::uint32_t exit_branch =
        emit({.op = Op::Bge, .rs1 = var, .rs2 = end});
    for (const StmtP& c : s.body) lower_stmt(*c);
    reset_temps();
    emit({.op = Op::AddI, .rd = var, .rs1 = var, .imm = s.step});
    const std::uint32_t latch =
        emit({.op = Op::Jmp, .imm = static_cast<std::int32_t>(header)});
    patch_target(exit_branch, here());
    emit({.op = Op::Barrier});  // implicit barrier closing the region

    prog_.loops.push_back(kir::LoopMeta{.body_begin = header,
                                        .body_end = latch + 1,
                                        .trip = trip,
                                        .parallel = true});
    prog_.regions.push_back(kir::ParallelRegionMeta{
        .begin = region_begin, .end = here(), .total_iters = trip});
    loop_env_.pop_back();
  }

  /// schedule(static,1): core c executes iterations c, c+ncores, ... —
  /// no divide in the region prologue, interleaved memory footprints.
  void lower_parallel_for_cyclic(const Stmt& s) {
    reset_temps();
    const std::uint32_t region_begin = here();
    const std::int64_t trip = estimate_trip(s.lo, s.hi, s.step);
    push_loop_env(s);

    const std::uint8_t var = alloc_ivar(s.loop_var);
    const std::uint8_t end = alloc_ivar(s.loop_var + "$end");
    const std::uint8_t stride = alloc_ivar(s.loop_var + "$stride");

    {
      const std::uint8_t v = eval_i(s.hi);
      emit({.op = Op::Mv, .rd = end, .rs1 = v});
    }
    reset_temps();
    // var = lo + cid * step; stride = ncores * step.
    const std::uint8_t lo = eval_i(s.lo);
    if (s.step == 1) {
      emit({.op = Op::Add, .rd = var, .rs1 = lo, .rs2 = kCidReg});
      emit({.op = Op::Mv, .rd = stride, .rs1 = kNcReg});
    } else {
      const std::uint8_t t = alloc_itemp();
      emit({.op = Op::MulI, .rd = t, .rs1 = kCidReg, .imm = s.step});
      emit({.op = Op::Add, .rd = var, .rs1 = lo, .rs2 = t});
      emit({.op = Op::MulI, .rd = stride, .rs1 = kNcReg, .imm = s.step});
    }

    const std::uint32_t header = here();
    const std::uint32_t exit_branch =
        emit({.op = Op::Bge, .rs1 = var, .rs2 = end});
    for (const StmtP& c : s.body) lower_stmt(*c);
    reset_temps();
    emit({.op = Op::Add, .rd = var, .rs1 = var, .rs2 = stride});
    const std::uint32_t latch =
        emit({.op = Op::Jmp, .imm = static_cast<std::int32_t>(header)});
    patch_target(exit_branch, here());
    emit({.op = Op::Barrier});

    prog_.loops.push_back(kir::LoopMeta{.body_begin = header,
                                        .body_end = latch + 1,
                                        .trip = trip,
                                        .parallel = true});
    prog_.regions.push_back(kir::ParallelRegionMeta{
        .begin = region_begin, .end = here(), .total_iters = trip});
    loop_env_.pop_back();
  }

  const KernelSpec& spec_;
  LowerOptions opt_;
  kir::Program prog_;
  std::unordered_map<std::string, kir::BufferInfo> buffers_;
  std::unordered_map<std::string, std::uint8_t> ivars_;
  std::unordered_map<std::string, std::uint8_t> fvars_;
  int next_ivar_ = kFirstIVar;
  int next_fvar_ = kFirstFVar;
  int itemp_cur_ = kir::kNumRegs - 1;
  int ftemp_cur_ = kir::kNumRegs - 1;
  std::vector<LoopEnv> loop_env_;
  /// Statement path to the construct being lowered, for error messages.
  /// No pop on throw: an exception abandons the whole Lowering object.
  std::vector<std::string> frames_;
};

}  // namespace

kir::Program lower(const KernelSpec& spec, const LowerOptions& opt) {
  return Lowering(spec, opt).run();
}

}  // namespace pulpc::dsl
