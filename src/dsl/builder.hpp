// Fluent builder used to write the dataset kernels. A kernel reads close
// to its original C/OpenMP form:
//
//   KernelBuilder k("saxpy", "custom", elem, size_bytes);
//   auto x = k.buffer("x", n);
//   auto y = k.buffer("y", n);
//   k.par_for("i", k.ic(0), k.ic(n), [&](Val i) {
//     k.store(y, i, k.ec(2.5) * k.load(x, i) + k.load(y, i));
//   });
//   KernelSpec spec = k.build();
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dsl/ast.hpp"

namespace pulpc::dsl {

/// Handle to a declared kernel buffer.
struct Buf {
  std::string name;
  DType elem = DType::I32;
  std::uint32_t elems = 0;
};

class KernelBuilder {
 public:
  using LoopBody = std::function<void(Val)>;
  using Body = std::function<void()>;

  KernelBuilder(std::string name, std::string suite, DType elem,
                std::uint32_t size_bytes);

  /// Declare a buffer of `elems` elements of the kernel's element type.
  Buf buffer(const std::string& name, std::uint32_t elems,
             InitKind init = InitKind::Random,
             MemSpace space = MemSpace::Tcdm);
  /// Declare a buffer with an explicit element type (e.g. an i32 index
  /// array inside an f32 kernel).
  Buf buffer_of(const std::string& name, DType elem, std::uint32_t elems,
                InitKind init = InitKind::Random,
                MemSpace space = MemSpace::Tcdm);

  /// Kernel element type (I32 or F32 depending on instantiation).
  [[nodiscard]] DType elem() const noexcept { return elem_; }

  /// Constant of the kernel's element type.
  [[nodiscard]] Val ec(double v) const;
  /// i32 constant.
  [[nodiscard]] static Val ic(std::int32_t v) { return make_const_i(v); }
  /// Cast to the kernel's element type.
  [[nodiscard]] Val to_elem(Val v) const;

  [[nodiscard]] Val load(const Buf& buf, Val index) const;
  void store(const Buf& buf, Val index, Val value);

  /// Declare a scalar initialised to `init`; returns a reference usable in
  /// later expressions. Scalar names must not collide with loop variables
  /// that enclose their uses.
  Val decl(const std::string& name, Val init);
  /// Assign to a scalar previously created by decl() or a loop variable.
  void assign(Val var, Val value);

  /// Serial counted loop over [lo, hi) with constant step.
  void for_(const std::string& var, Val lo, Val hi, const LoopBody& fn,
            std::int32_t step = 1);
  /// OpenMP-style `parallel for`: iterations are statically chunked over
  /// the cores (schedule(static)); an implicit barrier closes the region.
  void par_for(const std::string& var, Val lo, Val hi, const LoopBody& fn,
               std::int32_t step = 1);
  /// `parallel for schedule(static,1)`: iterations are dealt round-robin,
  /// so consecutive cores touch consecutive elements (TCDM-bank friendly
  /// for unit-stride access, cheaper region entry, but worse locality for
  /// blocked access patterns).
  void par_for_cyclic(const std::string& var, Val lo, Val hi,
                      const LoopBody& fn, std::int32_t step = 1);

  void if_(Val cond, const Body& then_fn);
  void if_else(Val cond, const Body& then_fn, const Body& else_fn);

  /// OpenMP `critical`: body serialised under the cluster-wide lock
  /// (contending cores spin with active-wait NOPs).
  void critical(const Body& fn);
  /// Explicit cluster barrier.
  void barrier();

  /// Start an asynchronous DMA copy of `words` 32-bit words from the
  /// start of `src` to the start of `dst` (the PULP cluster DMA used to
  /// move data between L2 and TCDM).
  void dma_copy(const Buf& dst, const Buf& src, std::uint32_t words);
  /// Clock-gate until the DMA engine is idle.
  void dma_wait();

  /// Core id / core count of the executing configuration (the OpenMP
  /// omp_get_thread_num / omp_get_num_threads analogs).
  [[nodiscard]] static Val core_id() { return make_core_id(); }
  [[nodiscard]] static Val num_cores() { return make_num_cores(); }

  /// Finalise and return the kernel. The builder must not be reused.
  [[nodiscard]] KernelSpec build();

 private:
  void append(StmtP stmt);
  void emit_for(const std::string& var, Val lo, Val hi, const LoopBody& fn,
                std::int32_t step, bool parallel,
                Schedule schedule = Schedule::Chunked);
  /// Throw std::invalid_argument naming the kernel under construction,
  /// so a misuse surfaced while generating hundreds of kernels says
  /// which one it came from.
  [[noreturn]] void fail(const std::string& what) const;

  KernelSpec spec_;
  DType elem_;
  /// Statement-list nesting stack; back() is the list under construction.
  std::vector<std::vector<StmtP>> stack_;
};

}  // namespace pulpc::dsl
