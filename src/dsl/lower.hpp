// Lowering: compiles a KernelSpec (the kernel "source code") to a KIR
// program, applying the OpenMP-on-PULP execution model the paper uses:
//
//  * SPMD: all participating cores execute the same program.
//  * `parallel for` loops are statically chunked over the cores (the only
//    scheduling policy the PULP OpenMP runtime supports per the paper),
//    with the chunk computation as explicit runtime overhead and an
//    implicit closing barrier.
//  * Serial sections execute on core 0 while the other cores clock-gate
//    at a barrier; scalar (register-only) computation is redundantly
//    executed by all cores, as real SPMD compilers do.
//  * `critical` maps to the cluster-wide spin lock.
//
// The pass also records the static metadata (loop trip counts, parallel
// region iteration totals, buffer sizes) that the compile-time feature
// extraction consumes.
#pragma once

#include <cstdint>

#include "dsl/ast.hpp"
#include "kir/ir.hpp"

namespace pulpc::dsl {

struct LowerOptions {
  std::uint32_t tcdm_base = 0x1000'0000;
  std::uint32_t tcdm_bytes = 64 * 1024;
  std::uint32_t l2_base = 0x1C00'0000;
  std::uint32_t l2_bytes = 512 * 1024;
  /// Run the semantic KIR verifier (kir::verify_program — barrier, race,
  /// bounds and register-use passes) on the lowered program and throw
  /// std::runtime_error with the full report when it finds an
  /// error-severity diagnostic. Off by default: the dataset pipeline runs
  /// the verifier itself so it can also record warning/note counts.
  bool verify = false;
};

/// Compile `spec` to KIR. Throws std::invalid_argument /
/// std::runtime_error on malformed kernels (unknown scalars, nested
/// parallelism, buffer overflow, register pressure). The returned
/// program passes kir::verify().
[[nodiscard]] kir::Program lower(const KernelSpec& spec,
                                 const LowerOptions& opt = {});

}  // namespace pulpc::dsl
