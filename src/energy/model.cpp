#include "energy/model.hpp"

#include <cstdio>

namespace pulpc::energy {

EnergyBreakdown compute_energy(const sim::RunStats& stats,
                               const EnergyModel& m) {
  EnergyBreakdown e;
  const auto T = static_cast<double>(stats.region_cycles());

  // Processing elements. Participating cores are charged per operating
  // state; any window cycles not covered by a state (marker skew at the
  // region edges) and all unused cores count as clock-gated.
  for (std::size_t i = 0; i < stats.core.size(); ++i) {
    const sim::CoreStats& c = stats.core[i];
    e.pe += m.pe_leakage * T;
    if (i < stats.ncores) {
      const auto accounted = static_cast<double>(c.active_cycles());
      e.pe += m.pe_alu * static_cast<double>(c.cyc_alu) +
              m.pe_fp * static_cast<double>(c.cyc_fp) +
              m.pe_l1 * static_cast<double>(c.cyc_l1) +
              m.pe_l2 * static_cast<double>(c.cyc_l2) +
              m.pe_nop * static_cast<double>(c.cyc_wait) +
              m.pe_cg * static_cast<double>(c.cyc_cg);
      if (T > accounted) e.pe += m.pe_cg * (T - accounted);
    } else {
      e.pe += m.pe_cg * T;
    }
  }

  for (const sim::FpuStats& f : stats.fpu) {
    const auto busy = static_cast<double>(f.busy_cycles);
    e.fpu += m.fpu_leakage * T + m.fpu_operative * busy;
    if (T > busy) e.fpu += m.fpu_idle * (T - busy);
  }

  for (const sim::BankStats& b : stats.l1) {
    const auto acc = static_cast<double>(b.accesses());
    e.l1 += m.l1_leakage * T + m.l1_read * static_cast<double>(b.reads) +
            m.l1_write * static_cast<double>(b.writes);
    if (T > acc) e.l1 += m.l1_idle * (T - acc);
  }

  for (const sim::BankStats& b : stats.l2) {
    const auto acc = static_cast<double>(b.accesses());
    e.l2 += m.l2_leakage * T + m.l2_read * static_cast<double>(b.reads) +
            m.l2_write * static_cast<double>(b.writes);
    if (T > acc) e.l2 += m.l2_idle * (T - acc);
  }

  e.icache = m.icache_leakage * T +
             m.icache_use * static_cast<double>(stats.icache.uses) +
             m.icache_refill * static_cast<double>(stats.icache.refills);

  {
    const auto busy = static_cast<double>(stats.dma.busy_cycles);
    e.dma = m.dma_leakage * T +
            m.dma_transfer * static_cast<double>(stats.dma.beats);
    if (T > busy) e.dma += m.dma_idle * (T - busy);
  }

  // Interconnect & event unit: leakage over the window plus switching
  // energy for every core-cycle spent out of clock gating.
  e.other = m.other_leakage * T;
  for (std::size_t i = 0; i < stats.ncores && i < stats.core.size(); ++i) {
    const sim::CoreStats& c = stats.core[i];
    const auto running =
        static_cast<double>(c.active_cycles() - c.cyc_cg);
    e.other += m.other_active * running;
  }
  return e;
}

double total_energy_fj(const sim::RunStats& stats, const EnergyModel& model) {
  return compute_energy(stats, model).total_fj();
}

std::string report(const EnergyBreakdown& e) {
  const auto line = [](const char* name, double fj, double total) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "  %-18s %12.3f uJ  (%5.1f%%)\n", name,
                  fj * 1e-9, total > 0 ? 100.0 * fj / total : 0.0);
    return std::string(buf);
  };
  const double total = e.total_fj();
  std::string out = "energy breakdown:\n";
  out += line("processing elems", e.pe, total);
  out += line("shared FPUs", e.fpu, total);
  out += line("TCDM banks", e.l1, total);
  out += line("L2 banks", e.l2, total);
  out += line("I-cache", e.icache, total);
  out += line("DMA", e.dma, total);
  out += line("other cluster", e.other, total);
  char buf[64];
  std::snprintf(buf, sizeof buf, "  %-18s %12.3f uJ\n", "total",
                total * 1e-9);
  out += buf;
  return out;
}

kir::CostParams cost_params(const sim::ClusterConfig& cfg,
                            const EnergyModel& m) {
  kir::CostParams p;
  p.max_cores = cfg.num_cores;
  p.total_cores = cfg.num_cores;
  p.div_cycles = cfg.div_cycles;
  p.fpdiv_cycles = cfg.fpdiv_cycles;
  p.l2_latency = cfg.l2_latency;
  p.taken_branch_penalty = cfg.taken_branch_penalty;
  p.barrier_wakeup = cfg.barrier_wakeup;
  p.icache_line = cfg.icache_line;
  p.icache_refill_stall = cfg.icache_refill_stall;
  p.l1_banks = cfg.l1_banks;
  p.l2_banks = cfg.l2_banks;
  p.num_fpus = cfg.num_fpus;
  p.pe_leakage = m.pe_leakage;
  p.pe_nop = m.pe_nop;
  p.pe_alu = m.pe_alu;
  p.pe_fp = m.pe_fp;
  p.pe_l1 = m.pe_l1;
  p.pe_l2 = m.pe_l2;
  p.pe_cg = m.pe_cg;
  p.fpu_leakage = m.fpu_leakage;
  p.fpu_operative = m.fpu_operative;
  p.fpu_idle = m.fpu_idle;
  p.l1_leakage = m.l1_leakage;
  p.l1_read = m.l1_read;
  p.l1_write = m.l1_write;
  p.l1_idle = m.l1_idle;
  p.l2_leakage = m.l2_leakage;
  p.l2_read = m.l2_read;
  p.l2_write = m.l2_write;
  p.l2_idle = m.l2_idle;
  p.icache_leakage = m.icache_leakage;
  p.icache_use = m.icache_use;
  p.icache_refill = m.icache_refill;
  p.dma_leakage = m.dma_leakage;
  p.dma_transfer = m.dma_transfer;
  p.dma_idle = m.dma_idle;
  p.other_leakage = m.other_leakage;
  p.other_active = m.other_active;
  return p;
}

}  // namespace pulpc::energy
