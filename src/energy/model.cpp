#include "energy/model.hpp"

#include <cstdio>

namespace pulpc::energy {

EnergyBreakdown compute_energy(const sim::RunStats& stats,
                               const EnergyModel& m) {
  EnergyBreakdown e;
  const auto T = static_cast<double>(stats.region_cycles());

  // Processing elements. Participating cores are charged per operating
  // state; any window cycles not covered by a state (marker skew at the
  // region edges) and all unused cores count as clock-gated.
  for (std::size_t i = 0; i < stats.core.size(); ++i) {
    const sim::CoreStats& c = stats.core[i];
    e.pe += m.pe_leakage * T;
    if (i < stats.ncores) {
      const auto accounted = static_cast<double>(c.active_cycles());
      e.pe += m.pe_alu * static_cast<double>(c.cyc_alu) +
              m.pe_fp * static_cast<double>(c.cyc_fp) +
              m.pe_l1 * static_cast<double>(c.cyc_l1) +
              m.pe_l2 * static_cast<double>(c.cyc_l2) +
              m.pe_nop * static_cast<double>(c.cyc_wait) +
              m.pe_cg * static_cast<double>(c.cyc_cg);
      if (T > accounted) e.pe += m.pe_cg * (T - accounted);
    } else {
      e.pe += m.pe_cg * T;
    }
  }

  for (const sim::FpuStats& f : stats.fpu) {
    const auto busy = static_cast<double>(f.busy_cycles);
    e.fpu += m.fpu_leakage * T + m.fpu_operative * busy;
    if (T > busy) e.fpu += m.fpu_idle * (T - busy);
  }

  for (const sim::BankStats& b : stats.l1) {
    const auto acc = static_cast<double>(b.accesses());
    e.l1 += m.l1_leakage * T + m.l1_read * static_cast<double>(b.reads) +
            m.l1_write * static_cast<double>(b.writes);
    if (T > acc) e.l1 += m.l1_idle * (T - acc);
  }

  for (const sim::BankStats& b : stats.l2) {
    const auto acc = static_cast<double>(b.accesses());
    e.l2 += m.l2_leakage * T + m.l2_read * static_cast<double>(b.reads) +
            m.l2_write * static_cast<double>(b.writes);
    if (T > acc) e.l2 += m.l2_idle * (T - acc);
  }

  e.icache = m.icache_leakage * T +
             m.icache_use * static_cast<double>(stats.icache.uses) +
             m.icache_refill * static_cast<double>(stats.icache.refills);

  {
    const auto busy = static_cast<double>(stats.dma.busy_cycles);
    e.dma = m.dma_leakage * T +
            m.dma_transfer * static_cast<double>(stats.dma.beats);
    if (T > busy) e.dma += m.dma_idle * (T - busy);
  }

  // Interconnect & event unit: leakage over the window plus switching
  // energy for every core-cycle spent out of clock gating.
  e.other = m.other_leakage * T;
  for (std::size_t i = 0; i < stats.ncores && i < stats.core.size(); ++i) {
    const sim::CoreStats& c = stats.core[i];
    const auto running =
        static_cast<double>(c.active_cycles() - c.cyc_cg);
    e.other += m.other_active * running;
  }
  return e;
}

double total_energy_fj(const sim::RunStats& stats, const EnergyModel& model) {
  return compute_energy(stats, model).total_fj();
}

std::string report(const EnergyBreakdown& e) {
  const auto line = [](const char* name, double fj, double total) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "  %-18s %12.3f uJ  (%5.1f%%)\n", name,
                  fj * 1e-9, total > 0 ? 100.0 * fj / total : 0.0);
    return std::string(buf);
  };
  const double total = e.total_fj();
  std::string out = "energy breakdown:\n";
  out += line("processing elems", e.pe, total);
  out += line("shared FPUs", e.fpu, total);
  out += line("TCDM banks", e.l1, total);
  out += line("L2 banks", e.l2, total);
  out += line("I-cache", e.icache, total);
  out += line("DMA", e.dma, total);
  out += line("other cluster", e.other, total);
  char buf[64];
  std::snprintf(buf, sizeof buf, "  %-18s %12.3f uJ\n", "total",
                total * 1e-9);
  out += buf;
  return out;
}

}  // namespace pulpc::energy
