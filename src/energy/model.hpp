// The paper's Table I PULP energy model. Constants are femtojoules per
// event (reads, writes, refills, transfers, opcode-class cycles) or per
// cycle (leakage, idle, clock-gating), exactly as published: they were
// derived by the authors from parasitic-annotated post-layout simulation
// at 0.65 V with Synopsys PrimeTime, integrating per-instruction-class
// synthetic benchmarks.
#pragma once

#include <string>

#include "kir/costmodel.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"

namespace pulpc::energy {

/// Table I, femtojoules. Field groups follow the table's operating
/// regions.
struct EnergyModel {
  // Processing element (per cycle spent in the operating state; leakage
  // accrues every cycle regardless of state).
  double pe_leakage = 182.0;
  double pe_nop = 1212.0;  ///< active wait
  double pe_alu = 2558.0;
  double pe_fp = 2468.0;
  double pe_l1 = 3242.0;   ///< cycle issuing a TCDM access
  double pe_l2 = 1011.0;   ///< each cycle of an L2 access (15 cycles)
  double pe_cg = 20.0;     ///< clock-gated

  // Shared FPU (per cycle).
  double fpu_leakage = 191.0;
  double fpu_operative = 299.0;
  double fpu_idle = 0.0;

  // TCDM (L1) memory bank.
  double l1_leakage = 49.0;  ///< per cycle
  double l1_read = 2543.0;   ///< per access
  double l1_write = 2568.0;  ///< per access
  double l1_idle = 64.0;     ///< per cycle without an access

  // L2 memory bank.
  double l2_leakage = 105.0;
  double l2_read = 2942.0;
  double l2_write = 3480.0;
  double l2_idle = 13.0;

  // Instruction cache.
  double icache_leakage = 774.0;  ///< per cycle
  double icache_use = 4492.0;     ///< per fetch served
  double icache_refill = 5932.0;  ///< per line refill

  // DMA.
  double dma_leakage = 165.0;   ///< per cycle
  double dma_transfer = 1750.0; ///< per word beat
  double dma_idle = 46.0;       ///< per idle cycle

  // Other cluster components (cores-to-TCDM interconnect, event unit...).
  // Leakage accrues per cycle; the active (switching) energy is charged
  // per core-cycle not spent in clock gating, since the log interconnect
  // and event-unit interfaces toggle for every running core.
  double other_leakage = 655.0;  ///< per cycle
  double other_active = 2702.0;  ///< per non-clock-gated core cycle
};

/// Energy of one run split by component group (femtojoules).
struct EnergyBreakdown {
  double pe = 0;
  double fpu = 0;
  double l1 = 0;
  double l2 = 0;
  double icache = 0;
  double dma = 0;
  double other = 0;

  [[nodiscard]] double total_fj() const noexcept {
    return pe + fpu + l1 + l2 + icache + dma + other;
  }
  [[nodiscard]] double total_uj() const noexcept { return total_fj() * 1e-9; }
};

/// Integrate the energy model over a run's activity counters (step D of
/// the paper's Figure 1 workflow). Per-cycle contributions integrate over
/// the kernel-region window; cores beyond `stats.ncores` are clock-gated
/// for the whole window.
[[nodiscard]] EnergyBreakdown compute_energy(const sim::RunStats& stats,
                                             const EnergyModel& model = {});

/// Convenience: total kernel energy in femtojoules.
[[nodiscard]] double total_energy_fj(const sim::RunStats& stats,
                                     const EnergyModel& model = {});

/// Human-readable per-component report.
[[nodiscard]] std::string report(const EnergyBreakdown& e);

/// Build the static analyzer's parameter block from live simulator and
/// energy configurations, so `kir::analyze_cost` prices cycles and
/// energy with exactly the constants the simulator charges. (kir cannot
/// depend on sim/energy, so CostParams duplicates these defaults; this
/// adapter is the one place that keeps them in sync.)
[[nodiscard]] kir::CostParams cost_params(const sim::ClusterConfig& cfg = {},
                                          const EnergyModel& model = {});

}  // namespace pulpc::energy
