// Admission pipeline for generated kernels, and the campaign driver.
//
// A campaign draws `spec.count` candidates from the generator and pushes
// each through the same gates the hand-written dataset kernels must pass:
//
//   dsl::validate_spec_diags  (SPMD semantics)
//     -> dsl::lower           (compiles; resource limits hold)
//     -> kir::verify_program  (barrier / race / bounds / reguse; warnings
//                              reject under werror, notes never do)
//     -> kir::analyze_cost    (statically bounded, non-degenerate work,
//                              contains a parallel region)
//
// at every (dtype, size) instantiation the corpus will build, then
// deduplicates survivors — first by exact lowered-program hash
// (core::program_hash), then by a quantized static cost profile, so the
// corpus does not fill up with cost-model near-clones that teach the
// classifier nothing. Screening fans out over a core::ThreadPool;
// admission decisions are made serially in candidate order, so the
// admitted set is identical for every thread count.
//
// An admitted corpus is persisted as a manifest (seed + spec + admitted
// entries) plus one canonical rendering per kernel. Loading a manifest
// re-registers the kernels by *regenerating* them from (spec, seed,
// index) — the generator's determinism contract makes the manifest a
// complete description, no DSL serialisation needed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "gen/generator.hpp"
#include "gen/spec.hpp"

namespace pulpc::gen {

/// Admission outcome: Admitted, or the first gate that rejected.
enum class Stage : std::uint8_t {
  Admitted,
  Validate,       ///< dsl::validate_spec_diags violation
  Lower,          ///< dsl::lower threw
  Verify,         ///< kir::verify_program error (or warning under werror)
  Analyze,        ///< unbounded / degenerate / no parallel region
  DedupeHash,     ///< exact duplicate of an earlier admitted program
  DedupeProfile,  ///< same quantized cost profile as an earlier admission
};

[[nodiscard]] const char* to_string(Stage s) noexcept;

/// Screening verdict for one candidate index.
struct Candidate {
  std::size_t index = 0;
  std::string name;
  kernels::TypeSupport types = kernels::TypeSupport::Both;
  Stage stage = Stage::Admitted;
  std::string detail;  ///< first diagnostic / reason when rejected
  std::uint64_t prog_hash = 0;  ///< canonical-instantiation program hash
  std::string bucket;           ///< quantized cost-profile bucket
  unsigned best_cores = 0;      ///< analyzer argmin-energy core count
  long long cycles_hi1 = 0;     ///< 1-core static cycle upper bound

  [[nodiscard]] bool admitted() const noexcept {
    return stage == Stage::Admitted;
  }
};

struct AdmitOptions {
  /// Reject on verifier warnings, not just errors (notes never reject).
  bool werror = true;
  unsigned max_cores = 8;
  /// Screening worker threads; 0 resolves via PULPC_THREADS.
  unsigned threads = 0;
};

/// Gate verdict for one concrete kernel (admission funnel without the
/// campaign-level dedupe stages).
struct KernelVerdict {
  Stage stage = Stage::Admitted;
  std::string detail;
  std::uint64_t prog_hash = 0;
  std::string bucket;
  unsigned best_cores = 0;
  long long cycles_hi1 = 0;
};

/// Push one concrete kernel through every per-kernel admission gate:
/// dsl::validate_spec_diags -> dsl::lower -> kir::verify_program ->
/// kir::analyze_cost (+ the spec's min_cycles / require_parallel gates).
/// `gates` supplies the analyze thresholds; on admission the verdict
/// carries the program hash and cost-profile bucket used for dedupe.
/// Exposed so tests can drive hand-built defective kernels through the
/// exact funnel the campaign uses.
[[nodiscard]] KernelVerdict admit_kernel(const dsl::KernelSpec& ks,
                                         const GenSpec& gates,
                                         const AdmitOptions& opt = {});

/// Campaign-order dedupe over screened candidates: an admitted candidate
/// whose program hash was already admitted drops to DedupeHash, then one
/// whose cost bucket was already admitted drops to DedupeProfile.
/// Deterministic: runs in candidate order regardless of screening order.
void dedupe_candidates(std::vector<Candidate>& candidates);

struct CampaignResult {
  GenSpec spec;
  std::uint64_t seed = 0;
  /// Every candidate in index order (admitted and rejected).
  std::vector<Candidate> candidates;

  [[nodiscard]] std::size_t admitted() const noexcept;
  [[nodiscard]] std::size_t rejected_at(Stage s) const noexcept;
};

/// Draw and screen spec.count candidates. Deterministic in (spec, seed):
/// thread count only affects wall-clock.
[[nodiscard]] CampaignResult run_campaign(const GenSpec& spec,
                                          std::uint64_t seed,
                                          const AdmitOptions& opt = {});

// ---- corpus persistence -------------------------------------------------

/// One admitted kernel in a manifest.
struct ManifestEntry {
  std::size_t index = 0;
  std::string name;
  kernels::TypeSupport types = kernels::TypeSupport::Both;
  std::uint64_t prog_hash = 0;
  std::string bucket;
};

struct Manifest {
  GenSpec spec;
  std::uint64_t seed = 0;
  std::vector<ManifestEntry> kernels;
};

/// Write `dir/manifest.txt` plus one canonical rendering per admitted
/// kernel under `dir/kernels/<name>.pk` and a `dir/rejects.txt` audit of
/// every rejection (stage + first diagnostic). Creates `dir`.
void write_campaign(const CampaignResult& result, const std::string& dir);

/// Parse `dir/manifest.txt`. Throws std::runtime_error on missing or
/// malformed manifests.
[[nodiscard]] Manifest read_manifest(const std::string& dir);

/// Read the manifest in `dir` and register every admitted kernel with the
/// kernel registry (suite "generated"), regenerating each from
/// (spec, seed, index) on demand. Returns the manifest.
Manifest install_generated(const std::string& dir);

/// Dataset configurations of an installed corpus: every admitted kernel x
/// supported element types x the spec's problem sizes.
[[nodiscard]] std::vector<core::SampleConfig> generated_configs(
    const Manifest& m);

}  // namespace pulpc::gen
