#include "gen/spec.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pulpc::gen {

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::string fmt_sizes(const std::vector<std::uint32_t>& sizes) {
  std::string out;
  for (const std::uint32_t s : sizes) {
    if (!out.empty()) out += ',';
    out += std::to_string(s);
  }
  return out;
}

std::vector<std::uint32_t> parse_sizes(const std::string& v) {
  std::vector<std::uint32_t> out;
  std::stringstream ss(v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const long n = std::stol(item);
    if (n < 64 || n > 1 << 20) {
      throw std::invalid_argument("gen spec: size out of range: " + item);
    }
    out.push_back(static_cast<std::uint32_t>(n));
  }
  if (out.empty()) throw std::invalid_argument("gen spec: empty sizes list");
  return out;
}

unsigned parse_u(const std::string& key, const std::string& v, unsigned lo,
                 unsigned hi) {
  const long n = std::stol(v);
  if (n < long(lo) || n > long(hi)) {
    throw std::invalid_argument("gen spec: " + key + " out of range [" +
                                std::to_string(lo) + ", " +
                                std::to_string(hi) + "]: " + v);
  }
  return static_cast<unsigned>(n);
}

double parse_p(const std::string& key, const std::string& v) {
  const double p = std::stod(v);
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("gen spec: " + key +
                                " wants a probability in [0, 1]: " + v);
  }
  return p;
}

}  // namespace

std::string GenSpec::to_string() const {
  std::string out;
  const auto kv = [&](const char* k, const std::string& v) {
    if (!out.empty()) out += ';';
    out += k;
    out += '=';
    out += v;
  };
  kv("count", std::to_string(count));
  kv("sizes", fmt_sizes(sizes));
  kv("dtypes", dtypes);
  kv("min_segments", std::to_string(min_segments));
  kv("max_segments", std::to_string(max_segments));
  kv("max_chain", std::to_string(max_chain));
  kv("max_phases", std::to_string(max_phases));
  kv("max_stride", std::to_string(max_stride));
  kv("max_radius", std::to_string(max_radius));
  kv("tri_cap", std::to_string(tri_cap));
  kv("p_cyclic", fmt_double(p_cyclic));
  kv("p_branch", fmt_double(p_branch));
  kv("p_l2", fmt_double(p_l2));
  kv("p_double_buffer", fmt_double(p_double_buffer));
  kv("p_heavy_critical", fmt_double(p_heavy_critical));
  kv("min_cycles", std::to_string(min_cycles));
  kv("require_parallel", require_parallel ? "1" : "0");
  return out;
}

GenSpec GenSpec::parse(const std::string& text) {
  GenSpec spec;
  std::string token;
  const auto apply = [&spec](const std::string& pair) {
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("gen spec: expected key=value, got '" +
                                  pair + "'");
    }
    const std::string key = pair.substr(0, eq);
    const std::string val = pair.substr(eq + 1);
    if (key == "count") {
      spec.count = parse_u(key, val, 1, 1 << 20);
    } else if (key == "sizes") {
      spec.sizes = parse_sizes(val);
    } else if (key == "dtypes") {
      if (val != "mixed" && val != "i32" && val != "f32" && val != "both") {
        throw std::invalid_argument(
            "gen spec: dtypes wants mixed|i32|f32|both, got '" + val + "'");
      }
      spec.dtypes = val;
    } else if (key == "min_segments") {
      spec.min_segments = parse_u(key, val, 1, 8);
    } else if (key == "max_segments") {
      spec.max_segments = parse_u(key, val, 1, 8);
    } else if (key == "max_chain") {
      spec.max_chain = parse_u(key, val, 1, 64);
    } else if (key == "max_phases") {
      spec.max_phases = parse_u(key, val, 1, 32);
    } else if (key == "max_stride") {
      spec.max_stride = parse_u(key, val, 1, 64);
    } else if (key == "max_radius") {
      spec.max_radius = parse_u(key, val, 1, 8);
    } else if (key == "tri_cap") {
      spec.tri_cap = parse_u(key, val, 8, 512);
    } else if (key == "p_cyclic") {
      spec.p_cyclic = parse_p(key, val);
    } else if (key == "p_branch") {
      spec.p_branch = parse_p(key, val);
    } else if (key == "p_l2") {
      spec.p_l2 = parse_p(key, val);
    } else if (key == "p_double_buffer") {
      spec.p_double_buffer = parse_p(key, val);
    } else if (key == "p_heavy_critical") {
      spec.p_heavy_critical = parse_p(key, val);
    } else if (key == "min_cycles") {
      spec.min_cycles = parse_u(key, val, 0, 1U << 30);
    } else if (key == "require_parallel") {
      spec.require_parallel = val != "0" && val != "false";
    } else {
      throw std::invalid_argument("gen spec: unknown key '" + key + "'");
    }
  };
  // Accept ';' and newline separated pairs; '#' comments out the rest of
  // the line, surrounding whitespace is trimmed per pair.
  std::stringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::stringstream parts(line);
    while (std::getline(parts, token, ';')) {
      const std::size_t b = token.find_first_not_of(" \t\r");
      if (b == std::string::npos) continue;
      const std::size_t e = token.find_last_not_of(" \t\r");
      apply(token.substr(b, e - b + 1));
    }
  }
  if (spec.min_segments > spec.max_segments) {
    throw std::invalid_argument("gen spec: min_segments > max_segments");
  }
  return spec;
}

GenSpec GenSpec::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("gen spec: cannot open " + path);
  }
  std::stringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

}  // namespace pulpc::gen
