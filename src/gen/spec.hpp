// GenSpec: the declarative property space the kernel generator sweeps.
// A spec plus a seed fully determines every candidate kernel (see
// generator.hpp), so a campaign is reproducible from the pair alone and
// the manifest of an admitted corpus only needs to record them.
//
// The knobs mirror the axes the paper's custom-kernel section varies by
// hand: compute chain depth, memory stream count and stride patterns,
// loop-nest shapes (including triangular and tiled), synchronisation
// (critical sections, barrier cadence), off-cluster L2 traffic and DMA
// single/double buffering, plus the static-schedule flavour
// (chunked/cyclic).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pulpc::gen {

struct GenSpec {
  // ---- campaign shape ---------------------------------------------------
  /// Candidates drawn per campaign (admission filters them down).
  unsigned count = 768;
  /// Problem sizes (bytes) every admitted kernel is instantiated at.
  std::vector<std::uint32_t> sizes = {512, 2048};
  /// Element-type policy: "mixed" draws one type per kernel, "i32"/"f32"
  /// pin it, "both" makes every kernel type-generic (2x simulation cost).
  std::string dtypes = "mixed";

  // ---- structure --------------------------------------------------------
  unsigned min_segments = 1;  ///< pattern segments per kernel
  unsigned max_segments = 3;
  unsigned max_chain = 8;     ///< compute ops chained per element
  unsigned max_phases = 6;    ///< serial phases in barrier-cadence nests
  unsigned max_stride = 16;   ///< largest strided-access stride
  unsigned max_radius = 3;    ///< largest stencil radius
  unsigned tri_cap = 64;      ///< triangular nests: outer trip cap

  // ---- pattern probabilities (per draw, [0, 1]) -------------------------
  double p_cyclic = 0.25;         ///< schedule(static,1) instead of chunked
  double p_branch = 0.20;         ///< data-dependent if in loop bodies
  double p_l2 = 0.20;             ///< input buffer lives in L2
  double p_double_buffer = 0.50;  ///< DMA segments: ping-pong vs single
  double p_heavy_critical = 0.35; ///< critical bodies carry real work

  // ---- admission gates --------------------------------------------------
  /// Reject candidates whose 1-core static cycle upper bound is below
  /// this (degenerate: no measurable work).
  long long min_cycles = 128;
  /// Reject candidates without a parallel region (the label task is
  /// about parallel kernels; serial-only candidates are trivially "1").
  bool require_parallel = true;

  /// Canonical one-line rendering, `key=value;key=value` in declaration
  /// order. parse() round-trips it (also the manifest encoding).
  [[nodiscard]] std::string to_string() const;

  /// Parse a spec from to_string() output or a spec file: `key=value`
  /// pairs separated by ';' or newlines, '#' starts a comment, unknown
  /// keys throw std::invalid_argument. Missing keys keep their defaults.
  [[nodiscard]] static GenSpec parse(const std::string& text);
  [[nodiscard]] static GenSpec parse_file(const std::string& path);
};

}  // namespace pulpc::gen
