#include "gen/admit.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "core/artifacts.hpp"
#include "core/parallel.hpp"
#include "dsl/lower.hpp"
#include "dsl/validate.hpp"
#include "kir/costmodel.hpp"
#include "kir/verify.hpp"

namespace pulpc::gen {

namespace {

namespace fs = std::filesystem;

/// Collapse a (possibly multi-line) diagnostic into one audit-log line.
std::string one_line(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

const char* types_name(kernels::TypeSupport t) {
  switch (t) {
    case kernels::TypeSupport::IntOnly: return "i32";
    case kernels::TypeSupport::FloatOnly: return "f32";
    case kernels::TypeSupport::Both: return "both";
  }
  return "?";
}

kernels::TypeSupport types_from(const std::string& s) {
  if (s == "i32") return kernels::TypeSupport::IntOnly;
  if (s == "f32") return kernels::TypeSupport::FloatOnly;
  if (s == "both") return kernels::TypeSupport::Both;
  throw std::runtime_error("gen manifest: bad type support '" + s + "'");
}

/// Quantized static cost profile: log-bucketed 1-core work, speedup
/// shape, and the barrier / contention / DMA fractions of the max-core
/// bound, plus the analyzer's argmin-energy core count. Two candidates
/// landing in the same bucket are cost-model near-clones; the second
/// one adds no label-relevant variety, so DedupeProfile drops it.
std::string cost_bucket(const kir::CostReport& cost, unsigned max_cores) {
  const kir::ConfigCost* c1 = cost.config(1);
  const kir::ConfigCost* cn = cost.config(max_cores);
  if (c1 == nullptr || cn == nullptr) return "p?";
  const double hi1 = static_cast<double>(std::max<long long>(1, c1->cycles.hi));
  const double hin = static_cast<double>(std::max<long long>(1, cn->cycles.hi));
  char buf[96];
  std::snprintf(buf, sizeof buf, "p%ld.%ld.%ld.%ld.%ld.c%u",
                std::lround(4.0 * std::log2(hi1)),
                std::lround(8.0 * std::log2(hi1 / hin)),
                std::lround(16.0 * static_cast<double>(cn->barrier_cycles) / hin),
                std::lround(16.0 * static_cast<double>(cn->contention_hi) / hin),
                std::lround(16.0 * static_cast<double>(cn->dma_wait.hi) / hin),
                cost.best_cores_by_energy_hi());
  return buf;
}

/// Pick the diagnostic that rejected: first error, else first warning.
std::string first_failure(const kir::VerifyReport& rep) {
  for (const kir::Diagnostic& d : rep.diags) {
    if (d.severity == kir::Severity::Error) return one_line(d.to_string());
  }
  for (const kir::Diagnostic& d : rep.diags) {
    if (d.severity == kir::Severity::Warning) return one_line(d.to_string());
  }
  return "verification failed";
}

/// validate -> lower -> verify for one concrete kernel; fills the
/// verdict's stage/detail on rejection and hands back the lowered
/// program on success (for the analyze stage and hashing).
bool gate_compile(const dsl::KernelSpec& ks, const AdmitOptions& opt,
                  KernelVerdict& v, std::optional<kir::Program>& prog) {
  const std::vector<kir::Diagnostic> vd = dsl::validate_spec_diags(ks);
  if (!vd.empty()) {
    v.stage = Stage::Validate;
    v.detail = one_line(vd.front().to_string());
    return false;
  }
  try {
    prog.emplace(dsl::lower(ks));
  } catch (const std::exception& e) {
    v.stage = Stage::Lower;
    v.detail = one_line(e.what());
    return false;
  }
  kir::VerifyOptions vo;
  vo.max_cores = static_cast<int>(opt.max_cores);
  const kir::VerifyReport rep = kir::verify_program(*prog, vo);
  if (rep.errors() > 0 || (opt.werror && rep.warnings() > 0)) {
    v.stage = Stage::Verify;
    v.detail = first_failure(rep);
    return false;
  }
  return true;
}

/// analyze_cost gates over an already-compiled kernel: bounded bounds,
/// non-degenerate work, parallel region; fills hash/bucket on admission.
void gate_analyze(const dsl::KernelSpec& ks, const kir::Program& prog,
                  const GenSpec& gates, const AdmitOptions& opt,
                  KernelVerdict& v) {
  kir::CostParams params;
  params.max_cores = opt.max_cores;
  const kir::CostReport cost = kir::analyze_cost(prog, params);
  for (const kir::ConfigCost& cfg : cost.configs) {
    if (!cfg.bounded) {
      v.stage = Stage::Analyze;
      v.detail =
          "statically unbounded cycle bound at n=" + std::to_string(cfg.cores);
      return;
    }
  }
  const kir::ConfigCost* c1 = cost.config(1);
  v.cycles_hi1 = c1 != nullptr ? c1->cycles.hi : 0;
  if (v.cycles_hi1 < gates.min_cycles) {
    v.stage = Stage::Analyze;
    v.detail = "degenerate: 1-core cycle bound " +
               std::to_string(v.cycles_hi1) + " < min_cycles " +
               std::to_string(gates.min_cycles);
    return;
  }
  if (gates.require_parallel) {
    bool has_parallel = false;
    for (const dsl::StmtP& s : ks.body) {
      if (s && dsl::stmt_contains_parallel(*s)) {
        has_parallel = true;
        break;
      }
    }
    if (!has_parallel) {
      v.stage = Stage::Analyze;
      v.detail = "no parallel region";
      return;
    }
  }
  v.best_cores = cost.best_cores_by_energy_hi();
  v.bucket = cost_bucket(cost, opt.max_cores);
  v.prog_hash = core::program_hash(prog);
}

/// Run one candidate through every gate except dedupe (which needs the
/// whole campaign and runs serially afterwards). Every (dtype, size)
/// instantiation must compile and verify; the analyze pre-screen, hash
/// and bucket come from the canonical instantiation (first supported
/// dtype at the largest size).
Candidate screen_candidate(const GenSpec& spec, std::uint64_t seed,
                           std::size_t index, const AdmitOptions& opt) {
  Candidate c;
  c.index = index;
  c.name = kernel_name(seed, index);
  c.types = kernel_types(spec, seed, index);

  std::vector<kir::DType> dts;
  if (c.types != kernels::TypeSupport::FloatOnly) {
    dts.push_back(kir::DType::I32);
  }
  if (c.types != kernels::TypeSupport::IntOnly) {
    dts.push_back(kir::DType::F32);
  }
  const std::uint32_t canon_size =
      *std::max_element(spec.sizes.begin(), spec.sizes.end());

  std::optional<kir::Program> canon;
  std::optional<dsl::KernelSpec> canon_ks;
  for (const kir::DType dt : dts) {
    for (const std::uint32_t size : spec.sizes) {
      dsl::KernelSpec ks = generate_kernel(spec, seed, index, dt, size);
      KernelVerdict v;
      std::optional<kir::Program> prog;
      if (!gate_compile(ks, opt, v, prog)) {
        c.stage = v.stage;
        c.detail = std::move(v.detail);
        return c;
      }
      if (dt == dts.front() && size == canon_size) {
        canon = std::move(prog);
        canon_ks = std::move(ks);
      }
    }
  }

  KernelVerdict v;
  gate_analyze(*canon_ks, *canon, spec, opt, v);
  c.stage = v.stage;
  c.detail = std::move(v.detail);
  c.prog_hash = v.prog_hash;
  c.bucket = std::move(v.bucket);
  c.best_cores = v.best_cores;
  c.cycles_hi1 = v.cycles_hi1;
  return c;
}

std::string hash_hex(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

/// Canonical instantiation of an admitted kernel, for rendering.
dsl::KernelSpec canonical_kernel(const GenSpec& spec, std::uint64_t seed,
                                 const ManifestEntry& e) {
  const kir::DType dt = e.types == kernels::TypeSupport::FloatOnly
                            ? kir::DType::F32
                            : kir::DType::I32;
  const std::uint32_t size =
      *std::max_element(spec.sizes.begin(), spec.sizes.end());
  return generate_kernel(spec, seed, e.index, dt, size);
}

}  // namespace

const char* to_string(Stage s) noexcept {
  switch (s) {
    case Stage::Admitted: return "admitted";
    case Stage::Validate: return "validate";
    case Stage::Lower: return "lower";
    case Stage::Verify: return "verify";
    case Stage::Analyze: return "analyze";
    case Stage::DedupeHash: return "dedupe_hash";
    case Stage::DedupeProfile: return "dedupe_profile";
  }
  return "?";
}

std::size_t CampaignResult::admitted() const noexcept {
  std::size_t n = 0;
  for (const Candidate& c : candidates) n += c.admitted() ? 1 : 0;
  return n;
}

std::size_t CampaignResult::rejected_at(Stage s) const noexcept {
  std::size_t n = 0;
  for (const Candidate& c : candidates) n += c.stage == s ? 1 : 0;
  return n;
}

KernelVerdict admit_kernel(const dsl::KernelSpec& ks, const GenSpec& gates,
                           const AdmitOptions& opt) {
  KernelVerdict v;
  std::optional<kir::Program> prog;
  if (!gate_compile(ks, opt, v, prog)) return v;
  gate_analyze(ks, *prog, gates, opt, v);
  return v;
}

void dedupe_candidates(std::vector<Candidate>& candidates) {
  std::unordered_set<std::uint64_t> hashes;
  std::unordered_set<std::string> buckets;
  for (Candidate& c : candidates) {
    if (!c.admitted()) continue;
    if (!hashes.insert(c.prog_hash).second) {
      c.stage = Stage::DedupeHash;
      c.detail = "duplicate program hash " + hash_hex(c.prog_hash);
      continue;
    }
    if (!buckets.insert(c.bucket).second) {
      c.stage = Stage::DedupeProfile;
      c.detail = "duplicate cost profile " + c.bucket;
    }
  }
}

CampaignResult run_campaign(const GenSpec& spec, std::uint64_t seed,
                            const AdmitOptions& opt) {
  CampaignResult result;
  result.spec = spec;
  result.seed = seed;

  core::ThreadPool pool(opt.threads);
  result.candidates = pool.parallel_map<Candidate>(
      spec.count,
      [&](std::size_t i) { return screen_candidate(spec, seed, i, opt); });

  // Dedupe serially in candidate order: the admitted set must not depend
  // on screening completion order.
  dedupe_candidates(result.candidates);
  return result;
}

void write_campaign(const CampaignResult& result, const std::string& dir) {
  fs::create_directories(fs::path(dir) / "kernels");

  std::ofstream mf(fs::path(dir) / "manifest.txt");
  if (!mf) throw std::runtime_error("gen: cannot write manifest in " + dir);
  mf << "pulpc-gen-manifest v1\n";
  mf << "seed " << result.seed << "\n";
  mf << "spec " << result.spec.to_string() << "\n";
  for (const Candidate& c : result.candidates) {
    if (!c.admitted()) continue;
    mf << "kernel " << c.index << " " << c.name << " " << types_name(c.types)
       << " " << hash_hex(c.prog_hash) << " " << c.bucket << "\n";
  }
  mf.close();

  std::ofstream rf(fs::path(dir) / "rejects.txt");
  for (const Candidate& c : result.candidates) {
    if (c.admitted()) continue;
    rf << "reject " << c.index << " " << c.name << " " << to_string(c.stage)
       << " " << c.detail << "\n";
  }
  rf.close();

  for (const Candidate& c : result.candidates) {
    if (!c.admitted()) continue;
    ManifestEntry e;
    e.index = c.index;
    e.name = c.name;
    e.types = c.types;
    const dsl::KernelSpec ks = canonical_kernel(result.spec, result.seed, e);
    std::ofstream kf(fs::path(dir) / "kernels" / (c.name + ".pk"));
    kf << render(ks);
  }
}

Manifest read_manifest(const std::string& dir) {
  const fs::path path = fs::path(dir) / "manifest.txt";
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("gen: cannot open manifest " + path.string());
  }
  std::string line;
  if (!std::getline(in, line) || line != "pulpc-gen-manifest v1") {
    throw std::runtime_error("gen: bad manifest header in " + path.string());
  }
  Manifest m;
  bool have_seed = false;
  bool have_spec = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "seed") {
      ls >> m.seed;
      have_seed = true;
    } else if (tag == "spec") {
      std::string rest;
      std::getline(ls, rest);
      const std::size_t b = rest.find_first_not_of(' ');
      m.spec = GenSpec::parse(b == std::string::npos ? "" : rest.substr(b));
      have_spec = true;
    } else if (tag == "kernel") {
      ManifestEntry e;
      std::string types;
      std::string hash;
      ls >> e.index >> e.name >> types >> hash >> e.bucket;
      if (ls.fail() || e.name.empty()) {
        throw std::runtime_error("gen: bad manifest entry: " + line);
      }
      e.types = types_from(types);
      e.prog_hash = std::stoull(hash, nullptr, 16);
      m.kernels.push_back(std::move(e));
    } else {
      throw std::runtime_error("gen: unknown manifest line: " + line);
    }
  }
  if (!have_seed || !have_spec) {
    throw std::runtime_error("gen: manifest missing seed/spec in " +
                             path.string());
  }
  return m;
}

Manifest install_generated(const std::string& dir) {
  Manifest m = read_manifest(dir);
  // Replace, don't stack: loading a second corpus drops the first.
  kernels::clear_runtime_kernels();
  std::vector<kernels::KernelInfo> infos;
  infos.reserve(m.kernels.size());
  for (const ManifestEntry& e : m.kernels) {
    kernels::KernelInfo ki;
    ki.name = e.name;
    ki.suite = "generated";
    ki.types = e.types;
    const GenSpec spec = m.spec;
    const std::uint64_t seed = m.seed;
    const std::size_t index = e.index;
    ki.factory = [spec, seed, index](kir::DType dt, std::uint32_t size) {
      return generate_kernel(spec, seed, index, dt, size);
    };
    infos.push_back(std::move(ki));
  }
  kernels::register_runtime_kernels(std::move(infos));
  return m;
}

std::vector<core::SampleConfig> generated_configs(const Manifest& m) {
  std::vector<core::SampleConfig> configs;
  for (const ManifestEntry& e : m.kernels) {
    for (const kir::DType dt : {kir::DType::I32, kir::DType::F32}) {
      if (e.types == kernels::TypeSupport::IntOnly && dt != kir::DType::I32) {
        continue;
      }
      if (e.types == kernels::TypeSupport::FloatOnly &&
          dt != kir::DType::F32) {
        continue;
      }
      for (const std::uint32_t size : m.spec.sizes) {
        configs.push_back({e.name, dt, size});
      }
    }
  }
  return configs;
}

}  // namespace pulpc::gen
