#include "gen/generator.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "dsl/builder.hpp"
#include "kernels/common.hpp"

namespace pulpc::gen {

namespace {

using dsl::Buf;
using dsl::InitKind;
using dsl::KernelBuilder;
using dsl::Val;
using kir::DType;
using kir::MemSpace;

/// splitmix64 finaliser, used to hash (seed, index) into an independent
/// per-candidate stream (plain additive offsets would make neighbouring
/// candidates share a shifted sequence).
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One element-wise compute op of a chain: opcode + a small constant.
/// The plan is drawn once (dtype-independent) and mapped to concrete ops
/// per element type at emission, so the same candidate stays structurally
/// identical across i32/f32 instantiations.
struct ChainOp {
  int op;
  int c;
};

std::vector<ChainOp> draw_chain(Rng& rng, unsigned max_chain,
                                unsigned cap = 0) {
  unsigned limit = max_chain;
  if (cap != 0) limit = std::min(limit, cap);
  const int len = rng.irange(1, static_cast<std::int32_t>(limit));
  std::vector<ChainOp> ops;
  ops.reserve(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) {
    ops.push_back({static_cast<int>(rng.range(8)), rng.irange(2, 7)});
  }
  return ops;
}

/// Map one chain op onto the kernel's element type. Clamping ops (min /
/// max) interleave with the multiplicative ones, so f32 values stay
/// finite over the longest chains.
Val chain_step(KernelBuilder& k, const ChainOp& o, Val v) {
  const bool f = k.elem() == DType::F32;
  switch (o.op & 7) {
    case 0: return v + k.ec(o.c);
    case 1: return v * k.ec(o.c % 3 + 2);
    case 2: return dsl::vmin(v, k.ec(o.c * 16));
    case 3: return dsl::vmax(v, k.ec(-o.c));
    case 4: return v * k.ec(o.c % 2 + 1) + k.ec(o.c);
    case 5:
      if (f) return v * k.ec(0.5) + k.ec(o.c);
      return v ^ (v >> KernelBuilder::ic(o.c % 5 + 1));
    case 6: return kernels::div_const(k, v, o.c % 5 + 3);
    default:
      if (f) return dsl::vsqrt(dsl::vabs(v) + k.ec(1));
      return (v & KernelBuilder::ic(0x7fff)) % KernelBuilder::ic(o.c % 7 + 3);
  }
}

/// Apply a chain to scalar `v` (declared with decl()) as one assignment
/// per op — keeps the lowered code linear in chain length instead of
/// duplicating subtrees.
void chain_stmts(KernelBuilder& k, const std::vector<ChainOp>& ops, Val v) {
  for (const ChainOp& o : ops) k.assign(v, chain_step(k, o, v));
}

/// Per-segment emission context. `n` is the per-buffer element budget
/// (the kernel's byte footprint split over segments and streams, like the
/// hand-written kernels' len1()).
struct Ctx {
  const GenSpec& spec;
  KernelBuilder& k;
  Rng& rng;
  int seg = 0;
  std::uint32_t n = 0;

  /// Segment-scoped scalar / buffer name ("s<seg>_<base>").
  [[nodiscard]] std::string nm(const char* base) const {
    std::string s = "s";
    s += std::to_string(seg);
    s += '_';
    s += base;
    return s;
  }
  /// Segment-scoped loop-variable name ("<base><seg>").
  [[nodiscard]] std::string lv(const char* base) const {
    return std::string(base) + std::to_string(seg);
  }
};

/// Parallel loop over [lo, hi), chunked or cyclic per the draw.
void pfor(Ctx& c, const char* var, std::uint32_t lo, std::uint32_t hi,
          bool cyclic, const KernelBuilder::LoopBody& fn) {
  const Val l = KernelBuilder::ic(static_cast<std::int32_t>(lo));
  const Val h = KernelBuilder::ic(static_cast<std::int32_t>(hi));
  if (cyclic) {
    c.k.par_for_cyclic(c.lv(var), l, h, fn);
  } else {
    c.k.par_for(c.lv(var), l, h, fn);
  }
}

// ---- pattern emitters ---------------------------------------------------
// Every emitter draws its whole plan from c.rng up front; the only values
// allowed to depend on the instantiation size are pure clamps of already
// drawn numbers, so the draw sequence is identical across (dtype, size).

/// Strided streaming map: 1-2 input streams, optional L2 input, optional
/// data-dependent branch, chunked or cyclic schedule.
void emit_stream(Ctx& c, bool l2_forced) {
  KernelBuilder& k = c.k;
  const int streams = c.rng.irange(1, 2);
  const std::uint32_t stride_sel = c.rng.range(5);
  const bool cyclic = c.rng.chance(c.spec.p_cyclic);
  const bool branch = c.rng.chance(c.spec.p_branch);
  const bool l2in = l2_forced || c.rng.chance(c.spec.p_l2);
  const std::vector<ChainOp> ops = draw_chain(c.rng, c.spec.max_chain);

  const std::uint32_t strides[5] = {1, 2, 4, 8, c.spec.max_stride};
  const std::uint32_t stride =
      std::min(strides[stride_sel], std::max(1U, c.n / 4));
  const std::uint32_t nit = c.n / stride;

  const Buf in0 = k.buffer(c.nm("in0"), c.n, InitKind::Random,
                           l2in ? MemSpace::L2 : MemSpace::Tcdm);
  Buf in1;
  if (streams == 2) in1 = k.buffer(c.nm("in1"), c.n);
  const Buf out = k.buffer(c.nm("out"), c.n, InitKind::Zero);

  pfor(c, "i", 0, nit, cyclic, [&](Val i) {
    const Val j =
        stride == 1
            ? i
            : k.decl(c.nm("j"),
                     i * KernelBuilder::ic(static_cast<std::int32_t>(stride)));
    Val init = k.load(in0, j);
    if (streams == 2) init = init + k.load(in1, j);
    const Val v = k.decl(c.nm("v"), init);
    chain_stmts(k, ops, v);
    if (branch) {
      k.if_else(
          k.load(in0, j) > k.ec(0), [&] { k.store(out, j, v); },
          [&] { k.store(out, j, v + k.ec(1)); });
    } else {
      k.store(out, j, v);
    }
  });
}

/// 1-D stencil of radius 1..max_radius with drawn coefficients.
void emit_stencil(Ctx& c) {
  KernelBuilder& k = c.k;
  const int r = c.rng.irange(1, static_cast<std::int32_t>(c.spec.max_radius));
  const bool cyclic = c.rng.chance(c.spec.p_cyclic);
  std::vector<int> coeff;
  coeff.reserve(static_cast<std::size_t>(r) + 1);
  for (int d = 0; d <= r; ++d) coeff.push_back(c.rng.irange(1, 5));

  const std::uint32_t n = std::max(c.n, static_cast<std::uint32_t>(2 * r + 8));
  const Buf a = k.buffer(c.nm("a"), n);
  const Buf b = k.buffer(c.nm("b"), n, InitKind::Zero);

  pfor(c, "i", static_cast<std::uint32_t>(r), n - static_cast<std::uint32_t>(r),
       cyclic, [&](Val i) {
         const Val acc = k.decl(c.nm("acc"), k.ec(coeff[0]) * k.load(a, i));
         for (int d = 1; d <= r; ++d) {
           const Val dd = KernelBuilder::ic(d);
           k.assign(acc, acc + k.ec(coeff[static_cast<std::size_t>(d)]) *
                                   (k.load(a, i + dd) + k.load(a, i - dd)));
         }
         k.store(b, i, acc);
       });
}

/// Data-dependent gather through an i32 index array (idx[i] % n).
void emit_gather(Ctx& c) {
  KernelBuilder& k = c.k;
  const bool l2 = c.rng.chance(c.spec.p_l2);
  const bool cyclic = c.rng.chance(c.spec.p_cyclic);
  const std::vector<ChainOp> ops = draw_chain(c.rng, c.spec.max_chain, 4);

  const Buf idx =
      k.buffer_of(c.nm("idx"), DType::I32, c.n, InitKind::RandomPos);
  const Buf x = k.buffer(c.nm("x"), c.n, InitKind::Random,
                         l2 ? MemSpace::L2 : MemSpace::Tcdm);
  const Buf out = k.buffer(c.nm("out"), c.n, InitKind::Zero);

  pfor(c, "i", 0, c.n, cyclic, [&](Val i) {
    const Val j =
        k.decl(c.nm("j"), k.load(idx, i) %
                              KernelBuilder::ic(static_cast<std::int32_t>(c.n)));
    const Val v = k.decl(c.nm("v"), k.load(x, j) + k.load(x, i));
    chain_stmts(k, ops, v);
    k.store(out, i, v);
  });
}

/// Scatter through an affine permutation: out[(i*mult + off) % n2] with
/// odd `mult` and power-of-two `n2`, a bijection the race verifier can
/// prove write-disjoint.
void emit_scatter(Ctx& c) {
  KernelBuilder& k = c.k;
  const std::int32_t mult = 2 * c.rng.irange(1, 7) + 1;
  const std::uint32_t off_draw = c.rng.range(1024);
  const bool cyclic = c.rng.chance(c.spec.p_cyclic);
  const std::vector<ChainOp> ops = draw_chain(c.rng, c.spec.max_chain, 3);

  std::uint32_t n2 = 8;
  while (n2 * 2 <= c.n) n2 *= 2;
  const std::int32_t off = static_cast<std::int32_t>(off_draw % n2);

  const Buf in = k.buffer(c.nm("in"), n2);
  const Buf out = k.buffer(c.nm("out"), n2, InitKind::Zero);

  pfor(c, "i", 0, n2, cyclic, [&](Val i) {
    const Val j = k.decl(
        c.nm("j"), (i * KernelBuilder::ic(mult) + KernelBuilder::ic(off)) %
                       KernelBuilder::ic(static_cast<std::int32_t>(n2)));
    const Val v = k.decl(c.nm("v"), k.load(in, i));
    chain_stmts(k, ops, v);
    k.store(out, j, v);
  });
}

/// Critical-section reduction; "heavy" variants do the element work
/// inside the lock (contention-dominated), light ones outside.
void emit_reduce(Ctx& c) {
  KernelBuilder& k = c.k;
  const bool heavy = c.rng.chance(c.spec.p_heavy_critical);
  const bool cyclic = c.rng.chance(c.spec.p_cyclic);
  const std::vector<ChainOp> ops = draw_chain(c.rng, c.spec.max_chain, 4);

  const Buf x = k.buffer(c.nm("x"), c.n);
  const Buf acc = k.buffer(c.nm("acc"), 8, InitKind::Zero);
  const Val zero = KernelBuilder::ic(0);

  pfor(c, "i", 0, c.n, cyclic, [&](Val i) {
    const Val v = k.decl(c.nm("v"), k.load(x, i));
    if (heavy) {
      k.critical([&] {
        chain_stmts(k, ops, v);
        k.store(acc, zero, k.load(acc, zero) + v);
      });
    } else {
      chain_stmts(k, ops, v);
      k.critical([&] { k.store(acc, zero, k.load(acc, zero) + v); });
    }
  });
}

/// Barrier cadence: a serial phase loop around a parallel sweep — one
/// fork/barrier per phase, the dominant cost at small n.
void emit_phases(Ctx& c) {
  KernelBuilder& k = c.k;
  const std::int32_t phases =
      c.rng.irange(2, static_cast<std::int32_t>(c.spec.max_phases));
  const bool cyclic = c.rng.chance(c.spec.p_cyclic);
  const std::int32_t scale = c.rng.irange(1, 3);

  const Buf x = k.buffer(c.nm("x"), c.n);
  const Buf y = k.buffer(c.nm("y"), c.n, InitKind::Zero);

  k.for_(c.lv("t"), KernelBuilder::ic(0), KernelBuilder::ic(phases),
         [&](Val t) {
           pfor(c, "i", 0, c.n, cyclic, [&](Val i) {
             k.store(y, i,
                     k.load(y, i) + k.load(x, i) * k.ec(scale) + k.to_elem(t));
           });
         });
}

/// Triangular nest: parallel outer row loop, inner loop over j <= i —
/// either with a data-dependent bound or rectangularised with a guard.
/// Both forms have the characteristic per-core load imbalance.
void emit_triangular(Ctx& c) {
  KernelBuilder& k = c.k;
  const std::int32_t m_draw =
      c.rng.irange(16, static_cast<std::int32_t>(c.spec.tri_cap));
  const bool cyclic = c.rng.chance(c.spec.p_cyclic);
  const bool guarded = c.rng.chance(0.5);

  const std::uint32_t m =
      std::min(static_cast<std::uint32_t>(m_draw), std::max(8U, c.n));
  const Buf a = k.buffer(c.nm("a"), std::max(8U, m));
  const Buf out = k.buffer(c.nm("out"), std::max(8U, m), InitKind::Zero);
  const std::int32_t mi = static_cast<std::int32_t>(m);

  pfor(c, "i", 0, m, cyclic, [&](Val i) {
    const Val acc = k.decl(c.nm("acc"), k.ec(0));
    if (guarded) {
      k.for_(c.lv("j"), KernelBuilder::ic(0), KernelBuilder::ic(mi),
             [&](Val j) {
               k.if_(j <= i, [&] { k.assign(acc, acc + k.load(a, j)); });
             });
    } else {
      k.for_(c.lv("j"), KernelBuilder::ic(0), i + KernelBuilder::ic(1),
             [&](Val j) { k.assign(acc, acc + k.load(a, j)); });
    }
    k.store(out, i, acc);
  });
}

/// Tiled sweep: serial tile loop around a parallel intra-tile loop,
/// optionally transposing the output (strided stores).
void emit_tiled(Ctx& c) {
  KernelBuilder& k = c.k;
  const std::uint32_t tiles[3] = {8, 16, 32};
  const std::uint32_t tile_sel = c.rng.range(3);
  const bool transpose = c.rng.chance(0.5);
  const bool cyclic = c.rng.chance(c.spec.p_cyclic);
  const std::vector<ChainOp> ops = draw_chain(c.rng, c.spec.max_chain, 4);

  const std::uint32_t tile = std::min(tiles[tile_sel], std::max(8U, c.n / 2));
  const std::uint32_t rows = std::max(1U, c.n / tile);
  const std::uint32_t total = rows * tile;

  const Buf in = k.buffer(c.nm("in"), std::max(8U, total));
  const Buf out = k.buffer(c.nm("out"), std::max(8U, total), InitKind::Zero);

  k.for_(c.lv("t"), KernelBuilder::ic(0),
         KernelBuilder::ic(static_cast<std::int32_t>(rows)), [&](Val t) {
           pfor(c, "j", 0, tile, cyclic, [&](Val j) {
             const Val idx = k.decl(
                 c.nm("idx"),
                 t * KernelBuilder::ic(static_cast<std::int32_t>(tile)) + j);
             const Val v = k.decl(c.nm("v"), k.load(in, idx));
             chain_stmts(k, ops, v);
             if (transpose) {
               k.store(out,
                       j * KernelBuilder::ic(static_cast<std::int32_t>(rows)) +
                           t,
                       v);
             } else {
               k.store(out, idx, v);
             }
           });
         });
}

/// Lock contention storm: every iteration bounces the cluster lock.
void emit_crit_storm(Ctx& c) {
  KernelBuilder& k = c.k;
  const std::int32_t rounds = 32 * c.rng.irange(1, 4);
  const bool heavy = c.rng.chance(c.spec.p_heavy_critical);
  const bool cyclic = c.rng.chance(c.spec.p_cyclic);

  const Buf cnt = k.buffer(c.nm("cnt"), 8, InitKind::Zero);
  const Val zero = KernelBuilder::ic(0);
  const Val one = KernelBuilder::ic(1);

  pfor(c, "i", 0, static_cast<std::uint32_t>(rounds), cyclic, [&](Val) {
    k.critical([&] {
      k.store(cnt, zero, k.load(cnt, zero) + k.ec(1));
      if (heavy) {
        k.store(cnt, one, k.load(cnt, one) + k.load(cnt, zero));
      }
    });
  });
}

/// DMA stream from L2: single-buffered (copy, wait, process) or
/// double-buffered ping-pong (second copy in flight during compute).
void emit_dma(Ctx& c) {
  KernelBuilder& k = c.k;
  const bool dbl = c.rng.chance(c.spec.p_double_buffer);
  const std::vector<ChainOp> ops = draw_chain(c.rng, c.spec.max_chain, 4);

  const std::uint32_t w = std::max(8U, c.n / 2);
  const Buf big = k.buffer(c.nm("big"), 2 * w, InitKind::Random, MemSpace::L2);

  if (!dbl) {
    const Buf buf = k.buffer(c.nm("buf"), w);
    const Buf out = k.buffer(c.nm("out"), w, InitKind::Zero);
    k.dma_copy(buf, big, w);
    k.dma_wait();
    pfor(c, "i", 0, w, false, [&](Val i) {
      const Val v = k.decl(c.nm("v"), k.load(buf, i));
      chain_stmts(k, ops, v);
      k.store(out, i, v);
    });
    return;
  }

  const Buf b0 = k.buffer(c.nm("b0"), w);
  const Buf b1 = k.buffer(c.nm("b1"), w);
  const Buf out = k.buffer(c.nm("out"), 2 * w, InitKind::Zero);
  const Val wv = KernelBuilder::ic(static_cast<std::int32_t>(w));
  k.dma_copy(b0, big, w);
  k.dma_wait();
  k.dma_copy(b1, big, w);
  pfor(c, "i", 0, w, false, [&](Val i) {
    const Val v = k.decl(c.nm("v"), k.load(b0, i));
    chain_stmts(k, ops, v);
    k.store(out, i, v);
  });
  k.dma_wait();
  pfor(c, "i2", 0, w, false, [&](Val i) {
    const Val v = k.decl(c.nm("w"), k.load(b1, i));
    chain_stmts(k, ops, v);
    k.store(out, i + wv, v);
  });
}

/// Pure integer compute: a serial op-chain loop per element, minimal
/// memory traffic (compute-bound end of the spectrum).
void emit_compute(Ctx& c) {
  KernelBuilder& k = c.k;
  const std::int32_t rounds = c.rng.irange(4, 16);
  const std::int32_t m1 = c.rng.irange(3, 9);
  const std::int32_t a1 = c.rng.irange(1, 255);
  const std::int32_t sh = c.rng.irange(1, 7);
  const bool cyclic = c.rng.chance(c.spec.p_cyclic);

  const Buf y = k.buffer(c.nm("y"), c.n, InitKind::Zero);

  pfor(c, "i", 0, c.n, cyclic, [&](Val i) {
    const Val v = k.decl(c.nm("v"), i + KernelBuilder::ic(1));
    k.for_(c.lv("r"), KernelBuilder::ic(0), KernelBuilder::ic(rounds),
           [&](Val) {
             k.assign(v, (v * KernelBuilder::ic(m1) + KernelBuilder::ic(a1)) ^
                             (v >> KernelBuilder::ic(sh)));
           });
    k.store(y, i, k.to_elem(v));
  });
}

void emit_segment(Ctx& c, unsigned pattern) {
  switch (pattern % 12) {
    case 0: emit_stream(c, false); break;
    case 1: emit_stencil(c); break;
    case 2: emit_gather(c); break;
    case 3: emit_scatter(c); break;
    case 4: emit_reduce(c); break;
    case 5: emit_phases(c); break;
    case 6: emit_triangular(c); break;
    case 7: emit_tiled(c); break;
    case 8: emit_crit_storm(c); break;
    case 9: emit_dma(c); break;
    case 10: emit_compute(c); break;
    default: emit_stream(c, true); break;  // forced-L2 stream
  }
}

kernels::TypeSupport draw_types(const GenSpec& spec, Rng& rng) {
  if (spec.dtypes == "i32") return kernels::TypeSupport::IntOnly;
  if (spec.dtypes == "f32") return kernels::TypeSupport::FloatOnly;
  if (spec.dtypes == "both") return kernels::TypeSupport::Both;
  return rng.chance(0.5) ? kernels::TypeSupport::IntOnly
                         : kernels::TypeSupport::FloatOnly;
}

bool supports(kernels::TypeSupport ts, DType t) {
  if (ts == kernels::TypeSupport::IntOnly) return t == DType::I32;
  if (ts == kernels::TypeSupport::FloatOnly) return t == DType::F32;
  return true;
}

}  // namespace

Rng candidate_rng(std::uint64_t seed, std::size_t index) {
  return Rng(mix64(seed ^ mix64(static_cast<std::uint64_t>(index) +
                                0x632be59bd9b4e019ULL)));
}

std::string kernel_name(std::uint64_t seed, std::size_t index) {
  std::string s = "g";
  s += std::to_string(seed);
  s += '_';
  s += std::to_string(index);
  return s;
}

kernels::TypeSupport kernel_types(const GenSpec& spec, std::uint64_t seed,
                                  std::size_t index) {
  Rng rng = candidate_rng(seed, index);
  return draw_types(spec, rng);
}

dsl::KernelSpec generate_kernel(const GenSpec& spec, std::uint64_t seed,
                                std::size_t index, kir::DType dtype,
                                std::uint32_t size_bytes) {
  Rng rng = candidate_rng(seed, index);
  const kernels::TypeSupport ts = draw_types(spec, rng);
  if (!supports(ts, dtype)) {
    throw std::invalid_argument("generated kernel " +
                                kernel_name(seed, index) +
                                " does not support " +
                                std::string(kir::to_string(dtype)));
  }

  KernelBuilder k(kernel_name(seed, index), "generated", dtype, size_bytes);
  const std::int32_t segments =
      rng.irange(static_cast<std::int32_t>(spec.min_segments),
                 static_cast<std::int32_t>(spec.max_segments));
  // The byte footprint is split across segments and (up to 3) buffers per
  // segment, mirroring len1() in the hand-written suites.
  const std::uint32_t per = std::max(
      16U, kernels::total_elems(size_bytes) /
               (static_cast<std::uint32_t>(segments) * 3U));
  for (std::int32_t s = 0; s < segments; ++s) {
    const unsigned pattern = rng.range(12);
    Ctx c{spec, k, rng, static_cast<int>(s), per};
    emit_segment(c, pattern);
  }
  return k.build();
}

// ---- canonical rendering ------------------------------------------------

namespace {

const char* bin_name(dsl::BinOp op) {
  switch (op) {
    case dsl::BinOp::Add: return "add";
    case dsl::BinOp::Sub: return "sub";
    case dsl::BinOp::Mul: return "mul";
    case dsl::BinOp::Div: return "div";
    case dsl::BinOp::Rem: return "rem";
    case dsl::BinOp::Min: return "min";
    case dsl::BinOp::Max: return "max";
    case dsl::BinOp::Shl: return "shl";
    case dsl::BinOp::Shr: return "shr";
    case dsl::BinOp::And: return "and";
    case dsl::BinOp::Or: return "or";
    case dsl::BinOp::Xor: return "xor";
    case dsl::BinOp::Lt: return "lt";
    case dsl::BinOp::Le: return "le";
    case dsl::BinOp::Gt: return "gt";
    case dsl::BinOp::Ge: return "ge";
    case dsl::BinOp::Eq: return "eq";
    case dsl::BinOp::Ne: return "ne";
  }
  return "?";
}

const char* un_name(dsl::UnOp op) {
  switch (op) {
    case dsl::UnOp::Neg: return "neg";
    case dsl::UnOp::Abs: return "abs";
    case dsl::UnOp::Sqrt: return "sqrt";
    case dsl::UnOp::ToF32: return "tof32";
    case dsl::UnOp::ToI32: return "toi32";
  }
  return "?";
}

const char* init_name(InitKind init) {
  switch (init) {
    case InitKind::Zero: return "zero";
    case InitKind::Ramp: return "ramp";
    case InitKind::Random: return "random";
    case InitKind::RandomPos: return "randompos";
  }
  return "?";
}

void render_expr(std::string& out, const dsl::ExprP& e) {
  if (!e) {
    out += "(null)";
    return;
  }
  using Kind = dsl::Expr::Kind;
  switch (e->kind) {
    case Kind::ConstI:
      out += "(i " + std::to_string(e->ival) + ")";
      break;
    case Kind::ConstF: {
      char buf[48];
      std::snprintf(buf, sizeof buf, "(f %.9g)", static_cast<double>(e->fval));
      out += buf;
      break;
    }
    case Kind::Var:
      out += "(var " + e->name + ")";
      break;
    case Kind::Load:
      out += "(ld " + e->name + " ";
      render_expr(out, e->a);
      out += ")";
      break;
    case Kind::Bin:
      out += "(";
      out += bin_name(e->bop);
      out += " ";
      render_expr(out, e->a);
      out += " ";
      render_expr(out, e->b);
      out += ")";
      break;
    case Kind::Un:
      out += "(";
      out += un_name(e->uop);
      out += " ";
      render_expr(out, e->a);
      out += ")";
      break;
    case Kind::CoreId:
      out += "(core_id)";
      break;
    case Kind::NumCores:
      out += "(num_cores)";
      break;
  }
}

void render_stmts(std::string& out, const std::vector<dsl::StmtP>& body,
                  int depth) {
  const auto indent = [&] { out.append(static_cast<std::size_t>(depth) * 2, ' '); };
  using Kind = dsl::Stmt::Kind;
  for (const dsl::StmtP& s : body) {
    if (!s) continue;
    indent();
    switch (s->kind) {
      case Kind::Decl:
        out += "decl " + s->name + " ";
        render_expr(out, s->value);
        out += "\n";
        break;
      case Kind::Assign:
        out += "assign " + s->name + " ";
        render_expr(out, s->value);
        out += "\n";
        break;
      case Kind::Store:
        out += "store " + s->name + " ";
        render_expr(out, s->index);
        out += " ";
        render_expr(out, s->value);
        out += "\n";
        break;
      case Kind::For:
        out += s->parallel
                   ? (s->schedule == dsl::Schedule::Cyclic ? "par_for_cyclic "
                                                           : "par_for ")
                   : "for ";
        out += s->loop_var + " ";
        render_expr(out, s->lo);
        out += " ";
        render_expr(out, s->hi);
        out += " step " + std::to_string(s->step) + " {\n";
        render_stmts(out, s->body, depth + 1);
        indent();
        out += "}\n";
        break;
      case Kind::If:
        out += "if ";
        render_expr(out, s->cond);
        out += " {\n";
        render_stmts(out, s->body, depth + 1);
        indent();
        if (s->else_body.empty()) {
          out += "}\n";
        } else {
          out += "} else {\n";
          render_stmts(out, s->else_body, depth + 1);
          indent();
          out += "}\n";
        }
        break;
      case Kind::Barrier:
        out += "barrier\n";
        break;
      case Kind::Critical:
        out += "critical {\n";
        render_stmts(out, s->body, depth + 1);
        indent();
        out += "}\n";
        break;
      case Kind::DmaCopy:
        out += "dma_copy " + s->dma_dst + " " + s->dma_src + " " +
               std::to_string(s->dma_words) + "\n";
        break;
      case Kind::DmaWait:
        out += "dma_wait\n";
        break;
    }
  }
}

}  // namespace

std::string render(const dsl::KernelSpec& spec) {
  std::string out = "kernel " + spec.name + " " + spec.suite + " " +
                    kir::to_string(spec.elem) + " " +
                    std::to_string(spec.size_bytes) + "\n";
  for (const dsl::BufferDecl& b : spec.buffers) {
    out += "buffer " + b.name + " " + kir::to_string(b.elem) + " " +
           std::to_string(b.elems) + " " + kir::to_string(b.space) + " " +
           init_name(b.init) + "\n";
  }
  render_stmts(out, spec.body, 0);
  return out;
}

}  // namespace pulpc::gen
