// Property-driven kernel generator. Candidate `index` of a campaign is a
// pure function of (GenSpec, seed, index): every random draw comes from a
// splitmix64 stream seeded by (seed, index) alone, and neither the
// element type nor the problem size consumes a draw — so one candidate is
// the *same kernel* (same structure, same name) at every (dtype, size)
// instantiation, exactly like the hand-written registry kernels, and a
// campaign is reproducible from the manifest without storing any DSL.
//
// Generated kernels are built from the pattern vocabulary of the paper's
// custom suite (streaming maps, stencils, gathers, affine-permutation
// scatters, critical-section reductions, barrier-cadenced phase nests,
// triangular and tiled loop nests, pure compute chains, L2 streams, DMA
// single/double buffering), with per-pattern knobs (stride, chain depth,
// schedule flavour, branchiness) drawn from the GenSpec's property space.
#pragma once

#include <cstdint>
#include <string>

#include "dsl/ast.hpp"
#include "gen/spec.hpp"
#include "kernels/registry.hpp"

namespace pulpc::gen {

/// Deterministic 64-bit PRNG (splitmix64): identical sequences on every
/// platform, cheap to seed per candidate.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n); n == 0 returns 0.
  std::uint32_t range(std::uint32_t n) {
    return n == 0 ? 0 : static_cast<std::uint32_t>(next() % n);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int32_t irange(std::int32_t lo, std::int32_t hi) {
    return lo + static_cast<std::int32_t>(
                    range(static_cast<std::uint32_t>(hi - lo + 1)));
  }

  /// Uniform in [0, 1).
  double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return unit() < p; }

 private:
  std::uint64_t state_;
};

/// The per-candidate stream: mixes campaign seed and candidate index so
/// candidates are independent and any subset can be regenerated.
[[nodiscard]] Rng candidate_rng(std::uint64_t seed, std::size_t index);

/// Stable kernel name of candidate `index` under `seed`: "g<seed>_<index>".
[[nodiscard]] std::string kernel_name(std::uint64_t seed, std::size_t index);

/// Element-type support of the candidate (the spec's dtypes policy; for
/// "mixed" each candidate draws one type).
[[nodiscard]] kernels::TypeSupport kernel_types(const GenSpec& spec,
                                                std::uint64_t seed,
                                                std::size_t index);

/// Generate candidate `index` at a concrete (dtype, size) instantiation.
/// Throws std::invalid_argument when the candidate does not support
/// `dtype` (see kernel_types).
[[nodiscard]] dsl::KernelSpec generate_kernel(const GenSpec& spec,
                                              std::uint64_t seed,
                                              std::size_t index,
                                              kir::DType dtype,
                                              std::uint32_t size_bytes);

/// Canonical text rendering of a kernel spec (buffers + statement tree,
/// expressions in prefix form). Deterministic and byte-stable: the
/// determinism property tests hash it, and campaigns write one rendering
/// per admitted kernel for inspection.
[[nodiscard]] std::string render(const dsl::KernelSpec& spec);

}  // namespace pulpc::gen
