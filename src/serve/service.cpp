#include "serve/service.hpp"

#include <stdexcept>

#include "core/artifacts.hpp"
#include "dsl/lower.hpp"
#include "kernels/registry.hpp"
#include "kir/opt.hpp"

namespace pulpc::serve {

std::uint64_t spec_key(const Request& req) {
  std::string s = "spec|";
  s += req.kernel;
  s += '|';
  s += req.dtype == kir::DType::I32 ? "i32" : "f32";
  s += '|';
  s += std::to_string(req.size_bytes);
  s += '|';
  s += req.optimize ? '1' : '0';
  return core::fnv1a64(s);
}

std::vector<Request> store_spec_requests(const core::ArtifactStore& store) {
  std::vector<Request> specs;
  if (!store.enabled()) return specs;
  // One pass over the store collapses per-core-count artifacts into the
  // distinct (kernel, dtype, size) specs the service caches are keyed by.
  std::unordered_map<std::uint64_t, bool> seen;
  store.for_each([&](const core::ArtifactStore::StoredSample& s) {
    kir::DType dtype;
    if (s.dtype == "i32") {
      dtype = kir::DType::I32;
    } else if (s.dtype == "f32") {
      dtype = kir::DType::F32;
    } else {
      return;  // a dtype this service cannot lower
    }
    Request probe;
    probe.kernel = s.kernel;
    probe.dtype = dtype;
    probe.size_bytes = s.size_bytes;
    if (!seen.emplace(spec_key(probe), true).second) return;
    specs.push_back(std::move(probe));
  });
  return specs;
}

PredictionService::PredictionService(std::shared_ptr<ModelRegistry> registry,
                                     Options options)
    : registry_(std::move(registry)),
      opt_(std::move(options)),
      pool_(opt_.threads),
      rows_(opt_.cache_capacity),
      spec_index_(opt_.cache_capacity),
      batcher_([this] { batcher_loop(); }) {
  if (!registry_) {
    // The batcher is already running; shut it down before throwing so
    // the half-built object never leaks a thread. (It cannot have
    // touched registry_: the queue is empty and it blocks on cv_.)
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    batcher_.join();
    throw std::invalid_argument("PredictionService: null model registry");
  }
  // Start the cache generation aligned with the serving model so the
  // first batch does not flush freshly primed caches.
  cache_feature_key_ = registry_->current()->feature_key;
}

PredictionService::PredictionService(core::EnergyClassifier classifier,
                                     Options options)
    : PredictionService(
          // The registry constructor throws std::invalid_argument for an
          // untrained classifier before any thread starts. `options` is
          // passed by copy, not moved: argument evaluation order is
          // unspecified and the registry argument reads options.use_flat.
          std::make_shared<ModelRegistry>(std::move(classifier),
                                          options.use_flat),
          options) {}

PredictionService::PredictionService(const std::string& model_path,
                                     Options options)
    : PredictionService(core::EnergyClassifier::load_file(model_path),
                        std::move(options)) {}

PredictionService::~PredictionService() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
}

void PredictionService::submit(Request req, DoneFn done) {
  metrics_.on_request();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) {
      Result r;
      r.error = "shutting down";
      metrics_.on_reply(false, 0);
      done(std::move(r));
      return;
    }
    if (in_flight_ >= opt_.max_in_flight) {
      Result r;
      r.shed = true;
      r.error = "overloaded";
      metrics_.on_shed();
      done(std::move(r));
      return;
    }
    ++in_flight_;
    metrics_.set_in_flight(in_flight_);
    queue_.push_back(Pending{std::move(req), std::move(done),
                             std::chrono::steady_clock::now()});
  }
  cv_.notify_one();
}

std::future<Result> PredictionService::submit(Request req) {
  auto promise = std::make_shared<std::promise<Result>>();
  std::future<Result> future = promise->get_future();
  submit(std::move(req),
         [promise](Result r) { promise->set_value(std::move(r)); });
  return future;
}

Result PredictionService::predict(const Request& req) {
  return submit(req).get();
}

std::size_t PredictionService::prime_from_store(
    const core::ArtifactStore& store) {
  return prime(store_spec_requests(store));
}

std::size_t PredictionService::prime(const std::vector<Request>& requests) {
  if (requests.empty() || opt_.cache_capacity == 0) return 0;
  // Featurize on the service pool against the current model; resolve_row
  // fills both LRU layers exactly as a cold request would, so the first
  // live request for any primed spec is a pure cache hit.
  const std::shared_ptr<const ModelSnapshot> model = registry_->current();
  sync_cache_generation(*model);
  std::vector<char> primed(requests.size(), 0);
  pool_.parallel_for(requests.size(), [&](std::size_t i) {
    std::vector<double> row;
    primed[i] = resolve_row(model->clf, requests[i], &row).ok ? 1 : 0;
  });
  std::size_t n = 0;
  for (const char p : primed) n += p != 0 ? 1 : 0;
  return n;
}

void PredictionService::sync_cache_generation(const ModelSnapshot& snap) {
  std::lock_guard<std::mutex> lk(cache_mu_);
  if (cache_feature_key_ == snap.feature_key) return;
  // The new model extracts a different feature set: every cached row is
  // stale. (Same-column reloads — the common retrain — keep both layers
  // warm; the spec index stays valid either way but a dangling index
  // entry just re-featurizes, so flush both for simplicity.)
  rows_.clear();
  spec_index_.clear();
  cache_feature_key_ = snap.feature_key;
}

void PredictionService::batcher_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ && drained
      // Linger briefly so a burst coalesces into one batch; a full
      // batch or shutdown cuts the wait short.
      if (queue_.size() < opt_.max_batch && !stop_ &&
          opt_.batch_linger.count() > 0) {
        cv_.wait_for(lk, opt_.batch_linger, [&] {
          return stop_ || queue_.size() >= opt_.max_batch;
        });
      }
      const std::size_t n = std::min(queue_.size(), opt_.max_batch);
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (opt_.on_batch) opt_.on_batch(batch.size());
    metrics_.on_batch(batch.size());

    // ONE snapshot acquisition per micro-batch: the whole batch is
    // featurized and classified by this model version, and the
    // shared_ptr keeps it alive even if a reload lands mid-batch.
    const std::shared_ptr<const ModelSnapshot> model = registry_->current();
    sync_cache_generation(*model);

    // Featurize the whole batch in parallel. Per-request failures land
    // in the request's own Result — one bad kernel never poisons its
    // batch-mates.
    std::vector<Result> results(batch.size());
    std::vector<std::vector<double>> rows(batch.size());
    pool_.parallel_for(batch.size(), [&](std::size_t i) {
      results[i] = resolve_row(model->clf, batch[i].req, &rows[i]);
    });

    // Classify every cleanly-resolved row with ONE batched tree walk
    // (the flat engine keeps the rows' traversals in flight together;
    // see ml/flat.hpp) instead of a node-chasing walk per request.
    std::vector<std::size_t> resolved;
    resolved.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (results[i].ok) resolved.push_back(i);
    }
    if (!resolved.empty()) {
      ml::Matrix m;
      m.rows = resolved.size();
      m.cols = model->clf.columns().size();
      m.data.reserve(m.rows * m.cols);
      for (const std::size_t i : resolved) {
        m.data.insert(m.data.end(), rows[i].begin(), rows[i].end());
      }
      const std::vector<int> cores = model->clf.predict_rows(m);
      for (std::size_t k = 0; k < resolved.size(); ++k) {
        results[resolved[k]].cores = cores[k];
      }
      model->served->fetch_add(resolved.size(), std::memory_order_relaxed);
    }

    // Account the batch (latency, ok/error counters, in-flight) BEFORE
    // firing the callbacks: a caller that snapshots metrics right after
    // predict() returns must see its own request fully counted.
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      results[i].model_version = model->version;
      results[i].micros =
          std::chrono::duration<double, std::micro>(now - batch[i].enqueued)
              .count();
      metrics_.on_reply(results[i].ok, results[i].micros);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      in_flight_ -= batch.size();
      metrics_.set_in_flight(in_flight_);
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].done(std::move(results[i]));
    }
  }
}

bool PredictionService::cached_row(std::uint64_t prog_hash,
                                   std::vector<double>* row) {
  std::lock_guard<std::mutex> lk(cache_mu_);
  return rows_.get(prog_hash, row);
}

void PredictionService::store_row(std::uint64_t prog_hash,
                                  const std::vector<double>& row) {
  std::lock_guard<std::mutex> lk(cache_mu_);
  if (rows_.put(prog_hash, row)) metrics_.on_eviction();
}

Result PredictionService::resolve_row(const core::EnergyClassifier& clf,
                                      const Request& req,
                                      std::vector<double>* out_row) {
  Result r;
  try {
    std::vector<double>& row = *out_row;
    bool hit = false;
    if (req.program) {
      // Program-form request: the program hash is directly computable.
      const std::uint64_t h = core::program_hash(*req.program);
      hit = cached_row(h, &row);
      if (!hit) {
        row = clf.feature_row(*req.program);
        store_row(h, row);
      }
    } else {
      if (req.kernel.empty()) {
        throw std::invalid_argument("empty kernel name");
      }
      // Spec-form request: resolve spec -> program hash -> row without
      // lowering when both LRUs are warm.
      const std::uint64_t skey = spec_key(req);
      std::uint64_t h = 0;
      {
        std::lock_guard<std::mutex> lk(cache_mu_);
        if (spec_index_.get(skey, &h)) hit = rows_.get(h, &row);
      }
      if (!hit) {
        kir::Program prog = dsl::lower(kernels::make_kernel(
            req.kernel, req.dtype, req.size_bytes));
        if (req.optimize) prog = kir::optimize(prog);
        h = core::program_hash(prog);
        // The row may still be warm under the program hash (e.g. the
        // spec index was evicted first, or a program-form request
        // already featurized this lowering) — that still counts as a
        // hit: featurization was skipped.
        hit = cached_row(h, &row);
        if (!hit) {
          row = clf.feature_row(prog);
          store_row(h, row);
        }
        std::lock_guard<std::mutex> lk(cache_mu_);
        spec_index_.put(skey, h);
      }
    }
    metrics_.on_cache(hit);
    r.cached = hit;
    r.ok = true;  // row resolved; the batcher fills in cores
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
  }
  return r;
}

}  // namespace pulpc::serve
