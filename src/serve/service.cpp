#include "serve/service.hpp"

#include <stdexcept>

#include "core/artifacts.hpp"
#include "core/env.hpp"
#include "dsl/lower.hpp"
#include "kernels/registry.hpp"
#include "kir/opt.hpp"

namespace pulpc::serve {

namespace {

/// Cache key of a spec-form request (kernel name, dtype, size, lowering
/// variant) — FNV-1a over an unambiguous rendering, the same primitive
/// core/artifacts keys files with.
std::uint64_t spec_key(const Request& req) {
  std::string s = "spec|";
  s += req.kernel;
  s += '|';
  s += req.dtype == kir::DType::I32 ? "i32" : "f32";
  s += '|';
  s += std::to_string(req.size_bytes);
  s += '|';
  s += req.optimize ? '1' : '0';
  return core::fnv1a64(s);
}

}  // namespace

PredictionService::PredictionService(core::EnergyClassifier classifier,
                                     Options options)
    : clf_(std::move(classifier)),
      opt_(std::move(options)),
      pool_(opt_.threads),
      rows_(opt_.cache_capacity),
      spec_index_(opt_.cache_capacity),
      batcher_([this] { batcher_loop(); }) {
  // One knob controls both layers: the classifier's engine selection and
  // the (identical) default for any per-row fallback path.
  clf_.set_use_flat(
      core::env_flag(opt_.use_flat, "PULPC_FLAT_PREDICT", true));
  if (!clf_.trained()) {
    // The batcher is already running; shut it down before throwing so
    // the half-built object never leaks a thread.
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    batcher_.join();
    throw std::invalid_argument(
        "PredictionService: classifier is not trained");
  }
}

PredictionService::PredictionService(const std::string& model_path,
                                     Options options)
    : PredictionService(core::EnergyClassifier::load_file(model_path),
                        std::move(options)) {}

PredictionService::~PredictionService() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
}

std::future<Result> PredictionService::submit(Request req) {
  metrics_.on_request();
  std::promise<Result> promise;
  std::future<Result> future = promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) {
      Result r;
      r.error = "shutting down";
      metrics_.on_reply(false, 0);
      promise.set_value(std::move(r));
      return future;
    }
    if (in_flight_ >= opt_.max_in_flight) {
      Result r;
      r.shed = true;
      r.error = "overloaded";
      metrics_.on_shed();
      promise.set_value(std::move(r));
      return future;
    }
    ++in_flight_;
    metrics_.set_in_flight(in_flight_);
    queue_.push_back(Pending{std::move(req), std::move(promise),
                             std::chrono::steady_clock::now()});
  }
  cv_.notify_one();
  return future;
}

Result PredictionService::predict(const Request& req) {
  return submit(req).get();
}

std::size_t PredictionService::prime_from_store(
    const core::ArtifactStore& store) {
  if (!store.enabled() || opt_.cache_capacity == 0) return 0;
  // One pass over the store collapses per-core-count artifacts into the
  // distinct (kernel, dtype, size) specs the cache is keyed by.
  struct Spec {
    std::string kernel;
    kir::DType dtype;
    std::uint32_t size_bytes;
  };
  std::vector<Spec> specs;
  std::unordered_map<std::uint64_t, bool> seen;
  store.for_each([&](const core::ArtifactStore::StoredSample& s) {
    kir::DType dtype;
    if (s.dtype == "i32") {
      dtype = kir::DType::I32;
    } else if (s.dtype == "f32") {
      dtype = kir::DType::F32;
    } else {
      return;  // a dtype this service cannot lower
    }
    Request probe;
    probe.kernel = s.kernel;
    probe.dtype = dtype;
    probe.size_bytes = s.size_bytes;
    if (!seen.emplace(spec_key(probe), true).second) return;
    specs.push_back(Spec{s.kernel, dtype, s.size_bytes});
  });
  // Featurize on the service pool; resolve_row fills both LRU layers
  // exactly as a cold request would, so the first live request for any
  // primed spec is a pure cache hit.
  std::vector<char> primed(specs.size(), 0);
  pool_.parallel_for(specs.size(), [&](std::size_t i) {
    Request req;
    req.kernel = specs[i].kernel;
    req.dtype = specs[i].dtype;
    req.size_bytes = specs[i].size_bytes;
    std::vector<double> row;
    primed[i] = resolve_row(req, &row).ok ? 1 : 0;
  });
  std::size_t n = 0;
  for (const char p : primed) n += p != 0 ? 1 : 0;
  return n;
}

void PredictionService::batcher_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ && drained
      // Linger briefly so a burst coalesces into one batch; a full
      // batch or shutdown cuts the wait short.
      if (queue_.size() < opt_.max_batch && !stop_ &&
          opt_.batch_linger.count() > 0) {
        cv_.wait_for(lk, opt_.batch_linger, [&] {
          return stop_ || queue_.size() >= opt_.max_batch;
        });
      }
      const std::size_t n = std::min(queue_.size(), opt_.max_batch);
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (opt_.on_batch) opt_.on_batch(batch.size());
    metrics_.on_batch(batch.size());

    // Featurize the whole batch in parallel. Per-request failures land
    // in the request's own Result — one bad kernel never poisons its
    // batch-mates.
    std::vector<Result> results(batch.size());
    std::vector<std::vector<double>> rows(batch.size());
    pool_.parallel_for(batch.size(), [&](std::size_t i) {
      results[i] = resolve_row(batch[i].req, &rows[i]);
    });

    // Classify every cleanly-resolved row with ONE batched tree walk
    // (the flat engine keeps the rows' traversals in flight together;
    // see ml/flat.hpp) instead of a node-chasing walk per request.
    std::vector<std::size_t> resolved;
    resolved.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (results[i].ok) resolved.push_back(i);
    }
    if (!resolved.empty()) {
      ml::Matrix m;
      m.rows = resolved.size();
      m.cols = clf_.columns().size();
      m.data.reserve(m.rows * m.cols);
      for (const std::size_t i : resolved) {
        m.data.insert(m.data.end(), rows[i].begin(), rows[i].end());
      }
      const std::vector<int> cores = clf_.predict_rows(m);
      for (std::size_t k = 0; k < resolved.size(); ++k) {
        results[resolved[k]].cores = cores[k];
      }
    }

    // Account the batch (latency, ok/error counters, in-flight) BEFORE
    // fulfilling the promises: a caller that snapshots metrics right
    // after predict() returns must see its own request fully counted.
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      results[i].micros =
          std::chrono::duration<double, std::micro>(now - batch[i].enqueued)
              .count();
      metrics_.on_reply(results[i].ok, results[i].micros);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      in_flight_ -= batch.size();
      metrics_.set_in_flight(in_flight_);
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(results[i]));
    }
  }
}

bool PredictionService::cached_row(std::uint64_t prog_hash,
                                   std::vector<double>* row) {
  std::lock_guard<std::mutex> lk(cache_mu_);
  return rows_.get(prog_hash, row);
}

void PredictionService::store_row(std::uint64_t prog_hash,
                                  const std::vector<double>& row) {
  std::lock_guard<std::mutex> lk(cache_mu_);
  if (rows_.put(prog_hash, row)) metrics_.on_eviction();
}

Result PredictionService::resolve_row(const Request& req,
                                      std::vector<double>* out_row) {
  Result r;
  try {
    std::vector<double>& row = *out_row;
    bool hit = false;
    if (req.program) {
      // Program-form request: the program hash is directly computable.
      const std::uint64_t h = core::program_hash(*req.program);
      hit = cached_row(h, &row);
      if (!hit) {
        row = clf_.feature_row(*req.program);
        store_row(h, row);
      }
    } else {
      if (req.kernel.empty()) {
        throw std::invalid_argument("empty kernel name");
      }
      // Spec-form request: resolve spec -> program hash -> row without
      // lowering when both LRUs are warm.
      const std::uint64_t skey = spec_key(req);
      std::uint64_t h = 0;
      {
        std::lock_guard<std::mutex> lk(cache_mu_);
        if (spec_index_.get(skey, &h)) hit = rows_.get(h, &row);
      }
      if (!hit) {
        kir::Program prog = dsl::lower(kernels::make_kernel(
            req.kernel, req.dtype, req.size_bytes));
        if (req.optimize) prog = kir::optimize(prog);
        h = core::program_hash(prog);
        // The row may still be warm under the program hash (e.g. the
        // spec index was evicted first, or a program-form request
        // already featurized this lowering) — that still counts as a
        // hit: featurization was skipped.
        hit = cached_row(h, &row);
        if (!hit) {
          row = clf_.feature_row(prog);
          store_row(h, row);
        }
        std::lock_guard<std::mutex> lk(cache_mu_);
        spec_index_.put(skey, h);
      }
    }
    metrics_.on_cache(hit);
    r.cached = hit;
    r.ok = true;  // row resolved; the batcher fills in cores
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
  }
  return r;
}

}  // namespace pulpc::serve
