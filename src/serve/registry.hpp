// Versioned model registry: the hot-reload primitive of the serving
// layer. Every trained model published into the registry becomes an
// immutable ModelSnapshot (classifier + monotonically increasing
// version + a fingerprint of its feature column list), and the current
// snapshot pointer is swapped with one std::atomic<std::shared_ptr>
// exchange:
//
//   * Readers (the per-shard batcher threads) acquire the snapshot once
//     per micro-batch. An in-flight batch therefore finishes — feature
//     extraction AND classification — on exactly the model it started
//     with, even if a reload lands mid-batch; the shared_ptr keeps the
//     old model alive until its last batch completes.
//   * Writers (the `reload` admin verb, the --reload-fifo watcher)
//     validate the incoming model fully before publishing, so a corrupt
//     model file can never replace a serving one: reload_file either
//     swaps in a trained model or throws with the old model untouched.
//   * Zero coordination on the read path: no lock is held while a model
//     serves, and a swap never waits for in-flight work.
//
// The feature fingerprint (FNV-1a over the ordered column list) lets
// the per-shard row caches survive a reload when the new model extracts
// the same columns — the common "retrained weights, same features" case
// keeps every cache warm — and forces a flush when the columns differ.
// (Feature rows also depend on the classifier's MCA machine model; that
// model is not persisted in the classifier file, so every *loaded*
// model shares the default and the column list is the whole story.
// In-memory classifiers with a custom MachineModel should not share a
// registry across differing machine models.)
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/classifier.hpp"

namespace pulpc::serve {

/// One immutable published model. `served` counts predictions answered
/// by this version (shared with the registry's history so the counter
/// outlives the snapshot itself).
struct ModelSnapshot {
  std::uint64_t version = 0;
  /// FNV-1a over the ordered feature column list: equal keys mean a
  /// cached feature row extracted under one snapshot is byte-valid
  /// under the other.
  std::uint64_t feature_key = 0;
  core::EnergyClassifier clf;
  std::shared_ptr<std::atomic<std::uint64_t>> served;

  ModelSnapshot(std::uint64_t v, std::uint64_t key,
                core::EnergyClassifier c)
      : version(v),
        feature_key(key),
        clf(std::move(c)),
        served(std::make_shared<std::atomic<std::uint64_t>>(0)) {}
};

class ModelRegistry {
 public:
  /// Publish `initial` as version 1. `use_flat` is the registry-wide
  /// engine selection applied to every published model (including
  /// reloads): unset consults PULPC_FLAT_PREDICT, default on. Throws
  /// std::invalid_argument if the classifier is not trained.
  explicit ModelRegistry(core::EnergyClassifier initial,
                         std::optional<bool> use_flat = std::nullopt);

  /// Load + publish a model file as version 1. Throws std::runtime_error
  /// on unreadable/corrupt bundles.
  static std::shared_ptr<ModelRegistry> from_file(
      const std::string& path, std::optional<bool> use_flat = std::nullopt);

  /// The serving snapshot: one atomic shared_ptr load, never null.
  [[nodiscard]] std::shared_ptr<const ModelSnapshot> current() const {
    return current_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint64_t version() const {
    return current()->version;
  }

  /// Publish a new model and return its version. Validation happens
  /// before the swap: an untrained classifier throws and the serving
  /// model is untouched. Concurrent reloads serialize; versions are
  /// strictly increasing.
  std::uint64_t reload(core::EnergyClassifier clf);

  /// Load a model file and publish it. Any load/parse failure throws
  /// with the serving model untouched.
  std::uint64_t reload_file(const std::string& path);

  /// Number of models published so far (== current version).
  [[nodiscard]] std::size_t loaded_count() const;

  /// Per-version serving history as a JSON array (stable order:
  /// ascending version):
  ///   [{"version":1,"columns":20,"served":412,"live":false}, ...]
  [[nodiscard]] std::string models_json() const;

 private:
  std::uint64_t publish(core::EnergyClassifier clf);

  std::optional<bool> use_flat_;
  std::atomic<std::shared_ptr<const ModelSnapshot>> current_;

  /// Reload serialization + per-version bookkeeping. Never held on the
  /// serving path.
  mutable std::mutex mu_;
  struct VersionInfo {
    std::uint64_t version = 0;
    std::uint64_t feature_key = 0;
    std::size_t columns = 0;
    std::shared_ptr<std::atomic<std::uint64_t>> served;
  };
  std::vector<VersionInfo> history_;
  std::uint64_t next_version_ = 1;
};

}  // namespace pulpc::serve
