#include "serve/sharded.hpp"

#include <stdexcept>
#include <utility>

#include "core/artifacts.hpp"
#include "dsl/lower.hpp"
#include "kernels/registry.hpp"
#include "kir/opt.hpp"

namespace pulpc::serve {

ShardedService::ShardedService(std::shared_ptr<ModelRegistry> registry,
                               Options options)
    : registry_(std::move(registry)),
      opt_(std::move(options)),
      routes_(opt_.router_cache) {
  if (!registry_) {
    throw std::invalid_argument("ShardedService: null model registry");
  }
  if (opt_.shards == 0) opt_.shards = 1;
  shards_.reserve(opt_.shards);
  for (std::size_t i = 0; i < opt_.shards; ++i) {
    shards_.push_back(
        std::make_unique<PredictionService>(registry_, opt_.service));
  }
}

ShardedService::ShardedService(core::EnergyClassifier classifier,
                               Options options)
    : ShardedService(std::make_shared<ModelRegistry>(
                         std::move(classifier), options.service.use_flat),
                     options) {}

std::size_t ShardedService::shard_index(std::uint64_t key,
                                        std::size_t shards) {
  if (shards <= 1) return 0;
  // Jump consistent hash (Lamport & Veach 2014). b tracks the last
  // bucket the key "jumped" into; the loop's expected trip count is
  // ln(shards). Monotone: going from n to n+1 buckets only ever moves
  // keys INTO bucket n, never between existing buckets.
  std::int64_t b = -1;
  std::int64_t j = 0;
  const auto n = static_cast<std::int64_t>(shards);
  while (j < n) {
    b = j;
    key = key * 2862933555777941757ULL + 1;
    j = static_cast<std::int64_t>(
        static_cast<double>(b + 1) *
        (static_cast<double>(std::int64_t{1} << 31) /
         static_cast<double>((key >> 33) + 1)));
  }
  return static_cast<std::size_t>(b);
}

ShardedService::Route ShardedService::resolve_route(const Request& req) {
  if (req.program) {
    // Program-form: the routing key is directly computable.
    return Route{core::program_hash(*req.program), req.program};
  }
  const std::uint64_t skey = spec_key(req);
  {
    std::lock_guard<std::mutex> lk(router_mu_);
    Route cached;
    if (routes_.get(skey, &cached)) return cached;
  }
  try {
    // Lower once at the router (outside the lock: lowering is the
    // expensive part and is deterministic, so a racing duplicate just
    // overwrites with an identical entry).
    kir::Program prog =
        dsl::lower(kernels::make_kernel(req.kernel, req.dtype,
                                        req.size_bytes));
    if (req.optimize) prog = kir::optimize(prog);
    Route route;
    route.key = core::program_hash(prog);
    route.program = std::make_shared<const kir::Program>(std::move(prog));
    std::lock_guard<std::mutex> lk(router_mu_);
    routes_.put(skey, route);
    return route;
  } catch (const std::exception&) {
    // Unlowerable spec (unknown/empty kernel, bad size): route by the
    // spec key with no program attached. The owning shard re-runs the
    // failing lowering and replies with the identical error text —
    // errors stay deterministic per key, and are accounted on the
    // shard that owns that key. Not cached: failures are cheap (they
    // throw early) and a registry change could make the spec valid.
    return Route{skey, nullptr};
  }
}

std::size_t ShardedService::shard_for(const Request& req) {
  return shard_index(resolve_route(req).key, shards_.size());
}

void ShardedService::submit(Request req, PredictionService::DoneFn done) {
  Route route = resolve_route(req);
  if (route.program && !req.program) {
    // Forward in program form: the shard skips lowering and keys its
    // row cache by the same program hash the router routed on.
    req.program = std::move(route.program);
  }
  shards_[shard_index(route.key, shards_.size())]->submit(std::move(req),
                                                          std::move(done));
}

std::future<Result> ShardedService::submit(Request req) {
  auto promise = std::make_shared<std::promise<Result>>();
  std::future<Result> future = promise->get_future();
  submit(std::move(req),
         [promise](Result r) { promise->set_value(std::move(r)); });
  return future;
}

Result ShardedService::predict(const Request& req) {
  return submit(req).get();
}

std::size_t ShardedService::prime_from_store(
    const core::ArtifactStore& store) {
  // One store pass, then partition the specs with the same routing
  // function live traffic uses — each shard primes exactly the keys it
  // will serve, and the router cache warms as a side effect.
  std::vector<std::vector<Request>> per_shard(shards_.size());
  for (Request& req : store_spec_requests(store)) {
    Route route = resolve_route(req);
    if (route.program) req.program = std::move(route.program);
    per_shard[shard_index(route.key, shards_.size())].push_back(
        std::move(req));
  }
  std::size_t primed = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    primed += shards_[i]->prime(per_shard[i]);
  }
  return primed;
}

Metrics::Snapshot ShardedService::metrics() const {
  Metrics::Snapshot total;
  for (const auto& shard : shards_) total.merge(shard->metrics());
  return total;
}

Metrics::Snapshot ShardedService::shard_metrics(std::size_t i) const {
  return shards_.at(i)->metrics();
}

std::string ShardedService::metrics_json() const {
  std::string out = "{\"total\":" + metrics().to_json() + ",\"shards\":[";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i > 0) out += ',';
    out += shards_[i]->metrics().to_json();
  }
  out += "],\"models\":" + registry_->models_json() + "}";
  return out;
}

}  // namespace pulpc::serve
