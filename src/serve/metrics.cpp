#include "serve/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace pulpc::serve {

void Metrics::on_reply(bool ok, double micros) noexcept {
  (ok ? ok_ : errors_).fetch_add(1, relaxed);
  latency_count_.fetch_add(1, relaxed);
  if (micros < 0) micros = 0;
  latency_sum_ns_.fetch_add(
      static_cast<std::uint64_t>(std::llround(micros * 1000.0)), relaxed);
  std::size_t b = 0;
  while (b < kLatencyBucketUs.size() && micros > kLatencyBucketUs[b]) ++b;
  latency_buckets_[b].fetch_add(1, relaxed);
}

void Metrics::on_batch(std::size_t size) noexcept {
  batches_.fetch_add(1, relaxed);
  std::uint64_t prev = max_batch_.load(relaxed);
  while (prev < size &&
         !max_batch_.compare_exchange_weak(prev, size, relaxed, relaxed)) {
  }
}

Metrics::Snapshot Metrics::snapshot() const {
  Snapshot s;
  s.requests = requests_.load(relaxed);
  s.ok = ok_.load(relaxed);
  s.errors = errors_.load(relaxed);
  s.shed = shed_.load(relaxed);
  s.batches = batches_.load(relaxed);
  s.max_batch = max_batch_.load(relaxed);
  s.cache_hits = cache_hits_.load(relaxed);
  s.cache_misses = cache_misses_.load(relaxed);
  s.cache_evictions = cache_evictions_.load(relaxed);
  s.in_flight = in_flight_.load(relaxed);
  s.latency_count = latency_count_.load(relaxed);
  s.latency_sum_us =
      static_cast<double>(latency_sum_ns_.load(relaxed)) / 1000.0;
  for (std::size_t i = 0; i < s.latency_buckets.size(); ++i) {
    s.latency_buckets[i] = latency_buckets_[i].load(relaxed);
  }
  return s;
}

void Metrics::Snapshot::merge(const Snapshot& other) {
  requests += other.requests;
  ok += other.ok;
  errors += other.errors;
  shed += other.shed;
  batches += other.batches;
  if (other.max_batch > max_batch) max_batch = other.max_batch;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_evictions += other.cache_evictions;
  in_flight += other.in_flight;
  latency_count += other.latency_count;
  latency_sum_us += other.latency_sum_us;
  for (std::size_t i = 0; i < latency_buckets.size(); ++i) {
    latency_buckets[i] += other.latency_buckets[i];
  }
}

std::string Metrics::Snapshot::to_json() const {
  char buf[256];
  std::string out = "{";
  const auto field = [&](const char* key, std::uint64_t v) {
    std::snprintf(buf, sizeof buf, "\"%s\":%llu,", key,
                  static_cast<unsigned long long>(v));
    out += buf;
  };
  field("requests", requests);
  field("ok", ok);
  field("errors", errors);
  field("shed", shed);
  field("batches", batches);
  field("max_batch", max_batch);
  field("cache_hits", cache_hits);
  field("cache_misses", cache_misses);
  field("cache_evictions", cache_evictions);
  field("in_flight", in_flight);
  std::snprintf(buf, sizeof buf,
                "\"latency_us\":{\"count\":%llu,\"sum\":%.3f,\"buckets\":[",
                static_cast<unsigned long long>(latency_count),
                latency_sum_us);
  out += buf;
  for (std::size_t i = 0; i < latency_buckets.size(); ++i) {
    if (i < kLatencyBucketUs.size()) {
      std::snprintf(buf, sizeof buf, "{\"le\":%.0f,\"count\":%llu}",
                    kLatencyBucketUs[i],
                    static_cast<unsigned long long>(latency_buckets[i]));
    } else {
      std::snprintf(buf, sizeof buf, "{\"le\":\"inf\",\"count\":%llu}",
                    static_cast<unsigned long long>(latency_buckets[i]));
    }
    out += buf;
    if (i + 1 < latency_buckets.size()) out += ',';
  }
  out += "]}}";
  return out;
}

}  // namespace pulpc::serve
