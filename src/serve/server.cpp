#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/env.hpp"
#include "serve/protocol.hpp"

namespace pulpc::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// A connection stops being read once this many unflushed reply bytes
/// pile up (slow/absent reader); reading resumes when the flush drains
/// below it. Bounds per-connection memory on the write side the way
/// max_line_bytes bounds the read side.
constexpr std::size_t kWriteWatermark = 1u << 20;

/// Events the wake eventfd registers under (connection ids start at 1).
constexpr std::uint64_t kWakeToken = 0;

/// Resolve an unsigned knob where an in-struct 0 means "consult env".
unsigned resolve_u(unsigned explicit_value, const char* env,
                   unsigned fallback) {
  return core::env_or(explicit_value, env, fallback);
}

/// Resolve a knob where 0 is meaningful, so "unset" is an empty
/// optional rather than 0.
unsigned resolve_opt_u(const std::optional<unsigned>& explicit_value,
                       const char* env, unsigned fallback) {
  if (explicit_value) return *explicit_value;
  return core::env_or(0u, env, fallback);
}

/// Best-effort single blocking-ish send for pre-adoption refusals (the
/// socket is non-blocking; if the kernel buffer cannot take one small
/// reply line the client loses the courtesy message, nothing else).
void send_best_effort(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  [[maybe_unused]] const ssize_t n =
      ::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL);
}

}  // namespace

ServeOptions::Resolved ServeOptions::resolve() const {
  Resolved r;
  r.port = port ? *port
                : static_cast<std::uint16_t>(
                      core::env_or(0u, "PULPC_SERVE_PORT", 7070u));
  r.workers = resolve_u(workers, "PULPC_SERVE_WORKERS", 2);
  r.shards = resolve_u(shards, "PULPC_SERVE_SHARDS", 2);
  r.max_connections = resolve_u(max_connections, "PULPC_SERVE_MAX_CONNS", 256);
  r.backlog = resolve_u(backlog, "PULPC_SERVE_BACKLOG", 64);
  r.request_timeout_ms =
      resolve_u(request_timeout_ms, "PULPC_SERVE_TIMEOUT_MS", 5000);
  r.max_line_bytes = resolve_u(max_line_bytes, "PULPC_SERVE_MAX_LINE", 65536);
  r.max_in_flight =
      resolve_u(max_in_flight, "PULPC_SERVE_MAX_INFLIGHT", 256);
  r.max_batch = resolve_u(max_batch, "PULPC_SERVE_BATCH", 16);
  r.batch_linger_us =
      resolve_opt_u(batch_linger_us, "PULPC_SERVE_LINGER_US", 200);
  r.cache_capacity = resolve_opt_u(cache_capacity, "PULPC_SERVE_CACHE", 1024);
  r.router_cache = resolve_u(router_cache, "PULPC_SERVE_ROUTER_CACHE", 4096);
  r.threads = threads;  // 0 defers to PULPC_THREADS in core::ThreadPool
  r.reload_fifo = core::env_or(reload_fifo, "PULPC_SERVE_RELOAD_FIFO", "");
  r.model_path = core::env_or(model_path, "PULPC_MODEL", "");
  r.use_flat = use_flat;
  return r;
}

ShardedService::Options sharded_options(const ServeOptions::Resolved& r) {
  ShardedService::Options o;
  o.shards = r.shards;
  o.router_cache = r.router_cache;
  o.service.cache_capacity = r.cache_capacity;
  o.service.max_batch = r.max_batch;
  o.service.max_in_flight = r.max_in_flight;
  o.service.threads = r.threads;
  o.service.batch_linger = std::chrono::microseconds(r.batch_linger_us);
  o.service.use_flat = r.use_flat;
  return o;
}

/// Cross-thread inbox of one worker: new connections from the acceptor
/// and formatted reply lines from service callbacks. Held by shared_ptr
/// everywhere so a late callback (after the worker — or the whole
/// server — is gone) posts into a closed mailbox instead of freed
/// memory; the eventfd is owned here and closed with the last
/// reference.
struct Server::Mailbox {
  struct Out {
    std::uint64_t conn = 0;
    /// Pending-request sequence this reply answers; 0 for admin replies
    /// delivered without timeout bookkeeping.
    std::uint64_t seq = 0;
    std::string line;
  };

  explicit Mailbox(int eventfd) : efd(eventfd) {}
  ~Mailbox() {
    if (efd >= 0) ::close(efd);
  }
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  void wake() const noexcept {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(efd, &one, sizeof one);
  }

  /// False when the worker no longer drains this mailbox (caller keeps
  /// ownership of fd then).
  bool post_fd(int fd) {
    {
      std::lock_guard<std::mutex> lk(mu);
      if (!open) return false;
      fds.push_back(fd);
    }
    wake();
    return true;
  }

  void post_out(std::uint64_t conn, std::uint64_t seq, std::string line) {
    {
      std::lock_guard<std::mutex> lk(mu);
      if (!open) return;  // worker gone: reply has nowhere to go
      outs.push_back(Out{conn, seq, std::move(line)});
    }
    wake();
  }

  void post_stop() {
    {
      std::lock_guard<std::mutex> lk(mu);
      stop = true;
    }
    wake();
  }

  const int efd;
  std::mutex mu;
  bool open = true;
  bool stop = false;
  std::vector<int> fds;
  std::vector<Out> outs;
};

struct Server::Conn {
  int fd = -1;
  std::uint64_t id = 0;
  /// Protocol version of the last request seen on this connection;
  /// pre-parse failures (too-large, unparseable id) answer in it.
  int proto = 1;
  std::string rbuf;
  std::string wbuf;
  std::size_t woff = 0;     ///< bytes of wbuf already written
  bool want_write = false;  ///< EPOLLOUT armed
  bool discarding = false;  ///< dropping an oversized line until '\n'
  bool paused = false;      ///< read side paused by the write watermark
  std::uint64_t next_seq = 0;
  struct PendingReq {
    long long wire_id = -1;
    int v = 1;
  };
  std::unordered_map<std::uint64_t, PendingReq> pending;
};

struct Server::Worker {
  int ep = -1;  ///< owned epoll fd
  std::shared_ptr<Mailbox> mail;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  /// (deadline, (conn id, seq)); entries whose request already resolved
  /// are skipped lazily at expiry.
  std::multimap<Clock::time_point, std::pair<std::uint64_t, std::uint64_t>>
      deadlines;
  bool stopping = false;
  std::uint64_t next_conn_id = 1;

  ~Worker() {
    if (ep >= 0) ::close(ep);
  }
};

Server::Server(ShardedService& service, ServeOptions options)
    : service_(service), opt_(options.resolve()) {}

Server::~Server() {
  request_stop();
  // run() joins the workers; if it was never entered there are none.
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (stop_event_ >= 0) ::close(stop_event_);
  if (fifo_fd_ >= 0) ::close(fifo_fd_);
}

std::uint16_t Server::start() {
  stop_event_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (stop_event_ < 0) {
    throw std::runtime_error("serve: eventfd() failed: " +
                             std::string(std::strerror(errno)));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) !=
      0) {
    // Without SO_REUSEADDR a restart would fail to rebind for the whole
    // TIME_WAIT minute — verified here instead of silently degraded.
    throw std::runtime_error("serve: setsockopt(SO_REUSEADDR) failed: " +
                             std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opt_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    throw std::runtime_error(
        "serve: cannot bind 127.0.0.1:" + std::to_string(opt_.port) + ": " +
        std::strerror(errno));
  }
  if (::listen(listen_fd_, static_cast<int>(opt_.backlog)) != 0) {
    throw std::runtime_error("serve: listen() failed: " +
                             std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    throw std::runtime_error("serve: getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);

  if (!opt_.reload_fifo.empty()) {
    if (::mkfifo(opt_.reload_fifo.c_str(), 0600) != 0 && errno != EEXIST) {
      throw std::runtime_error("serve: mkfifo(" + opt_.reload_fifo +
                               ") failed: " + std::strerror(errno));
    }
    // O_RDWR keeps a writer reference open so the FIFO never reads EOF
    // between producers — the watcher survives any number of
    // `echo path > fifo` rounds.
    fifo_fd_ = ::open(opt_.reload_fifo.c_str(),
                      O_RDWR | O_NONBLOCK | O_CLOEXEC);
    if (fifo_fd_ < 0) {
      throw std::runtime_error("serve: open(" + opt_.reload_fifo +
                               ") failed: " + std::strerror(errno));
    }
  }
  return port_;
}

void Server::request_stop() noexcept {
  stop_.store(true, std::memory_order_release);
  if (stop_event_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(stop_event_, &one, sizeof one);
  }
}

void Server::run() {
  if (listen_fd_ < 0) {
    throw std::logic_error("Server::run: start() first");
  }
  const unsigned n_workers = opt_.workers == 0 ? 1 : opt_.workers;
  workers_.clear();
  workers_.reserve(n_workers);
  for (unsigned i = 0; i < n_workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->ep = ::epoll_create1(EPOLL_CLOEXEC);
    const int efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (w->ep < 0 || efd < 0) {
      if (efd >= 0) ::close(efd);
      throw std::runtime_error("serve: worker setup failed: " +
                               std::string(std::strerror(errno)));
    }
    w->mail = std::make_shared<Mailbox>(efd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeToken;
    if (::epoll_ctl(w->ep, EPOLL_CTL_ADD, efd, &ev) != 0) {
      throw std::runtime_error("serve: epoll_ctl(wake) failed: " +
                               std::string(std::strerror(errno)));
    }
    workers_.push_back(std::move(w));
  }
  worker_threads_.reserve(n_workers);
  for (auto& w : workers_) {
    worker_threads_.emplace_back([this, &w] { worker_loop(*w); });
  }

  acceptor_loop();

  // Release the listening port the moment the accept loop exits:
  // connects must be refused once run() returns, not only when the
  // Server object is destroyed.
  ::close(listen_fd_);
  listen_fd_ = -1;

  for (auto& w : workers_) w->mail->post_stop();
  for (std::thread& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  worker_threads_.clear();
  workers_.clear();
}

void Server::handle_fifo_lines() {
  char chunk[512];
  for (;;) {
    const ssize_t n = ::read(fifo_fd_, chunk, sizeof chunk);
    if (n > 0) {
      fifo_buf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EAGAIN (drained) or error
  }
  std::size_t start = 0;
  for (std::size_t nl = fifo_buf_.find('\n', start);
       nl != std::string::npos; nl = fifo_buf_.find('\n', start)) {
    std::string path = fifo_buf_.substr(start, nl - start);
    start = nl + 1;
    while (!path.empty() && (path.back() == '\r' || path.back() == ' ')) {
      path.pop_back();
    }
    if (path.empty()) path = opt_.model_path;
    if (path.empty()) {
      std::fprintf(stderr,
                   "pulpclass serve: reload ignored (no model path)\n");
      continue;
    }
    try {
      const std::uint64_t v = service_.registry()->reload_file(path);
      std::fprintf(stderr,
                   "pulpclass serve: reloaded model v%llu from %s\n",
                   static_cast<unsigned long long>(v), path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "pulpclass serve: reload failed: %s\n", e.what());
    }
  }
  fifo_buf_.erase(0, start);
}

void Server::acceptor_loop() {
  const int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) {
    throw std::runtime_error("serve: epoll_create1() failed: " +
                             std::string(std::strerror(errno)));
  }
  const auto add = [&](int fd, std::uint64_t token) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = token;
    (void)::epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev);
  };
  add(stop_event_, 0);
  add(listen_fd_, 1);
  if (fifo_fd_ >= 0) add(fifo_fd_, 2);

  std::size_t next_worker = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    epoll_event evs[8];
    const int n = ::epoll_wait(ep, evs, 8, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n && !stop_.load(std::memory_order_acquire); ++i) {
      if (evs[i].data.u64 == 0) break;  // stop event
      if (evs[i].data.u64 == 2) {
        handle_fifo_lines();
        continue;
      }
      // Listener readable: accept until EAGAIN (it is level-triggered,
      // but draining keeps the backlog short under bursts).
      for (;;) {
        const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
          if (errno == EINTR) continue;
          break;  // EAGAIN, ECONNABORTED burst end, ...
        }
        const int one = 1;
        (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        if (open_connections_.load(std::memory_order_relaxed) >=
            static_cast<int>(opt_.max_connections)) {
          send_best_effort(fd, format_error_reply(-1, "overloaded"));
          ::close(fd);
          continue;
        }
        open_connections_.fetch_add(1, std::memory_order_relaxed);
        if (!workers_[next_worker]->mail->post_fd(fd)) {
          open_connections_.fetch_sub(1, std::memory_order_relaxed);
          ::close(fd);
        }
        next_worker = (next_worker + 1) % workers_.size();
      }
    }
  }
  ::close(ep);
}

int Server::next_timeout_ms(const Worker& w) const {
  if (w.deadlines.empty()) return -1;
  const auto now = Clock::now();
  const auto first = w.deadlines.begin()->first;
  if (first <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(first - now)
          .count() +
      1;
  return static_cast<int>(ms > 60000 ? 60000 : ms);
}

void Server::worker_loop(Worker& w) {
  for (;;) {
    epoll_event evs[64];
    const int n = ::epoll_wait(w.ep, evs, 64, next_timeout_ms(w));
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < (n > 0 ? n : 0); ++i) {
      if (evs[i].data.u64 == kWakeToken) {
        std::uint64_t drain = 0;
        while (::read(w.mail->efd, &drain, sizeof drain) > 0) {
        }
        drain_mailbox(w);
        continue;
      }
      const auto it = w.conns.find(evs[i].data.u64);
      if (it == w.conns.end()) continue;  // closed earlier in this batch
      Conn& c = *it->second;
      if (evs[i].events & EPOLLOUT) {
        handle_writable(w, c);
        if (w.conns.find(evs[i].data.u64) == w.conns.end()) continue;
      }
      if (evs[i].events & EPOLLIN) {
        handle_readable(w, c);
        if (w.conns.find(evs[i].data.u64) == w.conns.end()) continue;
      }
      if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
        close_connection(w, c);
      }
    }
    expire_deadlines(w);
    if (w.stopping) {
      // Graceful drain: connections close as soon as they owe nothing
      // (no pending request, no unflushed reply bytes). Every pending
      // request has a deadline, so this converges within the request
      // timeout.
      for (auto it = w.conns.begin(); it != w.conns.end();) {
        Conn& c = *it->second;
        ++it;  // close_connection erases c
        if (c.pending.empty() && c.woff >= c.wbuf.size()) {
          close_connection(w, c);
        }
      }
      if (w.conns.empty()) break;
    }
  }
  // Teardown: whatever is left closes hard; late service callbacks hit
  // the closed mailbox and are dropped.
  for (auto& [id, c] : w.conns) {
    ::close(c->fd);
    open_connections_.fetch_sub(1, std::memory_order_relaxed);
  }
  w.conns.clear();
  {
    std::lock_guard<std::mutex> lk(w.mail->mu);
    w.mail->open = false;
    for (const int fd : w.mail->fds) {
      ::close(fd);
      open_connections_.fetch_sub(1, std::memory_order_relaxed);
    }
    w.mail->fds.clear();
    w.mail->outs.clear();
  }
}

void Server::drain_mailbox(Worker& w) {
  std::vector<int> fds;
  std::vector<Mailbox::Out> outs;
  bool stop_now = false;
  {
    std::lock_guard<std::mutex> lk(w.mail->mu);
    fds.swap(w.mail->fds);
    outs.swap(w.mail->outs);
    stop_now = w.mail->stop;
  }
  for (const int fd : fds) {
    if (w.stopping || stop_now) {
      ::close(fd);
      open_connections_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    adopt_connection(w, fd);
  }
  for (Mailbox::Out& out : outs) {
    const auto it = w.conns.find(out.conn);
    if (it == w.conns.end()) continue;  // connection already gone
    Conn& c = *it->second;
    if (out.seq != 0) {
      // The request may have timed out meanwhile — its pending entry is
      // gone and the client already holds a timeout reply; drop this
      // late one.
      if (c.pending.erase(out.seq) == 0) continue;
    }
    send_reply(w, c, out.line);
  }
  if (stop_now) w.stopping = true;
}

void Server::adopt_connection(Worker& w, int fd) {
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->id = w.next_conn_id++;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(w.ep, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    open_connections_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  Conn& c = *conn;
  w.conns.emplace(conn->id, std::move(conn));
  // The socket may have been readable before it joined the epoll set;
  // with edge triggering that edge would never re-fire, so read now.
  handle_readable(w, c);
}

void Server::handle_readable(Worker& w, Conn& c) {
  if (c.paused || w.stopping) return;
  // Copied out: helpers below may close (and free) the connection, so
  // liveness checks must not read through `c` afterwards.
  const std::uint64_t id = c.id;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(c.fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      c.rbuf.append(chunk, static_cast<std::size_t>(n));
      process_buffer(w, c);
      // process_buffer may have closed (write failure) or paused us.
      if (w.conns.find(id) == w.conns.end() || c.paused) return;
      continue;
    }
    if (n == 0) {  // peer closed; drop pending work for this client
      close_connection(w, c);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // drained (ET)
    close_connection(w, c);
    return;
  }
}

void Server::process_buffer(Worker& w, Conn& c) {
  const std::uint64_t id = c.id;  // `c` may be freed by a write failure
  std::size_t start = 0;
  for (std::size_t nl = c.rbuf.find('\n', start); nl != std::string::npos;
       nl = c.rbuf.find('\n', start)) {
    std::string_view line(c.rbuf.data() + start, nl - start);
    start = nl + 1;
    if (c.discarding) {
      // This newline terminates the oversized request whose error was
      // already sent; parsing resumes at the next line.
      c.discarding = false;
      continue;
    }
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    handle_line(w, c, line);
    if (w.conns.find(id) == w.conns.end()) return;  // write failure
  }
  c.rbuf.erase(0, start);
  if (c.rbuf.size() > opt_.max_line_bytes) {
    // Bound read-side memory: reject the oversized request once, then
    // discard until its terminating newline instead of buffering it.
    if (!c.discarding) {
      send_reply(w, c,
                 format_error_reply_for(c.proto, -1, kErrorCodeTooLarge,
                                        "request line too long"));
      if (w.conns.find(id) == w.conns.end()) return;
      c.discarding = true;
    }
    c.rbuf.clear();
  }
}

void Server::handle_line(Worker& w, Conn& c, std::string_view line) {
  WireRequest wire;
  const std::string err = parse_request(line, &wire);
  if (!err.empty()) {
    const char* code = err.compare(0, 7, "parse: ") == 0
                           ? kErrorCodeParse
                           : kErrorCodeInvalid;
    send_reply(w, c, format_error_reply_for(wire.v, wire.id, code, err));
    return;  // the connection (and server) survive bad requests
  }
  c.proto = wire.v;

  if (wire.cmd == "ping") {
    send_reply(w, c,
               "{\"v\":2,\"id\":" + std::to_string(wire.id) +
                   ",\"ok\":true,\"pong\":true}");
    return;
  }
  if (wire.cmd == "metrics") {
    send_reply(w, c,
               "{\"v\":2,\"id\":" + std::to_string(wire.id) +
                   ",\"ok\":true,\"metrics\":" + service_.metrics_json() +
                   "}");
    return;
  }
  if (wire.cmd == "reload") {
    // Loading + validating a model does file I/O; run it off the event
    // loop so this worker's other connections keep being served. The
    // shared_ptrs keep registry and mailbox alive even if the server
    // goes away first; a reply into a closed mailbox is dropped.
    std::string path = wire.model.empty() ? opt_.model_path : wire.model;
    std::thread([registry = service_.registry(), mail = w.mail,
                 conn = c.id, id = wire.id, path = std::move(path)] {
      std::string reply;
      if (path.empty()) {
        reply = format_error_reply_v2(id, kErrorCodeReload,
                                      "no model path configured");
      } else {
        try {
          const std::uint64_t version = registry->reload_file(path);
          reply = "{\"v\":2,\"id\":" + std::to_string(id) +
                  ",\"ok\":true,\"model_version\":" +
                  std::to_string(version) + ",\"columns\":" +
                  std::to_string(registry->current()->clf.columns().size()) +
                  "}";
        } catch (const std::exception& e) {
          reply = format_error_reply_v2(id, kErrorCodeReload, e.what());
        }
      }
      mail->post_out(conn, 0, std::move(reply));
    }).detach();
    return;
  }

  // predict (both protocol versions).
  Request req;
  req.kernel = wire.kernel;
  (void)parse_dtype(wire.dtype, &req.dtype);  // validated by parse
  req.size_bytes = wire.bytes;
  req.optimize = wire.optimize;

  const std::uint64_t seq = ++c.next_seq;
  c.pending.emplace(seq, Conn::PendingReq{wire.id, wire.v});
  w.deadlines.emplace(
      Clock::now() + std::chrono::milliseconds(opt_.request_timeout_ms),
      std::make_pair(c.id, seq));
  service_.submit(std::move(req),
                  [mail = w.mail, conn = c.id, seq, id = wire.id,
                   v = wire.v](Result result) {
                    mail->post_out(conn, seq,
                                   format_reply_for(v, id, result));
                  });
}

void Server::expire_deadlines(Worker& w) {
  const auto now = Clock::now();
  while (!w.deadlines.empty() && w.deadlines.begin()->first <= now) {
    const auto [conn_id, seq] = w.deadlines.begin()->second;
    w.deadlines.erase(w.deadlines.begin());
    const auto it = w.conns.find(conn_id);
    if (it == w.conns.end()) continue;
    Conn& c = *it->second;
    const auto pending = c.pending.find(seq);
    if (pending == c.pending.end()) continue;  // already answered
    const long long wire_id = pending->second.wire_id;
    const int v = pending->second.v;
    // Erase BEFORE replying: when the service eventually resolves this
    // request, the mailbox lookup misses and the late reply is dropped.
    c.pending.erase(pending);
    send_reply(w, c,
               format_error_reply_for(v, wire_id, kErrorCodeTimeout,
                                      "timeout"));
  }
}

void Server::send_reply(Worker& w, Conn& c, const std::string& line) {
  c.wbuf += line;
  c.wbuf += '\n';
  if (!c.want_write) {
    (void)flush_writes(w, c);
  } else if (c.wbuf.size() - c.woff > kWriteWatermark) {
    c.paused = true;
  }
}

bool Server::flush_writes(Worker& w, Conn& c) {
  while (c.woff < c.wbuf.size()) {
    const ssize_t n = ::send(c.fd, c.wbuf.data() + c.woff,
                             c.wbuf.size() - c.woff, MSG_NOSIGNAL);
    if (n >= 0) {
      c.woff += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Kernel buffer full: arm EPOLLOUT. Safe with edge triggering
      // precisely because the socket just reported not-writable — the
      // next writability transition is a fresh edge.
      if (!c.want_write) {
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
        ev.data.u64 = c.id;
        (void)::epoll_ctl(w.ep, EPOLL_CTL_MOD, c.fd, &ev);
        c.want_write = true;
      }
      if (c.wbuf.size() - c.woff > kWriteWatermark) c.paused = true;
      return true;
    }
    close_connection(w, c);
    return false;
  }
  c.wbuf.clear();
  c.woff = 0;
  if (c.want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET;
    ev.data.u64 = c.id;
    (void)::epoll_ctl(w.ep, EPOLL_CTL_MOD, c.fd, &ev);
    c.want_write = false;
  }
  if (c.paused) {
    // Backpressure released: resume reading. The pause may have eaten a
    // read edge, so poll the socket by hand once.
    c.paused = false;
    handle_readable(w, c);
  }
  return true;
}

void Server::handle_writable(Worker& w, Conn& c) {
  (void)flush_writes(w, c);
}

void Server::close_connection(Worker& w, Conn& c) {
  ::close(c.fd);  // also removes fd from the epoll set
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
  w.conns.erase(c.id);  // frees c; deadline entries are skipped lazily
}

}  // namespace pulpc::serve
