#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "serve/protocol.hpp"

namespace pulpc::serve {

namespace {

/// send(2) the whole buffer, riding out short writes and EINTR.
bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_line(int fd, const std::string& line) {
  return send_all(fd, line + "\n");
}

}  // namespace

Server::Server(PredictionService& service, Options options)
    : service_(service), opt_(options) {}

Server::~Server() {
  request_stop();
  // run() joins the threads; if run() was never reached, the accept
  // loop never started and there are none. Close what start() opened.
  {
    std::lock_guard<std::mutex> lk(threads_mu_);
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
}

std::uint16_t Server::start() {
  if (::pipe(stop_pipe_) != 0) {
    throw std::runtime_error("serve: pipe() failed: " +
                             std::string(std::strerror(errno)));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opt_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    throw std::runtime_error(
        "serve: cannot bind 127.0.0.1:" + std::to_string(opt_.port) + ": " +
        std::strerror(errno));
  }
  if (::listen(listen_fd_, opt_.backlog) != 0) {
    throw std::runtime_error("serve: listen() failed: " +
                             std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    throw std::runtime_error("serve: getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  return port_;
}

void Server::request_stop() noexcept {
  stop_.store(true, std::memory_order_release);
  if (stop_pipe_[1] >= 0) {
    // The byte is never drained: every poller keeps seeing POLLIN, so
    // one write wakes the accept loop and all connection threads.
    const char b = 1;
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &b, 1);
  }
}

bool Server::wait_readable(int fd) {
  for (;;) {
    pollfd fds[2] = {{fd, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (stop_.load(std::memory_order_acquire) || (fds[1].revents & POLLIN)) {
      return false;
    }
    if (fds[0].revents & (POLLIN | POLLHUP | POLLERR)) return true;
  }
}

void Server::run() {
  if (listen_fd_ < 0) {
    throw std::logic_error("Server::run: start() first");
  }
  while (wait_readable(listen_fd_)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    if (open_connections_.load(std::memory_order_relaxed) >=
        opt_.max_connections) {
      (void)send_line(fd, format_error_reply(-1, "overloaded"));
      ::close(fd);
      continue;
    }
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(threads_mu_);
    threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
  // Release the listening port the moment the accept loop exits:
  // connects must be refused once run() returns, not only when the
  // Server object is destroyed.
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::lock_guard<std::mutex> lk(threads_mu_);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void Server::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (wait_readable(fd)) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: client went away
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > opt_.max_line_bytes &&
        buffer.find('\n') == std::string::npos) {
      (void)send_line(fd, format_error_reply(-1, "request line too long"));
      break;
    }
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos; nl = buffer.find('\n', start)) {
      std::string_view line(buffer.data() + start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (line.empty()) continue;

      WireRequest wire;
      const std::string parse_err = parse_request(line, &wire);
      if (!parse_err.empty()) {
        if (!send_line(fd, format_error_reply(wire.id, parse_err))) goto out;
        continue;  // the connection (and server) survive bad requests
      }
      Request req;
      req.kernel = wire.kernel;
      (void)parse_dtype(wire.dtype, &req.dtype);  // validated by parse
      req.size_bytes = wire.bytes;
      req.optimize = wire.optimize;

      std::future<Result> future = service_.submit(std::move(req));
      if (future.wait_for(std::chrono::milliseconds(
              opt_.request_timeout_ms)) != std::future_status::ready) {
        // The service will still finish the work (and count it); this
        // client just stops waiting for it.
        if (!send_line(fd, format_error_reply(wire.id, "timeout"))) goto out;
        continue;
      }
      if (!send_line(fd, format_reply(wire.id, future.get()))) goto out;
    }
    buffer.erase(0, start);
  }
out:
  ::close(fd);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace pulpc::serve
