// Hash-sharded prediction service: M independent PredictionService
// shards behind one deterministic router, sharing one ModelRegistry.
//
// Why shard: one PredictionService has one batcher thread and one pair
// of LRU caches guarded by one mutex. Sharding multiplies batcher
// throughput AND keeps each shard's two-level cache hot on a stable
// partition of the keyspace — the same program always lands on the same
// shard, so its feature row is cached exactly once, in exactly the
// cache that will be asked for it again.
//
// Routing is consistent hashing on core::program_hash — the canonical
// program identity the artifact store and the row caches already key
// by. Spec-form requests (kernel/dtype/size) resolve to the program
// hash first: the router keeps its own spec-key -> {hash, lowered
// program} LRU, lowers once on a miss, and forwards the request in
// program form so the shard never lowers again. A spec that fails to
// lower routes by its spec key WITHOUT an attached program — the shard
// re-runs the failing lowering and produces the identical error text
// (and accounts the error in its own metrics), keeping the
// single-service and sharded deployments observably byte-identical.
//
// The shard placement function is Lamport & Veach's jump consistent
// hash: stateless, O(ln n), and monotone — growing M shards to M+1
// moves only ~1/(M+1) of keys, so a redeploy at a higher shard count
// keeps most of every warm cache valid. Determinism (same key -> same
// shard across restarts and processes) is what the routing tests pin.
//
// All shards share the one ModelRegistry, so a `reload` swaps the model
// for every shard with a single atomic store; per-batch snapshot
// acquisition (see service.hpp) keeps in-flight batches on the version
// they started with, shard by shard.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/metrics.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"

namespace pulpc::serve {

class ShardedService {
 public:
  struct Options {
    /// Number of PredictionService shards (clamped to >= 1).
    std::size_t shards = 2;
    /// Router-level spec-key -> lowered-program LRU entries; 0 disables
    /// router memoization (every spec request lowers at the router).
    std::size_t router_cache = 4096;
    /// Per-shard service configuration (cache capacity, batching, shed
    /// threshold, pool threads — all applied to EVERY shard, so e.g.
    /// max_in_flight is a per-shard bound).
    PredictionService::Options service;
  };

  /// All shards serve (and hot-reload through) `registry`; must be
  /// non-null or std::invalid_argument is thrown.
  ShardedService(std::shared_ptr<ModelRegistry> registry, Options options);
  /// Convenience: wrap a classifier in a fresh registry (version 1).
  ShardedService(core::EnergyClassifier classifier, Options options);

  /// Jump consistent hash (Lamport & Veach 2014): maps `key` to
  /// [0, shards). Pure function of its arguments — the determinism the
  /// routing layer is built on.
  [[nodiscard]] static std::size_t shard_index(std::uint64_t key,
                                               std::size_t shards);

  /// The shard `req` routes to. Spec-form requests resolve through the
  /// router cache (lowering on a miss); unlowerable specs route by
  /// their spec key.
  [[nodiscard]] std::size_t shard_for(const Request& req);

  /// Route + submit; `done` fires once on the owning shard's batcher
  /// thread (or inline for shed/shutdown).
  void submit(Request req, PredictionService::DoneFn done);
  [[nodiscard]] std::future<Result> submit(Request req);
  [[nodiscard]] Result predict(const Request& req);

  /// Prime every shard's caches from the artifact store: one store
  /// pass, routed through the same placement function as live traffic,
  /// so each shard pre-warms exactly the keys it will serve. Also warms
  /// the router's spec->program cache. Returns samples primed.
  std::size_t prime_from_store(const core::ArtifactStore& store);

  /// Aggregate of all shard metrics (counters summed, max_batch maxed).
  [[nodiscard]] Metrics::Snapshot metrics() const;
  [[nodiscard]] Metrics::Snapshot shard_metrics(std::size_t i) const;
  /// {"total":{...},"shards":[{...}, ...],"models":[...]} — the v2
  /// `metrics` admin verb's reply payload.
  [[nodiscard]] std::string metrics_json() const;

  [[nodiscard]] std::size_t shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const std::shared_ptr<ModelRegistry>& registry()
      const noexcept {
    return registry_;
  }
  /// The serving model snapshot (delegates to the registry).
  [[nodiscard]] std::shared_ptr<const ModelSnapshot> model() const {
    return registry_->current();
  }
  [[nodiscard]] const Options& options() const noexcept { return opt_; }

 private:
  struct Route {
    std::uint64_t key = 0;  ///< program hash, or spec key when !program
    std::shared_ptr<const kir::Program> program;  ///< null: shard lowers
  };
  /// Resolve the routing key (and lowered program) for a request.
  /// Never throws: lowering failures degrade to spec-key routing.
  [[nodiscard]] Route resolve_route(const Request& req);

  std::shared_ptr<ModelRegistry> registry_;
  Options opt_;
  std::vector<std::unique_ptr<PredictionService>> shards_;

  std::mutex router_mu_;
  detail::LruCache<Route> routes_;  ///< spec key -> {program hash, program}
};

}  // namespace pulpc::serve
