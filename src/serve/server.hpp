// Dependency-free TCP front end for a PredictionService: line-delimited
// JSON over a loopback socket (see serve/protocol.hpp), exposed as
// `pulpclass serve --port N`.
//
//  * One accept loop + one thread per connection, both parked on
//    poll(2) over {socket, stop pipe} so request_stop() — a single
//    async-signal-safe byte written from e.g. a SIGINT handler — wakes
//    everything immediately and run() returns after joining all
//    connection threads (graceful shutdown: accepted requests finish).
//  * Per-request timeout: the connection thread waits bounded time for
//    the service future and answers {"error":"timeout"} if it expires;
//    the server itself never blocks forever on one request.
//  * Backpressure is layered: the service sheds beyond max_in_flight
//    ("overloaded" reply), and the server refuses connections beyond
//    Options::max_connections the same way — explicit rejection, never
//    unbounded queueing.
//  * A malformed request line yields an error reply on that connection;
//    it can never take down the server (or even the connection).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace pulpc::serve {

class Server {
 public:
  struct Options {
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port (tests) —
    /// start() returns the bound one.
    std::uint16_t port = 0;
    int backlog = 16;
    /// Concurrent connections beyond which accept() answers one
    /// "overloaded" error reply and closes.
    int max_connections = 64;
    /// Wait budget per request before the "timeout" error reply.
    int request_timeout_ms = 5000;
    /// A connection buffering more than this many bytes without a
    /// newline is answered with an error and closed (bounds memory).
    std::size_t max_line_bytes = 1 << 16;
  };

  Server(PredictionService& service, Options options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind 127.0.0.1:port and listen. Throws std::runtime_error on
  /// failure. Returns the bound port (useful with port 0).
  std::uint16_t start();

  /// Accept and serve until request_stop(); joins every connection
  /// thread before returning. Requires start().
  void run();

  /// Async-signal-safe stop request (safe from a SIGINT handler).
  void request_stop() noexcept;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  void handle_connection(int fd);
  /// poll(2) on {fd, stop pipe}; false on stop/error, true when fd is
  /// readable.
  bool wait_readable(int fd);

  PredictionService& service_;
  Options opt_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<int> open_connections_{0};
  std::mutex threads_mu_;
  std::vector<std::thread> threads_;
};

}  // namespace pulpc::serve
