// Scale-out TCP front end for a ShardedService: line-delimited JSON
// (v1 + v2, see serve/protocol.hpp) over loopback, exposed as
// `pulpclass serve`.
//
// Event-loop architecture (DESIGN.md §13):
//
//   acceptor ──round robin──▶ worker 0 (epoll, edge-triggered)
//      │                      worker 1 (epoll, edge-triggered)
//      └─ listen fd, stop     ...        each: non-blocking conns,
//         eventfd, reload                per-conn read/write buffers,
//         FIFO                           deadline queue, reply mailbox
//
//  * One acceptor loop (the thread that calls run()) owns the listening
//    socket and hands accepted connections to N worker event loops
//    round-robin. Each worker runs epoll_wait over its connections in
//    edge-triggered mode: readable sockets are drained to EAGAIN into a
//    per-connection read buffer, complete lines are parsed and
//    submitted to the sharded service with a callback, and replies are
//    posted back through a per-worker mailbox (mutex + eventfd) so the
//    batcher threads never write to a socket they don't own.
//  * No thread per connection, no blocking waits: a worker's request
//    timeout is a deadline in a sorted queue that bounds epoll_wait's
//    sleep; expiry answers {"error":"timeout"} (v1) / code "timeout"
//    (v2) and drops the late service callback when it eventually fires.
//  * Writes are buffered per connection and flushed opportunistically;
//    a partial write arms EPOLLOUT (edge-triggered, so only when the
//    socket is provably full) and a high write watermark pauses reading
//    from that connection — per-connection memory is bounded in both
//    directions (reads by max_line_bytes + the "request too large"
//    resync, writes by the watermark backpressure).
//  * Model hot-reload: the v2 `reload` verb (and an optional FIFO the
//    acceptor watches — `echo /path/to/model > fifo`) publishes a new
//    version into the shared ModelRegistry; in-flight batches finish on
//    the version they started with (see serve/registry.hpp).
//  * request_stop() — one async-signal-safe eventfd write, safe from a
//    SIGINT handler — closes the listener immediately (the port is
//    released before run() returns) and drains workers gracefully:
//    submitted requests get their replies (or their timeout), then
//    connections close.
//
// Every serve knob lives in ServeOptions and resolves through ONE
// precedence chain (core/env.hpp): explicit field > PULPC_* env var >
// default — CLI flags write the fields, so flag > env > default holds
// end to end. The table lives in README.md "Serving".
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/sharded.hpp"

namespace pulpc::serve {

/// Every serve-layer knob, resolved via core::env_or precedence.
/// Fields are "unset" as documented per field; resolve() collapses
/// explicit value > PULPC_* env > default into concrete numbers.
struct ServeOptions {
  /// TCP port on 127.0.0.1. unset -> PULPC_SERVE_PORT -> 7070; an
  /// explicit 0 picks an ephemeral port (tests) — start() returns it.
  std::optional<std::uint16_t> port;
  /// Worker event loops. 0 -> PULPC_SERVE_WORKERS -> 2.
  unsigned workers = 0;
  /// PredictionService shards. 0 -> PULPC_SERVE_SHARDS -> 2.
  unsigned shards = 0;
  /// Concurrent connections (all workers) beyond which accept answers
  /// one "overloaded" reply and closes. 0 -> PULPC_SERVE_MAX_CONNS ->
  /// 256.
  unsigned max_connections = 0;
  /// listen(2) backlog. 0 -> PULPC_SERVE_BACKLOG -> 64.
  unsigned backlog = 0;
  /// Per-request reply deadline. 0 -> PULPC_SERVE_TIMEOUT_MS -> 5000.
  unsigned request_timeout_ms = 0;
  /// Longest accepted request line; longer requests get a protocol
  /// "request too large" error and the connection resyncs at the next
  /// newline. 0 -> PULPC_SERVE_MAX_LINE -> 65536.
  unsigned max_line_bytes = 0;
  /// Per-shard shed threshold. 0 -> PULPC_SERVE_MAX_INFLIGHT -> 256.
  unsigned max_in_flight = 0;
  /// Per-shard micro-batch cap. 0 -> PULPC_SERVE_BATCH -> 16.
  unsigned max_batch = 0;
  /// Per-shard batch linger in µs. unset -> PULPC_SERVE_LINGER_US ->
  /// 200 (0 is a meaningful explicit value: no linger).
  std::optional<unsigned> batch_linger_us;
  /// Per-shard LRU capacity. unset -> PULPC_SERVE_CACHE -> 1024
  /// (0 is a meaningful explicit value: caching off).
  std::optional<unsigned> cache_capacity;
  /// Router spec->program LRU. 0 -> PULPC_SERVE_ROUTER_CACHE -> 4096.
  unsigned router_cache = 0;
  /// Featurization threads per shard pool; 0 defers to PULPC_THREADS /
  /// hardware concurrency inside core::ThreadPool.
  unsigned threads = 0;
  /// FIFO path the acceptor watches for reload commands (each line is a
  /// model path; an empty line reloads model_path). unset ->
  /// PULPC_SERVE_RELOAD_FIFO -> "" (disabled).
  std::optional<std::string> reload_fifo;
  /// Default model file for `reload` without an explicit path. unset ->
  /// PULPC_MODEL -> "" (reload then requires an explicit path).
  std::optional<std::string> model_path;
  /// Flat-engine selection, forwarded to the ModelRegistry. unset ->
  /// PULPC_FLAT_PREDICT -> on.
  std::optional<bool> use_flat;

  /// The concrete, env-resolved settings.
  struct Resolved {
    std::uint16_t port = 7070;
    unsigned workers = 2;
    unsigned shards = 2;
    unsigned max_connections = 256;
    unsigned backlog = 64;
    unsigned request_timeout_ms = 5000;
    std::size_t max_line_bytes = 65536;
    std::size_t max_in_flight = 256;
    std::size_t max_batch = 16;
    unsigned batch_linger_us = 200;
    std::size_t cache_capacity = 1024;
    std::size_t router_cache = 4096;
    unsigned threads = 0;
    std::string reload_fifo;
    std::string model_path;
    std::optional<bool> use_flat;
  };
  [[nodiscard]] Resolved resolve() const;
};

/// The ShardedService::Options a resolved ServeOptions implies — the
/// one way CLI, tests, and embedders build the service the Server
/// fronts, so socket layer and service layer can't disagree on knobs.
[[nodiscard]] ShardedService::Options sharded_options(
    const ServeOptions::Resolved& r);

class Server {
 public:
  /// `service` must outlive the Server. `options` is resolved once,
  /// here (environment changes after construction have no effect).
  Server(ShardedService& service, ServeOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind 127.0.0.1:port and listen (non-blocking). Throws
  /// std::runtime_error on failure — including a failed SO_REUSEADDR,
  /// so a successfully started server is always rebindable after stop.
  /// Returns the bound port (useful with port 0).
  std::uint16_t start();

  /// Run the acceptor loop on the calling thread and the worker event
  /// loops on internal threads, until request_stop(); joins every
  /// worker before returning. The listening port is released the
  /// moment the acceptor exits. Requires start().
  void run();

  /// Async-signal-safe stop request (one eventfd write; safe from a
  /// SIGINT handler).
  void request_stop() noexcept;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const ServeOptions::Resolved& options() const noexcept {
    return opt_;
  }

 private:
  struct Mailbox;  // per-worker cross-thread inbox (server.cpp)
  struct Conn;     // per-connection state (server.cpp)
  struct Worker;   // per-worker event-loop state (server.cpp)

  void acceptor_loop();
  void worker_loop(Worker& w);
  void handle_fifo_lines();

  // Worker-side helpers (all run on that worker's thread).
  void adopt_connection(Worker& w, int fd);
  void handle_readable(Worker& w, Conn& c);
  void handle_writable(Worker& w, Conn& c);
  void process_buffer(Worker& w, Conn& c);
  void handle_line(Worker& w, Conn& c, std::string_view line);
  void send_reply(Worker& w, Conn& c, const std::string& line);
  bool flush_writes(Worker& w, Conn& c);
  void close_connection(Worker& w, Conn& c);
  void expire_deadlines(Worker& w);
  void drain_mailbox(Worker& w);
  [[nodiscard]] int next_timeout_ms(const Worker& w) const;

  ShardedService& service_;
  ServeOptions::Resolved opt_;
  int listen_fd_ = -1;
  int stop_event_ = -1;  ///< eventfd; request_stop() writes it
  int fifo_fd_ = -1;     ///< reload FIFO (O_RDWR so it never EOFs)
  std::string fifo_buf_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<int> open_connections_{0};
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> worker_threads_;
};

}  // namespace pulpc::serve
