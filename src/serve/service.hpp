// In-process prediction service: the paper's end product (static
// features -> energy-optimal core count) packaged for repeated,
// concurrent use instead of one-shot CLI invocations.
//
//   core::EnergyClassifier clf = core::EnergyClassifier::load_file(path);
//   serve::PredictionService svc(std::move(clf));
//   serve::Result r = svc.predict({.kernel = "gemm",
//                                  .dtype = kir::DType::I32,
//                                  .size_bytes = 8192});
//   // r.cores == EnergyClassifier::predict for the same kernel, always.
//
// Architecture (see DESIGN.md "Prediction service"):
//  * submit() pushes into a bounded queue; beyond Options::max_in_flight
//    the request is shed immediately with Result::shed (an explicit
//    "overloaded" answer instead of unbounded queueing). The callback
//    overload resolves without a future — the epoll server uses it to
//    stay event-driven end to end.
//  * A single batcher thread pops micro-batches (up to Options::max_batch,
//    lingering Options::batch_linger after the first request to let a
//    burst coalesce) and featurizes the batch members in parallel on a
//    core::ThreadPool. The resolved feature rows are then classified
//    with ONE EnergyClassifier::predict_rows call per micro-batch — the
//    flattened branchless engine (ml::FlatTree) walks the whole batch
//    with rows pipelined in flight, instead of one node-chasing walk
//    per request (Options::use_flat / PULPC_FLAT_PREDICT toggle the
//    engine; predictions are bit-identical either way).
//  * The model comes from a ModelRegistry (serve/registry.hpp): the
//    batcher acquires one snapshot per micro-batch, so a hot reload
//    never tears a batch — every request in it is featurized AND
//    classified by the model version stamped into its Result. Several
//    services can share one registry (the sharded deployment does).
//  * An LRU cache keyed by the lowered-program FNV-1a hash
//    (core::program_hash — the same identity core/artifacts trusts) maps
//    program -> extracted feature row; a hit skips lowering and
//    featurization entirely and goes straight to the decision tree. A
//    second, same-capacity LRU maps (kernel, dtype, size, optimize) ->
//    program hash so spec-form requests hit without lowering at all.
//    Cached rows are tagged with the snapshot's feature fingerprint:
//    a reload to a model with the same column list keeps both caches
//    warm, a different column list flushes them.
//
// Bit-identity: the service routes through EnergyClassifier::feature_row
// + predict_rows — the exact decomposition of EnergyClassifier::predict
// (predict_rows per-row equals predict_row; the flat engine per-row
// equals the tree walk) — and cached rows are the doubles a cold request
// computed, so a served prediction can never drift from the offline one.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/classifier.hpp"
#include "core/parallel.hpp"
#include "kir/ir.hpp"
#include "serve/metrics.hpp"
#include "serve/registry.hpp"

namespace pulpc::core {
class ArtifactStore;
}  // namespace pulpc::core

namespace pulpc::serve {

/// One prediction request: either a kernel spec from the registry
/// (kernel/dtype/size_bytes, optionally optimised lowering) or an
/// already-lowered program (takes precedence when set).
struct Request {
  std::string kernel;
  kir::DType dtype = kir::DType::I32;
  std::uint32_t size_bytes = 0;
  bool optimize = false;
  std::shared_ptr<const kir::Program> program;
};

struct Result {
  bool ok = false;
  bool shed = false;    ///< rejected at max in-flight ("overloaded")
  bool cached = false;  ///< feature row came from the LRU cache
  int cores = 0;        ///< the prediction (valid when ok)
  std::uint64_t model_version = 0;  ///< registry version that answered
  std::string error;    ///< why not ok (shed, bad kernel, shutdown, ...)
  double micros = 0;    ///< service-side latency: submit -> reply
};

/// Cache key of a spec-form request (kernel name, dtype, size, lowering
/// variant) — FNV-1a over an unambiguous rendering, the same primitive
/// core/artifacts keys files with. Shared with the shard router so the
/// spec -> shard mapping is one deterministic function of the request.
[[nodiscard]] std::uint64_t spec_key(const Request& req);

/// The distinct spec-form requests stored in an artifact store: one per
/// (kernel, dtype, size) the store has raw counters for. Used to prime
/// service caches before a listener opens.
[[nodiscard]] std::vector<Request> store_spec_requests(
    const core::ArtifactStore& store);

namespace detail {

/// Single-threaded LRU map (callers hold the service cache mutex);
/// capacity 0 disables every operation.
template <typename V>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : cap_(capacity) {}

  /// Copies the value into *out and refreshes recency on hit.
  bool get(std::uint64_t key, V* out) {
    if (cap_ == 0) return false;
    const auto it = map_.find(key);
    if (it == map_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);
    *out = it->second->second;
    return true;
  }

  /// Insert or refresh; returns true when a cold entry was evicted.
  bool put(std::uint64_t key, V value) {
    if (cap_ == 0) return false;
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return false;
    }
    order_.emplace_front(key, std::move(value));
    map_[key] = order_.begin();
    if (map_.size() <= cap_) return false;
    map_.erase(order_.back().first);
    order_.pop_back();
    return true;
  }

  void clear() {
    map_.clear();
    order_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }

 private:
  std::size_t cap_;
  std::list<std::pair<std::uint64_t, V>> order_;  ///< front = most recent
  std::unordered_map<std::uint64_t,
                     typename std::list<std::pair<std::uint64_t, V>>::iterator>
      map_;
};

}  // namespace detail

class PredictionService {
 public:
  struct Options {
    /// LRU entries for the feature-row cache (and the spec->hash index);
    /// 0 disables caching entirely.
    std::size_t cache_capacity = 1024;
    /// Largest micro-batch the batcher pops at once.
    std::size_t max_batch = 16;
    /// Queued + executing requests beyond which submit() sheds with an
    /// "overloaded" Result instead of queueing.
    std::size_t max_in_flight = 256;
    /// Featurization pool workers; 0 resolves via PULPC_THREADS /
    /// hardware_concurrency (core::resolve_thread_count).
    unsigned threads = 0;
    /// After the first request of a batch arrives, wait this long for a
    /// burst to coalesce before executing a partial batch.
    std::chrono::microseconds batch_linger{200};
    /// Classify batches with the flattened branchless engine. Unset
    /// means "consult PULPC_FLAT_PREDICT, default on". Either setting
    /// yields bit-identical predictions (tests/test_serve.cpp proves
    /// it); off exists for A/B benchmarking and as an escape hatch.
    /// Ignored when a pre-built registry is supplied (the registry owns
    /// the engine selection then).
    std::optional<bool> use_flat;
    /// Test instrumentation: invoked on the batcher thread with the
    /// batch size before the batch executes (lets tests hold the batcher
    /// to provoke backpressure / timeouts deterministically).
    std::function<void(std::size_t)> on_batch;
  };

  /// Callback form of a resolved request. Invoked exactly once, on the
  /// batcher thread (or inline on the submitting thread for shed /
  /// shutdown rejections); must not throw.
  using DoneFn = std::function<void(Result)>;

  /// Own an already-trained classifier (published as version 1 of a
  /// private registry). Throws std::invalid_argument if it is not
  /// trained. (Overloads instead of an `Options options = {}` default
  /// argument: a nested aggregate's default member initializers are not
  /// usable in default arguments of its enclosing class.)
  PredictionService(core::EnergyClassifier classifier, Options options);
  explicit PredictionService(core::EnergyClassifier classifier)
      : PredictionService(std::move(classifier), Options{}) {}
  /// Load the model bundle from `model_path` (EnergyClassifier text
  /// format). Throws std::runtime_error on unreadable/corrupt bundles.
  PredictionService(const std::string& model_path, Options options);
  explicit PredictionService(const std::string& model_path)
      : PredictionService(model_path, Options{}) {}
  /// Serve models from a shared registry (hot reload, sharding). The
  /// registry must be non-null; Options::use_flat is ignored.
  PredictionService(std::shared_ptr<ModelRegistry> registry,
                    Options options);
  ~PredictionService();
  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Asynchronous entry point. Always returns a valid future: shed and
  /// shutdown requests resolve immediately with ok=false.
  [[nodiscard]] std::future<Result> submit(Request req);

  /// Asynchronous entry point without a future: `done` fires on the
  /// batcher thread once the request resolves (inline for shed /
  /// shutdown). The event-loop server front end builds on this.
  void submit(Request req, DoneFn done);

  /// Synchronous convenience: submit + wait.
  [[nodiscard]] Result predict(const Request& req);

  /// Cold-start priming: enumerate the artifact store (one mmap pass in
  /// the v2 backend) and pre-fill both LRU layers — feature rows and the
  /// spec -> program-hash index — for every stored sample, so the first
  /// real request for known work is a cache hit before the listener ever
  /// opens. Samples that fail to lower are skipped. Returns the number
  /// of distinct samples primed.
  std::size_t prime_from_store(const core::ArtifactStore& store);

  /// Prime the caches for an explicit request list (the sharded router
  /// partitions one store pass across shards this way). Returns how
  /// many resolved cleanly.
  std::size_t prime(const std::vector<Request>& requests);

  [[nodiscard]] Metrics::Snapshot metrics() const { return metrics_.snapshot(); }
  /// The serving model snapshot (version, classifier). One atomic load;
  /// the returned pointer keeps that version alive.
  [[nodiscard]] std::shared_ptr<const ModelSnapshot> model() const {
    return registry_->current();
  }
  [[nodiscard]] const std::shared_ptr<ModelRegistry>& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const Options& options() const noexcept { return opt_; }

 private:
  struct Pending {
    Request req;
    DoneFn done;
    std::chrono::steady_clock::time_point enqueued;
  };

  void batcher_loop();
  /// Flush both LRU layers if `snap` extracts a different feature set
  /// than the rows currently cached were built with.
  void sync_cache_generation(const ModelSnapshot& snap);
  /// Featurization half of a request (lower + extract + cache); on
  /// success fills *row and returns ok=true with cores still unset —
  /// the batcher classifies all resolved rows in one predict_rows call.
  [[nodiscard]] Result resolve_row(const core::EnergyClassifier& clf,
                                   const Request& req,
                                   std::vector<double>* row);
  bool cached_row(std::uint64_t prog_hash, std::vector<double>* row);
  void store_row(std::uint64_t prog_hash, const std::vector<double>& row);

  std::shared_ptr<ModelRegistry> registry_;
  Options opt_;
  Metrics metrics_;
  core::ThreadPool pool_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  std::size_t in_flight_ = 0;  ///< queued + executing
  bool stop_ = false;

  std::mutex cache_mu_;
  std::uint64_t cache_feature_key_ = 0;  ///< fingerprint the rows were built with
  detail::LruCache<std::vector<double>> rows_;     ///< program hash -> row
  detail::LruCache<std::uint64_t> spec_index_;     ///< spec key -> program hash

  std::thread batcher_;  ///< last member: starts after everything is built
};

}  // namespace pulpc::serve
