// Line-delimited JSON wire protocol of `pulpclass serve`, dependency
// free: one flat JSON object per line in each direction.
//
//   -> {"id":7,"kernel":"gemm","dtype":"i32","bytes":8192}
//   <- {"id":7,"ok":true,"cores":4,"cached":false,"micros":812.4}
//   -> {"kernel":"nope","dtype":"i32","bytes":64}
//   <- {"id":-1,"ok":false,"error":"unknown kernel 'nope'"}
//   -> not json at all
//   <- {"id":-1,"ok":false,"error":"parse: expected '{'"}
//
// Requests: kernel (string, required), dtype ("i32"|"f32", required),
// bytes (positive integer, required), id (integer, echoed, default -1),
// optimize (bool, default false). Unknown keys are ignored for forward
// compatibility. Values never nest, so the parser accepts exactly flat
// objects of strings / numbers / booleans — small enough to audit, and
// a malformed line yields an error reply, never a dead server.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/service.hpp"

namespace pulpc::serve {

/// A request as it appears on the wire (dtype still a string).
struct WireRequest {
  long long id = -1;
  std::string kernel;
  std::string dtype;
  std::uint32_t bytes = 0;
  bool optimize = false;
};

/// A reply as it appears on the wire (for clients and tests).
struct WireReply {
  long long id = -1;
  bool ok = false;
  int cores = 0;
  bool cached = false;
  std::string error;
  double micros = 0;
};

/// Parse one request line. Returns an empty string on success, else the
/// parse/validation error message.
[[nodiscard]] std::string parse_request(std::string_view line,
                                        WireRequest* out);

/// Parse one reply line (the client side of the protocol).
[[nodiscard]] std::string parse_reply(std::string_view line, WireReply* out);

/// "i32"/"f32" -> kir::DType. Returns false on anything else.
[[nodiscard]] bool parse_dtype(std::string_view s, kir::DType* out);

/// One reply line (no trailing newline) for a service Result.
[[nodiscard]] std::string format_reply(long long id, const Result& result);

/// One reply line for a request that never reached the service.
[[nodiscard]] std::string format_error_reply(long long id,
                                             const std::string& message);

/// JSON string escaping (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace pulpc::serve
