// Line-delimited JSON wire protocol of `pulpclass serve`, dependency
// free: one JSON object per line in each direction, two versions.
//
// v1 (legacy, still fully served — field absence selects it):
//   -> {"id":7,"kernel":"gemm","dtype":"i32","bytes":8192}
//   <- {"id":7,"ok":true,"cores":4,"cached":false,"micros":812.4}
//   -> {"kernel":"nope","dtype":"i32","bytes":64}
//   <- {"id":-1,"ok":false,"error":"unknown kernel 'nope'"}
//
// v2 (versioned envelope, command verbs, structured errors):
//   -> {"v":2,"id":7,"cmd":"predict","kernel":"gemm","dtype":"i32",
//       "bytes":8192}
//   <- {"v":2,"id":7,"ok":true,"cores":4,"cached":false,
//       "model_version":1,"micros":812.4}
//   -> {"v":2,"id":8,"cmd":"ping"}
//   <- {"v":2,"id":8,"ok":true,"pong":true}
//   -> {"v":2,"id":9,"cmd":"reload"}            // or "model":"/path"
//   <- {"v":2,"id":9,"ok":true,"model_version":2,"columns":20}
//   -> {"v":2,"id":10,"cmd":"metrics"}
//   <- {"v":2,"id":10,"ok":true,"metrics":{"total":{...},...}}
//   -> {"v":2,"cmd":"predict"}
//   <- {"v":2,"id":-1,"ok":false,
//       "error":{"code":"invalid_request","msg":"missing 'kernel'"}}
//
// Version negotiation is per line: a request carrying `"v":2` gets a v2
// reply, anything else is treated as v1 (so v1 clients — which ignore
// unknown keys by contract — never see a shape they cannot parse). The
// `cmd` field replaces v1's single implicit request shape: `predict`
// (the v1 semantics plus `model_version` attribution), `ping`
// (liveness), `metrics` (the server's full metrics document), and
// `reload` (publish a new model version; optional `model` path
// overrides the server's default). v2 errors are structured objects
// with a machine-readable `code` from a closed set (kErrorCode*) and a
// human `msg`; v1 errors stay bare strings, byte-identical to before.
//
// Unknown keys are ignored in both versions (forward compatibility).
// The parser accepts arbitrarily nested JSON values up to a fixed depth
// — small enough to audit, and a malformed line yields an error reply,
// never a dead server.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/service.hpp"

namespace pulpc::serve {

/// v2 structured error codes (the closed set clients may switch on).
inline constexpr const char* kErrorCodeParse = "parse_error";
inline constexpr const char* kErrorCodeInvalid = "invalid_request";
inline constexpr const char* kErrorCodeTooLarge = "too_large";
inline constexpr const char* kErrorCodeOverloaded = "overloaded";
inline constexpr const char* kErrorCodeTimeout = "timeout";
inline constexpr const char* kErrorCodePredict = "predict_failed";
inline constexpr const char* kErrorCodeReload = "reload_failed";
inline constexpr const char* kErrorCodeShutdown = "shutting_down";

/// A request as it appears on the wire (dtype still a string).
struct WireRequest {
  int v = 1;                    ///< protocol version (1 or 2)
  long long id = -1;
  std::string cmd = "predict";  ///< v2 verb; always "predict" for v1
  std::string kernel;
  std::string dtype;
  std::uint32_t bytes = 0;
  bool optimize = false;
  std::string model;            ///< v2 reload: optional model file path
};

/// A reply as it appears on the wire (for clients and tests).
struct WireReply {
  int v = 1;
  long long id = -1;
  bool ok = false;
  int cores = 0;
  bool cached = false;
  std::uint64_t model_version = 0;  ///< v2 predict/reload replies
  bool pong = false;                ///< v2 ping reply
  std::string error;                ///< v1 string, or v2 error.msg
  std::string error_code;           ///< v2 error.code ("" for v1)
  double micros = 0;
};

/// Parse one request line (either protocol version; see WireRequest::v).
/// Returns an empty string on success, else the parse/validation error
/// message. Messages prefixed "parse: " map to kErrorCodeParse, the
/// rest to kErrorCodeInvalid.
[[nodiscard]] std::string parse_request(std::string_view line,
                                        WireRequest* out);

/// Parse one reply line (the client side, both versions).
[[nodiscard]] std::string parse_reply(std::string_view line, WireReply* out);

/// "i32"/"f32" -> kir::DType. Returns false on anything else.
[[nodiscard]] bool parse_dtype(std::string_view s, kir::DType* out);

/// The v2 error code describing a failed service Result.
[[nodiscard]] const char* error_code_for(const Result& result);

/// One v1 reply line (no trailing newline) for a service Result.
/// Byte-identical to the pre-v2 server's output.
[[nodiscard]] std::string format_reply(long long id, const Result& result);

/// One v1 reply line for a request that never reached the service.
[[nodiscard]] std::string format_error_reply(long long id,
                                             const std::string& message);

/// One v2 predict reply line for a service Result (success carries
/// model_version; failure becomes a structured error via
/// error_code_for).
[[nodiscard]] std::string format_reply_v2(long long id,
                                          const Result& result);

/// One v2 structured error line: {"v":2,"id":N,"ok":false,
/// "error":{"code":code,"msg":message}}.
[[nodiscard]] std::string format_error_reply_v2(long long id,
                                                const char* code,
                                                const std::string& message);

/// Version-dispatching conveniences: v==2 selects the v2 shape, any
/// other value the v1 shape (so pre-parse failures on a v1 connection
/// stay v1).
[[nodiscard]] std::string format_reply_for(int v, long long id,
                                           const Result& result);
[[nodiscard]] std::string format_error_reply_for(int v, long long id,
                                                 const char* code,
                                                 const std::string& message);

/// JSON string escaping (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace pulpc::serve
