#include "serve/protocol.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace pulpc::serve {

namespace {

/// One parsed scalar value of a flat JSON object.
struct Value {
  enum class Kind { String, Number, Bool, Null } kind = Kind::Null;
  std::string str;
  double num = 0;
  bool b = false;
};

/// Minimal recursive-descent parser for exactly one flat JSON object.
/// `err` is set to a message on failure; positions are byte offsets.
class FlatParser {
 public:
  explicit FlatParser(std::string_view s) : s_(s) {}

  bool parse(std::map<std::string, Value>* out, std::string* err) {
    skip_ws();
    if (!eat('{')) return fail("expected '{'", err);
    skip_ws();
    if (eat('}')) return finish(err);
    for (;;) {
      Value key;
      if (!parse_string(&key.str)) return fail("expected key string", err);
      skip_ws();
      if (!eat(':')) return fail("expected ':'", err);
      Value val;
      if (!parse_value(&val)) return fail("bad value", err);
      (*out)[key.str] = std::move(val);
      skip_ws();
      if (eat(',')) {
        skip_ws();
        continue;
      }
      if (eat('}')) return finish(err);
      return fail("expected ',' or '}'", err);
    }
  }

 private:
  bool finish(std::string* err) {
    skip_ws();
    if (i_ != s_.size()) return fail("trailing bytes after object", err);
    return true;
  }

  bool fail(const char* what, std::string* err) {
    *err = std::string(what) + " at byte " + std::to_string(i_);
    return false;
  }

  void skip_ws() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }

  bool eat(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  bool parse_string(std::string* out) {
    skip_ws();
    if (!eat('"')) return false;
    out->clear();
    while (i_ < s_.size()) {
      const char c = s_[i_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (i_ >= s_.size()) return false;
        const char e = s_[i_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (i_ + 4 > s_.size()) return false;
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = s_[i_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else return false;
            }
            // Protocol strings are ASCII identifiers; anything above
            // is replaced rather than UTF-8 encoded.
            *out += code < 0x80 ? char(code) : '?';
            break;
          }
          default: return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      } else {
        *out += c;
      }
    }
    return false;  // unterminated
  }

  bool parse_value(Value* out) {
    skip_ws();
    if (i_ >= s_.size()) return false;
    const char c = s_[i_];
    if (c == '"') {
      out->kind = Value::Kind::String;
      return parse_string(&out->str);
    }
    if (c == 't') {
      if (s_.substr(i_, 4) != "true") return false;
      i_ += 4;
      out->kind = Value::Kind::Bool;
      out->b = true;
      return true;
    }
    if (c == 'f') {
      if (s_.substr(i_, 5) != "false") return false;
      i_ += 5;
      out->kind = Value::Kind::Bool;
      out->b = false;
      return true;
    }
    if (c == 'n') {
      if (s_.substr(i_, 4) != "null") return false;
      i_ += 4;
      out->kind = Value::Kind::Null;
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      const std::size_t start = i_;
      ++i_;
      while (i_ < s_.size() &&
             (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
              s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
              s_[i_] == '+' || s_[i_] == '-')) {
        ++i_;
      }
      const std::string text(s_.substr(start, i_ - start));
      char* end = nullptr;
      out->num = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size()) return false;
      out->kind = Value::Kind::Number;
      return true;
    }
    return false;  // nested objects/arrays are not part of the protocol
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

}  // namespace

bool parse_dtype(std::string_view s, kir::DType* out) {
  if (s == "i32") {
    *out = kir::DType::I32;
    return true;
  }
  if (s == "f32") {
    *out = kir::DType::F32;
    return true;
  }
  return false;
}

std::string parse_request(std::string_view line, WireRequest* out) {
  std::map<std::string, Value> obj;
  std::string err;
  if (!FlatParser(line).parse(&obj, &err)) return "parse: " + err;
  *out = WireRequest{};
  for (const auto& [key, v] : obj) {
    if (key == "id") {
      if (v.kind != Value::Kind::Number) return "'id' must be a number";
      out->id = static_cast<long long>(v.num);
    } else if (key == "kernel") {
      if (v.kind != Value::Kind::String) return "'kernel' must be a string";
      out->kernel = v.str;
    } else if (key == "dtype") {
      if (v.kind != Value::Kind::String) return "'dtype' must be a string";
      out->dtype = v.str;
    } else if (key == "bytes") {
      if (v.kind != Value::Kind::Number || v.num < 1 ||
          v.num > 4294967295.0 || v.num != std::floor(v.num)) {
        return "'bytes' must be a positive integer";
      }
      out->bytes = static_cast<std::uint32_t>(v.num);
    } else if (key == "optimize") {
      if (v.kind != Value::Kind::Bool) return "'optimize' must be a bool";
      out->optimize = v.b;
    }
    // Unknown keys: ignored (forward compatibility).
  }
  if (out->kernel.empty()) return "missing 'kernel'";
  kir::DType dt;
  if (!parse_dtype(out->dtype, &dt)) return "'dtype' must be \"i32\" or \"f32\"";
  if (out->bytes == 0) return "missing 'bytes'";
  return "";
}

std::string parse_reply(std::string_view line, WireReply* out) {
  std::map<std::string, Value> obj;
  std::string err;
  if (!FlatParser(line).parse(&obj, &err)) return "parse: " + err;
  *out = WireReply{};
  for (const auto& [key, v] : obj) {
    if (key == "id" && v.kind == Value::Kind::Number) {
      out->id = static_cast<long long>(v.num);
    } else if (key == "ok" && v.kind == Value::Kind::Bool) {
      out->ok = v.b;
    } else if (key == "cores" && v.kind == Value::Kind::Number) {
      out->cores = static_cast<int>(v.num);
    } else if (key == "cached" && v.kind == Value::Kind::Bool) {
      out->cached = v.b;
    } else if (key == "error" && v.kind == Value::Kind::String) {
      out->error = v.str;
    } else if (key == "micros" && v.kind == Value::Kind::Number) {
      out->micros = v.num;
    }
  }
  if (obj.find("ok") == obj.end()) return "missing 'ok'";
  return "";
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string format_reply(long long id, const Result& result) {
  char buf[160];
  if (result.ok) {
    std::snprintf(buf, sizeof buf,
                  "{\"id\":%lld,\"ok\":true,\"cores\":%d,\"cached\":%s,"
                  "\"micros\":%.1f}",
                  id, result.cores, result.cached ? "true" : "false",
                  result.micros);
    return buf;
  }
  std::snprintf(buf, sizeof buf, "{\"id\":%lld,\"ok\":false,\"error\":\"", id);
  return std::string(buf) + json_escape(result.error) + "\"}";
}

std::string format_error_reply(long long id, const std::string& message) {
  Result r;
  r.error = message;
  return format_reply(id, r);
}

}  // namespace pulpc::serve
