#include "serve/protocol.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

namespace pulpc::serve {

namespace {

/// One parsed JSON value. Objects keep insertion order (a vector of
/// pairs also sidesteps std::map's incomplete-type restrictions for the
/// recursive member).
struct Value {
  enum class Kind { String, Number, Bool, Null, Object, Array };
  Kind kind = Kind::Null;
  std::string str;
  double num = 0;
  bool b = false;
  std::vector<std::pair<std::string, Value>> obj;
  std::vector<Value> arr;

  [[nodiscard]] const Value* find(std::string_view key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Nesting bound: protocol objects are at most two levels deep
/// (metrics replies); anything deeper is hostile or broken input.
constexpr int kMaxDepth = 16;

/// Recursive-descent parser for exactly one JSON value per line.
/// `err` is set to a message on failure; positions are byte offsets.
class JsonParser {
 public:
  explicit JsonParser(std::string_view s) : s_(s) {}

  bool parse(Value* out, std::string* err) {
    skip_ws();
    if (i_ < s_.size() && s_[i_] != '{') return fail("expected '{'", err);
    if (!parse_value(out, 0, err)) return false;
    skip_ws();
    if (i_ != s_.size()) return fail("trailing bytes after object", err);
    return true;
  }

 private:
  bool fail(const char* what, std::string* err) {
    if (err->empty()) {
      *err = std::string(what) + " at byte " + std::to_string(i_);
    }
    return false;
  }

  void skip_ws() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }

  bool eat(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  bool parse_string(std::string* out) {
    skip_ws();
    if (!eat('"')) return false;
    out->clear();
    while (i_ < s_.size()) {
      const char c = s_[i_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (i_ >= s_.size()) return false;
        const char e = s_[i_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (i_ + 4 > s_.size()) return false;
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = s_[i_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else return false;
            }
            // Protocol strings are ASCII identifiers; anything above
            // is replaced rather than UTF-8 encoded.
            *out += code < 0x80 ? char(code) : '?';
            break;
          }
          default: return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      } else {
        *out += c;
      }
    }
    return false;  // unterminated
  }

  bool parse_object(Value* out, int depth, std::string* err) {
    out->kind = Value::Kind::Object;
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      std::string key;
      if (!parse_string(&key)) return fail("expected key string", err);
      skip_ws();
      if (!eat(':')) return fail("expected ':'", err);
      Value val;
      if (!parse_value(&val, depth, err)) return fail("bad value", err);
      out->obj.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (eat(',')) {
        skip_ws();
        continue;
      }
      if (eat('}')) return true;
      return fail("expected ',' or '}'", err);
    }
  }

  bool parse_array(Value* out, int depth, std::string* err) {
    out->kind = Value::Kind::Array;
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      Value val;
      if (!parse_value(&val, depth, err)) return fail("bad value", err);
      out->arr.push_back(std::move(val));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return true;
      return fail("expected ',' or ']'", err);
    }
  }

  bool parse_value(Value* out, int depth, std::string* err) {
    skip_ws();
    if (i_ >= s_.size()) return fail("unexpected end of input", err);
    const char c = s_[i_];
    if (c == '{' || c == '[') {
      if (depth + 1 > kMaxDepth) return fail("nesting too deep", err);
      ++i_;
      return c == '{' ? parse_object(out, depth + 1, err)
                      : parse_array(out, depth + 1, err);
    }
    if (c == '"') {
      out->kind = Value::Kind::String;
      if (!parse_string(&out->str)) return fail("bad string", err);
      return true;
    }
    if (c == 't') {
      if (s_.substr(i_, 4) != "true") return fail("bad value", err);
      i_ += 4;
      out->kind = Value::Kind::Bool;
      out->b = true;
      return true;
    }
    if (c == 'f') {
      if (s_.substr(i_, 5) != "false") return fail("bad value", err);
      i_ += 5;
      out->kind = Value::Kind::Bool;
      out->b = false;
      return true;
    }
    if (c == 'n') {
      if (s_.substr(i_, 4) != "null") return fail("bad value", err);
      i_ += 4;
      out->kind = Value::Kind::Null;
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      const std::size_t start = i_;
      ++i_;
      while (i_ < s_.size() &&
             (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
              s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
              s_[i_] == '+' || s_[i_] == '-')) {
        ++i_;
      }
      const std::string text(s_.substr(start, i_ - start));
      char* end = nullptr;
      out->num = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size()) return fail("bad number", err);
      out->kind = Value::Kind::Number;
      return true;
    }
    return fail("bad value", err);
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

/// Shared predict-field validation (identical messages for v1 and v2 —
/// v1 clients depend on the exact strings).
std::string validate_predict_fields(const Value& obj, WireRequest* out) {
  if (const Value* v = obj.find("kernel")) {
    if (v->kind != Value::Kind::String) return "'kernel' must be a string";
    out->kernel = v->str;
  }
  if (const Value* v = obj.find("dtype")) {
    if (v->kind != Value::Kind::String) return "'dtype' must be a string";
    out->dtype = v->str;
  }
  if (const Value* v = obj.find("bytes")) {
    if (v->kind != Value::Kind::Number || v->num < 1 ||
        v->num > 4294967295.0 || v->num != std::floor(v->num)) {
      return "'bytes' must be a positive integer";
    }
    out->bytes = static_cast<std::uint32_t>(v->num);
  }
  if (const Value* v = obj.find("optimize")) {
    if (v->kind != Value::Kind::Bool) return "'optimize' must be a bool";
    out->optimize = v->b;
  }
  if (out->kernel.empty()) return "missing 'kernel'";
  kir::DType dt;
  if (!parse_dtype(out->dtype, &dt)) {
    return "'dtype' must be \"i32\" or \"f32\"";
  }
  if (out->bytes == 0) return "missing 'bytes'";
  return "";
}

}  // namespace

bool parse_dtype(std::string_view s, kir::DType* out) {
  if (s == "i32") {
    *out = kir::DType::I32;
    return true;
  }
  if (s == "f32") {
    *out = kir::DType::F32;
    return true;
  }
  return false;
}

std::string parse_request(std::string_view line, WireRequest* out) {
  Value obj;
  std::string err;
  if (!JsonParser(line).parse(&obj, &err)) return "parse: " + err;
  *out = WireRequest{};

  if (const Value* v = obj.find("id")) {
    if (v->kind != Value::Kind::Number) return "'id' must be a number";
    out->id = static_cast<long long>(v->num);
  }
  if (const Value* v = obj.find("v")) {
    // The version key selects the schema; absence means v1 (pre-v2
    // clients never sent it).
    if (v->kind != Value::Kind::Number || v->num != std::floor(v->num)) {
      return "'v' must be an integer";
    }
    const auto ver = static_cast<long long>(v->num);
    if (ver != 1 && ver != 2) {
      return "unsupported protocol version " + std::to_string(ver);
    }
    out->v = static_cast<int>(ver);
  }

  if (out->v == 1) {
    // v1: the one implicit shape. Ignore any "cmd" key like every other
    // unknown key.
    return validate_predict_fields(obj, out);
  }

  // v2: dispatch on cmd (default "predict" keeps the minimal upgrade —
  // add "v":2 to a v1 request — valid).
  if (const Value* v = obj.find("cmd")) {
    if (v->kind != Value::Kind::String) return "'cmd' must be a string";
    out->cmd = v->str;
  }
  if (out->cmd == "predict") {
    return validate_predict_fields(obj, out);
  }
  if (out->cmd == "reload") {
    if (const Value* v = obj.find("model")) {
      if (v->kind != Value::Kind::String) return "'model' must be a string";
      out->model = v->str;
    }
    return "";
  }
  if (out->cmd == "metrics" || out->cmd == "ping") return "";
  return "unknown cmd '" + out->cmd + "'";
}

std::string parse_reply(std::string_view line, WireReply* out) {
  Value obj;
  std::string err;
  if (!JsonParser(line).parse(&obj, &err)) return "parse: " + err;
  *out = WireReply{};
  if (const Value* v = obj.find("v")) {
    if (v->kind == Value::Kind::Number) out->v = static_cast<int>(v->num);
  }
  if (const Value* v = obj.find("id")) {
    if (v->kind == Value::Kind::Number) {
      out->id = static_cast<long long>(v->num);
    }
  }
  if (const Value* v = obj.find("ok")) {
    if (v->kind == Value::Kind::Bool) out->ok = v->b;
  } else {
    return "missing 'ok'";
  }
  if (const Value* v = obj.find("cores")) {
    if (v->kind == Value::Kind::Number) out->cores = static_cast<int>(v->num);
  }
  if (const Value* v = obj.find("cached")) {
    if (v->kind == Value::Kind::Bool) out->cached = v->b;
  }
  if (const Value* v = obj.find("model_version")) {
    if (v->kind == Value::Kind::Number) {
      out->model_version = static_cast<std::uint64_t>(v->num);
    }
  }
  if (const Value* v = obj.find("pong")) {
    if (v->kind == Value::Kind::Bool) out->pong = v->b;
  }
  if (const Value* v = obj.find("micros")) {
    if (v->kind == Value::Kind::Number) out->micros = v->num;
  }
  if (const Value* v = obj.find("error")) {
    if (v->kind == Value::Kind::String) {
      out->error = v->str;  // v1 bare-string error
    } else if (v->kind == Value::Kind::Object) {
      // v2 structured error: {"code":...,"msg":...}
      if (const Value* code = v->find("code");
          code && code->kind == Value::Kind::String) {
        out->error_code = code->str;
      }
      if (const Value* msg = v->find("msg");
          msg && msg->kind == Value::Kind::String) {
        out->error = msg->str;
      }
    }
  }
  return "";
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

const char* error_code_for(const Result& result) {
  if (result.shed) return kErrorCodeOverloaded;
  if (result.error == "shutting down") return kErrorCodeShutdown;
  return kErrorCodePredict;
}

std::string format_reply(long long id, const Result& result) {
  char buf[160];
  if (result.ok) {
    std::snprintf(buf, sizeof buf,
                  "{\"id\":%lld,\"ok\":true,\"cores\":%d,\"cached\":%s,"
                  "\"micros\":%.1f}",
                  id, result.cores, result.cached ? "true" : "false",
                  result.micros);
    return buf;
  }
  std::snprintf(buf, sizeof buf, "{\"id\":%lld,\"ok\":false,\"error\":\"", id);
  return std::string(buf) + json_escape(result.error) + "\"}";
}

std::string format_error_reply(long long id, const std::string& message) {
  Result r;
  r.error = message;
  return format_reply(id, r);
}

std::string format_reply_v2(long long id, const Result& result) {
  if (!result.ok) {
    return format_error_reply_v2(id, error_code_for(result), result.error);
  }
  char buf[200];
  std::snprintf(buf, sizeof buf,
                "{\"v\":2,\"id\":%lld,\"ok\":true,\"cores\":%d,"
                "\"cached\":%s,\"model_version\":%llu,\"micros\":%.1f}",
                id, result.cores, result.cached ? "true" : "false",
                static_cast<unsigned long long>(result.model_version),
                result.micros);
  return buf;
}

std::string format_error_reply_v2(long long id, const char* code,
                                  const std::string& message) {
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "{\"v\":2,\"id\":%lld,\"ok\":false,\"error\":{\"code\":\"%s\","
                "\"msg\":\"",
                id, code);
  return std::string(buf) + json_escape(message) + "\"}}";
}

std::string format_reply_for(int v, long long id, const Result& result) {
  return v == 2 ? format_reply_v2(id, result) : format_reply(id, result);
}

std::string format_error_reply_for(int v, long long id, const char* code,
                                   const std::string& message) {
  return v == 2 ? format_error_reply_v2(id, code, message)
                : format_error_reply(id, message);
}

}  // namespace pulpc::serve
