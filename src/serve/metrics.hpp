// Built-in observability of the prediction service: monotonically
// increasing request/batch/cache counters plus a fixed-bucket latency
// histogram, all lock-free atomics so the hot path never serializes on a
// metrics mutex. A Snapshot is one consistent-enough read of every
// counter (individual loads are relaxed; exact cross-counter atomicity
// is not promised and not needed for monitoring) that serializes to a
// single JSON object — the `pulpclass serve` shutdown report and the
// service-level tests consume the same snapshot.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace pulpc::serve {

/// Latency histogram bucket upper bounds in microseconds (cumulative
/// style: a sample lands in the first bucket whose bound it does not
/// exceed; the extra last slot of Snapshot::latency_buckets is +inf).
inline constexpr std::array<double, 12> kLatencyBucketUs = {
    50,    100,   250,    500,    1000,   2500,
    5000, 10000, 25000, 50000, 100000, 250000};

class Metrics {
 public:
  struct Snapshot {
    std::uint64_t requests = 0;  ///< submitted, including shed ones
    std::uint64_t ok = 0;        ///< replies carrying a prediction
    std::uint64_t errors = 0;    ///< replies carrying an error (not shed)
    std::uint64_t shed = 0;      ///< rejected at max in-flight
    std::uint64_t batches = 0;   ///< micro-batches executed
    std::uint64_t max_batch = 0; ///< largest batch seen
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_evictions = 0;
    std::uint64_t in_flight = 0;  ///< gauge: queued + executing now
    std::uint64_t latency_count = 0;  ///< == ok + errors
    double latency_sum_us = 0;
    /// Per-bucket counts; index kLatencyBucketUs.size() is the +inf
    /// overflow bucket. Sums to latency_count.
    std::array<std::uint64_t, kLatencyBucketUs.size() + 1> latency_buckets{};

    /// The whole snapshot as one JSON object (stable key order).
    [[nodiscard]] std::string to_json() const;

    /// Accumulate another snapshot into this one (shard aggregation):
    /// counters and histogram buckets add, max_batch takes the max,
    /// in_flight sums (it is a gauge over disjoint shard queues).
    void merge(const Snapshot& other);
  };

  void on_request() noexcept { requests_.fetch_add(1, relaxed); }
  void on_shed() noexcept { shed_.fetch_add(1, relaxed); }
  /// Record a completed (non-shed) reply and its service-side latency.
  void on_reply(bool ok, double micros) noexcept;
  void on_batch(std::size_t size) noexcept;
  void on_cache(bool hit) noexcept {
    (hit ? cache_hits_ : cache_misses_).fetch_add(1, relaxed);
  }
  void on_eviction() noexcept { cache_evictions_.fetch_add(1, relaxed); }
  void set_in_flight(std::uint64_t n) noexcept {
    in_flight_.store(n, relaxed);
  }

  [[nodiscard]] Snapshot snapshot() const;

 private:
  static constexpr std::memory_order relaxed = std::memory_order_relaxed;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> cache_evictions_{0};
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> latency_count_{0};
  std::atomic<std::uint64_t> latency_sum_ns_{0};  ///< integer ns: portable add
  std::array<std::atomic<std::uint64_t>, kLatencyBucketUs.size() + 1>
      latency_buckets_{};
};

}  // namespace pulpc::serve
