#include "serve/registry.hpp"

#include <stdexcept>

#include "core/artifacts.hpp"
#include "core/env.hpp"

namespace pulpc::serve {

namespace {

std::uint64_t columns_key(const core::EnergyClassifier& clf) {
  std::string joined = "cols|";
  for (const std::string& c : clf.columns()) {
    joined += c;
    joined += '\n';
  }
  return core::fnv1a64(joined);
}

}  // namespace

ModelRegistry::ModelRegistry(core::EnergyClassifier initial,
                             std::optional<bool> use_flat)
    : use_flat_(use_flat) {
  (void)publish(std::move(initial));
}

std::shared_ptr<ModelRegistry> ModelRegistry::from_file(
    const std::string& path, std::optional<bool> use_flat) {
  return std::make_shared<ModelRegistry>(
      core::EnergyClassifier::load_file(path), use_flat);
}

std::uint64_t ModelRegistry::publish(core::EnergyClassifier clf) {
  if (!clf.trained()) {
    throw std::invalid_argument("ModelRegistry: classifier is not trained");
  }
  // Engine selection is a registry-wide property, applied before the
  // snapshot becomes visible (snapshots are immutable afterwards).
  clf.set_use_flat(core::env_flag(use_flat_, "PULPC_FLAT_PREDICT", true));
  const std::uint64_t key = columns_key(clf);

  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t version = next_version_++;
  auto snap =
      std::make_shared<const ModelSnapshot>(version, key, std::move(clf));
  history_.push_back(VersionInfo{version, key, snap->clf.columns().size(),
                                 snap->served});
  // The one swap readers ever observe: release pairs with the acquire
  // in current(), so a batcher that sees the new pointer also sees the
  // fully constructed snapshot behind it.
  current_.store(std::move(snap), std::memory_order_release);
  return version;
}

std::uint64_t ModelRegistry::reload(core::EnergyClassifier clf) {
  return publish(std::move(clf));
}

std::uint64_t ModelRegistry::reload_file(const std::string& path) {
  // load_file throws on any corruption before publish is reached: a bad
  // file can never unseat the serving model.
  return publish(core::EnergyClassifier::load_file(path));
}

std::size_t ModelRegistry::loaded_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return history_.size();
}

std::string ModelRegistry::models_json() const {
  const std::uint64_t live = current()->version;
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "[";
  for (std::size_t i = 0; i < history_.size(); ++i) {
    const VersionInfo& v = history_[i];
    if (i > 0) out += ",";
    out += "{\"version\":" + std::to_string(v.version) +
           ",\"columns\":" + std::to_string(v.columns) + ",\"served\":" +
           std::to_string(v.served->load(std::memory_order_relaxed)) +
           ",\"live\":" + (v.version == live ? "true" : "false") + "}";
  }
  return out + "]";
}

}  // namespace pulpc::serve
