#include "feat/features.hpp"

#include "kir/analysis.hpp"

namespace pulpc::feat {

std::vector<double> StaticFeatures::to_vector() const {
  std::vector<double> v = {op,     tcdm,   transfer, avgws, f1,
                           f3,     f4,     uopspc,   ipc,   rbp,
                           rp_div, rp_fpdiv};
  v.insert(v.end(), rp.begin(), rp.end());
  v.push_back(sb_best);
  for (unsigned k = 0; k < kBoundsConfigs; ++k) {
    v.push_back(sb_width[k]);
    v.push_back(sb_ewidth[k]);
    v.push_back(sb_bar[k]);
    v.push_back(sb_cont[k]);
  }
  return v;
}

std::vector<double> DynamicFeatures::to_vector() const {
  return {pe_idle, pe_sleep, pe_alu,  pe_fp,    pe_l1,
          pe_l2,   l1_idle,  l1_read, l1_write, l1_conflicts};
}

StaticFeatures extract_static(const kir::Program& prog,
                              const mca::MachineModel& mm) {
  StaticFeatures f;
  const kir::StaticCounts c = kir::static_counts(prog);
  f.op = c.op();
  f.tcdm = c.tcdm();
  f.transfer = kir::transfer_bytes(prog);
  f.avgws = kir::avg_parallel_iters(prog);
  f.f1 = f.op + f.tcdm > 0 ? f.transfer / (f.op + f.tcdm) : 0.0;
  f.f3 = f.avgws;
  f.f4 = f.tcdm > 0 ? f.op / f.tcdm : f.op;

  const mca::McaResult m = mca::analyze_program(prog, mm);
  f.uopspc = m.uops_per_cycle;
  f.ipc = m.ipc;
  f.rbp = m.rthroughput;
  f.rp_div = m.rp_div;
  f.rp_fpdiv = m.rp_fpdiv;
  f.rp = m.rp;

  // STATIC-BOUNDS: normalized widths and attribution ratios of the cost
  // analyzer's sound intervals. Unbounded configs degrade to width 1
  // (the least informative value) rather than infinities.
  const kir::CostReport rep = kir::analyze_cost(prog);
  f.sb_best = rep.best_cores_by_energy_hi();
  for (unsigned k = 0; k < kBoundsConfigs; ++k) {
    const kir::ConfigCost* c = rep.config(k + 1);
    if (c == nullptr) continue;
    if (!c->bounded || c->cycles.hi <= 0) {
      f.sb_width[k] = 1.0;
      f.sb_ewidth[k] = 1.0;
      continue;
    }
    const auto hi = static_cast<double>(c->cycles.hi);
    f.sb_width[k] = (hi - static_cast<double>(c->cycles.lo)) / hi;
    f.sb_ewidth[k] =
        c->energy_hi_fj > 0
            ? (c->energy_hi_fj - c->energy_lo_fj) / c->energy_hi_fj
            : 0.0;
    f.sb_bar[k] = static_cast<double>(c->barrier_cycles) / hi;
    f.sb_cont[k] = static_cast<double>(c->contention_hi) / hi;
  }
  return f;
}

DynamicFeatures extract_dynamic(const sim::RunStats& stats) {
  DynamicFeatures d;
  const auto T = static_cast<double>(stats.region_cycles());
  const double core_cycles = T * stats.ncores;
  double idle = 0;
  double sleep = 0;
  for (unsigned i = 0; i < stats.ncores && i < stats.core.size(); ++i) {
    const sim::CoreStats& c = stats.core[i];
    idle += static_cast<double>(c.idle_cycles);
    sleep += static_cast<double>(c.cyc_cg);
    d.pe_alu += static_cast<double>(c.n_alu + c.n_div);
    d.pe_fp += static_cast<double>(c.n_fp + c.n_fpdiv);
    d.pe_l1 += static_cast<double>(c.n_l1);
    d.pe_l2 += static_cast<double>(c.n_l2);
  }
  d.pe_idle = core_cycles > 0 ? idle / core_cycles : 0.0;
  d.pe_sleep = core_cycles > 0 ? sleep / core_cycles : 0.0;
  for (const sim::BankStats& b : stats.l1) {
    d.l1_read += static_cast<double>(b.reads);
    d.l1_write += static_cast<double>(b.writes);
    d.l1_conflicts += static_cast<double>(b.conflicts);
    const auto acc = static_cast<double>(b.accesses());
    if (T > acc) d.l1_idle += T - acc;
  }
  return d;
}

namespace {

const std::vector<std::string> kDynamicNames = {
    "PE_idle",  "PE_sleep", "PE_alu",   "PE_fp",       "PE_l1",
    "PE_l2",    "L1_idle",  "L1_read",  "L1_write",    "L1_conflicts"};

}  // namespace

const std::vector<std::string>& static_feature_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names = {
        "op",     "tcdm",   "transfer", "avgws", "F1",   "F3",   "F4",
        "uOPSpc", "IPC",    "RBP",      "RPDiv", "RPFPDiv",
        "RP0",    "RP1",    "RP2",      "RP3",   "RP4",  "RP5",  "RP6",
        "RP7"};
    names.emplace_back("SB_best");
    for (unsigned k = 1; k <= kBoundsConfigs; ++k) {
      const std::string at = "@" + std::to_string(k);
      names.push_back("SB_width" + at);
      names.push_back("SB_ewidth" + at);
      names.push_back("SB_bar" + at);
      names.push_back("SB_cont" + at);
    }
    return names;
  }();
  return kNames;
}

std::vector<std::string> dynamic_feature_names(unsigned num_configs) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(num_configs) * kDynamicPerConfig);
  for (unsigned k = 1; k <= num_configs; ++k) {
    for (const std::string& n : kDynamicNames) {
      names.push_back(n + "@" + std::to_string(k));
    }
  }
  return names;
}

const char* to_string(FeatureSet set) noexcept {
  switch (set) {
    case FeatureSet::Agg: return "AGG";
    case FeatureSet::RawAgg: return "RAW+AGG";
    case FeatureSet::Mca: return "MCA";
    case FeatureSet::AllStatic: return "ALL-STATIC";
    case FeatureSet::Dynamic: return "DYNAMIC";
    case FeatureSet::StaticBounds: return "STATIC-BOUNDS";
  }
  return "?";
}

std::vector<std::string> feature_set_columns(FeatureSet set,
                                             unsigned num_configs) {
  // The first kNumBaseStatic columns are the paper's Table II features;
  // SB_* columns follow and are only selected by the opt-in StaticBounds
  // set, so the paper-replication sets are unaffected by their addition.
  constexpr std::size_t kNumBaseStatic = 20;
  const std::vector<std::string>& s = static_feature_names();
  switch (set) {
    case FeatureSet::Agg:
      return {"F1", "F3", "F4"};
    case FeatureSet::RawAgg:
      return {s.begin(), s.begin() + 7};
    case FeatureSet::Mca:
      return {s.begin() + 7, s.begin() + kNumBaseStatic};
    case FeatureSet::AllStatic:
      return {s.begin(), s.begin() + kNumBaseStatic};
    case FeatureSet::Dynamic:
      return dynamic_feature_names(num_configs);
    case FeatureSet::StaticBounds:
      return {s.begin() + kNumBaseStatic, s.end()};
  }
  return {};
}

}  // namespace pulpc::feat
