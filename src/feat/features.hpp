// Feature extraction for the classifier.
//
//  * Static features (Table II): the RAW metrics of Grewe et al. adapted
//    to PULP (op, tcdm, transfer, avgws), their AGG combinations
//    (F1 = transfer/(op+tcdm), F3 = avgws, F4 = op/tcdm), and the 13
//    machine-code-analyser metrics of Table IIb. All are computed at
//    compile time from the KIR.
//  * Dynamic features (Table III): per-run summaries of the execution
//    traces (PE idle/sleep fractions, opcode counts, TCDM bank activity),
//    collected once per core-count configuration.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "kir/costmodel.hpp"
#include "kir/ir.hpp"
#include "mca/analyzer.hpp"
#include "sim/stats.hpp"

namespace pulpc::feat {

/// Number of per-configuration dynamic features (Table III rows).
inline constexpr int kDynamicPerConfig = 10;

/// Core counts covered by the static-bounds features (mirrors the
/// analyzer's CostParams::max_cores default and the dataset's 8 runs).
inline constexpr unsigned kBoundsConfigs = 8;

/// Number of per-configuration static-bounds features.
inline constexpr int kBoundsPerConfig = 4;

/// Compile-time features of one kernel (one dataset sample).
struct StaticFeatures {
  // RAW (Table IIa).
  double op = 0;        ///< # ALU, FP and JUMP opcodes (trip-weighted)
  double tcdm = 0;      ///< # TCDM accesses (trip-weighted)
  double transfer = 0;  ///< bytes of data the kernel works on
  double avgws = 0;     ///< average iterations of parallel regions
  // AGG (Table IIa).
  double f1 = 0;  ///< transfer / (op + tcdm)
  double f3 = 0;  ///< avgws
  double f4 = 0;  ///< op / tcdm
  // MCA (Table IIb).
  double uopspc = 0;
  double ipc = 0;
  double rbp = 0;
  double rp_div = 0;
  double rp_fpdiv = 0;
  std::array<double, mca::kNumPorts> rp{};
  // STATIC-BOUNDS: derived from the kir cost analyzer's sound [lo, hi]
  // cycle/energy intervals -- still compile-time (no simulation).
  double sb_best = 0;  ///< core count minimizing the energy upper bound
  std::array<double, kBoundsConfigs> sb_width{};   ///< (cyc hi-lo)/hi
  std::array<double, kBoundsConfigs> sb_ewidth{};  ///< (energy hi-lo)/hi
  std::array<double, kBoundsConfigs> sb_bar{};     ///< barrier bound / hi
  std::array<double, kBoundsConfigs> sb_cont{};    ///< contention bound / hi

  [[nodiscard]] std::vector<double> to_vector() const;
};

/// Dynamic features of one run at one core count (Table III).
struct DynamicFeatures {
  double pe_idle = 0;   ///< fraction of core cycles lost to contention or
                        ///< multi-cycle instructions
  double pe_sleep = 0;  ///< fraction of core cycles in clock gating
  double pe_alu = 0;    ///< ALU opcodes executed (cluster total)
  double pe_fp = 0;     ///< FPU opcodes executed
  double pe_l1 = 0;     ///< TCDM-access opcodes
  double pe_l2 = 0;     ///< off-cluster-access opcodes
  double l1_idle = 0;       ///< TCDM bank idle cycles
  double l1_read = 0;       ///< TCDM bank read requests
  double l1_write = 0;      ///< TCDM bank write requests
  double l1_conflicts = 0;  ///< same-cycle colliding TCDM requests

  [[nodiscard]] std::vector<double> to_vector() const;
};

/// Extract all static features from a lowered kernel.
[[nodiscard]] StaticFeatures extract_static(const kir::Program& prog,
                                            const mca::MachineModel& mm = {});

/// Summarise one run's statistics into Table III dynamic features.
[[nodiscard]] DynamicFeatures extract_dynamic(const sim::RunStats& stats);

/// Column names, in the exact order of the corresponding to_vector().
[[nodiscard]] const std::vector<std::string>& static_feature_names();
/// Dynamic columns for configurations 1..num_configs, named
/// "<metric>@<cores>" (the paper's "PE_sleep, PEs=8" notation).
[[nodiscard]] std::vector<std::string> dynamic_feature_names(
    unsigned num_configs);

/// Named feature sets evaluated in Figure 2.
enum class FeatureSet {
  Agg,           ///< F1, F3, F4 (the paper's first experiment)
  RawAgg,        ///< RAW + AGG
  Mca,           ///< the 13 LLVM-MCA-style metrics
  AllStatic,     ///< RAW + AGG + MCA
  Dynamic,       ///< Table III metrics for every core count
  StaticBounds,  ///< opt-in: cost-analyzer bound widths & ratios
};

[[nodiscard]] const char* to_string(FeatureSet set) noexcept;

/// Column names belonging to a feature set, given `num_configs` dynamic
/// configurations.
[[nodiscard]] std::vector<std::string> feature_set_columns(
    FeatureSet set, unsigned num_configs = 8);

}  // namespace pulpc::feat
