// The paper's end-to-end workflow (Figure 1):
//  (A) static feature extraction on every dataset sample,
//  (B/C) cycle-accurate simulation of each sample at 1..8 cores,
//  (D) integration of the Table I energy model over the execution
//      activity,
//  (E) labelling each sample with its minimum-energy core count,
//  (F) assembly of the labelled feature dataset for the decision tree.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "energy/model.hpp"
#include "feat/features.hpp"
#include "mca/machine.hpp"
#include "ml/dataset.hpp"
#include "sim/config.hpp"

namespace pulpc::core {

/// One (kernel, type, size) dataset point.
struct SampleConfig {
  std::string kernel;
  kir::DType dtype = kir::DType::I32;
  std::uint32_t size_bytes = 0;
};

struct BuildOptions {
  sim::ClusterConfig cluster;
  mca::MachineModel mca;
  energy::EnergyModel energy;
  /// Sweep configurations 1..max_cores (the paper: all 8).
  unsigned max_cores = 8;
  /// Worker threads for build_dataset; 0 resolves via PULPC_THREADS /
  /// hardware_concurrency (see core/parallel.hpp), 1 forces the serial
  /// path. Any count produces a byte-identical dataset.
  unsigned threads = 0;
};

/// Column names of the assembled dataset: the 20 static features followed
/// by the Table III dynamic features for each core count.
[[nodiscard]] std::vector<std::string> dataset_columns(
    unsigned max_cores = 8);

/// Build one labelled sample. Throws std::runtime_error if the kernel
/// fails to lower or simulate.
[[nodiscard]] ml::Sample build_sample(const SampleConfig& cfg,
                                      const BuildOptions& opt = {});

/// Build a labelled sample from an already-lowered (possibly optimised)
/// program, with explicit metadata. Used by the compiler-optimisation
/// ablation and by users bringing their own KIR.
[[nodiscard]] ml::Sample build_sample_from_program(
    const kir::Program& prog, const SampleConfig& cfg,
    const std::string& suite, const BuildOptions& opt = {});

/// All 448 sample configurations of the paper's dataset (59 kernels,
/// both supported element types, 4 problem sizes).
[[nodiscard]] std::vector<SampleConfig> dataset_configs();

/// Build a dataset over an explicit configuration list. Samples are
/// simulated in parallel across `opt.threads` workers (one sim::Cluster
/// per task) but always land in `configs` order, so the result — and its
/// saved CSV — is byte-identical for every thread count. `progress(done,
/// total)` is invoked once per completed sample with a strictly
/// monotonic `done`; calls are serialized by a mutex.
[[nodiscard]] ml::Dataset build_dataset(
    const std::vector<SampleConfig>& configs, const BuildOptions& opt = {},
    const std::function<void(std::size_t, std::size_t)>& progress = {});

/// Build the full paper dataset (dataset_configs()).
[[nodiscard]] ml::Dataset build_dataset(
    const BuildOptions& opt = {},
    const std::function<void(std::size_t, std::size_t)>& progress = {});

/// Load the dataset from the cache file if present, otherwise build it
/// (over `configs` when given, else dataset_configs()) and save it
/// there. A cache with a stale column layout or a corrupt/truncated row
/// is discarded and rebuilt, not fatal. The path defaults to
/// "pulpclass_dataset.csv" in the current directory and can be
/// overridden with the PULPC_DATASET_CACHE environment variable (an
/// empty value disables caching).
[[nodiscard]] ml::Dataset load_or_build_dataset(
    const std::vector<SampleConfig>& configs, const BuildOptions& opt = {},
    const std::function<void(std::size_t, std::size_t)>& progress = {});
[[nodiscard]] ml::Dataset load_or_build_dataset(
    const BuildOptions& opt = {},
    const std::function<void(std::size_t, std::size_t)>& progress = {});

}  // namespace pulpc::core
