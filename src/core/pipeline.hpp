// The paper's end-to-end workflow (Figure 1), decomposed into explicit
// first-class stages:
//  Lower     (A)   kernel spec -> KIR program (+ static features),
//  Simulate  (B/C) cycle-accurate runs at 1..max_cores producing raw
//                  sim::RunStats activity counters,
//  Label     (D/E) pure integration of the Table I energy model over the
//                  counters + argmin-energy core count,
//  Featurize (A/F) static Table II features of the program + dynamic
//                  Table III features of each run's counters,
//  Assemble  (F)   one labelled ml::Sample / the labelled ml::Dataset.
//
// Simulate is the only expensive stage (hours for the full 448-sample
// sweep); its raw counters can be persisted in a core::ArtifactStore
// (artifacts.hpp) so Label and Featurize replay in milliseconds when the
// energy model or feature code changes (core::relabel).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "energy/model.hpp"
#include "feat/features.hpp"
#include "mca/machine.hpp"
#include "ml/dataset.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"

namespace pulpc::core {

/// One (kernel, type, size) dataset point.
struct SampleConfig {
  std::string kernel;
  kir::DType dtype = kir::DType::I32;
  std::uint32_t size_bytes = 0;
};

/// Per-stage wall-clock and throughput instrumentation of one dataset
/// build or replay, accumulated across all worker threads and delivered
/// once through BuildOptions::stage_report.
struct StageReport {
  std::size_t samples = 0;         ///< configurations processed
  std::size_t simulated_runs = 0;  ///< (sample, core-count) pairs simulated
  std::size_t replayed_runs = 0;   ///< pairs replayed from the artifact store
  /// KIR verifier diagnostics across all lowered programs (see
  /// BuildOptions::verify; errors abort the sample, so a completed build
  /// always reports verify_errors == 0).
  std::size_t verify_errors = 0;
  std::size_t verify_warnings = 0;
  std::size_t verify_notes = 0;
  /// Total cluster cycles produced by fresh simulations (replays add
  /// nothing here), and the subset covered by event-driven fast-forward
  /// jumps (sim::SimOptions::fast_forward). simulated_cycles /
  /// simulate_seconds is the headline simulated-cycles-per-second figure
  /// in summary().
  std::uint64_t simulated_cycles = 0;
  std::uint64_t ff_cycles = 0;
  double lower_seconds = 0;
  double verify_seconds = 0;     ///< KIR verifier passes
  double simulate_seconds = 0;   ///< includes artifact save/load time
  double label_seconds = 0;      ///< Table I energy integration
  double featurize_seconds = 0;  ///< static + dynamic feature extraction
  double assemble_seconds = 0;

  [[nodiscard]] double total_seconds() const noexcept {
    return lower_seconds + verify_seconds + simulate_seconds +
           label_seconds + featurize_seconds + assemble_seconds;
  }
  /// One-line summary ("59 samples, 472 sim + 0 replay, ...s").
  [[nodiscard]] std::string summary() const;
};

struct BuildOptions {
  sim::ClusterConfig cluster;
  /// Simulator execution options (fast-forwarding etc.). Speed-only:
  /// every combination produces byte-identical counters and labels.
  sim::SimOptions sim;
  mca::MachineModel mca;
  energy::EnergyModel energy;
  /// Sweep configurations 1..max_cores (the paper: all 8).
  unsigned max_cores = 8;
  /// Worker threads for build_dataset; 0 resolves via PULPC_THREADS /
  /// hardware_concurrency (see core/parallel.hpp), 1 forces the serial
  /// path. Any count produces a byte-identical dataset.
  unsigned threads = 0;
  /// Dataset CSV cache path for load_or_build_dataset. Unset falls back
  /// to the PULPC_DATASET_CACHE environment variable, then to
  /// "pulpclass_dataset.csv"; an explicit (or env) empty string disables
  /// the CSV cache.
  std::optional<std::string> cache_path;
  /// Raw-counter artifact store directory (see core/artifacts.hpp).
  /// Unset falls back to the PULPC_ARTIFACT_DIR environment variable; an
  /// empty value (explicit or env) disables the store. When enabled,
  /// build_dataset replays any valid stored counters and persists the
  /// ones it simulates.
  std::optional<std::string> artifact_dir;
  /// Artifact store backend, "v1" (per-file text) or "v2" (binary
  /// segments; see core/artifacts.hpp). Unset falls back to the
  /// PULPC_STORE_FORMAT environment variable, then to auto-detection
  /// from the store directory contents.
  std::optional<std::string> store_format;
  /// Invoked once at the end of build_dataset / relabel with the
  /// per-stage wall-clock totals (the progress callback's `done/total`
  /// companion for stage-level throughput).
  std::function<void(const StageReport&)> stage_report;
  /// Run the KIR verifier (kir::verify_program) on every lowered program
  /// before simulation. A sample whose program carries error-severity
  /// diagnostics is refused — std::runtime_error with the full report —
  /// rather than silently labelled; warning/note counts land in the
  /// StageReport and, with an artifact store configured, each diagnosed
  /// sample gets a .diag sidecar next to its counters.
  bool verify = true;
};

/// Column names of the assembled dataset: the 20 static features followed
/// by the Table III dynamic features for each core count.
[[nodiscard]] std::vector<std::string> dataset_columns(
    unsigned max_cores = 8);

// ---- pipeline stages ---------------------------------------------------

/// Stage Lower: kernel spec -> verified KIR program. Throws
/// std::invalid_argument for unknown kernels.
[[nodiscard]] kir::Program lower_sample(const SampleConfig& cfg);

/// Stage Simulate: run the program at 1..opt.max_cores and return the
/// raw activity counters (index c-1). Throws std::runtime_error when a
/// run faults.
[[nodiscard]] std::vector<sim::RunStats> simulate_sample(
    const kir::Program& prog, const SampleConfig& cfg,
    const BuildOptions& opt = {});

/// Stage Label output: per-core-count energy/cycles and the argmin label.
struct SampleLabel {
  std::vector<double> energy;  ///< femtojoules per core count (index c-1)
  std::vector<double> cycles;  ///< kernel-region cycles per core count
  int label = 0;               ///< minimum-energy core count (1-based)
};

/// Stage Label: pure Table I integration over stored counters — no
/// simulation, so swapping the EnergyModel and relabelling is free.
[[nodiscard]] SampleLabel label_sample(
    const std::vector<sim::RunStats>& runs,
    const energy::EnergyModel& model = {});

/// Stage Featurize: static (Table II) features of the program followed by
/// dynamic (Table III) features of every run, pure over the counters.
[[nodiscard]] std::vector<double> featurize_sample(
    const kir::Program& prog, const std::vector<sim::RunStats>& runs,
    const mca::MachineModel& mm = {});

/// Stage Assemble: combine the stage outputs into one dataset row.
[[nodiscard]] ml::Sample assemble_sample(const SampleConfig& cfg,
                                         const std::string& suite,
                                         const SampleLabel& label,
                                         std::vector<double> features);

// ---- composed pipeline -------------------------------------------------

/// Build one labelled sample. Throws std::runtime_error if the kernel
/// fails to lower or simulate.
[[nodiscard]] ml::Sample build_sample(const SampleConfig& cfg,
                                      const BuildOptions& opt = {});

/// Build a labelled sample from an already-lowered (possibly optimised)
/// program, with explicit metadata. Used by the compiler-optimisation
/// ablation and by users bringing their own KIR.
[[nodiscard]] ml::Sample build_sample_from_program(
    const kir::Program& prog, const SampleConfig& cfg,
    const std::string& suite, const BuildOptions& opt = {});

/// All 448 sample configurations of the paper's dataset (59 kernels,
/// both supported element types, 4 problem sizes).
[[nodiscard]] std::vector<SampleConfig> dataset_configs();

/// Build a dataset over an explicit configuration list. Samples are
/// simulated in parallel across `opt.threads` workers (one sim::Cluster
/// per task) but always land in `configs` order, so the result — and its
/// saved CSV — is byte-identical for every thread count. `progress(done,
/// total)` is invoked once per completed sample with a strictly
/// monotonic `done`; calls are serialized by a mutex. With an artifact
/// store configured (opt.artifact_dir / PULPC_ARTIFACT_DIR), stored
/// counters are replayed instead of re-simulated and fresh simulations
/// are persisted.
[[nodiscard]] ml::Dataset build_dataset(
    const std::vector<SampleConfig>& configs, const BuildOptions& opt = {},
    const std::function<void(std::size_t, std::size_t)>& progress = {});

/// Build the full paper dataset (dataset_configs()).
[[nodiscard]] ml::Dataset build_dataset(
    const BuildOptions& opt = {},
    const std::function<void(std::size_t, std::size_t)>& progress = {});

/// Load the dataset from the cache file if present, otherwise build it
/// (over `configs` when given, else dataset_configs()) and save it
/// there. A cache written by a different dataset schema version, with a
/// stale column layout, or with a corrupt/truncated row is discarded and
/// rebuilt, not fatal. The path resolves through opt.cache_path, then
/// the PULPC_DATASET_CACHE environment variable, then
/// "pulpclass_dataset.csv" (an empty value disables caching).
[[nodiscard]] ml::Dataset load_or_build_dataset(
    const std::vector<SampleConfig>& configs, const BuildOptions& opt = {},
    const std::function<void(std::size_t, std::size_t)>& progress = {});
[[nodiscard]] ml::Dataset load_or_build_dataset(
    const BuildOptions& opt = {},
    const std::function<void(std::size_t, std::size_t)>& progress = {});

}  // namespace pulpc::core
