// Segment engine of the v2 artifact store: append-only single-file
// segments of fixed-size, page-aligned binary records read via mmap.
//
// On-disk layout (all integers little-endian/native u64 words; the store
// is a cache of locally produced counters, not an interchange format):
//
//   <dir>/seg-<seq:016x>-<pid>.pseg     sealed, immutable record segments
//   <dir>/active-<pid>.pseg             this process's unsealed segment
//   <dir>/diag-<seq:016x>-<pid>.pdia    verifier-report (diag) segments
//   <dir>/store.idx                     open-addressed key -> slot index
//
// A record segment starts with one 4 KiB header page (magic, record
// format version, store fingerprint, slot size, record count hint)
// followed by records at fixed slot_bytes strides, each slot one or more
// whole pages. A record carries the store fingerprint, the lowered
// program hash, its full sample identity (kernel name, dtype, size,
// core count), an 8-lane interleaved FNV-1a checksum over
// header+payload (independent lanes overlap the FNV multiplies so the
// integrity scan runs near memory speed), and the packed
// sim::RunStats counters as raw u64 words — loading is an index probe,
// an identity/checksum verify and a word-copy; no text parsing.
//
// Durability/crash-safety argument (DESIGN.md §10):
//  * save() appends one whole slot to the active segment. A crash can
//    only truncate the *tail* slot; a partial or torn slot fails its
//    checksum and is ignored (re-simulated), never trusted.
//  * Sealing is a rename (atomic on POSIX); sealed segments are
//    immutable thereafter.
//  * The index is advisory: it is rewritten via tmp+rename on flush and
//    validated against the directory on open (fingerprint, listed
//    segment names and byte sizes). Any mismatch falls back to scanning
//    the unindexed segments — a stale index is a slower open, never a
//    wrong answer.
//  * compact() writes replacement segments and a fresh index before
//    deleting the originals; a crash in between leaves duplicates that
//    last-write-wins resolution and the next compact clean up.
//
// Concurrency: one mutex serializes every operation on a SegmentStore;
// core::ArtifactStore shares one engine across copies. Concurrent
// *processes* append to distinct active segments (pid-suffixed names)
// and see each other's sealed records on (re)open.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/stats.hpp"

namespace pulpc::core {

/// Full identity of one stored record. The dtype travels as its
/// canonical rendering ("i32"/"f32") so this layer needs no KIR types.
struct SegmentKey {
  std::string kernel;
  std::string dtype;
  std::uint32_t size_bytes = 0;
  unsigned ncores = 0;  ///< 0 for diag entries (keyed per sample, not per run)
};

class SegmentStore {
 public:
  /// Open (creating if needed) the segment store at `dir`. `fingerprint`
  /// is the ArtifactStore platform fingerprint every record is stamped
  /// with; `payload_capacity` is the largest packed-RunStats word count
  /// a record slot must hold (derived from the cluster geometry, which
  /// the fingerprint pins — every record of one store has one size).
  /// Throws std::runtime_error when the directory cannot be created.
  SegmentStore(std::string dir, std::uint64_t fingerprint,
               std::size_t payload_capacity);
  ~SegmentStore();
  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// Load the record for `key`. False — caller re-simulates — when the
  /// record is missing, fails its checksum, carries another fingerprint
  /// or (with `check_prog`) another program hash.
  [[nodiscard]] bool load(const SegmentKey& key, std::uint64_t prog_hash,
                          bool check_prog, sim::RunStats* out);

  /// True when load() would succeed structurally (identity + checksum;
  /// program hash not consulted).
  [[nodiscard]] bool contains(const SegmentKey& key);

  /// Append one record (last write wins for duplicate keys). Throws
  /// std::runtime_error on I/O failure or a payload beyond capacity.
  void save(const SegmentKey& key, std::uint64_t prog_hash,
            const sim::RunStats& stats);

  /// Append a verifier-report record for the sample (key.ncores == 0).
  /// Empty text appends a tombstone only when a live report exists.
  void save_diag(const SegmentKey& key, const std::string& text);

  /// Per-segment census row.
  struct SegmentInfo {
    std::string name;
    std::size_t records = 0;
    std::size_t valid = 0;
    std::size_t foreign = 0;
    std::size_t corrupt = 0;
    std::uintmax_t bytes = 0;
  };
  struct Census {
    std::size_t records = 0;  ///< record slots across every segment
    std::size_t valid = 0;
    std::size_t foreign = 0;
    std::size_t corrupt = 0;
    std::size_t diag_records = 0;  ///< diag entries incl. tombstones
    std::uintmax_t bytes = 0;      ///< total segment file bytes
    std::vector<SegmentInfo> segments;
  };
  [[nodiscard]] Census scan();

  /// Rewrite every live record (latest valid version per key) into fresh
  /// segments, dropping foreign/corrupt/superseded records, diag
  /// tombstones and diag entries whose sample no longer exists. Returns
  /// the number of records dropped. Not safe concurrently with writers
  /// in other processes.
  std::size_t compact();

  /// Seal the active segment (if any) and rewrite the index so another
  /// process — or a crash-interrupted successor — opens in O(1).
  void flush();

  /// Invoke `fn` for every live record's identity and program hash (one
  /// sequential pass over the mmap'd segments; diag entries excluded).
  void for_each(
      const std::function<void(const SegmentKey&, std::uint64_t)>& fn);

  [[nodiscard]] std::size_t slot_bytes() const noexcept { return slot_; }

 private:
  struct Mapping;
  struct Seg {
    std::string name;
    std::uintmax_t size = 0;
    std::size_t records = 0;
    std::size_t slot = 0;        ///< from the segment header page
    bool readable = false;       ///< header page parsed successfully
    bool foreign = false;        ///< header fingerprint != ours
    std::shared_ptr<Mapping> map;  ///< lazily established
  };
  struct Loc {
    std::uint32_t seg = 0;  ///< kActiveSeg -> active file, else segs_ index
    std::uint32_t slot = 0;
  };

  [[nodiscard]] std::string path(const std::string& name) const;
  void open_dir_locked();
  bool load_index_locked();
  void scan_segment_into_overlay_locked(std::uint32_t seg_idx);
  const std::uint8_t* map_segment_locked(std::uint32_t seg_idx);
  [[nodiscard]] bool fetch_locked(const Loc& loc,
                                  std::vector<std::uint8_t>* buf,
                                  const std::uint8_t** out);
  [[nodiscard]] bool lookup_locked(std::uint64_t key_hash, Loc* out) const;
  void seal_active_locked();
  void write_index_locked();
  void ensure_diags_loaded_locked();
  void append_diag_locked(const SegmentKey& key, const std::string& text,
                          bool tombstone);
  [[nodiscard]] std::uint64_t next_seq_locked();

  std::string dir_;
  std::uint64_t fp_ = 0;
  std::size_t slot_ = 0;

  std::mutex mu_;
  std::vector<Seg> segs_;
  std::shared_ptr<Mapping> index_;  ///< validated store.idx (may be null)
  std::size_t index_segments_ = 0;  ///< prefix of segs_ the index covers
  std::unordered_map<std::uint64_t, Loc> overlay_;  ///< beats the index

  int active_fd_ = -1;
  std::string active_name_;
  std::uint32_t active_records_ = 0;

  // Diag state, loaded lazily on the first diag operation (keeps open
  // O(1) for stores that never carry verifier reports).
  struct DiagState {
    SegmentKey key;
    std::string text;
    bool tombstone = false;
  };
  bool diags_loaded_ = false;
  std::unordered_map<std::uint64_t, DiagState> diags_;
  int diag_fd_ = -1;
  std::string diag_active_name_;
  std::size_t diag_file_records_ = 0;  ///< records in on-disk .pdia files
};

/// FNV-1a hash of a record key ("rec|kernel|dtype|size|ncores") — the
/// probe key of the index and overlay.
[[nodiscard]] std::uint64_t segment_key_hash(const SegmentKey& key);

/// Diag variant ("diag|kernel|dtype|size"; ncores ignored).
[[nodiscard]] std::uint64_t segment_diag_hash(const SegmentKey& key);

/// Packed size (in u64 words) of a RunStats with the given geometry —
/// what SegmentStore's payload_capacity should be for a cluster with
/// `cores` cores, `l1`/`l2` banks and `fpus` FPUs.
[[nodiscard]] std::size_t packed_stats_words(std::size_t cores,
                                             std::size_t l1, std::size_t l2,
                                             std::size_t fpus);

}  // namespace pulpc::core
