#include "core/classifier.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "core/env.hpp"
#include "dsl/lower.hpp"

namespace pulpc::core {

EnergyClassifier::EnergyClassifier(Options options)
    : options_(std::move(options)) {
  use_flat_ = env_flag(options_.use_flat, "PULPC_FLAT_PREDICT", true);
  columns_ = options_.columns.empty()
                 ? feat::feature_set_columns(options_.features)
                 : options_.columns;
  const std::vector<std::string>& statics = feat::static_feature_names();
  column_indices_.reserve(columns_.size());
  for (const std::string& col : columns_) {
    const auto it = std::find(statics.begin(), statics.end(), col);
    if (it == statics.end()) {
      throw std::invalid_argument(
          "EnergyClassifier: '" + col +
          "' is not a static feature; compile-time prediction cannot use "
          "dynamic features");
    }
    column_indices_.push_back(
        static_cast<std::size_t>(it - statics.begin()));
  }
}

void EnergyClassifier::train(const ml::Dataset& dataset) {
  const ml::Matrix x = dataset.matrix(columns_);
  ml::DecisionTree tree(options_.tree);
  tree.fit(x, dataset.labels());
  tree_ = std::move(tree);
  flat_ = ml::FlatTree(tree_);
}

int EnergyClassifier::predict(const kir::Program& prog) const {
  return predict_row(feature_row(prog));
}

std::vector<double> EnergyClassifier::feature_row(
    const kir::Program& prog) const {
  const feat::StaticFeatures sf = feat::extract_static(prog, options_.mca);
  const std::vector<double> all = sf.to_vector();
  std::vector<double> row;
  row.reserve(column_indices_.size());
  for (const std::size_t i : column_indices_) row.push_back(all[i]);
  return row;
}

int EnergyClassifier::predict_row(std::span<const double> row) const {
  if (!trained()) {
    throw std::logic_error("EnergyClassifier::predict: train() first");
  }
  if (use_flat_ && flat_.trained()) return flat_.predict(row);
  return tree_.predict(row);
}

std::vector<int> EnergyClassifier::predict_rows(const ml::Matrix& x) const {
  if (!trained()) {
    throw std::logic_error("EnergyClassifier::predict_rows: train() first");
  }
  if (x.cols != columns_.size()) {
    throw std::invalid_argument(
        "EnergyClassifier::predict_rows: matrix has " +
        std::to_string(x.cols) + " columns, classifier expects " +
        std::to_string(columns_.size()));
  }
  if (use_flat_ && flat_.trained()) return flat_.predict_batch(x);
  return tree_.predict_batch(x);
}

int EnergyClassifier::predict(const dsl::KernelSpec& spec) const {
  return predict(dsl::lower(spec));
}

std::string EnergyClassifier::explain() const {
  return tree_.to_string(columns_);
}

void EnergyClassifier::save(std::ostream& out) const {
  if (!trained()) {
    throw std::logic_error("EnergyClassifier::save: train() first");
  }
  // v2 = v1 (columns + tree) plus the flattened inference section, so a
  // loaded model serves from the flat path without a re-flatten and the
  // loader can cross-check the two sections against each other.
  out << "pulpc-classifier v2\n";
  out << columns_.size() << '\n';
  for (const std::string& c : columns_) out << c << '\n';
  tree_.save(out);
  flat_.save(out);
}

void EnergyClassifier::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("EnergyClassifier: cannot write " + path);
  }
  save(out);
}

EnergyClassifier EnergyClassifier::load(std::istream& in,
                                        const std::string& source) {
  // Every failure names the source and the byte offset where parsing
  // stopped, so a truncated or hand-edited model file is diagnosable
  // instead of a bare "bad header". tellg() needs a clean stream, so
  // clear error bits before querying it.
  const auto offset = [&in]() -> long long {
    in.clear();
    const auto pos = in.tellg();
    return pos < 0 ? 0 : static_cast<long long>(pos);
  };
  const auto fail = [&](const std::string& what) {
    throw std::runtime_error("EnergyClassifier::load: " + source + ": " +
                             what + " at offset " +
                             std::to_string(offset()));
  };

  std::string line;
  if (!std::getline(in, line)) fail("empty or unreadable model");
  const bool v2 = line == "pulpc-classifier v2";
  if (!v2 && line != "pulpc-classifier v1") {
    if (line.rfind("pulpc-classifier", 0) == 0) {
      fail("unsupported model version '" + line +
           "' (this build reads v1/v2)");
    }
    fail("bad header (not a pulpclass model)");
  }
  std::size_t ncols = 0;
  in >> ncols;
  if (!in || ncols == 0 || ncols > feat::static_feature_names().size()) {
    fail("bad column count");
  }
  Options opt;
  opt.columns.reserve(ncols);
  for (std::size_t i = 0; i < ncols; ++i) {
    std::string col;
    in >> col;
    if (!in || col.empty()) {
      fail("truncated column list (" + std::to_string(i) + " of " +
           std::to_string(ncols) + " names)");
    }
    opt.columns.push_back(col);
  }
  EnergyClassifier clf(opt);  // std::invalid_argument on unknown columns
  try {
    clf.tree_ = ml::DecisionTree::load(in);
  } catch (const std::runtime_error& e) {
    fail(std::string("bad tree section (") + e.what() + ")");
  }
  if (clf.tree_.feature_importances().size() != ncols) {
    fail("tree/column shape mismatch (tree has " +
         std::to_string(clf.tree_.feature_importances().size()) +
         " features, header lists " + std::to_string(ncols) + ")");
  }
  // The flat twin must agree with the tree node-for-node: re-flattening
  // the just-loaded tree is cheap, and for v2 it doubles as an integrity
  // check on the stored flat section (a hand-edited threshold in one
  // section but not the other is caught here, not at predict time).
  clf.flat_ = ml::FlatTree(clf.tree_);
  if (v2) {
    ml::FlatTree stored;
    try {
      stored = ml::FlatTree::load(in);
    } catch (const std::runtime_error& e) {
      fail(std::string("bad flat section (") + e.what() + ")");
    }
    if (stored != clf.flat_) {
      fail("flat/tree section mismatch (stored flat engine does not "
           "match the tree section)");
    }
  }
  return clf;
}

EnergyClassifier EnergyClassifier::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("EnergyClassifier: cannot read " + path);
  }
  return load(in, path);
}

std::vector<std::string> optimized_static_columns(
    const ml::Dataset& dataset, std::size_t keep,
    const ml::EvalOptions& eval) {
  const std::vector<std::string> all =
      feat::feature_set_columns(feat::FeatureSet::AllStatic);
  const ml::EvalResult res = ml::evaluate(dataset, all, eval);
  std::vector<std::pair<double, std::string>> ranked;
  ranked.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    ranked.emplace_back(res.importances[i], all[i]);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> out;
  for (std::size_t i = 0; i < std::min(keep, ranked.size()); ++i) {
    out.push_back(ranked[i].second);
  }
  return out;
}

}  // namespace pulpc::core
