// Versioned on-disk store for raw simulation counters — the expensive
// asset of the reproduction. One artifact holds the sim::RunStats of one
// (kernel, dtype, size) sample at one core count, stamped with:
//   * a store fingerprint (artifact schema version + every ClusterConfig
//     field), so artifacts from a different simulated platform or an
//     older schema are rejected as "foreign" and re-simulated;
//   * the hash of the lowered program, so artifacts produced by a
//     different lowering (e.g. the optimised variants of the compiler
//     ablation) under the same sample name are never trusted.
//
// Two interchangeable backends sit behind this API (DESIGN.md §10):
//   * v1 — one text file per (sample, core count) plus .diag sidecars;
//     human-greppable, O(files) everything.
//   * v2 — append-only binary segments of fixed-size mmap'd records with
//     an on-disk index: O(1) open and contains(), zero parsing on the
//     load path, `compact` instead of per-file gc. The default for new
//     stores; `import_v1()` migrates a v1 directory in place with
//     byte-identical relabel output.
//
// Labelling (src/energy) and dynamic-feature extraction (src/feat) are
// pure functions over these counters, so relabel() rebuilds the labelled
// dataset from a warm store in milliseconds instead of hours — tweak the
// EnergyModel, replay, done. Corrupt, truncated or foreign artifacts are
// detected on load and transparently re-simulated (and repaired), never
// trusted.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.hpp"
#include "kir/ir.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"

namespace pulpc::core {

class SegmentStore;

/// Bump when the artifact layout or the meaning of any stored counter
/// changes; every existing store becomes foreign and rebuilds.
inline constexpr std::uint32_t kArtifactSchemaVersion = 1;

/// On-disk backend of an ArtifactStore.
enum class StoreFormat {
  v1,  ///< one text file per (sample, core count) + .diag sidecars
  v2,  ///< packed binary segments + index, mmap reads (the default)
};

/// Parse "v1"/"v2" (the PULPC_STORE_FORMAT / --format vocabulary).
/// Throws std::invalid_argument on anything else.
[[nodiscard]] StoreFormat parse_store_format(std::string_view name);
[[nodiscard]] const char* to_string(StoreFormat format) noexcept;

/// FNV-1a 64-bit (the fingerprint/hash primitive of the store).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes,
                                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Store fingerprint: kArtifactSchemaVersion plus every ClusterConfig
/// field (topology, memory map, timing). Any change invalidates stored
/// counters — the simulator would produce different activity.
[[nodiscard]] std::uint64_t store_fingerprint(const sim::ClusterConfig& cfg);

/// Deterministic hash of a lowered program (its printed form).
[[nodiscard]] std::uint64_t program_hash(const kir::Program& prog);

class ArtifactStore {
 public:
  /// A default-constructed store is disabled: contains() is false and
  /// save() is a no-op, so callers need no special-casing.
  ArtifactStore() = default;

  /// Open (creating if needed) the store at `dir` for the given
  /// simulated platform. The backend is `format` when given, else the
  /// PULPC_STORE_FORMAT environment variable, else auto-detected from
  /// the directory contents (existing v2 segments or index → v2,
  /// existing v1 text artifacts → v1, empty → v2). Throws
  /// std::runtime_error if the directory cannot be created.
  ArtifactStore(std::string dir, const sim::ClusterConfig& cluster,
                std::optional<StoreFormat> format = std::nullopt);

  [[nodiscard]] bool enabled() const noexcept { return !dir_.empty(); }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return fp_; }
  [[nodiscard]] StoreFormat format() const noexcept { return format_; }

  /// File path a v1 artifact lives at (filesystem-sanitized; the exact
  /// sample identity is verified from the file header, not the name).
  /// In v2 records live inside segments and have no path of their own;
  /// this still names where an un-imported v1 file would sit.
  [[nodiscard]] std::string path_for(const SampleConfig& cfg,
                                     unsigned ncores) const;

  /// Load the counters for (cfg, ncores). Returns false — caller
  /// re-simulates — when the artifact is missing, truncated, corrupt,
  /// foreign-fingerprinted, or was produced by a different program than
  /// `prog_hash`.
  [[nodiscard]] bool load(const SampleConfig& cfg, unsigned ncores,
                          std::uint64_t prog_hash,
                          sim::RunStats* out) const;

  /// True when load() would succeed structurally (fingerprint + sample
  /// identity match; program hash not checked without a program).
  /// O(1) in v2 (index probe), O(parse one file) in v1.
  [[nodiscard]] bool contains(const SampleConfig& cfg,
                              unsigned ncores) const;

  /// Persist the counters for (cfg, ncores): atomic tmp + rename in v1,
  /// one whole-slot segment append in v2.
  void save(const SampleConfig& cfg, unsigned ncores,
            std::uint64_t prog_hash, const sim::RunStats& stats) const;

  /// v1 sidecar path for the sample's verifier report. Not an artifact:
  /// scan()/gc() key on the .runstats suffix and ignore .diag files.
  /// v2 keeps reports inside dedicated diag segments instead.
  [[nodiscard]] std::string diag_path_for(const SampleConfig& cfg) const;

  /// Persist the verifier report text for `cfg`. An empty text removes
  /// (v1) or tombstones (v2) any stale report instead of writing one.
  void save_diag(const SampleConfig& cfg, const std::string& text) const;

  /// One v2 segment file's census (`pulpclass cache info --json`).
  struct SegmentInfo {
    std::string name;
    std::size_t records = 0;
    std::size_t valid = 0;
    std::size_t foreign = 0;
    std::size_t corrupt = 0;
    std::uintmax_t bytes = 0;
  };

  /// Store census for `pulpclass cache info|verify`. `files` counts
  /// artifacts: *.runstats files in v1, segment record slots in v2.
  struct Info {
    StoreFormat format = StoreFormat::v1;
    std::size_t files = 0;    ///< artifacts present (files or records)
    std::size_t valid = 0;    ///< parse fully and match the fingerprint
    std::size_t foreign = 0;  ///< other fingerprint / schema version
    std::size_t corrupt = 0;  ///< truncated or malformed
    std::size_t diags = 0;    ///< verifier-report entries
    std::uintmax_t bytes = 0;
    std::vector<SegmentInfo> segments;  ///< v2 only; empty in v1
    /// Valid-record count per kernel name (sorted by name; `pulpclass
    /// cache info --json` emits it as "by_kernel").
    std::map<std::string, std::size_t> by_kernel;
  };
  [[nodiscard]] Info scan() const;

  /// Reclaim dead data (`pulpclass cache gc`): in v1, delete foreign and
  /// corrupt artifact files plus .diag sidecars whose sample no longer
  /// has any artifact; in v2, alias of compact(). Returns the number of
  /// files (v1) or entries (v2) removed.
  std::size_t gc() const;

  /// Rewrite the store keeping only live data (`pulpclass cache
  /// compact`): the latest valid record per key, and reports whose
  /// sample still exists. In v1 this is the same cleanup as gc().
  /// Returns the number of entries dropped. Not safe concurrently with
  /// writers in other processes.
  std::size_t compact() const;

  /// Migrate v1 text artifacts found in the directory into the v2
  /// backend (load → re-save → delete the text file; orphaned .diag
  /// sidecars are dropped, matching gc()). Relabel output from the
  /// migrated store is byte-identical to the v1 original. Returns the
  /// number of artifacts imported. No-op on a v1-format store.
  std::size_t import_v1() const;

  /// Seal any in-flight v2 segment and rewrite the index so the next
  /// open is O(1). No-op in v1 (every save is already durable).
  void flush() const;

  /// One stored artifact's identity, as enumerated by for_each().
  struct StoredSample {
    std::string kernel;
    std::string dtype;  ///< canonical rendering, e.g. "i32"
    std::uint32_t size_bytes = 0;
    unsigned ncores = 0;
    std::uint64_t prog_hash = 0;
  };

  /// Invoke `fn` for every valid own-fingerprint artifact (one pass over
  /// the store; enumeration order is unspecified). Feeds the serve
  /// cold-start cache priming.
  void for_each(const std::function<void(const StoredSample&)>& fn) const;

 private:
  std::string dir_;
  std::uint64_t fp_ = 0;
  StoreFormat format_ = StoreFormat::v1;
  std::shared_ptr<SegmentStore> seg_;  ///< engine shared across copies (v2)
};

/// Resolve the store a build should use: opt.artifact_dir if set, else
/// the PULPC_ARTIFACT_DIR environment variable; empty (either way)
/// yields a disabled store. The backend follows opt.store_format /
/// PULPC_STORE_FORMAT / auto-detection, in that order.
[[nodiscard]] ArtifactStore open_store(const BuildOptions& opt);

/// Stage Simulate over a configuration list: fill every missing or
/// invalid (sample, core count) artifact, in parallel, without paying
/// for labelling or featurization. Returns the stage totals (also sent
/// to opt.stage_report).
StageReport populate_store(
    const ArtifactStore& store, const std::vector<SampleConfig>& configs,
    const BuildOptions& opt = {},
    const std::function<void(std::size_t, std::size_t)>& progress = {});

/// Replay: rebuild the labelled dataset purely from stored counters —
/// milliseconds on a warm store. Missing/corrupt/foreign artifacts are
/// re-simulated (and the store repaired), so the result is always
/// byte-identical (CSV) to a fresh build_dataset with the same options,
/// for every thread count. Throws std::invalid_argument for a disabled
/// store.
[[nodiscard]] ml::Dataset relabel(
    const ArtifactStore& store, const std::vector<SampleConfig>& configs,
    const BuildOptions& opt = {},
    const std::function<void(std::size_t, std::size_t)>& progress = {});

/// Relabel the full paper dataset (dataset_configs()) under a different
/// energy model — the "change the energy model without re-simulating"
/// entry point.
[[nodiscard]] ml::Dataset relabel(const ArtifactStore& store,
                                  const energy::EnergyModel& model);

}  // namespace pulpc::core
