// Versioned on-disk store for raw simulation counters — the expensive
// asset of the reproduction. One artifact file holds the sim::RunStats
// of one (kernel, dtype, size) sample at one core count, stamped with:
//   * a store fingerprint (artifact schema version + every ClusterConfig
//     field), so artifacts from a different simulated platform or an
//     older schema are rejected as "foreign" and re-simulated;
//   * the hash of the lowered program, so artifacts produced by a
//     different lowering (e.g. the optimised variants of the compiler
//     ablation) under the same sample name are never trusted.
//
// Labelling (src/energy) and dynamic-feature extraction (src/feat) are
// pure functions over these counters, so relabel() rebuilds the labelled
// dataset from a warm store in milliseconds instead of hours — tweak the
// EnergyModel, replay, done. Corrupt, truncated or foreign files are
// detected on load and transparently re-simulated (and repaired), never
// trusted.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.hpp"
#include "kir/ir.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"

namespace pulpc::core {

/// Bump when the artifact file layout or the meaning of any stored
/// counter changes; every existing store becomes foreign and rebuilds.
inline constexpr std::uint32_t kArtifactSchemaVersion = 1;

/// FNV-1a 64-bit (the fingerprint/hash primitive of the store).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes,
                                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Store fingerprint: kArtifactSchemaVersion plus every ClusterConfig
/// field (topology, memory map, timing). Any change invalidates stored
/// counters — the simulator would produce different activity.
[[nodiscard]] std::uint64_t store_fingerprint(const sim::ClusterConfig& cfg);

/// Deterministic hash of a lowered program (its printed form).
[[nodiscard]] std::uint64_t program_hash(const kir::Program& prog);

class ArtifactStore {
 public:
  /// A default-constructed store is disabled: contains() is false and
  /// save() is a no-op, so callers need no special-casing.
  ArtifactStore() = default;

  /// Open (creating if needed) the store at `dir` for the given
  /// simulated platform. Throws std::runtime_error if the directory
  /// cannot be created.
  ArtifactStore(std::string dir, const sim::ClusterConfig& cluster);

  [[nodiscard]] bool enabled() const noexcept { return !dir_.empty(); }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return fp_; }

  /// File path an artifact lives at (filesystem-sanitized; the exact
  /// sample identity is verified from the file header, not the name).
  [[nodiscard]] std::string path_for(const SampleConfig& cfg,
                                     unsigned ncores) const;

  /// Load the counters for (cfg, ncores). Returns false — caller
  /// re-simulates — when the file is missing, truncated, corrupt,
  /// foreign-fingerprinted, or was produced by a different program than
  /// `prog_hash`.
  [[nodiscard]] bool load(const SampleConfig& cfg, unsigned ncores,
                          std::uint64_t prog_hash,
                          sim::RunStats* out) const;

  /// True when load() would succeed structurally (fingerprint + sample
  /// identity match; program hash not checked without a program).
  [[nodiscard]] bool contains(const SampleConfig& cfg,
                              unsigned ncores) const;

  /// Persist the counters for (cfg, ncores), atomically (tmp + rename).
  void save(const SampleConfig& cfg, unsigned ncores,
            std::uint64_t prog_hash, const sim::RunStats& stats) const;

  /// Sidecar path for the sample's verifier report. Not an artifact:
  /// scan()/gc() key on the .runstats suffix and ignore .diag files.
  [[nodiscard]] std::string diag_path_for(const SampleConfig& cfg) const;

  /// Persist the verifier report text for `cfg` (atomic tmp + rename).
  /// An empty text removes any stale sidecar instead of writing one.
  void save_diag(const SampleConfig& cfg, const std::string& text) const;

  /// Store census for `pulpclass cache info|verify`.
  struct Info {
    std::size_t files = 0;    ///< *.runstats files present
    std::size_t valid = 0;    ///< parse fully and match the fingerprint
    std::size_t foreign = 0;  ///< other fingerprint / schema version
    std::size_t corrupt = 0;  ///< truncated or malformed
    std::uintmax_t bytes = 0;
  };
  [[nodiscard]] Info scan() const;

  /// Delete foreign and corrupt artifact files (`pulpclass cache gc`).
  /// Returns the number of files removed.
  std::size_t gc() const;

 private:
  std::string dir_;
  std::uint64_t fp_ = 0;
};

/// Resolve the store a build should use: opt.artifact_dir if set, else
/// the PULPC_ARTIFACT_DIR environment variable; empty (either way)
/// yields a disabled store.
[[nodiscard]] ArtifactStore open_store(const BuildOptions& opt);

/// Stage Simulate over a configuration list: fill every missing or
/// invalid (sample, core count) artifact, in parallel, without paying
/// for labelling or featurization. Returns the stage totals (also sent
/// to opt.stage_report).
StageReport populate_store(
    const ArtifactStore& store, const std::vector<SampleConfig>& configs,
    const BuildOptions& opt = {},
    const std::function<void(std::size_t, std::size_t)>& progress = {});

/// Replay: rebuild the labelled dataset purely from stored counters —
/// milliseconds on a warm store. Missing/corrupt/foreign artifacts are
/// re-simulated (and the store repaired), so the result is always
/// byte-identical (CSV) to a fresh build_dataset with the same options,
/// for every thread count. Throws std::invalid_argument for a disabled
/// store.
[[nodiscard]] ml::Dataset relabel(
    const ArtifactStore& store, const std::vector<SampleConfig>& configs,
    const BuildOptions& opt = {},
    const std::function<void(std::size_t, std::size_t)>& progress = {});

/// Relabel the full paper dataset (dataset_configs()) under a different
/// energy model — the "change the energy model without re-simulating"
/// entry point.
[[nodiscard]] ml::Dataset relabel(const ArtifactStore& store,
                                  const energy::EnergyModel& model);

}  // namespace pulpc::core
