// Shared resolution of configurable settings against their PULPC_*
// environment fallbacks. One precedence order, applied everywhere:
//
//   explicit options field  >  CLI flag  >  PULPC_* env var  >  default
//
// A CLI flag never bypasses this chain: flags write the corresponding
// options field (BuildOptions / EvalOptions), so by the time a value is
// resolved here only three tiers remain. Call sites:
//
//   BuildOptions::threads       PULPC_THREADS        hardware threads
//   BuildOptions::cache_path    PULPC_DATASET_CACHE  "pulpclass_dataset.csv"
//   BuildOptions::artifact_dir  PULPC_ARTIFACT_DIR   disabled (empty)
//   EvalOptions::repeats (bench) PULPC_CV_REPS       100
#pragma once

#include <optional>
#include <string>

namespace pulpc::core {

/// Resolve a string setting: `explicit_value` when set (even to ""),
/// else the `env_var` environment variable when set (even to ""), else
/// `fallback`. The empty string is a meaningful value ("disable"), which
/// is why the explicit tier is an optional rather than sentinel-based.
[[nodiscard]] std::string env_or(
    const std::optional<std::string>& explicit_value, const char* env_var,
    const std::string& fallback);

/// Resolve a positive-count setting where 0 means "unset": returns
/// `explicit_value` when > 0, else `env_var` parsed as a base-10 integer
/// when it parses to >= 1 (malformed or non-positive values are ignored,
/// not fatal), else `fallback`.
[[nodiscard]] unsigned env_or(unsigned explicit_value, const char* env_var,
                              unsigned fallback);

/// Resolve an on/off setting: `explicit_value` when set, else `env_var`
/// interpreted as a flag ("0", "false", "off", "no" disable; "1",
/// "true", "on", "yes" enable; anything else is ignored, not fatal),
/// else `fallback`. Used for PULPC_FLAT_PREDICT. Named env_flag rather
/// than an env_or overload: a string-literal fallback would otherwise
/// prefer the bool overload via pointer->bool conversion.
[[nodiscard]] bool env_flag(std::optional<bool> explicit_value,
                            const char* env_var, bool fallback);

}  // namespace pulpc::core
