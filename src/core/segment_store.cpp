#include "core/segment_store.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <unordered_set>

namespace pulpc::core {

namespace fs = std::filesystem;

namespace {

constexpr std::size_t kPage = 4096;
constexpr std::uint64_t kFormatVersion = 2;
// ASCII tags read back as "PULPSEG2" / "PULPREC2" / "PULPDIA2" / "PULPIDX2"
// in a little-endian hex dump — greppable when debugging a raw segment.
constexpr std::uint64_t kSegMagic = 0x32474553504C5550ULL;
constexpr std::uint64_t kRecMagic = 0x32434552504C5550ULL;
constexpr std::uint64_t kDiagMagic = 0x32414944504C5550ULL;
constexpr std::uint64_t kIdxMagic = 0x32584449504C5550ULL;
constexpr std::size_t kRecHeaderBytes = 64;
constexpr std::size_t kNameCap = 256;  ///< kernel + dtype bytes per record
constexpr std::size_t kSealEvery = 256;
constexpr std::uint32_t kActiveSeg = 0xFFFFFFFFu;
constexpr std::size_t kIdxSegEntry = 64;  ///< name[48] + size + records
constexpr std::size_t kIdxNameCap = 48;
constexpr std::size_t kMaxCounts = 4096;  ///< per-section cap, as in load_stats

std::uint64_t fnv64(const void* data, std::size_t n,
                    std::uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv64(std::string_view s,
                    std::uint64_t seed = 0xcbf29ce484222325ULL) {
  return fnv64(s.data(), s.size(), seed);
}

std::uint64_t rd64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
std::uint32_t rd32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
void wr64(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, sizeof v); }
void wr32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, sizeof v); }

std::size_t align_up(std::size_t n, std::size_t a) {
  return (n + a - 1) / a * a;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool starts_with(std::string_view s, std::string_view pre) {
  return s.size() >= pre.size() && s.compare(0, pre.size(), pre) == 0;
}
bool ends_with(std::string_view s, std::string_view suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

/// Pack every RunStats counter into u64 words (the record payload). The
/// word order is part of the record format; all fields are unsigned
/// integers so the round trip is exact.
void encode_stats(const sim::RunStats& s, std::vector<std::uint64_t>* out) {
  out->clear();
  out->push_back(s.ncores);
  out->push_back(s.total_cores);
  out->push_back(s.total_cycles);
  out->push_back(s.region_begin);
  out->push_back(s.region_end);
  out->push_back(s.core.size());
  for (const sim::CoreStats& c : s.core) {
    const std::uint64_t w[17] = {c.n_alu,    c.n_div,   c.n_fp,
                                 c.n_fpdiv,  c.n_l1,    c.n_l2,
                                 c.n_branch, c.n_nop,   c.n_sync,
                                 c.instrs,   c.cyc_alu, c.cyc_fp,
                                 c.cyc_l1,   c.cyc_l2,  c.cyc_wait,
                                 c.cyc_cg,   c.idle_cycles};
    out->insert(out->end(), std::begin(w), std::end(w));
  }
  out->push_back(s.l1.size());
  for (const sim::BankStats& b : s.l1) {
    out->push_back(b.reads);
    out->push_back(b.writes);
    out->push_back(b.conflicts);
  }
  out->push_back(s.l2.size());
  for (const sim::BankStats& b : s.l2) {
    out->push_back(b.reads);
    out->push_back(b.writes);
    out->push_back(b.conflicts);
  }
  out->push_back(s.fpu.size());
  for (const sim::FpuStats& f : s.fpu) out->push_back(f.busy_cycles);
  out->push_back(s.icache.uses);
  out->push_back(s.icache.refills);
  out->push_back(s.dma.busy_cycles);
  out->push_back(s.dma.beats);
}

/// Inverse of encode_stats with full bounds checking; false on any
/// malformation (short payload, absurd section count, trailing words).
bool decode_stats(const std::uint64_t* w, std::size_t n,
                  sim::RunStats* out) {
  std::size_t i = 0;
  const auto take = [&](std::uint64_t* v) {
    if (i >= n) return false;
    *v = w[i++];
    return true;
  };
  std::uint64_t v = 0;
  sim::RunStats s;
  if (!take(&v)) return false;
  s.ncores = static_cast<unsigned>(v);
  if (!take(&v)) return false;
  s.total_cores = static_cast<unsigned>(v);
  if (!take(&s.total_cycles) || !take(&s.region_begin) ||
      !take(&s.region_end)) {
    return false;
  }
  if (!take(&v) || v > kMaxCounts) return false;
  s.core.resize(static_cast<std::size_t>(v));
  for (sim::CoreStats& c : s.core) {
    std::uint64_t* f[17] = {&c.n_alu,    &c.n_div,   &c.n_fp,
                            &c.n_fpdiv,  &c.n_l1,    &c.n_l2,
                            &c.n_branch, &c.n_nop,   &c.n_sync,
                            &c.instrs,   &c.cyc_alu, &c.cyc_fp,
                            &c.cyc_l1,   &c.cyc_l2,  &c.cyc_wait,
                            &c.cyc_cg,   &c.idle_cycles};
    for (std::uint64_t* p : f) {
      if (!take(p)) return false;
    }
  }
  for (std::vector<sim::BankStats>* banks : {&s.l1, &s.l2}) {
    if (!take(&v) || v > kMaxCounts) return false;
    banks->resize(static_cast<std::size_t>(v));
    for (sim::BankStats& b : *banks) {
      if (!take(&b.reads) || !take(&b.writes) || !take(&b.conflicts)) {
        return false;
      }
    }
  }
  if (!take(&v) || v > kMaxCounts) return false;
  s.fpu.resize(static_cast<std::size_t>(v));
  for (sim::FpuStats& f : s.fpu) {
    if (!take(&f.busy_cycles)) return false;
  }
  if (!take(&s.icache.uses) || !take(&s.icache.refills) ||
      !take(&s.dma.busy_cycles) || !take(&s.dma.beats)) {
    return false;
  }
  if (i != n) return false;
  *out = std::move(s);
  return true;
}

/// Checksum of one record slot: header words w0..w5, the reserved word
/// w7, then name + payload bytes (zero slack past the payload excluded —
/// it is never read). Eight interleaved FNV-1a lanes folded into one
/// word: a single FNV chain is latency-bound on the 64-bit multiply
/// (~4-5 cycles/byte), which would make the integrity scan the slow
/// parse it is meant to replace; independent lanes let the multiplies
/// overlap and the scan runs near memory speed. The lane assignment
/// (byte i of the covered stream goes to lane i mod 8) is part of the
/// record format. Both covered ranges are multiples of 8 bytes by
/// construction (48, then 264 + 8 * payload_words), so the 8-wide inner
/// loop needs no remainder handling.
std::uint64_t record_checksum(const std::uint8_t* p,
                              std::size_t payload_words) {
  const std::size_t end =
      kRecHeaderBytes + kNameCap + payload_words * sizeof(std::uint64_t);
  constexpr std::uint64_t kBasis = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t lane[8];
  for (int j = 0; j < 8; ++j) {
    lane[j] = kBasis + static_cast<std::uint64_t>(j);
  }
  const auto mix8 = [&lane](const std::uint8_t* q, std::size_t n) {
    for (std::size_t i = 0; i + 8 <= n; i += 8) {
      for (int j = 0; j < 8; ++j) {
        lane[j] = (lane[j] ^ q[i + j]) * kPrime;
      }
    }
  };
  mix8(p, 48);
  mix8(p + 56, end - 56);
  return fnv64(lane, sizeof lane);
}

/// Parsed view into one record slot (string_views alias the slot bytes).
struct RecView {
  std::uint64_t fp = 0;
  std::uint64_t prog = 0;
  std::uint64_t key_hash = 0;
  std::uint32_t size_bytes = 0;
  unsigned ncores = 0;
  std::string_view kernel;
  std::string_view dtype;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_words = 0;
};

enum class RecState { Valid, Foreign, Corrupt };

RecState parse_record(const std::uint8_t* p, std::size_t slot_bytes,
                      std::uint64_t store_fp, RecView* v) {
  if (rd64(p) != kRecMagic) return RecState::Corrupt;
  const std::uint64_t w4 = rd64(p + 32);
  const std::uint64_t w5 = rd64(p + 40);
  const std::size_t kernel_len = static_cast<std::size_t>(w4 >> 48);
  const std::size_t dtype_len = static_cast<std::size_t>((w5 >> 32) & 0xFF);
  const std::size_t payload_words =
      static_cast<std::size_t>(w5 & 0xFFFFFFFFu);
  if (kernel_len + dtype_len > kNameCap) return RecState::Corrupt;
  if (kRecHeaderBytes + kNameCap + payload_words * sizeof(std::uint64_t) >
      slot_bytes) {
    return RecState::Corrupt;
  }
  if (record_checksum(p, payload_words) != rd64(p + 48)) {
    return RecState::Corrupt;
  }
  v->fp = rd64(p + 8);
  v->prog = rd64(p + 16);
  v->key_hash = rd64(p + 24);
  v->size_bytes = static_cast<std::uint32_t>(w4 & 0xFFFFFFFFu);
  v->ncores = static_cast<unsigned>((w4 >> 32) & 0xFFFF);
  v->kernel = std::string_view(
      reinterpret_cast<const char*>(p + kRecHeaderBytes), kernel_len);
  v->dtype = std::string_view(
      reinterpret_cast<const char*>(p + kRecHeaderBytes + kernel_len),
      dtype_len);
  v->payload = p + kRecHeaderBytes + kNameCap;
  v->payload_words = payload_words;
  return v->fp == store_fp ? RecState::Valid : RecState::Foreign;
}

/// Fill one record slot (buf is slot_bytes, pre-zeroed by the caller).
void build_record(std::uint8_t* buf, std::uint64_t fp, std::uint64_t prog,
                  const SegmentKey& key,
                  const std::vector<std::uint64_t>& payload) {
  wr64(buf + 0, kRecMagic);
  wr64(buf + 8, fp);
  wr64(buf + 16, prog);
  wr64(buf + 24, segment_key_hash(key));
  wr64(buf + 32, static_cast<std::uint64_t>(key.size_bytes) |
                     (static_cast<std::uint64_t>(key.ncores & 0xFFFF) << 32) |
                     (static_cast<std::uint64_t>(key.kernel.size()) << 48));
  wr64(buf + 40, static_cast<std::uint64_t>(payload.size()) |
                     (static_cast<std::uint64_t>(key.dtype.size()) << 32));
  wr64(buf + 56, 0);
  std::memcpy(buf + kRecHeaderBytes, key.kernel.data(), key.kernel.size());
  std::memcpy(buf + kRecHeaderBytes + key.kernel.size(), key.dtype.data(),
              key.dtype.size());
  std::memcpy(buf + kRecHeaderBytes + kNameCap, payload.data(),
              payload.size() * sizeof(std::uint64_t));
  wr64(buf + 48, record_checksum(buf, payload.size()));
}

void build_segment_header(std::uint8_t* page, std::uint64_t fp,
                          std::size_t slot_bytes) {
  std::memset(page, 0, kPage);
  wr64(page + 0, kSegMagic);
  wr64(page + 8, kFormatVersion);
  wr64(page + 16, fp);
  wr64(page + 24, slot_bytes);
  wr64(page + 32, static_cast<std::uint64_t>(::getpid()));
}

void pwrite_all(int fd, const void* data, std::size_t n, off_t off,
                const std::string& what) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::pwrite(fd, p, n, off);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      throw std::runtime_error("SegmentStore: write failed for " + what);
    }
    p += w;
    off += w;
    n -= static_cast<std::size_t>(w);
  }
}

bool pread_all(int fd, void* data, std::size_t n, off_t off) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t r = ::pread(fd, p, n, off);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    p += r;
    off += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

std::uint64_t segment_key_hash(const SegmentKey& key) {
  std::uint64_t h = fnv64(std::string_view("rec|"));
  h = fnv64(key.kernel, h);
  h = fnv64(std::string_view("|"), h);
  h = fnv64(key.dtype, h);
  h = fnv64(std::string_view("|"), h);
  h = fnv64(std::to_string(key.size_bytes), h);
  h = fnv64(std::string_view("|"), h);
  return fnv64(std::to_string(key.ncores), h);
}

std::uint64_t segment_diag_hash(const SegmentKey& key) {
  std::uint64_t h = fnv64(std::string_view("diag|"));
  h = fnv64(key.kernel, h);
  h = fnv64(std::string_view("|"), h);
  h = fnv64(key.dtype, h);
  h = fnv64(std::string_view("|"), h);
  return fnv64(std::to_string(key.size_bytes), h);
}

std::size_t packed_stats_words(std::size_t cores, std::size_t l1,
                               std::size_t l2, std::size_t fpus) {
  return 13 + 17 * cores + 3 * l1 + 3 * l2 + fpus;
}

/// A read-only mmap of one file; data stays null when the file cannot be
/// opened or mapped (callers treat that as "segment unreadable").
struct SegmentStore::Mapping {
  const std::uint8_t* data = nullptr;
  std::size_t len = 0;

  explicit Mapping(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return;
    struct stat st {};
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                       PROT_READ, MAP_PRIVATE, fd, 0);
      if (p != MAP_FAILED) {
        data = static_cast<const std::uint8_t*>(p);
        len = static_cast<std::size_t>(st.st_size);
      }
    }
    ::close(fd);
  }
  ~Mapping() {
    if (data != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(data), len);
    }
  }
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
};

SegmentStore::SegmentStore(std::string dir, std::uint64_t fingerprint,
                           std::size_t payload_capacity)
    : dir_(std::move(dir)), fp_(fingerprint) {
  slot_ = align_up(kRecHeaderBytes + kNameCap +
                       payload_capacity * sizeof(std::uint64_t),
                   kPage);
  std::lock_guard<std::mutex> lk(mu_);
  open_dir_locked();
}

SegmentStore::~SegmentStore() {
  try {
    flush();
  } catch (...) {
    // Destructor flush is best-effort: a failed index rewrite only costs
    // the next open a rescan.
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (active_fd_ >= 0) ::close(active_fd_);
  if (diag_fd_ >= 0) ::close(diag_fd_);
}

std::string SegmentStore::path(const std::string& name) const {
  return dir_ + "/" + name;
}

std::uint64_t SegmentStore::next_seq_locked() {
  std::uint64_t max_seq = 0;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_, ec)) {
    const std::string name = e.path().filename().string();
    std::size_t off = 0;
    if (starts_with(name, "seg-")) {
      off = 4;
    } else if (starts_with(name, "diag-")) {
      off = 5;
    } else {
      continue;
    }
    if (name.size() < off + 16) continue;
    std::uint64_t seq = 0;
    bool ok = true;
    for (std::size_t i = 0; i < 16; ++i) {
      const char c = name[off + i];
      unsigned d = 0;
      if (c >= '0' && c <= '9') {
        d = static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        d = static_cast<unsigned>(c - 'a') + 10;
      } else {
        ok = false;
        break;
      }
      seq = (seq << 4) | d;
    }
    if (ok && seq > max_seq) max_seq = seq;
  }
  return max_seq + 1;
}

void SegmentStore::open_dir_locked() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw std::runtime_error("SegmentStore: cannot create " + dir_ + ": " +
                             ec.message());
  }

  std::vector<std::pair<std::string, std::uintmax_t>> sealed;
  std::vector<std::pair<std::string, std::uintmax_t>> live_active;
  std::vector<std::string> orphan_active;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_, ec)) {
    if (!e.is_regular_file()) continue;
    const std::string name = e.path().filename().string();
    if (!ends_with(name, ".pseg")) continue;
    std::error_code sec;
    const std::uintmax_t size = e.file_size(sec);
    if (starts_with(name, "seg-")) {
      sealed.emplace_back(name, size);
    } else if (starts_with(name, "active-")) {
      // Crash leftovers get adopted (sealed in place); a live writer's
      // active segment is scanned read-only instead.
      long pid = 0;
      const char* s = name.c_str() + 7;
      while (*s >= '0' && *s <= '9') pid = pid * 10 + (*s++ - '0');
      const bool dead =
          pid <= 0 || (::kill(static_cast<pid_t>(pid), 0) != 0 &&
                       errno == ESRCH);
      if (dead) {
        orphan_active.push_back(name);
      } else {
        live_active.emplace_back(name, size);
      }
    }
  }
  if (!orphan_active.empty()) {
    std::uint64_t seq = next_seq_locked();
    for (const std::string& name : orphan_active) {
      const std::string sealed_name = "seg-" + hex16(seq++) + "-adopted.pseg";
      std::error_code rec;
      fs::rename(path(name), path(sealed_name), rec);
      if (!rec) {
        std::error_code sec;
        sealed.emplace_back(sealed_name, fs::file_size(path(sealed_name), sec));
      }
    }
  }
  std::sort(sealed.begin(), sealed.end());
  std::sort(live_active.begin(), live_active.end());

  segs_.clear();
  for (const auto& [name, size] : sealed) {
    Seg s;
    s.name = name;
    s.size = size;
    segs_.push_back(std::move(s));
  }
  for (const auto& [name, size] : live_active) {
    Seg s;
    s.name = name;
    s.size = size;
    segs_.push_back(std::move(s));
  }

  overlay_.clear();
  index_.reset();
  index_segments_ = 0;
  if (load_index_locked()) {
    for (std::uint32_t i = static_cast<std::uint32_t>(index_segments_);
         i < segs_.size(); ++i) {
      scan_segment_into_overlay_locked(i);
    }
  } else {
    index_.reset();
    index_segments_ = 0;
    for (std::uint32_t i = 0; i < segs_.size(); ++i) {
      scan_segment_into_overlay_locked(i);
    }
  }
}

bool SegmentStore::load_index_locked() {
  auto map = std::make_shared<Mapping>(path("store.idx"));
  const std::uint8_t* b = map->data;
  if (b == nullptr || map->len < kPage) return false;
  if (rd64(b) != kIdxMagic || rd64(b + 8) != kFormatVersion ||
      rd64(b + 16) != fp_ || rd64(b + 24) != slot_) {
    return false;
  }
  const std::uint64_t nsegments = rd64(b + 32);
  const std::uint64_t nbuckets = rd64(b + 40);
  if (nbuckets == 0 || (nbuckets & (nbuckets - 1)) != 0) return false;
  if (nsegments > segs_.size()) return false;
  const std::size_t need =
      kPage + static_cast<std::size_t>(nsegments) * kIdxSegEntry +
      static_cast<std::size_t>(nbuckets) * 16;
  if (need > map->len) return false;
  // The index is trusted only when the segments it lists are exactly the
  // first nsegments of the sorted directory listing, byte-for-byte the
  // size it recorded (sealed segments are immutable, so size equality
  // means content equality for locating slots).
  for (std::uint64_t i = 0; i < nsegments; ++i) {
    const std::uint8_t* e = b + kPage + i * kIdxSegEntry;
    const char* nm = reinterpret_cast<const char*>(e);
    const std::size_t len = ::strnlen(nm, kIdxNameCap);
    if (len == kIdxNameCap) return false;
    if (segs_[i].name != std::string_view(nm, len)) return false;
    if (segs_[i].size != rd64(e + kIdxNameCap)) return false;
    segs_[i].records = static_cast<std::size_t>(rd64(e + kIdxNameCap + 8));
  }
  index_ = std::move(map);
  index_segments_ = static_cast<std::size_t>(nsegments);
  return true;
}

const std::uint8_t* SegmentStore::map_segment_locked(std::uint32_t seg_idx) {
  Seg& s = segs_[seg_idx];
  if (!s.map) {
    s.map = std::make_shared<Mapping>(path(s.name));
    const std::uint8_t* b = s.map->data;
    if (b != nullptr && s.map->len >= kPage && rd64(b) == kSegMagic &&
        rd64(b + 8) == kFormatVersion) {
      const std::uint64_t seg_slot = rd64(b + 24);
      if (seg_slot >= kRecHeaderBytes + kNameCap && seg_slot % kPage == 0) {
        s.readable = true;
        s.foreign = rd64(b + 16) != fp_;
        s.slot = static_cast<std::size_t>(seg_slot);
        s.size = s.map->len;
        s.records = (s.map->len - kPage) / s.slot;
      }
    }
  }
  return s.readable ? s.map->data : nullptr;
}

void SegmentStore::scan_segment_into_overlay_locked(std::uint32_t seg_idx) {
  const std::uint8_t* base = map_segment_locked(seg_idx);
  const Seg& s = segs_[seg_idx];
  if (base == nullptr || s.foreign || s.slot != slot_) return;
  for (std::size_t j = 0; j < s.records; ++j) {
    const std::uint8_t* p = base + kPage + j * slot_;
    // The key hash is taken on faith here; a record whose content is torn
    // fails its checksum at load time and gets re-simulated, exactly like
    // a corrupt v1 file.
    if (rd64(p) != kRecMagic) continue;
    overlay_[rd64(p + 24)] =
        Loc{seg_idx, static_cast<std::uint32_t>(j)};
  }
}

bool SegmentStore::lookup_locked(std::uint64_t key_hash, Loc* out) const {
  const auto it = overlay_.find(key_hash);
  if (it != overlay_.end()) {
    *out = it->second;
    return true;
  }
  if (!index_) return false;
  const std::uint8_t* b = index_->data;
  const std::uint64_t nsegments = rd64(b + 32);
  const std::uint64_t nbuckets = rd64(b + 40);
  const std::size_t boff =
      kPage + static_cast<std::size_t>(nsegments) * kIdxSegEntry;
  const std::uint64_t mask = nbuckets - 1;
  for (std::uint64_t probe = 0; probe < nbuckets; ++probe) {
    const std::uint8_t* e =
        b + boff + static_cast<std::size_t>((key_hash + probe) & mask) * 16;
    const std::uint32_t seg_plus1 = rd32(e + 8);
    if (seg_plus1 == 0) return false;
    if (rd64(e) == key_hash) {
      out->seg = seg_plus1 - 1;
      out->slot = rd32(e + 12);
      return out->seg < index_segments_;
    }
  }
  return false;
}

bool SegmentStore::fetch_locked(const Loc& loc, std::vector<std::uint8_t>* buf,
                                const std::uint8_t** out) {
  if (loc.seg == kActiveSeg) {
    if (active_fd_ < 0) return false;
    buf->resize(slot_);
    if (!pread_all(active_fd_, buf->data(), slot_,
                   static_cast<off_t>(kPage + loc.slot * slot_))) {
      return false;
    }
    *out = buf->data();
    return true;
  }
  if (loc.seg >= segs_.size()) return false;
  const std::uint8_t* base = map_segment_locked(loc.seg);
  const Seg& s = segs_[loc.seg];
  if (base == nullptr || s.slot != slot_) return false;
  const std::size_t off = kPage + static_cast<std::size_t>(loc.slot) * slot_;
  if (off + slot_ > s.map->len) return false;
  *out = base + off;
  return true;
}

bool SegmentStore::load(const SegmentKey& key, std::uint64_t prog_hash,
                        bool check_prog, sim::RunStats* out) {
  std::lock_guard<std::mutex> lk(mu_);
  Loc loc;
  if (!lookup_locked(segment_key_hash(key), &loc)) return false;
  std::vector<std::uint8_t> buf;
  const std::uint8_t* p = nullptr;
  if (!fetch_locked(loc, &buf, &p)) return false;
  RecView v;
  if (parse_record(p, slot_, fp_, &v) != RecState::Valid) return false;
  if (v.kernel != key.kernel || v.dtype != key.dtype ||
      v.size_bytes != key.size_bytes || v.ncores != key.ncores) {
    return false;
  }
  if (check_prog && v.prog != prog_hash) return false;
  std::vector<std::uint64_t> words(v.payload_words);
  std::memcpy(words.data(), v.payload,
              v.payload_words * sizeof(std::uint64_t));
  sim::RunStats s;
  if (!decode_stats(words.data(), words.size(), &s)) return false;
  if (s.ncores != key.ncores) return false;
  *out = std::move(s);
  return true;
}

bool SegmentStore::contains(const SegmentKey& key) {
  sim::RunStats scratch;
  return load(key, 0, /*check_prog=*/false, &scratch);
}

void SegmentStore::save(const SegmentKey& key, std::uint64_t prog_hash,
                        const sim::RunStats& stats) {
  std::lock_guard<std::mutex> lk(mu_);
  if (key.kernel.size() + key.dtype.size() > kNameCap ||
      key.kernel.size() > 0xFFFF || key.dtype.size() > 0xFF) {
    throw std::runtime_error("SegmentStore: sample name too long for " +
                             key.kernel);
  }
  std::vector<std::uint64_t> payload;
  encode_stats(stats, &payload);
  if (kRecHeaderBytes + kNameCap + payload.size() * sizeof(std::uint64_t) >
      slot_) {
    throw std::runtime_error(
        "SegmentStore: stats payload exceeds the record slot for " +
        key.kernel);
  }

  if (active_fd_ < 0) {
    // Active segments are per-writer: the pid plus a process-wide counter
    // keeps two engines in one process (or a pid-recycled crash leftover)
    // off each other's file.
    static std::atomic<std::uint64_t> counter{0};
    for (;;) {
      const std::uint64_t n = counter.fetch_add(1);
      std::string name = "active-" + std::to_string(::getpid());
      if (n != 0) name += "-" + std::to_string(n);
      name += ".pseg";
      const int fd = ::open(path(name).c_str(),
                            O_RDWR | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
      if (fd >= 0) {
        std::vector<std::uint8_t> page(kPage);
        build_segment_header(page.data(), fp_, slot_);
        pwrite_all(fd, page.data(), kPage, 0, name);
        active_fd_ = fd;
        active_name_ = name;
        active_records_ = 0;
        break;
      }
      if (errno != EEXIST) {
        throw std::runtime_error("SegmentStore: cannot create " + name);
      }
    }
  }

  std::vector<std::uint8_t> slot(slot_, 0);
  build_record(slot.data(), fp_, prog_hash, key, payload);
  pwrite_all(active_fd_, slot.data(), slot_,
             static_cast<off_t>(kPage + active_records_ * slot_),
             active_name_);
  overlay_[segment_key_hash(key)] = Loc{kActiveSeg, active_records_};
  ++active_records_;
  if (active_records_ >= kSealEvery) seal_active_locked();
}

void SegmentStore::seal_active_locked() {
  if (active_fd_ < 0) return;
  if (active_records_ == 0) {
    ::close(active_fd_);
    std::error_code ec;
    fs::remove(path(active_name_), ec);
    active_fd_ = -1;
    active_name_.clear();
    return;
  }
  ::fsync(active_fd_);
  ::close(active_fd_);
  const std::string sealed =
      "seg-" + hex16(next_seq_locked()) + "-" + std::to_string(::getpid()) +
      ".pseg";
  std::error_code ec;
  fs::rename(path(active_name_), path(sealed), ec);
  if (ec) {
    throw std::runtime_error("SegmentStore: cannot seal " + active_name_);
  }
  Seg s;
  s.name = sealed;
  s.size = kPage + static_cast<std::uintmax_t>(active_records_) * slot_;
  s.records = active_records_;
  s.slot = slot_;
  s.readable = true;
  segs_.push_back(std::move(s));
  const auto seg_idx = static_cast<std::uint32_t>(segs_.size() - 1);
  for (auto& [kh, loc] : overlay_) {
    if (loc.seg == kActiveSeg) loc.seg = seg_idx;
  }
  active_fd_ = -1;
  active_name_.clear();
  active_records_ = 0;
}

void SegmentStore::write_index_locked() {
  // Merge the mmap'd index (older segments) with the overlay (newer ones);
  // the overlay wins, mirroring lookup precedence.
  std::unordered_map<std::uint64_t, Loc> merged;
  if (index_) {
    const std::uint8_t* b = index_->data;
    const std::uint64_t nsegments = rd64(b + 32);
    const std::uint64_t nbuckets = rd64(b + 40);
    const std::size_t boff =
        kPage + static_cast<std::size_t>(nsegments) * kIdxSegEntry;
    for (std::uint64_t i = 0; i < nbuckets; ++i) {
      const std::uint8_t* e = b + boff + static_cast<std::size_t>(i) * 16;
      const std::uint32_t seg_plus1 = rd32(e + 8);
      if (seg_plus1 == 0) continue;
      merged[rd64(e)] = Loc{seg_plus1 - 1, rd32(e + 12)};
    }
  }
  for (const auto& [kh, loc] : overlay_) {
    if (loc.seg != kActiveSeg) merged[kh] = loc;
  }

  for (const Seg& s : segs_) {
    if (s.name.size() >= kIdxNameCap) return;  // unindexable; rescan on open
  }
  std::uint64_t nbuckets = 1;
  while (nbuckets < 2 * std::max<std::size_t>(merged.size(), 1)) {
    nbuckets <<= 1;
  }
  std::vector<std::uint8_t> file(
      kPage + segs_.size() * kIdxSegEntry +
          static_cast<std::size_t>(nbuckets) * 16,
      0);
  wr64(file.data() + 0, kIdxMagic);
  wr64(file.data() + 8, kFormatVersion);
  wr64(file.data() + 16, fp_);
  wr64(file.data() + 24, slot_);
  wr64(file.data() + 32, segs_.size());
  wr64(file.data() + 40, nbuckets);
  wr64(file.data() + 48, merged.size());
  for (std::size_t i = 0; i < segs_.size(); ++i) {
    std::uint8_t* e = file.data() + kPage + i * kIdxSegEntry;
    std::memcpy(e, segs_[i].name.data(), segs_[i].name.size());
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(path(segs_[i].name), ec);
    wr64(e + kIdxNameCap, ec ? segs_[i].size : size);
    wr64(e + kIdxNameCap + 8, segs_[i].records);
  }
  std::uint8_t* buckets = file.data() + kPage + segs_.size() * kIdxSegEntry;
  const std::uint64_t mask = nbuckets - 1;
  for (const auto& [kh, loc] : merged) {
    std::uint64_t i = kh & mask;
    while (rd32(buckets + static_cast<std::size_t>(i) * 16 + 8) != 0) {
      i = (i + 1) & mask;
    }
    std::uint8_t* e = buckets + static_cast<std::size_t>(i) * 16;
    wr64(e, kh);
    wr32(e + 8, loc.seg + 1);
    wr32(e + 12, loc.slot);
  }

  const std::string tmp =
      path("store.idx.tmp" + std::to_string(::getpid()));
  const int fd = ::open(tmp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw std::runtime_error("SegmentStore: cannot write " + tmp);
  }
  try {
    pwrite_all(fd, file.data(), file.size(), 0, tmp);
  } catch (...) {
    ::close(fd);
    std::error_code ec;
    fs::remove(tmp, ec);
    throw;
  }
  ::fsync(fd);
  ::close(fd);
  std::error_code ec;
  fs::rename(tmp, path("store.idx"), ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw std::runtime_error("SegmentStore: cannot rename index into place");
  }
}

void SegmentStore::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  seal_active_locked();
  if (diag_fd_ >= 0) {
    ::fsync(diag_fd_);
    ::close(diag_fd_);
    diag_fd_ = -1;
    diag_active_name_.clear();
  }
  write_index_locked();
}

void SegmentStore::for_each(
    const std::function<void(const SegmentKey&, std::uint64_t)>& fn) {
  std::lock_guard<std::mutex> lk(mu_);
  std::unordered_map<std::uint64_t, std::pair<SegmentKey, std::uint64_t>>
      live;
  const auto visit = [&](const std::uint8_t* p) {
    RecView v;
    if (parse_record(p, slot_, fp_, &v) != RecState::Valid) return;
    SegmentKey key;
    key.kernel = std::string(v.kernel);
    key.dtype = std::string(v.dtype);
    key.size_bytes = v.size_bytes;
    key.ncores = v.ncores;
    live[v.key_hash] = {std::move(key), v.prog};
  };
  for (std::uint32_t i = 0; i < segs_.size(); ++i) {
    const std::uint8_t* base = map_segment_locked(i);
    const Seg& s = segs_[i];
    if (base == nullptr || s.foreign || s.slot != slot_) continue;
    for (std::size_t j = 0; j < s.records; ++j) {
      visit(base + kPage + j * slot_);
    }
  }
  if (active_fd_ >= 0) {
    std::vector<std::uint8_t> buf(slot_);
    for (std::uint32_t j = 0; j < active_records_; ++j) {
      if (pread_all(active_fd_, buf.data(), slot_,
                    static_cast<off_t>(kPage + j * slot_))) {
        visit(buf.data());
      }
    }
  }
  for (const auto& [kh, rec] : live) {
    (void)kh;
    fn(rec.first, rec.second);
  }
}

SegmentStore::Census SegmentStore::scan() {
  std::lock_guard<std::mutex> lk(mu_);
  Census c;
  const auto census_slot = [&](const std::uint8_t* p, SegmentInfo* si) {
    ++si->records;
    RecView v;
    switch (parse_record(p, slot_, fp_, &v)) {
      case RecState::Valid: ++si->valid; break;
      case RecState::Foreign: ++si->foreign; break;
      case RecState::Corrupt: ++si->corrupt; break;
    }
  };
  for (std::uint32_t i = 0; i < segs_.size(); ++i) {
    const std::uint8_t* base = map_segment_locked(i);
    const Seg& s = segs_[i];
    SegmentInfo si;
    si.name = s.name;
    si.bytes = s.size;
    if (base == nullptr) {
      si.records = 1;
      si.corrupt = 1;
    } else if (s.foreign || s.slot != slot_) {
      si.records = s.records;
      si.foreign = s.records;
    } else {
      for (std::size_t j = 0; j < s.records; ++j) {
        census_slot(base + kPage + j * slot_, &si);
      }
    }
    c.records += si.records;
    c.valid += si.valid;
    c.foreign += si.foreign;
    c.corrupt += si.corrupt;
    c.bytes += si.bytes;
    c.segments.push_back(std::move(si));
  }
  if (active_fd_ >= 0 && active_records_ > 0) {
    SegmentInfo si;
    si.name = active_name_;
    si.bytes = kPage + static_cast<std::uintmax_t>(active_records_) * slot_;
    std::vector<std::uint8_t> buf(slot_);
    for (std::uint32_t j = 0; j < active_records_; ++j) {
      if (pread_all(active_fd_, buf.data(), slot_,
                    static_cast<off_t>(kPage + j * slot_))) {
        census_slot(buf.data(), &si);
      } else {
        ++si.records;
        ++si.corrupt;
      }
    }
    c.records += si.records;
    c.valid += si.valid;
    c.foreign += si.foreign;
    c.corrupt += si.corrupt;
    c.bytes += si.bytes;
    c.segments.push_back(std::move(si));
  }
  ensure_diags_loaded_locked();
  c.diag_records = diag_file_records_;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_, ec)) {
    if (e.is_regular_file() &&
        ends_with(e.path().filename().string(), ".pdia")) {
      std::error_code sec;
      c.bytes += e.file_size(sec);
    }
  }
  return c;
}

void SegmentStore::ensure_diags_loaded_locked() {
  if (diags_loaded_) return;
  diags_loaded_ = true;
  std::vector<std::string> files;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_, ec)) {
    if (e.is_regular_file() &&
        ends_with(e.path().filename().string(), ".pdia")) {
      files.push_back(e.path().filename().string());
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::string& name : files) {
    Mapping m(path(name));
    if (m.data == nullptr) continue;
    std::size_t off = 0;
    while (off + kRecHeaderBytes <= m.len) {
      const std::uint8_t* p = m.data + off;
      if (rd64(p) != kDiagMagic) break;
      const std::uint64_t total_len = rd64(p + 32);
      if (total_len < kRecHeaderBytes || total_len % 8 != 0 ||
          off + total_len > m.len) {
        break;  // torn tail: stop at the first malformed record
      }
      std::uint64_t h = fnv64(p, 24);
      h = fnv64(p + 32, static_cast<std::size_t>(total_len) - 32, h);
      if (h != rd64(p + 24)) break;
      const std::uint64_t w5 = rd64(p + 40);
      const std::uint64_t w6 = rd64(p + 48);
      const auto flags = static_cast<std::uint32_t>(w5 & 0xFFFF);
      const auto name_len = static_cast<std::size_t>((w5 >> 16) & 0xFFFF);
      const auto text_len = static_cast<std::size_t>(w5 >> 32);
      const auto dtype_len = static_cast<std::size_t>((w6 >> 32) & 0xFF);
      if (kRecHeaderBytes + name_len + dtype_len + text_len > total_len) {
        break;
      }
      if (rd64(p + 8) == fp_) {
        DiagState st;
        st.key.kernel.assign(
            reinterpret_cast<const char*>(p + kRecHeaderBytes), name_len);
        st.key.dtype.assign(
            reinterpret_cast<const char*>(p + kRecHeaderBytes + name_len),
            dtype_len);
        st.key.size_bytes = static_cast<std::uint32_t>(w6 & 0xFFFFFFFFu);
        st.text.assign(reinterpret_cast<const char*>(
                           p + kRecHeaderBytes + name_len + dtype_len),
                       text_len);
        st.tombstone = (flags & 1u) != 0;
        diags_[rd64(p + 16)] = std::move(st);
        ++diag_file_records_;
      }
      off += static_cast<std::size_t>(total_len);
    }
  }
}

void SegmentStore::append_diag_locked(const SegmentKey& key,
                                      const std::string& text,
                                      bool tombstone) {
  if (key.kernel.size() > 0xFFFF || key.dtype.size() > 0xFF) {
    throw std::runtime_error("SegmentStore: diag sample name too long");
  }
  if (diag_fd_ < 0) {
    for (;;) {
      const std::string name =
          "diag-" + hex16(next_seq_locked()) + "-" +
          std::to_string(::getpid()) + ".pdia";
      const int fd = ::open(path(name).c_str(),
                            O_WRONLY | O_CREAT | O_EXCL | O_APPEND |
                                O_CLOEXEC,
                            0644);
      if (fd >= 0) {
        diag_fd_ = fd;
        diag_active_name_ = name;
        break;
      }
      if (errno != EEXIST) {
        throw std::runtime_error("SegmentStore: cannot create " + name);
      }
    }
  }
  const std::size_t total_len = align_up(
      kRecHeaderBytes + key.kernel.size() + key.dtype.size() + text.size(),
      8);
  std::vector<std::uint8_t> rec(total_len, 0);
  wr64(rec.data() + 0, kDiagMagic);
  wr64(rec.data() + 8, fp_);
  wr64(rec.data() + 16, segment_diag_hash(key));
  wr64(rec.data() + 32, total_len);
  wr64(rec.data() + 40,
       (tombstone ? 1ULL : 0ULL) |
           (static_cast<std::uint64_t>(key.kernel.size()) << 16) |
           (static_cast<std::uint64_t>(text.size()) << 32));
  wr64(rec.data() + 48, static_cast<std::uint64_t>(key.size_bytes) |
                            (static_cast<std::uint64_t>(key.dtype.size())
                             << 32));
  std::memcpy(rec.data() + kRecHeaderBytes, key.kernel.data(),
              key.kernel.size());
  std::memcpy(rec.data() + kRecHeaderBytes + key.kernel.size(),
              key.dtype.data(), key.dtype.size());
  std::memcpy(
      rec.data() + kRecHeaderBytes + key.kernel.size() + key.dtype.size(),
      text.data(), text.size());
  std::uint64_t h = fnv64(rec.data(), 24);
  h = fnv64(rec.data() + 32, total_len - 32, h);
  wr64(rec.data() + 24, h);
  // O_APPEND + a single write keeps the record contiguous even if another
  // writer shares the file; a torn tail is cut off by the checksum walk.
  std::size_t n = total_len;
  const std::uint8_t* p = rec.data();
  while (n > 0) {
    const ssize_t w = ::write(diag_fd_, p, n);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      throw std::runtime_error("SegmentStore: diag write failed for " +
                               diag_active_name_);
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  DiagState st;
  st.key = key;
  st.text = text;
  st.tombstone = tombstone;
  diags_[segment_diag_hash(key)] = std::move(st);
  ++diag_file_records_;
}

void SegmentStore::save_diag(const SegmentKey& key, const std::string& text) {
  std::lock_guard<std::mutex> lk(mu_);
  ensure_diags_loaded_locked();
  const std::uint64_t h = segment_diag_hash(key);
  const auto it = diags_.find(h);
  if (text.empty()) {
    // Tombstones are only worth appending over a live report; a clean
    // sample on a clean store must not grow the diag segment.
    if (it != diags_.end() && !it->second.tombstone) {
      append_diag_locked(key, "", /*tombstone=*/true);
    }
    return;
  }
  if (it != diags_.end() && !it->second.tombstone &&
      it->second.text == text) {
    return;  // identical report already stored
  }
  append_diag_locked(key, text, /*tombstone=*/false);
}

std::size_t SegmentStore::compact() {
  std::lock_guard<std::mutex> lk(mu_);
  ensure_diags_loaded_locked();
  seal_active_locked();

  struct LiveRec {
    SegmentKey key;
    std::uint64_t prog = 0;
    std::vector<std::uint64_t> payload;
  };
  std::unordered_map<std::uint64_t, LiveRec> live;
  std::size_t total_slots = 0;
  std::vector<std::string> old_files;
  for (std::uint32_t i = 0; i < segs_.size(); ++i) {
    const std::uint8_t* base = map_segment_locked(i);
    const Seg& s = segs_[i];
    old_files.push_back(s.name);
    if (base == nullptr) {
      ++total_slots;
      continue;
    }
    total_slots += s.records;
    if (s.foreign || s.slot != slot_) continue;
    for (std::size_t j = 0; j < s.records; ++j) {
      RecView v;
      if (parse_record(base + kPage + j * slot_, slot_, fp_, &v) !=
          RecState::Valid) {
        continue;
      }
      LiveRec r;
      r.key.kernel = std::string(v.kernel);
      r.key.dtype = std::string(v.dtype);
      r.key.size_bytes = v.size_bytes;
      r.key.ncores = v.ncores;
      r.prog = v.prog;
      r.payload.resize(v.payload_words);
      std::memcpy(r.payload.data(), v.payload,
                  v.payload_words * sizeof(std::uint64_t));
      live[v.key_hash] = std::move(r);
    }
  }

  std::unordered_set<std::uint64_t> live_samples;
  for (const auto& [kh, r] : live) {
    (void)kh;
    live_samples.insert(segment_diag_hash(r.key));
  }
  std::vector<const DiagState*> kept_diags;
  for (const auto& [dh, st] : diags_) {
    if (!st.tombstone && live_samples.count(dh) != 0) {
      kept_diags.push_back(&st);
    }
  }
  const std::size_t dropped =
      (total_slots - live.size()) + (diag_file_records_ - kept_diags.size());

  // Deterministic rewrite order: records by key hash, reports likewise.
  std::vector<std::uint64_t> order;
  order.reserve(live.size());
  for (const auto& [kh, r] : live) {
    (void)r;
    order.push_back(kh);
  }
  std::sort(order.begin(), order.end());
  std::sort(kept_diags.begin(), kept_diags.end(),
            [](const DiagState* a, const DiagState* b) {
              return segment_diag_hash(a->key) < segment_diag_hash(b->key);
            });

  if (diag_fd_ >= 0) {
    ::close(diag_fd_);
    diag_fd_ = -1;
    diag_active_name_.clear();
  }

  std::uint64_t seq = next_seq_locked();
  std::string new_seg_name;
  if (!live.empty()) {
    new_seg_name =
        "seg-" + hex16(seq++) + "-" + std::to_string(::getpid()) + ".pseg";
    const std::string tmp = path(new_seg_name + ".tmp");
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      throw std::runtime_error("SegmentStore: cannot write " + tmp);
    }
    try {
      std::vector<std::uint8_t> page(kPage);
      build_segment_header(page.data(), fp_, slot_);
      pwrite_all(fd, page.data(), kPage, 0, tmp);
      std::vector<std::uint8_t> slot(slot_);
      for (std::size_t j = 0; j < order.size(); ++j) {
        const LiveRec& r = live.at(order[j]);
        std::fill(slot.begin(), slot.end(), 0);
        build_record(slot.data(), fp_, r.prog, r.key, r.payload);
        pwrite_all(fd, slot.data(), slot_,
                   static_cast<off_t>(kPage + j * slot_), tmp);
      }
    } catch (...) {
      ::close(fd);
      std::error_code ec;
      fs::remove(tmp, ec);
      throw;
    }
    ::fsync(fd);
    ::close(fd);
    std::error_code ec;
    fs::rename(tmp, path(new_seg_name), ec);
    if (ec) {
      throw std::runtime_error("SegmentStore: cannot seal compacted segment");
    }
  }

  std::string new_diag_name;
  if (!kept_diags.empty()) {
    new_diag_name =
        "diag-" + hex16(seq++) + "-" + std::to_string(::getpid()) + ".pdia";
    // Route the rewrites through the normal append path, then seal by
    // closing; append_diag_locked creates the file on first use.
    std::unordered_map<std::uint64_t, DiagState> rewritten;
    std::size_t count = 0;
    diag_active_name_ = new_diag_name;
    const int fd = ::open(path(new_diag_name).c_str(),
                          O_WRONLY | O_CREAT | O_EXCL | O_APPEND | O_CLOEXEC,
                          0644);
    if (fd < 0) {
      throw std::runtime_error("SegmentStore: cannot write " + new_diag_name);
    }
    diag_fd_ = fd;
    for (const DiagState* st : kept_diags) {
      rewritten[segment_diag_hash(st->key)] = *st;
      ++count;
    }
    const std::size_t before = diag_file_records_;
    for (const DiagState* st : kept_diags) {
      append_diag_locked(st->key, st->text, /*tombstone=*/false);
    }
    diag_file_records_ = before;  // recomputed below
    ::fsync(diag_fd_);
    ::close(diag_fd_);
    diag_fd_ = -1;
    diag_active_name_.clear();
    diags_ = std::move(rewritten);
    diag_file_records_ = count;
  } else {
    diags_.clear();
    diag_file_records_ = 0;
  }

  // Remove every superseded file: old segments, old diag files, and any
  // stray temporaries — everything except the two files just written.
  std::error_code ec;
  std::vector<std::string> doomed;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_, ec)) {
    if (!e.is_regular_file()) continue;
    const std::string name = e.path().filename().string();
    if (name == new_seg_name || name == new_diag_name) continue;
    if (ends_with(name, ".pseg") || ends_with(name, ".pdia")) {
      doomed.push_back(name);
    }
  }
  for (const std::string& name : doomed) {
    std::error_code rec;
    fs::remove(path(name), rec);
  }

  segs_.clear();
  overlay_.clear();
  index_.reset();
  index_segments_ = 0;
  if (!live.empty()) {
    Seg s;
    s.name = new_seg_name;
    s.size = kPage + static_cast<std::uintmax_t>(order.size()) * slot_;
    s.records = order.size();
    s.slot = slot_;
    s.readable = true;
    segs_.push_back(std::move(s));
    for (std::size_t j = 0; j < order.size(); ++j) {
      overlay_[order[j]] = Loc{0, static_cast<std::uint32_t>(j)};
    }
  }
  write_index_locked();
  return dropped;
}

}  // namespace pulpc::core
