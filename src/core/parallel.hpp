// Deterministic parallel execution engine. A small fixed-size thread
// pool drives the two embarrassingly parallel hot paths of the
// reproduction — the 448-configuration dataset build (8 simulator runs
// each) and the repeated-CV evaluation (1000 tree fits) — while
// guaranteeing results identical to the serial path: tasks write into
// caller-preallocated slots by index and callers reduce partial results
// in a fixed order (see DESIGN.md "Deterministic parallelism").
//
// Worker count resolution: an explicit request wins, otherwise the
// PULPC_THREADS environment variable, otherwise
// std::thread::hardware_concurrency(). A count of 1 degenerates to
// inline execution on the caller thread — no threads are spawned at all.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pulpc::core {

/// Worker count for a parallel region: `requested` if non-zero, else
/// PULPC_THREADS if set to a positive integer, else
/// hardware_concurrency() (minimum 1).
[[nodiscard]] unsigned resolve_thread_count(unsigned requested = 0);

/// Fixed-size thread pool. The constructing ("caller") thread always
/// participates in parallel_for, so a pool of W workers spawns W-1
/// background threads; W == 1 runs everything inline.
class ThreadPool {
 public:
  /// `workers == 0` resolves via resolve_thread_count().
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned workers() const noexcept { return workers_; }

  /// Run fn(i) for every i in [0, n), distributing indices dynamically
  /// across the pool, and block until all calls return. Each index is
  /// dispatched exactly once. If any task throws, the first exception
  /// (in completion order) is rethrown on the caller thread after all
  /// in-flight tasks drain; remaining undispatched indices are skipped
  /// and the pool stays usable. Not reentrant: fn must not call back
  /// into the same pool.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// parallel_for producing out[i] = fn(i) with the results in index
  /// order, independent of execution order. T must be default- and
  /// move-constructible.
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
    std::vector<T> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  void worker_loop();
  void run_tasks();

  unsigned workers_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: a new job is posted
  std::condition_variable done_cv_;  ///< caller: all workers left the job
  std::uint64_t generation_ = 0;     ///< bumped once per parallel_for
  bool stop_ = false;

  // Current job; valid from job post until the caller observes
  // busy_ == 0.
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};
  unsigned busy_ = 0;  ///< background workers still inside the job
  std::exception_ptr error_;
};

}  // namespace pulpc::core
