#include "core/artifacts.hpp"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/env.hpp"

namespace pulpc::core {

namespace fs = std::filesystem;

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

/// Fold a numeric field into a fingerprint via its decimal rendering
/// (field order is part of the schema).
template <typename T>
std::uint64_t mix(std::uint64_t h, T value) {
  return fnv1a64(std::to_string(value), h);
}

std::string hex(std::uint64_t v) {
  std::ostringstream out;
  out << std::hex << v;
  return out.str();
}

/// Filesystem-safe rendering of a kernel name. Collisions are harmless:
/// the file header carries the exact sample identity and is verified on
/// load.
std::string sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.';
    out += ok ? c : '_';
  }
  return out;
}

constexpr const char* kSuffix = ".runstats";

struct Header {
  std::uint32_t version = 0;
  std::uint64_t fp = 0;
  std::uint64_t prog = 0;
  std::string dtype;
  std::uint32_t size_bytes = 0;
  unsigned ncores = 0;
  std::string kernel;
};

/// Parse the two artifact header lines; false on any malformation.
bool read_header(std::istream& in, Header* h) {
  std::string line;
  if (!std::getline(in, line)) return false;
  {
    std::istringstream row(line);
    std::string magic;
    std::string ver;
    std::string fp;
    std::string prog;
    if (!(row >> magic >> ver >> fp >> prog) || magic != "pulpc-artifact" ||
        ver.size() < 2 || ver[0] != 'v' || fp.rfind("fp=", 0) != 0 ||
        prog.rfind("prog=", 0) != 0) {
      return false;
    }
    try {
      h->version = static_cast<std::uint32_t>(std::stoul(ver.substr(1)));
      h->fp = std::stoull(fp.substr(3), nullptr, 16);
      h->prog = std::stoull(prog.substr(5), nullptr, 16);
    } catch (const std::exception&) {
      return false;
    }
  }
  if (!std::getline(in, line)) return false;
  std::istringstream row(line);
  std::string tag;
  if (!(row >> tag >> h->dtype >> h->size_bytes >> h->ncores) ||
      tag != "sample") {
    return false;
  }
  // The kernel name is the remainder of the line (it may contain spaces
  // or separators that the filename sanitizer folded away).
  std::getline(row, h->kernel);
  if (!h->kernel.empty() && h->kernel.front() == ' ') h->kernel.erase(0, 1);
  return true;
}

enum class FileState { Valid, Foreign, Corrupt };

FileState classify(const fs::path& path, std::uint64_t store_fp) {
  std::ifstream in(path);
  if (!in) return FileState::Corrupt;
  Header h;
  if (!read_header(in, &h)) return FileState::Corrupt;
  if (h.version != kArtifactSchemaVersion || h.fp != store_fp) {
    return FileState::Foreign;
  }
  try {
    const sim::RunStats s = sim::load_stats(in);
    if (s.ncores != h.ncores) return FileState::Corrupt;
  } catch (const std::exception&) {
    return FileState::Corrupt;
  }
  return FileState::Valid;
}

}  // namespace

std::uint64_t store_fingerprint(const sim::ClusterConfig& c) {
  std::uint64_t h = fnv1a64("pulpc-artifact-store");
  h = mix(h, kArtifactSchemaVersion);
  h = mix(h, c.num_cores);
  h = mix(h, c.l1_banks);
  h = mix(h, c.l2_banks);
  h = mix(h, c.num_fpus);
  h = mix(h, c.tcdm_base);
  h = mix(h, c.tcdm_bytes);
  h = mix(h, c.l2_base);
  h = mix(h, c.l2_bytes);
  h = mix(h, c.div_cycles);
  h = mix(h, c.fpdiv_cycles);
  h = mix(h, c.l2_latency);
  h = mix(h, c.taken_branch_penalty);
  h = mix(h, c.barrier_wakeup);
  h = mix(h, c.icache_line);
  h = mix(h, c.icache_refill_stall);
  h = mix(h, static_cast<unsigned>(c.icache_private));
  h = mix(h, c.max_cycles);
  return h;
}

std::uint64_t program_hash(const kir::Program& prog) {
  return fnv1a64(kir::to_string(prog));
}

ArtifactStore::ArtifactStore(std::string dir,
                             const sim::ClusterConfig& cluster)
    : dir_(std::move(dir)), fp_(store_fingerprint(cluster)) {
  if (dir_.empty()) {
    throw std::runtime_error("ArtifactStore: empty directory");
  }
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw std::runtime_error("ArtifactStore: cannot create " + dir_ + ": " +
                             ec.message());
  }
}

std::string ArtifactStore::path_for(const SampleConfig& cfg,
                                    unsigned ncores) const {
  return dir_ + "/" + sanitize(cfg.kernel) + "-" +
         kir::to_string(cfg.dtype) + "-" + std::to_string(cfg.size_bytes) +
         "-c" + std::to_string(ncores) + kSuffix;
}

bool ArtifactStore::load(const SampleConfig& cfg, unsigned ncores,
                         std::uint64_t prog_hash,
                         sim::RunStats* out) const {
  if (!enabled()) return false;
  std::ifstream in(path_for(cfg, ncores));
  if (!in) return false;
  Header h;
  if (!read_header(in, &h)) return false;
  if (h.version != kArtifactSchemaVersion || h.fp != fp_ ||
      h.prog != prog_hash || h.kernel != cfg.kernel ||
      h.dtype != kir::to_string(cfg.dtype) ||
      h.size_bytes != cfg.size_bytes || h.ncores != ncores) {
    return false;
  }
  try {
    sim::RunStats s = sim::load_stats(in);
    if (s.ncores != ncores) return false;
    *out = std::move(s);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool ArtifactStore::contains(const SampleConfig& cfg,
                             unsigned ncores) const {
  if (!enabled()) return false;
  std::ifstream in(path_for(cfg, ncores));
  if (!in) return false;
  Header h;
  if (!read_header(in, &h)) return false;
  if (h.version != kArtifactSchemaVersion || h.fp != fp_ ||
      h.kernel != cfg.kernel || h.dtype != kir::to_string(cfg.dtype) ||
      h.size_bytes != cfg.size_bytes || h.ncores != ncores) {
    return false;
  }
  try {
    (void)sim::load_stats(in);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

void ArtifactStore::save(const SampleConfig& cfg, unsigned ncores,
                         std::uint64_t prog_hash,
                         const sim::RunStats& stats) const {
  if (!enabled()) return;
  const std::string path = path_for(cfg, ncores);
  // Write-then-rename so an interrupted save never leaves a half file
  // under the final name (half files would just be re-simulated, but gc
  // would have to clean them up). The pid suffix keeps concurrent
  // processes off each other's temporaries.
  const std::string tmp = path + ".tmp" + std::to_string(::getpid());
  {
    std::ofstream out(tmp);
    if (!out) {
      throw std::runtime_error("ArtifactStore: cannot write " + tmp);
    }
    out << "pulpc-artifact v" << kArtifactSchemaVersion << " fp=" << hex(fp_)
        << " prog=" << hex(prog_hash) << '\n';
    out << "sample " << kir::to_string(cfg.dtype) << ' ' << cfg.size_bytes
        << ' ' << ncores << ' ' << cfg.kernel << '\n';
    sim::save_stats(out, stats);
    if (!out) {
      throw std::runtime_error("ArtifactStore: write failed for " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw std::runtime_error("ArtifactStore: cannot rename into " + path);
  }
}

std::string ArtifactStore::diag_path_for(const SampleConfig& cfg) const {
  return dir_ + "/" + sanitize(cfg.kernel) + "-" +
         kir::to_string(cfg.dtype) + "-" + std::to_string(cfg.size_bytes) +
         ".diag";
}

void ArtifactStore::save_diag(const SampleConfig& cfg,
                              const std::string& text) const {
  if (!enabled()) return;
  const std::string path = diag_path_for(cfg);
  std::error_code ec;
  if (text.empty()) {
    fs::remove(path, ec);
    return;
  }
  const std::string tmp = path + ".tmp" + std::to_string(::getpid());
  {
    std::ofstream out(tmp);
    if (!out) {
      throw std::runtime_error("ArtifactStore: cannot write " + tmp);
    }
    out << text;
    if (!out) {
      throw std::runtime_error("ArtifactStore: write failed for " + tmp);
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw std::runtime_error("ArtifactStore: cannot rename into " + path);
  }
}

ArtifactStore::Info ArtifactStore::scan() const {
  Info info;
  if (!enabled() || !fs::is_directory(dir_)) return info;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_)) {
    if (!e.is_regular_file() || e.path().extension() != kSuffix) continue;
    ++info.files;
    std::error_code ec;
    info.bytes += e.file_size(ec);
    switch (classify(e.path(), fp_)) {
      case FileState::Valid: ++info.valid; break;
      case FileState::Foreign: ++info.foreign; break;
      case FileState::Corrupt: ++info.corrupt; break;
    }
  }
  return info;
}

std::size_t ArtifactStore::gc() const {
  std::size_t removed = 0;
  if (!enabled() || !fs::is_directory(dir_)) return removed;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_)) {
    if (!e.is_regular_file() || e.path().extension() != kSuffix) continue;
    if (classify(e.path(), fp_) != FileState::Valid) {
      std::error_code ec;
      removed += fs::remove(e.path(), ec) ? 1 : 0;
    }
  }
  return removed;
}

ArtifactStore open_store(const BuildOptions& opt) {
  const std::string dir = env_or(opt.artifact_dir, "PULPC_ARTIFACT_DIR", "");
  if (dir.empty()) return ArtifactStore{};
  return ArtifactStore(dir, opt.cluster);
}

ml::Dataset relabel(const ArtifactStore& store,
                    const energy::EnergyModel& model) {
  BuildOptions opt;
  opt.energy = model;
  return relabel(store, dataset_configs(), opt);
}

}  // namespace pulpc::core
