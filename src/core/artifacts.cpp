#include "core/artifacts.hpp"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "core/env.hpp"
#include "core/segment_store.hpp"

namespace pulpc::core {

namespace fs = std::filesystem;

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

StoreFormat parse_store_format(std::string_view name) {
  if (name == "v1") return StoreFormat::v1;
  if (name == "v2") return StoreFormat::v2;
  throw std::invalid_argument("unknown store format '" + std::string(name) +
                              "' (expected v1 or v2)");
}

const char* to_string(StoreFormat format) noexcept {
  return format == StoreFormat::v1 ? "v1" : "v2";
}

namespace {

/// Fold a numeric field into a fingerprint via its decimal rendering
/// (field order is part of the schema).
template <typename T>
std::uint64_t mix(std::uint64_t h, T value) {
  return fnv1a64(std::to_string(value), h);
}

std::string hex(std::uint64_t v) {
  std::ostringstream out;
  out << std::hex << v;
  return out.str();
}

/// Filesystem-safe rendering of a kernel name. Collisions are harmless:
/// the file header carries the exact sample identity and is verified on
/// load.
std::string sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.';
    out += ok ? c : '_';
  }
  return out;
}

constexpr const char* kSuffix = ".runstats";

struct Header {
  std::uint32_t version = 0;
  std::uint64_t fp = 0;
  std::uint64_t prog = 0;
  std::string dtype;
  std::uint32_t size_bytes = 0;
  unsigned ncores = 0;
  std::string kernel;
};

/// Parse the two artifact header lines; false on any malformation.
bool read_header(std::istream& in, Header* h) {
  std::string line;
  if (!std::getline(in, line)) return false;
  {
    std::istringstream row(line);
    std::string magic;
    std::string ver;
    std::string fp;
    std::string prog;
    if (!(row >> magic >> ver >> fp >> prog) || magic != "pulpc-artifact" ||
        ver.size() < 2 || ver[0] != 'v' || fp.rfind("fp=", 0) != 0 ||
        prog.rfind("prog=", 0) != 0) {
      return false;
    }
    try {
      h->version = static_cast<std::uint32_t>(std::stoul(ver.substr(1)));
      h->fp = std::stoull(fp.substr(3), nullptr, 16);
      h->prog = std::stoull(prog.substr(5), nullptr, 16);
    } catch (const std::exception&) {
      return false;
    }
  }
  if (!std::getline(in, line)) return false;
  std::istringstream row(line);
  std::string tag;
  if (!(row >> tag >> h->dtype >> h->size_bytes >> h->ncores) ||
      tag != "sample") {
    return false;
  }
  // The kernel name is the remainder of the line (it may contain spaces
  // or separators that the filename sanitizer folded away).
  std::getline(row, h->kernel);
  if (!h->kernel.empty() && h->kernel.front() == ' ') h->kernel.erase(0, 1);
  return true;
}

enum class FileState { Valid, Foreign, Corrupt };

FileState classify(const fs::path& path, std::uint64_t store_fp) {
  std::ifstream in(path);
  if (!in) return FileState::Corrupt;
  Header h;
  if (!read_header(in, &h)) return FileState::Corrupt;
  if (h.version != kArtifactSchemaVersion || h.fp != store_fp) {
    return FileState::Foreign;
  }
  try {
    const sim::RunStats s = sim::load_stats(in);
    if (s.ncores != h.ncores) return FileState::Corrupt;
  } catch (const std::exception&) {
    return FileState::Corrupt;
  }
  return FileState::Valid;
}

SegmentKey segment_key(const SampleConfig& cfg, unsigned ncores) {
  SegmentKey key;
  key.kernel = cfg.kernel;
  key.dtype = kir::to_string(cfg.dtype);
  key.size_bytes = cfg.size_bytes;
  key.ncores = ncores;
  return key;
}

/// Strip "-c<digits>.runstats" off a v1 artifact filename, leaving the
/// sample stem its .diag sidecar shares. Empty when the name does not
/// match the v1 layout.
std::string sample_stem(const std::string& filename) {
  const std::string suffix = kSuffix;
  if (filename.size() <= suffix.size() ||
      filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return {};
  }
  std::size_t i = filename.size() - suffix.size();
  std::size_t digits = 0;
  while (i > 0 && filename[i - 1] >= '0' && filename[i - 1] <= '9') {
    --i;
    ++digits;
  }
  if (digits == 0 || i < 2 || filename[i - 1] != 'c' ||
      filename[i - 2] != '-') {
    return {};
  }
  return filename.substr(0, i - 2);
}

/// Auto-detect the backend of an existing directory: v2 furniture wins,
/// then v1 text artifacts, then the v2 default for fresh stores.
StoreFormat detect_format(const std::string& dir) {
  std::error_code ec;
  bool saw_v1 = false;
  for (const fs::directory_entry& e : fs::directory_iterator(dir, ec)) {
    if (!e.is_regular_file()) continue;
    const std::string name = e.path().filename().string();
    if (name == "store.idx" || e.path().extension() == ".pseg" ||
        e.path().extension() == ".pdia") {
      return StoreFormat::v2;
    }
    if (e.path().extension() == kSuffix) saw_v1 = true;
  }
  return saw_v1 ? StoreFormat::v1 : StoreFormat::v2;
}

}  // namespace

std::uint64_t store_fingerprint(const sim::ClusterConfig& c) {
  std::uint64_t h = fnv1a64("pulpc-artifact-store");
  h = mix(h, kArtifactSchemaVersion);
  h = mix(h, c.num_cores);
  h = mix(h, c.l1_banks);
  h = mix(h, c.l2_banks);
  h = mix(h, c.num_fpus);
  h = mix(h, c.tcdm_base);
  h = mix(h, c.tcdm_bytes);
  h = mix(h, c.l2_base);
  h = mix(h, c.l2_bytes);
  h = mix(h, c.div_cycles);
  h = mix(h, c.fpdiv_cycles);
  h = mix(h, c.l2_latency);
  h = mix(h, c.taken_branch_penalty);
  h = mix(h, c.barrier_wakeup);
  h = mix(h, c.icache_line);
  h = mix(h, c.icache_refill_stall);
  h = mix(h, static_cast<unsigned>(c.icache_private));
  h = mix(h, c.max_cycles);
  return h;
}

std::uint64_t program_hash(const kir::Program& prog) {
  return fnv1a64(kir::to_string(prog));
}

ArtifactStore::ArtifactStore(std::string dir,
                             const sim::ClusterConfig& cluster,
                             std::optional<StoreFormat> format)
    : dir_(std::move(dir)), fp_(store_fingerprint(cluster)) {
  if (dir_.empty()) {
    throw std::runtime_error("ArtifactStore: empty directory");
  }
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw std::runtime_error("ArtifactStore: cannot create " + dir_ + ": " +
                             ec.message());
  }
  if (format.has_value()) {
    format_ = *format;
  } else {
    const std::string env = env_or({}, "PULPC_STORE_FORMAT", "");
    format_ = env.empty() ? detect_format(dir_) : parse_store_format(env);
  }
  if (format_ == StoreFormat::v2) {
    seg_ = std::make_shared<SegmentStore>(
        dir_, fp_,
        packed_stats_words(cluster.num_cores, cluster.l1_banks,
                           cluster.l2_banks, cluster.num_fpus));
  }
}

std::string ArtifactStore::path_for(const SampleConfig& cfg,
                                    unsigned ncores) const {
  return dir_ + "/" + sanitize(cfg.kernel) + "-" +
         kir::to_string(cfg.dtype) + "-" + std::to_string(cfg.size_bytes) +
         "-c" + std::to_string(ncores) + kSuffix;
}

bool ArtifactStore::load(const SampleConfig& cfg, unsigned ncores,
                         std::uint64_t prog_hash,
                         sim::RunStats* out) const {
  if (!enabled()) return false;
  if (seg_) {
    return seg_->load(segment_key(cfg, ncores), prog_hash,
                      /*check_prog=*/true, out);
  }
  std::ifstream in(path_for(cfg, ncores));
  if (!in) return false;
  Header h;
  if (!read_header(in, &h)) return false;
  if (h.version != kArtifactSchemaVersion || h.fp != fp_ ||
      h.prog != prog_hash || h.kernel != cfg.kernel ||
      h.dtype != kir::to_string(cfg.dtype) ||
      h.size_bytes != cfg.size_bytes || h.ncores != ncores) {
    return false;
  }
  try {
    sim::RunStats s = sim::load_stats(in);
    if (s.ncores != ncores) return false;
    *out = std::move(s);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool ArtifactStore::contains(const SampleConfig& cfg,
                             unsigned ncores) const {
  if (!enabled()) return false;
  if (seg_) return seg_->contains(segment_key(cfg, ncores));
  std::ifstream in(path_for(cfg, ncores));
  if (!in) return false;
  Header h;
  if (!read_header(in, &h)) return false;
  if (h.version != kArtifactSchemaVersion || h.fp != fp_ ||
      h.kernel != cfg.kernel || h.dtype != kir::to_string(cfg.dtype) ||
      h.size_bytes != cfg.size_bytes || h.ncores != ncores) {
    return false;
  }
  try {
    (void)sim::load_stats(in);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

void ArtifactStore::save(const SampleConfig& cfg, unsigned ncores,
                         std::uint64_t prog_hash,
                         const sim::RunStats& stats) const {
  if (!enabled()) return;
  if (seg_) {
    seg_->save(segment_key(cfg, ncores), prog_hash, stats);
    return;
  }
  const std::string path = path_for(cfg, ncores);
  // Write-then-rename so an interrupted save never leaves a half file
  // under the final name (half files would just be re-simulated, but gc
  // would have to clean them up). The pid suffix keeps concurrent
  // processes off each other's temporaries.
  const std::string tmp = path + ".tmp" + std::to_string(::getpid());
  {
    std::ofstream out(tmp);
    if (!out) {
      throw std::runtime_error("ArtifactStore: cannot write " + tmp);
    }
    out << "pulpc-artifact v" << kArtifactSchemaVersion << " fp=" << hex(fp_)
        << " prog=" << hex(prog_hash) << '\n';
    out << "sample " << kir::to_string(cfg.dtype) << ' ' << cfg.size_bytes
        << ' ' << ncores << ' ' << cfg.kernel << '\n';
    sim::save_stats(out, stats);
    if (!out) {
      throw std::runtime_error("ArtifactStore: write failed for " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw std::runtime_error("ArtifactStore: cannot rename into " + path);
  }
}

std::string ArtifactStore::diag_path_for(const SampleConfig& cfg) const {
  return dir_ + "/" + sanitize(cfg.kernel) + "-" +
         kir::to_string(cfg.dtype) + "-" + std::to_string(cfg.size_bytes) +
         ".diag";
}

void ArtifactStore::save_diag(const SampleConfig& cfg,
                              const std::string& text) const {
  if (!enabled()) return;
  if (seg_) {
    seg_->save_diag(segment_key(cfg, /*ncores=*/0), text);
    return;
  }
  const std::string path = diag_path_for(cfg);
  std::error_code ec;
  if (text.empty()) {
    fs::remove(path, ec);
    return;
  }
  const std::string tmp = path + ".tmp" + std::to_string(::getpid());
  {
    std::ofstream out(tmp);
    if (!out) {
      throw std::runtime_error("ArtifactStore: cannot write " + tmp);
    }
    out << text;
    if (!out) {
      throw std::runtime_error("ArtifactStore: write failed for " + tmp);
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw std::runtime_error("ArtifactStore: cannot rename into " + path);
  }
}

ArtifactStore::Info ArtifactStore::scan() const {
  Info info;
  if (!enabled() || !fs::is_directory(dir_)) return info;
  info.format = format_;
  if (seg_) {
    const SegmentStore::Census c = seg_->scan();
    info.files = c.records;
    info.valid = c.valid;
    info.foreign = c.foreign;
    info.corrupt = c.corrupt;
    info.diags = c.diag_records;
    info.bytes = c.bytes;
    for (const SegmentStore::SegmentInfo& s : c.segments) {
      info.segments.push_back(
          {s.name, s.records, s.valid, s.foreign, s.corrupt, s.bytes});
    }
    for_each([&info](const StoredSample& s) { ++info.by_kernel[s.kernel]; });
    return info;
  }
  for (const fs::directory_entry& e : fs::directory_iterator(dir_)) {
    if (!e.is_regular_file()) continue;
    if (e.path().extension() == ".diag") {
      ++info.diags;
      continue;
    }
    if (e.path().extension() != kSuffix) continue;
    ++info.files;
    std::error_code ec;
    info.bytes += e.file_size(ec);
    switch (classify(e.path(), fp_)) {
      case FileState::Valid: ++info.valid; break;
      case FileState::Foreign: ++info.foreign; break;
      case FileState::Corrupt: ++info.corrupt; break;
    }
  }
  for_each([&info](const StoredSample& s) { ++info.by_kernel[s.kernel]; });
  return info;
}

std::size_t ArtifactStore::gc() const {
  std::size_t removed = 0;
  if (!enabled() || !fs::is_directory(dir_)) return removed;
  if (seg_) return seg_->compact();
  std::unordered_set<std::string> live_stems;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_)) {
    if (!e.is_regular_file() || e.path().extension() != kSuffix) continue;
    if (classify(e.path(), fp_) != FileState::Valid) {
      std::error_code ec;
      removed += fs::remove(e.path(), ec) ? 1 : 0;
    } else {
      live_stems.insert(sample_stem(e.path().filename().string()));
    }
  }
  // A report is only as alive as its sample: once every core count of a
  // sample is gone, its .diag sidecar goes too.
  for (const fs::directory_entry& e : fs::directory_iterator(dir_)) {
    if (!e.is_regular_file() || e.path().extension() != ".diag") continue;
    const std::string stem = e.path().filename().stem().string();
    if (live_stems.count(stem) == 0) {
      std::error_code ec;
      removed += fs::remove(e.path(), ec) ? 1 : 0;
    }
  }
  return removed;
}

std::size_t ArtifactStore::compact() const {
  if (!enabled()) return 0;
  if (seg_) return seg_->compact();
  return gc();
}

std::size_t ArtifactStore::import_v1() const {
  if (!enabled() || !seg_ || !fs::is_directory(dir_)) return 0;
  std::size_t imported = 0;
  // Sample stems that imported cleanly — their sidecars follow; stems of
  // files left behind (foreign, corrupt) keep their sidecars too.
  std::unordered_map<std::string, SegmentKey> diag_owner;
  std::unordered_set<std::string> surviving_stems;
  std::vector<fs::path> artifacts;
  std::vector<fs::path> sidecars;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_)) {
    if (!e.is_regular_file()) continue;
    if (e.path().extension() == kSuffix) artifacts.push_back(e.path());
    if (e.path().extension() == ".diag") sidecars.push_back(e.path());
  }
  for (const fs::path& p : artifacts) {
    const std::string stem = sample_stem(p.filename().string());
    std::ifstream in(p);
    Header h;
    bool ok = static_cast<bool>(in) && read_header(in, &h) &&
              h.version == kArtifactSchemaVersion && h.fp == fp_;
    sim::RunStats s;
    if (ok) {
      try {
        s = sim::load_stats(in);
        ok = s.ncores == h.ncores;
      } catch (const std::exception&) {
        ok = false;
      }
    }
    if (!ok) {
      // Foreign or corrupt text artifacts are not ours to destroy; gc
      // remains the explicit way to drop them.
      if (!stem.empty()) surviving_stems.insert(stem);
      continue;
    }
    SegmentKey key;
    key.kernel = h.kernel;
    key.dtype = h.dtype;
    key.size_bytes = h.size_bytes;
    key.ncores = h.ncores;
    seg_->save(key, h.prog, s);
    ++imported;
    if (!stem.empty()) {
      key.ncores = 0;
      diag_owner.emplace(stem, std::move(key));
    }
    std::error_code ec;
    fs::remove(p, ec);
  }
  for (const fs::path& p : sidecars) {
    const std::string stem = p.filename().stem().string();
    const auto it = diag_owner.find(stem);
    if (it != diag_owner.end()) {
      std::ifstream in(p);
      std::ostringstream text;
      text << in.rdbuf();
      seg_->save_diag(it->second, text.str());
    } else if (surviving_stems.count(stem) != 0) {
      continue;  // its artifact stayed v1 text; leave the sidecar with it
    }
    // Migrated or orphaned either way, the text file goes (orphans are
    // exactly what gc() drops).
    std::error_code ec;
    fs::remove(p, ec);
  }
  seg_->flush();
  return imported;
}

void ArtifactStore::flush() const {
  if (seg_) seg_->flush();
}

void ArtifactStore::for_each(
    const std::function<void(const StoredSample&)>& fn) const {
  if (!enabled()) return;
  if (seg_) {
    seg_->for_each([&](const SegmentKey& key, std::uint64_t prog) {
      StoredSample s;
      s.kernel = key.kernel;
      s.dtype = key.dtype;
      s.size_bytes = key.size_bytes;
      s.ncores = key.ncores;
      s.prog_hash = prog;
      fn(s);
    });
    return;
  }
  if (!fs::is_directory(dir_)) return;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_)) {
    if (!e.is_regular_file() || e.path().extension() != kSuffix) continue;
    std::ifstream in(e.path());
    if (!in) continue;
    Header h;
    if (!read_header(in, &h)) continue;
    if (h.version != kArtifactSchemaVersion || h.fp != fp_) continue;
    try {
      const sim::RunStats s = sim::load_stats(in);
      if (s.ncores != h.ncores) continue;
    } catch (const std::exception&) {
      continue;
    }
    StoredSample s;
    s.kernel = h.kernel;
    s.dtype = h.dtype;
    s.size_bytes = h.size_bytes;
    s.ncores = h.ncores;
    s.prog_hash = h.prog;
    fn(s);
  }
}

ArtifactStore open_store(const BuildOptions& opt) {
  const std::string dir = env_or(opt.artifact_dir, "PULPC_ARTIFACT_DIR", "");
  if (dir.empty()) return ArtifactStore{};
  std::optional<StoreFormat> format;
  const std::string fmt = env_or(opt.store_format, "PULPC_STORE_FORMAT", "");
  if (!fmt.empty()) format = parse_store_format(fmt);
  return ArtifactStore(dir, opt.cluster, format);
}

ml::Dataset relabel(const ArtifactStore& store,
                    const energy::EnergyModel& model) {
  BuildOptions opt;
  opt.energy = model;
  return relabel(store, dataset_configs(), opt);
}

}  // namespace pulpc::core
