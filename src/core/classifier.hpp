// Public API of the paper's contribution: a classifier that predicts the
// minimum-energy core count of a kernel from compile-time features only.
//
//   ml::Dataset ds = core::load_or_build_dataset();
//   core::EnergyClassifier clf;             // static features, paper setup
//   clf.train(ds);
//   dsl::KernelSpec spec = ...;             // unseen kernel source
//   int cores = clf.predict(spec);          // energy-optimal parallelism
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dsl/ast.hpp"
#include "feat/features.hpp"
#include "kir/ir.hpp"
#include "ml/cv.hpp"
#include "ml/dataset.hpp"
#include "ml/flat.hpp"
#include "ml/tree.hpp"

namespace pulpc::core {

class EnergyClassifier {
 public:
  struct Options {
    /// Which static feature family to train on. Dynamic sets are not
    /// allowed here: prediction happens at compile time.
    feat::FeatureSet features = feat::FeatureSet::AllStatic;
    /// Explicit column list; overrides `features` when non-empty (used
    /// for the paper's importance-pruned "optimised" classifier).
    std::vector<std::string> columns;
    ml::TreeParams tree;
    mca::MachineModel mca;
    /// Route predict_row/predict_rows through the flattened branchless
    /// engine (ml::FlatTree). Unset means "consult PULPC_FLAT_PREDICT,
    /// default on". Predictions are bit-identical either way; the knob
    /// exists for benchmarking and as an escape hatch.
    std::optional<bool> use_flat;
  };

  EnergyClassifier() : EnergyClassifier(Options{}) {}
  explicit EnergyClassifier(Options options);

  /// Fit the decision tree on a labelled dataset (must contain every
  /// selected column). Throws std::invalid_argument on column mismatch.
  void train(const ml::Dataset& dataset);

  /// Predict the minimum-energy core count for a lowered kernel.
  [[nodiscard]] int predict(const kir::Program& prog) const;
  /// Convenience: lowers the kernel source first.
  [[nodiscard]] int predict(const dsl::KernelSpec& spec) const;

  /// The two halves of predict(prog), split so callers (the serve
  /// subsystem's feature cache) can persist the expensive half and
  /// replay the cheap one with bit-identical results:
  /// predict(prog) == predict_row(feature_row(prog)) by construction.
  [[nodiscard]] std::vector<double> feature_row(
      const kir::Program& prog) const;
  [[nodiscard]] int predict_row(std::span<const double> row) const;
  /// Batch prediction over pre-extracted feature rows: one flat-engine
  /// predict_batch call instead of x.rows node-chasing walks. Rows must
  /// have columns().size() columns. Bit-identical to predict_row per row.
  [[nodiscard]] std::vector<int> predict_rows(const ml::Matrix& x) const;

  [[nodiscard]] bool trained() const noexcept { return tree_.trained(); }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] const ml::DecisionTree& tree() const noexcept {
    return tree_;
  }
  /// The flattened inference engine built alongside the tree.
  [[nodiscard]] const ml::FlatTree& flat() const noexcept { return flat_; }
  /// Whether predictions route through the flat engine (resolved from
  /// Options::use_flat / PULPC_FLAT_PREDICT at construction).
  [[nodiscard]] bool use_flat() const noexcept { return use_flat_; }
  void set_use_flat(bool on) noexcept { use_flat_ = on; }
  /// Decision rules with feature names (for inspection, as the paper
  /// motivates choosing a tree over deep models).
  [[nodiscard]] std::string explain() const;

  /// Persist the trained classifier (feature columns + decision tree) as
  /// text, so a toolchain can train once and configure kernels offline.
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  /// Rebuild a saved classifier. Truncated, corrupt or wrong-version
  /// input throws std::runtime_error naming `source` (the file path for
  /// load_file) and the byte offset where parsing stopped; a model that
  /// references non-static feature columns throws std::invalid_argument.
  [[nodiscard]] static EnergyClassifier load(std::istream& in,
                                             const std::string& source =
                                                 "<stream>");
  [[nodiscard]] static EnergyClassifier load_file(const std::string& path);

 private:
  Options options_;
  std::vector<std::string> columns_;
  std::vector<std::size_t> column_indices_;  ///< into the static vector
  ml::DecisionTree tree_;
  ml::FlatTree flat_;  ///< flattened twin of tree_, kept in sync
  bool use_flat_ = true;
};

/// The paper's "optimised" static feature set: rank all static features
/// by CV-averaged importance and keep the top `keep` columns.
[[nodiscard]] std::vector<std::string> optimized_static_columns(
    const ml::Dataset& dataset, std::size_t keep = 8,
    const ml::EvalOptions& eval = {});

}  // namespace pulpc::core
