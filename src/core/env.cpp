#include "core/env.hpp"

#include <cstdlib>

namespace pulpc::core {

std::string env_or(const std::optional<std::string>& explicit_value,
                   const char* env_var, const std::string& fallback) {
  if (explicit_value) return *explicit_value;
  if (const char* env = std::getenv(env_var)) return env;
  return fallback;
}

unsigned env_or(unsigned explicit_value, const char* env_var,
                unsigned fallback) {
  if (explicit_value > 0) return explicit_value;
  if (const char* env = std::getenv(env_var)) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<unsigned>(v);
  }
  return fallback;
}

bool env_flag(std::optional<bool> explicit_value, const char* env_var,
              bool fallback) {
  if (explicit_value) return *explicit_value;
  if (const char* env = std::getenv(env_var)) {
    const std::string v(env);
    if (v == "0" || v == "false" || v == "off" || v == "no") return false;
    if (v == "1" || v == "true" || v == "on" || v == "yes") return true;
  }
  return fallback;
}

}  // namespace pulpc::core
