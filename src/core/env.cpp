#include "core/env.hpp"

#include <cstdlib>

namespace pulpc::core {

std::string env_or(const std::optional<std::string>& explicit_value,
                   const char* env_var, const std::string& fallback) {
  if (explicit_value) return *explicit_value;
  if (const char* env = std::getenv(env_var)) return env;
  return fallback;
}

unsigned env_or(unsigned explicit_value, const char* env_var,
                unsigned fallback) {
  if (explicit_value > 0) return explicit_value;
  if (const char* env = std::getenv(env_var)) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<unsigned>(v);
  }
  return fallback;
}

}  // namespace pulpc::core
