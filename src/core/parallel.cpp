#include "core/parallel.hpp"

#include "core/env.hpp"

namespace pulpc::core {

unsigned resolve_thread_count(unsigned requested) {
  const unsigned hw = std::thread::hardware_concurrency();
  return env_or(requested, "PULPC_THREADS", hw > 0 ? hw : 1);
}

ThreadPool::ThreadPool(unsigned workers)
    : workers_(resolve_thread_count(workers)) {
  threads_.reserve(workers_ - 1);
  for (unsigned i = 1; i < workers_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::run_tasks() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    try {
      (*fn_)(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
      // Skip the undispatched remainder; in-flight tasks drain.
      next_.store(n_, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    run_tasks();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --busy_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    // Serial path: identical call sequence to the pre-pool code.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    busy_ = static_cast<unsigned>(threads_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  run_tasks();  // the caller thread is worker 0
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return busy_ == 0; });
    fn_ = nullptr;
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace pulpc::core
