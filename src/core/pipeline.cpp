#include "core/pipeline.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <stdexcept>

#include "core/parallel.hpp"
#include "dsl/lower.hpp"
#include "kernels/registry.hpp"
#include "sim/cluster.hpp"

namespace pulpc::core {

std::vector<std::string> dataset_columns(unsigned max_cores) {
  std::vector<std::string> cols = feat::static_feature_names();
  const std::vector<std::string> dyn = feat::dynamic_feature_names(max_cores);
  cols.insert(cols.end(), dyn.begin(), dyn.end());
  return cols;
}

ml::Sample build_sample(const SampleConfig& cfg, const BuildOptions& opt) {
  const dsl::KernelSpec spec =
      kernels::make_kernel(cfg.kernel, cfg.dtype, cfg.size_bytes);
  return build_sample_from_program(dsl::lower(spec), cfg,
                                   kernels::kernel_info(cfg.kernel).suite,
                                   opt);
}

ml::Sample build_sample_from_program(const kir::Program& prog,
                                     const SampleConfig& cfg,
                                     const std::string& suite,
                                     const BuildOptions& opt) {
  ml::Sample sample;
  sample.kernel = cfg.kernel;
  sample.suite = suite;
  sample.dtype = cfg.dtype;
  sample.size_bytes = cfg.size_bytes;

  // (A) compile-time features.
  const feat::StaticFeatures sf = feat::extract_static(prog, opt.mca);
  sample.features = sf.to_vector();

  // (B/C/D) simulate at every core count and integrate the energy model.
  sim::Cluster cluster(opt.cluster);
  cluster.load(prog);
  double best_energy = 0;
  int best_cores = 0;
  for (unsigned c = 1; c <= opt.max_cores; ++c) {
    const sim::RunResult run = cluster.run(c);
    if (!run.ok) {
      throw std::runtime_error("build_sample(" + cfg.kernel + "/" +
                               kir::to_string(cfg.dtype) + "/" +
                               std::to_string(cfg.size_bytes) + ") at " +
                               std::to_string(c) + " cores: " + run.error);
    }
    const double e = energy::total_energy_fj(run.stats, opt.energy);
    sample.energy.push_back(e);
    sample.cycles.push_back(static_cast<double>(run.stats.region_cycles()));
    const feat::DynamicFeatures df = feat::extract_dynamic(run.stats);
    const std::vector<double> dv = df.to_vector();
    sample.features.insert(sample.features.end(), dv.begin(), dv.end());
    // (E) label with the minimum-energy configuration.
    if (best_cores == 0 || e < best_energy) {
      best_energy = e;
      best_cores = static_cast<int>(c);
    }
  }
  sample.label = best_cores;
  return sample;
}

std::vector<SampleConfig> dataset_configs() {
  std::vector<SampleConfig> configs;
  for (const kernels::KernelInfo& info : kernels::all_kernels()) {
    for (const kir::DType dtype : {kir::DType::I32, kir::DType::F32}) {
      if (!info.supports(dtype)) continue;
      for (const std::uint32_t size : kernels::dataset_sizes()) {
        configs.push_back(SampleConfig{info.name, dtype, size});
      }
    }
  }
  return configs;
}

ml::Dataset build_dataset(
    const std::vector<SampleConfig>& configs, const BuildOptions& opt,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  ml::Dataset ds(dataset_columns(opt.max_cores));
  // Each task simulates one configuration with its own sim::Cluster and
  // writes into its preallocated slot, so rows land in `configs` order
  // regardless of task completion order and the dataset (and its CSV
  // bytes) match the serial build exactly.
  std::vector<ml::Sample> rows(configs.size());
  ThreadPool pool(opt.threads);
  std::mutex progress_mu;
  std::size_t done = 0;
  pool.parallel_for(configs.size(), [&](std::size_t i) {
    rows[i] = build_sample(configs[i], opt);
    if (progress) {
      const std::lock_guard<std::mutex> lock(progress_mu);
      progress(++done, configs.size());
    }
  });
  for (ml::Sample& row : rows) ds.add(std::move(row));
  return ds;
}

ml::Dataset build_dataset(
    const BuildOptions& opt,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  return build_dataset(dataset_configs(), opt, progress);
}

ml::Dataset load_or_build_dataset(
    const std::vector<SampleConfig>& configs, const BuildOptions& opt,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  std::string path = "pulpclass_dataset.csv";
  if (const char* env = std::getenv("PULPC_DATASET_CACHE")) {
    path = env;
  }
  if (!path.empty() && std::filesystem::exists(path)) {
    try {
      ml::Dataset ds = ml::Dataset::load_csv_file(path);
      if (ds.columns() == dataset_columns(opt.max_cores) && !ds.empty()) {
        return ds;
      }
      // Stale cache layout: fall through and rebuild.
    } catch (const std::exception& e) {
      // Corrupt/truncated cache (e.g. an interrupted save): rebuild it.
      std::fprintf(stderr, "pulpclass: dataset cache %s is corrupt (%s); rebuilding\n",
                   path.c_str(), e.what());
    }
  }
  ml::Dataset ds = build_dataset(configs, opt, progress);
  if (!path.empty()) {
    ds.save_csv_file(path);
  }
  return ds;
}

ml::Dataset load_or_build_dataset(
    const BuildOptions& opt,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  return load_or_build_dataset(dataset_configs(), opt, progress);
}

}  // namespace pulpc::core
