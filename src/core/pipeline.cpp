#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/artifacts.hpp"
#include "core/env.hpp"
#include "core/parallel.hpp"
#include "dsl/lower.hpp"
#include "kernels/registry.hpp"
#include "kir/verify.hpp"
#include "sim/cluster.hpp"

namespace pulpc::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void merge(StageReport& into, const StageReport& part) {
  into.samples += part.samples;
  into.simulated_runs += part.simulated_runs;
  into.replayed_runs += part.replayed_runs;
  into.verify_errors += part.verify_errors;
  into.verify_warnings += part.verify_warnings;
  into.verify_notes += part.verify_notes;
  into.simulated_cycles += part.simulated_cycles;
  into.ff_cycles += part.ff_cycles;
  into.lower_seconds += part.lower_seconds;
  into.verify_seconds += part.verify_seconds;
  into.simulate_seconds += part.simulate_seconds;
  into.label_seconds += part.label_seconds;
  into.featurize_seconds += part.featurize_seconds;
  into.assemble_seconds += part.assemble_seconds;
}

std::string sample_id(const SampleConfig& cfg) {
  return cfg.kernel + "/" + kir::to_string(cfg.dtype) + "/" +
         std::to_string(cfg.size_bytes);
}

/// Stage Simulate with store replay: load each (cfg, core count) from
/// the store when a valid artifact exists, simulate (and persist) the
/// rest. The cluster is built lazily so a fully warm sample never
/// touches the simulator at all.
std::vector<sim::RunStats> gather_runs(const kir::Program& prog,
                                       const SampleConfig& cfg,
                                       const BuildOptions& opt,
                                       const ArtifactStore& store,
                                       StageReport& report) {
  const std::uint64_t phash =
      store.enabled() ? program_hash(prog) : 0;
  std::vector<sim::RunStats> runs;
  runs.reserve(opt.max_cores);
  std::optional<sim::Cluster> cluster;
  for (unsigned c = 1; c <= opt.max_cores; ++c) {
    sim::RunStats replayed;
    if (store.enabled() && store.load(cfg, c, phash, &replayed)) {
      ++report.replayed_runs;
      runs.push_back(std::move(replayed));
      continue;
    }
    if (!cluster) {
      cluster.emplace(opt.cluster, opt.sim);
      cluster->load(prog);
    }
    const sim::RunResult run = cluster->run(c);
    if (!run.ok) {
      throw std::runtime_error("build_sample(" + sample_id(cfg) + ") at " +
                               std::to_string(c) + " cores: " + run.error);
    }
    if (store.enabled()) store.save(cfg, c, phash, run.stats);
    ++report.simulated_runs;
    report.simulated_cycles += run.stats.total_cycles;
    report.ff_cycles += run.ff_cycles;
    runs.push_back(run.stats);
  }
  return runs;
}

/// Stage Verify: run the KIR verifier, refuse to label a program with
/// error diagnostics, and surviving warnings/notes into the report (and
/// into a .diag sidecar when a store is configured).
kir::VerifyReport verify_row(const kir::Program& prog,
                             const SampleConfig& cfg,
                             const ArtifactStore& store,
                             StageReport& report) {
  kir::VerifyReport vr = kir::verify_program(prog);
  if (!vr.ok()) {
    throw std::runtime_error(
        "build_sample(" + sample_id(cfg) +
        "): refusing to label a kernel the verifier rejects\n" +
        vr.to_string());
  }
  report.verify_errors += vr.errors();
  report.verify_warnings += vr.warnings();
  report.verify_notes += vr.notes();
  if (store.enabled()) {
    store.save_diag(cfg, vr.diags.empty() ? std::string{} : vr.to_string());
  }
  return vr;
}

/// Stages Simulate -> Label -> Featurize -> Assemble for one lowered
/// sample, with per-stage wall-clock accounting.
ml::Sample build_row(const kir::Program& prog, const SampleConfig& cfg,
                     const std::string& suite, const BuildOptions& opt,
                     const ArtifactStore& store, StageReport& report) {
  Clock::time_point t = Clock::now();
  if (opt.verify) {
    (void)verify_row(prog, cfg, store, report);
    report.verify_seconds += seconds_since(t);
  }

  t = Clock::now();
  const std::vector<sim::RunStats> runs =
      gather_runs(prog, cfg, opt, store, report);
  report.simulate_seconds += seconds_since(t);

  t = Clock::now();
  const SampleLabel label = label_sample(runs, opt.energy);
  report.label_seconds += seconds_since(t);

  t = Clock::now();
  std::vector<double> features = featurize_sample(prog, runs, opt.mca);
  report.featurize_seconds += seconds_since(t);

  t = Clock::now();
  ml::Sample sample = assemble_sample(cfg, suite, label, std::move(features));
  report.assemble_seconds += seconds_since(t);
  ++report.samples;
  return sample;
}

/// Shared engine of build_dataset and relabel: parallel slot-per-config
/// build with monotonic progress and an aggregated stage report.
ml::Dataset build_dataset_over(
    const ArtifactStore& store, const std::vector<SampleConfig>& configs,
    const BuildOptions& opt,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  ml::Dataset ds(dataset_columns(opt.max_cores));
  // Each task processes one configuration with its own sim::Cluster and
  // writes into its preallocated slot, so rows land in `configs` order
  // regardless of task completion order and the dataset (and its CSV
  // bytes) match the serial build exactly.
  std::vector<ml::Sample> rows(configs.size());
  ThreadPool pool(opt.threads);
  std::mutex mu;
  std::size_t done = 0;
  StageReport total;
  pool.parallel_for(configs.size(), [&](std::size_t i) {
    StageReport part;
    const Clock::time_point t0 = Clock::now();
    const kir::Program prog = lower_sample(configs[i]);
    part.lower_seconds += seconds_since(t0);
    ml::Sample row =
        build_row(prog, configs[i], kernels::kernel_info(configs[i].kernel).suite,
                  opt, store, part);
    const std::lock_guard<std::mutex> lock(mu);
    rows[i] = std::move(row);
    merge(total, part);
    if (progress) progress(++done, configs.size());
  });
  for (ml::Sample& row : rows) ds.add(std::move(row));
  // Seal any in-flight v2 segment and refresh the index so the next open
  // of this directory — possibly by another process — is O(1).
  store.flush();
  if (opt.stage_report) opt.stage_report(total);
  return ds;
}

std::string resolve_cache_path(const BuildOptions& opt) {
  return env_or(opt.cache_path, "PULPC_DATASET_CACHE",
                "pulpclass_dataset.csv");
}

}  // namespace

std::string StageReport::summary() const {
  std::ostringstream out;
  out.precision(3);
  out << std::fixed << samples << " samples, " << simulated_runs
      << " simulated + " << replayed_runs << " replayed runs | lower "
      << lower_seconds << "s, verify " << verify_seconds << "s, simulate "
      << simulate_seconds << "s, label " << label_seconds << "s, featurize "
      << featurize_seconds << "s, assemble " << assemble_seconds << "s";
  if (simulated_cycles > 0 && simulate_seconds > 0) {
    out.precision(2);
    out << " | sim " << simulated_cycles / simulate_seconds / 1e6
        << " Mcyc/s, ff "
        << 100.0 * static_cast<double>(ff_cycles) /
               static_cast<double>(simulated_cycles)
        << "%";
    out.precision(3);
  }
  if (verify_warnings + verify_notes > 0) {
    out << " | verifier: " << verify_warnings << " warning(s), "
        << verify_notes << " note(s)";
  }
  return out.str();
}

std::vector<std::string> dataset_columns(unsigned max_cores) {
  std::vector<std::string> cols = feat::static_feature_names();
  const std::vector<std::string> dyn = feat::dynamic_feature_names(max_cores);
  cols.insert(cols.end(), dyn.begin(), dyn.end());
  return cols;
}

kir::Program lower_sample(const SampleConfig& cfg) {
  return dsl::lower(
      kernels::make_kernel(cfg.kernel, cfg.dtype, cfg.size_bytes));
}

std::vector<sim::RunStats> simulate_sample(const kir::Program& prog,
                                           const SampleConfig& cfg,
                                           const BuildOptions& opt) {
  StageReport unused;
  return gather_runs(prog, cfg, opt, ArtifactStore{}, unused);
}

SampleLabel label_sample(const std::vector<sim::RunStats>& runs,
                         const energy::EnergyModel& model) {
  SampleLabel out;
  out.energy.reserve(runs.size());
  out.cycles.reserve(runs.size());
  double best_energy = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const double e = energy::total_energy_fj(runs[i], model);
    out.energy.push_back(e);
    out.cycles.push_back(static_cast<double>(runs[i].region_cycles()));
    if (out.label == 0 || e < best_energy) {
      best_energy = e;
      out.label = static_cast<int>(i) + 1;
    }
  }
  return out;
}

std::vector<double> featurize_sample(const kir::Program& prog,
                                     const std::vector<sim::RunStats>& runs,
                                     const mca::MachineModel& mm) {
  std::vector<double> features = feat::extract_static(prog, mm).to_vector();
  for (const sim::RunStats& run : runs) {
    const std::vector<double> dv = feat::extract_dynamic(run).to_vector();
    features.insert(features.end(), dv.begin(), dv.end());
  }
  return features;
}

ml::Sample assemble_sample(const SampleConfig& cfg, const std::string& suite,
                           const SampleLabel& label,
                           std::vector<double> features) {
  ml::Sample sample;
  sample.kernel = cfg.kernel;
  sample.suite = suite;
  sample.dtype = cfg.dtype;
  sample.size_bytes = cfg.size_bytes;
  sample.label = label.label;
  sample.energy = label.energy;
  sample.cycles = label.cycles;
  sample.features = std::move(features);
  return sample;
}

ml::Sample build_sample(const SampleConfig& cfg, const BuildOptions& opt) {
  return build_sample_from_program(lower_sample(cfg), cfg,
                                   kernels::kernel_info(cfg.kernel).suite,
                                   opt);
}

ml::Sample build_sample_from_program(const kir::Program& prog,
                                     const SampleConfig& cfg,
                                     const std::string& suite,
                                     const BuildOptions& opt) {
  if (opt.verify) {
    StageReport unused;
    (void)verify_row(prog, cfg, ArtifactStore{}, unused);
  }
  const std::vector<sim::RunStats> runs = simulate_sample(prog, cfg, opt);
  return assemble_sample(cfg, suite, label_sample(runs, opt.energy),
                         featurize_sample(prog, runs, opt.mca));
}

std::vector<SampleConfig> dataset_configs() {
  std::vector<SampleConfig> configs;
  for (const kernels::KernelInfo& info : kernels::all_kernels()) {
    for (const kir::DType dtype : {kir::DType::I32, kir::DType::F32}) {
      if (!info.supports(dtype)) continue;
      for (const std::uint32_t size : kernels::dataset_sizes()) {
        configs.push_back(SampleConfig{info.name, dtype, size});
      }
    }
  }
  return configs;
}

ml::Dataset build_dataset(
    const std::vector<SampleConfig>& configs, const BuildOptions& opt,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  return build_dataset_over(open_store(opt), configs, opt, progress);
}

ml::Dataset build_dataset(
    const BuildOptions& opt,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  return build_dataset(dataset_configs(), opt, progress);
}

ml::Dataset relabel(
    const ArtifactStore& store, const std::vector<SampleConfig>& configs,
    const BuildOptions& opt,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  if (!store.enabled()) {
    throw std::invalid_argument("relabel: artifact store is disabled");
  }
  return build_dataset_over(store, configs, opt, progress);
}

StageReport populate_store(
    const ArtifactStore& store, const std::vector<SampleConfig>& configs,
    const BuildOptions& opt,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  if (!store.enabled()) {
    throw std::invalid_argument("populate_store: artifact store is disabled");
  }
  ThreadPool pool(opt.threads);
  std::mutex mu;
  std::size_t done = 0;
  StageReport total;
  pool.parallel_for(configs.size(), [&](std::size_t i) {
    StageReport part;
    Clock::time_point t = Clock::now();
    const kir::Program prog = lower_sample(configs[i]);
    part.lower_seconds += seconds_since(t);
    t = Clock::now();
    (void)gather_runs(prog, configs[i], opt, store, part);
    part.simulate_seconds += seconds_since(t);
    ++part.samples;
    const std::lock_guard<std::mutex> lock(mu);
    merge(total, part);
    if (progress) progress(++done, configs.size());
  });
  store.flush();
  if (opt.stage_report) opt.stage_report(total);
  return total;
}

ml::Dataset load_or_build_dataset(
    const std::vector<SampleConfig>& configs, const BuildOptions& opt,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  const std::string path = resolve_cache_path(opt);
  if (!path.empty() && std::filesystem::exists(path)) {
    try {
      ml::Dataset ds = ml::Dataset::load_csv_file(path);
      if (ds.schema_version() == ml::kDatasetSchemaVersion &&
          ds.columns() == dataset_columns(opt.max_cores) && !ds.empty()) {
        return ds;
      }
      // Stale schema version or column layout: fall through and rebuild.
    } catch (const std::exception& e) {
      // Corrupt/truncated cache (e.g. an interrupted save) or a schema
      // fingerprint mismatch: rebuild it.
      std::fprintf(stderr, "pulpclass: dataset cache %s is stale or corrupt (%s); rebuilding\n",
                   path.c_str(), e.what());
    }
  }
  ml::Dataset ds = build_dataset(configs, opt, progress);
  if (!path.empty()) {
    ds.save_csv_file(path);
  }
  return ds;
}

ml::Dataset load_or_build_dataset(
    const BuildOptions& opt,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  return load_or_build_dataset(dataset_configs(), opt, progress);
}

}  // namespace pulpc::core
