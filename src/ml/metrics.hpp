// Evaluation metrics: plain accuracy, the paper's tolerance-aware
// accuracy ("a prediction is correct if the energy wasted running the
// kernel with the predicted core count instead of the optimum is lower
// than t%"), and confusion matrices.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/dataset.hpp"

namespace pulpc::ml {

/// Is `predicted` (1-based core count) acceptable for this sample at
/// relative energy tolerance `tol` (e.g. 0.05 for 5%)?
[[nodiscard]] bool within_tolerance(const Sample& sample, int predicted,
                                    double tol);

/// Fraction of samples whose prediction is within `tol` of the optimum.
/// `predictions[i]` pairs with `samples[indices[i]]` when `indices` is
/// given, otherwise with `samples[i]`.
[[nodiscard]] double tolerance_accuracy(const std::vector<Sample>& samples,
                                        const std::vector<int>& predictions,
                                        double tol);
[[nodiscard]] double tolerance_accuracy(
    const std::vector<Sample>& samples,
    const std::vector<std::size_t>& indices,
    const std::vector<int>& predictions, double tol);

/// confusion[t][p] = count of samples with true label t predicted p.
[[nodiscard]] std::vector<std::vector<std::size_t>> confusion_matrix(
    const std::vector<int>& truth, const std::vector<int>& predictions,
    int max_label);

/// Relative energy waste of running `sample` at `predicted` cores instead
/// of its optimum (0 when predicted is optimal; +inf for invalid labels).
[[nodiscard]] double energy_waste(const Sample& sample, int predicted);

/// Default tolerance sweep: 0%, 1%, ..., 20% (Figure 2's x-axis).
[[nodiscard]] std::vector<double> default_tolerances();

}  // namespace pulpc::ml
