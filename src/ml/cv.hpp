// Cross-validation harness reproducing the paper's protocol: "every
// training experiment is performed with 10-fold stratified
// cross-validation ... each cross-validation was repeated 100 times with
// random seeds, for ensuring to get unbiased accuracy results." Accuracy
// is reported as a function of the energy-waste tolerance threshold
// (Figure 2), and decision-tree feature importances are averaged across
// all fits (Table IV).
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/tree.hpp"

namespace pulpc::ml {

/// Split sample indices into `folds` stratified folds: each fold receives
/// a proportional share of every class. Throws for folds < 2.
[[nodiscard]] std::vector<std::vector<std::size_t>> stratified_kfold(
    const std::vector<int>& labels, unsigned folds, std::mt19937_64& rng);

struct EvalOptions {
  unsigned folds = 10;
  unsigned repeats = 100;
  std::uint64_t seed = 42;
  std::vector<double> tolerances;  ///< empty = default_tolerances()
  TreeParams tree;
  /// Worker threads for evaluate(); repetitions are independent tasks
  /// (each derives its RNG from seed + rep) whose partial results are
  /// reduced in repetition order, so every thread count — 0 resolves via
  /// PULPC_THREADS, 1 forces the serial path — yields bit-identical
  /// accuracies, std-devs and importances.
  unsigned threads = 0;
};

struct EvalResult {
  std::vector<std::string> columns;    ///< evaluated feature columns
  std::vector<double> tolerances;
  std::vector<double> accuracy;        ///< mean over repeats, per tolerance
  std::vector<double> accuracy_std;    ///< std-dev over repeats
  std::vector<double> importances;     ///< mean Gini importance per column

  /// Accuracy at the tolerance nearest to `tol`.
  [[nodiscard]] double accuracy_at(double tol) const;
};

/// Repeated stratified-CV evaluation of a decision tree on the selected
/// feature columns.
[[nodiscard]] EvalResult evaluate(const Dataset& ds,
                                  const std::vector<std::string>& columns,
                                  const EvalOptions& opt = {});

/// The paper's naive baseline: always predict `constant_label`
/// ("always-8").
[[nodiscard]] EvalResult evaluate_constant(
    const Dataset& ds, int constant_label,
    const std::vector<double>& tolerances = {});

/// Rank columns by importance (descending) from a full-data fit averaged
/// over `repeats` seeded fits; used to build the paper's "optimised"
/// pruned static feature set.
[[nodiscard]] std::vector<std::pair<std::string, double>> rank_features(
    const Dataset& ds, const std::vector<std::string>& columns,
    const EvalOptions& opt = {});

/// Result of a leave-one-group-out holdout sweep (the honest
/// unseen-source-code protocol: groups are kernels, so no sample of the
/// held-out kernel — other sizes, the other element type — leaks into
/// training).
struct GroupEvalResult {
  std::vector<double> tolerances;
  std::vector<double> accuracy;  ///< test-size-weighted mean over folds
  std::size_t groups = 0;        ///< distinct held-out groups (folds)
  std::size_t test_samples = 0;  ///< total held-out samples

  /// Accuracy at the tolerance nearest to `tol`.
  [[nodiscard]] double accuracy_at(double tol) const;
};

/// Leave-one-group-out evaluation: for every distinct group appearing in
/// `test_pool`, fit one tree on every sample whose group differs from the
/// held-out group and test on the pool's samples of that group. `groups`
/// gives each sample's group id (size == ds.samples().size(); typically
/// the kernel name). `test_pool` restricts which samples are ever tested
/// — training still uses the full dataset minus the held-out group, which
/// is how a corpus enlarged with generated kernels changes LOKO accuracy
/// on the seed kernels without being tested itself. Folds run across
/// opt.threads workers (opt.folds / repeats / seed are unused) and reduce
/// in group order: bit-identical for every thread count.
[[nodiscard]] GroupEvalResult evaluate_leave_one_group_out(
    const Dataset& ds, const std::vector<std::string>& columns,
    const std::vector<std::string>& groups,
    const std::vector<std::size_t>& test_pool, const EvalOptions& opt = {});

}  // namespace pulpc::ml
